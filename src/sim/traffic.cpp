#include "sim/traffic.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <fstream>
#include <istream>
#include <map>
#include <sstream>
#include <utility>

#include "common/csv.h"
#include "common/error.h"
#include "common/json.h"
#include "common/math_util.h"
#include "common/random.h"
#include "common/string_util.h"
#include "sim/des.h"

namespace vwsdk {

namespace {

constexpr double kMegacycle = 1.0e6;

void check_options(const TrafficOptions& options) {
  if (options.replicas < 1) {
    throw InvalidArgument("traffic simulation requires replicas >= 1");
  }
  if (options.max_batch < 1) {
    throw InvalidArgument("traffic simulation requires max_batch >= 1");
  }
  if (options.max_queue < 0) {
    throw InvalidArgument("traffic simulation requires max_queue >= 0");
  }
  if (options.batch_window < 0) {
    throw InvalidArgument("traffic simulation requires batch_window >= 0");
  }
}

void check_plans(const std::vector<ChipPlan>& plans) {
  if (plans.empty()) {
    throw InvalidArgument("traffic simulation requires at least one plan");
  }
  for (const ChipPlan& plan : plans) {
    if (!plan.feasible) {
      throw InvalidArgument(cat("traffic simulation requires a feasible plan; \"",
                                plan.network_name,
                                "\" is not: ", plan.infeasible_reason));
    }
    for (const ChipPlan& other : plans) {
      if (&other != &plan && other.network_name == plan.network_name) {
        throw InvalidArgument(cat("traffic simulation requires distinct network names; \"",
                                  plan.network_name, "\" appears twice"));
      }
    }
  }
}

/// One batching server: a full copy of its network's chip pipeline.
struct Replica {
  std::deque<Cycles> waiting;     ///< arrival times, FIFO
  bool busy = false;
  Count window_epoch = 0;         ///< bumped per batch; stale closes no-op
  bool window_armed = false;
  Count queue_peak = 0;
  Count batches = 0;
  std::vector<Cycles> chip_busy;  ///< per chip of the plan
};

/// Per-network simulation state and tallies.
struct NetState {
  const ChipPlan* plan = nullptr;
  std::vector<Replica> replicas;
  Count arrivals = 0;
  Count completions = 0;
  Count rejected = 0;
  Count started = 0;              ///< requests whose batch began service
  Cycles wait_sum = 0;            ///< Σ (batch start - arrival) over started
  std::vector<Cycles> latencies;  ///< completion - arrival, per completion
  Rng rng{0};                     ///< Poisson interarrival stream
};

/// The event-driven chip farm.  Single-threaded on EventQueue, so a
/// seeded run is deterministic regardless of VWSDK_THREADS.
class Farm {
 public:
  Farm(const std::vector<ChipPlan>& plans, const TrafficOptions& options,
       Cycles horizon)
      : options_(options), horizon_(horizon) {
    nets_.resize(plans.size());
    for (std::size_t n = 0; n < plans.size(); ++n) {
      NetState& state = nets_[n];
      state.plan = &plans[n];
      state.replicas.resize(static_cast<std::size_t>(options.replicas));
      for (Replica& replica : state.replicas) {
        replica.chip_busy.assign(plans[n].chips.size(), 0);
      }
    }
  }

  EventQueue& queue() { return queue_; }
  NetState& net(std::size_t index) { return nets_[index]; }
  std::size_t net_count() const { return nets_.size(); }

  /// Seed per-network arrival streams and schedule the first arrivals.
  /// Stream n takes draw n of SplitMix64(seed), so a co-resident network
  /// never perturbs the streams of the networks listed before it.
  void start_poisson() {
    SplitMix64 seeder(options_.seed);
    for (std::size_t n = 0; n < nets_.size(); ++n) {
      nets_[n].rng = Rng(seeder.next());
      schedule_next_arrival(n);
    }
  }

  /// One request for network `n` arrives at the current simulation time.
  void arrive(std::size_t n) {
    NetState& state = nets_[n];
    ++state.arrivals;
    // Shortest queue wins, counting the batch in service as one unit of
    // load so an idle replica always beats a busy one; ties go to the
    // lowest replica index so dispatch is deterministic.
    const auto load = [](const Replica& replica) {
      return static_cast<Count>(replica.waiting.size()) +
             (replica.busy ? 1 : 0);
    };
    std::size_t best = 0;
    for (std::size_t r = 1; r < state.replicas.size(); ++r) {
      if (load(state.replicas[r]) < load(state.replicas[best])) {
        best = r;
      }
    }
    Replica& replica = state.replicas[best];
    if (options_.max_queue > 0 &&
        static_cast<Count>(replica.waiting.size()) >= options_.max_queue) {
      ++state.rejected;
      return;
    }
    replica.waiting.push_back(queue_.now());
    replica.queue_peak = std::max(replica.queue_peak,
                                  static_cast<Count>(replica.waiting.size()));
    maybe_start(n, best);
  }

 private:
  void schedule_next_arrival(std::size_t n) {
    const double per_cycle = options_.rate / kMegacycle;
    if (!(per_cycle > 0.0)) {
      return;  // rate 0: an empty stream
    }
    const auto gap =
        static_cast<Cycles>(std::llround(nets_[n].rng.exponential(per_cycle)));
    const Cycles time = queue_.now() + std::max<Cycles>(gap, 0);
    if (time > horizon_) {
      return;  // the stream ends at the horizon
    }
    queue_.at(time, [this, n] {
      arrive(n);
      schedule_next_arrival(n);
    });
  }

  /// Start service on replica `r` if it is idle and its batching rule
  /// says go: a full batch waiting, or no batching window configured, or
  /// the window for the oldest waiting request has closed.
  void maybe_start(std::size_t n, std::size_t r) {
    NetState& state = nets_[n];
    Replica& replica = state.replicas[r];
    if (replica.busy || replica.waiting.empty()) {
      return;
    }
    if (static_cast<Count>(replica.waiting.size()) >= options_.max_batch ||
        options_.batch_window == 0) {
      start_batch(n, r);
      return;
    }
    if (!replica.window_armed) {
      replica.window_armed = true;
      const Count epoch = replica.window_epoch;
      queue_.after(options_.batch_window,
                   [this, n, r, epoch] { close_window(n, r, epoch); });
    }
  }

  void close_window(std::size_t n, std::size_t r, Count epoch) {
    Replica& replica = nets_[n].replicas[r];
    if (replica.window_epoch != epoch) {
      return;  // a batch already started; this close is stale
    }
    replica.window_armed = false;
    if (!replica.busy && !replica.waiting.empty()) {
      start_batch(n, r);
    }
  }

  void start_batch(std::size_t n, std::size_t r) {
    NetState& state = nets_[n];
    Replica& replica = state.replicas[r];
    const Cycles now = queue_.now();
    const auto batch = std::min<Count>(
        static_cast<Count>(replica.waiting.size()), options_.max_batch);
    ++replica.window_epoch;  // invalidate any armed window close
    replica.window_armed = false;
    replica.busy = true;
    ++replica.batches;
    std::vector<Cycles> members;
    members.reserve(static_cast<std::size_t>(batch));
    for (Count i = 0; i < batch; ++i) {
      const Cycles arrived = replica.waiting.front();
      replica.waiting.pop_front();
      state.wait_sum = saturating_add(state.wait_sum, now - arrived);
      ++state.started;
      members.push_back(arrived);
    }
    // The batch streams through the replica's pipeline; chip c works for
    // its own fill plus (B-1) of its own bottleneck, clipped to the
    // horizon so utilization never exceeds the simulated duration.
    const Cycles service = state.plan->batch_cycles(batch);
    for (std::size_t c = 0; c < state.plan->chips.size(); ++c) {
      const ChipAllocation& chip = state.plan->chips[c];
      // Checked even though batch_cycles(batch) above bounds it: the
      // per-chip fill/bottleneck never exceed the plan-wide ones, but the
      // accounting house rule is that cycle products go through
      // checked_* (docs/STATIC_ANALYSIS.md).
      Cycles busy = checked_add(chip.fill_latency(),
                                checked_mul(batch - 1, chip.bottleneck()));
      if (horizon_ >= 0) {
        busy = std::min(busy, horizon_ - now);
      }
      replica.chip_busy[c] += busy;
    }
    queue_.after(service, [this, n, r, members = std::move(members)] {
      complete(n, r, members);
    });
  }

  /// A batch finishes: every member completes at the batch end (the
  /// pipeline drains in arrival order, but the tail stage bounds them
  /// all within one interval -- the batch end is the honest, and
  /// deterministic, completion stamp).
  void complete(std::size_t n, std::size_t r, const std::vector<Cycles>& members) {
    NetState& state = nets_[n];
    const Cycles now = queue_.now();
    for (const Cycles arrived : members) {
      ++state.completions;
      state.latencies.push_back(now - arrived);
    }
    state.replicas[r].busy = false;
    maybe_start(n, r);
  }

  EventQueue queue_;
  const TrafficOptions options_;
  const Cycles horizon_;  ///< -1 = none (trace mode runs to drain)
  std::vector<NetState> nets_;
};

TrafficReport build_report(Farm& farm, const TrafficOptions& options,
                           const std::string& source, Cycles duration) {
  TrafficReport report;
  report.seed = options.seed;
  report.source = source;
  report.rate = source == "poisson" ? options.rate : 0.0;
  report.duration = duration;
  report.batch_window = options.batch_window;
  report.max_batch = options.max_batch;
  report.max_queue = options.max_queue;
  const auto span = static_cast<double>(std::max<Cycles>(duration, 1));
  for (std::size_t n = 0; n < farm.net_count(); ++n) {
    NetState& state = farm.net(n);
    const ChipPlan& plan = *state.plan;
    NetworkTraffic net;
    net.network = plan.network_name;
    net.algorithm = plan.algorithm;
    net.objective = plan.objective;
    net.array = plan.geometry.to_string();
    net.arrays_per_chip = plan.arrays_per_chip;
    net.replicas = options.replicas;
    net.chips_per_replica = static_cast<Count>(plan.chips.size());
    net.interval = plan.interval();
    net.fill_latency = plan.fill_latency();
    net.arrivals = state.arrivals;
    net.completions = state.completions;
    net.rejected = state.rejected;
    net.in_flight = state.arrivals - state.completions - state.rejected;
    net.offered = static_cast<double>(state.arrivals) * kMegacycle / span;
    net.sustained = static_cast<double>(state.completions) * kMegacycle / span;
    net.capacity = net.interval > 0
                       ? static_cast<double>(options.replicas) * kMegacycle /
                             static_cast<double>(net.interval)
                       : 0.0;
    Count batches = 0;
    for (const Replica& replica : state.replicas) {
      batches += replica.batches;
    }
    net.mean_batch = batches > 0 ? static_cast<double>(state.started) /
                                       static_cast<double>(batches)
                                 : 0.0;
    net.mean_wait = state.started > 0
                        ? static_cast<double>(state.wait_sum) /
                              static_cast<double>(state.started)
                        : 0.0;
    std::sort(state.latencies.begin(), state.latencies.end());
    if (!state.latencies.empty()) {
      // Saturating: the mean is a diagnostic double; a pegged value on a
      // pathological horizon beats aborting the whole report.
      Cycles total = 0;
      for (const Cycles latency : state.latencies) {
        total = saturating_add(total, latency);
      }
      net.mean_latency = static_cast<double>(total) /
                         static_cast<double>(state.latencies.size());
      net.latency_min = state.latencies.front();
      net.latency_max = state.latencies.back();
    }
    net.p50 = percentile(state.latencies, 50.0);
    net.p95 = percentile(state.latencies, 95.0);
    net.p99 = percentile(state.latencies, 99.0);
    net.p999 = percentile(state.latencies, 99.9);
    for (std::size_t r = 0; r < state.replicas.size(); ++r) {
      const Replica& replica = state.replicas[r];
      for (std::size_t c = 0; c < replica.chip_busy.size(); ++c) {
        ChipTraffic chip;
        chip.replica = static_cast<Count>(r) + 1;
        chip.chip = static_cast<Count>(c) + 1;
        chip.busy = replica.chip_busy[c];
        chip.utilization = static_cast<double>(replica.chip_busy[c]) / span;
        chip.queue_peak = replica.queue_peak;
        chip.batches = replica.batches;
        net.chips.push_back(chip);
      }
    }
    report.networks.push_back(std::move(net));
  }
  return report;
}

}  // namespace

Count TrafficReport::total_arrivals() const {
  Count total = 0;
  for (const NetworkTraffic& net : networks) {
    total += net.arrivals;
  }
  return total;
}

Count TrafficReport::total_completions() const {
  Count total = 0;
  for (const NetworkTraffic& net : networks) {
    total += net.completions;
  }
  return total;
}

Count TrafficReport::total_rejected() const {
  Count total = 0;
  for (const NetworkTraffic& net : networks) {
    total += net.rejected;
  }
  return total;
}

Count TrafficReport::total_in_flight() const {
  Count total = 0;
  for (const NetworkTraffic& net : networks) {
    total += net.in_flight;
  }
  return total;
}

TrafficReport simulate_traffic(const std::vector<ChipPlan>& plans,
                               const TrafficOptions& options) {
  check_options(options);
  check_plans(plans);
  if (options.duration < 1) {
    throw InvalidArgument("traffic simulation requires duration >= 1");
  }
  if (!(options.rate >= 0.0) || !std::isfinite(options.rate)) {
    throw InvalidArgument("traffic simulation requires a finite rate >= 0");
  }
  Farm farm(plans, options, options.duration);
  farm.start_poisson();
  farm.queue().run_until(options.duration);
  return build_report(farm, options, "poisson", options.duration);
}

TrafficReport simulate_trace(const std::vector<ChipPlan>& plans,
                             const ArrivalTrace& trace,
                             const TrafficOptions& options) {
  check_options(options);
  check_plans(plans);
  Farm farm(plans, options, -1);
  for (const Arrival& arrival : trace.arrivals) {
    if (arrival.time < 0) {
      throw InvalidArgument("arrival trace: times must be >= 0");
    }
    std::size_t index = plans.size();
    if (arrival.net.empty()) {
      index = 0;
    } else {
      for (std::size_t n = 0; n < plans.size(); ++n) {
        if (plans[n].network_name == arrival.net) {
          index = n;
          break;
        }
      }
    }
    if (index == plans.size()) {
      throw InvalidArgument(cat("arrival trace names unknown network \"",
                                arrival.net, "\""));
    }
    farm.queue().at(arrival.time, [&farm, index] { farm.arrive(index); });
  }
  farm.queue().run_all();
  return build_report(farm, options, "trace", farm.queue().now());
}

ArrivalTrace parse_arrival_trace_csv(std::istream& in) {
  ArrivalTrace trace;
  std::string line;
  bool saw_header = false;
  int time_col = -1;
  int net_col = -1;
  std::size_t columns = 0;
  Count line_no = 0;
  Cycles previous = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == '#') {
      continue;
    }
    const std::vector<std::string> fields = csv_parse_line(trimmed);
    if (!saw_header) {
      for (std::size_t i = 0; i < fields.size(); ++i) {
        const std::string name = to_lower(trim(fields[i]));
        if (name == "time") {
          time_col = static_cast<int>(i);
        } else if (name == "net") {
          net_col = static_cast<int>(i);
        } else {
          throw InvalidArgument(cat("arrival trace line ", line_no,
                                    ": unknown column \"", fields[i],
                                    "\" (expected time[,net])"));
        }
      }
      if (time_col < 0) {
        throw InvalidArgument("arrival trace: missing required column \"time\"");
      }
      columns = fields.size();
      saw_header = true;
      continue;
    }
    if (fields.size() != columns) {
      throw InvalidArgument(cat("arrival trace line ", line_no, ": expected ",
                                columns, " fields, got ", fields.size()));
    }
    Arrival arrival;
    arrival.time =
        parse_count(trim(fields[static_cast<std::size_t>(time_col)]));
    if (net_col >= 0) {
      arrival.net = trim(fields[static_cast<std::size_t>(net_col)]);
    }
    if (arrival.time < previous) {
      throw InvalidArgument(cat("arrival trace line ", line_no,
                                ": times must be non-decreasing"));
    }
    previous = arrival.time;
    trace.arrivals.push_back(std::move(arrival));
  }
  if (!saw_header) {
    throw InvalidArgument("arrival trace: empty CSV (need a time[,net] header)");
  }
  return trace;
}

ArrivalTrace parse_arrival_trace_json(std::string_view text) {
  const JsonValue root = JsonValue::parse(text);
  if (!root.is_object()) {
    throw InvalidArgument("arrival trace: JSON root must be an object");
  }
  for (const JsonValue::Member& member : root.members()) {
    if (member.first != "arrivals") {
      throw InvalidArgument(cat("arrival trace: unknown key \"", member.first,
                                "\" (expected only \"arrivals\")"));
    }
  }
  const JsonValue* arrivals = root.find("arrivals");
  if (arrivals == nullptr) {
    throw InvalidArgument("arrival trace: missing required key \"arrivals\"");
  }
  if (!arrivals->is_array()) {
    throw InvalidArgument("arrival trace: \"arrivals\" must be an array");
  }
  ArrivalTrace trace;
  Cycles previous = 0;
  Count index = 0;
  for (const JsonValue& entry : arrivals->items()) {
    ++index;
    if (!entry.is_object()) {
      throw InvalidArgument(cat("arrival trace entry ", index,
                                ": must be an object"));
    }
    for (const JsonValue::Member& member : entry.members()) {
      if (member.first != "time" && member.first != "net") {
        throw InvalidArgument(cat("arrival trace entry ", index,
                                  ": unknown key \"", member.first, "\""));
      }
    }
    const JsonValue* time = entry.find("time");
    if (time == nullptr) {
      throw InvalidArgument(cat("arrival trace entry ", index,
                                ": missing required key \"time\""));
    }
    Arrival arrival;
    arrival.time = time->as_int();
    if (arrival.time < 0) {
      throw InvalidArgument(cat("arrival trace entry ", index,
                                ": time must be >= 0"));
    }
    if (const JsonValue* net = entry.find("net")) {
      arrival.net = net->as_string();
    }
    if (arrival.time < previous) {
      throw InvalidArgument(cat("arrival trace entry ", index,
                                ": times must be non-decreasing"));
    }
    previous = arrival.time;
    trace.arrivals.push_back(std::move(arrival));
  }
  return trace;
}

ArrivalTrace load_arrival_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw NotFound(cat("cannot open arrival trace: ", path));
  }
  if (std::string_view(path).ends_with(".json")) {
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parse_arrival_trace_json(buffer.str());
  }
  return parse_arrival_trace_csv(in);
}

CapacityResult plan_capacity(const ChipPlan& plan, Cycles slo_p99,
                             const TrafficOptions& options) {
  check_options(options);
  check_plans({plan});
  if (slo_p99 < 1) {
    throw InvalidArgument("plan_capacity requires slo_p99 >= 1");
  }
  if (!(options.rate > 0.0) || !std::isfinite(options.rate)) {
    throw InvalidArgument("plan_capacity requires a finite rate > 0");
  }
  const Cycles unloaded = plan.batch_cycles(1);
  if (unloaded > slo_p99) {
    throw Error(cat("SLO p99 of ", slo_p99,
                    " cycles is below the unloaded batch-of-1 latency of ",
                    unloaded, " cycles -- no chip count can meet it"));
  }

  constexpr Count kMaxReplicas = 65536;
  std::map<Count, TrafficReport> cache;
  TrafficOptions probe = options;
  const auto report_at = [&](Count replicas) -> const TrafficReport& {
    auto it = cache.find(replicas);
    if (it == cache.end()) {
      probe.replicas = replicas;
      it = cache.emplace(replicas, simulate_traffic({plan}, probe)).first;
    }
    return it->second;
  };
  const auto meets = [&](Count replicas) {
    const NetworkTraffic& net = report_at(replicas).networks.front();
    return net.completions > 0 && net.rejected == 0 && net.p99 <= slo_p99;
  };

  // Seed at the stability bound (offered rate below steady-state
  // capacity), double until the SLO is met, tighten by bisection, then
  // walk down: the final loop PROVES replicas-1 fails even if the
  // simulated p99 is not monotone in the replica count.
  const double per_cycle = options.rate / kMegacycle;
  const auto stability = static_cast<Count>(
      std::floor(per_cycle * static_cast<double>(plan.interval()))) + 1;
  Count upper = clamp_count(stability, 1, kMaxReplicas);
  Count known_fail = 0;
  while (!meets(upper)) {
    if (upper >= kMaxReplicas) {
      throw Error(cat("no replica count up to ", kMaxReplicas,
                      " meets the SLO p99 of ", slo_p99, " cycles at rate ",
                      format_fixed(options.rate, 4),
                      "/Mcycle within the simulated horizon"));
    }
    known_fail = upper;
    upper = std::min<Count>(upper * 2, kMaxReplicas);
  }
  while (known_fail > 0 && known_fail + 1 < upper) {
    const Count mid = known_fail + (upper - known_fail) / 2;
    if (meets(mid)) {
      upper = mid;
    } else {
      known_fail = mid;
    }
  }
  while (upper > 1 && meets(upper - 1)) {
    --upper;
  }

  CapacityResult result;
  result.slo_p99 = slo_p99;
  result.rate = options.rate;
  result.replicas = upper;
  result.chips = checked_mul(upper, static_cast<Count>(plan.chips.size()));
  result.p99 = report_at(upper).networks.front().p99;
  if (upper > 1) {
    result.lower_replicas = upper - 1;
    result.lower_p99 = report_at(upper - 1).networks.front().p99;
  }
  result.report = report_at(upper);
  return result;
}

}  // namespace vwsdk
