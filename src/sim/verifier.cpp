#include "sim/verifier.h"

#include "common/string_util.h"
#include "tensor/tensor_ops.h"

namespace vwsdk {

Tensord reference_convolution(const MappingPlan& plan, const Tensord& ifm,
                              const Tensord& weights,
                              const ExecutionOptions& options,
                              ConvWorkspace* workspace) {
  ConvConfig config;
  config.stride_w = plan.shape.stride_w;
  config.stride_h = plan.shape.stride_h;
  config.pad_w = plan.shape.pad_w;
  config.pad_h = plan.shape.pad_h;
  const RefBackend& backend =
      BackendRegistry::instance().get(resolve_ref_backend(options.ref_backend));
  return backend.conv2d(ifm, weights, config, workspace);
}

VerificationReport verify_execution(const MappingPlan& plan,
                                    const ExecutionResult& executed,
                                    const Tensord& reference) {
  VerificationReport report;
  report.executed_cycles = executed.cycles;
  report.analytic_cycles = plan.cost.total;
  report.cycles_match = report.executed_cycles == report.analytic_cycles;
  report.programmed_cells = executed.programmed_cells;
  report.max_abs_error = max_abs_diff(executed.ofm, reference);
  report.exact_match = exactly_equal(executed.ofm, reference);
  report.summary =
      cat("mapping ", plan.cost.to_string(), ": ",
          report.exact_match ? "EXACT match" : "mismatch",
          " (max_abs_err=", report.max_abs_error, "), cycles ",
          report.executed_cycles, "/", report.analytic_cycles,
          report.cycles_match ? " (match)" : " (MISMATCH)");
  return report;
}

VerificationReport verify_mapping(const MappingPlan& plan, const Tensord& ifm,
                                  const Tensord& weights,
                                  const ExecutionOptions& options) {
  const ExecutionResult executed = execute_plan(plan, ifm, weights, options);
  const Tensord reference =
      reference_convolution(plan, ifm, weights, options);
  return verify_execution(plan, executed, reference);
}

VerificationReport verify_mapping_random(const MappingPlan& plan,
                                         std::uint64_t seed, int magnitude,
                                         const ExecutionOptions& options) {
  Rng rng(seed);
  Tensord ifm = Tensord::feature_map(plan.shape.in_channels,
                                     plan.shape.ifm_h, plan.shape.ifm_w);
  Tensord weights =
      Tensord::weights(plan.shape.out_channels, plan.shape.in_channels,
                       plan.shape.kernel_h, plan.shape.kernel_w);
  fill_random_int(ifm, rng, magnitude);
  fill_random_int(weights, rng, magnitude);
  return verify_mapping(plan, ifm, weights, options);
}

}  // namespace vwsdk
