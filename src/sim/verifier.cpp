#include "sim/verifier.h"

#include "common/string_util.h"
#include "core/grouped_conv.h"
#include "mapping/plan_builder.h"
#include "tensor/tensor_ops.h"

namespace vwsdk {

Tensord reference_convolution(const MappingPlan& plan, const Tensord& ifm,
                              const Tensord& weights,
                              const ExecutionOptions& options,
                              ConvWorkspace* workspace) {
  ConvConfig config;
  config.stride_w = plan.shape.stride_w;
  config.stride_h = plan.shape.stride_h;
  config.pad_w = plan.shape.pad_w;
  config.pad_h = plan.shape.pad_h;
  const RefBackend& backend =
      BackendRegistry::instance().get(resolve_ref_backend(options.ref_backend));
  return backend.conv2d(ifm, weights, config, workspace);
}

VerificationReport verify_execution(const MappingPlan& plan,
                                    const ExecutionResult& executed,
                                    const Tensord& reference) {
  VerificationReport report;
  report.executed_cycles = executed.cycles;
  report.analytic_cycles = plan.cost.total;
  report.cycles_match = report.executed_cycles == report.analytic_cycles;
  report.programmed_cells = executed.programmed_cells;
  report.max_abs_error = max_abs_diff(executed.ofm, reference);
  report.exact_match = exactly_equal(executed.ofm, reference);
  report.summary =
      cat("mapping ", plan.cost.to_string(), ": ",
          report.exact_match ? "EXACT match" : "mismatch",
          " (max_abs_err=", report.max_abs_error, "), cycles ",
          report.executed_cycles, "/", report.analytic_cycles,
          report.cycles_match ? " (match)" : " (MISMATCH)");
  return report;
}

VerificationReport verify_mapping(const MappingPlan& plan, const Tensord& ifm,
                                  const Tensord& weights,
                                  const ExecutionOptions& options) {
  const ExecutionResult executed = execute_plan(plan, ifm, weights, options);
  const Tensord reference =
      reference_convolution(plan, ifm, weights, options);
  return verify_execution(plan, executed, reference);
}

VerificationReport verify_mapping_random(const MappingPlan& plan,
                                         std::uint64_t seed, int magnitude,
                                         const ExecutionOptions& options) {
  Rng rng(seed);
  Tensord ifm = Tensord::feature_map(plan.shape.in_channels,
                                     plan.shape.ifm_h, plan.shape.ifm_w);
  Tensord weights =
      Tensord::weights(plan.shape.out_channels, plan.shape.in_channels,
                       plan.shape.kernel_h, plan.shape.kernel_w);
  fill_random_int(ifm, rng, magnitude);
  fill_random_int(weights, rng, magnitude);
  return verify_mapping(plan, ifm, weights, options);
}

bool NetworkVerifyResult::all_verified() const {
  for (const LayerVerification& layer : layers) {
    if (!layer.report.exact_match || !layer.report.cycles_match) {
      return false;
    }
  }
  return true;
}

NetworkVerifyResult verify_network(const Network& network,
                                   const Mapper& mapper,
                                   const ArrayGeometry& geometry,
                                   std::uint64_t seed,
                                   const ExecutionOptions& options) {
  NetworkVerifyResult result;
  result.network_name = network.name();
  result.algorithm = mapper.name();
  // Resolve once: an unknown backend fails before any layer runs, and
  // the report names the canonical backend whatever selected it.
  result.backend = resolve_ref_backend(options.ref_backend);
  result.geometry = geometry;
  result.seed = seed;
  ExecutionOptions resolved = options;
  resolved.ref_backend = result.backend;

  const std::vector<ConvLayerDesc>& layers = network.layers();
  result.layers.reserve(layers.size());
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const ConvLayerDesc& layer = layers[i];
    layer.validate();
    GroupedConvShape grouped;
    grouped.base = ConvShape::from_layer(layer);
    grouped.groups = layer.groups;
    grouped.validate();
    const ConvShape shape = grouped.group_shape();
    LayerVerification lv;
    lv.layer = layer;
    lv.decision = mapper.map(shape, geometry);
    const MappingPlan plan =
        build_plan_for_cost(shape, geometry, lv.decision.cost);
    lv.report = verify_mapping_random(plan, seed + i, 4, resolved);
    result.layers.push_back(std::move(lv));
  }
  return result;
}

}  // namespace vwsdk
