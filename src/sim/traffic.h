#pragma once

/// @file traffic.h
/// Discrete-event traffic simulation on the chip farm (extension; gives
/// the ROADMAP's "heavy traffic" claim numbers).
///
/// `vwsdk chip` answers the static question -- how fast is one
/// inference, or one batch, on a pipelined chip allocation.  This module
/// answers the dynamic one: what happens when requests *arrive*.  One or
/// more co-resident networks, each pipelined across chips per an
/// existing `ChipPlan` and replicated `replicas` times, are offered a
/// seeded Poisson request stream (or a trace file replayed verbatim) and
/// simulated event by event on `sim/des.h`:
///
///  * every replica of a plan is an independent batching server: it
///    collects up to `max_batch` queued requests (waiting at most
///    `batch_window` cycles after the first one) and serves the batch of
///    B in `ChipPlan::batch_cycles(B)` = fill + (B-1) x interval cycles;
///  * arrivals are dispatched to the replica with the shortest queue
///    (ties to the lowest index), and bounce with a rejection when
///    `max_queue` is set and every queue is full;
///  * the report carries offered vs. sustained throughput, per-chip busy
///    cycles and utilization, per-replica queue-depth peaks, and the
///    p50/p95/p99/p99.9 completion-latency spectrum.
///
/// Everything is deterministic by construction: the DES core is
/// single-threaded with FIFO tie-breaking, and the arrival streams come
/// from per-network `Rng` instances seeded from one root seed -- the
/// same seed yields a byte-identical JSON report at any `VWSDK_THREADS`.
///
/// `plan_capacity` turns the simulator into a capacity planner: given a
/// p99 SLO and a rate, it searches (doubling, then binary, then a final
/// walk-down so minimality is *proved*, not assumed monotone) for the
/// smallest replica count whose simulated p99 meets the SLO while one
/// replica fewer does not.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "sim/chip_allocator.h"

namespace vwsdk {

/// One request arrival of a replayable trace.
struct Arrival {
  Cycles time = 0;   ///< arrival time, cycles from simulation start
  std::string net;   ///< target network name; "" = the first workload
};

/// A replayable arrival schedule (times non-decreasing).
struct ArrivalTrace {
  std::vector<Arrival> arrivals;
};

/// Parse the CSV arrival-trace schema (docs/FORMATS.md): a `time` column
/// and an optional `net` column, times non-decreasing.
ArrivalTrace parse_arrival_trace_csv(std::istream& in);

/// Parse the JSON arrival-trace schema: `{"arrivals":[{"time":N,"net":S?},...]}`.
ArrivalTrace parse_arrival_trace_json(std::string_view text);

/// Load a trace file, dispatching on the `.json` extension and falling
/// back to CSV.
ArrivalTrace load_arrival_trace(const std::string& path);

/// Knobs shared by the Poisson and trace simulations.
struct TrafficOptions {
  std::uint64_t seed = 42;        ///< root seed for the arrival streams
  double rate = 0.0;              ///< Poisson arrivals per 1e6 cycles, per network
  Cycles duration = 10'000'000;   ///< Poisson-mode horizon in cycles
  Count replicas = 1;             ///< pipeline replicas per network (>= 1)
  Cycles batch_window = 0;        ///< max cycles a replica holds a batch open
  Count max_batch = 1;            ///< largest batch a replica serves at once
  Count max_queue = 0;            ///< per-replica queue bound; 0 = unbounded
};

/// One chip of one replica, as simulated.
struct ChipTraffic {
  Count replica = 0;        ///< 1-based replica index
  Count chip = 0;           ///< 1-based chip index within the replica
  Cycles busy = 0;          ///< cycles spent streaming batches
  double utilization = 0.0; ///< busy / simulated duration
  Count queue_peak = 0;     ///< peak depth of the replica's queue
  Count batches = 0;        ///< batches the replica served
};

/// One network's simulated traffic.
struct NetworkTraffic {
  std::string network;
  std::string algorithm;
  std::string objective;
  std::string array;             ///< "RxC" geometry echo
  Dim arrays_per_chip = 0;
  Count replicas = 0;
  Count chips_per_replica = 0;
  Cycles interval = 0;           ///< ChipPlan::interval()
  Cycles fill_latency = 0;       ///< ChipPlan::fill_latency()
  Count arrivals = 0;
  Count completions = 0;
  Count rejected = 0;            ///< bounced on a full queue
  Count in_flight = 0;           ///< queued or in service at the horizon
  double offered = 0.0;          ///< arrivals per 1e6 cycles
  double sustained = 0.0;        ///< completions per 1e6 cycles
  double capacity = 0.0;         ///< replicas * 1e6 / interval (steady-state)
  double mean_batch = 0.0;       ///< mean served batch size
  double mean_wait = 0.0;        ///< mean cycles from arrival to batch start
  double mean_latency = 0.0;     ///< mean cycles from arrival to completion
  Cycles latency_min = 0;
  Cycles p50 = 0;
  Cycles p95 = 0;
  Cycles p99 = 0;
  Cycles p999 = 0;
  Cycles latency_max = 0;
  std::vector<ChipTraffic> chips;
};

/// The full simulation report.
struct TrafficReport {
  std::uint64_t seed = 0;
  std::string source;        ///< "poisson" or "trace"
  double rate = 0.0;         ///< 0 in trace mode
  Cycles duration = 0;       ///< horizon (Poisson) or last event time (trace)
  Cycles batch_window = 0;
  Count max_batch = 1;
  Count max_queue = 0;
  std::vector<NetworkTraffic> networks;

  Count total_arrivals() const;
  Count total_completions() const;
  Count total_rejected() const;
  Count total_in_flight() const;
};

/// Simulate seeded Poisson arrivals at rate `options.rate` per network
/// for `options.duration` cycles.  Every plan must be feasible and
/// distinctly named; network i's stream is seeded from
/// SplitMix64(options.seed) draw i, so adding a network never perturbs
/// the streams before it.
TrafficReport simulate_traffic(const std::vector<ChipPlan>& plans,
                               const TrafficOptions& options);

/// Replay `trace` against the plans (options.rate/duration ignored;
/// the simulation runs to drain and `duration` reports the last event
/// time).  Arrival `net` names must match a plan's `network_name`.
TrafficReport simulate_trace(const std::vector<ChipPlan>& plans,
                             const ArrivalTrace& trace,
                             const TrafficOptions& options);

/// The capacity-planning answer: the smallest replica count of `plan`
/// meeting a p99 SLO at a Poisson rate, with the failing count-1 result
/// kept as proof of minimality.
struct CapacityResult {
  Cycles slo_p99 = 0;
  double rate = 0.0;
  Count replicas = 0;      ///< smallest count meeting the SLO
  Count chips = 0;         ///< replicas * plan chips per replica
  Cycles p99 = 0;          ///< simulated p99 at `replicas`
  Count lower_replicas = 0;///< replicas - 1, or 0 when replicas == 1
  Cycles lower_p99 = 0;    ///< simulated p99 at `lower_replicas` (> slo)
  TrafficReport report;    ///< the full simulation at `replicas`
};

/// Find the smallest replica count of `plan` whose simulated p99 latency
/// meets `slo_p99` at Poisson rate `options.rate` (> 0 required;
/// `options.replicas` is ignored -- it is the searched variable).
/// Throws Error when no count can meet the SLO: the unloaded fill
/// latency already exceeds it, or the search cap (65536 replicas) is hit
/// within the simulated horizon.
CapacityResult plan_capacity(const ChipPlan& plan, Cycles slo_p99,
                             const TrafficOptions& options);

}  // namespace vwsdk
