#include "sim/reuse.h"

#include "common/error.h"
#include "common/math_util.h"
#include "common/string_util.h"
#include "sim/latency_model.h"

namespace vwsdk {

std::string ReuseReport::to_string() const {
  return cat(row_drives, " fetches over ", input_elements,
             " input elements (", format_fixed(fetches_per_element, 2),
             " fetches/element)");
}

ReuseReport input_reuse(const MappingDecision& decision) {
  VWSDK_REQUIRE(decision.cost.feasible,
                "input_reuse of an infeasible mapping");
  const ConvShape& shape = decision.shape;
  ReuseReport report;
  report.input_elements = checked_mul(
      static_cast<Count>(shape.in_channels),
      checked_mul(shape.ifm_h, shape.ifm_w));
  report.row_drives =
      analytic_activity(shape, decision.geometry, decision.cost)
          .row_activations;
  report.fetches_per_element =
      static_cast<double>(report.row_drives) /
      static_cast<double>(report.input_elements);
  return report;
}

double fetch_reduction(const MappingDecision& baseline,
                       const MappingDecision& candidate) {
  const ReuseReport base = input_reuse(baseline);
  const ReuseReport cand = input_reuse(candidate);
  VWSDK_REQUIRE(cand.row_drives > 0, "candidate performs no fetches");
  return static_cast<double>(base.row_drives) /
         static_cast<double>(cand.row_drives);
}

}  // namespace vwsdk
