#include "sim/pipeline.h"

#include <algorithm>

#include "common/error.h"
#include "common/string_util.h"
#include "core/grouped_conv.h"
#include "mapping/plan_builder.h"
#include "tensor/pooling.h"
#include "tensor/tensor_ops.h"

namespace vwsdk {

std::string PipelineResult::summary() const {
  std::string out = cat("pipeline: ", stages.size(), " stages, ",
                        total_cycles, " cycles, ",
                        all_verified ? "all stages verified" : "FAILURES",
                        "\n");
  for (std::size_t i = 0; i < stages.size(); ++i) {
    out += cat("  stage ", i + 1, " [", stages[i].decision.algorithm, " ",
               stages[i].decision.table_entry(), "] ",
               stages[i].verification.summary, "\n");
  }
  return out;
}

namespace {

/// Merge one group's verification into the stage-level report (counts
/// add, matches AND together, the worst error wins).
void accumulate_verification(VerificationReport& stage,
                             const VerificationReport& group) {
  stage.exact_match = stage.exact_match && group.exact_match;
  stage.max_abs_error = std::max(stage.max_abs_error, group.max_abs_error);
  stage.executed_cycles += group.executed_cycles;
  stage.analytic_cycles += group.analytic_cycles;
  stage.cycles_match = stage.cycles_match && group.cycles_match;
  stage.programmed_cells += group.programmed_cells;
}

}  // namespace

PipelineResult run_pipeline(const std::vector<StageSpec>& stages,
                            const Tensord& input, const Mapper& mapper,
                            const ArrayGeometry& geometry,
                            const ExecutionOptions& options,
                            std::uint64_t weight_seed) {
  VWSDK_REQUIRE(!stages.empty(), "pipeline needs at least one stage");

  PipelineResult result;
  result.output = input;
  result.all_verified = true;

  // One backend scratch buffer spans the whole run: the groups of a
  // stage (and often consecutive stages) share im2col dimensions, so
  // the reference backend reuses one allocation instead of growing a
  // fresh buffer per group.
  ConvWorkspace workspace;

  for (std::size_t i = 0; i < stages.size(); ++i) {
    const StageSpec& spec = stages[i];
    spec.conv.validate();
    const Dim groups = spec.conv.groups;
    const Shape4 expected{1, spec.conv.in_channels, spec.conv.ifm_h,
                          spec.conv.ifm_w};
    VWSDK_REQUIRE(result.output.shape() == expected,
                  cat("stage ", i + 1, " expects input ",
                      expected.to_string(), " but got ",
                      result.output.shape().to_string()));

    // Deterministic integer weights for this stage, grouped-conv layout
    // (OC, IC/G, K_h, K_w): output channel oc convolves input channels
    // [(oc / (OC/G)) * IC/G, ...) of its own group only.
    Rng rng(weight_seed + i);
    Tensord weights =
        Tensord::weights(spec.conv.out_channels,
                         spec.conv.group_in_channels(), spec.conv.kernel_h,
                         spec.conv.kernel_w);
    fill_random_int(weights, rng, 3);

    // One group's sub-convolution (== the full layer when G = 1).  The
    // groups are identical, so a single mapping and plan serves all of
    // them; each group then runs -- and verifies against the dense
    // reference -- independently on its own channel slice.
    GroupedConvShape grouped;
    grouped.base = ConvShape::from_layer(spec.conv);
    grouped.groups = groups;
    const ConvShape shape = grouped.group_shape();
    StageResult stage;
    stage.decision = mapper.map(shape, geometry);
    const MappingPlan plan =
        build_plan_for_cost(shape, geometry, stage.decision.cost);

    const Dim group_ic = spec.conv.group_in_channels();
    const Dim group_oc = spec.conv.group_out_channels();
    Tensord feature_map;
    if (groups > 1) {
      // Preallocate the layer-level OFM the groups scatter into; dense
      // stages take the executed OFM by move instead.
      feature_map = Tensord::feature_map(
          spec.conv.out_channels, spec.conv.ofm_h(), spec.conv.ofm_w());
    }
    for (Dim g = 0; g < groups; ++g) {
      // Dense stages skip the slicing entirely -- the single "group" IS
      // the layer, so the tensors pass through unchanged.
      Tensord sliced_ifm;
      Tensord sliced_weights;
      const Tensord* group_ifm = &result.output;
      const Tensord* group_weights = &weights;
      if (groups > 1) {
        sliced_ifm = slice_channels(result.output, g * group_ic, group_ic);
        sliced_weights = slice_outer(weights, g * group_oc, group_oc);
        group_ifm = &sliced_ifm;
        group_weights = &sliced_weights;
      }
      // One execution per group: verify against the selected reference
      // backend and keep the executed OFM for the layer feature map.
      ExecutionResult executed =
          execute_plan(plan, *group_ifm, *group_weights, options);
      const Tensord reference = reference_convolution(
          plan, *group_ifm, *group_weights, options, &workspace);
      const VerificationReport verification =
          verify_execution(plan, executed, reference);
      if (g == 0) {
        stage.verification = verification;
      } else {
        accumulate_verification(stage.verification, verification);
      }
      result.activity.accumulate(executed.activity);
      if (groups > 1) {
        write_channels(feature_map, executed.ofm, g * group_oc);
      } else {
        feature_map = std::move(executed.ofm);
      }
    }
    if (groups > 1) {
      stage.verification.summary = cat(
          groups, " groups x [", stage.decision.cost.to_string(), "]: ",
          stage.verification.exact_match ? "EXACT match" : "mismatch",
          " (max_abs_err=", stage.verification.max_abs_error, "), cycles ",
          stage.verification.executed_cycles, "/",
          stage.verification.analytic_cycles,
          stage.verification.cycles_match ? " (match)" : " (MISMATCH)");
    }
    result.all_verified =
        result.all_verified && stage.verification.exact_match &&
        stage.verification.cycles_match;
    result.total_cycles =
        result.total_cycles + stage.verification.executed_cycles;

    // Digital post-ops on the assembled layer-level feature map.
    if (spec.relu) {
      feature_map = relu(feature_map);
    }
    if (spec.pool_window > 0) {
      VWSDK_REQUIRE(spec.pool_stride > 0,
                    cat("stage ", i + 1, ": pooling needs a stride"));
      feature_map =
          max_pool2d(feature_map, spec.pool_window, spec.pool_stride);
    }
    stage.output_shape = feature_map.shape();
    result.stages.push_back(std::move(stage));
    result.output = std::move(feature_map);
  }
  return result;
}

}  // namespace vwsdk
