#include "sim/pipeline.h"

#include "common/error.h"
#include "common/string_util.h"
#include "mapping/plan_builder.h"
#include "tensor/pooling.h"
#include "tensor/tensor_ops.h"

namespace vwsdk {

std::string PipelineResult::summary() const {
  std::string out = cat("pipeline: ", stages.size(), " stages, ",
                        total_cycles, " cycles, ",
                        all_verified ? "all stages verified" : "FAILURES",
                        "\n");
  for (std::size_t i = 0; i < stages.size(); ++i) {
    out += cat("  stage ", i + 1, " [", stages[i].decision.algorithm, " ",
               stages[i].decision.table_entry(), "] ",
               stages[i].verification.summary, "\n");
  }
  return out;
}

PipelineResult run_pipeline(const std::vector<StageSpec>& stages,
                            const Tensord& input, const Mapper& mapper,
                            const ArrayGeometry& geometry,
                            const ExecutionOptions& options,
                            std::uint64_t weight_seed) {
  VWSDK_REQUIRE(!stages.empty(), "pipeline needs at least one stage");

  PipelineResult result;
  result.output = input;
  result.all_verified = true;

  for (std::size_t i = 0; i < stages.size(); ++i) {
    const StageSpec& spec = stages[i];
    spec.conv.validate();
    VWSDK_REQUIRE(spec.conv.groups == 1,
                  cat("stage ", i + 1,
                      ": the functional pipeline does not support grouped "
                      "convolutions yet (layer declares groups=",
                      spec.conv.groups, ")"));
    const Shape4 expected{1, spec.conv.in_channels, spec.conv.ifm_h,
                          spec.conv.ifm_w};
    VWSDK_REQUIRE(result.output.shape() == expected,
                  cat("stage ", i + 1, " expects input ",
                      expected.to_string(), " but got ",
                      result.output.shape().to_string()));

    // Deterministic integer weights for this stage.
    Rng rng(weight_seed + i);
    Tensord weights =
        Tensord::weights(spec.conv.out_channels, spec.conv.in_channels,
                         spec.conv.kernel_h, spec.conv.kernel_w);
    fill_random_int(weights, rng, 3);

    const ConvShape shape = ConvShape::from_layer(spec.conv);
    StageResult stage;
    stage.decision = mapper.map(shape, geometry);
    const MappingPlan plan =
        build_plan_for_cost(shape, geometry, stage.decision.cost);
    stage.verification =
        verify_mapping(plan, result.output, weights, options);
    result.all_verified =
        result.all_verified && stage.verification.exact_match &&
        stage.verification.cycles_match;
    result.total_cycles =
        result.total_cycles + stage.verification.executed_cycles;

    // Re-execute post-ops on the verified OFM (the verifier already ran
    // the plan; run once more to obtain the tensor -- clarity over speed).
    const ExecutionResult executed =
        execute_plan(plan, result.output, weights, options);
    result.activity.accumulate(executed.activity);
    Tensord feature_map = executed.ofm;
    if (spec.relu) {
      feature_map = relu(feature_map);
    }
    if (spec.pool_window > 0) {
      VWSDK_REQUIRE(spec.pool_stride > 0,
                    cat("stage ", i + 1, ": pooling needs a stride"));
      feature_map =
          max_pool2d(feature_map, spec.pool_window, spec.pool_stride);
    }
    stage.output_shape = feature_map.shape();
    result.stages.push_back(std::move(stage));
    result.output = std::move(feature_map);
  }
  return result;
}

}  // namespace vwsdk
