#include "sim/chip_allocator.h"

#include <algorithm>
#include <limits>

#include "common/error.h"
#include "common/math_util.h"
#include "common/string_util.h"

namespace vwsdk {

namespace {

/// Layer-level resident tile demand: G x AR x AC (every group programs
/// its own tiles; groups cannot share crossbar columns).
Count layer_tiles(const LayerMapping& lm) {
  return checked_mul(static_cast<Count>(lm.layer.groups),
                     checked_mul(lm.decision.cost.ar_cycles,
                                 lm.decision.cost.ac_cycles));
}

/// Re-price one stage at `arrays`: replicated dispatch for the makespan,
/// the objective for the score.
void price_stage(const Objective& scoring, const LayerMapping& lm,
                 Dim arrays, LayerAllocation& stage) {
  stage.arrays = arrays;
  stage.makespan = dispatch_layer(lm.decision, arrays,
                                  /*allow_replication=*/true,
                                  lm.layer.groups)
                       .makespan;
  stage.score =
      scoring.stage_score(lm.decision.shape, lm.decision.geometry,
                          lm.decision.cost, lm.layer.groups, stage.makespan);
}

/// Fold one chip's stage makespans into a running [lo, hi] range.
void widen_makespan_range(const std::vector<LayerAllocation>& layers,
                          Cycles& lo, Cycles& hi) {
  for (const LayerAllocation& layer : layers) {
    lo = std::min(lo, layer.makespan);
    hi = std::max(hi, layer.makespan);
  }
}

/// min/max makespan balance from a folded range (0 when empty/zeroed).
double balance_of_range(Cycles lo, Cycles hi) {
  if (hi == 0) {
    return 0.0;
  }
  return static_cast<double>(lo) / static_cast<double>(hi);
}

}  // namespace

Cycles ChipAllocation::bottleneck() const {
  Cycles worst = 0;
  for (const LayerAllocation& layer : layers) {
    worst = std::max(worst, layer.makespan);
  }
  return worst;
}

Cycles ChipAllocation::fill_latency() const {
  Cycles total = 0;
  for (const LayerAllocation& layer : layers) {
    total = checked_add(total, layer.makespan);
  }
  return total;
}

Dim ChipAllocation::arrays_used() const {
  Count used = 0;
  for (const LayerAllocation& layer : layers) {
    used = checked_add(used, layer.arrays);
  }
  // Bounded by total_arrays (a Dim) for any allocation this module
  // builds; checked_cast keeps a hand-constructed one honest.
  return checked_cast<Dim>(used);
}

double ChipAllocation::balance() const {
  Cycles lo = std::numeric_limits<Cycles>::max();
  Cycles hi = 0;
  widen_makespan_range(layers, lo, hi);
  return balance_of_range(lo, hi);
}

std::string ChipAllocation::to_string() const {
  if (!feasible) {
    return cat("chip of ", total_arrays, " arrays: INFEASIBLE (",
               infeasible_reason, ")");
  }
  std::string out = cat("chip of ", total_arrays, " arrays, ",
                        arrays_used(), " used; pipeline interval ",
                        bottleneck(), " cycles, fill latency ",
                        fill_latency(), " (objective ", objective, "):\n");
  for (const LayerAllocation& layer : layers) {
    out += cat("  ", layer.layer_name, ": ", layer.arrays, " arrays (",
               layer.tiles, " tiles), makespan ", layer.makespan, "\n");
  }
  return out;
}

Count resident_array_demand(const NetworkMappingResult& result) {
  Count demand = 0;
  for (const LayerMapping& lm : result.layers) {
    demand = checked_add(demand, layer_tiles(lm));
  }
  return demand;
}

ChipAllocation allocate_chip(const NetworkMappingResult& result,
                             Dim total_arrays, const Objective* objective) {
  VWSDK_REQUIRE(total_arrays >= 1, "chip needs at least one array");
  VWSDK_REQUIRE(!result.layers.empty(), "cannot allocate an empty network");
  const Objective& scoring =
      objective != nullptr ? *objective : cycles_objective();

  ChipAllocation allocation;
  allocation.total_arrays = total_arrays;
  allocation.objective = scoring.name();

  const Count demand = resident_array_demand(result);
  if (demand > total_arrays) {
    allocation.feasible = false;
    allocation.infeasible_reason =
        cat("resident weights need ", demand, " arrays but the chip has ",
            total_arrays,
            "; weights would be reprogrammed every inference (shard across "
            "chips with plan_chips)");
    return allocation;
  }
  allocation.feasible = true;

  // Mandatory tiles first.
  for (const LayerMapping& lm : result.layers) {
    LayerAllocation layer;
    layer.layer_name = lm.layer.name;
    layer.groups = lm.layer.groups;
    layer.tiles = layer_tiles(lm);
    layer.serial_cycles = lm.cycles();
    price_stage(scoring, lm, checked_cast<Dim>(layer.tiles), layer);
    allocation.layers.push_back(std::move(layer));
  }

  // Water-filling: every spare array goes to the worst-scoring stage,
  // jumping straight to the array count that actually lowers its
  // makespan (replicated makespans are ceil(serial / arrays), so they
  // sit on plateaus -- one-at-a-time incrementing would burn arrays
  // without improving anything).  A stage that cannot improve -- at its
  // makespan floor, its jump beyond the remaining spares, or its score
  // allocation-invariant (energy) -- is *saturated* and the filling
  // moves on to the next-worst stage: under a non-cycles objective the
  // max-score stage need not be the max-makespan stage, so stopping
  // outright would strand spares that still shorten the interval.
  // (Saturation is permanent: spares only shrink, and a stage's own
  // breakpoints do not depend on the other stages.)
  Dim spare = total_arrays - static_cast<Dim>(demand);
  std::vector<char> saturated(allocation.layers.size(), 0);
  while (spare > 0) {
    std::size_t worst = allocation.layers.size();
    for (std::size_t i = 0; i < allocation.layers.size(); ++i) {
      if (saturated[i] != 0) {
        continue;
      }
      if (worst == allocation.layers.size() ||
          allocation.layers[i].score > allocation.layers[worst].score) {
        worst = i;
      }
    }
    if (worst == allocation.layers.size()) {
      break;  // every stage saturated: nothing more to improve
    }
    LayerAllocation& stage = allocation.layers[worst];
    if (stage.makespan <= 1) {
      saturated[worst] = 1;  // at the floor
      continue;
    }
    // Smallest array count with ceil(serial / arrays) < current makespan.
    const Count needed = ceil_div(stage.serial_cycles, stage.makespan - 1);
    const Count delta = needed - stage.arrays;
    VWSDK_ASSERT(delta > 0, "water-filling breakpoint did not advance");
    if (delta > spare) {
      saturated[worst] = 1;  // cannot improve within the remaining budget
      continue;
    }
    LayerAllocation candidate = stage;
    price_stage(scoring, result.layers[worst], checked_cast<Dim>(needed),
                candidate);
    if (!(candidate.score < stage.score)) {
      saturated[worst] = 1;  // allocation-invariant objective here
      continue;
    }
    stage = candidate;
    spare -= static_cast<Dim>(delta);
  }
  return allocation;
}

Cycles ChipPlan::interval() const {
  Cycles worst = 0;
  for (const ChipAllocation& chip : chips) {
    worst = std::max(worst, chip.bottleneck());
  }
  return worst;
}

Cycles ChipPlan::fill_latency() const {
  Cycles total = 0;
  for (const ChipAllocation& chip : chips) {
    total = checked_add(total, chip.fill_latency());
  }
  return total;
}

Cycles ChipPlan::serial_cycles() const {
  Cycles total = 0;
  for (const ChipAllocation& chip : chips) {
    for (const LayerAllocation& layer : chip.layers) {
      total = checked_add(total, layer.serial_cycles);
    }
  }
  return total;
}

Dim ChipPlan::arrays_used() const {
  // Accumulate in Count: chips.size() x arrays_per_chip can exceed Dim
  // for a sharded-every-layer plan on huge chips, and a wrapped negative
  // "arrays used" would poison every downstream utilization figure.
  Count used = 0;
  for (const ChipAllocation& chip : chips) {
    used = checked_add(used, chip.arrays_used());
  }
  return checked_cast<Dim>(used);
}

double ChipPlan::speedup() const {
  const Cycles worst = interval();
  if (!feasible || worst == 0) {
    return 0.0;
  }
  return static_cast<double>(serial_cycles()) / static_cast<double>(worst);
}

double ChipPlan::balance() const {
  Cycles lo = std::numeric_limits<Cycles>::max();
  Cycles hi = 0;
  for (const ChipAllocation& chip : chips) {
    widen_makespan_range(chip.layers, lo, hi);
  }
  return balance_of_range(lo, hi);
}

Cycles ChipPlan::batch_cycles(Count batch) const {
  VWSDK_REQUIRE(batch >= 1, "batch needs at least one inference");
  VWSDK_REQUIRE(feasible,
                cat("no batch latency for an infeasible plan (",
                    infeasible_reason, ")"));
  return checked_add(fill_latency(),
                     checked_mul(batch - 1, interval()));
}

std::string ChipPlan::to_string() const {
  if (!feasible) {
    return cat("chip plan for ", network_name, " (", algorithm,
               "): INFEASIBLE (", infeasible_reason, ")");
  }
  std::string out =
      cat("chip plan for ", network_name, " (", algorithm, ", objective ",
          objective, "): ", chips.size(), " chip(s) of ", arrays_per_chip,
          " arrays, ", arrays_used(), " used; interval ", interval(),
          " cycles, fill latency ", fill_latency(), ", speedup ",
          format_fixed(speedup(), 2), "x, balance ",
          format_fixed(balance(), 2), "\n");
  for (std::size_t i = 0; i < chips.size(); ++i) {
    out += cat("chip ", i + 1, ": ", chips[i].to_string());
  }
  return out;
}

ChipPlan plan_chips(const NetworkMappingResult& result,
                    const ChipPlanOptions& options) {
  VWSDK_REQUIRE(options.arrays_per_chip >= 1,
                "each chip needs at least one array");
  VWSDK_REQUIRE(options.max_chips >= 0,
                "max_chips must be >= 0 (0 = unbounded)");
  VWSDK_REQUIRE(!result.layers.empty(), "cannot plan an empty network");
  const Objective& scoring = options.objective != nullptr
                                 ? *options.objective
                                 : cycles_objective();

  ChipPlan plan;
  plan.network_name = result.network_name;
  plan.algorithm = result.algorithm;
  plan.objective = scoring.name();
  plan.geometry = result.geometry;
  plan.arrays_per_chip = options.arrays_per_chip;

  // Greedy contiguous packing: each chip takes layers in network order
  // until the next one's resident tiles no longer fit.  For contiguous
  // segments this greedy is optimal in chip count.
  std::vector<std::pair<std::size_t, std::size_t>> segments;  // [begin, end)
  std::size_t begin = 0;
  Count used = 0;
  for (std::size_t i = 0; i < result.layers.size(); ++i) {
    const Count tiles = layer_tiles(result.layers[i]);
    if (tiles > options.arrays_per_chip) {
      plan.feasible = false;
      plan.infeasible_reason =
          cat("layer \"", result.layers[i].layer.name, "\" alone needs ",
              tiles, " resident arrays but a chip has ",
              options.arrays_per_chip,
              "; no sharding of whole layers can fit it");
      return plan;
    }
    if (used + tiles > options.arrays_per_chip) {
      segments.emplace_back(begin, i);
      begin = i;
      used = 0;
    }
    used += tiles;
  }
  segments.emplace_back(begin, result.layers.size());

  if (options.max_chips > 0 &&
      segments.size() > static_cast<std::size_t>(options.max_chips)) {
    plan.feasible = false;
    plan.infeasible_reason =
        cat("resident weights need ", segments.size(), " chips of ",
            options.arrays_per_chip, " arrays (total demand ",
            resident_array_demand(result), ") but the budget is ",
            options.max_chips, " chip(s)");
    return plan;
  }
  plan.feasible = true;

  for (const auto& [seg_begin, seg_end] : segments) {
    NetworkMappingResult shard;
    shard.network_name = result.network_name;
    shard.algorithm = result.algorithm;
    shard.objective = result.objective;
    shard.geometry = result.geometry;
    shard.layers.assign(
        result.layers.begin() + static_cast<std::ptrdiff_t>(seg_begin),
        result.layers.begin() + static_cast<std::ptrdiff_t>(seg_end));
    ChipAllocation chip =
        allocate_chip(shard, options.arrays_per_chip, &scoring);
    VWSDK_ASSERT(chip.feasible, "packed segment must fit its chip");
    plan.chips.push_back(std::move(chip));
  }
  return plan;
}

}  // namespace vwsdk
