#include "sim/chip_allocator.h"

#include <algorithm>

#include "common/error.h"
#include "common/math_util.h"
#include "common/string_util.h"

namespace vwsdk {

Cycles ChipAllocation::bottleneck() const {
  Cycles worst = 0;
  for (const LayerAllocation& layer : layers) {
    worst = std::max(worst, layer.makespan);
  }
  return worst;
}

Cycles ChipAllocation::fill_latency() const {
  Cycles total = 0;
  for (const LayerAllocation& layer : layers) {
    total = checked_add(total, layer.makespan);
  }
  return total;
}

Dim ChipAllocation::arrays_used() const {
  Dim used = 0;
  for (const LayerAllocation& layer : layers) {
    used += layer.arrays;
  }
  return used;
}

std::string ChipAllocation::to_string() const {
  if (!feasible) {
    return cat("chip of ", total_arrays,
               " arrays: INFEASIBLE (resident weights need more arrays)");
  }
  std::string out = cat("chip of ", total_arrays, " arrays, ",
                        arrays_used(), " used; pipeline interval ",
                        bottleneck(), " cycles, fill latency ",
                        fill_latency(), ":\n");
  for (const LayerAllocation& layer : layers) {
    out += cat("  ", layer.layer_name, ": ", layer.arrays, " arrays (",
               layer.tiles, " tiles), makespan ", layer.makespan, "\n");
  }
  return out;
}

Count resident_array_demand(const NetworkMappingResult& result) {
  Count demand = 0;
  for (const LayerMapping& lm : result.layers) {
    demand = checked_add(
        demand, checked_mul(lm.decision.cost.ar_cycles,
                            lm.decision.cost.ac_cycles));
  }
  return demand;
}

ChipAllocation allocate_chip(const NetworkMappingResult& result,
                             Dim total_arrays) {
  VWSDK_REQUIRE(total_arrays >= 1, "chip needs at least one array");
  VWSDK_REQUIRE(!result.layers.empty(), "cannot allocate an empty network");

  ChipAllocation allocation;
  allocation.total_arrays = total_arrays;

  const Count demand = resident_array_demand(result);
  if (demand > total_arrays) {
    allocation.feasible = false;
    return allocation;
  }
  allocation.feasible = true;

  // Mandatory tiles first.
  for (const LayerMapping& lm : result.layers) {
    LayerAllocation layer;
    layer.layer_name = lm.layer.name;
    layer.tiles = checked_mul(lm.decision.cost.ar_cycles,
                              lm.decision.cost.ac_cycles);
    layer.arrays = static_cast<Dim>(layer.tiles);
    layer.makespan =
        dispatch_layer(lm.decision, layer.arrays, /*allow_replication=*/true)
            .makespan;
    allocation.layers.push_back(std::move(layer));
  }

  // Greedy water-filling: every spare array goes to the bottleneck stage.
  Dim spare = total_arrays - static_cast<Dim>(demand);
  while (spare > 0) {
    std::size_t worst = 0;
    for (std::size_t i = 1; i < allocation.layers.size(); ++i) {
      if (allocation.layers[i].makespan >
          allocation.layers[worst].makespan) {
        worst = i;
      }
    }
    LayerAllocation& layer = allocation.layers[worst];
    const Cycles before = layer.makespan;
    layer.arrays += 1;
    layer.makespan = dispatch_layer(result.layers[worst].decision,
                                    layer.arrays,
                                    /*allow_replication=*/true)
                         .makespan;
    --spare;
    if (layer.makespan == before && layer.makespan <= 1) {
      break;  // bottleneck can no longer improve; stop burning arrays
    }
  }
  return allocation;
}

}  // namespace vwsdk
