#pragma once

/// @file dispatch.h
/// Multi-array dispatch model (extension, DESIGN.md §6): a PIM chip has
/// many crossbar arrays; the AR x AC tiles of one layer's mapping are
/// *statically assigned* to arrays (weights are programmed once), and
/// every parallel-window step sends one job per tile to its owning array.
///
/// With T = AR*AC tiles on P arrays, an array owning k tiles is busy
/// k * N_PW cycles; the layer's makespan is max over arrays.  Balanced
/// assignment gives makespan = ceil(T / P) * N_PW.  If weight replication
/// is allowed (the same tile programmed on several arrays), the window
/// grid itself can also be split, giving ceil(T * N_PW / P).
///
/// A grouped layer (groups > 1) dispatches G identical copies of its
/// per-group mapping: G x AR x AC tiles and G x the serial cycles, one
/// independent sub-convolution per group (see core/grouped_conv.h).

#include <string>
#include <vector>

#include "core/mapping_decision.h"

namespace vwsdk {

/// Outcome of dispatching one layer's mapping onto a pool of arrays.
struct DispatchResult {
  Dim array_count = 0;
  Cycles serial_cycles = 0;   ///< single-array total (= groups * cost.total)
  Cycles makespan = 0;        ///< parallel completion time
  std::vector<Cycles> per_array_busy;  ///< busy cycles per array
  bool replicated = false;    ///< weight replication allowed?

  /// Parallel speedup: serial / makespan.  Requires a non-empty
  /// schedule (makespan > 0); default-constructed results throw.
  double speedup() const;

  /// Load balance: min busy / max busy over non-idle arrays (1 = perfect).
  double balance() const;

  /// One-line summary.  Total: an empty (default-constructed) schedule
  /// prints as such instead of throwing through speedup().
  std::string to_string() const;
};

/// Statically assign the mapping's tiles round-robin over `array_count`
/// arrays.  With `allow_replication` the window grid is also partitioned,
/// so arrays can share one tile's work at the cost of programming the
/// tile's weights multiple times.  `groups` scales the layer to G
/// identical sub-convolutions (grouped/depthwise layers); the decision
/// stays the per-group mapping.  A serial total that does not divide
/// evenly over the tiles (SMD-style window chunking) spreads its
/// remainder one cycle at a time over the leading tiles, so the busy
/// cycles always sum to the serial total and the makespan is never
/// under-reported by integer truncation.
DispatchResult dispatch_layer(const MappingDecision& decision,
                              Dim array_count,
                              bool allow_replication = false,
                              Dim groups = 1);

}  // namespace vwsdk
