#include "sim/latency_model.h"

#include <algorithm>

#include "common/error.h"
#include "common/math_util.h"
#include "common/string_util.h"

namespace vwsdk {

std::string LatencyEstimate::to_string() const {
  return cat("cycles=", cycles, " latency=", format_fixed(latency_ns, 1),
             "ns energy=", format_fixed(energy_pj, 1), "pJ conversions=",
             format_fixed(100.0 * conversion_fraction, 1), "%");
}

LatencyEstimate estimate_layer(const MappingDecision& decision,
                               const EnergyParams& params,
                               Dim parallel_arrays) {
  VWSDK_REQUIRE(parallel_arrays >= 1, "need at least one array");
  params.validate();
  const EnergyReport activity =
      analytic_activity(decision.shape, decision.geometry, decision.cost);

  LatencyEstimate estimate;
  estimate.cycles = activity.cycles;
  estimate.energy_pj = activity.energy_pj(params);
  estimate.energy_full_array_pj = activity.full_array_energy_pj(
      params, decision.geometry.rows, decision.geometry.cols);
  estimate.conversion_fraction = activity.conversion_fraction(params);
  // Tiles of one parallel window can run on distinct arrays concurrently.
  const Count tiles_per_window =
      checked_mul(decision.cost.ar_cycles, decision.cost.ac_cycles);
  const Count concurrency =
      std::min<Count>(parallel_arrays, tiles_per_window);
  const Cycles serial_cycles = checked_mul(
      decision.cost.n_parallel_windows, ceil_div(tiles_per_window,
                                                 concurrency));
  estimate.latency_ns = static_cast<double>(serial_cycles) * params.cycle_ns;
  return estimate;
}

}  // namespace vwsdk
