#pragma once

/// @file verifier.h
/// End-to-end verification of a mapping: execute the plan on the crossbar
/// simulator and compare with the reference direct convolution.

#include <string>

#include "mapping/mapping_plan.h"
#include "sim/executor.h"

namespace vwsdk {

/// Outcome of one verification run.
struct VerificationReport {
  bool exact_match = false;    ///< OFM identical to reference (bitwise)
  double max_abs_error = 0.0;  ///< worst element error vs reference
  Cycles executed_cycles = 0;  ///< cycles the simulator ran
  Cycles analytic_cycles = 0;  ///< cycles Eq. (8)/(1) predicts
  bool cycles_match = false;   ///< the two agree
  Count programmed_cells = 0;
  std::string summary;         ///< one-line human-readable result
};

/// Execute `plan` on (ifm, weights) and compare with conv2d_direct.
/// With ideal ADC and no noise and integer-valued tensors the match is
/// exact; with quantization/noise only max_abs_error is meaningful.
VerificationReport verify_mapping(const MappingPlan& plan, const Tensord& ifm,
                                  const Tensord& weights,
                                  const ExecutionOptions& options = {});

/// Convenience: deterministic integer tensors (seeded), then
/// verify_mapping.  `magnitude` bounds the integer values.
VerificationReport verify_mapping_random(const MappingPlan& plan,
                                         std::uint64_t seed,
                                         int magnitude = 4,
                                         const ExecutionOptions& options = {});

}  // namespace vwsdk
