#pragma once

/// @file verifier.h
/// End-to-end verification of a mapping: execute the plan on the
/// crossbar simulator and compare with a reference convolution computed
/// by the execution backend ExecutionOptions::ref_backend selects
/// (tensor/exec_backend.h; default "gemm", with "scalar" as the oracle).

#include <cstdint>
#include <string>
#include <vector>

#include "core/mapping_decision.h"
#include "mapping/mapping_plan.h"
#include "nn/network.h"
#include "sim/executor.h"
#include "tensor/exec_backend.h"

namespace vwsdk {

class Mapper;

/// Outcome of one verification run.
struct VerificationReport {
  bool exact_match = false;    ///< OFM identical to reference (bitwise)
  double max_abs_error = 0.0;  ///< worst element error vs reference
  Cycles executed_cycles = 0;  ///< cycles the simulator ran
  Cycles analytic_cycles = 0;  ///< cycles Eq. (8)/(1) predicts
  bool cycles_match = false;   ///< the two agree
  Count programmed_cells = 0;
  std::string summary;         ///< one-line human-readable result
};

/// The reference OFM for `plan` on (ifm, weights), computed by the
/// backend `options.ref_backend` resolves to with the plan's
/// stride/padding.  `workspace` is optional backend scratch, reusable
/// across calls (the pipeline shares one across groups and stages).
Tensord reference_convolution(const MappingPlan& plan, const Tensord& ifm,
                              const Tensord& weights,
                              const ExecutionOptions& options = {},
                              ConvWorkspace* workspace = nullptr);

/// Build the report comparing an already-run execution against an
/// already-computed reference OFM.  Callers that need the executed
/// tensor itself (the pipeline does) use this to verify without running
/// the plan twice.
VerificationReport verify_execution(const MappingPlan& plan,
                                    const ExecutionResult& executed,
                                    const Tensord& reference);

/// Execute `plan` on (ifm, weights) and compare with the reference
/// backend.  With ideal ADC and no noise and integer-valued tensors the
/// match is exact; with quantization/noise only max_abs_error is
/// meaningful.
VerificationReport verify_mapping(const MappingPlan& plan, const Tensord& ifm,
                                  const Tensord& weights,
                                  const ExecutionOptions& options = {});

/// Convenience: deterministic integer tensors (seeded), then
/// verify_mapping.  `magnitude` bounds the integer values.
VerificationReport verify_mapping_random(const MappingPlan& plan,
                                         std::uint64_t seed,
                                         int magnitude = 4,
                                         const ExecutionOptions& options = {});

/// One layer's slice of a network-level verification.
struct LayerVerification {
  ConvLayerDesc layer{};        ///< the layer as specified
  MappingDecision decision{};   ///< the mapping that was executed
  VerificationReport report{};  ///< simulator-vs-reference outcome
};

/// A whole network verified layer by layer on the crossbar simulator
/// (the computation behind `vwsdk verify` and the serve `verify` op).
struct NetworkVerifyResult {
  std::string network_name;
  std::string algorithm;       ///< mapper the layers were mapped with
  std::string backend;         ///< resolved reference-backend name
  ArrayGeometry geometry{};
  std::uint64_t seed = 0;      ///< base seed of the integer test tensors
  std::vector<LayerVerification> layers;

  /// True when every layer matched the reference exactly, cycle counts
  /// included.
  bool all_verified() const;
};

/// Map each layer of `network` with `mapper` on `geometry`, build its
/// plan, execute it on the crossbar simulator with deterministic integer
/// tensors (layer i uses seed + i), and compare against the reference
/// backend `options.ref_backend` resolves to.  Grouped layers verify one
/// group's sub-convolution (all groups are identical).  A mismatch is
/// reported per layer, never thrown.
NetworkVerifyResult verify_network(const Network& network,
                                   const Mapper& mapper,
                                   const ArrayGeometry& geometry,
                                   std::uint64_t seed = 42,
                                   const ExecutionOptions& options = {});

}  // namespace vwsdk
