#pragma once

/// @file verifier.h
/// End-to-end verification of a mapping: execute the plan on the
/// crossbar simulator and compare with a reference convolution computed
/// by the execution backend ExecutionOptions::ref_backend selects
/// (tensor/exec_backend.h; default "gemm", with "scalar" as the oracle).

#include <string>

#include "mapping/mapping_plan.h"
#include "sim/executor.h"
#include "tensor/exec_backend.h"

namespace vwsdk {

/// Outcome of one verification run.
struct VerificationReport {
  bool exact_match = false;    ///< OFM identical to reference (bitwise)
  double max_abs_error = 0.0;  ///< worst element error vs reference
  Cycles executed_cycles = 0;  ///< cycles the simulator ran
  Cycles analytic_cycles = 0;  ///< cycles Eq. (8)/(1) predicts
  bool cycles_match = false;   ///< the two agree
  Count programmed_cells = 0;
  std::string summary;         ///< one-line human-readable result
};

/// The reference OFM for `plan` on (ifm, weights), computed by the
/// backend `options.ref_backend` resolves to with the plan's
/// stride/padding.  `workspace` is optional backend scratch, reusable
/// across calls (the pipeline shares one across groups and stages).
Tensord reference_convolution(const MappingPlan& plan, const Tensord& ifm,
                              const Tensord& weights,
                              const ExecutionOptions& options = {},
                              ConvWorkspace* workspace = nullptr);

/// Build the report comparing an already-run execution against an
/// already-computed reference OFM.  Callers that need the executed
/// tensor itself (the pipeline does) use this to verify without running
/// the plan twice.
VerificationReport verify_execution(const MappingPlan& plan,
                                    const ExecutionResult& executed,
                                    const Tensord& reference);

/// Execute `plan` on (ifm, weights) and compare with the reference
/// backend.  With ideal ADC and no noise and integer-valued tensors the
/// match is exact; with quantization/noise only max_abs_error is
/// meaningful.
VerificationReport verify_mapping(const MappingPlan& plan, const Tensord& ifm,
                                  const Tensord& weights,
                                  const ExecutionOptions& options = {});

/// Convenience: deterministic integer tensors (seeded), then
/// verify_mapping.  `magnitude` bounds the integer values.
VerificationReport verify_mapping_random(const MappingPlan& plan,
                                         std::uint64_t seed,
                                         int magnitude = 4,
                                         const ExecutionOptions& options = {});

}  // namespace vwsdk
