#include "sim/schedule.h"

#include "common/error.h"
#include "common/math_util.h"

namespace vwsdk {

Cycles schedule_cycle_count(const MappingPlan& plan) {
  return plan.total_cycles();
}

std::vector<CycleDescriptor> build_schedule(const MappingPlan& plan) {
  std::vector<CycleDescriptor> schedule;
  schedule.reserve(static_cast<std::size_t>(plan.total_cycles()));
  Count index = 0;

  if (plan.kind == PlanKind::kSmd) {
    const Count chunks =
        ceil_div(plan.shape.num_windows(), plan.cost.smd_duplicates);
    for (Count chunk = 0; chunk < chunks; ++chunk) {
      for (const ArrayTile& tile : plan.tiles) {
        CycleDescriptor cycle;
        cycle.index = index++;
        cycle.ar = tile.ar_index;
        cycle.ac = tile.ac_index;
        cycle.first_window = chunk * plan.cost.smd_duplicates;
        schedule.push_back(cycle);
      }
    }
    return schedule;
  }

  for (const Dim by : plan.base_y) {
    for (const Dim bx : plan.base_x) {
      for (const ArrayTile& tile : plan.tiles) {
        CycleDescriptor cycle;
        cycle.index = index++;
        cycle.ar = tile.ar_index;
        cycle.ac = tile.ac_index;
        cycle.base_x = bx;
        cycle.base_y = by;
        schedule.push_back(cycle);
      }
    }
  }
  VWSDK_ASSERT(static_cast<Cycles>(schedule.size()) == plan.total_cycles(),
               "schedule length disagrees with plan cycles");
  return schedule;
}

}  // namespace vwsdk
