#include "sim/dispatch.h"

#include <algorithm>

#include "common/error.h"
#include "common/math_util.h"
#include "common/string_util.h"

namespace vwsdk {

double DispatchResult::speedup() const {
  VWSDK_REQUIRE(makespan > 0, "dispatch produced an empty schedule");
  return static_cast<double>(serial_cycles) / static_cast<double>(makespan);
}

double DispatchResult::balance() const {
  Cycles busy_min = std::numeric_limits<Cycles>::max();
  Cycles busy_max = 0;
  for (const Cycles busy : per_array_busy) {
    if (busy == 0) {
      continue;  // idle arrays do not count against balance
    }
    busy_min = std::min(busy_min, busy);
    busy_max = std::max(busy_max, busy);
  }
  if (busy_max == 0) {
    return 0.0;
  }
  return static_cast<double>(busy_min) / static_cast<double>(busy_max);
}

std::string DispatchResult::to_string() const {
  if (makespan == 0) {
    return cat("dispatch over ", array_count, " arrays: empty schedule");
  }
  return cat("dispatch over ", array_count, " arrays",
             replicated ? " (replicated)" : "", ": makespan ", makespan,
             " of ", serial_cycles, " serial cycles, speedup ",
             format_fixed(speedup(), 2), ", balance ",
             format_fixed(balance(), 2));
}

DispatchResult dispatch_layer(const MappingDecision& decision,
                              Dim array_count, bool allow_replication,
                              Dim groups) {
  VWSDK_REQUIRE(array_count >= 1, "need at least one array");
  VWSDK_REQUIRE(groups >= 1, "groups must be >= 1");
  VWSDK_REQUIRE(decision.cost.feasible, "cannot dispatch infeasible mapping");

  DispatchResult result;
  result.array_count = array_count;
  result.serial_cycles = checked_mul(groups, decision.cost.total);
  result.replicated = allow_replication;
  result.per_array_busy.assign(static_cast<std::size_t>(array_count), 0);

  const Count tiles = checked_mul(
      groups,
      checked_mul(decision.cost.ar_cycles, decision.cost.ac_cycles));

  if (allow_replication) {
    // Work is freely divisible: split all tile-jobs evenly.
    const Cycles total = result.serial_cycles;
    const Cycles share = ceil_div(total, array_count);
    Cycles remaining = total;
    for (Cycles& busy : result.per_array_busy) {
      busy = std::min(share, remaining);
      remaining -= busy;
      if (remaining <= 0) {
        break;
      }
    }
    result.makespan = share;
    return result;
  }

  // Static ownership: tile i lives on array i mod P.  Per-tile work is
  // serial / tiles (= N_PW for windowed mappings); a remainder (window
  // chunking that does not divide the tiles evenly) is spread one cycle
  // at a time over the leading tiles, never silently truncated.
  const Cycles per_tile_work = result.serial_cycles / tiles;
  const Cycles remainder = result.serial_cycles % tiles;
  for (Count tile = 0; tile < tiles; ++tile) {
    result.per_array_busy[static_cast<std::size_t>(tile % array_count)] +=
        per_tile_work + (tile < remainder ? 1 : 0);
  }
  result.makespan =
      *std::max_element(result.per_array_busy.begin(),
                        result.per_array_busy.end());
  return result;
}

}  // namespace vwsdk
