#pragma once

/// @file schedule.h
/// Enumeration of the computing cycles a MappingPlan executes.
///
/// A cycle is one (parallel-window base, AR tile, AC tile) triple -- or,
/// for SMD plans, one (window chunk, tile) pair.  The executor walks this
/// schedule; tests inspect it to pin the cycle count to the analytic model
/// without running any arithmetic.

#include <vector>

#include "mapping/mapping_plan.h"

namespace vwsdk {

/// One computing cycle of a plan.
struct CycleDescriptor {
  Count index = 0;       ///< position in the schedule
  Dim ar = 0;            ///< AR tile index
  Dim ac = 0;            ///< AC tile index
  Dim base_x = 0;        ///< parallel-window base (padded pixels); SMD: 0
  Dim base_y = 0;        ///< parallel-window base (padded pixels); SMD: 0
  Count first_window = 0;  ///< SMD only: first window index of the chunk
};

/// Number of cycles the plan schedules (equals plan.total_cycles()).
Cycles schedule_cycle_count(const MappingPlan& plan);

/// Materialize the full schedule, base-grid row-major (y outer, x inner),
/// then AR, then AC -- partial sums of one output group are produced in
/// consecutive cycles.  Intended for small plans (tests, examples); the
/// executor streams the same order without materializing.
std::vector<CycleDescriptor> build_schedule(const MappingPlan& plan);

}  // namespace vwsdk
