#pragma once

/// @file pipeline.h
/// Whole-network functional simulation on the PIM substrate.
///
/// Chains conv stages (each mapped by a chosen algorithm, built into a
/// plan, and executed on crossbars) with ReLU and pooling in the digital
/// periphery -- a miniature end-to-end PIM inference.  Used by the
/// functional-verification example and integration tests; the paper's
/// full-size networks are evaluated analytically (their functional
/// execution is exact but needlessly slow at billions of MACs).

#include <string>
#include <vector>

#include "core/mapping_decision.h"
#include "sim/executor.h"
#include "sim/verifier.h"

namespace vwsdk {

/// One pipeline stage: a convolution plus optional digital post-ops.
struct StageSpec {
  ConvLayerDesc conv{};
  bool relu = true;
  Dim pool_window = 0;  ///< 0 = no pooling
  Dim pool_stride = 0;
};

/// Per-stage outcome inside a pipeline run.
struct StageResult {
  MappingDecision decision{};
  VerificationReport verification{};
  Shape4 output_shape{};
};

/// Whole-run outcome.
struct PipelineResult {
  Tensord output;             ///< final feature map
  Cycles total_cycles = 0;    ///< Σ of conv cycles over stages
  EnergyReport activity{};    ///< Σ of crossbar activity over stages
  bool all_verified = false;  ///< every stage matched its reference conv
  std::vector<StageResult> stages;

  std::string summary() const;
};

/// Run `stages` starting from `input`.  Weights for stage i are generated
/// deterministically from `weight_seed` + i (integer-valued, grouped
/// layout (OC, IC/G, K_h, K_w)).  Each stage's conv descriptor must match
/// the incoming tensor's shape (validated).  Every stage is verified --
/// against the reference backend `options.ref_backend` selects (see
/// tensor/exec_backend.h) -- before its post-ops are applied.  Grouped
/// stages (groups > 1, depthwise included) run one group at a time on
/// their channel slices -- a single per-group mapping/plan serves every
/// group, each group executes exactly once, and one backend workspace is
/// reused across all groups and stages -- and concatenate the group OFMs
/// channel-wise; each group is verified against the dense reference
/// convolution of its slice.
PipelineResult run_pipeline(const std::vector<StageSpec>& stages,
                            const Tensord& input, const Mapper& mapper,
                            const ArrayGeometry& geometry,
                            const ExecutionOptions& options = {},
                            std::uint64_t weight_seed = 42);

}  // namespace vwsdk
