#pragma once

/// @file des.h
/// Deterministic discrete-event scheduling core for the traffic simulator.
///
/// A single-threaded event queue keyed by (time, insertion sequence): two
/// events at the same cycle run in the order they were scheduled, so a
/// seeded simulation replays bit-identically regardless of platform, STL
/// heap implementation details, or `VWSDK_THREADS`.  Actions are arbitrary
/// callables and may schedule further events at or after the current time
/// (cascades), which is how arrival streams self-perpetuate in
/// `sim/traffic.cpp`.

#include <functional>
#include <vector>

#include "common/types.h"

namespace vwsdk {

/// Min-heap of timestamped actions with FIFO tie-breaking.
class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Current simulation time: the timestamp of the event being processed,
  /// or the horizon passed to the last `run_until()` once it returns.
  Cycles now() const { return now_; }

  /// Schedule `action` at absolute `time`; requires time >= now().
  void at(Cycles time, Action action);

  /// Schedule `action` `delay` cycles from now; requires delay >= 0.
  void after(Cycles delay, Action action);

  /// Process every event with time <= horizon (including events those
  /// events schedule), then advance now() to `horizon`.  Returns the
  /// number of events processed by this call.
  Count run_until(Cycles horizon);

  /// Process events until the queue is empty; now() ends at the last
  /// event's timestamp.  Returns the number of events processed.
  Count run_all();

  bool empty() const { return heap_.empty(); }

  /// Events scheduled but not yet processed.
  Count pending() const { return static_cast<Count>(heap_.size()); }

  /// Events processed over the queue's lifetime.
  Count processed() const { return processed_; }

 private:
  struct Event {
    Cycles time = 0;
    Count seq = 0;
    Action action;
  };

  /// std::push_heap builds a max-heap, so "later" must compare greater.
  static bool later(const Event& a, const Event& b) {
    return a.time != b.time ? a.time > b.time : a.seq > b.seq;
  }

  /// Pop and run the earliest event, advancing now() to its time.
  void step();

  std::vector<Event> heap_;
  Cycles now_ = 0;
  Count next_seq_ = 0;
  Count processed_ = 0;
};

}  // namespace vwsdk
