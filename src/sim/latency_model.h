#pragma once

/// @file latency_model.h
/// Analytic latency/energy estimation for a mapping decision -- the bridge
/// from cycle counts (the paper's metric) to time and energy (the paper's
/// motivation), without running the functional simulator.
///
/// The underlying per-cycle activity model lives in mapping/activity.h
/// (`analytic_activity`), where the search objectives also use it; this
/// header adds the per-layer estimate on top.

#include "core/mapping_decision.h"
#include "mapping/activity.h"
#include "pim/energy_model.h"

namespace vwsdk {

/// Latency and energy of one layer's inference under a mapping.
struct LatencyEstimate {
  Cycles cycles = 0;
  double latency_ns = 0.0;
  double energy_pj = 0.0;  ///< per-active-row/column accounting
  double energy_full_array_pj = 0.0;  ///< all converters fire every cycle
  double conversion_fraction = 0.0;  ///< share of energy in AD/DA conversion

  std::string to_string() const;
};

/// Estimate a layer.  `parallel_arrays` models a chip with several arrays
/// operating concurrently: the AR x AC tiles of each parallel window are
/// dispatched round-robin, dividing latency by min(parallel_arrays,
/// tiles-per-window) while total energy is unchanged (extension, DESIGN.md
/// §6).
LatencyEstimate estimate_layer(const MappingDecision& decision,
                               const EnergyParams& params,
                               Dim parallel_arrays = 1);

}  // namespace vwsdk
