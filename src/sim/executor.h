#pragma once

/// @file executor.h
/// Functional execution of a MappingPlan on crossbar arrays.
///
/// The executor programs one Crossbar per (AR, AC) tile, then walks the
/// cycle schedule: each cycle drives the rows with the input-feature-map
/// values the plan's row bindings name, performs the analog MVM, applies
/// the ADC model, and scatters the column read-outs into the output
/// feature map (accumulating partial sums across AR tiles).
///
/// This is the strongest form of evidence a mapping can get in software:
/// if the plan (placement, schedule, tiling) is wrong in any way, the
/// produced OFM will not match the reference convolution.

#include <string>

#include "mapping/mapping_plan.h"
#include "pim/adc.h"
#include "pim/energy_model.h"
#include "pim/noise.h"
#include "tensor/tensor.h"

namespace vwsdk {

/// Knobs of a functional execution.
struct ExecutionOptions {
  ConverterModel adc{};             ///< ideal by default
  NoiseConfig noise{};              ///< no device variation by default
  std::uint64_t noise_seed = 1;     ///< seed for the noise model
  bool validate_plan = true;        ///< run plan_validate first
  bool check_overlap_consistency = true;  ///< recomputed outputs must agree

  /// Reference backend verification compares the execution against: a
  /// BackendRegistry name or alias; empty resolves through the
  /// `VWSDK_REF_BACKEND` environment variable, then "gemm" (see
  /// tensor/exec_backend.h).  The "scalar" oracle is always available.
  std::string ref_backend;
};

/// What an execution produced and what it cost.
struct ExecutionResult {
  Tensord ofm;                ///< (1, OC, OH, OW)
  Cycles cycles = 0;          ///< computing cycles executed
  EnergyReport activity{};    ///< rows driven / cols read / cell MACs
  Count arrays_used = 0;      ///< tiles (distinct array programmings)
  Count programmed_cells = 0; ///< total cells programmed across tiles
  double min_tile_utilization = 0.0;  ///< min over tiles of programmed frac
  double mean_tile_utilization = 0.0; ///< mean over tiles
};

/// Execute `plan` on the given input and weights.
/// @param ifm     (1, IC, I_h, I_w), matching plan.shape.
/// @param weights (OC, IC, K_h, K_w), matching plan.shape.
ExecutionResult execute_plan(const MappingPlan& plan, const Tensord& ifm,
                             const Tensord& weights,
                             const ExecutionOptions& options = {});

}  // namespace vwsdk
