#include "sim/executor.h"

#include <algorithm>
#include <optional>

#include "common/error.h"
#include "common/math_util.h"
#include "common/string_util.h"
#include "mapping/plan_validate.h"
#include "pim/crossbar.h"

namespace vwsdk {

namespace {

/// Padded-coordinate input fetch: (y, x) are relative to the padded
/// feature map; outside the real extent the value is the zero padding.
double fetch_input(const Tensord& ifm, const ConvShape& shape, Dim ic, Dim y,
                   Dim x) {
  const Dim real_y = y - shape.pad_h;
  const Dim real_x = x - shape.pad_w;
  if (real_y < 0 || real_y >= shape.ifm_h || real_x < 0 ||
      real_x >= shape.ifm_w) {
    return 0.0;
  }
  return ifm.at(ic, real_y, real_x);
}

/// Write one output value, optionally checking that a recomputation (an
/// overlapping clamped window) reproduces the committed value exactly.
void commit_output(Tensord& ofm, std::vector<char>& written,
                   const ConvShape& shape, Dim oc, Count oy, Count ox,
                   double value, bool check_consistency) {
  const Count ow = shape.windows_w();
  const std::size_t flat = static_cast<std::size_t>(
      (static_cast<Count>(oc) * shape.windows_h() + oy) * ow + ox);
  if (written[flat] != 0 && check_consistency) {
    const double prior = ofm.at(oc, static_cast<Dim>(oy),
                                static_cast<Dim>(ox));
    VWSDK_ASSERT(prior == value,
                 cat("overlapping windows disagree at oc=", oc, " oy=", oy,
                     " ox=", ox, ": ", prior, " vs ", value));
  }
  ofm.at(oc, static_cast<Dim>(oy), static_cast<Dim>(ox)) = value;
  written[flat] = 1;
}

}  // namespace

ExecutionResult execute_plan(const MappingPlan& plan, const Tensord& ifm,
                             const Tensord& weights,
                             const ExecutionOptions& options) {
  const ConvShape& shape = plan.shape;
  shape.validate();
  const Shape4 expected_ifm{1, shape.in_channels, shape.ifm_h, shape.ifm_w};
  VWSDK_REQUIRE(ifm.shape() == expected_ifm,
                cat("IFM shape ", ifm.shape().to_string(),
                    " does not match layer ", shape.to_string()));
  const Shape4 expected_weights{shape.out_channels, shape.in_channels,
                                shape.kernel_h, shape.kernel_w};
  VWSDK_REQUIRE(weights.shape() == expected_weights,
                cat("weight shape ", weights.shape().to_string(),
                    " does not match layer ", shape.to_string()));
  if (options.validate_plan) {
    expect_valid(plan);
  }

  // --- Program one crossbar per tile. ---------------------------------
  std::optional<NoiseModel> noise;
  if (options.noise.enabled()) {
    noise.emplace(options.noise, options.noise_seed);
  }
  std::vector<Crossbar> arrays;
  arrays.reserve(plan.tiles.size());
  for (const ArrayTile& tile : plan.tiles) {
    Crossbar array(plan.geometry);
    for (const CellAssignment& cell : tile.cells) {
      array.program(cell.row, cell.col,
                    weights.at(cell.oc, cell.ic, cell.ky, cell.kx),
                    noise.has_value() ? &*noise : nullptr);
    }
    arrays.push_back(std::move(array));
  }

  ExecutionResult result;
  result.ofm = Tensord::feature_map(shape.out_channels,
                                    static_cast<Dim>(shape.windows_h()),
                                    static_cast<Dim>(shape.windows_w()));
  result.arrays_used = static_cast<Count>(arrays.size());
  double min_util = 1.0;
  double sum_util = 0.0;
  for (const Crossbar& array : arrays) {
    result.programmed_cells =
        checked_add(result.programmed_cells, array.programmed_cell_count());
    min_util = std::min(min_util, array.utilization());
    sum_util += array.utilization();
  }
  result.min_tile_utilization = arrays.empty() ? 0.0 : min_util;
  result.mean_tile_utilization =
      arrays.empty() ? 0.0 : sum_util / static_cast<double>(arrays.size());

  std::vector<char> written(
      static_cast<std::size_t>(result.ofm.size()), 0);

  const auto run_cycle = [&](const ArrayTile& tile, Count tile_index,
                             const std::vector<double>& input) {
    ++result.cycles;
    result.activity.cycles += 1;
    result.activity.row_activations += static_cast<Count>(tile.rows.size());
    result.activity.col_reads += static_cast<Count>(tile.cols.size());
    result.activity.cell_macs += static_cast<Count>(tile.cells.size());
    return arrays[static_cast<std::size_t>(tile_index)].compute(input,
                                                                options.adc);
  };

  if (plan.kind == PlanKind::kSmd) {
    // D block-diagonal duplicates; each cycle covers up to D consecutive
    // kernel windows, row-major over the output grid.
    VWSDK_ASSERT(plan.tiles.size() == 1, "SMD plans have one tile");
    const ArrayTile& tile = plan.tiles.front();
    const Count n_windows = shape.num_windows();
    const Dim dup_count = plan.cost.smd_duplicates;
    const Count ow = shape.windows_w();
    std::vector<double> input(static_cast<std::size_t>(plan.geometry.rows));

    for (Count first = 0; first < n_windows; first += dup_count) {
      const Count live = std::min<Count>(dup_count, n_windows - first);
      std::fill(input.begin(), input.end(), 0.0);
      for (const RowBinding& rb : tile.rows) {
        if (rb.dup >= live) {
          continue;  // idle duplicate in the final chunk
        }
        const Count window = first + rb.dup;
        const Dim base_y =
            static_cast<Dim>((window / ow) * shape.stride_h);
        const Dim base_x =
            static_cast<Dim>((window % ow) * shape.stride_w);
        input[static_cast<std::size_t>(rb.row)] =
            fetch_input(ifm, shape, rb.ic, base_y + rb.dy, base_x + rb.dx);
      }
      const std::vector<double> out = run_cycle(tile, 0, input);
      for (const ColBinding& cb : tile.cols) {
        if (cb.dup >= live) {
          continue;
        }
        const Count window = first + cb.dup;
        commit_output(result.ofm, written, shape, cb.oc, window / ow,
                      window % ow, out[static_cast<std::size_t>(cb.col)],
                      options.check_overlap_consistency);
      }
    }
  } else {
    // Windowed / im2col: for each parallel-window base, accumulate the
    // AR partial sums per AC tile, then commit the outputs.
    std::vector<double> input(static_cast<std::size_t>(plan.geometry.rows));
    std::vector<double> acc(static_cast<std::size_t>(plan.geometry.cols));

    for (const Dim by : plan.base_y) {
      for (const Dim bx : plan.base_x) {
        for (Dim ac = 0; ac < plan.cost.ac_cycles; ++ac) {
          std::fill(acc.begin(), acc.end(), 0.0);
          const ArrayTile* last_tile = nullptr;
          for (Dim ar = 0; ar < plan.cost.ar_cycles; ++ar) {
            const Count tile_index =
                static_cast<Count>(ar) * plan.cost.ac_cycles + ac;
            const ArrayTile& tile =
                plan.tiles[static_cast<std::size_t>(tile_index)];
            last_tile = &tile;
            std::fill(input.begin(), input.end(), 0.0);
            for (const RowBinding& rb : tile.rows) {
              input[static_cast<std::size_t>(rb.row)] = fetch_input(
                  ifm, shape, rb.ic, by + rb.dy, bx + rb.dx);
            }
            const std::vector<double> out =
                run_cycle(tile, tile_index, input);
            for (std::size_t col = 0; col < out.size(); ++col) {
              acc[col] += out[col];
            }
          }
          // Column bindings are identical across the AR tiles of one AC
          // band; commit once per base using the last tile's bindings.
          VWSDK_ASSERT(last_tile != nullptr, "no AR tiles executed");
          for (const ColBinding& cb : last_tile->cols) {
            const Count oy = by / shape.stride_h + cb.win_py;
            const Count ox = bx / shape.stride_w + cb.win_px;
            commit_output(result.ofm, written, shape, cb.oc, oy, ox,
                          acc[static_cast<std::size_t>(cb.col)],
                          options.check_overlap_consistency);
          }
        }
      }
    }
  }

  // Every output element must have been produced.
  const bool all_written =
      std::all_of(written.begin(), written.end(),
                  [](char flag) { return flag != 0; });
  VWSDK_ASSERT(all_written, "execution left output elements unwritten");
  VWSDK_ASSERT(result.cycles == plan.cost.total,
               cat("executed ", result.cycles, " cycles, analytic model says ",
                   plan.cost.total));
  return result;
}

}  // namespace vwsdk
