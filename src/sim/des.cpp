#include "sim/des.h"

#include <algorithm>
#include <utility>

#include "common/error.h"

namespace vwsdk {

void EventQueue::at(Cycles time, Action action) {
  if (time < now_) {
    throw InvalidArgument("EventQueue::at cannot schedule in the past");
  }
  if (!action) {
    throw InvalidArgument("EventQueue::at requires a callable action");
  }
  heap_.push_back(Event{time, next_seq_++, std::move(action)});
  std::push_heap(heap_.begin(), heap_.end(), later);
}

void EventQueue::after(Cycles delay, Action action) {
  if (delay < 0) {
    throw InvalidArgument("EventQueue::after requires delay >= 0");
  }
  at(now_ + delay, std::move(action));
}

void EventQueue::step() {
  std::pop_heap(heap_.begin(), heap_.end(), later);
  Event event = std::move(heap_.back());
  heap_.pop_back();
  now_ = event.time;
  ++processed_;
  event.action();
}

Count EventQueue::run_until(Cycles horizon) {
  if (horizon < now_) {
    throw InvalidArgument("EventQueue::run_until requires horizon >= now");
  }
  const Count before = processed_;
  while (!heap_.empty() && heap_.front().time <= horizon) {
    step();
  }
  now_ = horizon;
  return processed_ - before;
}

Count EventQueue::run_all() {
  const Count before = processed_;
  while (!heap_.empty()) {
    step();
  }
  return processed_ - before;
}

}  // namespace vwsdk
