#pragma once

/// @file reuse.h
/// Input-reuse metrics (the paper's §I motivation for SDK-style mappings:
/// "reuses the input feature maps with a unit of a parallel window").
///
/// Every computing cycle drives each bound row with one input element
/// fetched from the feature-map buffer; the total number of row drives is
/// therefore the layer's input-fetch traffic.  A mapping that computes
/// more outputs per fetched window amortizes fetches better:
///
///   fetches_per_element = total row drives / distinct input elements.
///
/// im2col re-fetches every interior element ~K_w*K_h times (once per
/// covering window) per AC pass; SDK/VW-SDK parallel windows fetch a
/// window once and convolve it with many shifted kernels.

#include <string>

#include "core/mapping_decision.h"

namespace vwsdk {

/// Input-traffic accounting for one mapping.
struct ReuseReport {
  Count input_elements = 0;   ///< distinct IFM values (IC * I_h * I_w)
  Count row_drives = 0;       ///< total input fetches across all cycles
  double fetches_per_element = 0.0;

  std::string to_string() const;
};

/// Analytic input-traffic report for a mapping decision.
ReuseReport input_reuse(const MappingDecision& decision);

/// Convenience: ratio of `baseline`'s fetches to `candidate`'s -- how much
/// input traffic the candidate saves (>1 means the candidate fetches
/// less).
double fetch_reduction(const MappingDecision& baseline,
                       const MappingDecision& candidate);

}  // namespace vwsdk
