#pragma once

/// @file chip_allocator.h
/// Chip-level pipeline allocation (extension; the whole-network view of
/// PIM inference that ref [1] (PipeLayer) motivates in the paper's intro).
///
/// A PIM chip holds `total_arrays` crossbars.  Pipelined inference keeps
/// EVERY layer's weights resident: layer L needs at least its AR*AC tiles
/// worth of arrays (one array per tile -- an array is one programming).
/// Remaining arrays are distributed to shorten the slowest stage, because
/// a pipeline's throughput is set by its bottleneck:
///
///     pipeline interval = max over layers of layer makespan
///     throughput        = 1 / interval   (inferences per interval)
///
/// Allocation: give each layer its mandatory tiles, then greedily hand
/// each spare array to the current bottleneck stage (exact for this
/// monotone makespan model).  Replicated-weights dispatch is used for
/// counts beyond a layer's tile count (see sim/dispatch.h).

#include <string>
#include <vector>

#include "core/network_optimizer.h"
#include "sim/dispatch.h"

namespace vwsdk {

/// One layer's share of the chip.
struct LayerAllocation {
  std::string layer_name;
  Count tiles = 0;      ///< AR*AC: arrays required to keep weights resident
  Dim arrays = 0;       ///< arrays allocated (>= tiles when feasible)
  Cycles makespan = 0;  ///< stage latency with this allocation
};

/// A whole network pinned onto one chip.
struct ChipAllocation {
  Dim total_arrays = 0;
  bool feasible = false;  ///< false if Σ tiles > total_arrays (weights
                          ///< would need reprogramming every inference)
  std::vector<LayerAllocation> layers;

  /// Pipeline interval: the slowest stage's makespan (0 if infeasible).
  Cycles bottleneck() const;

  /// Sum of stage makespans: the latency of one inference flowing through.
  Cycles fill_latency() const;

  /// Arrays actually used.
  Dim arrays_used() const;

  std::string to_string() const;
};

/// Minimum arrays for resident weights: Σ over layers of AR*AC tiles.
Count resident_array_demand(const NetworkMappingResult& result);

/// Allocate `total_arrays` arrays across the network's layers.
ChipAllocation allocate_chip(const NetworkMappingResult& result,
                             Dim total_arrays);

}  // namespace vwsdk
