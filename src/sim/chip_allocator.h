#pragma once

/// @file chip_allocator.h
/// Chip-level pipeline planning (extension; the whole-network view of
/// PIM inference that ref [1] (PipeLayer) motivates in the paper's intro).
///
/// A PIM chip holds `total_arrays` crossbars.  Pipelined inference keeps
/// EVERY layer's weights resident: layer L needs at least its tiles
/// worth of arrays -- G x AR x AC for a grouped layer, one array per
/// tile programming.  Remaining arrays are distributed to shorten the
/// slowest stage, because a pipeline's throughput is set by its
/// bottleneck:
///
///     pipeline interval = max over layers of layer makespan
///     throughput        = 1 / interval   (inferences per interval)
///
/// Allocation: give each layer its mandatory tiles, then water-fill the
/// spare arrays into the current bottleneck stage, jumping straight to
/// the array count that actually improves it (replicated-dispatch
/// makespans sit on ceil-division plateaus; see sim/dispatch.h).  A
/// stage that cannot improve -- at its makespan floor, its next jump
/// beyond the remaining spares, or its score allocation-invariant --
/// saturates, and the filling moves to the next-worst stage; never is
/// an array spent without lowering some stage's makespan.  Stages are
/// scored through a search Objective (mapping/objective.h): `cycles`
/// scores the stage makespan (the classic greedy, exact for this
/// monotone model), `edp` re-prices its delay factor with the parallel
/// makespan, and `energy` is allocation-invariant -- spare arrays
/// cannot reduce conversions, so the allocation honestly stays at the
/// resident floor.
///
/// When the resident demand exceeds one chip, `plan_chips` shards the
/// network: contiguous layer segments are packed greedily onto as few
/// chips as possible (each segment's demand fits its chip), every chip
/// water-fills its own spares, and the chain behaves as one long
/// pipeline -- interval = max stage makespan anywhere, fill latency =
/// sum of stage makespans.  Batched inference streams B inputs through
/// that pipeline in fill + (B-1) x interval cycles.

#include <string>
#include <vector>

#include "core/network_optimizer.h"
#include "mapping/objective.h"
#include "sim/dispatch.h"

namespace vwsdk {

/// One layer's share of the chip.
struct LayerAllocation {
  std::string layer_name;
  Dim groups = 1;           ///< channel groups G (1 for dense layers)
  Count tiles = 0;          ///< G*AR*AC: arrays keeping the weights resident
  Dim arrays = 0;           ///< arrays allocated (>= tiles when feasible)
  Cycles serial_cycles = 0; ///< single-array layer cycles (G x per-group)
  Cycles makespan = 0;      ///< stage latency with this allocation
  double score = 0.0;       ///< objective stage score at this allocation
};

/// A whole network (or one shard of it) pinned onto one chip.
struct ChipAllocation {
  Dim total_arrays = 0;
  bool feasible = false;  ///< false if Σ tiles > total_arrays (weights
                          ///< would need reprogramming every inference)
  std::string infeasible_reason;  ///< why, when !feasible (else empty)
  std::string objective;          ///< stage-scoring objective name
  std::vector<LayerAllocation> layers;

  /// Pipeline interval: the slowest stage's makespan.  0 if infeasible
  /// (no valid schedule exists -- NOT a free pipeline; check `feasible`).
  Cycles bottleneck() const;

  /// Sum of stage makespans: the latency of one inference flowing through.
  Cycles fill_latency() const;

  /// Arrays actually used.
  Dim arrays_used() const;

  /// Stage balance: min / max stage makespan (1 = perfectly balanced
  /// pipeline, 0 if infeasible).
  double balance() const;

  std::string to_string() const;
};

/// Minimum arrays for resident weights: Σ over layers of G*AR*AC tiles.
Count resident_array_demand(const NetworkMappingResult& result);

/// Allocate `total_arrays` arrays across the network's layers, scoring
/// stages with `objective` (null = cycles, the classic makespan greedy).
ChipAllocation allocate_chip(const NetworkMappingResult& result,
                             Dim total_arrays,
                             const Objective* objective = nullptr);

/// How plan_chips shards and scores a network.
struct ChipPlanOptions {
  Dim arrays_per_chip = 0;  ///< required, >= 1
  Dim max_chips = 0;        ///< chip budget; 0 = as many as demand needs
  const Objective* objective = nullptr;  ///< stage scoring; null = cycles
};

/// A network pipelined across one or more identical chips.
struct ChipPlan {
  std::string network_name;
  std::string algorithm;
  std::string objective;     ///< stage-scoring objective name
  ArrayGeometry geometry{};  ///< crossbar geometry of every array
  Dim arrays_per_chip = 0;
  bool feasible = false;
  std::string infeasible_reason;  ///< why, when !feasible (else empty)
  std::vector<ChipAllocation> chips;  ///< contiguous layer segments, in order

  /// Steady-state pipeline interval: max stage makespan across chips.
  Cycles interval() const;

  /// Latency of one inference flowing through every stage of every chip.
  Cycles fill_latency() const;

  /// Single-array serial cycles of one inference (Σ layer serial cycles).
  Cycles serial_cycles() const;

  /// Arrays actually used across all chips.
  Dim arrays_used() const;

  /// Steady-state throughput speedup vs one array running the network
  /// serially: serial_cycles / interval.  0 if infeasible.
  double speedup() const;

  /// Stage balance across every stage of every chip: min / max stage
  /// makespan (1 = perfectly balanced, 0 if infeasible).
  double balance() const;

  /// Batched-inference latency: `batch` inputs streamed through the
  /// pipeline take fill_latency + (batch-1) * interval cycles -- the
  /// first inference pays the fill, every further one the steady-state
  /// interval.  Requires batch >= 1 and a feasible plan.
  Cycles batch_cycles(Count batch) const;

  std::string to_string() const;
};

/// Shard `result` across chips of `options.arrays_per_chip` arrays:
/// greedy contiguous packing onto the fewest chips whose per-chip
/// resident demand fits, then per-chip spare-array water-filling under
/// `options.objective`.  Infeasible (explicitly, with the reason set)
/// when one layer alone exceeds a chip or the packing needs more than
/// `options.max_chips` chips.
ChipPlan plan_chips(const NetworkMappingResult& result,
                    const ChipPlanOptions& options);

}  // namespace vwsdk
