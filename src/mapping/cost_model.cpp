#include "mapping/cost_model.h"

#include <limits>

#include "common/error.h"
#include "common/math_util.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace vwsdk {

std::string CycleCost::to_string() const {
  if (!feasible) {
    return cat("pw=", window.to_string(), " infeasible");
  }
  return cat("pw=", window.to_string(), " ict=", ic_t, " oct=", oc_t,
             " npw=", n_parallel_windows, " ar=", ar_cycles,
             " ac=", ac_cycles,
             (smd_duplicates > 1 ? cat(" dup=", smd_duplicates) : ""),
             " cycles=", total);
}

Dim tiled_ic(const ConvShape& shape, const ArrayGeometry& geometry,
             const ParallelWindow& pw) {
  geometry.validate();
  const Count per_channel_rows = pw.area();
  VWSDK_REQUIRE(per_channel_rows > 0, "window area must be positive");
  const Count tile = floor_div(geometry.rows, per_channel_rows);  // Eq. (4)
  return static_cast<Dim>(
      clamp_count(tile, 0, static_cast<Count>(shape.in_channels)));
}

Dim tiled_oc(const ConvShape& shape, const ArrayGeometry& geometry,
             const ParallelWindow& pw) {
  geometry.validate();
  const Count per_oc_cols = windows_in_pw(shape, pw);
  const Count tile = floor_div(geometry.cols, per_oc_cols);  // Eq. (6)
  return static_cast<Dim>(
      clamp_count(tile, 0, static_cast<Count>(shape.out_channels)));
}

CycleCost im2col_cost(const ConvShape& shape, const ArrayGeometry& geometry) {
  shape.validate();
  geometry.validate();
  CycleCost cost;
  cost.feasible = true;
  cost.window = kernel_window(shape);
  cost.split = RowSplit::kElementGranular;
  // The whole flattened kernel column is packed densely; a single array
  // holds min(rows, K*K*IC) elements of it.
  cost.ic_t = shape.in_channels;  // every channel is present (possibly split)
  cost.oc_t = static_cast<Dim>(clamp_count(
      geometry.cols, 0, static_cast<Count>(shape.out_channels)));
  cost.n_parallel_windows = shape.num_windows();
  cost.ar_cycles = ceil_div(shape.kernel_volume(), geometry.rows);
  cost.ac_cycles = ceil_div(shape.out_channels, geometry.cols);
  cost.total = checked_mul(cost.n_parallel_windows,
                           checked_mul(cost.ar_cycles, cost.ac_cycles));
  return cost;
}

CycleCost sdk_cost(const ConvShape& shape, const ArrayGeometry& geometry,
                   const ParallelWindow& pw) {
  shape.validate();
  geometry.validate();
  CycleCost cost;
  cost.window = pw;
  cost.split = RowSplit::kChannelGranular;
  if (!window_admissible(shape, pw)) {
    cost.total = std::numeric_limits<Cycles>::max();
    return cost;
  }
  const Count n_wp = windows_in_pw(shape, pw);
  cost.feasible = true;
  cost.ic_t = shape.in_channels;  // SDK maps entire channels
  cost.oc_t = shape.out_channels;
  cost.n_parallel_windows = num_parallel_windows(shape, pw);
  // Eq. (1): AR = ceil(PW_w*PW_h*IC / rows), AC = ceil(OC*N_WP / cols).
  cost.ar_cycles =
      ceil_div(checked_mul(pw.area(), shape.in_channels), geometry.rows);
  cost.ac_cycles =
      ceil_div(checked_mul(shape.out_channels, n_wp), geometry.cols);
  cost.total = checked_mul(cost.n_parallel_windows,
                           checked_mul(cost.ar_cycles, cost.ac_cycles));
  return cost;
}

CycleCost vw_cost(const ConvShape& shape, const ArrayGeometry& geometry,
                  const ParallelWindow& pw) {
  shape.validate();
  geometry.validate();
  CycleCost cost;
  cost.window = pw;
  cost.split = RowSplit::kChannelGranular;
  cost.total = std::numeric_limits<Cycles>::max();
  if (!window_admissible(shape, pw)) {
    return cost;
  }
  const Dim ic_t = tiled_ic(shape, geometry, pw);
  const Dim oc_t = tiled_oc(shape, geometry, pw);
  if (ic_t == 0 || oc_t == 0) {
    return cost;  // window too large for the array
  }
  cost.feasible = true;
  cost.ic_t = ic_t;
  cost.oc_t = oc_t;
  cost.n_parallel_windows = num_parallel_windows(shape, pw);
  cost.ar_cycles = ceil_div(shape.in_channels, ic_t);    // Eq. (5)
  cost.ac_cycles = ceil_div(shape.out_channels, oc_t);   // Eq. (7)
  cost.total = checked_mul(cost.n_parallel_windows,      // Eq. (8)
                           checked_mul(cost.ar_cycles, cost.ac_cycles));
  return cost;
}

CycleCost smd_cost(const ConvShape& shape, const ArrayGeometry& geometry) {
  shape.validate();
  geometry.validate();
  // Duplicates that fit block-diagonally with whole kernel columns.
  const Count by_rows = floor_div(geometry.rows, shape.kernel_volume());
  const Count by_cols = floor_div(geometry.cols, shape.out_channels);
  const Count duplicates =
      clamp_count(std::min(by_rows, by_cols), 1, shape.num_windows());

  CycleCost cost = im2col_cost(shape, geometry);
  cost.smd_duplicates = static_cast<Dim>(duplicates);
  if (duplicates > 1) {
    // By construction one array now holds all duplicates: AR = AC = 1.
    cost.ar_cycles = 1;
    cost.ac_cycles = 1;
    cost.n_parallel_windows = ceil_div(shape.num_windows(), duplicates);
    cost.total = cost.n_parallel_windows;
  }
  return cost;
}

namespace {

/// Below this many candidates the fan-out overhead outweighs the work;
/// a 14x14 layer has ~140 candidates, a 224x224 layer ~49k.
constexpr std::size_t kMinCandidatesForParallel = 512;

}  // namespace

std::vector<CycleCost> vw_costs(const ConvShape& shape,
                                const ArrayGeometry& geometry,
                                const std::vector<ParallelWindow>& windows,
                                ThreadPool* pool) {
  std::vector<CycleCost> costs(windows.size());
  const auto evaluate_range = [&](Count begin, Count end) {
    for (Count i = begin; i < end; ++i) {
      const auto index = static_cast<std::size_t>(i);
      costs[index] = vw_cost(shape, geometry, windows[index]);
    }
  };
  if (pool != nullptr && pool->size() > 1 &&
      windows.size() >= kMinCandidatesForParallel) {
    parallel_chunks(*pool, static_cast<Count>(windows.size()),
                    evaluate_range);
  } else {
    evaluate_range(0, static_cast<Count>(windows.size()));
  }
  return costs;
}

}  // namespace vwsdk
