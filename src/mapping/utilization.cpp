#include "mapping/utilization.h"

#include <algorithm>

#include "common/error.h"
#include "common/math_util.h"

namespace vwsdk {

namespace {

/// Steady-state utilization fraction (weight cells of one full tile over
/// the cells of the arrays the tile occupies).
double steady_state_fraction(const ConvShape& shape,
                             const ArrayGeometry& geometry,
                             const CycleCost& cost) {
  const double total_cells = static_cast<double>(geometry.cell_count());
  const Count kernel_area = checked_mul(shape.kernel_w, shape.kernel_h);
  if (cost.split == RowSplit::kElementGranular) {
    if (cost.smd_duplicates > 1) {
      // Block-diagonal: D blocks of (K^2*IC x OC) true weights, one array.
      const Count used = checked_mul(
          cost.smd_duplicates,
          checked_mul(shape.kernel_volume(), shape.out_channels));
      return static_cast<double>(used) / total_cells;
    }
    // Dense im2col column: every occupied cell is a weight.  A full tile
    // occupies min(rows, K^2*IC) rows and min(cols, OC) columns.
    const Count rows_used =
        std::min<Count>(geometry.rows, shape.kernel_volume());
    const Count cols_used =
        std::min<Count>(geometry.cols, shape.out_channels);
    return static_cast<double>(checked_mul(rows_used, cols_used)) /
           total_cells;
  }
  // Windowed tile: IC_t channels of true kernel weights, duplicated for
  // each of the N_WP windows, over OC_t output channels.  SDK-style
  // entire-channel tiles may exceed one array (window.area*IC_t > rows,
  // or N_WP*OC_t > cols); physically the tile is then split over
  // `row_split * col_split` arrays, each holding its share -- without
  // this factor SDK's conv2/conv3 utilization would double-count, and
  // the paper's "SDK equals VW-SDK until layer 3" would not hold.
  const Count n_wp = windows_in_pw(shape, cost.window);
  const Count used = checked_mul(checked_mul(kernel_area, cost.ic_t),
                                 checked_mul(n_wp, cost.oc_t));
  const Count row_split =
      ceil_div(checked_mul(cost.window.area(), cost.ic_t), geometry.rows);
  const Count col_split =
      ceil_div(checked_mul(n_wp, cost.oc_t), geometry.cols);
  return static_cast<double>(used) /
         (static_cast<double>(checked_mul(row_split, col_split)) *
          total_cells);
}

}  // namespace

double utilization(const ConvShape& shape, const ArrayGeometry& geometry,
                   const CycleCost& cost, UtilizationConvention convention) {
  shape.validate();
  geometry.validate();
  VWSDK_REQUIRE(cost.feasible, "utilization of an infeasible mapping");
  const double total_cells = static_cast<double>(geometry.cell_count());
  const Count programmings = checked_mul(cost.ar_cycles, cost.ac_cycles);

  switch (convention) {
    case UtilizationConvention::kSteadyState: {
      return steady_state_fraction(shape, geometry, cost);
    }
    case UtilizationConvention::kCycleAverageWeightCells: {
      // Sum of weight cells across all programmings is exactly one copy of
      // every weight per window duplicate: K^2 * IC * N_WP * OC
      // (N_WP = 1 for im2col; SMD programs D copies in one programming).
      const Count n_wp = (cost.split == RowSplit::kElementGranular)
                             ? cost.smd_duplicates
                             : windows_in_pw(shape, cost.window);
      const Count used = checked_mul(
          checked_mul(checked_mul(shape.kernel_w, shape.kernel_h),
                      shape.in_channels),
          checked_mul(n_wp, shape.out_channels));
      return static_cast<double>(used) /
             (static_cast<double>(programmings) * total_cells);
    }
    case UtilizationConvention::kCycleAverageFootprint: {
      if (cost.split == RowSplit::kElementGranular) {
        // Dense columns: footprint rows == weight rows.  For SMD the
        // bounding box covers D*K^2*IC rows x D*OC cols.
        const Count rows_used = std::min<Count>(
            geometry.rows, shape.kernel_volume() * cost.smd_duplicates);
        const Count cols_used = std::min<Count>(
            geometry.cols,
            checked_mul(shape.out_channels, cost.smd_duplicates));
        if (cost.smd_duplicates > 1) {
          return static_cast<double>(checked_mul(rows_used, cols_used)) /
                 total_cells;
        }
        // Across AR element tiles the footprints sum to K^2*IC rows; each
        // AC tile reads min(cols, OC - j*cols) columns summing to OC.
        const Count used =
            checked_mul(shape.kernel_volume(), shape.out_channels);
        return static_cast<double>(used) /
               (static_cast<double>(programmings) * total_cells);
      }
      // Windowed: footprint of AR tile i is PW_area * c_i rows; summed
      // over tiles that is PW_area * IC rows; columns sum to N_WP * OC.
      const Count n_wp = windows_in_pw(shape, cost.window);
      const Count used =
          checked_mul(checked_mul(cost.window.area(), shape.in_channels),
                      checked_mul(n_wp, shape.out_channels));
      return static_cast<double>(used) /
             (static_cast<double>(programmings) * total_cells);
    }
  }
  throw InternalError("unreachable utilization convention");
}

const char* utilization_convention_name(UtilizationConvention convention) {
  switch (convention) {
    case UtilizationConvention::kSteadyState:
      return "steady-state";
    case UtilizationConvention::kCycleAverageWeightCells:
      return "cycle-average(weights)";
    case UtilizationConvention::kCycleAverageFootprint:
      return "cycle-average(footprint)";
  }
  return "?";
}

}  // namespace vwsdk
