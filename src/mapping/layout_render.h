#pragma once

/// @file layout_render.h
/// ASCII rendering of mapping plans -- the textual analogue of the paper's
/// Fig. 2.  Used by examples and debugging; small arrays render cell by
/// cell, large ones render a summary.

#include <string>

#include "mapping/mapping_plan.h"

namespace vwsdk {

/// Render one tile as a character grid: '#' = programmed cell,
/// '.' = unused cell.  If the array exceeds `max_rows` x `max_cols`
/// characters, only the top-left corner is drawn with an ellipsis note.
std::string render_tile(const MappingPlan& plan, Dim ar, Dim ac,
                        Dim max_rows = 64, Dim max_cols = 96);

/// One-paragraph summary of a plan: kind, window, tiles, cycle breakdown,
/// base grid, programmed cells.
std::string describe_plan(const MappingPlan& plan);

}  // namespace vwsdk
