#pragma once

/// @file activity.h
/// Analytic conversion/MAC activity of a mapping -- the bridge from a
/// CycleCost (the paper's metric) to the EnergyReport the pim/ energy
/// model prices, without running the functional simulator.
///
/// Lives in mapping/ (not sim/) so that search objectives can score
/// candidate windows by energy during the scan; sim/latency_model.h
/// builds its per-layer latency/energy estimates on top of it.

#include "mapping/conv_shape.h"
#include "mapping/cost_model.h"
#include "pim/array_geometry.h"
#include "pim/energy_model.h"

namespace vwsdk {

/// Analytic per-execution activity of a mapping: for every scheduled cycle
/// it accumulates the bound rows, bound columns, and programmed cells of
/// the tile being computed.  Matches ExecutionResult::activity exactly
/// (tested), but costs O(tiles) instead of O(MACs).
EnergyReport analytic_activity(const ConvShape& shape,
                               const ArrayGeometry& geometry,
                               const CycleCost& cost);

}  // namespace vwsdk
