#pragma once

/// @file bit_slicing.h
/// Bit-slicing / bit-serial extension of the cost model (DESIGN.md §6).
///
/// The paper abstracts one weight into one cell and one input into one
/// analog row voltage.  Real crossbars store `cell_bits` per device and
/// feed inputs through `dac_bits`-wide DACs, so a W-bit weight needs
/// ceil(W / cell_bits) cells in *adjacent columns* (slice columns share
/// the rows) and an A-bit activation needs ceil(A / dac_bits) sequential
/// input steps:
///
///   columns per (output channel, window) :  slices = ceil(weight_bits /
///                                           cell_bits)
///   cycles multiplier                    :  steps  = ceil(input_bits /
///                                           dac_bits)
///
/// The slice columns shrink OC_t (Eq. (6) becomes
/// floor(cols / (N_WP * slices))) and the bit-serial steps multiply every
/// computing cycle.  With the default config (slices = 1, steps = 1) every
/// function below reduces exactly to the paper's cost model -- tested.

#include "mapping/cost_model.h"

namespace vwsdk {

/// Device/converter precision configuration.
struct BitSlicingConfig {
  int weight_bits = 8;  ///< bits per weight value
  int cell_bits = 8;    ///< bits storable in one memory cell
  int input_bits = 8;   ///< bits per activation
  int dac_bits = 8;     ///< bits one DAC drives per step

  /// Cells (adjacent columns) per weight: ceil(weight_bits / cell_bits).
  Dim slices() const;

  /// Sequential input steps per cycle: ceil(input_bits / dac_bits).
  Dim input_steps() const;

  /// Throws InvalidArgument unless all fields are in [1, 32].
  void validate() const;
};

/// Eq. (6) under bit slicing: floor(cols / (N_WP * slices)), clamped.
Dim tiled_oc_bitsliced(const ConvShape& shape, const ArrayGeometry& geometry,
                       const ParallelWindow& pw,
                       const BitSlicingConfig& config);

/// VW-SDK window cost under bit slicing (Eq. (8) with the slice-aware
/// OC_t and the bit-serial cycle multiplier).
CycleCost vw_cost_bitsliced(const ConvShape& shape,
                            const ArrayGeometry& geometry,
                            const ParallelWindow& pw,
                            const BitSlicingConfig& config);

/// im2col cost under bit slicing.
CycleCost im2col_cost_bitsliced(const ConvShape& shape,
                                const ArrayGeometry& geometry,
                                const BitSlicingConfig& config);

}  // namespace vwsdk
