#include "mapping/parallel_window.h"

#include "common/error.h"
#include "common/math_util.h"
#include "common/string_util.h"

namespace vwsdk {

std::string ParallelWindow::to_string() const { return cat(w, "x", h); }

ParallelWindow kernel_window(const ConvShape& shape) {
  return ParallelWindow{shape.kernel_w, shape.kernel_h};
}

bool window_admissible(const ConvShape& shape, const ParallelWindow& pw) {
  if (pw.w < shape.kernel_w || pw.h < shape.kernel_h) {
    return false;
  }
  if (pw.w > shape.padded_w() || pw.h > shape.padded_h()) {
    return false;
  }
  // The kernel shifts inside the window must land on stride positions;
  // with stride 1 (the paper's case) this is always true.
  if ((pw.w - shape.kernel_w) % shape.stride_w != 0 ||
      (pw.h - shape.kernel_h) % shape.stride_h != 0) {
    return false;
  }
  return true;
}

Count windows_in_pw_w(const ConvShape& shape, const ParallelWindow& pw) {
  VWSDK_REQUIRE(window_admissible(shape, pw),
                cat("window ", pw.to_string(), " not admissible for shape ",
                    shape.to_string()));
  return floor_div(pw.w - shape.kernel_w, shape.stride_w) + 1;
}

Count windows_in_pw_h(const ConvShape& shape, const ParallelWindow& pw) {
  VWSDK_REQUIRE(window_admissible(shape, pw),
                cat("window ", pw.to_string(), " not admissible for shape ",
                    shape.to_string()));
  return floor_div(pw.h - shape.kernel_h, shape.stride_h) + 1;
}

Count windows_in_pw(const ConvShape& shape, const ParallelWindow& pw) {
  return checked_mul(windows_in_pw_w(shape, pw), windows_in_pw_h(shape, pw));
}

std::vector<ParallelWindow> enumerate_windows(const ConvShape& shape,
                                              bool include_kernel) {
  shape.validate();
  std::vector<ParallelWindow> windows;
  // Candidate extents step exactly like kernel positions, so the scan
  // visits windows_w() * windows_h() candidates.
  windows.reserve(
      static_cast<std::size_t>(shape.windows_w() * shape.windows_h()));
  for (Dim h = shape.kernel_h; h <= shape.padded_h(); h += shape.stride_h) {
    for (Dim w = shape.kernel_w; w <= shape.padded_w();
         w += shape.stride_w) {
      if (!include_kernel && w == shape.kernel_w && h == shape.kernel_h) {
        continue;
      }
      windows.push_back(ParallelWindow{w, h});
    }
  }
  return windows;
}

Count num_parallel_windows_w(const ConvShape& shape,
                             const ParallelWindow& pw) {
  return ceil_div(shape.windows_w(), windows_in_pw_w(shape, pw));
}

Count num_parallel_windows_h(const ConvShape& shape,
                             const ParallelWindow& pw) {
  return ceil_div(shape.windows_h(), windows_in_pw_h(shape, pw));
}

Count num_parallel_windows(const ConvShape& shape, const ParallelWindow& pw) {
  return checked_mul(num_parallel_windows_w(shape, pw),
                     num_parallel_windows_h(shape, pw));
}

}  // namespace vwsdk
