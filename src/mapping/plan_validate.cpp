#include "mapping/plan_validate.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/error.h"
#include "common/math_util.h"
#include "common/string_util.h"

namespace vwsdk {

namespace {

void check_tile(const MappingPlan& plan, const ArrayTile& tile,
                std::vector<std::string>& issues) {
  const auto tile_id = cat("tile(", tile.ar_index, ",", tile.ac_index, ")");
  const ArrayGeometry& g = plan.geometry;
  const ConvShape& s = plan.shape;

  std::map<Dim, const RowBinding*> rows;
  for (const RowBinding& rb : tile.rows) {
    if (rb.row < 0 || rb.row >= g.rows) {
      issues.push_back(cat(tile_id, ": row ", rb.row, " outside array"));
      continue;
    }
    if (!rows.emplace(rb.row, &rb).second) {
      issues.push_back(cat(tile_id, ": duplicate row binding ", rb.row));
    }
  }
  std::map<Dim, const ColBinding*> cols;
  for (const ColBinding& cb : tile.cols) {
    if (cb.col < 0 || cb.col >= g.cols) {
      issues.push_back(cat(tile_id, ": col ", cb.col, " outside array"));
      continue;
    }
    if (!cols.emplace(cb.col, &cb).second) {
      issues.push_back(cat(tile_id, ": duplicate col binding ", cb.col));
    }
  }

  std::set<std::pair<Dim, Dim>> occupied;
  for (const CellAssignment& cell : tile.cells) {
    if (!occupied.emplace(cell.row, cell.col).second) {
      issues.push_back(cat(tile_id, ": cell (", cell.row, ",", cell.col,
                           ") assigned twice"));
    }
    if (cell.ky < 0 || cell.ky >= s.kernel_h || cell.kx < 0 ||
        cell.kx >= s.kernel_w) {
      issues.push_back(cat(tile_id, ": kernel coord (", cell.ky, ",",
                           cell.kx, ") out of range"));
      continue;
    }
    const auto row_it = rows.find(cell.row);
    const auto col_it = cols.find(cell.col);
    if (row_it == rows.end()) {
      issues.push_back(cat(tile_id, ": cell row ", cell.row, " unbound"));
      continue;
    }
    if (col_it == cols.end()) {
      issues.push_back(cat(tile_id, ": cell col ", cell.col, " unbound"));
      continue;
    }
    const RowBinding& rb = *row_it->second;
    const ColBinding& cb = *col_it->second;
    if (rb.ic != cell.ic) {
      issues.push_back(cat(tile_id, ": cell ic ", cell.ic,
                           " != row binding ic ", rb.ic));
    }
    if (cb.oc != cell.oc) {
      issues.push_back(cat(tile_id, ": cell oc ", cell.oc,
                           " != col binding oc ", cb.oc));
    }
    if (rb.dup != cb.dup) {
      issues.push_back(cat(tile_id, ": cell crosses SMD duplicates ",
                           rb.dup, " and ", cb.dup));
    }
    if (rb.dy != cb.win_py * s.stride_h + cell.ky ||
        rb.dx != cb.win_px * s.stride_w + cell.kx) {
      issues.push_back(
          cat(tile_id, ": cell (", cell.row, ",", cell.col,
              ") geometry broken: row offset (", rb.dy, ",", rb.dx,
              ") vs window (", cb.win_py, ",", cb.win_px, ") + kernel (",
              cell.ky, ",", cell.kx, ")"));
    }
  }
}

}  // namespace

std::vector<std::string> validate_plan(const MappingPlan& plan) {
  std::vector<std::string> issues;
  const ConvShape& s = plan.shape;

  if (plan.tiles.empty()) {
    issues.emplace_back("plan has no tiles");
    return issues;
  }
  if (static_cast<Count>(plan.tiles.size()) !=
      plan.cost.ar_cycles * plan.cost.ac_cycles) {
    issues.push_back(cat("tile count ", plan.tiles.size(),
                         " != AR*AC = ", plan.cost.ar_cycles, "*",
                         plan.cost.ac_cycles));
  }

  for (const ArrayTile& tile : plan.tiles) {
    check_tile(plan, tile, issues);
  }

  // Global channel coverage: every input row entity exactly once across
  // AR tiles; every output column entity exactly once across AC tiles.
  // The row/column entities depend on the plan flavor:
  //  * kWindowed:      whole input channels / whole output channels;
  //  * kWindowedSplit: flat window elements (ic, dy, dx) / flat columns
  //                    (oc, window);
  //  * kIm2colDense:   flat kernel elements (ic, ky, kx) / output channels.
  std::map<Count, std::set<Dim>> row_entity_to_ar;
  std::map<Count, std::set<Dim>> col_entity_to_ac;
  const ParallelWindow& window = plan.cost.window;
  const Count n_wp_cols = (plan.kind == PlanKind::kWindowedSplit)
                              ? windows_in_pw(s, window)
                              : 1;
  for (const ArrayTile& tile : plan.tiles) {
    for (const RowBinding& rb : tile.rows) {
      Count entity = 0;
      if (plan.kind == PlanKind::kWindowed) {
        entity = rb.ic;
      } else if (plan.kind == PlanKind::kWindowedSplit) {
        entity = (static_cast<Count>(rb.ic) * window.h + rb.dy) * window.w +
                 rb.dx;
      } else {
        entity =
            (static_cast<Count>(rb.ic) * s.kernel_h + rb.dy) * s.kernel_w +
            rb.dx;
      }
      row_entity_to_ar[entity].insert(tile.ar_index);
    }
    for (const ColBinding& cb : tile.cols) {
      Count entity = static_cast<Count>(cb.oc);
      if (plan.kind == PlanKind::kWindowedSplit) {
        entity = entity * n_wp_cols +
                 (static_cast<Count>(cb.win_py) *
                      windows_in_pw_w(s, window) +
                  cb.win_px);
      }
      col_entity_to_ac[entity].insert(tile.ac_index);
    }
  }
  const Count row_entities =
      (plan.kind == PlanKind::kWindowed)
          ? static_cast<Count>(s.in_channels)
          : (plan.kind == PlanKind::kWindowedSplit)
                ? checked_mul(window.area(), s.in_channels)
                : s.kernel_volume();
  for (Count entity = 0; entity < row_entities; ++entity) {
    const auto it = row_entity_to_ar.find(entity);
    if (it == row_entity_to_ar.end()) {
      issues.push_back(cat("input row entity ", entity, " not mapped"));
    } else if (it->second.size() != 1) {
      issues.push_back(cat("input row entity ", entity, " mapped in ",
                           it->second.size(), " AR tiles"));
    }
  }
  const Count col_entities =
      checked_mul(static_cast<Count>(s.out_channels), n_wp_cols);
  for (Count entity = 0; entity < col_entities; ++entity) {
    const auto it = col_entity_to_ac.find(entity);
    if (it == col_entity_to_ac.end()) {
      issues.push_back(cat("output column entity ", entity, " not mapped"));
    } else if (it->second.size() != 1) {
      issues.push_back(cat("output column entity ", entity, " mapped in ",
                           it->second.size(), " AC tiles"));
    }
  }

  // Window coverage by the base grid (SMD covers windows by construction).
  if (plan.kind != PlanKind::kSmd) {
    const ParallelWindow& pw = plan.cost.window;
    const Count wip_w = windows_in_pw_w(s, pw);
    const Count wip_h = windows_in_pw_h(s, pw);
    std::vector<char> covered_x(static_cast<std::size_t>(s.windows_w()), 0);
    for (const Dim bx : plan.base_x) {
      if (bx % s.stride_w != 0) {
        issues.push_back(cat("base x ", bx, " not stride-aligned"));
        continue;
      }
      const Count first = bx / s.stride_w;
      for (Count k = 0; k < wip_w; ++k) {
        if (first + k >= s.windows_w()) {
          issues.push_back(cat("base x ", bx, " overruns the window grid"));
          break;
        }
        covered_x[static_cast<std::size_t>(first + k)] = 1;
      }
    }
    std::vector<char> covered_y(static_cast<std::size_t>(s.windows_h()), 0);
    for (const Dim by : plan.base_y) {
      if (by % s.stride_h != 0) {
        issues.push_back(cat("base y ", by, " not stride-aligned"));
        continue;
      }
      const Count first = by / s.stride_h;
      for (Count k = 0; k < wip_h; ++k) {
        if (first + k >= s.windows_h()) {
          issues.push_back(cat("base y ", by, " overruns the window grid"));
          break;
        }
        covered_y[static_cast<std::size_t>(first + k)] = 1;
      }
    }
    if (std::count(covered_x.begin(), covered_x.end(), 1) !=
        static_cast<std::ptrdiff_t>(covered_x.size())) {
      issues.emplace_back("window grid not fully covered along x");
    }
    if (std::count(covered_y.begin(), covered_y.end(), 1) !=
        static_cast<std::ptrdiff_t>(covered_y.size())) {
      issues.emplace_back("window grid not fully covered along y");
    }
  }

  // Realized cycles must equal the analytic cost.
  if (plan.total_cycles() != plan.cost.total) {
    issues.push_back(cat("plan cycles ", plan.total_cycles(),
                         " != analytic cycles ", plan.cost.total));
  }
  return issues;
}

void expect_valid(const MappingPlan& plan) {
  const std::vector<std::string> issues = validate_plan(plan);
  if (!issues.empty()) {
    throw InternalError(cat("invalid mapping plan (", issues.size(),
                            " issues): ", join(issues, "; ")));
  }
}

}  // namespace vwsdk
