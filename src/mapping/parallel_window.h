#pragma once

/// @file parallel_window.h
/// The parallel window: the paper's central object.
///
/// A parallel window of size PW_w x PW_h is a patch of the input feature
/// map shared by several shifted copies of the kernel.  One crossbar cycle
/// over a parallel window produces N_WP = (PW_w-K_w+1)(PW_h-K_h+1) output
/// elements per mapped output channel (stride 1; the stride-s extension
/// divides the shifts by s).

#include <string>
#include <vector>

#include "common/types.h"
#include "mapping/conv_shape.h"

namespace vwsdk {

/// A candidate parallel-window shape.  Width/height are in input pixels
/// and must each be >= the kernel extent and <= the (padded) IFM extent to
/// be admissible for a given shape.
struct ParallelWindow {
  Dim w = 0;  ///< PW_w
  Dim h = 0;  ///< PW_h

  bool operator==(const ParallelWindow&) const = default;

  /// Pixels covered: PW_w * PW_h (the row cost of one channel, Eq. (4)).
  Count area() const { return static_cast<Count>(w) * h; }

  /// "4x3" (width x height, the paper's Table I order).
  std::string to_string() const;
};

/// The kernel-sized window (im2col's degenerate parallel window).
ParallelWindow kernel_window(const ConvShape& shape);

/// True if `pw` is admissible for `shape`: covers the kernel, fits the
/// padded IFM, and its kernel shifts are stride-aligned.
bool window_admissible(const ConvShape& shape, const ParallelWindow& pw);

/// Kernel windows contained in the parallel window along each axis:
/// floor((PW-K)/stride)+1.  Requires admissibility.
Count windows_in_pw_w(const ConvShape& shape, const ParallelWindow& pw);
Count windows_in_pw_h(const ConvShape& shape, const ParallelWindow& pw);

/// N_WP: total kernel windows computed per parallel-window cycle.
Count windows_in_pw(const ConvShape& shape, const ParallelWindow& pw);

/// Every candidate window Algorithm 1 visits for `shape`, in its scan
/// order: PW_h outer from K_h to the padded IFM height, PW_w inner from
/// K_w to the padded IFM width, both advancing in stride steps (so every
/// produced window is admissible).  With `include_kernel` false the
/// kernel-sized window itself is omitted -- the mappers' im2col
/// initialization already covers it.  This enumeration is the contract
/// between the sequential scan and the parallel candidate evaluation:
/// both walk exactly this list, in this order.
std::vector<ParallelWindow> enumerate_windows(const ConvShape& shape,
                                              bool include_kernel);

/// Number of parallel windows needed to cover the IFM (Eq. (3)):
/// ceil(windows / windows-per-PW) along each axis.  For stride 1 this
/// equals the paper's literal form (⌈(I-PW)/(PW-K+1)⌉+1); the identity is
/// unit-tested.
Count num_parallel_windows_w(const ConvShape& shape, const ParallelWindow& pw);
Count num_parallel_windows_h(const ConvShape& shape, const ParallelWindow& pw);
Count num_parallel_windows(const ConvShape& shape, const ParallelWindow& pw);

}  // namespace vwsdk
