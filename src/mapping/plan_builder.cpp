#include "mapping/plan_builder.h"

#include <algorithm>

#include "common/error.h"
#include "common/math_util.h"
#include "common/string_util.h"
#include "tensor/im2col_ref.h"

namespace vwsdk {

namespace {

/// Clamped base positions of parallel windows along one axis, in padded
/// input pixels.  Covers kernel-window indices [0, windows) in groups of
/// `per_pw`, the final group clamped so the window stays inside the input
/// (clamping makes trailing windows overlap -- they recompute a few
/// outputs, exactly as the ceil in Eq. (3) implies).
std::vector<Dim> window_bases(Count windows, Count per_pw, Dim stride) {
  VWSDK_ASSERT(windows >= per_pw && per_pw > 0, "bad window grouping");
  std::vector<Dim> bases;
  const Count groups = ceil_div(windows, per_pw);
  bases.reserve(static_cast<std::size_t>(groups));
  for (Count g = 0; g < groups; ++g) {
    const Count first_window = std::min(g * per_pw, windows - per_pw);
    bases.push_back(static_cast<Dim>(first_window * stride));
  }
  return bases;
}

}  // namespace

MappingPlan build_windowed_plan(const ConvShape& shape,
                                const ArrayGeometry& geometry,
                                const CycleCost& cost) {
  shape.validate();
  geometry.validate();
  VWSDK_REQUIRE(cost.feasible, "cannot build a plan for an infeasible cost");
  VWSDK_REQUIRE(cost.split == RowSplit::kChannelGranular,
                "windowed plans are channel-granular");
  const ParallelWindow pw = cost.window;
  VWSDK_REQUIRE(window_admissible(shape, pw),
                cat("window ", pw.to_string(), " not admissible"));
  VWSDK_REQUIRE(cost.ic_t > 0 && cost.oc_t > 0, "empty channel tile");
  VWSDK_REQUIRE(checked_mul(pw.area(), cost.ic_t) <= geometry.rows,
                "channel tile exceeds array rows");

  const Dim wip_w = static_cast<Dim>(windows_in_pw_w(shape, pw));
  const Dim wip_h = static_cast<Dim>(windows_in_pw_h(shape, pw));
  const Dim n_wp = wip_w * wip_h;
  VWSDK_REQUIRE(checked_mul(n_wp, cost.oc_t) <= geometry.cols,
                "output tile exceeds array columns");

  MappingPlan plan;
  plan.shape = shape;
  plan.geometry = geometry;
  plan.cost = cost;
  plan.kind = PlanKind::kWindowed;
  plan.base_x = window_bases(shape.windows_w(), wip_w, shape.stride_w);
  plan.base_y = window_bases(shape.windows_h(), wip_h, shape.stride_h);
  VWSDK_ASSERT(static_cast<Count>(plan.base_x.size()) ==
                   num_parallel_windows_w(shape, pw),
               "base grid disagrees with Eq. (3)");
  VWSDK_ASSERT(static_cast<Count>(plan.base_y.size()) ==
                   num_parallel_windows_h(shape, pw),
               "base grid disagrees with Eq. (3)");

  const Dim area = static_cast<Dim>(pw.area());
  for (Dim ar = 0; ar < cost.ar_cycles; ++ar) {
    const Dim ic_first = ar * cost.ic_t;
    const Dim ic_count =
        std::min<Dim>(cost.ic_t, shape.in_channels - ic_first);
    VWSDK_ASSERT(ic_count > 0, "empty AR tile");
    for (Dim ac = 0; ac < cost.ac_cycles; ++ac) {
      const Dim oc_first = ac * cost.oc_t;
      const Dim oc_count =
          std::min<Dim>(cost.oc_t, shape.out_channels - oc_first);
      VWSDK_ASSERT(oc_count > 0, "empty AC tile");

      ArrayTile tile;
      tile.ar_index = ar;
      tile.ac_index = ac;

      for (Dim c = 0; c < ic_count; ++c) {
        for (Dim dy = 0; dy < pw.h; ++dy) {
          for (Dim dx = 0; dx < pw.w; ++dx) {
            tile.rows.push_back(RowBinding{c * area + dy * pw.w + dx,
                                           ic_first + c, dy, dx, 0});
          }
        }
      }
      for (Dim o = 0; o < oc_count; ++o) {
        for (Dim wy = 0; wy < wip_h; ++wy) {
          for (Dim wx = 0; wx < wip_w; ++wx) {
            tile.cols.push_back(ColBinding{o * n_wp + wy * wip_w + wx,
                                           oc_first + o, wx, wy, 0});
          }
        }
      }
      for (Dim o = 0; o < oc_count; ++o) {
        for (Dim wy = 0; wy < wip_h; ++wy) {
          for (Dim wx = 0; wx < wip_w; ++wx) {
            const Dim col = o * n_wp + wy * wip_w + wx;
            for (Dim c = 0; c < ic_count; ++c) {
              for (Dim ky = 0; ky < shape.kernel_h; ++ky) {
                const Dim dy = wy * shape.stride_h + ky;
                for (Dim kx = 0; kx < shape.kernel_w; ++kx) {
                  const Dim dx = wx * shape.stride_w + kx;
                  tile.cells.push_back(
                      CellAssignment{c * area + dy * pw.w + dx, col,
                                     oc_first + o, ic_first + c, ky, kx});
                }
              }
            }
          }
        }
      }
      plan.tiles.push_back(std::move(tile));
    }
  }
  return plan;
}

MappingPlan build_element_split_plan(const ConvShape& shape,
                                     const ArrayGeometry& geometry,
                                     const CycleCost& cost) {
  shape.validate();
  geometry.validate();
  VWSDK_REQUIRE(cost.feasible, "cannot build a plan for an infeasible cost");
  VWSDK_REQUIRE(cost.split == RowSplit::kChannelGranular,
                "element-split plans realize entire-channel window costs");
  const ParallelWindow pw = cost.window;
  VWSDK_REQUIRE(window_admissible(shape, pw),
                cat("window ", pw.to_string(), " not admissible"));

  const Dim wip_w = static_cast<Dim>(windows_in_pw_w(shape, pw));
  const Dim wip_h = static_cast<Dim>(windows_in_pw_h(shape, pw));
  const Dim n_wp = wip_w * wip_h;
  const Dim area = static_cast<Dim>(pw.area());
  const Count flat_rows = checked_mul(pw.area(), shape.in_channels);
  const Count flat_cols = checked_mul(n_wp, shape.out_channels);
  VWSDK_REQUIRE(cost.ar_cycles == ceil_div(flat_rows, geometry.rows) &&
                    cost.ac_cycles == ceil_div(flat_cols, geometry.cols),
                "cost does not use Eq. (1) row/column splitting");

  MappingPlan plan;
  plan.shape = shape;
  plan.geometry = geometry;
  plan.cost = cost;
  plan.kind = PlanKind::kWindowedSplit;
  plan.base_x = window_bases(shape.windows_w(), wip_w, shape.stride_w);
  plan.base_y = window_bases(shape.windows_h(), wip_h, shape.stride_h);

  for (Dim ar = 0; ar < cost.ar_cycles; ++ar) {
    const Count row_first = static_cast<Count>(ar) * geometry.rows;
    const Count row_end =
        std::min(flat_rows, row_first + static_cast<Count>(geometry.rows));
    for (Dim ac = 0; ac < cost.ac_cycles; ++ac) {
      const Count col_first = static_cast<Count>(ac) * geometry.cols;
      const Count col_end = std::min(
          flat_cols, col_first + static_cast<Count>(geometry.cols));

      ArrayTile tile;
      tile.ar_index = ar;
      tile.ac_index = ac;
      for (Count flat = row_first; flat < row_end; ++flat) {
        const Dim ic = static_cast<Dim>(flat / area);
        const Dim rem = static_cast<Dim>(flat % area);
        tile.rows.push_back(RowBinding{static_cast<Dim>(flat - row_first),
                                       ic, rem / pw.w, rem % pw.w, 0});
      }
      for (Count flat = col_first; flat < col_end; ++flat) {
        const Dim oc = static_cast<Dim>(flat / n_wp);
        const Dim win = static_cast<Dim>(flat % n_wp);
        tile.cols.push_back(ColBinding{static_cast<Dim>(flat - col_first),
                                       oc, win % wip_w, win / wip_w, 0});
      }
      for (const ColBinding& cb : tile.cols) {
        for (const RowBinding& rb : tile.rows) {
          const Dim ky = rb.dy - cb.win_py * shape.stride_h;
          const Dim kx = rb.dx - cb.win_px * shape.stride_w;
          if (ky < 0 || ky >= shape.kernel_h || kx < 0 ||
              kx >= shape.kernel_w) {
            continue;  // structural zero: offset outside this window's kernel
          }
          tile.cells.push_back(
              CellAssignment{rb.row, cb.col, cb.oc, rb.ic, ky, kx});
        }
      }
      plan.tiles.push_back(std::move(tile));
    }
  }
  return plan;
}

MappingPlan build_im2col_plan(const ConvShape& shape,
                              const ArrayGeometry& geometry) {
  shape.validate();
  geometry.validate();
  const CycleCost cost = im2col_cost(shape, geometry);

  MappingPlan plan;
  plan.shape = shape;
  plan.geometry = geometry;
  plan.cost = cost;
  plan.kind = PlanKind::kIm2colDense;
  // One kernel window per cycle: the base grid is every window position.
  plan.base_x.reserve(static_cast<std::size_t>(shape.windows_w()));
  for (Count wx = 0; wx < shape.windows_w(); ++wx) {
    plan.base_x.push_back(static_cast<Dim>(wx * shape.stride_w));
  }
  plan.base_y.reserve(static_cast<std::size_t>(shape.windows_h()));
  for (Count wy = 0; wy < shape.windows_h(); ++wy) {
    plan.base_y.push_back(static_cast<Dim>(wy * shape.stride_h));
  }

  const Count volume = shape.kernel_volume();
  const Dim kernel_area = shape.kernel_w * shape.kernel_h;
  for (Dim ar = 0; ar < cost.ar_cycles; ++ar) {
    const Count flat_first = static_cast<Count>(ar) * geometry.rows;
    const Count flat_end =
        std::min(volume, flat_first + static_cast<Count>(geometry.rows));
    for (Dim ac = 0; ac < cost.ac_cycles; ++ac) {
      const Dim oc_first = static_cast<Dim>(
          static_cast<Count>(ac) * geometry.cols);
      const Dim oc_count = std::min<Dim>(
          geometry.cols, shape.out_channels - oc_first);

      ArrayTile tile;
      tile.ar_index = ar;
      tile.ac_index = ac;
      for (Count flat = flat_first; flat < flat_end; ++flat) {
        const Dim ic = static_cast<Dim>(flat / kernel_area);
        const Dim rem = static_cast<Dim>(flat % kernel_area);
        const Dim ky = rem / shape.kernel_w;
        const Dim kx = rem % shape.kernel_w;
        VWSDK_ASSERT(im2col_row_index(ic, ky, kx, shape.kernel_h,
                                      shape.kernel_w) ==
                         static_cast<Dim>(flat),
                     "flat decode disagrees with im2col_row_index");
        tile.rows.push_back(RowBinding{static_cast<Dim>(flat - flat_first),
                                       ic, ky, kx, 0});
      }
      for (Dim o = 0; o < oc_count; ++o) {
        tile.cols.push_back(ColBinding{o, oc_first + o, 0, 0, 0});
      }
      for (const ColBinding& cb : tile.cols) {
        for (const RowBinding& rb : tile.rows) {
          tile.cells.push_back(CellAssignment{rb.row, cb.col, cb.oc, rb.ic,
                                              rb.dy, rb.dx});
        }
      }
      plan.tiles.push_back(std::move(tile));
    }
  }
  return plan;
}

MappingPlan build_smd_plan(const ConvShape& shape,
                           const ArrayGeometry& geometry) {
  shape.validate();
  geometry.validate();
  const CycleCost cost = smd_cost(shape, geometry);
  if (cost.smd_duplicates <= 1) {
    return build_im2col_plan(shape, geometry);
  }

  MappingPlan plan;
  plan.shape = shape;
  plan.geometry = geometry;
  plan.cost = cost;
  plan.kind = PlanKind::kSmd;
  // SMD executes chunks of D windows; no base grid.

  const Count volume = shape.kernel_volume();
  const Dim kernel_area = shape.kernel_w * shape.kernel_h;
  ArrayTile tile;
  tile.ar_index = 0;
  tile.ac_index = 0;
  for (Dim dup = 0; dup < cost.smd_duplicates; ++dup) {
    const Dim row_base = static_cast<Dim>(static_cast<Count>(dup) * volume);
    const Dim col_base = dup * shape.out_channels;
    for (Count flat = 0; flat < volume; ++flat) {
      const Dim ic = static_cast<Dim>(flat / kernel_area);
      const Dim rem = static_cast<Dim>(flat % kernel_area);
      tile.rows.push_back(RowBinding{row_base + static_cast<Dim>(flat), ic,
                                     rem / shape.kernel_w,
                                     rem % shape.kernel_w, dup});
    }
    for (Dim oc = 0; oc < shape.out_channels; ++oc) {
      tile.cols.push_back(ColBinding{col_base + oc, oc, 0, 0, dup});
    }
    for (Dim oc = 0; oc < shape.out_channels; ++oc) {
      for (Count flat = 0; flat < volume; ++flat) {
        const Dim ic = static_cast<Dim>(flat / kernel_area);
        const Dim rem = static_cast<Dim>(flat % kernel_area);
        tile.cells.push_back(
            CellAssignment{row_base + static_cast<Dim>(flat), col_base + oc,
                           oc, ic, rem / shape.kernel_w,
                           rem % shape.kernel_w});
      }
    }
  }
  plan.tiles.push_back(std::move(tile));
  return plan;
}

MappingPlan build_plan_for_window(const ConvShape& shape,
                                  const ArrayGeometry& geometry,
                                  const ParallelWindow& pw) {
  if (pw == kernel_window(shape)) {
    return build_im2col_plan(shape, geometry);
  }
  const CycleCost cost = vw_cost(shape, geometry, pw);
  VWSDK_REQUIRE(cost.feasible, cat("window ", pw.to_string(),
                                   " infeasible on ", geometry.to_string()));
  return build_windowed_plan(shape, geometry, cost);
}

MappingPlan build_plan_for_cost(const ConvShape& shape,
                                const ArrayGeometry& geometry,
                                const CycleCost& cost) {
  VWSDK_REQUIRE(cost.feasible, "cannot build a plan for an infeasible cost");
  MappingPlan plan;
  if (cost.smd_duplicates > 1) {
    plan = build_smd_plan(shape, geometry);
  } else if (cost.split == RowSplit::kElementGranular) {
    plan = build_im2col_plan(shape, geometry);
  } else if (checked_mul(cost.window.area(), cost.ic_t) > geometry.rows ||
             checked_mul(windows_in_pw(shape, cost.window), cost.oc_t) >
                 geometry.cols) {
    // SDK entire-channel windows that overflow one array: Eq. (1)
    // element/column splitting.
    plan = build_element_split_plan(shape, geometry, cost);
  } else {
    plan = build_windowed_plan(shape, geometry, cost);
  }
  VWSDK_ASSERT(plan.cost.total == cost.total,
               cat("rebuilt plan cycles ", plan.cost.total,
                   " differ from requested cost ", cost.total));
  return plan;
}

}  // namespace vwsdk
