#include "mapping/conv_shape.h"

#include "common/error.h"
#include "common/math_util.h"
#include "common/string_util.h"

namespace vwsdk {

ConvShape ConvShape::from_layer(const ConvLayerDesc& layer) {
  layer.validate();
  ConvShape shape;
  shape.ifm_w = layer.ifm_w;
  shape.ifm_h = layer.ifm_h;
  shape.kernel_w = layer.kernel_w;
  shape.kernel_h = layer.kernel_h;
  shape.in_channels = layer.in_channels;
  shape.out_channels = layer.out_channels;
  shape.stride_w = layer.config.stride_w;
  shape.stride_h = layer.config.stride_h;
  shape.pad_w = layer.config.pad_w;
  shape.pad_h = layer.config.pad_h;
  return shape;
}

ConvShape ConvShape::square(Dim image, Dim kernel, Dim in_channels,
                            Dim out_channels) {
  ConvShape shape;
  shape.ifm_w = image;
  shape.ifm_h = image;
  shape.kernel_w = kernel;
  shape.kernel_h = kernel;
  shape.in_channels = in_channels;
  shape.out_channels = out_channels;
  shape.validate();
  return shape;
}

void ConvShape::validate() const {
  VWSDK_REQUIRE(ifm_w > 0 && ifm_h > 0, "ConvShape: IFM extents must be > 0");
  VWSDK_REQUIRE(kernel_w > 0 && kernel_h > 0,
                "ConvShape: kernel extents must be > 0");
  VWSDK_REQUIRE(in_channels > 0 && out_channels > 0,
                "ConvShape: channel counts must be > 0");
  VWSDK_REQUIRE(stride_w > 0 && stride_h > 0,
                "ConvShape: strides must be > 0");
  VWSDK_REQUIRE(pad_w >= 0 && pad_h >= 0, "ConvShape: padding must be >= 0");
  VWSDK_REQUIRE(padded_w() >= kernel_w && padded_h() >= kernel_h,
                cat("ConvShape: kernel ", kernel_w, "x", kernel_h,
                    " larger than padded input ", padded_w(), "x",
                    padded_h()));
}

Count ConvShape::windows_w() const {
  return floor_div(padded_w() - kernel_w, stride_w) + 1;
}

Count ConvShape::windows_h() const {
  return floor_div(padded_h() - kernel_h, stride_h) + 1;
}

Count ConvShape::num_windows() const {
  return checked_mul(windows_w(), windows_h());
}

Count ConvShape::kernel_volume() const {
  return checked_mul(checked_mul(kernel_w, kernel_h), in_channels);
}

std::string ConvShape::to_string() const {
  return cat(ifm_w, "x", ifm_h, " k", kernel_w, "x", kernel_h, " ic",
             in_channels, " oc", out_channels, " s", stride_w,
             (stride_w == stride_h ? "" : cat("/", stride_h)), " p", pad_w,
             (pad_w == pad_h ? "" : cat("/", pad_h)));
}

}  // namespace vwsdk
