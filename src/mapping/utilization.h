#pragma once

/// @file utilization.h
/// Array-utilization model (Eq. (9) of the paper).
///
/// Eq. (9) defines utilization as the average over computing cycles of
/// used-cells / total-cells, but the paper does not pin down two details:
/// whether the *last, partial* channel tile is averaged in, and whether a
/// "used" cell means a cell holding a true weight or any cell inside the
/// mapped window footprint.  We therefore implement three documented
/// conventions (see DESIGN.md §3.4):
///
///  * `kSteadyState` -- utilization of one full (non-remainder) tile,
///    counting true weight cells only:
///        K_w*K_h*IC_t * N_WP*OC_t / (rows*cols).
///    This convention reproduces the paper's one precise number exactly:
///    VGG-13 layer 5 with a 4x3 window on 512x512 gives
///    9*42*2*256 / 512^2 = 73.83%  (the paper reports "73.8%").
///
///  * `kCycleAverageWeightCells` -- literal Eq. (9) over all AR*AC array
///    programmings, counting true weight cells (structural zeros in the
///    shifted-kernel columns are *not* used):
///        K_w*K_h*IC * N_WP*OC / (AR*AC * rows*cols).
///
///  * `kCycleAverageFootprint` -- literal Eq. (9) counting the bounding
///    footprint (used rows x used columns), i.e. including the structural
///    zeros that the SDK layout interleaves between kernel elements.

#include "mapping/cost_model.h"

namespace vwsdk {

/// Which accounting convention to apply to Eq. (9).
enum class UtilizationConvention {
  kSteadyState,
  kCycleAverageWeightCells,
  kCycleAverageFootprint,
};

/// Compute utilization in [0, 1] for a mapping described by `cost`
/// (as returned by im2col_cost / sdk_cost / vw_cost / smd_cost).
/// Throws InvalidArgument if `cost` is infeasible.
double utilization(const ConvShape& shape, const ArrayGeometry& geometry,
                   const CycleCost& cost, UtilizationConvention convention);

/// Human-readable name of a convention.
const char* utilization_convention_name(UtilizationConvention convention);

}  // namespace vwsdk
