#include "mapping/activity.h"

#include <algorithm>

#include "common/error.h"
#include "common/math_util.h"

namespace vwsdk {

EnergyReport analytic_activity(const ConvShape& shape,
                               const ArrayGeometry& geometry,
                               const CycleCost& cost) {
  shape.validate();
  geometry.validate();
  VWSDK_REQUIRE(cost.feasible, "analytic_activity of infeasible mapping");

  EnergyReport report;
  report.cycles = cost.total;

  if (cost.split == RowSplit::kElementGranular) {
    const Count volume = shape.kernel_volume();
    if (cost.smd_duplicates > 1) {
      // One tile; the final chunk may drive fewer duplicates but the rows
      // remain bound (idle inputs are driven with zero), so per-cycle
      // activity is constant.
      const Count rows = checked_mul(volume, cost.smd_duplicates);
      const Count cols =
          checked_mul(shape.out_channels, cost.smd_duplicates);
      report.row_activations = checked_mul(cost.total, rows);
      report.col_reads = checked_mul(cost.total, cols);
      report.cell_macs =
          checked_mul(cost.total, checked_mul(volume, cols));
      return report;
    }
    // im2col: AR element slices x AC column slices, per window.
    const Count windows = shape.num_windows();
    Count rows_per_grid = 0;   // Σ over AR tiles of bound rows
    for (Cycles ar = 0; ar < cost.ar_cycles; ++ar) {
      const Count first = ar * geometry.rows;
      rows_per_grid += std::min<Count>(geometry.rows, volume - first);
    }
    Count cols_per_grid = 0;   // Σ over AC tiles of bound cols
    for (Cycles ac = 0; ac < cost.ac_cycles; ++ac) {
      const Count first = ac * geometry.cols;
      cols_per_grid +=
          std::min<Count>(geometry.cols, shape.out_channels - first);
    }
    // Every (AR, AC) pair runs once per window; rows repeat per AC tile
    // and cols repeat per AR tile.
    report.row_activations =
        checked_mul(windows, checked_mul(rows_per_grid, cost.ac_cycles));
    report.col_reads =
        checked_mul(windows, checked_mul(cols_per_grid, cost.ar_cycles));
    report.cell_macs =
        checked_mul(windows, checked_mul(rows_per_grid, cols_per_grid));
    return report;
  }

  // Windowed (channel-granular) mapping.
  const Count n_pw = cost.n_parallel_windows;
  const Count n_wp = windows_in_pw(shape, cost.window);
  const Count kernel_area = checked_mul(shape.kernel_w, shape.kernel_h);
  Count rows_per_grid = 0;   // Σ over AR tiles of bound rows
  Count weight_rows = 0;     // Σ over AR tiles of channels (for cells)
  for (Cycles ar = 0; ar < cost.ar_cycles; ++ar) {
    const Count first = ar * cost.ic_t;
    const Count channels =
        std::min<Count>(cost.ic_t, shape.in_channels - first);
    rows_per_grid += checked_mul(cost.window.area(), channels);
    weight_rows += channels;
  }
  Count cols_per_grid = 0;
  Count weight_cols = 0;
  for (Cycles ac = 0; ac < cost.ac_cycles; ++ac) {
    const Count first = ac * cost.oc_t;
    const Count out = std::min<Count>(cost.oc_t, shape.out_channels - first);
    cols_per_grid += checked_mul(n_wp, out);
    weight_cols += out;
  }
  report.row_activations =
      checked_mul(n_pw, checked_mul(rows_per_grid, cost.ac_cycles));
  report.col_reads =
      checked_mul(n_pw, checked_mul(cols_per_grid, cost.ar_cycles));
  // Cells per (AR, AC) tile: channels * K^2 * N_WP * out-channels.
  Count cells_per_grid = 0;
  for (Cycles ar = 0; ar < cost.ar_cycles; ++ar) {
    const Count cfirst = ar * cost.ic_t;
    const Count channels =
        std::min<Count>(cost.ic_t, shape.in_channels - cfirst);
    for (Cycles ac = 0; ac < cost.ac_cycles; ++ac) {
      const Count ofirst = ac * cost.oc_t;
      const Count out =
          std::min<Count>(cost.oc_t, shape.out_channels - ofirst);
      cells_per_grid += checked_mul(checked_mul(kernel_area, channels),
                                    checked_mul(n_wp, out));
    }
  }
  report.cell_macs = checked_mul(n_pw, cells_per_grid);
  return report;
}

}  // namespace vwsdk
