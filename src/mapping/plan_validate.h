#pragma once

/// @file plan_validate.h
/// Structural invariant checking for MappingPlans.
///
/// A valid plan satisfies, per tile:
///  * all rows/columns lie inside the array geometry;
///  * row / column binding indices are unique;
///  * no cell is assigned twice (collision = two weights in one device);
///  * every cell is consistent with its row and column bindings: the
///    row's window offset equals the column's window position times the
///    stride plus the cell's kernel coordinate, the channels match, and
///    SMD duplicate indices agree;
///  * kernel coordinates are within the kernel extent;
/// and globally:
///  * each input channel appears in exactly one AR tile band (windowed
///    plans) or each flattened kernel element in exactly one AR tile
///    (im2col plans);
///  * each output channel appears in exactly one AC tile band;
///  * the parallel-window base grid covers every kernel window of the
///    layer at least once;
///  * the realized cycle count equals the analytic cost.

#include <string>
#include <vector>

#include "mapping/mapping_plan.h"

namespace vwsdk {

/// Run all checks; returns a list of human-readable violations (empty if
/// the plan is valid).
std::vector<std::string> validate_plan(const MappingPlan& plan);

/// Throws InternalError listing all violations if the plan is invalid.
void expect_valid(const MappingPlan& plan);

}  // namespace vwsdk
