#pragma once

/// @file cost_model.h
/// The paper's computing-cycle cost model, Eqs. (1)-(8).
///
/// Three mapping families are costed:
///
///  * **im2col** (Eq. (1) with N_WP = 1): one kernel-sized window per
///    cycle.  The flattened kernel column may be split across arrays at
///    arbitrary *element* granularity, so
///        AR = ceil(K_w*K_h*IC / rows),  AC = ceil(OC / cols),
///        cycles = N_windows * AR * AC.
///    (Element granularity is load-bearing: ResNet-18 conv5 has AR = 9,
///    not 10, and only then does the published total 7240/20041 follow.)
///
///  * **SDK** (Eq. (1), entire channels): a square parallel window whose
///    *whole-channel* unrolled input may again be row-split:
///        AR = ceil(PW_w*PW_h*IC / rows),  AC = ceil(OC*N_WP / cols).
///
///  * **VW-SDK** (Eqs. (4)-(8), partial channels): the window is mapped
///    with a *channel tile* IC_t = floor(rows / PW-area) so that one array
///    holds whole channels of the window (input reuse requires them
///    together), and OC_t = floor(cols / N_WP):
///        AR = ceil(IC / IC_t),  AC = ceil(OC / OC_t),
///        cycles = N_PW * AR * AC.
///
///  * **SMD** (sub-matrix duplication, ref [6], Fig. 2(b)): D copies of
///    the im2col matrix placed block-diagonally compute D independent
///    windows per cycle: D = min(floor(rows/K²IC), floor(cols/OC)),
///    cycles = ceil(N_windows / D) * AR * AC (AR/AC as im2col; D >= 2
///    implies AR = AC = 1 by construction).

#include <string>
#include <vector>

#include "common/types.h"
#include "mapping/conv_shape.h"
#include "mapping/parallel_window.h"
#include "pim/array_geometry.h"

namespace vwsdk {

class ThreadPool;

/// How a mapping splits kernel rows across AR cycles.
enum class RowSplit {
  kElementGranular,  ///< im2col/SMD: flattened column cut anywhere
  kChannelGranular   ///< SDK/VW-SDK tiles: whole channels per array
};

/// Full breakdown of one mapping's cycle cost.
struct CycleCost {
  bool feasible = false;          ///< false if the window cannot be mapped
  ParallelWindow window{};        ///< the parallel window (kernel for im2col)
  RowSplit split = RowSplit::kChannelGranular;
  Dim ic_t = 0;                   ///< tiled input channels (clamped to IC)
  Dim oc_t = 0;                   ///< tiled output channels (clamped to OC)
  Count n_parallel_windows = 0;   ///< N_PW (or window chunks for SMD)
  Cycles ar_cycles = 0;           ///< array-row cycles
  Cycles ac_cycles = 0;           ///< array-column cycles
  Cycles total = 0;               ///< N_PW * AR * AC
  Dim smd_duplicates = 1;         ///< D (SMD only; 1 otherwise)

  /// "pw=4x3 ict=42 oct=256 npw=72 ar=7 ac=1 cycles=504"
  std::string to_string() const;

  bool operator==(const CycleCost&) const = default;
};

/// Tiled input channels for a window (Eq. (4)), clamped to IC.
/// Returns 0 if even one channel of the window exceeds the rows
/// (infeasible window).
Dim tiled_ic(const ConvShape& shape, const ArrayGeometry& geometry,
             const ParallelWindow& pw);

/// Tiled output channels (Eq. (6)), clamped to OC.  Returns 0 if even one
/// output channel's duplicated kernels exceed the columns.
Dim tiled_oc(const ConvShape& shape, const ArrayGeometry& geometry,
             const ParallelWindow& pw);

/// im2col cost (Eq. (1), N_WP = 1, element-granular rows).
CycleCost im2col_cost(const ConvShape& shape, const ArrayGeometry& geometry);

/// SDK cost for a given square-or-not window with entire channels
/// (Eq. (1)).  The window must be admissible.
CycleCost sdk_cost(const ConvShape& shape, const ArrayGeometry& geometry,
                   const ParallelWindow& pw);

/// VW-SDK cost for a given window with channel tiling (Eq. (8)).
/// Infeasible windows (IC_t or OC_t = 0, or inadmissible) yield
/// feasible = false and total = max.
CycleCost vw_cost(const ConvShape& shape, const ArrayGeometry& geometry,
                  const ParallelWindow& pw);

/// Sub-matrix duplication cost (ref [6]).
CycleCost smd_cost(const ConvShape& shape, const ArrayGeometry& geometry);

/// vw_cost() of every window in `windows` (same indexing).  With a pool
/// of more than one worker and a candidate set large enough to amortize
/// the fan-out, evaluation is spread over the pool in contiguous chunks;
/// the result is index-aligned and therefore independent of scheduling.
/// Must not be called from a task already running on `pool`.
std::vector<CycleCost> vw_costs(const ConvShape& shape,
                                const ArrayGeometry& geometry,
                                const std::vector<ParallelWindow>& windows,
                                ThreadPool* pool = nullptr);

}  // namespace vwsdk
