#include "mapping/layout_render.h"

#include <algorithm>

#include "common/string_util.h"

namespace vwsdk {

std::string render_tile(const MappingPlan& plan, Dim ar, Dim ac,
                        Dim max_rows, Dim max_cols) {
  const ArrayTile& tile = plan.tile(ar, ac);
  const Dim rows = std::min(plan.geometry.rows, max_rows);
  const Dim cols = std::min(plan.geometry.cols, max_cols);
  const bool truncated =
      rows < plan.geometry.rows || cols < plan.geometry.cols;

  std::vector<std::string> grid(
      static_cast<std::size_t>(rows),
      std::string(static_cast<std::size_t>(cols), '.'));
  for (const CellAssignment& cell : tile.cells) {
    if (cell.row < rows && cell.col < cols) {
      grid[static_cast<std::size_t>(cell.row)]
          [static_cast<std::size_t>(cell.col)] = '#';
    }
  }

  std::string out = cat("tile(", ar, ",", ac, ") of ",
                        plan.geometry.to_string(), " array ('#'=weight):\n");
  for (const std::string& line : grid) {
    out += "  ";
    out += line;
    out += '\n';
  }
  if (truncated) {
    out += cat("  ... (showing top-left ", rows, "x", cols, " of ",
               plan.geometry.to_string(), ")\n");
  }
  return out;
}

std::string describe_plan(const MappingPlan& plan) {
  const char* kind = plan.kind == PlanKind::kWindowed ? "windowed"
                     : plan.kind == PlanKind::kWindowedSplit
                         ? "windowed-split"
                     : plan.kind == PlanKind::kIm2colDense ? "im2col"
                                                           : "smd";
  std::string out = cat("plan[", kind, "] layer ", plan.shape.to_string(),
                        " on ", plan.geometry.to_string(), "\n  ",
                        plan.cost.to_string(), "\n");
  if (plan.kind != PlanKind::kSmd) {
    out += cat("  base grid: ", plan.base_y.size(), " x ",
               plan.base_x.size(), " parallel windows\n");
  } else {
    out += cat("  smd duplicates: ", plan.cost.smd_duplicates, "\n");
  }
  out += cat("  tiles: ", plan.tiles.size(), ", programmed cells: ",
             plan.programmed_cells(), ", total cycles: ",
             plan.total_cycles(), "\n");
  return out;
}

}  // namespace vwsdk
