#include "mapping/objective.h"

#include <sstream>

#include "common/error.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "mapping/activity.h"

namespace vwsdk {

namespace {

/// Round-trip-exact rendering of one parameter (hexfloat: two doubles
/// collide only when they are the same value).
std::string exact(double value) {
  std::ostringstream os;
  os << std::hexfloat << value;
  return os.str();
}

/// "name@dac=...,adc=...,cell=...,t=..." -- exact parameters so distinct
/// parameterizations get distinct memoization identities.
std::string params_cache_key(const std::string& name,
                             const EnergyParams& params) {
  return cat(name, "@dac=", exact(params.dac_pj_per_row),
             ",adc=", exact(params.adc_pj_per_col),
             ",cell=", exact(params.cell_pj_per_mac),
             ",t=", exact(params.cycle_ns));
}

/// The paper's objective; scores are exact cycle counts.
class CyclesObjective final : public Objective {
 public:
  std::string name() const override { return "cycles"; }
  std::string unit() const override { return "cycles"; }
  std::string description() const override {
    return "computing cycles (the paper's Algorithm 1 objective)";
  }
  double score(const ConvShape&, const ArrayGeometry&,
               const CycleCost& cost) const override {
    return static_cast<double>(cost.total);
  }
  bool cycle_lower_bound_admissible() const override { return true; }
  double stage_score(const ConvShape&, const ArrayGeometry&,
                     const CycleCost&, Dim, Cycles makespan) const override {
    return static_cast<double>(makespan);
  }
};

}  // namespace

EnergyObjective::EnergyObjective(const EnergyParams& params)
    : params_(params) {
  params_.validate();
}

std::string EnergyObjective::description() const {
  return "analytic conversion energy, active rows/columns only (pJ)";
}

double EnergyObjective::score(const ConvShape& shape,
                              const ArrayGeometry& geometry,
                              const CycleCost& cost) const {
  return analytic_activity(shape, geometry, cost).energy_pj(params_);
}

std::string EnergyObjective::cache_key() const {
  return params_cache_key(name(), params_);
}

EdpObjective::EdpObjective(const EnergyParams& params) : params_(params) {
  params_.validate();
}

std::string EdpObjective::description() const {
  return "energy-delay product: active energy x cycle latency (pJ.ns)";
}

double EdpObjective::score(const ConvShape& shape,
                           const ArrayGeometry& geometry,
                           const CycleCost& cost) const {
  const EnergyReport activity = analytic_activity(shape, geometry, cost);
  return activity.energy_pj(params_) * activity.latency_ns(params_);
}

std::string EdpObjective::cache_key() const {
  return params_cache_key(name(), params_);
}

double EdpObjective::stage_score(const ConvShape& shape,
                                 const ArrayGeometry& geometry,
                                 const CycleCost& cost, Dim groups,
                                 Cycles makespan) const {
  // Energy is the full per-inference conversion count (all G groups);
  // delay is the parallel stage latency, not the serial cycle count.
  const double energy =
      static_cast<double>(groups) *
      analytic_activity(shape, geometry, cost).energy_pj(params_);
  return energy * static_cast<double>(makespan) * params_.cycle_ns;
}

const Objective& cycles_objective() {
  static const CyclesObjective objective;
  return objective;
}

const Objective& energy_objective() {
  static const EnergyObjective objective;
  return objective;
}

const Objective& edp_objective() {
  static const EdpObjective objective;
  return objective;
}

const Objective& objective_by_name(const std::string& name) {
  const std::string key = to_lower(trim(name));
  for (const Objective* objective :
       {&cycles_objective(), &energy_objective(), &edp_objective()}) {
    if (objective->name() == key) {
      return *objective;
    }
  }
  throw NotFound(cat("unknown objective '", name,
                     "'; known: ", join(objective_names(), ", ")));
}

std::vector<std::string> objective_names() {
  return {cycles_objective().name(), energy_objective().name(),
          edp_objective().name()};
}

std::vector<double> score_costs(const Objective& objective,
                                const ConvShape& shape,
                                const ArrayGeometry& geometry,
                                const std::vector<CycleCost>& costs,
                                ThreadPool& pool) {
  std::vector<double> scores(costs.size(), 0.0);
  const auto score_range = [&](Count begin, Count end) {
    for (Count i = begin; i < end; ++i) {
      const auto index = static_cast<std::size_t>(i);
      if (costs[index].feasible) {
        scores[index] = objective.score(shape, geometry, costs[index]);
      }
    }
  };
  // A cycle-count score is a field read; the fan-out would cost more
  // than it saves.  Activity-model scores dominate an energy/EDP scan.
  if (objective.cycle_lower_bound_admissible() || pool.size() <= 1 ||
      costs.empty()) {
    score_range(0, static_cast<Count>(costs.size()));
  } else {
    parallel_chunks(pool, static_cast<Count>(costs.size()), score_range);
  }
  return scores;
}

}  // namespace vwsdk
