#pragma once

/// @file mapping_plan.h
/// Physical placement of a convolution onto crossbar arrays.
///
/// A MappingPlan makes the analytic cost model *executable*: it spells out,
/// for every AR x AC array programming ("tile"), exactly which weight goes
/// into which cell, what each array row means (which input element relative
/// to the parallel-window base), and what each array column produces (which
/// output channel at which window position).  The functional executor
/// (src/sim/executor.h) runs plans on real tensors; the validator
/// (plan_validate.h) checks their structural invariants.
///
/// Coordinate conventions:
///  * window offsets (dy, dx) are in *padded* input pixels relative to the
///    parallel-window base;
///  * window positions (win_py, win_px) are in kernel-window units inside
///    the parallel window (column `win` computes output at base_window +
///    win);
///  * `dup` identifies the SMD duplicate block (always 0 for im2col / SDK /
///    VW-SDK plans).

#include <vector>

#include "mapping/cost_model.h"
#include "pim/array_geometry.h"

namespace vwsdk {

/// What one array row carries on its wordline.
struct RowBinding {
  Dim row = 0;     ///< array row index
  Dim ic = 0;      ///< absolute input channel
  Dim dy = 0;      ///< vertical offset inside the parallel window
  Dim dx = 0;      ///< horizontal offset inside the parallel window
  Dim dup = 0;     ///< SMD duplicate block (0 otherwise)
};

/// What one array column produces on its bitline.
struct ColBinding {
  Dim col = 0;     ///< array column index
  Dim oc = 0;      ///< absolute output channel
  Dim win_px = 0;  ///< kernel-window x-index inside the parallel window
  Dim win_py = 0;  ///< kernel-window y-index inside the parallel window
  Dim dup = 0;     ///< SMD duplicate block (0 otherwise)
};

/// One programmed cell: the weight W[oc][ic][ky][kx] at (row, col).
struct CellAssignment {
  Dim row = 0;
  Dim col = 0;
  Dim oc = 0;
  Dim ic = 0;
  Dim ky = 0;
  Dim kx = 0;
};

/// One array programming: the (ar_index, ac_index) tile of the mapping.
struct ArrayTile {
  Dim ar_index = 0;
  Dim ac_index = 0;
  std::vector<RowBinding> rows;
  std::vector<ColBinding> cols;
  std::vector<CellAssignment> cells;
};

/// Flavor of plan layout.
enum class PlanKind {
  kWindowed,      ///< VW-SDK: channel-granular parallel-window tiles
  kWindowedSplit, ///< SDK entire-channel windows: window rows split at
                  ///< element granularity, columns split at column
                  ///< granularity (Eq. (1) semantics)
  kIm2colDense,   ///< im2col: flattened column split at element granularity
  kSmd            ///< sub-matrix duplication: block-diagonal im2col copies
};

/// A complete physical mapping of one conv layer onto one array geometry.
struct MappingPlan {
  ConvShape shape{};
  ArrayGeometry geometry{};
  CycleCost cost{};         ///< the analytic cost this plan realizes
  PlanKind kind = PlanKind::kWindowed;

  /// Parallel-window base positions in padded input pixels, per axis.
  /// The full base grid is the cross product base_y x base_x.  For SMD the
  /// grid is replaced by chunks of `cost.smd_duplicates` windows.
  std::vector<Dim> base_x;
  std::vector<Dim> base_y;

  /// All AR x AC tiles, ar-major (tile(ar, ac) = tiles[ar * AC + ac]).
  std::vector<ArrayTile> tiles;

  /// Bounds-checked tile accessor.
  const ArrayTile& tile(Dim ar, Dim ac) const;

  /// Total computing cycles this plan executes:
  /// base-grid positions (or SMD chunks) x tiles.
  Cycles total_cycles() const;

  /// Total programmed cells across all tiles.
  Count programmed_cells() const;
};

}  // namespace vwsdk
