#pragma once

/// @file objective.h
/// Pluggable search objectives for the window scan.
///
/// The paper's Algorithm 1 minimizes computing cycles, but its own
/// premise (§II-B) is that AD/DA conversions dominate PIM *energy* -- and
/// cycle count and conversion count are not the same thing under
/// per-active-column accounting (a window with fewer cycles can need a
/// higher AR split and therefore more partial-sum conversions; see
/// bench_energy).  An Objective turns "which candidate wins" into a
/// strategy: every search mapper scores candidates through the objective
/// in its MappingContext instead of comparing raw CycleCost totals.
///
/// Built-ins:
///  * `cycles` -- the paper's objective.  Scores are exact cycle counts
///    (integers below 2^53), the comparison is the strict `<` of
///    Algorithm 1, so searches are bit-identical to the pre-objective
///    code, first-minimum tie-break included.
///  * `energy` -- analytic per-active-row/column energy (pJ) of one
///    inference under pim/energy_model's literature-scale defaults.
///    Active-only accounting is deliberate: under full-array accounting
///    energy is exactly proportional to cycles and the objective would
///    never choose differently.
///  * `edp` -- energy-delay product (pJ x ns): energy as above times
///    `cycles * cycle_ns` latency.
///
/// Scores are lower-is-better doubles; `better()` is a strict comparison,
/// so the first candidate reaching the minimum wins, matching the paper's
/// tie-break convention under every objective.

#include <memory>
#include <string>
#include <vector>

#include "mapping/conv_shape.h"
#include "mapping/cost_model.h"
#include "pim/array_geometry.h"
#include "pim/energy_model.h"

namespace vwsdk {

class ThreadPool;

/// Scoring strategy for candidate mappings (lower scores win).
class Objective {
 public:
  virtual ~Objective() = default;

  /// Short stable identifier ("cycles", "energy", "edp").
  virtual std::string name() const = 0;

  /// Unit of the score ("cycles", "pJ", "pJ.ns") for reports.
  virtual std::string unit() const = 0;

  /// One-line description for --help and docs.
  virtual std::string description() const = 0;

  /// Score of a *feasible* candidate mapping; lower is better.
  virtual double score(const ConvShape& shape, const ArrayGeometry& geometry,
                       const CycleCost& cost) const = 0;

  /// True when `candidate` must replace an incumbent scoring `incumbent`.
  /// The default is strictly-lower, which preserves the paper's
  /// first-minimum tie-break (equal scores keep the earlier candidate).
  virtual bool better(double candidate, double incumbent) const {
    return candidate < incumbent;
  }

  /// True when "candidate cycles >= incumbent score implies no
  /// improvement" pruning on raw cycle counts is admissible -- i.e. the
  /// score is the cycle count itself.  The pruned mapper's lower-bound
  /// cut (cycles >= N_PW) relies on this; objectives that are not
  /// monotone in cycles (energy under active accounting) must return
  /// false or the prune would discard their optimum.
  virtual bool cycle_lower_bound_admissible() const { return false; }

  /// Memoization identity: two Objective instances whose cache keys
  /// match must score every mapping identically.  Defaults to name();
  /// parameterized objectives MUST extend it with their parameters, or
  /// a shared MappingCache would serve one parameterization's optimum
  /// to another (the built-in energy/edp objectives embed their
  /// EnergyParams).
  virtual std::string cache_key() const { return name(); }

  /// Score of one *pipeline stage* inside a chip-level allocation
  /// (sim/chip_allocator.h): the stage's per-inference work is `groups`
  /// identical copies of `cost` (a grouped layer runs G independent
  /// sub-convolutions), dispatched over enough arrays that the stage
  /// finishes in `makespan` cycles.  Lower is better.  The default
  /// prices the work itself (groups x score) and ignores the makespan
  /// -- correct for objectives parallelism cannot improve (energy:
  /// replication divides time, never conversions).  Latency-priced
  /// objectives override it: `cycles` scores the makespan directly and
  /// `edp` re-prices its delay factor with the parallel makespan.
  virtual double stage_score(const ConvShape& shape,
                             const ArrayGeometry& geometry,
                             const CycleCost& cost, Dim groups,
                             Cycles makespan) const {
    (void)makespan;
    return static_cast<double>(groups) * score(shape, geometry, cost);
  }
};

/// The paper's objective: minimize CycleCost::total.  Scoring through it
/// is bit-identical to comparing raw totals (cycle counts are exact in a
/// double below 2^53, far beyond any real network).
const Objective& cycles_objective();

/// Analytic active-accounting energy (default EnergyParams).
const Objective& energy_objective();

/// Energy-delay product (default EnergyParams).
const Objective& edp_objective();

/// The built-in objective with this (case-insensitive, trimmed) name;
/// throws NotFound listing the known names.
const Objective& objective_by_name(const std::string& name);

/// Names of the built-in objectives, in presentation order:
/// {"cycles", "energy", "edp"}.
std::vector<std::string> objective_names();

/// Index-aligned objective scores of `costs` (0.0 for infeasible
/// entries).  Cycle-count objectives are scored inline (the lookup is
/// trivial); activity-model objectives -- the expensive part of an
/// energy/EDP scan -- are spread over `pool` in contiguous chunks.
/// Either way the result depends only on the inputs, never on
/// scheduling.  Must not be called from a task already running on
/// `pool` (see thread_pool.h).
std::vector<double> score_costs(const Objective& objective,
                                const ConvShape& shape,
                                const ArrayGeometry& geometry,
                                const std::vector<CycleCost>& costs,
                                ThreadPool& pool);

/// Energy objective with caller-supplied constants (the built-in
/// `energy` singleton uses the defaults).
class EnergyObjective final : public Objective {
 public:
  EnergyObjective() = default;
  explicit EnergyObjective(const EnergyParams& params);

  std::string name() const override { return "energy"; }
  std::string unit() const override { return "pJ"; }
  std::string description() const override;
  double score(const ConvShape& shape, const ArrayGeometry& geometry,
               const CycleCost& cost) const override;
  std::string cache_key() const override;

  const EnergyParams& params() const { return params_; }

 private:
  EnergyParams params_{};
};

/// Energy-delay-product objective with caller-supplied constants.
class EdpObjective final : public Objective {
 public:
  EdpObjective() = default;
  explicit EdpObjective(const EnergyParams& params);

  std::string name() const override { return "edp"; }
  std::string unit() const override { return "pJ.ns"; }
  std::string description() const override;
  double score(const ConvShape& shape, const ArrayGeometry& geometry,
               const CycleCost& cost) const override;
  std::string cache_key() const override;
  double stage_score(const ConvShape& shape, const ArrayGeometry& geometry,
                     const CycleCost& cost, Dim groups,
                     Cycles makespan) const override;

  const EnergyParams& params() const { return params_; }

 private:
  EnergyParams params_{};
};

}  // namespace vwsdk
