#include "mapping/mapping_plan.h"

#include "common/error.h"
#include "common/math_util.h"
#include "common/string_util.h"

namespace vwsdk {

const ArrayTile& MappingPlan::tile(Dim ar, Dim ac) const {
  VWSDK_REQUIRE(ar >= 0 && ar < cost.ar_cycles && ac >= 0 &&
                    ac < cost.ac_cycles,
                cat("tile (", ar, ", ", ac, ") out of range ",
                    cost.ar_cycles, "x", cost.ac_cycles));
  const std::size_t index = static_cast<std::size_t>(ar) *
                                static_cast<std::size_t>(cost.ac_cycles) +
                            static_cast<std::size_t>(ac);
  VWSDK_ASSERT(index < tiles.size(), "tile list inconsistent with cost");
  return tiles[index];
}

Cycles MappingPlan::total_cycles() const {
  const Count grid = (kind == PlanKind::kSmd)
                         ? ceil_div(shape.num_windows(), cost.smd_duplicates)
                         : checked_mul(static_cast<Count>(base_x.size()),
                                       static_cast<Count>(base_y.size()));
  return checked_mul(grid, static_cast<Count>(tiles.size()));
}

Count MappingPlan::programmed_cells() const {
  Count total = 0;
  for (const ArrayTile& t : tiles) {
    total = checked_add(total, static_cast<Count>(t.cells.size()));
  }
  return total;
}

}  // namespace vwsdk
