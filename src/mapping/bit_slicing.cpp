#include "mapping/bit_slicing.h"

#include <limits>

#include "common/error.h"
#include "common/math_util.h"

namespace vwsdk {

Dim BitSlicingConfig::slices() const {
  validate();
  return static_cast<Dim>(ceil_div(weight_bits, cell_bits));
}

Dim BitSlicingConfig::input_steps() const {
  validate();
  return static_cast<Dim>(ceil_div(input_bits, dac_bits));
}

void BitSlicingConfig::validate() const {
  VWSDK_REQUIRE(weight_bits >= 1 && weight_bits <= 32,
                "weight_bits must be in [1, 32]");
  VWSDK_REQUIRE(cell_bits >= 1 && cell_bits <= 32,
                "cell_bits must be in [1, 32]");
  VWSDK_REQUIRE(input_bits >= 1 && input_bits <= 32,
                "input_bits must be in [1, 32]");
  VWSDK_REQUIRE(dac_bits >= 1 && dac_bits <= 32,
                "dac_bits must be in [1, 32]");
}

Dim tiled_oc_bitsliced(const ConvShape& shape, const ArrayGeometry& geometry,
                       const ParallelWindow& pw,
                       const BitSlicingConfig& config) {
  geometry.validate();
  const Count per_oc_cols =
      checked_mul(windows_in_pw(shape, pw), config.slices());
  const Count tile = floor_div(geometry.cols, per_oc_cols);
  return static_cast<Dim>(
      clamp_count(tile, 0, static_cast<Count>(shape.out_channels)));
}

CycleCost vw_cost_bitsliced(const ConvShape& shape,
                            const ArrayGeometry& geometry,
                            const ParallelWindow& pw,
                            const BitSlicingConfig& config) {
  shape.validate();
  geometry.validate();
  config.validate();

  CycleCost cost;
  cost.window = pw;
  cost.split = RowSplit::kChannelGranular;
  cost.total = std::numeric_limits<Cycles>::max();
  if (!window_admissible(shape, pw)) {
    return cost;
  }
  const Dim ic_t = tiled_ic(shape, geometry, pw);
  const Dim oc_t = tiled_oc_bitsliced(shape, geometry, pw, config);
  if (ic_t == 0 || oc_t == 0) {
    return cost;
  }
  cost.feasible = true;
  cost.ic_t = ic_t;
  cost.oc_t = oc_t;
  cost.n_parallel_windows = num_parallel_windows(shape, pw);
  cost.ar_cycles = ceil_div(shape.in_channels, ic_t);
  cost.ac_cycles = ceil_div(shape.out_channels, oc_t);
  cost.total = checked_mul(
      checked_mul(cost.n_parallel_windows,
                  checked_mul(cost.ar_cycles, cost.ac_cycles)),
      config.input_steps());
  return cost;
}

CycleCost im2col_cost_bitsliced(const ConvShape& shape,
                                const ArrayGeometry& geometry,
                                const BitSlicingConfig& config) {
  shape.validate();
  geometry.validate();
  config.validate();

  CycleCost cost = im2col_cost(shape, geometry);
  // Each output channel occupies `slices` adjacent columns.
  cost.oc_t = static_cast<Dim>(clamp_count(
      floor_div(geometry.cols, config.slices()), 0,
      static_cast<Count>(shape.out_channels)));
  if (cost.oc_t == 0) {
    cost.feasible = false;
    cost.total = std::numeric_limits<Cycles>::max();
    return cost;
  }
  cost.ac_cycles = ceil_div(
      checked_mul(shape.out_channels, config.slices()), geometry.cols);
  cost.total = checked_mul(
      checked_mul(cost.n_parallel_windows,
                  checked_mul(cost.ar_cycles, cost.ac_cycles)),
      config.input_steps());
  return cost;
}

}  // namespace vwsdk
