#pragma once

/// @file conv_shape.h
/// The cost model's view of a convolutional layer.
///
/// ConvShape carries exactly the quantities the paper's equations consume:
/// IFM extent I, kernel extent K, channel counts IC/OC -- plus the
/// stride/padding extension (DESIGN.md §6; the paper fixes stride 1, pad 0,
/// under which every formula below reduces to the published one).

#include <string>

#include "common/types.h"
#include "nn/layer.h"

namespace vwsdk {

/// Dimensional parameters of one convolution for mapping-cost purposes.
struct ConvShape {
  Dim ifm_w = 0;        ///< I_w
  Dim ifm_h = 0;        ///< I_h
  Dim kernel_w = 0;     ///< K_w
  Dim kernel_h = 0;     ///< K_h
  Dim in_channels = 0;  ///< IC
  Dim out_channels = 0; ///< OC
  Dim stride_w = 1;
  Dim stride_h = 1;
  Dim pad_w = 0;
  Dim pad_h = 0;

  /// Adopt the dimensions of a layer descriptor.
  static ConvShape from_layer(const ConvLayerDesc& layer);

  /// Convenience constructor for the paper's square stride-1 pad-0 case.
  static ConvShape square(Dim image, Dim kernel, Dim in_channels,
                          Dim out_channels);

  /// Throws InvalidArgument unless all extents are consistent.
  void validate() const;

  /// Padded input extents (I + 2*pad).
  Dim padded_w() const { return ifm_w + 2 * pad_w; }
  Dim padded_h() const { return ifm_h + 2 * pad_h; }

  /// Kernel-window (= output) count along each axis and in total.
  Count windows_w() const;
  Count windows_h() const;
  Count num_windows() const;

  /// K_w * K_h * IC: rows an im2col column occupies.
  Count kernel_volume() const;

  bool operator==(const ConvShape&) const = default;

  /// "224x224 k3x3 ic64 oc128 s1 p0"
  std::string to_string() const;
};

}  // namespace vwsdk
