#pragma once

/// @file plan_builder.h
/// Construction of executable MappingPlans from analytic mapping choices.
///
/// Layout conventions (documented here once, asserted by plan_validate,
/// relied on by the executor):
///
/// **Windowed plans** (SDK and VW-SDK; Fig. 2(c)/(d) of the paper).
/// For AR tile `i` (channels [i*IC_t, ...)) and AC tile `j` (output
/// channels [j*OC_t, ...)):
///  * row for (local channel c, window offset dy, dx):
///        row = c * PW_w*PW_h + dy * PW_w + dx
///  * column for (local output channel o, window index wy, wx):
///        col = o * N_WP + wy * WIP_w + wx
///    (all windows of one output channel sit on adjacent bitlines, the
///    "shifted and duplicated kernel" group);
///  * cell (row, col) holds W[oc][ic][ky][kx] iff the row's window offset
///    matches the column's window position: dy = wy*stride + ky and
///    dx = wx*stride + kx.  Offsets that match no kernel element stay
///    unprogrammed -- these are the structural zeros that make SDK
///    utilization interesting.
///
/// **im2col plans** (Fig. 2(a)).  The kernel column is flattened in
/// im2col_row_index order (ic-major, then ky, kx) and split across AR
/// tiles at *element* granularity: AR tile i holds flat indices
/// [i*rows, (i+1)*rows).  Column j*cols + o computes output channel
/// j*cols + o.  PW = kernel, one window per cycle.
///
/// **SMD plans** (Fig. 2(b)).  D = cost.smd_duplicates block-diagonal
/// copies of the im2col matrix; duplicate d occupies rows
/// [d*K^2*IC, ...) and columns [d*OC, ...).  Each cycle processes up to D
/// consecutive kernel windows (row-major over the output grid).
/// Requires D*K^2*IC <= rows (guaranteed by smd_cost for D >= 2;
/// for D == 1 the im2col plan is returned instead).

#include "mapping/mapping_plan.h"

namespace vwsdk {

/// Build a windowed (SDK / VW-SDK style) plan realizing `cost`, which must
/// be feasible, channel-granular, and produced by vw_cost (or equivalent
/// tiling).  Throws InvalidArgument otherwise.
MappingPlan build_windowed_plan(const ConvShape& shape,
                                const ArrayGeometry& geometry,
                                const CycleCost& cost);

/// Build an element-split windowed plan realizing an SDK-style cost from
/// sdk_cost(): the window's (channel, dy, dx) input rows are flattened
/// channel-major and cut every `rows` elements (a slice may start
/// mid-channel); the (oc, window) columns are flattened oc-major and cut
/// every `cols`.  This is how Eq. (1)'s AR = ceil(PW²·IC/rows) and
/// AC = ceil(OC·N_WP/cols) are physically realizable.
MappingPlan build_element_split_plan(const ConvShape& shape,
                                     const ArrayGeometry& geometry,
                                     const CycleCost& cost);

/// Build the dense im2col plan for `shape` on `geometry`.
MappingPlan build_im2col_plan(const ConvShape& shape,
                              const ArrayGeometry& geometry);

/// Build the sub-matrix-duplication plan (falls back to the im2col plan
/// when only one duplicate fits).
MappingPlan build_smd_plan(const ConvShape& shape,
                           const ArrayGeometry& geometry);

/// Convenience: build the plan for a window chosen by a mapper, using
/// channel tiling (VW semantics).  `pw` equal to the kernel window yields
/// the im2col plan.
MappingPlan build_plan_for_window(const ConvShape& shape,
                                  const ArrayGeometry& geometry,
                                  const ParallelWindow& pw);

/// Dispatch on a CycleCost produced by any of the cost functions:
/// SMD costs build SMD plans, element-granular costs build im2col plans,
/// channel-granular costs build windowed plans.  The rebuilt plan's cost
/// must equal `cost` (asserted).
MappingPlan build_plan_for_cost(const ConvShape& shape,
                                const ArrayGeometry& geometry,
                                const CycleCost& cost);

}  // namespace vwsdk
