#pragma once

/// @file vwsdk.h
/// Umbrella header: the whole public API of the vwsdk library.
///
/// Layering (each header is also usable on its own):
///   common/   foundation utilities
///   tensor/   tensors and reference convolution
///   nn/       layer/network descriptors and the model zoo
///   pim/      crossbar arrays, converters, noise, energy
///   mapping/  cost model (Eqs. 1-8), utilization (Eq. 9), mapping plans
///   core/     the mapping algorithms (im2col, SMD, SDK, VW-SDK)
///   sim/      functional execution, verification, pipelines
///   serve/    the resident ServiceApi and the NDJSON serving daemon

#include "common/cli.h"
#include "common/csv.h"
#include "common/error.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/math_util.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "common/types.h"

#include "tensor/conv_ref.h"
#include "tensor/exec_backend.h"
#include "tensor/gemm_backend.h"
#include "tensor/im2col_ref.h"
#include "tensor/pooling.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

#include "nn/layer.h"
#include "nn/model_zoo.h"
#include "nn/network.h"
#include "nn/network_builder.h"
#include "nn/network_spec.h"

#include "pim/adc.h"
#include "pim/array_geometry.h"
#include "pim/crossbar.h"
#include "pim/energy_model.h"
#include "pim/noise.h"

#include "mapping/activity.h"
#include "mapping/bit_slicing.h"
#include "mapping/conv_shape.h"
#include "mapping/cost_model.h"
#include "mapping/objective.h"
#include "mapping/layout_render.h"
#include "mapping/mapping_plan.h"
#include "mapping/parallel_window.h"
#include "mapping/plan_builder.h"
#include "mapping/plan_validate.h"
#include "mapping/utilization.h"

#include "core/bit_sliced_mapper.h"
#include "core/cli_support.h"
#include "core/exhaustive_mapper.h"
#include "core/grouped_conv.h"
#include "core/im2col_mapper.h"
#include "core/mapper_registry.h"
#include "core/mapping_cache.h"
#include "core/mapping_context.h"
#include "core/mapping_decision.h"
#include "core/network_optimizer.h"
#include "core/pruned_mapper.h"
#include "core/report.h"
#include "core/sdk_mapper.h"
#include "core/search_trace.h"
#include "core/serialize.h"
#include "core/smd_mapper.h"
#include "core/vwsdk_mapper.h"

#include "sim/chip_allocator.h"
#include "sim/des.h"
#include "sim/dispatch.h"
#include "sim/executor.h"
#include "sim/latency_model.h"
#include "sim/pipeline.h"
#include "sim/reuse.h"
#include "sim/schedule.h"
#include "sim/traffic.h"
#include "sim/verifier.h"

#include "serve/admission.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/service.h"
