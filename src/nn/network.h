#pragma once

/// @file network.h
/// A network = a named, ordered list of convolutional layer descriptors.
///
/// Matching the paper's accounting, each listed layer contributes once to
/// network totals: Table I lists each *distinct layer shape* of VGG-13 and
/// ResNet-18 and sums their cycles once (verified against the published
/// totals 114697 / 77102 / 7240 / 4294).

#include <string>
#include <vector>

#include "nn/layer.h"

namespace vwsdk {

/// An ordered collection of conv layers with validation.
class Network {
 public:
  Network() = default;
  explicit Network(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Append a validated layer.
  void add_layer(ConvLayerDesc layer);

  const std::vector<ConvLayerDesc>& layers() const { return layers_; }
  Count layer_count() const { return static_cast<Count>(layers_.size()); }
  bool empty() const { return layers_.empty(); }

  /// Layer by index (bounds-checked).
  const ConvLayerDesc& layer(Count index) const;

  /// Layer by name; throws NotFound.
  const ConvLayerDesc& layer_by_name(const std::string& layer_name) const;

  /// Sum of weight parameters across layers.
  Count total_weights() const;

  /// Multi-line human-readable listing.
  std::string to_string() const;

 private:
  std::string name_;
  std::vector<ConvLayerDesc> layers_;
};

}  // namespace vwsdk
