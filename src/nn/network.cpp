#include "nn/network.h"

#include "common/error.h"
#include "common/math_util.h"
#include "common/string_util.h"

namespace vwsdk {

void Network::add_layer(ConvLayerDesc layer) {
  layer.validate();
  for (const ConvLayerDesc& existing : layers_) {
    VWSDK_REQUIRE(existing.name != layer.name,
                  cat("duplicate layer name '", layer.name, "' in network '",
                      name_, "'"));
  }
  layers_.push_back(std::move(layer));
}

const ConvLayerDesc& Network::layer(Count index) const {
  VWSDK_REQUIRE(index >= 0 && index < layer_count(),
                cat("layer index ", index, " out of range for network '",
                    name_, "' with ", layer_count(), " layers"));
  return layers_[static_cast<std::size_t>(index)];
}

const ConvLayerDesc& Network::layer_by_name(
    const std::string& layer_name) const {
  for (const ConvLayerDesc& layer : layers_) {
    if (layer.name == layer_name) {
      return layer;
    }
  }
  throw NotFound(cat("no layer '", layer_name, "' in network '", name_, "'"));
}

Count Network::total_weights() const {
  Count total = 0;
  for (const ConvLayerDesc& layer : layers_) {
    total = checked_add(total, layer.weight_count());
  }
  return total;
}

std::string Network::to_string() const {
  std::string out = cat("network ", name_, " (", layer_count(), " layers)\n");
  for (const ConvLayerDesc& layer : layers_) {
    out += cat("  ", layer.to_string(), "\n");
  }
  return out;
}

}  // namespace vwsdk
