#include "nn/network_builder.h"

#include "common/error.h"
#include "common/string_util.h"

namespace vwsdk {

NetworkBuilder::NetworkBuilder(std::string name, Dim input_size,
                               Dim input_channels)
    : net_(std::move(name)), size_(input_size), channels_(input_channels) {
  VWSDK_REQUIRE(input_size > 0, "input size must be positive");
  VWSDK_REQUIRE(input_channels > 0, "input channels must be positive");
}

NetworkBuilder& NetworkBuilder::conv(Dim kernel, Dim out_channels,
                                     Padding padding, Dim stride) {
  VWSDK_REQUIRE(!built_, "NetworkBuilder already finalized");
  VWSDK_REQUIRE(kernel > 0 && out_channels > 0 && stride > 0,
                "conv: extents must be positive");
  VWSDK_REQUIRE(kernel <= size_,
                cat("conv: kernel ", kernel, " exceeds current feature map ",
                    size_));
  if (padding == Padding::kSame) {
    VWSDK_REQUIRE(kernel % 2 == 1, "kSame padding requires an odd kernel");
  }

  ++conv_index_;
  ConvLayerDesc layer =
      make_conv_layer(cat("conv", conv_index_), size_, kernel, channels_,
                      out_channels);
  const Dim pad = (padding == Padding::kSame) ? (kernel - 1) / 2 : 0;
  layer.config.stride_w = stride;
  layer.config.stride_h = stride;
  layer.config.pad_w = pad;
  layer.config.pad_h = pad;
  net_.add_layer(layer);

  size_ = conv_output_extent(size_, kernel, stride, pad);
  channels_ = out_channels;
  return *this;
}

NetworkBuilder& NetworkBuilder::max_pool(Dim window, Dim stride) {
  VWSDK_REQUIRE(!built_, "NetworkBuilder already finalized");
  VWSDK_REQUIRE(window > 0 && stride > 0, "max_pool: extents must be positive");
  VWSDK_REQUIRE(window <= size_,
                cat("max_pool: window ", window,
                    " exceeds current feature map ", size_));
  size_ = (size_ - window) / stride + 1;
  return *this;
}

Network NetworkBuilder::build() {
  VWSDK_REQUIRE(!built_, "NetworkBuilder already finalized");
  VWSDK_REQUIRE(!net_.empty(), "cannot build an empty network");
  built_ = true;
  return std::move(net_);
}

}  // namespace vwsdk
