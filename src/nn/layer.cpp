#include "nn/layer.h"

#include "common/error.h"
#include "common/math_util.h"
#include "common/string_util.h"

namespace vwsdk {

void ConvLayerDesc::validate() const {
  VWSDK_REQUIRE(ifm_w > 0 && ifm_h > 0,
                cat("layer ", name, ": IFM extents must be positive"));
  VWSDK_REQUIRE(kernel_w > 0 && kernel_h > 0,
                cat("layer ", name, ": kernel extents must be positive"));
  VWSDK_REQUIRE(in_channels > 0 && out_channels > 0,
                cat("layer ", name, ": channel counts must be positive"));
  VWSDK_REQUIRE(config.stride_w > 0 && config.stride_h > 0,
                cat("layer ", name, ": strides must be positive"));
  VWSDK_REQUIRE(config.pad_w >= 0 && config.pad_h >= 0,
                cat("layer ", name, ": padding must be non-negative"));
  VWSDK_REQUIRE(ifm_w + 2 * config.pad_w >= kernel_w &&
                    ifm_h + 2 * config.pad_h >= kernel_h,
                cat("layer ", name, ": kernel larger than padded input"));
  VWSDK_REQUIRE(groups >= 1, cat("layer ", name, ": groups must be >= 1"));
  VWSDK_REQUIRE(in_channels % groups == 0 && out_channels % groups == 0,
                cat("layer ", name, ": groups (", groups,
                    ") must divide IC (", in_channels, ") and OC (",
                    out_channels, ")"));
}

Dim ConvLayerDesc::group_in_channels() const { return in_channels / groups; }

Dim ConvLayerDesc::group_out_channels() const {
  return out_channels / groups;
}

Dim ConvLayerDesc::ofm_w() const {
  return conv_output_extent(ifm_w, kernel_w, config.stride_w, config.pad_w);
}

Dim ConvLayerDesc::ofm_h() const {
  return conv_output_extent(ifm_h, kernel_h, config.stride_h, config.pad_h);
}

Count ConvLayerDesc::num_windows() const {
  return checked_mul(ofm_w(), ofm_h());
}

Count ConvLayerDesc::weight_count() const {
  return checked_mul(checked_mul(kernel_w, kernel_h),
                     checked_mul(group_in_channels(), out_channels));
}

std::string ConvLayerDesc::to_string() const {
  std::string text = cat(name, ": ", ifm_w, "x", ifm_h, ", ", kernel_w, "x",
                         kernel_h, "x", in_channels, "x", out_channels);
  if (is_grouped()) {
    text += cat(" g", groups);
  }
  return text;
}

ConvLayerDesc make_conv_layer(std::string name, Dim image, Dim kernel,
                              Dim in_channels, Dim out_channels) {
  ConvLayerDesc layer;
  layer.name = std::move(name);
  layer.ifm_w = image;
  layer.ifm_h = image;
  layer.kernel_w = kernel;
  layer.kernel_h = kernel;
  layer.in_channels = in_channels;
  layer.out_channels = out_channels;
  layer.validate();
  return layer;
}

}  // namespace vwsdk
