#pragma once

/// @file network_spec.h
/// Text-format network descriptions, so arbitrary networks run through the
/// optimizer without recompiling (the `vwsdk` CLI's input format).
///
/// Two formats are supported -- JSON and CSV -- both normatively
/// documented with worked examples in docs/FORMATS.md:
///
/// ```json
/// {"name": "tiny", "array": "512x512",
///  "layers": [{"name": "conv1", "image": 32, "kernel": 3,
///              "ic": 3, "oc": 16}]}
/// ```
///
/// ```csv
/// # network: tiny
/// # array: 512x512
/// name,image,kernel,ic,oc
/// conv1,32,3,3,16
/// ```
///
/// Exporters producing these formats from a Network live in
/// core/serialize.h (to_spec_json / to_spec_csv); round-tripping any zoo
/// network through export -> parse -> optimize yields byte-identical
/// mapping decisions (pinned by tests/nn/test_network_spec.cpp).

#include <string>

#include "nn/network.h"

namespace vwsdk {

/// A parsed network description: the network plus an optional array
/// geometry hint.  The geometry stays a raw "RxC" string here (parse it
/// with parse_geometry from pim/array_geometry.h) so the nn module does
/// not depend on pim.
struct NetworkSpec {
  Network network;
  std::string array;  ///< "RxC" geometry hint; empty when unspecified

  /// True if the spec carried an "array" entry.
  bool has_array() const { return !array.empty(); }
};

/// Parse the JSON spec format; throws InvalidArgument (with position
/// context) on syntax errors, unknown keys, or invalid layer dimensions.
NetworkSpec parse_network_spec_json(const std::string& text);

/// Parse the CSV spec format; throws InvalidArgument on unknown columns,
/// missing required columns, or invalid layer dimensions.
NetworkSpec parse_network_spec_csv(const std::string& text);

/// Parse either format, sniffing from the first non-whitespace character
/// ('{' selects JSON, anything else CSV).
NetworkSpec parse_network_spec(const std::string& text);

/// Read `path` and parse it; the extension picks the format (".json" /
/// ".csv", case-insensitive), otherwise the content is sniffed.  Throws
/// NotFound if the file cannot be read.
NetworkSpec load_network_spec(const std::string& path);

/// Resolve `name_or_path`: a model-zoo name (see model_by_name) wins, then
/// a spec file path.  Zoo networks resolve with an empty array hint.
/// Throws NotFound naming both failed interpretations.
NetworkSpec resolve_network_spec(const std::string& name_or_path);

}  // namespace vwsdk
