#pragma once

/// @file network_builder.h
/// Fluent construction of conv networks with automatic feature-map size
/// propagation (an extension for users defining their own models; the
/// paper's models are hard-coded in model_zoo.h).

#include <string>

#include "nn/network.h"

namespace vwsdk {

/// Padding convention for NetworkBuilder::conv.
enum class Padding {
  kValid,  ///< no padding; output shrinks by kernel-1
  kSame    ///< zero padding preserving the spatial size (odd kernels only)
};

/// Builds a Network layer by layer, tracking the current feature-map
/// extent and channel count.
///
/// ```
/// Network net = NetworkBuilder("tiny", 32, 3)
///                   .conv(3, 16, Padding::kSame)
///                   .max_pool(2, 2)
///                   .conv(3, 32, Padding::kSame)
///                   .build();
/// ```
class NetworkBuilder {
 public:
  /// Start from a square input of `input_size` x `input_size` with
  /// `input_channels` channels.
  NetworkBuilder(std::string name, Dim input_size, Dim input_channels);

  /// Append a square-kernel convolution.  The layer descriptor records the
  /// *current* IFM extent; `padding`/`stride` determine the next layer's
  /// extent.  Returns *this for chaining.
  NetworkBuilder& conv(Dim kernel, Dim out_channels,
                       Padding padding = Padding::kValid, Dim stride = 1);

  /// Append a pooling stage (affects the tracked extent only; pooling maps
  /// to peripheral digital logic, not to the crossbar).
  NetworkBuilder& max_pool(Dim window, Dim stride);

  /// Current tracked feature-map extent / channels (for inspection).
  Dim current_size() const { return size_; }
  Dim current_channels() const { return channels_; }

  /// Finalize.  The builder may not be reused afterwards.
  Network build();

 private:
  Network net_;
  Dim size_;
  Dim channels_;
  int conv_index_ = 0;
  bool built_ = false;
};

}  // namespace vwsdk
