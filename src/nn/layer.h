#pragma once

/// @file layer.h
/// Descriptor of a convolutional layer as the mapping optimizer sees it.

#include <string>

#include "common/types.h"
#include "tensor/conv_ref.h"

namespace vwsdk {

/// A convolutional layer: input feature-map extent, kernel extent, channel
/// counts, and (extensions) stride/padding and channel groups.  This is a
/// pure *descriptor* -- weights live in tensors, placement lives in
/// mapping plans.
struct ConvLayerDesc {
  std::string name;   ///< human-readable label ("conv3_1", ...)
  Dim ifm_w = 0;      ///< input feature-map width  (I_w)
  Dim ifm_h = 0;      ///< input feature-map height (I_h)
  Dim kernel_w = 0;   ///< kernel width  (K_w)
  Dim kernel_h = 0;   ///< kernel height (K_h)
  Dim in_channels = 0;   ///< IC
  Dim out_channels = 0;  ///< OC
  ConvConfig config{};   ///< stride / padding (paper: stride 1, pad 0)
  /// Channel groups G (extension; see core/grouped_conv.h).  Must divide
  /// both IC and OC.  G = IC = OC is a depthwise convolution; the paper's
  /// layers are all dense (G = 1).
  Dim groups = 1;

  /// Validate all extents; throws InvalidArgument with the layer name in
  /// the message on failure.
  void validate() const;

  /// True if the layer is grouped (G > 1).
  bool is_grouped() const { return groups > 1; }

  /// Channels of one group's independent sub-convolution (IC/G, OC/G).
  Dim group_in_channels() const;
  Dim group_out_channels() const;

  /// Output extents under `config`.
  Dim ofm_w() const;
  Dim ofm_h() const;

  /// Number of kernel-sized windows in the IFM = number of OFM positions
  /// per output channel.
  Count num_windows() const;

  /// Total weight parameters: K_w * K_h * (IC/G) * OC.
  Count weight_count() const;

  /// Compact description, e.g. "conv1: 224x224, 3x3x3x64".
  std::string to_string() const;

  bool operator==(const ConvLayerDesc&) const = default;
};

/// Convenience factory for the square-image, square-kernel, stride-1,
/// pad-0 layers the paper evaluates.
ConvLayerDesc make_conv_layer(std::string name, Dim image, Dim kernel,
                              Dim in_channels, Dim out_channels);

}  // namespace vwsdk
