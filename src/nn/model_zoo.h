#pragma once

/// @file model_zoo.h
/// Predefined networks.
///
/// `vgg13_paper()` and `resnet18_paper()` encode *exactly* the layer
/// dimensions of Table I of the VW-SDK paper (including its conventions:
/// stride/padding ignored, each distinct layer shape listed once, ResNet-18
/// conv1 given as a 112x112 input with a 7x7 kernel).  These two drive all
/// paper-reproduction benchmarks.
///
/// The additional models (VGG-16, AlexNet, LeNet-5, MobileNet-ish) are
/// extensions for wider evaluation; their dimensions follow the original
/// publications with the same "distinct conv shapes" convention.

#include <string>
#include <vector>

#include "nn/network.h"

namespace vwsdk {

/// VGG-13, the 10 conv-layer shapes of Table I.
Network vgg13_paper();

/// ResNet-18, the 5 conv-layer shapes of Table I.
Network resnet18_paper();

/// VGG-16 conv shapes (extension; Simonyan & Zisserman 2014, config D).
Network vgg16();

/// AlexNet conv shapes (extension; Krizhevsky et al. 2012, single tower).
Network alexnet();

/// LeNet-5 conv shapes (extension; LeCun et al. 1998).
Network lenet5();

/// A small synthetic network whose layers are deliberately sized to
/// exercise every cost-model regime on a 512x512 array: row-limited,
/// column-limited, tiny-channel, im2col-fallback.  Used by tests/examples.
Network stress_mix();

/// Look up any zoo model by case-insensitive name
/// ("vgg13", "resnet18", "vgg16", "alexnet", "lenet5", "stress").
/// Throws NotFound for unknown names.
Network model_by_name(const std::string& name);

/// Names accepted by model_by_name().
std::vector<std::string> model_names();

}  // namespace vwsdk
