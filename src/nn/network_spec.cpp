#include "nn/network_spec.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>
#include <tuple>
#include <utility>

#include "common/csv.h"
#include "common/error.h"
#include "common/json.h"
#include "common/string_util.h"
#include "nn/model_zoo.h"

namespace vwsdk {

namespace {

/// A positive dimension from a JSON integer (range-checked into Dim).
Dim to_dim(long long value, const std::string& what) {
  VWSDK_REQUIRE(value > 0 && value <= std::numeric_limits<Dim>::max(),
                cat(what, ": dimension ", value, " out of range"));
  return static_cast<Dim>(value);
}

/// A non-negative dimension (padding may be zero).
Dim to_dim_or_zero(long long value, const std::string& what) {
  VWSDK_REQUIRE(value >= 0 && value <= std::numeric_limits<Dim>::max(),
                cat(what, ": dimension ", value, " out of range"));
  return static_cast<Dim>(value);
}

/// A (w, h) extent from a JSON scalar `N` or pair `[w, h]`.
std::pair<Dim, Dim> json_extent(const JsonValue& value,
                                const std::string& what, bool allow_zero) {
  const auto convert = [&](long long raw) {
    return allow_zero ? to_dim_or_zero(raw, what) : to_dim(raw, what);
  };
  if (value.is_array()) {
    VWSDK_REQUIRE(value.items().size() == 2,
                  cat(what, ": extent pair must have exactly 2 entries"));
    return {convert(value.items()[0].as_int()),
            convert(value.items()[1].as_int())};
  }
  const Dim extent = convert(value.as_int());
  return {extent, extent};
}

/// A (w, h) extent from a CSV cell "N" or "WxH" (case-insensitive 'x').
std::pair<Dim, Dim> csv_extent(const std::string& cell,
                               const std::string& what, bool allow_zero) {
  const auto convert = [&](const std::string& token) {
    const long long raw = parse_count(trim(token));
    return allow_zero ? to_dim_or_zero(raw, what) : to_dim(raw, what);
  };
  const std::vector<std::string> parts = split(to_lower(trim(cell)), 'x');
  if (parts.size() == 2) {
    return {convert(parts[0]), convert(parts[1])};
  }
  VWSDK_REQUIRE(parts.size() == 1,
                cat(what, ": expected \"N\" or \"WxH\", got \"", cell, "\""));
  const Dim extent = convert(parts[0]);
  return {extent, extent};
}

ConvLayerDesc layer_from_json(const JsonValue& entry, std::size_t index) {
  const std::string context = cat("spec layer ", index + 1);
  VWSDK_REQUIRE(entry.is_object(), cat(context, ": expected an object"));

  ConvLayerDesc layer;
  layer.name = cat("conv", index + 1);
  for (const JsonValue::Member& member : entry.members()) {
    const std::string& key = member.first;
    const JsonValue& value = member.second;
    if (key == "name") {
      layer.name = value.as_string();
    } else if (key == "image") {
      std::tie(layer.ifm_w, layer.ifm_h) =
          json_extent(value, cat(context, ".image"), false);
    } else if (key == "kernel") {
      std::tie(layer.kernel_w, layer.kernel_h) =
          json_extent(value, cat(context, ".kernel"), false);
    } else if (key == "ic") {
      layer.in_channels = to_dim(value.as_int(), cat(context, ".ic"));
    } else if (key == "oc") {
      layer.out_channels = to_dim(value.as_int(), cat(context, ".oc"));
    } else if (key == "stride") {
      std::tie(layer.config.stride_w, layer.config.stride_h) =
          json_extent(value, cat(context, ".stride"), false);
    } else if (key == "pad") {
      std::tie(layer.config.pad_w, layer.config.pad_h) =
          json_extent(value, cat(context, ".pad"), true);
    } else if (key == "groups") {
      layer.groups = to_dim(value.as_int(), cat(context, ".groups"));
    } else {
      throw InvalidArgument(cat(context, ": unknown key \"", key, "\""));
    }
  }
  for (const char* required : {"image", "kernel", "ic", "oc"}) {
    VWSDK_REQUIRE(entry.has(required),
                  cat(context, ": missing required key \"", required, "\""));
  }
  layer.validate();
  return layer;
}

}  // namespace

NetworkSpec parse_network_spec_json(const std::string& text) {
  const JsonValue document = JsonValue::parse(text);
  VWSDK_REQUIRE(document.is_object(),
                "network spec: top-level JSON value must be an object");

  NetworkSpec spec;
  std::string name = "network";
  const JsonValue* layers = nullptr;
  for (const JsonValue::Member& member : document.members()) {
    const std::string& key = member.first;
    if (key == "name") {
      name = member.second.as_string();
    } else if (key == "array") {
      spec.array = member.second.as_string();
    } else if (key == "layers") {
      layers = &member.second;
    } else {
      throw InvalidArgument(
          cat("network spec: unknown top-level key \"", key, "\""));
    }
  }
  VWSDK_REQUIRE(layers != nullptr,
                "network spec: missing required key \"layers\"");
  VWSDK_REQUIRE(layers->is_array() && !layers->items().empty(),
                "network spec: \"layers\" must be a non-empty array");

  spec.network = Network(name);
  for (std::size_t i = 0; i < layers->items().size(); ++i) {
    spec.network.add_layer(layer_from_json(layers->items()[i], i));
  }
  return spec;
}

NetworkSpec parse_network_spec_csv(const std::string& text) {
  NetworkSpec spec;
  std::string name = "network";
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  std::istringstream is(text);
  std::string raw_line;
  while (std::getline(is, raw_line)) {
    const std::string line = trim(raw_line);
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      // Comment; "# network: NAME" and "# array: RxC" are directives.
      const std::string body = trim(line.substr(1));
      if (const auto colon = body.find(':'); colon != std::string::npos) {
        const std::string key = to_lower(trim(body.substr(0, colon)));
        const std::string value = trim(body.substr(colon + 1));
        if (key == "network") {
          name = value;
        } else if (key == "array") {
          spec.array = value;
        }
      }
      continue;
    }
    if (header.empty()) {
      for (const std::string& column : csv_parse_line(line)) {
        const std::string name_lower = to_lower(trim(column));
        VWSDK_REQUIRE(std::find(header.begin(), header.end(),
                                name_lower) == header.end(),
                      cat("network spec CSV: duplicate column \"",
                          name_lower, "\""));
        header.push_back(name_lower);
      }
    } else {
      rows.push_back(csv_parse_line(line));
    }
  }

  VWSDK_REQUIRE(!header.empty(), "network spec CSV: missing header row");
  for (const std::string& column : header) {
    VWSDK_REQUIRE(column == "name" || column == "image" ||
                      column == "kernel" || column == "ic" ||
                      column == "oc" || column == "stride" ||
                      column == "pad" || column == "groups",
                  cat("network spec CSV: unknown column \"", column, "\""));
  }
  for (const char* required : {"image", "kernel", "ic", "oc"}) {
    VWSDK_REQUIRE(
        std::find(header.begin(), header.end(), required) != header.end(),
        cat("network spec CSV: missing required column \"", required, "\""));
  }
  VWSDK_REQUIRE(!rows.empty(), "network spec CSV: no layer rows");

  spec.network = Network(name);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const std::vector<std::string>& row = rows[r];
    const std::string context = cat("spec layer ", r + 1);
    VWSDK_REQUIRE(row.size() == header.size(),
                  cat(context, ": expected ", header.size(), " cells, got ",
                      row.size()));
    ConvLayerDesc layer;
    layer.name = cat("conv", r + 1);
    for (std::size_t c = 0; c < header.size(); ++c) {
      const std::string& column = header[c];
      const std::string cell = trim(row[c]);
      if (column == "name") {
        if (!cell.empty()) {
          layer.name = cell;
        }
      } else if (column == "image") {
        std::tie(layer.ifm_w, layer.ifm_h) =
            csv_extent(cell, cat(context, ".image"), false);
      } else if (column == "kernel") {
        std::tie(layer.kernel_w, layer.kernel_h) =
            csv_extent(cell, cat(context, ".kernel"), false);
      } else if (column == "ic") {
        layer.in_channels = to_dim(parse_count(cell), cat(context, ".ic"));
      } else if (column == "oc") {
        layer.out_channels = to_dim(parse_count(cell), cat(context, ".oc"));
      } else if (column == "stride") {
        std::tie(layer.config.stride_w, layer.config.stride_h) =
            csv_extent(cell, cat(context, ".stride"), false);
      } else if (column == "pad") {
        std::tie(layer.config.pad_w, layer.config.pad_h) =
            csv_extent(cell, cat(context, ".pad"), true);
      } else if (column == "groups") {
        layer.groups = to_dim(parse_count(cell), cat(context, ".groups"));
      }
    }
    layer.validate();
    spec.network.add_layer(std::move(layer));
  }
  return spec;
}

NetworkSpec parse_network_spec(const std::string& text) {
  const std::string body = trim(text);
  VWSDK_REQUIRE(!body.empty(), "network spec: empty input");
  if (body.front() == '{') {
    return parse_network_spec_json(text);
  }
  return parse_network_spec_csv(text);
}

NetworkSpec load_network_spec(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw NotFound(cat("cannot read network spec file \"", path, "\""));
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const std::string text = buffer.str();

  const std::string lower = to_lower(path);
  try {
    if (lower.ends_with(".json")) {
      return parse_network_spec_json(text);
    }
    if (lower.ends_with(".csv")) {
      return parse_network_spec_csv(text);
    }
    return parse_network_spec(text);
  } catch (const InvalidArgument& e) {
    throw InvalidArgument(cat(path, ": ", e.what()));
  }
}

NetworkSpec resolve_network_spec(const std::string& name_or_path) {
  try {
    NetworkSpec spec;
    spec.network = model_by_name(name_or_path);
    return spec;
  } catch (const NotFound&) {
    // Not a zoo name; fall through to the file interpretation.
  }
  try {
    return load_network_spec(name_or_path);
  } catch (const NotFound&) {
    throw NotFound(
        cat("\"", name_or_path, "\" is neither a model-zoo name (",
            join(model_names(), ", "), ") nor a readable spec file"));
  }
}

}  // namespace vwsdk
