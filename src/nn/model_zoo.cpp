#include "nn/model_zoo.h"

#include "common/error.h"
#include "common/string_util.h"

namespace vwsdk {

Network vgg13_paper() {
  // Table I of the paper, rows 1-10: (image, kernel, IC, OC).
  Network net("VGG-13");
  net.add_layer(make_conv_layer("conv1", 224, 3, 3, 64));
  net.add_layer(make_conv_layer("conv2", 224, 3, 64, 64));
  net.add_layer(make_conv_layer("conv3", 112, 3, 64, 128));
  net.add_layer(make_conv_layer("conv4", 112, 3, 128, 128));
  net.add_layer(make_conv_layer("conv5", 56, 3, 128, 256));
  net.add_layer(make_conv_layer("conv6", 56, 3, 256, 256));
  net.add_layer(make_conv_layer("conv7", 28, 3, 256, 512));
  net.add_layer(make_conv_layer("conv8", 28, 3, 512, 512));
  net.add_layer(make_conv_layer("conv9", 14, 3, 512, 512));
  net.add_layer(make_conv_layer("conv10", 14, 3, 512, 512));
  return net;
}

Network resnet18_paper() {
  // Table I of the paper, ResNet-18 rows 1-5.  The paper lists conv1 with
  // a 112x112 IFM and a 7x7 kernel and ignores stride; we reproduce its
  // convention verbatim (see DESIGN.md §3).
  Network net("ResNet-18");
  net.add_layer(make_conv_layer("conv1", 112, 7, 3, 64));
  net.add_layer(make_conv_layer("conv2", 56, 3, 64, 64));
  net.add_layer(make_conv_layer("conv3", 28, 3, 128, 128));
  net.add_layer(make_conv_layer("conv4", 14, 3, 256, 256));
  net.add_layer(make_conv_layer("conv5", 7, 3, 512, 512));
  return net;
}

Network vgg16() {
  // Distinct conv shapes of VGG-16 (config D), same convention as Table I.
  Network net("VGG-16");
  net.add_layer(make_conv_layer("conv1", 224, 3, 3, 64));
  net.add_layer(make_conv_layer("conv2", 224, 3, 64, 64));
  net.add_layer(make_conv_layer("conv3", 112, 3, 64, 128));
  net.add_layer(make_conv_layer("conv4", 112, 3, 128, 128));
  net.add_layer(make_conv_layer("conv5", 56, 3, 128, 256));
  net.add_layer(make_conv_layer("conv6", 56, 3, 256, 256));
  net.add_layer(make_conv_layer("conv7", 56, 3, 256, 256));
  net.add_layer(make_conv_layer("conv8", 28, 3, 256, 512));
  net.add_layer(make_conv_layer("conv9", 28, 3, 512, 512));
  net.add_layer(make_conv_layer("conv10", 28, 3, 512, 512));
  net.add_layer(make_conv_layer("conv11", 14, 3, 512, 512));
  net.add_layer(make_conv_layer("conv12", 14, 3, 512, 512));
  net.add_layer(make_conv_layer("conv13", 14, 3, 512, 512));
  return net;
}

Network alexnet() {
  Network net("AlexNet");
  net.add_layer(make_conv_layer("conv1", 227, 11, 3, 96));
  net.add_layer(make_conv_layer("conv2", 27, 5, 96, 256));
  net.add_layer(make_conv_layer("conv3", 13, 3, 256, 384));
  net.add_layer(make_conv_layer("conv4", 13, 3, 384, 384));
  net.add_layer(make_conv_layer("conv5", 13, 3, 384, 256));
  return net;
}

Network lenet5() {
  Network net("LeNet-5");
  net.add_layer(make_conv_layer("conv1", 32, 5, 1, 6));
  net.add_layer(make_conv_layer("conv2", 14, 5, 6, 16));
  return net;
}

Network stress_mix() {
  Network net("stress-mix");
  // Tiny channels, huge image: window search space is wide open.
  net.add_layer(make_conv_layer("wide_open", 64, 3, 2, 8));
  // Row-limited: IC so large even im2col needs many AR cycles.
  net.add_layer(make_conv_layer("row_limited", 14, 3, 1024, 64));
  // Column-limited: OC exceeds typical column counts.
  net.add_layer(make_conv_layer("col_limited", 14, 3, 16, 2048));
  // im2col-fallback regime: big channels, small image.
  net.add_layer(make_conv_layer("fallback", 7, 3, 512, 512));
  // Non-square kernel (extension beyond the paper).
  ConvLayerDesc rect;
  rect.name = "rect_kernel";
  rect.ifm_w = 32;
  rect.ifm_h = 24;
  rect.kernel_w = 5;
  rect.kernel_h = 3;
  rect.in_channels = 12;
  rect.out_channels = 24;
  net.add_layer(rect);
  return net;
}

Network model_by_name(const std::string& name) {
  const std::string key = to_lower(trim(name));
  if (key == "vgg13" || key == "vgg-13") {
    return vgg13_paper();
  }
  if (key == "resnet18" || key == "resnet-18") {
    return resnet18_paper();
  }
  if (key == "vgg16" || key == "vgg-16") {
    return vgg16();
  }
  if (key == "alexnet") {
    return alexnet();
  }
  if (key == "lenet5" || key == "lenet-5") {
    return lenet5();
  }
  if (key == "stress" || key == "stress-mix") {
    return stress_mix();
  }
  throw NotFound(cat("unknown model '", name,
                     "'; available: ", join(model_names(), ", ")));
}

std::vector<std::string> model_names() {
  return {"vgg13", "resnet18", "vgg16", "alexnet", "lenet5", "stress"};
}

}  // namespace vwsdk
