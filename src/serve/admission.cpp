#include "serve/admission.h"

#include <utility>

#include "common/error.h"
#include "common/string_util.h"

namespace vwsdk {

AdmissionQueue::AdmissionQueue(int max_inflight, int max_queue)
    : max_inflight_(max_inflight), max_queue_(max_queue) {
  VWSDK_REQUIRE(max_inflight >= 1,
                cat("max_inflight must be >= 1 (got ", max_inflight, ")"));
  VWSDK_REQUIRE(max_queue >= 0,
                cat("max_queue must be >= 0 (got ", max_queue, ")"));
  workers_.reserve(static_cast<std::size_t>(max_inflight));
  for (int i = 0; i < max_inflight; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

AdmissionQueue::~AdmissionQueue() { drain(); }

bool AdmissionQueue::try_submit(std::function<void()> task) {
  {
    const MutexLock lock(mutex_);
    const int outstanding = static_cast<int>(queue_.size()) + busy_;
    if (draining_ || outstanding >= max_inflight_ + max_queue_) {
      ++rejected_;
      return false;
    }
    ++accepted_;
    queue_.push(std::move(task));
  }
  ready_.notify_one();
  return true;
}

void AdmissionQueue::drain() {
  {
    const MutexLock lock(mutex_);
    draining_ = true;
    // Explicit predicate loop (not a wait-with-lambda) so the guarded
    // reads stay visible to the thread-safety analysis.
    while (!queue_.empty() || busy_ != 0) {
      idle_.wait(mutex_);
    }
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
}

AdmissionStats AdmissionQueue::stats() const {
  const MutexLock lock(mutex_);
  AdmissionStats stats;
  stats.busy = busy_;
  stats.queued = static_cast<int>(queue_.size());
  stats.accepted = accepted_;
  stats.rejected = rejected_;
  return stats;
}

void AdmissionQueue::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      const MutexLock lock(mutex_);
      while (!draining_ && queue_.empty()) {
        ready_.wait(mutex_);
      }
      if (queue_.empty()) {
        return;  // draining and nothing left to run
      }
      task = std::move(queue_.front());
      queue_.pop();
      ++busy_;
    }
    task();  // task() catches its own exceptions (server.cpp); a throw
             // here would terminate, which the dispatch wrapper prevents
    {
      const MutexLock lock(mutex_);
      --busy_;
    }
    idle_.notify_all();
  }
}

}  // namespace vwsdk
