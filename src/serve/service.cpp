#include "serve/service.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/string_util.h"
#include "mapping/objective.h"
#include "nn/network_spec.h"
#include "pim/array_geometry.h"

namespace vwsdk {

namespace {

constexpr const char* kDefaultArray = "512x512";

/// The geometry a query runs on: its own `array`, then the spec's hint,
/// then the library default -- the same resolution order as the CLI's
/// --array flag (docs/CLI.md).
ArrayGeometry resolve_query_geometry(const std::string& requested,
                                     const NetworkSpec& spec) {
  std::string text = requested;
  if (text.empty()) {
    text = spec.has_array() ? spec.array : kDefaultArray;
  }
  return parse_geometry(text);
}

NetworkSpec resolve_query_net(const std::string& net) {
  VWSDK_REQUIRE(!net.empty(),
                "query names no net (model-zoo name or spec file)");
  return resolve_network_spec(net);
}

}  // namespace

std::string cache_stats_fragment(const ServiceStats& stats) {
  return cat("cache ", stats.cache_hits, " hit(s) / ", stats.cache_misses,
             " miss(es), ", stats.cache_entries, " distinct search(es)");
}

std::string stats_line(const ServiceStats& stats) {
  return cat("stats: ", cache_stats_fragment(stats), "; ", stats.threads,
             " thread(s)");
}

ServiceApi::ServiceApi(int threads)
    : pool_(ThreadPool::resolve_thread_count(threads)) {}

NetworkMappingResult ServiceApi::map(const MapQuery& query) {
  const NetworkSpec spec = resolve_query_net(query.net);
  const ArrayGeometry geometry = resolve_query_geometry(query.array, spec);
  const auto mapper = make_mapper(query.mapper);
  OptimizerOptions options;
  options.pool = &pool_;
  options.cache = &cache_;
  options.objective = &objective_by_name(query.objective);
  return optimize_network(*mapper, spec.network, geometry, options);
}

NetworkComparison ServiceApi::compare(const CompareQuery& query) {
  const NetworkSpec spec = resolve_query_net(query.net);
  const ArrayGeometry geometry = resolve_query_geometry(query.array, spec);
  const MapperRegistry& registry = MapperRegistry::instance();
  std::vector<std::string> names;
  names.reserve(query.mappers.size());
  for (const std::string& requested : query.mappers) {
    // Canonicalize through the registry (validates now, fails with the
    // bad name) so an alias duplicate like "vw-sdk,vwsdk" is caught.
    const std::string canonical = registry.info(requested).name;
    VWSDK_REQUIRE(std::find(names.begin(), names.end(), canonical) ==
                      names.end(),
                  cat("mappers list \"", canonical, "\" twice"));
    names.push_back(canonical);
  }
  VWSDK_REQUIRE(!names.empty(), "query names no mapper");
  OptimizerOptions options;
  options.pool = &pool_;
  options.cache = &cache_;
  options.objective = &objective_by_name(query.objective);
  return compare_mappers(names, spec.network, geometry, options);
}

ChipResult ServiceApi::chip(const ChipQuery& query) {
  VWSDK_REQUIRE(query.arrays_per_chip >= 1,
                cat("chip needs arrays >= 1 (got ", query.arrays_per_chip,
                    ")"));
  VWSDK_REQUIRE(query.max_chips >= 0,
                cat("chips must be >= 0 (got ", query.max_chips, ")"));
  // A billion streamed inferences is far beyond any plausible run and
  // keeps (batch-1) * interval clear of Cycles overflow.
  VWSDK_REQUIRE(query.batch >= 1 && query.batch <= 1000000000,
                cat("batch must be in [1, 1000000000] (got ", query.batch,
                    ")"));
  MapQuery map_query;
  map_query.net = query.net;
  map_query.mapper = query.mapper;
  map_query.array = query.array;
  map_query.objective = query.objective;
  ChipResult result;
  result.mapping = map(map_query);

  ChipPlanOptions plan_options;
  plan_options.arrays_per_chip = query.arrays_per_chip;
  plan_options.max_chips = query.max_chips;
  plan_options.objective = &objective_by_name(query.objective);
  result.plan = plan_chips(result.mapping, plan_options);
  if (!result.plan.feasible) {
    // An explicit planning failure, not a zeroed report: the CLI turns
    // this into its exit-1 contract, serve into a `runtime` error
    // response (JSON consumers wanting the infeasible plan object call
    // the library's plan_chips + to_json directly).
    throw Error(result.plan.infeasible_reason);
  }
  return result;
}

TrafficResult ServiceApi::traffic(const TrafficQuery& query) {
  VWSDK_REQUIRE(query.arrays_per_chip >= 1,
                cat("traffic needs arrays >= 1 (got ", query.arrays_per_chip,
                    ")"));
  VWSDK_REQUIRE(query.max_chips >= 0,
                cat("chips must be >= 0 (got ", query.max_chips, ")"));
  VWSDK_REQUIRE(query.replicas >= 1 && query.replicas <= 100000,
                cat("replicas must be in [1, 100000] (got ", query.replicas,
                    ")"));
  VWSDK_REQUIRE(std::isfinite(query.rate) && query.rate >= 0.0 &&
                    query.rate <= 1.0e9,
                "rate must be in [0, 1e9] requests per 1e6 cycles");
  VWSDK_REQUIRE(query.duration >= 1 && query.duration <= 1000000000000,
                cat("duration must be in [1, 1e12] cycles (got ",
                    query.duration, ")"));
  VWSDK_REQUIRE(query.batch_window >= 0 &&
                    query.batch_window <= 1000000000000,
                cat("window must be in [0, 1e12] cycles (got ",
                    query.batch_window, ")"));
  VWSDK_REQUIRE(query.max_batch >= 1 && query.max_batch <= 1000000000,
                cat("max_batch must be in [1, 1000000000] (got ",
                    query.max_batch, ")"));
  VWSDK_REQUIRE(query.max_queue >= 0 && query.max_queue <= 1000000000,
                cat("max_queue must be in [0, 1000000000] (got ",
                    query.max_queue, ")"));
  VWSDK_REQUIRE(query.slo_p99 >= 0 && query.slo_p99 <= 1000000000000,
                cat("slo_p99 must be in [0, 1e12] cycles (got ",
                    query.slo_p99, ")"));
  if (query.trace.empty()) {
    VWSDK_REQUIRE(query.rate > 0.0,
                  "traffic needs an arrival source: a rate > 0 or a trace");
  } else {
    VWSDK_REQUIRE(query.rate == 0.0,
                  "rate and trace are exclusive arrival sources; pick one");
    VWSDK_REQUIRE(query.slo_p99 == 0,
                  "slo_p99 capacity planning needs a rate, not a trace");
  }

  // One mapped + chip-planned pipeline per comma-separated network, all
  // through the shared cache; any infeasible plan throws like chip().
  std::vector<std::string> requested;
  for (const std::string& token : split(query.net, ',')) {
    const std::string name = trim(token);
    VWSDK_REQUIRE(!name.empty(),
                  "net lists an empty name (check the comma-separated list)");
    requested.push_back(name);
  }
  VWSDK_REQUIRE(!requested.empty(),
                "query names no net (model-zoo name or spec file)");
  VWSDK_REQUIRE(query.slo_p99 == 0 || requested.size() == 1,
                "slo_p99 capacity planning takes exactly one network");

  TrafficResult result;
  for (const std::string& name : requested) {
    ChipQuery chip_query;
    chip_query.net = name;
    chip_query.mapper = query.mapper;
    chip_query.array = query.array;
    chip_query.objective = query.objective;
    chip_query.arrays_per_chip = query.arrays_per_chip;
    chip_query.max_chips = query.max_chips;
    result.plans.push_back(chip(chip_query).plan);
  }

  TrafficOptions options;
  options.seed = query.seed;
  options.rate = query.rate;
  options.duration = query.duration;
  options.replicas = query.replicas;
  options.batch_window = query.batch_window;
  options.max_batch = query.max_batch;
  options.max_queue = query.max_queue;

  if (query.slo_p99 > 0) {
    result.capacity_mode = true;
    result.capacity = plan_capacity(result.plans.front(), query.slo_p99,
                                    options);
    result.report = result.capacity.report;
    return result;
  }
  if (!query.trace.empty()) {
    ArrivalTrace trace = load_arrival_trace(query.trace);
    // Accept either the name the query used (zoo alias or spec path) or
    // the plan's own display name in the trace's `net` column.
    for (Arrival& arrival : trace.arrivals) {
      for (std::size_t n = 0; n < requested.size(); ++n) {
        if (arrival.net == requested[n]) {
          arrival.net = result.plans[n].network_name;
          break;
        }
      }
    }
    result.report = simulate_trace(result.plans, trace, options);
    return result;
  }
  result.report = simulate_traffic(result.plans, options);
  return result;
}

NetworkVerifyResult ServiceApi::verify(const VerifyQuery& query) {
  const NetworkSpec spec = resolve_query_net(query.net);
  const ArrayGeometry geometry = resolve_query_geometry(query.array, spec);
  const auto mapper = make_mapper(query.mapper);
  ExecutionOptions options;
  // Resolve now: an unknown backend is a usage error before any layer
  // runs (throws NotFound listing the registered names).
  options.ref_backend = resolve_ref_backend(query.ref_backend);
  return verify_network(spec.network, *mapper, geometry, query.seed,
                        options);
}

const MapperRegistry& ServiceApi::mappers() const {
  return MapperRegistry::instance();
}

ServiceStats ServiceApi::stats() const {
  // One MappingCache::stats() call: hits/misses/entries come from a
  // single lock acquisition, so the snapshot is internally consistent
  // even while requests are landing (a separate size() call could see
  // an entry the counter read did not).
  const MappingCacheStats cache_stats = cache_.stats();
  ServiceStats stats;
  stats.cache_hits = cache_stats.hits;
  stats.cache_misses = cache_stats.misses;
  stats.cache_entries = cache_stats.entries;
  stats.threads = pool_.size();
  return stats;
}

}  // namespace vwsdk
