#pragma once

/// @file protocol.h
/// The wire protocol of `vwsdk serve`: newline-delimited JSON, one
/// request per line in, one response per line out (docs/SERVE.md).
///
/// Requests are flat, versioned objects:
///   {"v":1,"id":"42","op":"map","net":"vgg16","array":"512x512"}
/// Responses echo the id and embed the one-shot CLI's `--format json`
/// payload verbatim, so a serve result is byte-identical to the
/// equivalent one-shot invocation:
///   {"v":1,"id":"42","op":"map","ok":true,"result":{...}}
///   {"v":1,"id":"42","ok":false,"error":{"code":"not_found",
///    "message":"..."}}
///
/// Parsing is total: any malformed line becomes a ProtocolError -- an
/// error *response*, never process death.  The parser echoes the
/// request id whenever it can be recovered so clients can correlate
/// failures; when it cannot (unparseable JSON), the response carries
/// `"id":null`.

#include <cstdint>
#include <string>
#include <string_view>

#include "common/error.h"
#include "serve/service.h"

namespace vwsdk {

/// Wire protocol version; requests must send `"v":1`.  Bumped only on
/// incompatible envelope changes (new ops and new optional fields are
/// compatible).
constexpr int kProtocolVersion = 1;

/// Hard cap on one request line.  A line that reaches this many bytes
/// without a newline is answered with `too_large` and discarded.
constexpr std::size_t kMaxRequestBytes = 1 << 20;

/// Hard cap on a request id, so hostile ids cannot balloon responses.
constexpr std::size_t kMaxIdBytes = 256;

/// Upper bound on `ping`'s artificial `delay_ms` (one minute).
constexpr long long kMaxPingDelayMs = 60000;

/// The operations a request may name.
enum class ServeOp {
  kMap,       ///< map one network with one algorithm
  kCompare,   ///< several algorithms side by side
  kChip,      ///< map + pipelined chip allocation
  kTraffic,   ///< traffic simulation / SLO capacity planning on chip plans
  kVerify,    ///< functional verification on the simulator
  kMappers,   ///< list the registered mapping algorithms
  kStats,     ///< cache / pool counters of this daemon
  kPing,      ///< health check; optional bounded busy-delay for tests
  kShutdown,  ///< answer, then drain and exit
};

/// The wire name of an op ("map", "compare", ...).
const char* op_name(ServeOp op);

/// A request that failed protocol validation.  Carries the stable error
/// code for the response envelope and the request id when it could be
/// recovered from the malformed input ("" when it could not).
class ProtocolError : public Error {
 public:
  ProtocolError(ErrorCode code, const std::string& message,
                std::string id = "");

  ErrorCode code() const { return code_; }
  const std::string& id() const { return id_; }

 private:
  ErrorCode code_;
  std::string id_;
};

/// One validated request: the op, the echoed id, and the query of that
/// op (the others stay default-constructed).
struct ServeRequest {
  std::string id;
  ServeOp op = ServeOp::kPing;
  MapQuery map;          ///< op == kMap
  CompareQuery compare;  ///< op == kCompare
  ChipQuery chip;        ///< op == kChip
  TrafficQuery traffic;  ///< op == kTraffic
  VerifyQuery verify;    ///< op == kVerify
  long long delay_ms = 0;  ///< op == kPing: busy-wait before answering
};

/// Parse and validate one request line.  Throws ProtocolError
/// (`bad_request`, `unknown_op`, or `too_large`) on any malformed
/// input: non-object documents, a missing/wrong `v`, a missing,
/// non-string, empty, or oversized `id`, an unknown op, an unknown or
/// mistyped field, or an out-of-range value.  Unknown fields are
/// rejected -- not ignored -- so client typos fail loudly.
ServeRequest parse_request(std::string_view line);

/// The success envelope: `result_json` is embedded verbatim (it is the
/// exact payload the one-shot CLI prints).  No trailing newline.
std::string ok_response(const std::string& id, ServeOp op,
                        const std::string& result_json);

/// The failure envelope; an empty `id` serializes as `"id":null`.  No
/// trailing newline.
std::string error_response(const std::string& id, ErrorCode code,
                           const std::string& message);

/// The `stats` op's result payload:
/// {"cache":{"hits":H,"misses":M,"entries":E},"threads":T}.
std::string to_json(const ServiceStats& stats);

}  // namespace vwsdk
