#pragma once

/// @file server.h
/// The `vwsdk serve` daemon loop: read NDJSON requests
/// (serve/protocol.h) from stdin or a Unix domain socket, execute them
/// on a bounded AdmissionQueue over one shared ServiceApi, and write
/// one response line per request.
///
/// Lifecycle: the loop runs until end-of-input, a `shutdown` request,
/// or SIGINT/SIGTERM; it then *drains* -- stops accepting, finishes
/// every in-flight request, flushes its responses, and returns 0.
/// Requests beyond the admission bounds are answered `overloaded`;
/// request lines already buffered when a shutdown arrives are answered
/// `shutting_down`.  Malformed input is always answered with an error
/// response, never with process death.

#include <string>

namespace vwsdk {

/// Configuration of one daemon run (the `vwsdk serve` flags).
struct ServeOptions {
  /// Unix domain socket path; "" serves stdin/stdout instead.  The path
  /// is created at startup (replacing a stale socket) and removed on
  /// exit.
  std::string socket_path;
  int max_inflight = 4;  ///< requests executing at once (>= 1)
  int max_queue = 16;    ///< accepted requests waiting beyond that (>= 0)
  int threads = 0;       ///< ServiceApi pool threads; <= 0 = auto
};

/// Run the daemon until end-of-input, `shutdown`, or a termination
/// signal; returns the process exit code (0 after a clean drain).
/// Installs SIGINT/SIGTERM handlers and ignores SIGPIPE for the
/// duration of the run.
int run_server(const ServeOptions& options);

}  // namespace vwsdk
