#include "serve/protocol.h"

#include <limits>
#include <utility>

#include "common/json.h"
#include "common/string_util.h"

namespace vwsdk {

namespace {

/// Typed field access over one request object.  Every mismatch throws
/// ProtocolError with the already-recovered id so the client can
/// correlate the failure.
class FieldReader {
 public:
  FieldReader(const JsonValue& object, std::string id)
      : object_(object), id_(std::move(id)) {}

  [[noreturn]] void fail(const std::string& message) const {
    throw ProtocolError(ErrorCode::kBadRequest, message, id_);
  }

  std::string get_string(const std::string& key, std::string fallback) const {
    const JsonValue* value = object_.find(key);
    if (value == nullptr) {
      return fallback;
    }
    if (!value->is_string()) {
      fail(cat("field \"", key, "\" must be a string, got ",
               JsonValue::type_name(value->type())));
    }
    return value->as_string();
  }

  std::string require_string(const std::string& key) const {
    if (object_.find(key) == nullptr) {
      fail(cat("missing required field \"", key, "\""));
    }
    const std::string value = get_string(key, "");
    if (value.empty()) {
      fail(cat("field \"", key, "\" must not be empty"));
    }
    return value;
  }

  long long get_int(const std::string& key, long long fallback,
                    long long min, long long max) const {
    const JsonValue* value = object_.find(key);
    if (value == nullptr) {
      return fallback;
    }
    long long parsed = 0;
    try {
      parsed = value->as_int();
    } catch (const std::exception&) {
      fail(cat("field \"", key, "\" must be an integer, got ",
               JsonValue::type_name(value->type())));
    }
    if (parsed < min || parsed > max) {
      fail(cat("field \"", key, "\" must be in [", min, ", ", max,
               "] (got ", parsed, ")"));
    }
    return parsed;
  }

  double get_number(const std::string& key, double fallback, double min,
                    double max) const {
    const JsonValue* value = object_.find(key);
    if (value == nullptr) {
      return fallback;
    }
    if (!value->is_number()) {
      fail(cat("field \"", key, "\" must be a number, got ",
               JsonValue::type_name(value->type())));
    }
    const double parsed = value->as_number();
    if (!(parsed >= min && parsed <= max)) {
      fail(cat("field \"", key, "\" must be in [", min, ", ", max,
               "] (got ", parsed, ")"));
    }
    return parsed;
  }

  std::vector<std::string> get_string_array(
      const std::string& key, std::vector<std::string> fallback) const {
    const JsonValue* value = object_.find(key);
    if (value == nullptr) {
      return fallback;
    }
    if (!value->is_array()) {
      fail(cat("field \"", key, "\" must be an array of strings, got ",
               JsonValue::type_name(value->type())));
    }
    std::vector<std::string> out;
    out.reserve(value->items().size());
    for (const JsonValue& item : value->items()) {
      if (!item.is_string()) {
        fail(cat("field \"", key, "\" must contain only strings, got ",
                 JsonValue::type_name(item.type())));
      }
      out.push_back(item.as_string());
    }
    if (out.empty()) {
      fail(cat("field \"", key, "\" must not be empty"));
    }
    return out;
  }

  /// Reject any member outside `allowed` (a space-separated list of
  /// the op's keys plus the envelope keys) so client typos -- "nett",
  /// "mapperr" -- fail loudly instead of silently running defaults.
  void reject_unknown(const std::string& op,
                      const std::string& allowed) const {
    for (const JsonValue::Member& member : object_.members()) {
      const std::string padded = cat(" ", allowed, " ");
      if (padded.find(cat(" ", member.first, " ")) == std::string::npos) {
        fail(cat("unknown field \"", member.first, "\" for op \"", op,
                 "\" (known: ", join(split(allowed, ' '), ", "), ")"));
      }
    }
  }

 private:
  const JsonValue& object_;
  std::string id_;
};

constexpr const char* kEnvelopeKeys = "v id op";

ServeOp op_by_name(const std::string& name, const std::string& id) {
  if (name == "map") return ServeOp::kMap;
  if (name == "compare") return ServeOp::kCompare;
  if (name == "chip") return ServeOp::kChip;
  if (name == "traffic") return ServeOp::kTraffic;
  if (name == "verify") return ServeOp::kVerify;
  if (name == "mappers") return ServeOp::kMappers;
  if (name == "stats") return ServeOp::kStats;
  if (name == "ping") return ServeOp::kPing;
  if (name == "shutdown") return ServeOp::kShutdown;
  throw ProtocolError(
      ErrorCode::kUnknownOp,
      cat("unknown op \"", name,
          "\" (known: map, compare, chip, traffic, verify, mappers, stats, "
          "ping, shutdown)"),
      id);
}

/// Best-effort id recovery from a parsed document, for echoing in error
/// responses before the id field itself has been validated.
std::string recover_id(const JsonValue& document) {
  if (!document.is_object()) {
    return "";
  }
  const JsonValue* id = document.find("id");
  if (id == nullptr || !id->is_string() || id->as_string().empty() ||
      id->as_string().size() > kMaxIdBytes) {
    return "";
  }
  return id->as_string();
}

}  // namespace

const char* op_name(ServeOp op) {
  switch (op) {
    case ServeOp::kMap: return "map";
    case ServeOp::kCompare: return "compare";
    case ServeOp::kChip: return "chip";
    case ServeOp::kTraffic: return "traffic";
    case ServeOp::kVerify: return "verify";
    case ServeOp::kMappers: return "mappers";
    case ServeOp::kStats: return "stats";
    case ServeOp::kPing: return "ping";
    case ServeOp::kShutdown: return "shutdown";
  }
  return "unknown";
}

ProtocolError::ProtocolError(ErrorCode code, const std::string& message,
                             std::string id)
    : Error(message), code_(code), id_(std::move(id)) {}

ServeRequest parse_request(std::string_view line) {
  if (line.size() > kMaxRequestBytes) {
    throw ProtocolError(ErrorCode::kTooLarge,
                        cat("request of ", line.size(),
                            " bytes exceeds the ", kMaxRequestBytes,
                            "-byte limit"));
  }
  JsonValue document;
  try {
    document = JsonValue::parse(line);
  } catch (const std::exception& e) {
    throw ProtocolError(ErrorCode::kBadRequest, e.what());
  }
  if (!document.is_object()) {
    throw ProtocolError(
        ErrorCode::kBadRequest,
        cat("request must be a JSON object, got ",
            JsonValue::type_name(document.type())));
  }
  const std::string recovered = recover_id(document);
  FieldReader reader(document, recovered);

  const JsonValue* version = document.find("v");
  if (version == nullptr) {
    reader.fail("missing required field \"v\"");
  }
  // as_int() throws for non-integer and out-of-range numbers (v=1.5,
  // v=1e300); convert that into the same bad_request -- with the
  // recovered id -- instead of letting InvalidArgument escape the
  // protocol layer and lose the correlation id.
  long long parsed_version = -1;
  if (version->is_number()) {
    try {
      parsed_version = version->as_int();
    } catch (const std::exception&) {
      parsed_version = -1;
    }
  }
  if (parsed_version != kProtocolVersion) {
    reader.fail(cat("unsupported protocol version (this daemon speaks v=",
                    kProtocolVersion, ")"));
  }

  const JsonValue* id = document.find("id");
  if (id == nullptr) {
    reader.fail("missing required field \"id\"");
  }
  if (!id->is_string() || id->as_string().empty()) {
    reader.fail("field \"id\" must be a non-empty string");
  }
  if (id->as_string().size() > kMaxIdBytes) {
    reader.fail(cat("field \"id\" exceeds ", kMaxIdBytes, " bytes"));
  }

  ServeRequest request;
  request.id = id->as_string();
  request.op = op_by_name(reader.require_string("op"), request.id);

  switch (request.op) {
    case ServeOp::kMap: {
      reader.reject_unknown("map", cat(kEnvelopeKeys,
                                       " net mapper array objective"));
      request.map.net = reader.require_string("net");
      request.map.mapper = reader.get_string("mapper", request.map.mapper);
      request.map.array = reader.get_string("array", "");
      request.map.objective =
          reader.get_string("objective", request.map.objective);
      break;
    }
    case ServeOp::kCompare: {
      reader.reject_unknown("compare", cat(kEnvelopeKeys,
                                           " net mappers array objective"));
      request.compare.net = reader.require_string("net");
      request.compare.mappers =
          reader.get_string_array("mappers", request.compare.mappers);
      request.compare.array = reader.get_string("array", "");
      request.compare.objective =
          reader.get_string("objective", request.compare.objective);
      break;
    }
    case ServeOp::kChip: {
      reader.reject_unknown(
          "chip",
          cat(kEnvelopeKeys, " net mapper array objective arrays chips "
                             "batch"));
      request.chip.net = reader.require_string("net");
      request.chip.mapper = reader.get_string("mapper", request.chip.mapper);
      request.chip.array = reader.get_string("array", "");
      request.chip.objective =
          reader.get_string("objective", request.chip.objective);
      if (document.find("arrays") == nullptr) {
        reader.fail("missing required field \"arrays\"");
      }
      constexpr long long kDimMax = std::numeric_limits<Dim>::max();
      request.chip.arrays_per_chip =
          static_cast<Dim>(reader.get_int("arrays", 0, 1, kDimMax));
      request.chip.max_chips =
          static_cast<Dim>(reader.get_int("chips", 0, 0, kDimMax));
      request.chip.batch = reader.get_int("batch", 1, 1, 1000000000);
      break;
    }
    case ServeOp::kTraffic: {
      reader.reject_unknown(
          "traffic",
          cat(kEnvelopeKeys, " net mapper array objective arrays chips "
                             "replicas rate duration seed window max_batch "
                             "max_queue trace slo_p99"));
      request.traffic.net = reader.require_string("net");
      request.traffic.mapper =
          reader.get_string("mapper", request.traffic.mapper);
      request.traffic.array = reader.get_string("array", "");
      request.traffic.objective =
          reader.get_string("objective", request.traffic.objective);
      if (document.find("arrays") == nullptr) {
        reader.fail("missing required field \"arrays\"");
      }
      constexpr long long kDimMax = std::numeric_limits<Dim>::max();
      request.traffic.arrays_per_chip =
          static_cast<Dim>(reader.get_int("arrays", 0, 1, kDimMax));
      request.traffic.max_chips =
          static_cast<Dim>(reader.get_int("chips", 0, 0, kDimMax));
      request.traffic.replicas = reader.get_int("replicas", 1, 1, 100000);
      request.traffic.rate = reader.get_number("rate", 0.0, 0.0, 1.0e9);
      request.traffic.duration =
          reader.get_int("duration", 10000000, 1, 1000000000000LL);
      request.traffic.seed = static_cast<std::uint64_t>(
          reader.get_int("seed", 42, 0, (1LL << 53)));
      request.traffic.batch_window =
          reader.get_int("window", 0, 0, 1000000000000LL);
      request.traffic.max_batch =
          reader.get_int("max_batch", 1, 1, 1000000000);
      request.traffic.max_queue =
          reader.get_int("max_queue", 0, 0, 1000000000);
      request.traffic.trace = reader.get_string("trace", "");
      request.traffic.slo_p99 =
          reader.get_int("slo_p99", 0, 0, 1000000000000LL);
      break;
    }
    case ServeOp::kVerify: {
      reader.reject_unknown("verify", cat(kEnvelopeKeys,
                                          " net mapper array backend seed"));
      request.verify.net = reader.require_string("net");
      request.verify.mapper =
          reader.get_string("mapper", request.verify.mapper);
      request.verify.array = reader.get_string("array", "");
      request.verify.ref_backend = reader.get_string("backend", "");
      request.verify.seed = static_cast<std::uint64_t>(
          reader.get_int("seed", 42, 0, (1LL << 53)));
      break;
    }
    case ServeOp::kPing: {
      reader.reject_unknown("ping", cat(kEnvelopeKeys, " delay_ms"));
      request.delay_ms = reader.get_int("delay_ms", 0, 0, kMaxPingDelayMs);
      break;
    }
    case ServeOp::kMappers:
    case ServeOp::kStats:
    case ServeOp::kShutdown: {
      reader.reject_unknown(op_name(request.op), kEnvelopeKeys);
      break;
    }
  }
  return request;
}

std::string ok_response(const std::string& id, ServeOp op,
                        const std::string& result_json) {
  return cat("{\"v\":", kProtocolVersion, ",\"id\":", json_quote(id),
             ",\"op\":\"", op_name(op), "\",\"ok\":true,\"result\":",
             result_json, "}");
}

std::string error_response(const std::string& id, ErrorCode code,
                           const std::string& message) {
  return cat("{\"v\":", kProtocolVersion, ",\"id\":",
             id.empty() ? std::string("null") : json_quote(id),
             ",\"ok\":false,\"error\":{\"code\":\"", error_code_name(code),
             "\",\"message\":", json_quote(message), "}}");
}

std::string to_json(const ServiceStats& stats) {
  return cat("{\"cache\":{\"hits\":", stats.cache_hits, ",\"misses\":",
             stats.cache_misses, ",\"entries\":", stats.cache_entries,
             "},\"threads\":", stats.threads, "}");
}

}  // namespace vwsdk
