#pragma once

/// @file admission.h
/// Bounded admission control for `vwsdk serve`: a fixed crew of request
/// workers plus a bounded waiting queue.  A request beyond both bounds
/// is *rejected immediately* (try_submit returns false and the server
/// answers `overloaded`) rather than queued without limit or blocked --
/// the daemon stays responsive no matter how fast a client writes.
///
/// These workers only parse, dispatch, and serialize; the heavy mapping
/// searches fan out into the ServiceApi's own ThreadPool underneath.
/// Keeping the two pools separate preserves the pool's non-reentrancy
/// contract (common/thread_pool.h): a request worker may block on pool
/// futures, a pool task never blocks on another.

#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/types.h"

namespace vwsdk {

/// A snapshot of the queue's counters.
struct AdmissionStats {
  int busy = 0;           ///< workers currently running a request
  int queued = 0;         ///< accepted requests waiting for a worker
  Count accepted = 0;     ///< requests admitted since startup
  Count rejected = 0;     ///< requests refused as overloaded
};

/// The bounded request executor: at most `max_inflight` requests run at
/// once and at most `max_queue` more wait; everything beyond is
/// rejected at submit time.
class AdmissionQueue {
 public:
  /// Start `max_inflight` worker threads (>= 1) over a waiting queue of
  /// `max_queue` slots (>= 0).
  AdmissionQueue(int max_inflight, int max_queue);

  /// Drains: finishes every accepted task, then joins the workers.
  ~AdmissionQueue();

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Admit `task` if capacity allows: true and the task will run; false
  /// and the task was refused (never partially started).  After drain()
  /// every submit is refused.
  bool try_submit(std::function<void()> task) VWSDK_EXCLUDES(mutex_);

  /// Stop admitting, run every already-accepted task to completion, and
  /// join the workers.  Idempotent; safe to call concurrently with
  /// submits (they are refused once draining begins).
  void drain() VWSDK_EXCLUDES(mutex_);

  /// Current counters (busy/queued are instantaneous, the totals
  /// monotonic); one consistent snapshot under a single lock hold.
  AdmissionStats stats() const VWSDK_EXCLUDES(mutex_);

 private:
  void worker_loop() VWSDK_EXCLUDES(mutex_);

  const int max_inflight_;
  const int max_queue_;
  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_ VWSDK_GUARDED_BY(mutex_);
  mutable Mutex mutex_;
  CondVar ready_;
  CondVar idle_;
  int busy_ VWSDK_GUARDED_BY(mutex_) = 0;
  Count accepted_ VWSDK_GUARDED_BY(mutex_) = 0;
  Count rejected_ VWSDK_GUARDED_BY(mutex_) = 0;
  bool draining_ VWSDK_GUARDED_BY(mutex_) = false;
};

}  // namespace vwsdk
