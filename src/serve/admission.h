#pragma once

/// @file admission.h
/// Bounded admission control for `vwsdk serve`: a fixed crew of request
/// workers plus a bounded waiting queue.  A request beyond both bounds
/// is *rejected immediately* (try_submit returns false and the server
/// answers `overloaded`) rather than queued without limit or blocked --
/// the daemon stays responsive no matter how fast a client writes.
///
/// These workers only parse, dispatch, and serialize; the heavy mapping
/// searches fan out into the ServiceApi's own ThreadPool underneath.
/// Keeping the two pools separate preserves the pool's non-reentrancy
/// contract (common/thread_pool.h): a request worker may block on pool
/// futures, a pool task never blocks on another.

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/types.h"

namespace vwsdk {

/// A snapshot of the queue's counters.
struct AdmissionStats {
  int busy = 0;           ///< workers currently running a request
  int queued = 0;         ///< accepted requests waiting for a worker
  Count accepted = 0;     ///< requests admitted since startup
  Count rejected = 0;     ///< requests refused as overloaded
};

/// The bounded request executor: at most `max_inflight` requests run at
/// once and at most `max_queue` more wait; everything beyond is
/// rejected at submit time.
class AdmissionQueue {
 public:
  /// Start `max_inflight` worker threads (>= 1) over a waiting queue of
  /// `max_queue` slots (>= 0).
  AdmissionQueue(int max_inflight, int max_queue);

  /// Drains: finishes every accepted task, then joins the workers.
  ~AdmissionQueue();

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Admit `task` if capacity allows: true and the task will run; false
  /// and the task was refused (never partially started).  After drain()
  /// every submit is refused.
  bool try_submit(std::function<void()> task);

  /// Stop admitting, run every already-accepted task to completion, and
  /// join the workers.  Idempotent; safe to call concurrently with
  /// submits (they are refused once draining begins).
  void drain();

  /// Current counters (busy/queued are instantaneous, the totals
  /// monotonic).
  AdmissionStats stats() const;

 private:
  void worker_loop();

  const int max_inflight_;
  const int max_queue_;
  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::condition_variable idle_;
  int busy_ = 0;
  Count accepted_ = 0;
  Count rejected_ = 0;
  bool draining_ = false;
};

}  // namespace vwsdk
