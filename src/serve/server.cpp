#include "serve/server.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/logging.h"
#include "common/mutex.h"
#include "common/string_util.h"
#include "core/serialize.h"
#include "serve/admission.h"
#include "serve/protocol.h"
#include "serve/service.h"

namespace vwsdk {

namespace {

/// Signal-to-loop channel, self-pipe style.  The handler body is
/// restricted to the async-signal-safe vocabulary -- a store to a
/// lock-free atomic flag and a `write(2)` to the pipe -- and the repo
/// lint (tools/vwsdk_lint.py, rule `signal-safety`) rejects anything
/// else creeping in.  Lock-free atomics (not `volatile sig_atomic_t`)
/// because the handler runs on whichever thread receives the signal
/// while the daemon loop reads the flag from another: sig_atomic_t is
/// signal-safe but NOT thread-safe, and TSan rightly flags it.  The
/// pipe write is what makes shutdown prompt: every event loop polls
/// the read end, so a signal arriving *during* poll() wakes it
/// immediately instead of racing the flag-check-then-block window.
static_assert(std::atomic<int>::is_always_lock_free,
              "lock-free atomics are required for async-signal-safety");
std::atomic<int> g_signal{0};
std::atomic<int> g_wake_fd{-1};  ///< self-pipe write end

/// Every blocking wait goes through poll with this timeout.  Infinite
/// is deliberate: the self-pipe converts signals into poll events, so
/// a periodic timeout would only mask a missing wakeup path.  Should
/// the pipe ever fail to construct (fd exhaustion), WakePipe keeps
/// read_fd() == -1, poll ignores the entry, and the fallback timeout
/// below restores the old 100 ms signal-check cadence.
constexpr int kPollForever = -1;
constexpr int kPollFallbackMs = 100;

extern "C" void handle_signal(int signum) {
  g_signal = signum;
  const int fd = g_wake_fd;
  if (fd >= 0) {
    const char byte = 1;
    const ssize_t ignored = ::write(fd, &byte, 1);  // async-signal-safe
    (void)ignored;  // a full pipe still means a pending wakeup
  }
}

/// One response sink: a file descriptor plus the write lock that keeps
/// concurrent worker responses line-atomic.  Closes the descriptor when
/// the last reference (reader map or in-flight request) drops, so a
/// worker never writes to a recycled descriptor.
class ResponseSink {
 public:
  ResponseSink(int fd, bool owns_fd) : fd_(fd), owns_fd_(owns_fd) {}

  ~ResponseSink() {
    if (owns_fd_) {
      ::close(fd_);
    }
  }

  ResponseSink(const ResponseSink&) = delete;
  ResponseSink& operator=(const ResponseSink&) = delete;

  /// Write `line` plus a newline, restarting on EINTR and short writes.
  /// A vanished peer (EPIPE with SIGPIPE ignored) is silently dropped;
  /// the request was still executed.
  void write_line(const std::string& line) VWSDK_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    std::string out = line;
    out += '\n';
    const char* data = out.data();
    std::size_t left = out.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, data, left);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        return;
      }
      data += n;
      left -= static_cast<std::size_t>(n);
    }
  }

 private:
  const int fd_;       ///< set at construction, closed at destruction
  const bool owns_fd_;
  /// Serializes writes so concurrent worker responses stay
  /// line-atomic; the guarded state is the fd's stream position, not a
  /// member, hence no VWSDK_GUARDED_BY -- write_line is the only door.
  Mutex mutex_;
};

/// Accumulates raw reads and yields complete lines.  A line that grows
/// past kMaxRequestBytes without a newline is reported once as
/// oversized, then discarded up to the next newline -- the stream
/// recovers instead of buffering without bound.
class LineBuffer {
 public:
  /// Feed a chunk; invokes `on_line(line)` per complete line and
  /// `on_oversized()` once per oversized line.
  template <typename OnLine, typename OnOversized>
  void feed(const char* data, std::size_t size, const OnLine& on_line,
            const OnOversized& on_oversized) {
    for (std::size_t i = 0; i < size; ++i) {
      const char c = data[i];
      if (c == '\n') {
        if (skipping_) {
          skipping_ = false;
        } else {
          on_line(buffer_);
        }
        buffer_.clear();
        continue;
      }
      if (skipping_) {
        continue;
      }
      buffer_ += c;
      if (buffer_.size() > kMaxRequestBytes) {
        on_oversized();
        buffer_.clear();
        skipping_ = true;
      }
    }
  }

  /// A final unterminated line at end-of-input, "" if none.
  const std::string& pending() const { return buffer_; }

 private:
  std::string buffer_;
  bool skipping_ = false;
};

/// Execute one validated request against the service and write its
/// response.  Never throws: every failure becomes an error response
/// with the classified code.
void execute_request(ServiceApi& api, const ServeRequest& request,
                     ResponseSink& sink) {
  try {
    std::string payload;
    switch (request.op) {
      case ServeOp::kMap:
        payload = to_json(api.map(request.map));
        break;
      case ServeOp::kCompare:
        payload = to_json(api.compare(request.compare));
        break;
      case ServeOp::kChip:
        payload = to_json(api.chip(request.chip).plan, request.chip.batch);
        break;
      case ServeOp::kTraffic: {
        const TrafficResult traffic = api.traffic(request.traffic);
        payload = traffic.capacity_mode ? to_json(traffic.capacity)
                                        : to_json(traffic.report);
        break;
      }
      case ServeOp::kVerify:
        payload = to_json(api.verify(request.verify));
        break;
      case ServeOp::kMappers:
        payload = to_json(api.mappers());
        break;
      case ServeOp::kStats:
        payload = to_json(api.stats());
        break;
      case ServeOp::kPing:
        if (request.delay_ms > 0) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(request.delay_ms));
        }
        payload = cat("{\"pong\":true,\"delay_ms\":", request.delay_ms, "}");
        break;
      case ServeOp::kShutdown:
        payload = "{\"stopping\":true}";  // answered inline by the reader
        break;
    }
    sink.write_line(ok_response(request.id, request.op, payload));
  } catch (const std::exception& e) {
    sink.write_line(
        error_response(request.id, classify_exception(e), e.what()));
  }
}

/// The shared per-run state: one service, one admission queue, one
/// stop flag every reader consults.
class Server {
 public:
  explicit Server(const ServeOptions& options)
      : api_(options.threads),
        admission_(options.max_inflight, options.max_queue) {}

  bool stopping() const { return stopping_.load(); }

  /// Route one request line: protocol errors and `shutdown` are
  /// answered inline on the reader thread; everything else goes through
  /// admission (refusals become `overloaded`).  Lines that were already
  /// buffered behind a shutdown are answered `shutting_down`.
  void handle_line(const std::string& line,
                   const std::shared_ptr<ResponseSink>& sink) {
    ServeRequest request;
    try {
      request = parse_request(line);
    } catch (const ProtocolError& e) {
      sink->write_line(error_response(e.id(), e.code(), e.what()));
      return;
    }
    if (stopping_.load()) {
      sink->write_line(error_response(
          request.id, ErrorCode::kShuttingDown,
          "the daemon is draining and no longer accepts requests"));
      return;
    }
    if (request.op == ServeOp::kShutdown) {
      stopping_.store(true);
      execute_request(api_, request, *sink);
      return;
    }
    // Constructing the task moves the request out, so keep the id for
    // the rejection path -- the refusal must still echo it.
    const std::string request_id = request.id;
    const bool admitted = admission_.try_submit(
        [this, request = std::move(request), sink] {
          execute_request(api_, request, *sink);
        });
    if (!admitted) {
      sink->write_line(error_response(
          request_id, ErrorCode::kOverloaded,
          cat("admission queue full (", admission_.stats().busy,
              " in flight, ", admission_.stats().queued,
              " queued); retry later")));
    }
  }

  void handle_oversized(const std::shared_ptr<ResponseSink>& sink) {
    sink->write_line(error_response(
        "", ErrorCode::kTooLarge,
        cat("request line exceeds the ", kMaxRequestBytes, "-byte limit")));
  }

  void request_stop() { stopping_.store(true); }

  /// Finish every admitted request; responses flush as they complete.
  void drain() { admission_.drain(); }

 private:
  ServiceApi api_;
  AdmissionQueue admission_;
  std::atomic<bool> stopping_{false};
};

/// The self-pipe: created before the handlers are installed, polled by
/// every event loop.  Publishes its write end through `g_wake_fd` for
/// the signal handler; the read end is drained (non-blocking) whenever
/// poll reports it, turning any number of pending signals into one
/// wakeup.
class WakePipe {
 public:
  WakePipe() {
    if (::pipe(fds_) != 0) {
      fds_[0] = fds_[1] = -1;
      return;
    }
    for (const int fd : fds_) {
      const int flags = ::fcntl(fd, F_GETFL);
      ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
      ::fcntl(fd, F_SETFD, FD_CLOEXEC);
    }
    g_wake_fd = fds_[1];
  }

  ~WakePipe() {
    g_wake_fd = -1;
    for (const int fd : fds_) {
      if (fd >= 0) {
        ::close(fd);
      }
    }
  }

  WakePipe(const WakePipe&) = delete;
  WakePipe& operator=(const WakePipe&) = delete;

  /// The read end every event loop polls (-1 when construction
  /// failed; poll ignores negative fds by contract).
  int read_fd() const { return fds_[0]; }

  /// Infinite when the pipe works (signals become poll events),
  /// 100 ms polling as a degraded fallback when it does not.
  int poll_timeout() const {
    return fds_[0] >= 0 ? kPollForever : kPollFallbackMs;
  }

  /// Consume every pending wakeup byte (non-blocking).
  void drain() const {
    char buffer[64];
    while (fds_[0] >= 0 && ::read(fds_[0], buffer, sizeof(buffer)) > 0) {
    }
  }

 private:
  int fds_[2];
};

/// Read fd until EOF/shutdown/signal, feeding `buffer` and dispatching
/// lines to `server`; the wake pipe makes signal response prompt even
/// while blocked in poll.  Returns false only on a fatal read error.
bool pump_fd(Server& server, int fd, const WakePipe& wake,
             LineBuffer& buffer, const std::shared_ptr<ResponseSink>& sink) {
  while (true) {
    if (g_signal != 0) {
      server.request_stop();
      return true;
    }
    if (server.stopping()) {
      return true;
    }
    struct pollfd pfds[2];
    pfds[0] = {wake.read_fd(), POLLIN, 0};
    pfds[1] = {fd, POLLIN, 0};
    const int ready = ::poll(pfds, 2, wake.poll_timeout());
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      log_warn(cat("serve: poll failed: ", std::strerror(errno)));
      return false;
    }
    if (ready == 0) {
      continue;
    }
    if ((pfds[0].revents & POLLIN) != 0) {
      wake.drain();
      continue;  // loop top re-checks g_signal
    }
    char chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      log_warn(cat("serve: read failed: ", std::strerror(errno)));
      return false;
    }
    if (n == 0) {
      // End of input: a final unterminated line is still a request.
      if (!buffer.pending().empty()) {
        server.handle_line(buffer.pending(), sink);
      }
      return true;
    }
    buffer.feed(
        chunk, static_cast<std::size_t>(n),
        [&](const std::string& line) {
          if (!line.empty()) {
            server.handle_line(line, sink);
          }
        },
        [&] { server.handle_oversized(sink); });
  }
}

int run_stdio(Server& server, const WakePipe& wake) {
  auto sink = std::make_shared<ResponseSink>(STDOUT_FILENO, false);
  LineBuffer buffer;
  const bool ok = pump_fd(server, STDIN_FILENO, wake, buffer, sink);
  server.drain();
  return ok ? 0 : 1;
}

/// One connected socket client: its buffered reader state plus the
/// shared sink in-flight responses hold onto.
struct Client {
  LineBuffer buffer;
  std::shared_ptr<ResponseSink> sink;
};

int run_socket(Server& server, const WakePipe& wake,
               const std::string& path) {
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    log_warn(cat("serve: socket failed: ", std::strerror(errno)));
    return 1;
  }
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    log_warn(cat("serve: socket path longer than ",
                    sizeof(addr.sun_path) - 1, " bytes: ", path));
    ::close(listen_fd);
    return 1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());  // replace a stale socket from a dead daemon
  if (::bind(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) < 0 ||
      ::listen(listen_fd, 8) < 0) {
    log_warn(cat("serve: cannot listen on ", path, ": ",
                    std::strerror(errno)));
    ::close(listen_fd);
    return 1;
  }
  log_info(cat("serve: listening on ", path));

  std::map<int, Client> clients;
  bool ok = true;
  while (!server.stopping()) {
    if (g_signal != 0) {
      server.request_stop();
      break;
    }
    std::vector<struct pollfd> pfds;
    pfds.push_back({wake.read_fd(), POLLIN, 0});
    pfds.push_back({listen_fd, POLLIN, 0});
    for (const auto& [fd, client] : clients) {
      pfds.push_back({fd, POLLIN, 0});
    }
    const int ready = ::poll(pfds.data(), pfds.size(), wake.poll_timeout());
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      log_warn(cat("serve: poll failed: ", std::strerror(errno)));
      ok = false;
      break;
    }
    if (ready == 0) {
      continue;
    }
    if ((pfds[0].revents & POLLIN) != 0) {
      wake.drain();
      continue;  // loop top re-checks g_signal
    }
    if ((pfds[1].revents & POLLIN) != 0) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd >= 0) {
        clients[fd].sink = std::make_shared<ResponseSink>(fd, true);
      }
    }
    for (std::size_t i = 2; i < pfds.size(); ++i) {
      if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
        continue;
      }
      const int fd = pfds[i].fd;
      auto it = clients.find(fd);
      if (it == clients.end()) {
        continue;
      }
      char chunk[4096];
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n > 0) {
        it->second.buffer.feed(
            chunk, static_cast<std::size_t>(n),
            [&](const std::string& line) {
              if (!line.empty()) {
                server.handle_line(line, it->second.sink);
              }
            },
            [&] { server.handle_oversized(it->second.sink); });
        continue;
      }
      if (n < 0 && errno == EINTR) {
        continue;
      }
      // EOF or error: flush any unterminated last line, then drop our
      // reference -- the sink closes the descriptor once in-flight
      // responses for this client finish.
      if (n == 0 && !it->second.buffer.pending().empty()) {
        server.handle_line(it->second.buffer.pending(), it->second.sink);
      }
      clients.erase(it);
    }
  }
  server.drain();
  clients.clear();
  ::close(listen_fd);
  ::unlink(path.c_str());
  return ok ? 0 : 1;
}

}  // namespace

int run_server(const ServeOptions& options) {
  VWSDK_REQUIRE(options.max_inflight >= 1,
                cat("--max-inflight must be >= 1 (got ",
                    options.max_inflight, ")"));
  VWSDK_REQUIRE(options.max_queue >= 0,
                cat("--max-queue must be >= 0 (got ", options.max_queue,
                    ")"));

  // Order matters: the pipe must exist (g_wake_fd published) before a
  // handler that writes to it can fire.
  const WakePipe wake;
  g_signal = 0;
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = handle_signal;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  ::signal(SIGPIPE, SIG_IGN);  // a vanished client must not kill the daemon

  Server server(options);
  if (options.socket_path.empty()) {
    return run_stdio(server, wake);
  }
  return run_socket(server, wake, options.socket_path);
}

}  // namespace vwsdk
