#pragma once

/// @file service.h
/// The ServiceApi facade: one resident mapping service -- a shared
/// ThreadPool plus a single-flight MappingCache -- answering the
/// request shapes every user surface speaks: `map`, `compare`, `chip`,
/// `verify`, `mappers`, `stats`.
///
/// Both front doors are thin shells over this class: the one-shot
/// `vwsdk` CLI subcommands build a query from flags and serialize the
/// result once, and the long-running `vwsdk serve` daemon parses the
/// same queries from NDJSON requests (serve/protocol.h) -- so a serve
/// response payload is byte-identical to the equivalent one-shot
/// `--format json` invocation, and repeated queries hit the cache
/// instead of re-searching.
///
/// Concurrency: every method is safe to call from multiple threads at
/// once.  Callers must not invoke the service from a task running on
/// its own pool (the pool is non-reentrant, see common/thread_pool.h);
/// the daemon's request workers are separate threads, which is the
/// intended shape.

#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/mapper_registry.h"
#include "core/mapping_cache.h"
#include "core/network_optimizer.h"
#include "sim/chip_allocator.h"
#include "sim/traffic.h"
#include "sim/verifier.h"

namespace vwsdk {

/// `map`: one network, one algorithm, every layer.
struct MapQuery {
  std::string net;                   ///< zoo name or spec file (required)
  std::string mapper = "vw-sdk";     ///< mapping algorithm name or alias
  std::string array;                 ///< "RxC"; "" = spec hint, then 512x512
  std::string objective = "cycles";  ///< search objective name
};

/// `compare`: several algorithms on one network side by side.
struct CompareQuery {
  std::string net;  ///< zoo name or spec file (required)
  /// Algorithms in comparison order; the first is the speedup baseline.
  std::vector<std::string> mappers{"im2col", "smd", "sdk", "vw-sdk"};
  std::string array;                 ///< "RxC"; "" = spec hint, then 512x512
  std::string objective = "cycles";  ///< search objective name
};

/// `chip`: pipeline one network across one or more PIM chips.
struct ChipQuery {
  std::string net;                   ///< zoo name or spec file (required)
  std::string mapper = "vw-sdk";     ///< mapping algorithm name or alias
  std::string array;                 ///< "RxC"; "" = spec hint, then 512x512
  std::string objective = "cycles";  ///< search + stage-scoring objective
  Dim arrays_per_chip = 0;           ///< crossbar arrays per chip (>= 1)
  Dim max_chips = 0;                 ///< chip budget; 0 = as demand needs
  Count batch = 1;                   ///< inferences streamed through
};

/// `traffic`: stream request arrivals at one or more co-resident
/// networks pipelined across chips, or (slo_p99 > 0) search the
/// smallest chip count meeting a p99 SLO at the given rate.
struct TrafficQuery {
  std::string net;                   ///< comma-separated zoo names or spec files
  std::string mapper = "vw-sdk";     ///< mapping algorithm name or alias
  std::string array;                 ///< "RxC"; "" = spec hint, then 512x512
  std::string objective = "cycles";  ///< search + stage-scoring objective
  Dim arrays_per_chip = 0;           ///< crossbar arrays per chip (>= 1)
  Dim max_chips = 0;                 ///< chip budget per network; 0 = as needed
  Count replicas = 1;                ///< pipeline replicas per network
  double rate = 0.0;                 ///< Poisson arrivals per 1e6 cycles
  Cycles duration = 10'000'000;      ///< Poisson-mode horizon in cycles
  std::uint64_t seed = 42;           ///< arrival-stream root seed
  Cycles batch_window = 0;           ///< max cycles a batch is held open
  Count max_batch = 1;               ///< largest batch served at once
  Count max_queue = 0;               ///< per-replica queue bound; 0 = unbounded
  std::string trace;                 ///< arrival-trace file; "" = Poisson
  Cycles slo_p99 = 0;                ///< > 0 = capacity-planning mode
};

/// `verify`: functionally verify mapped layers on the simulator.
struct VerifyQuery {
  std::string net;                ///< zoo name or spec file (required)
  std::string mapper = "vw-sdk";  ///< mapping algorithm name or alias
  std::string array;              ///< "RxC"; "" = spec hint, then 512x512
  std::string ref_backend;        ///< "" = VWSDK_REF_BACKEND, then gemm
  std::uint64_t seed = 42;        ///< base seed of the test tensors
};

/// `chip`'s answer: the plan plus the mapping it was planned from (the
/// CLI's table view reports the mapping's resident array demand; the
/// serve op serializes only the plan).
struct ChipResult {
  NetworkMappingResult mapping;
  ChipPlan plan;
};

/// `traffic`'s answer: the per-network plans the simulation ran on,
/// the report, and -- in capacity-planning mode -- the SLO search
/// result (whose `report` field is the one to serialize).
struct TrafficResult {
  std::vector<ChipPlan> plans;
  TrafficReport report;
  bool capacity_mode = false;
  CapacityResult capacity;  ///< meaningful when capacity_mode
};

/// A snapshot of the service's shared state.
struct ServiceStats {
  Count cache_hits = 0;     ///< searches served from the mapping cache
  Count cache_misses = 0;   ///< searches actually computed
  Count cache_entries = 0;  ///< distinct cached searches
  int threads = 0;          ///< worker threads of the shared pool
};

/// The "cache H hit(s) / M miss(es), E distinct search(es)" fragment
/// shared by the sweep summary and the `--stats` stderr line.
std::string cache_stats_fragment(const ServiceStats& stats);

/// The one-line `--stats` report of the one-shot subcommands.
std::string stats_line(const ServiceStats& stats);

/// The resident mapping service: validates queries, resolves names
/// through the registries, and runs every search over one shared
/// ThreadPool and single-flight MappingCache.
class ServiceApi {
 public:
  /// Start the service; `threads <= 0` resolves via VWSDK_THREADS, then
  /// the hardware concurrency (ThreadPool::resolve_thread_count).
  explicit ServiceApi(int threads = 0);

  ServiceApi(const ServiceApi&) = delete;
  ServiceApi& operator=(const ServiceApi&) = delete;

  /// Map every layer of the query's network with one algorithm.
  /// Throws InvalidArgument/NotFound on an invalid query.
  NetworkMappingResult map(const MapQuery& query);

  /// Run the query's algorithms side by side on one network.  Mapper
  /// names are canonicalized through the MapperRegistry; a duplicate
  /// (alias included) is an InvalidArgument -- it would make speedup
  /// columns ambiguous.
  NetworkComparison compare(const CompareQuery& query);

  /// Map the network, then plan a pipelined chip allocation.  An
  /// infeasible plan (a layer bigger than a chip, or a max_chips budget
  /// below the demand) throws Error naming the reason -- the same
  /// contract as the CLI's exit-1 path.
  ChipResult chip(const ChipQuery& query);

  /// Map and chip-plan every network of the comma-separated query, then
  /// simulate its request traffic (Poisson or trace-driven), or -- when
  /// `slo_p99` is set -- search the smallest replica count meeting the
  /// SLO.  Infeasible plans throw Error like chip(); an unmeetable SLO
  /// throws Error (the exit-1 contract).
  TrafficResult traffic(const TrafficQuery& query);

  /// Functionally verify every mapped layer on the crossbar simulator
  /// against the query's reference backend.  Mismatches are reported in
  /// the result, never thrown.
  NetworkVerifyResult verify(const VerifyQuery& query);

  /// The registry behind `mappers` listings.
  const MapperRegistry& mappers() const;

  /// Counters of the shared cache and pool.
  ServiceStats stats() const;

  /// The shared pool (for callers composing their own optimizer runs).
  ThreadPool& pool() { return pool_; }

  /// The shared single-flight cache.
  MappingCache& cache() { return cache_; }

 private:
  ThreadPool pool_;
  MappingCache cache_;
};

}  // namespace vwsdk
