#pragma once

/// @file mapping_context.h
/// The parameter object every mapping search runs against.
///
/// A MappingContext bundles what used to be loose `map(shape, geometry)`
/// arguments with the engine's shared resources: the search objective,
/// the thread pool candidate evaluation may fan out over, the
/// memoization cache, and the optional search trace.  It is cheap to
/// copy (non-owning pointers; the caller keeps ownership of every
/// resource) and default-constructs to the paper's configuration:
/// cycles objective, sequential scan, no cache, no trace.

#include "mapping/conv_shape.h"
#include "mapping/objective.h"
#include "pim/array_geometry.h"

namespace vwsdk {

class MappingCache;
class SearchTrace;
class ThreadPool;

/// Everything a Mapper needs to choose a mapping for one layer.
struct MappingContext {
  ConvShape shape{};         ///< the layer (or one group's sub-convolution)
  ArrayGeometry geometry{};  ///< the array

  /// Scoring strategy for candidate comparison and tie-breaking;
  /// nullptr means cycles_objective() (the paper's search, bit-exact).
  const Objective* objective = nullptr;

  /// When non-null, search mappers may spread candidate evaluation over
  /// the pool; the decision is identical either way (costs are reduced
  /// in scan order, never completion order).  Must not point at a pool
  /// the current task is already running on (see thread_pool.h).
  ThreadPool* pool = nullptr;

  /// When non-null, callers routing searches through the engine memoize
  /// them here, keyed by (mapper, shape, geometry, objective).  Mappers
  /// themselves do not consult it.
  MappingCache* cache = nullptr;

  /// When non-null, search mappers record every candidate visited, in
  /// scan order (see core/search_trace.h).
  SearchTrace* trace = nullptr;

  MappingContext() = default;
  MappingContext(const ConvShape& shape_in, const ArrayGeometry& geometry_in)
      : shape(shape_in), geometry(geometry_in) {}

  /// The effective objective: `objective`, defaulting to cycles.
  const Objective& scoring() const {
    return objective != nullptr ? *objective : cycles_objective();
  }

  /// Validate shape and geometry (what every mapper checks on entry).
  void validate() const {
    shape.validate();
    geometry.validate();
  }
};

}  // namespace vwsdk
