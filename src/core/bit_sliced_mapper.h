#pragma once

/// @file bit_sliced_mapper.h
/// Algorithm 1 under the bit-slicing extension: same scan, bit-slicing
/// aware costs.  The optimizer's window choice *adapts* to the precision
/// config -- with 1-bit cells each output channel costs 8x the columns,
/// pushing the optimum toward windows with fewer positions (smaller N_WP).

#include "core/mapping_decision.h"
#include "mapping/bit_slicing.h"

namespace vwsdk {

/// VW-SDK search with bit-slicing costs.  With the default config this is
/// exactly VwSdkMapper (tested).  The search always minimizes the
/// bit-slicing-aware cycle count -- the analytic activity model behind
/// the energy/EDP objectives does not know about slicing, so a
/// non-cycles context objective is accepted only under the degenerate
/// 1-slice/1-step config (where every cost equals the plain model's and
/// the score is exact); sliced configs reject it with InvalidArgument
/// rather than report a wrong energy figure.
class BitSlicedVwSdkMapper final : public Mapper {
 public:
  using Mapper::map;

  BitSlicedVwSdkMapper() = default;
  explicit BitSlicedVwSdkMapper(BitSlicingConfig config);

  std::string name() const override { return "vw-sdk-bitsliced"; }
  MappingDecision map(const MappingContext& context) const override;

  const BitSlicingConfig& config() const { return config_; }

 private:
  BitSlicingConfig config_{};
};

}  // namespace vwsdk
