#include "core/serialize.h"

#include <ostream>
#include <sstream>

#include "common/csv.h"
#include "common/json.h"
#include "common/error.h"
#include "common/string_util.h"

namespace vwsdk {

namespace {

const std::vector<std::string> kResultHeader = {
    "network", "algorithm", "array",  "layer",  "image", "kernel",
    "ic",      "oc",        "groups", "window", "ic_t",  "oc_t",
    "n_pw",    "ar",        "ac",     "cycles", "objective", "score"};

std::vector<std::string> layer_row(const NetworkMappingResult& result,
                                   const LayerMapping& lm) {
  const ConvLayerDesc& layer = lm.layer;
  const CycleCost& cost = lm.decision.cost;
  // For grouped layers the window/tile columns describe ONE group's
  // sub-convolution; "cycles" is always the layer-level total (G x the
  // per-group cycles).  See docs/FORMATS.md.
  return {result.network_name,
          result.algorithm,
          result.geometry.to_string(),
          layer.name,
          cat(layer.ifm_w, "x", layer.ifm_h),
          cat(layer.kernel_w, "x", layer.kernel_h),
          std::to_string(layer.in_channels),
          std::to_string(layer.out_channels),
          std::to_string(layer.groups),
          cost.window.to_string(),
          std::to_string(cost.ic_t),
          std::to_string(cost.oc_t),
          std::to_string(cost.n_parallel_windows),
          std::to_string(cost.ar_cycles),
          std::to_string(cost.ac_cycles),
          std::to_string(lm.cycles()),
          lm.decision.objective,
          format_fixed(lm.score(), 4)};
}

}  // namespace

void write_result_csv(std::ostream& os, const NetworkMappingResult& result) {
  CsvWriter csv(os, kResultHeader);
  for (const LayerMapping& lm : result.layers) {
    csv.write_row(layer_row(result, lm));
  }
}

namespace {

/// Rows of one comparison into an already-opened CSV (shared by the
/// single-comparison and sweep writers).
void append_comparison_rows(CsvWriter& csv,
                            const NetworkComparison& comparison) {
  VWSDK_REQUIRE(!comparison.results.empty(), "empty comparison");
  const NetworkMappingResult& baseline = comparison.results.front();
  for (const NetworkMappingResult& result : comparison.results) {
    VWSDK_REQUIRE(result.layers.size() == baseline.layers.size(),
                  "comparison results cover different layer counts");
    for (std::size_t i = 0; i < result.layers.size(); ++i) {
      std::vector<std::string> row = layer_row(result, result.layers[i]);
      const double speedup =
          static_cast<double>(baseline.layers[i].cycles()) /
          static_cast<double>(result.layers[i].cycles());
      row.push_back(format_fixed(speedup, 4));
      csv.write_row(row);
    }
  }
}

std::vector<std::string> comparison_header() {
  std::vector<std::string> header = kResultHeader;
  header.emplace_back("speedup_vs_baseline");
  return header;
}

}  // namespace

void write_comparison_csv(std::ostream& os,
                          const NetworkComparison& comparison) {
  VWSDK_REQUIRE(!comparison.results.empty(), "empty comparison");
  CsvWriter csv(os, comparison_header());
  append_comparison_rows(csv, comparison);
}

void write_sweep_csv(std::ostream& os,
                     const std::vector<NetworkComparison>& sweep) {
  CsvWriter csv(os, comparison_header());
  for (const NetworkComparison& comparison : sweep) {
    append_comparison_rows(csv, comparison);
  }
}

std::string to_json(const MappingDecision& decision) {
  const CycleCost& cost = decision.cost;
  std::ostringstream os;
  os << "{\"algorithm\":" << json_quote(decision.algorithm)
     << ",\"array\":" << json_quote(decision.geometry.to_string())
     << ",\"layer\":" << json_quote(decision.shape.to_string())
     << ",\"window\":" << json_quote(cost.window.to_string())
     << ",\"ic_t\":" << cost.ic_t << ",\"oc_t\":" << cost.oc_t
     << ",\"n_parallel_windows\":" << cost.n_parallel_windows
     << ",\"ar\":" << cost.ar_cycles << ",\"ac\":" << cost.ac_cycles
     << ",\"cycles\":" << cost.total
     << ",\"objective\":" << json_quote(decision.objective)
     << ",\"score\":" << format_fixed(decision.score, 4)
     << ",\"im2col_fallback\":"
     << (decision.is_im2col_fallback() ? "true" : "false") << "}";
  return os.str();
}

std::string to_json(const NetworkMappingResult& result) {
  std::ostringstream os;
  os << "{\"network\":" << json_quote(result.network_name)
     << ",\"algorithm\":" << json_quote(result.algorithm)
     << ",\"objective\":" << json_quote(result.objective)
     << ",\"array\":" << json_quote(result.geometry.to_string())
     << ",\"layers\":[";
  for (std::size_t i = 0; i < result.layers.size(); ++i) {
    if (i != 0) {
      os << ',';
    }
    os << "{\"name\":" << json_quote(result.layers[i].layer.name)
       << ",\"groups\":" << result.layers[i].layer.groups
       << ",\"cycles\":" << result.layers[i].cycles()
       << ",\"decision\":" << to_json(result.layers[i].decision) << "}";
  }
  os << "],\"total_cycles\":" << result.total_cycles()
     << ",\"total_score\":" << format_fixed(result.total_score(), 4) << "}";
  return os.str();
}

std::string to_json(const NetworkComparison& comparison) {
  VWSDK_REQUIRE(!comparison.results.empty(), "empty comparison");
  std::ostringstream os;
  os << "{\"results\":[";
  for (std::size_t i = 0; i < comparison.results.size(); ++i) {
    if (i != 0) {
      os << ',';
    }
    os << to_json(comparison.results[i]);
  }
  os << "],\"speedups\":{";
  for (std::size_t i = 0; i < comparison.results.size(); ++i) {
    if (i != 0) {
      os << ',';
    }
    os << json_quote(comparison.results[i].algorithm) << ":"
       << format_fixed(comparison.speedup(0, static_cast<Count>(i)), 4);
  }
  os << "}}";
  return os.str();
}

void write_chip_csv(std::ostream& os, const ChipPlan& plan) {
  VWSDK_REQUIRE(plan.feasible,
                cat("cannot serialize an infeasible chip plan as CSV (",
                    plan.infeasible_reason, "); use the JSON form"));
  CsvWriter csv(os, {"network", "algorithm", "objective", "array",
                     "arrays_per_chip", "chip", "layer", "groups", "tiles",
                     "arrays", "serial_cycles", "makespan", "score",
                     "interval", "fill_latency", "speedup", "balance"});
  const std::string interval = std::to_string(plan.interval());
  const std::string fill = std::to_string(plan.fill_latency());
  const std::string speedup = format_fixed(plan.speedup(), 4);
  const std::string balance = format_fixed(plan.balance(), 4);
  for (std::size_t chip = 0; chip < plan.chips.size(); ++chip) {
    for (const LayerAllocation& layer : plan.chips[chip].layers) {
      csv.write_row({plan.network_name, plan.algorithm, plan.objective,
                     plan.geometry.to_string(),
                     std::to_string(plan.arrays_per_chip),
                     std::to_string(chip + 1), layer.layer_name,
                     std::to_string(layer.groups),
                     std::to_string(layer.tiles),
                     std::to_string(layer.arrays),
                     std::to_string(layer.serial_cycles),
                     std::to_string(layer.makespan),
                     format_fixed(layer.score, 4), interval, fill, speedup,
                     balance});
    }
  }
}

std::string to_json(const ChipPlan& plan, Count batch) {
  VWSDK_REQUIRE(batch >= 1, "batch needs at least one inference");
  std::ostringstream os;
  os << "{\"network\":" << json_quote(plan.network_name)
     << ",\"algorithm\":" << json_quote(plan.algorithm)
     << ",\"objective\":" << json_quote(plan.objective)
     << ",\"array\":" << json_quote(plan.geometry.to_string())
     << ",\"arrays_per_chip\":" << plan.arrays_per_chip
     << ",\"feasible\":" << (plan.feasible ? "true" : "false");
  if (!plan.feasible) {
    os << ",\"reason\":" << json_quote(plan.infeasible_reason) << "}";
    return os.str();
  }
  os << ",\"chips\":[";
  for (std::size_t i = 0; i < plan.chips.size(); ++i) {
    const ChipAllocation& chip = plan.chips[i];
    if (i != 0) {
      os << ',';
    }
    os << "{\"arrays\":" << chip.total_arrays
       << ",\"arrays_used\":" << chip.arrays_used()
       << ",\"interval\":" << chip.bottleneck()
       << ",\"fill_latency\":" << chip.fill_latency()
       << ",\"balance\":" << format_fixed(chip.balance(), 4)
       << ",\"layers\":[";
    for (std::size_t j = 0; j < chip.layers.size(); ++j) {
      const LayerAllocation& layer = chip.layers[j];
      if (j != 0) {
        os << ',';
      }
      os << "{\"name\":" << json_quote(layer.layer_name)
         << ",\"groups\":" << layer.groups << ",\"tiles\":" << layer.tiles
         << ",\"arrays\":" << layer.arrays
         << ",\"serial_cycles\":" << layer.serial_cycles
         << ",\"makespan\":" << layer.makespan
         << ",\"score\":" << format_fixed(layer.score, 4) << "}";
    }
    os << "]}";
  }
  os << "],\"interval\":" << plan.interval()
     << ",\"fill_latency\":" << plan.fill_latency()
     << ",\"serial_cycles\":" << plan.serial_cycles()
     << ",\"arrays_used\":" << plan.arrays_used()
     << ",\"speedup\":" << format_fixed(plan.speedup(), 4)
     << ",\"balance\":" << format_fixed(plan.balance(), 4)
     << ",\"batch\":" << batch
     << ",\"batch_cycles\":" << plan.batch_cycles(batch)
     << ",\"cycles_per_inference\":"
     << format_fixed(static_cast<double>(plan.batch_cycles(batch)) /
                         static_cast<double>(batch),
                     4)
     << "}";
  return os.str();
}

void write_traffic_csv(std::ostream& os, const TrafficReport& report) {
  CsvWriter csv(os, {"network", "algorithm", "objective", "array",
                     "arrays_per_chip", "replica", "chip", "busy",
                     "utilization", "queue_peak", "batches", "interval",
                     "fill_latency", "replicas", "arrivals", "completions",
                     "rejected", "in_flight", "offered", "sustained", "p50",
                     "p95", "p99", "p999"});
  for (const NetworkTraffic& net : report.networks) {
    for (const ChipTraffic& chip : net.chips) {
      csv.write_row({net.network, net.algorithm, net.objective, net.array,
                     std::to_string(net.arrays_per_chip),
                     std::to_string(chip.replica), std::to_string(chip.chip),
                     std::to_string(chip.busy),
                     format_fixed(chip.utilization, 4),
                     std::to_string(chip.queue_peak),
                     std::to_string(chip.batches),
                     std::to_string(net.interval),
                     std::to_string(net.fill_latency),
                     std::to_string(net.replicas),
                     std::to_string(net.arrivals),
                     std::to_string(net.completions),
                     std::to_string(net.rejected),
                     std::to_string(net.in_flight),
                     format_fixed(net.offered, 4),
                     format_fixed(net.sustained, 4), std::to_string(net.p50),
                     std::to_string(net.p95), std::to_string(net.p99),
                     std::to_string(net.p999)});
    }
  }
}

std::string to_json(const TrafficReport& report) {
  std::ostringstream os;
  os << "{\"seed\":" << report.seed
     << ",\"source\":" << json_quote(report.source)
     << ",\"rate\":" << format_fixed(report.rate, 4)
     << ",\"duration\":" << report.duration
     << ",\"batch_window\":" << report.batch_window
     << ",\"max_batch\":" << report.max_batch
     << ",\"max_queue\":" << report.max_queue << ",\"networks\":[";
  for (std::size_t i = 0; i < report.networks.size(); ++i) {
    const NetworkTraffic& net = report.networks[i];
    if (i != 0) {
      os << ',';
    }
    os << "{\"network\":" << json_quote(net.network)
       << ",\"algorithm\":" << json_quote(net.algorithm)
       << ",\"objective\":" << json_quote(net.objective)
       << ",\"array\":" << json_quote(net.array)
       << ",\"arrays_per_chip\":" << net.arrays_per_chip
       << ",\"replicas\":" << net.replicas
       << ",\"chips_per_replica\":" << net.chips_per_replica
       << ",\"interval\":" << net.interval
       << ",\"fill_latency\":" << net.fill_latency
       << ",\"arrivals\":" << net.arrivals
       << ",\"completions\":" << net.completions
       << ",\"rejected\":" << net.rejected
       << ",\"in_flight\":" << net.in_flight
       << ",\"offered_per_mcycle\":" << format_fixed(net.offered, 4)
       << ",\"sustained_per_mcycle\":" << format_fixed(net.sustained, 4)
       << ",\"capacity_per_mcycle\":" << format_fixed(net.capacity, 4)
       << ",\"mean_batch\":" << format_fixed(net.mean_batch, 4)
       << ",\"mean_wait\":" << format_fixed(net.mean_wait, 4)
       << ",\"latency\":{\"min\":" << net.latency_min
       << ",\"mean\":" << format_fixed(net.mean_latency, 4)
       << ",\"p50\":" << net.p50 << ",\"p95\":" << net.p95
       << ",\"p99\":" << net.p99 << ",\"p999\":" << net.p999
       << ",\"max\":" << net.latency_max << "},\"chips\":[";
    for (std::size_t j = 0; j < net.chips.size(); ++j) {
      const ChipTraffic& chip = net.chips[j];
      if (j != 0) {
        os << ',';
      }
      os << "{\"replica\":" << chip.replica << ",\"chip\":" << chip.chip
         << ",\"busy\":" << chip.busy
         << ",\"utilization\":" << format_fixed(chip.utilization, 4)
         << ",\"queue_peak\":" << chip.queue_peak
         << ",\"batches\":" << chip.batches << "}";
    }
    os << "]}";
  }
  os << "],\"arrivals\":" << report.total_arrivals()
     << ",\"completions\":" << report.total_completions()
     << ",\"rejected\":" << report.total_rejected()
     << ",\"in_flight\":" << report.total_in_flight() << "}";
  return os.str();
}

std::string to_json(const CapacityResult& result) {
  std::ostringstream os;
  os << "{\"slo_p99\":" << result.slo_p99
     << ",\"rate\":" << format_fixed(result.rate, 4)
     << ",\"replicas\":" << result.replicas << ",\"chips\":" << result.chips
     << ",\"p99\":" << result.p99 << ",\"meets_slo\":true,\"lower\":";
  if (result.lower_replicas > 0) {
    os << "{\"replicas\":" << result.lower_replicas
       << ",\"p99\":" << result.lower_p99 << ",\"meets_slo\":false}";
  } else {
    os << "null";
  }
  os << ",\"report\":" << to_json(result.report) << "}";
  return os.str();
}

namespace {

/// "N" when square, "[w,h]" otherwise (the JSON spec extent grammar).
std::string json_extent(Dim w, Dim h) {
  return w == h ? std::to_string(w) : cat("[", w, ",", h, "]");
}

/// "N" when square, "WxH" otherwise (the CSV spec extent grammar).
std::string csv_extent(Dim w, Dim h) {
  return w == h ? std::to_string(w) : cat(w, "x", h);
}

}  // namespace

std::string to_json(const NetworkVerifyResult& result) {
  std::ostringstream os;
  os << "{\"network\":" << json_quote(result.network_name)
     << ",\"algorithm\":" << json_quote(result.algorithm)
     << ",\"backend\":" << json_quote(result.backend)
     << ",\"array\":" << json_quote(result.geometry.to_string())
     << ",\"seed\":" << result.seed << ",\"layers\":[";
  for (std::size_t i = 0; i < result.layers.size(); ++i) {
    const LayerVerification& lv = result.layers[i];
    if (i != 0) {
      os << ',';
    }
    os << "{\"name\":" << json_quote(lv.layer.name)
       << ",\"groups\":" << lv.layer.groups
       << ",\"decision\":" << to_json(lv.decision)
       << ",\"exact\":" << (lv.report.exact_match ? "true" : "false")
       << ",\"executed_cycles\":" << lv.report.executed_cycles
       << ",\"analytic_cycles\":" << lv.report.analytic_cycles
       << ",\"cycles_match\":" << (lv.report.cycles_match ? "true" : "false")
       << ",\"max_abs_error\":" << format_fixed(lv.report.max_abs_error, 4)
       << "}";
  }
  os << "],\"all_verified\":" << (result.all_verified() ? "true" : "false")
     << "}";
  return os.str();
}

std::string to_json(const MapperRegistry& registry) {
  std::ostringstream os;
  os << "{\"mappers\":[";
  const std::vector<std::string> names = registry.names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    const MapperInfo& info = registry.info(names[i]);
    if (i != 0) {
      os << ',';
    }
    os << "{\"name\":" << json_quote(info.name) << ",\"aliases\":[";
    for (std::size_t j = 0; j < info.aliases.size(); ++j) {
      os << (j == 0 ? "" : ",") << json_quote(info.aliases[j]);
    }
    os << "],\"description\":" << json_quote(info.description)
       << ",\"capabilities\":{\"objective_aware\":"
       << (info.capabilities.objective_aware ? "true" : "false")
       << ",\"parallel_search\":"
       << (info.capabilities.parallel_search ? "true" : "false")
       << ",\"exhaustive\":"
       << (info.capabilities.exhaustive ? "true" : "false")
       << ",\"grouped\":" << (info.capabilities.grouped ? "true" : "false")
       << "}}";
  }
  os << "]}";
  return os.str();
}

std::string to_spec_json(const Network& network, const std::string& array) {
  VWSDK_REQUIRE(!network.empty(), "cannot export an empty network");
  std::ostringstream os;
  os << "{\n  \"name\": " << json_quote(network.name()) << ",\n";
  if (!array.empty()) {
    os << "  \"array\": " << json_quote(array) << ",\n";
  }
  os << "  \"layers\": [\n";
  const std::vector<ConvLayerDesc>& layers = network.layers();
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const ConvLayerDesc& layer = layers[i];
    os << "    {\"name\": " << json_quote(layer.name)
       << ", \"image\": " << json_extent(layer.ifm_w, layer.ifm_h)
       << ", \"kernel\": " << json_extent(layer.kernel_w, layer.kernel_h)
       << ", \"ic\": " << layer.in_channels
       << ", \"oc\": " << layer.out_channels;
    if (layer.config.stride_w != 1 || layer.config.stride_h != 1) {
      os << ", \"stride\": "
         << json_extent(layer.config.stride_w, layer.config.stride_h);
    }
    if (layer.config.pad_w != 0 || layer.config.pad_h != 0) {
      os << ", \"pad\": "
         << json_extent(layer.config.pad_w, layer.config.pad_h);
    }
    if (layer.is_grouped()) {
      os << ", \"groups\": " << layer.groups;
    }
    os << "}" << (i + 1 < layers.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

std::string to_spec_csv(const Network& network, const std::string& array) {
  VWSDK_REQUIRE(!network.empty(), "cannot export an empty network");
  // The spec-CSV dialect is line-based (directives + getline rows) and
  // trims every cell on parse, so names with line breaks or surrounding
  // whitespace are unrepresentable -- they would round-trip into a
  // *different* name.  Fail loudly; the JSON spec format handles them.
  const auto require_csv_representable = [](const std::string& name,
                                            const char* what) {
    VWSDK_REQUIRE(name.find_first_of("\n\r") == std::string::npos &&
                      trim(name) == name,
                  cat(what, " \"", name,
                      "\" has a line break or surrounding whitespace; "
                      "the CSV spec format cannot represent it (use the "
                      "JSON spec)"));
  };
  require_csv_representable(network.name(), "network name");
  for (const ConvLayerDesc& layer : network.layers()) {
    require_csv_representable(layer.name, "layer name");
  }
  std::ostringstream os;
  os << "# network: " << network.name() << "\n";
  if (!array.empty()) {
    os << "# array: " << array << "\n";
  }
  CsvWriter csv(os, {"name", "image", "kernel", "ic", "oc", "stride", "pad",
                     "groups"});
  for (const ConvLayerDesc& layer : network.layers()) {
    csv.write_row({layer.name, csv_extent(layer.ifm_w, layer.ifm_h),
                   csv_extent(layer.kernel_w, layer.kernel_h),
                   std::to_string(layer.in_channels),
                   std::to_string(layer.out_channels),
                   csv_extent(layer.config.stride_w, layer.config.stride_h),
                   csv_extent(layer.config.pad_w, layer.config.pad_h),
                   std::to_string(layer.groups)});
  }
  return os.str();
}

}  // namespace vwsdk
