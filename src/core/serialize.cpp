#include "core/serialize.h"

#include <ostream>
#include <sstream>

#include "common/csv.h"
#include "common/error.h"
#include "common/string_util.h"

namespace vwsdk {

namespace {

const std::vector<std::string> kResultHeader = {
    "network", "algorithm", "array", "layer", "image", "kernel",
    "ic",      "oc",        "window", "ic_t", "oc_t",  "n_pw",
    "ar",      "ac",        "cycles"};

std::vector<std::string> layer_row(const NetworkMappingResult& result,
                                   const LayerMapping& lm) {
  const ConvLayerDesc& layer = lm.layer;
  const CycleCost& cost = lm.decision.cost;
  return {result.network_name,
          result.algorithm,
          result.geometry.to_string(),
          layer.name,
          cat(layer.ifm_w, "x", layer.ifm_h),
          cat(layer.kernel_w, "x", layer.kernel_h),
          std::to_string(layer.in_channels),
          std::to_string(layer.out_channels),
          cost.window.to_string(),
          std::to_string(cost.ic_t),
          std::to_string(cost.oc_t),
          std::to_string(cost.n_parallel_windows),
          std::to_string(cost.ar_cycles),
          std::to_string(cost.ac_cycles),
          std::to_string(cost.total)};
}

/// Minimal JSON string escaping (we only emit identifiers and numbers,
/// but algorithm names flow through user code).
std::string json_string(const std::string& value) {
  std::string out = "\"";
  for (const char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += '"';
  return out;
}

}  // namespace

void write_result_csv(std::ostream& os, const NetworkMappingResult& result) {
  CsvWriter csv(os, kResultHeader);
  for (const LayerMapping& lm : result.layers) {
    csv.write_row(layer_row(result, lm));
  }
}

void write_comparison_csv(std::ostream& os,
                          const NetworkComparison& comparison) {
  VWSDK_REQUIRE(!comparison.results.empty(), "empty comparison");
  std::vector<std::string> header = kResultHeader;
  header.emplace_back("speedup_vs_baseline");
  CsvWriter csv(os, header);
  const NetworkMappingResult& baseline = comparison.results.front();
  for (const NetworkMappingResult& result : comparison.results) {
    VWSDK_REQUIRE(result.layers.size() == baseline.layers.size(),
                  "comparison results cover different layer counts");
    for (std::size_t i = 0; i < result.layers.size(); ++i) {
      std::vector<std::string> row = layer_row(result, result.layers[i]);
      const double speedup =
          static_cast<double>(baseline.layers[i].decision.cost.total) /
          static_cast<double>(result.layers[i].decision.cost.total);
      row.push_back(format_fixed(speedup, 4));
      csv.write_row(row);
    }
  }
}

std::string to_json(const MappingDecision& decision) {
  const CycleCost& cost = decision.cost;
  std::ostringstream os;
  os << "{\"algorithm\":" << json_string(decision.algorithm)
     << ",\"array\":" << json_string(decision.geometry.to_string())
     << ",\"layer\":" << json_string(decision.shape.to_string())
     << ",\"window\":" << json_string(cost.window.to_string())
     << ",\"ic_t\":" << cost.ic_t << ",\"oc_t\":" << cost.oc_t
     << ",\"n_parallel_windows\":" << cost.n_parallel_windows
     << ",\"ar\":" << cost.ar_cycles << ",\"ac\":" << cost.ac_cycles
     << ",\"cycles\":" << cost.total
     << ",\"im2col_fallback\":"
     << (decision.is_im2col_fallback() ? "true" : "false") << "}";
  return os.str();
}

std::string to_json(const NetworkMappingResult& result) {
  std::ostringstream os;
  os << "{\"network\":" << json_string(result.network_name)
     << ",\"algorithm\":" << json_string(result.algorithm)
     << ",\"array\":" << json_string(result.geometry.to_string())
     << ",\"layers\":[";
  for (std::size_t i = 0; i < result.layers.size(); ++i) {
    if (i != 0) {
      os << ',';
    }
    os << "{\"name\":" << json_string(result.layers[i].layer.name)
       << ",\"decision\":" << to_json(result.layers[i].decision) << "}";
  }
  os << "],\"total_cycles\":" << result.total_cycles() << "}";
  return os.str();
}

}  // namespace vwsdk
