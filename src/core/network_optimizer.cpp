#include "core/network_optimizer.h"

#include <memory>
#include <utility>

#include "common/error.h"
#include "common/math_util.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace vwsdk {

Cycles LayerMapping::cycles() const {
  return checked_mul(static_cast<Count>(layer.groups), decision.cost.total);
}

double LayerMapping::score() const {
  return static_cast<double>(layer.groups) * decision.score;
}

Cycles NetworkMappingResult::total_cycles() const {
  Cycles total = 0;
  for (const LayerMapping& lm : layers) {
    total = checked_add(total, lm.cycles());
  }
  return total;
}

double NetworkMappingResult::total_score() const {
  double total = 0.0;
  for (const LayerMapping& lm : layers) {
    total += lm.score();
  }
  return total;
}

Cycles NetworkMappingResult::layer_cycles(Count index) const {
  VWSDK_REQUIRE(index >= 0 && index < static_cast<Count>(layers.size()),
                cat("layer index ", index, " out of range"));
  return layers[static_cast<std::size_t>(index)].cycles();
}

namespace {

/// Worker count an options struct resolves to (pool size wins, then
/// explicit threads, then VWSDK_THREADS / hardware).
int resolve_threads(const OptimizerOptions& options) {
  return options.pool != nullptr
             ? options.pool->size()
             : ThreadPool::resolve_thread_count(options.threads);
}

/// The pool to run on: the caller's, or a freshly created one parked in
/// `owned` so it outlives the fan-out.
ThreadPool* borrow_or_create_pool(const OptimizerOptions& options,
                                  int threads,
                                  std::unique_ptr<ThreadPool>& owned) {
  if (options.pool != nullptr) {
    return options.pool;
  }
  owned = std::make_unique<ThreadPool>(threads);
  return owned.get();
}

/// The shape a layer's mapper actually searches: the full convolution for
/// dense layers, one group's sub-convolution (IC/G -> OC/G) for grouped
/// layers -- groups are identical and mapped independently, so the layer
/// total is G x the per-group cycles (applied in LayerMapping::cycles).
ConvShape mapping_shape(const ConvLayerDesc& layer) {
  ConvShape shape = ConvShape::from_layer(layer);
  shape.in_channels = layer.group_in_channels();
  shape.out_channels = layer.group_out_channels();
  return shape;
}

/// One layer's search: through the cache when one is given, spread over
/// `pool` (may be null) when `intra_layer` asks for it.
MappingDecision map_layer(const Mapper& mapper, const ConvShape& shape,
                          const ArrayGeometry& geometry,
                          const OptimizerOptions& options,
                          ThreadPool* intra_pool) {
  MappingContext context{shape, geometry};
  context.objective = options.objective;
  context.pool = intra_pool;
  context.cache = options.cache;
  if (options.cache != nullptr) {
    return options.cache->map(mapper, context);
  }
  return mapper.map(context);
}

}  // namespace

NetworkMappingResult optimize_network(const Mapper& mapper,
                                      const Network& network,
                                      const ArrayGeometry& geometry) {
  return optimize_network(mapper, network, geometry, OptimizerOptions{});
}

NetworkMappingResult optimize_network(const Mapper& mapper,
                                      const Network& network,
                                      const ArrayGeometry& geometry,
                                      const OptimizerOptions& options) {
  VWSDK_REQUIRE(!network.empty(), "cannot optimize an empty network");
  geometry.validate();

  const std::vector<ConvLayerDesc>& layers = network.layers();
  const int threads = resolve_threads(options);
  const bool across_layers =
      !options.intra_layer && threads > 1 && layers.size() > 1;
  const bool within_layer = options.intra_layer && threads > 1;

  // Declaration order matters for exception safety: `decisions` must
  // outlive the owned pool (its destructor finishes in-flight tasks that
  // write into `decisions`).
  std::vector<MappingDecision> decisions(layers.size());
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* pool = (across_layers || within_layer)
                         ? borrow_or_create_pool(options, threads,
                                                 owned_pool)
                         : options.pool;

  if (across_layers) {
    // Fan layers out across the pool; slot `i` of `decisions` belongs to
    // layer `i`, so the result order is the network order regardless of
    // completion order.
    parallel_chunks(*pool, static_cast<Count>(layers.size()),
                    [&](Count begin, Count end) {
                      for (Count i = begin; i < end; ++i) {
                        const auto index = static_cast<std::size_t>(i);
                        decisions[index] = map_layer(
                            mapper, mapping_shape(layers[index]), geometry,
                            options, nullptr);
                      }
                    });
  } else {
    ThreadPool* intra_pool = within_layer ? pool : nullptr;
    for (std::size_t i = 0; i < layers.size(); ++i) {
      decisions[i] = map_layer(mapper, mapping_shape(layers[i]), geometry,
                               options, intra_pool);
    }
  }

  NetworkMappingResult result;
  result.network_name = network.name();
  result.algorithm = mapper.name();
  result.objective = options.objective != nullptr
                         ? options.objective->name()
                         : cycles_objective().name();
  result.geometry = geometry;
  result.layers.reserve(layers.size());
  for (std::size_t i = 0; i < layers.size(); ++i) {
    result.layers.push_back(
        LayerMapping{layers[i], std::move(decisions[i])});
  }
  return result;
}

double NetworkComparison::speedup(Count baseline, Count target) const {
  VWSDK_REQUIRE(baseline >= 0 &&
                    baseline < static_cast<Count>(results.size()) &&
                    target >= 0 && target < static_cast<Count>(results.size()),
                "comparison index out of range");
  const Cycles base =
      results[static_cast<std::size_t>(baseline)].total_cycles();
  const Cycles tgt = results[static_cast<std::size_t>(target)].total_cycles();
  VWSDK_REQUIRE(tgt > 0, "target cycles must be positive");
  return static_cast<double>(base) / static_cast<double>(tgt);
}

double NetworkComparison::layer_speedup(Count baseline, Count target,
                                        Count layer_index) const {
  VWSDK_REQUIRE(baseline >= 0 &&
                    baseline < static_cast<Count>(results.size()) &&
                    target >= 0 && target < static_cast<Count>(results.size()),
                "comparison index out of range");
  const Cycles base = results[static_cast<std::size_t>(baseline)].layer_cycles(
      layer_index);
  const Cycles tgt =
      results[static_cast<std::size_t>(target)].layer_cycles(layer_index);
  VWSDK_REQUIRE(tgt > 0, "target cycles must be positive");
  return static_cast<double>(base) / static_cast<double>(tgt);
}

NetworkComparison compare_mappers(const std::vector<std::string>& mapper_names,
                                  const Network& network,
                                  const ArrayGeometry& geometry) {
  return compare_mappers(mapper_names, network, geometry,
                         OptimizerOptions{});
}

NetworkComparison compare_mappers(const std::vector<std::string>& mapper_names,
                                  const Network& network,
                                  const ArrayGeometry& geometry,
                                  const OptimizerOptions& options) {
  VWSDK_REQUIRE(!mapper_names.empty(), "need at least one mapper");

  // One pool shared by every mapper run (optimize_network would otherwise
  // create and join a fresh pool per mapper).
  OptimizerOptions shared = options;
  std::unique_ptr<ThreadPool> owned_pool;
  const int threads = resolve_threads(options);
  if (threads > 1) {
    shared.pool = borrow_or_create_pool(options, threads, owned_pool);
  }

  NetworkComparison comparison;
  comparison.results.reserve(mapper_names.size());
  for (const std::string& name : mapper_names) {
    const auto mapper = make_mapper(name);
    comparison.results.push_back(
        optimize_network(*mapper, network, geometry, shared));
  }
  return comparison;
}

}  // namespace vwsdk
