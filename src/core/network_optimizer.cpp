#include "core/network_optimizer.h"

#include "common/error.h"
#include "common/math_util.h"
#include "common/string_util.h"

namespace vwsdk {

Cycles NetworkMappingResult::total_cycles() const {
  Cycles total = 0;
  for (const LayerMapping& lm : layers) {
    total = checked_add(total, lm.decision.cost.total);
  }
  return total;
}

Cycles NetworkMappingResult::layer_cycles(Count index) const {
  VWSDK_REQUIRE(index >= 0 && index < static_cast<Count>(layers.size()),
                cat("layer index ", index, " out of range"));
  return layers[static_cast<std::size_t>(index)].decision.cost.total;
}

NetworkMappingResult optimize_network(const Mapper& mapper,
                                      const Network& network,
                                      const ArrayGeometry& geometry) {
  VWSDK_REQUIRE(!network.empty(), "cannot optimize an empty network");
  geometry.validate();
  NetworkMappingResult result;
  result.network_name = network.name();
  result.algorithm = mapper.name();
  result.geometry = geometry;
  result.layers.reserve(network.layers().size());
  for (const ConvLayerDesc& layer : network.layers()) {
    LayerMapping lm;
    lm.layer = layer;
    lm.decision = mapper.map(ConvShape::from_layer(layer), geometry);
    result.layers.push_back(std::move(lm));
  }
  return result;
}

double NetworkComparison::speedup(Count baseline, Count target) const {
  VWSDK_REQUIRE(baseline >= 0 &&
                    baseline < static_cast<Count>(results.size()) &&
                    target >= 0 && target < static_cast<Count>(results.size()),
                "comparison index out of range");
  const Cycles base =
      results[static_cast<std::size_t>(baseline)].total_cycles();
  const Cycles tgt = results[static_cast<std::size_t>(target)].total_cycles();
  VWSDK_REQUIRE(tgt > 0, "target cycles must be positive");
  return static_cast<double>(base) / static_cast<double>(tgt);
}

double NetworkComparison::layer_speedup(Count baseline, Count target,
                                        Count layer_index) const {
  VWSDK_REQUIRE(baseline >= 0 &&
                    baseline < static_cast<Count>(results.size()) &&
                    target >= 0 && target < static_cast<Count>(results.size()),
                "comparison index out of range");
  const Cycles base = results[static_cast<std::size_t>(baseline)].layer_cycles(
      layer_index);
  const Cycles tgt =
      results[static_cast<std::size_t>(target)].layer_cycles(layer_index);
  VWSDK_REQUIRE(tgt > 0, "target cycles must be positive");
  return static_cast<double>(base) / static_cast<double>(tgt);
}

NetworkComparison compare_mappers(const std::vector<std::string>& mapper_names,
                                  const Network& network,
                                  const ArrayGeometry& geometry) {
  VWSDK_REQUIRE(!mapper_names.empty(), "need at least one mapper");
  NetworkComparison comparison;
  comparison.results.reserve(mapper_names.size());
  for (const std::string& name : mapper_names) {
    const auto mapper = make_mapper(name);
    comparison.results.push_back(
        optimize_network(*mapper, network, geometry));
  }
  return comparison;
}

}  // namespace vwsdk
