#pragma once

/// @file report.h
/// Rendering of network-level mapping results in the paper's formats:
/// the Table-I layout, per-layer speedup tables (Fig. 8(a)), and
/// utilization tables (Fig. 9).

#include <string>
#include <vector>

#include "common/table.h"
#include "core/network_optimizer.h"
#include "mapping/utilization.h"

namespace vwsdk {

/// Render a Table-I-style table from two results over the same network
/// (conventionally SDK and VW-SDK).  Columns: layer #, image, kernel, one
/// mapping column per result, and a final total-cycles row per result.
TextTable render_table1(const NetworkMappingResult& first,
                        const NetworkMappingResult& second);

/// Render per-layer speedups of every result vs. the first (baseline)
/// result -- the data behind Fig. 8(a).
TextTable render_layer_speedups(const NetworkComparison& comparison);

/// Render per-layer utilization (in %) of every result under the given
/// convention -- the data behind Fig. 9(a).
TextTable render_utilization(const NetworkComparison& comparison,
                             UtilizationConvention convention,
                             Count max_layers = -1);

}  // namespace vwsdk
