#pragma once

/// @file search_trace.h
/// Optional instrumentation of the VW-SDK window search: every candidate
/// visited, in order, with its cost and whether it improved the incumbent.
/// Used by the design-space-explorer example and by tests that pin down
/// Algorithm 1's scan order and tie-breaking.

#include <string>
#include <vector>

#include "mapping/cost_model.h"

namespace vwsdk {

/// One visited candidate window.
struct SearchStep {
  ParallelWindow window{};
  bool feasible = false;
  Cycles cycles = 0;     ///< valid when feasible
  bool improved = false; ///< strictly better than the incumbent when visited
  double score = 0.0;    ///< objective score, valid when feasible (equals
                         ///< `cycles` under the default cycles objective)
};

/// Recording of one search run.
class SearchTrace {
 public:
  void record(const SearchStep& step) { steps_.push_back(step); }

  const std::vector<SearchStep>& steps() const { return steps_; }

  Count candidates_visited() const {
    return static_cast<Count>(steps_.size());
  }
  Count feasible_count() const;
  Count improvement_count() const;

  /// The sequence of incumbent-improving steps, in order.
  std::vector<SearchStep> improvements() const;

  /// Multi-line rendering (one line per improvement, plus a summary).
  std::string to_string() const;

 private:
  std::vector<SearchStep> steps_;
};

}  // namespace vwsdk
