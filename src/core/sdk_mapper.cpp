#include "core/sdk_mapper.h"

#include <algorithm>

#include "common/math_util.h"
#include "core/mapper_registry.h"

namespace vwsdk {

Dim SdkMapper::chosen_gamma(const ConvShape& shape,
                            const ArrayGeometry& geometry) {
  shape.validate();
  geometry.validate();
  if (shape.kernel_w != shape.kernel_h) {
    return 1;  // baseline defined for square kernels only
  }
  const Cycles im2col_ar =
      ceil_div(shape.kernel_volume(), geometry.rows);
  Dim gamma = 1;
  while (true) {
    const Dim next = gamma + 1;
    const ParallelWindow pw{shape.kernel_w + (next - 1) * shape.stride_w,
                            shape.kernel_h + (next - 1) * shape.stride_h};
    // (iii) window inside the padded IFM (and stride-admissible).
    if (!window_admissible(shape, pw)) {
      break;
    }
    // (i) every duplicated kernel on the columns at once.
    const Count duplicated_cols =
        checked_mul(shape.out_channels,
                    checked_mul(static_cast<Count>(next), next));
    if (duplicated_cols > geometry.cols) {
      break;
    }
    // (ii) AR cycles may not grow beyond im2col's.
    const Cycles ar =
        ceil_div(checked_mul(pw.area(), shape.in_channels), geometry.rows);
    if (ar > im2col_ar) {
      break;
    }
    gamma = next;
  }
  return gamma;
}

MappingDecision SdkMapper::map(const MappingContext& context) const {
  const Objective& objective = context.scoring();
  MappingDecision decision;
  decision.algorithm = name();
  decision.objective = objective.name();
  decision.shape = context.shape;
  decision.geometry = context.geometry;

  const Dim gamma = chosen_gamma(context.shape, context.geometry);
  if (gamma <= 1) {
    decision.cost = im2col_cost(context.shape, context.geometry);
  } else {
    const ParallelWindow pw{
        context.shape.kernel_w + (gamma - 1) * context.shape.stride_w,
        context.shape.kernel_h + (gamma - 1) * context.shape.stride_h};
    decision.cost = sdk_cost(context.shape, context.geometry, pw);
  }
  decision.score =
      objective.score(context.shape, context.geometry, decision.cost);
  return decision;
}

namespace detail {

void register_sdk_mapper(MapperRegistry& registry) {
  registry.add(MapperInfo{
      "sdk",
      {},
      "square-window SDK: maximal whole-channel duplication (ref [2])",
      MapperCapabilities{},
      30,
      []() { return std::make_unique<SdkMapper>(); }});
}

}  // namespace detail

}  // namespace vwsdk
