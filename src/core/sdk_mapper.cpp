#include "core/sdk_mapper.h"

#include <algorithm>

#include "common/math_util.h"

namespace vwsdk {

Dim SdkMapper::chosen_gamma(const ConvShape& shape,
                            const ArrayGeometry& geometry) {
  shape.validate();
  geometry.validate();
  if (shape.kernel_w != shape.kernel_h) {
    return 1;  // baseline defined for square kernels only
  }
  const Cycles im2col_ar =
      ceil_div(shape.kernel_volume(), geometry.rows);
  Dim gamma = 1;
  while (true) {
    const Dim next = gamma + 1;
    const ParallelWindow pw{shape.kernel_w + (next - 1) * shape.stride_w,
                            shape.kernel_h + (next - 1) * shape.stride_h};
    // (iii) window inside the padded IFM (and stride-admissible).
    if (!window_admissible(shape, pw)) {
      break;
    }
    // (i) every duplicated kernel on the columns at once.
    const Count duplicated_cols =
        checked_mul(shape.out_channels,
                    checked_mul(static_cast<Count>(next), next));
    if (duplicated_cols > geometry.cols) {
      break;
    }
    // (ii) AR cycles may not grow beyond im2col's.
    const Cycles ar =
        ceil_div(checked_mul(pw.area(), shape.in_channels), geometry.rows);
    if (ar > im2col_ar) {
      break;
    }
    gamma = next;
  }
  return gamma;
}

MappingDecision SdkMapper::map(const ConvShape& shape,
                               const ArrayGeometry& geometry) const {
  MappingDecision decision;
  decision.algorithm = name();
  decision.shape = shape;
  decision.geometry = geometry;

  const Dim gamma = chosen_gamma(shape, geometry);
  if (gamma <= 1) {
    decision.cost = im2col_cost(shape, geometry);
    return decision;
  }
  const ParallelWindow pw{shape.kernel_w + (gamma - 1) * shape.stride_w,
                          shape.kernel_h + (gamma - 1) * shape.stride_h};
  decision.cost = sdk_cost(shape, geometry, pw);
  return decision;
}

}  // namespace vwsdk
