#pragma once

/// @file exhaustive_mapper.h
/// Exhaustive oracle for the window search.
///
/// Evaluates *every* admissible window (including the kernel-sized one
/// with channel-granular tiling) plus the element-granular im2col mapping,
/// and returns the global optimum under the context's objective.  Under
/// the default cycles objective: because the element-granular im2col
/// cost never exceeds the channel-granular kernel-window cost (a channel
/// tile is a restricted row split), the optimum over this superset equals
/// the optimum Algorithm 1 reports -- the property test
/// `VwSdkMatchesExhaustiveOracle` relies on exactly that.
///
/// Intentionally the dumbest correct implementation: its value is being
/// obviously right, not fast.

#include "core/mapping_decision.h"

namespace vwsdk {

/// Brute-force oracle mapper (global optimum, im2col tie-break first).
class ExhaustiveMapper final : public Mapper {
 public:
  using Mapper::map;

  std::string name() const override { return "exhaustive"; }

  /// Evaluates all windows, scoring each through `context.scoring()`;
  /// with `context.pool` the costs are computed over the pool and then
  /// reduced in scan order, returning exactly the sequential decision.
  MappingDecision map(const MappingContext& context) const override;
};

}  // namespace vwsdk
