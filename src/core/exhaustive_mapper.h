#pragma once

/// @file exhaustive_mapper.h
/// Exhaustive oracle for the window search.
///
/// Evaluates *every* admissible window (including the kernel-sized one
/// with channel-granular tiling) plus the element-granular im2col mapping,
/// and returns the global minimum.  Because the element-granular im2col
/// cost never exceeds the channel-granular kernel-window cost (a channel
/// tile is a restricted row split), the optimum over this superset equals
/// the optimum Algorithm 1 reports -- the property test
/// `VwSdkMatchesExhaustiveOracle` relies on exactly that.
///
/// Intentionally the dumbest correct implementation: its value is being
/// obviously right, not fast.

#include "core/mapping_decision.h"

namespace vwsdk {

/// Brute-force oracle mapper (global minimum, im2col tie-break first).
class ExhaustiveMapper final : public Mapper {
 public:
  std::string name() const override { return "exhaustive"; }
  MappingDecision map(const ConvShape& shape,
                      const ArrayGeometry& geometry) const override;

  /// Evaluates all windows over `pool`, then reduces them in scan order;
  /// returns exactly map()'s decision.
  MappingDecision map_parallel(const ConvShape& shape,
                               const ArrayGeometry& geometry,
                               ThreadPool& pool) const override;

 private:
  MappingDecision map_impl(const ConvShape& shape,
                           const ArrayGeometry& geometry,
                           ThreadPool* pool) const;
};

}  // namespace vwsdk
