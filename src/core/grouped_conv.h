#pragma once

/// @file grouped_conv.h
/// Grouped and depthwise convolution support (extension, DESIGN.md §6).
///
/// A grouped convolution with G groups splits the channels into G
/// independent convolutions of IC/G -> OC/G channels over the same spatial
/// extent.  On a PIM array the groups cannot share columns (their outputs
/// mix otherwise), so each group is mapped independently and the layer
/// costs the sum of the group costs.  Every group has identical
/// dimensions, hence: layer cycles = G x cycles(sub-conv).
///
/// This covers the depthwise convolutions (G = IC, 1 channel per group) of
/// MobileNet-class networks -- a regime the paper does not evaluate but
/// its motivation (§III-A, small computable channel counts) makes
/// interesting: depthwise layers have IC_t demand 1, so the parallel
/// window can grow very large, and VW-SDK's advantage over im2col gets
/// *bigger*, not smaller.

#include "core/mapping_decision.h"

namespace vwsdk {

/// A grouped convolutional layer: `base` holds the FULL channel counts;
/// `groups` must divide both.
struct GroupedConvShape {
  ConvShape base{};
  Dim groups = 1;

  /// The dimensions of one group's sub-convolution.
  ConvShape group_shape() const;

  /// Throws InvalidArgument unless groups >= 1 and divides IC and OC.
  void validate() const;
};

/// A grouped layer's mapping: one (replicated) per-group decision and the
/// layer-level totals.
struct GroupedDecision {
  GroupedConvShape shape{};
  MappingDecision per_group{};  ///< mapping of one group's sub-conv
  Cycles total_cycles = 0;      ///< groups x per-group cycles

  std::string to_string() const;
};

/// Map a grouped convolution with any mapper (each group independently,
/// all groups identical).
GroupedDecision map_grouped(const Mapper& mapper,
                            const GroupedConvShape& shape,
                            const ArrayGeometry& geometry);

}  // namespace vwsdk
