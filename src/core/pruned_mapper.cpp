#include "core/pruned_mapper.h"

#include "core/mapper_registry.h"

namespace vwsdk {

MappingDecision PrunedVwSdkMapper::map(const MappingContext& context) const {
  return map_impl(context, nullptr);
}

MappingDecision PrunedVwSdkMapper::map_with_stats(
    const ConvShape& shape, const ArrayGeometry& geometry,
    PruneStats* stats) const {
  return map_impl(MappingContext{shape, geometry}, stats);
}

MappingDecision PrunedVwSdkMapper::map_impl(const MappingContext& context,
                                            PruneStats* stats) const {
  context.validate();
  const Objective& objective = context.scoring();
  const ConvShape& shape = context.shape;
  const ArrayGeometry& geometry = context.geometry;
  // Prune 3 compares raw cycle counts against the incumbent's score,
  // which is only sound when the score *is* the cycle count.
  const bool cycle_bound = objective.cycle_lower_bound_admissible();

  MappingDecision decision;
  decision.algorithm = name();
  decision.objective = objective.name();
  decision.shape = shape;
  decision.geometry = geometry;
  decision.cost = im2col_cost(shape, geometry);
  decision.score = objective.score(shape, geometry, decision.cost);

  for (Dim h = shape.kernel_h; h <= shape.padded_h(); h += shape.stride_h) {
    // Prune 1 (outer form): if even the narrowest window is row-
    // infeasible at this height, every taller height is as well.
    if (static_cast<Count>(shape.kernel_w) * h > geometry.rows) {
      break;
    }
    // Prune 2 (outer form): N_WP at the narrowest width is the height's
    // window count; once that alone exceeds the columns, taller heights
    // only grow it.
    const ParallelWindow narrowest{shape.kernel_w, h};
    if (windows_in_pw(shape, narrowest) > geometry.cols) {
      break;
    }
    for (Dim w = shape.kernel_w; w <= shape.padded_w();
         w += shape.stride_w) {
      if (w == shape.kernel_w && h == shape.kernel_h) {
        continue;  // im2col initialization covers the kernel window
      }
      const ParallelWindow pw{w, h};
      // Prune 1: wider windows only grow the area.
      if (pw.area() > geometry.rows) {
        if (stats != nullptr) {
          ++stats->row_breaks;
        }
        break;
      }
      // Prune 2: wider windows only grow N_WP.
      if (windows_in_pw(shape, pw) > geometry.cols) {
        if (stats != nullptr) {
          ++stats->col_breaks;
        }
        break;
      }
      // Prune 3: cycles >= N_PW; no improvement possible if the bound
      // already meets the incumbent.
      if (cycle_bound &&
          num_parallel_windows(shape, pw) >= decision.cost.total) {
        if (stats != nullptr) {
          ++stats->lb_skipped;
        }
        continue;
      }
      const CycleCost candidate = vw_cost(shape, geometry, pw);
      if (stats != nullptr) {
        ++stats->evaluated;
      }
      if (candidate.feasible) {
        const double candidate_score =
            objective.score(shape, geometry, candidate);
        if (objective.better(candidate_score, decision.score)) {
          decision.cost = candidate;
          decision.score = candidate_score;
        }
      }
    }
  }
  return decision;
}

namespace detail {

void register_pruned_mapper(MapperRegistry& registry) {
  registry.add(MapperInfo{
      "vw-sdk-pruned",
      {"pruned"},
      "Algorithm 1 with exactness-preserving search-space prunes",
      MapperCapabilities{/*objective_aware=*/true, /*parallel_search=*/false,
                         /*exhaustive=*/false, /*grouped=*/true},
      50,
      []() { return std::make_unique<PrunedVwSdkMapper>(); }});
}

}  // namespace detail

}  // namespace vwsdk
