#include "core/report.h"

#include "common/error.h"
#include "common/string_util.h"

namespace vwsdk {

namespace {

/// A layer's Table-I cell; grouped layers show the per-group mapping with
/// an "xG" replication suffix (the convention of core/grouped_conv.h).
std::string table_cell(const LayerMapping& lm) {
  std::string entry = lm.decision.table_entry();
  if (lm.layer.is_grouped()) {
    entry += cat(" x", lm.layer.groups);
  }
  return entry;
}

}  // namespace

TextTable render_table1(const NetworkMappingResult& first,
                        const NetworkMappingResult& second) {
  VWSDK_REQUIRE(first.layers.size() == second.layers.size(),
                "results cover different layer counts");
  TextTable table({"#", "Image (IxI)", "Kernel (KxKxICxOC)",
                   cat(first.algorithm, " (PWxICxOC)"),
                   cat(second.algorithm, " (PWxICtxOCt)")});
  for (std::size_t i = 0; i < first.layers.size(); ++i) {
    const ConvLayerDesc& layer = first.layers[i].layer;
    VWSDK_REQUIRE(layer == second.layers[i].layer,
                  "results cover different layers");
    table.add_row({std::to_string(i + 1),
                   cat(layer.ifm_w, "x", layer.ifm_h),
                   cat(layer.kernel_w, "x", layer.kernel_h, "x",
                       layer.in_channels, "x", layer.out_channels),
                   table_cell(first.layers[i]),
                   table_cell(second.layers[i])});
  }
  table.add_separator();
  table.add_row({"Total cycles", "", "", std::to_string(first.total_cycles()),
                 std::to_string(second.total_cycles())});
  return table;
}

TextTable render_layer_speedups(const NetworkComparison& comparison) {
  VWSDK_REQUIRE(!comparison.results.empty(), "empty comparison");
  const NetworkMappingResult& baseline = comparison.results.front();

  std::vector<std::string> headers{"layer"};
  for (const NetworkMappingResult& result : comparison.results) {
    headers.push_back(cat(result.algorithm, " speedup"));
  }
  TextTable table(headers);

  for (std::size_t li = 0; li < baseline.layers.size(); ++li) {
    std::vector<std::string> row{baseline.layers[li].layer.name};
    for (std::size_t mi = 0; mi < comparison.results.size(); ++mi) {
      row.push_back(format_fixed(
          comparison.layer_speedup(0, static_cast<Count>(mi),
                                   static_cast<Count>(li)),
          2));
    }
    table.add_row(std::move(row));
  }
  table.add_separator();
  std::vector<std::string> total_row{"total"};
  for (std::size_t mi = 0; mi < comparison.results.size(); ++mi) {
    total_row.push_back(
        format_fixed(comparison.speedup(0, static_cast<Count>(mi)), 2));
  }
  table.add_row(std::move(total_row));
  return table;
}

TextTable render_utilization(const NetworkComparison& comparison,
                             UtilizationConvention convention,
                             Count max_layers) {
  VWSDK_REQUIRE(!comparison.results.empty(), "empty comparison");
  const NetworkMappingResult& baseline = comparison.results.front();
  const Count layer_count =
      (max_layers < 0)
          ? static_cast<Count>(baseline.layers.size())
          : std::min<Count>(max_layers,
                            static_cast<Count>(baseline.layers.size()));

  std::vector<std::string> headers{"layer"};
  for (const NetworkMappingResult& result : comparison.results) {
    headers.push_back(cat(result.algorithm, " util %"));
  }
  TextTable table(headers);

  for (Count li = 0; li < layer_count; ++li) {
    const auto index = static_cast<std::size_t>(li);
    std::vector<std::string> row{baseline.layers[index].layer.name};
    for (const NetworkMappingResult& result : comparison.results) {
      const MappingDecision& decision = result.layers[index].decision;
      const double util = utilization(decision.shape, decision.geometry,
                                      decision.cost, convention);
      row.push_back(format_fixed(100.0 * util, 1));
    }
    table.add_row(std::move(row));
  }
  return table;
}

}  // namespace vwsdk
