#include "core/mapper_registry.h"

#include <algorithm>
#include <utility>

#include "common/error.h"
#include "common/string_util.h"

namespace vwsdk {

namespace detail {

// One registration anchor per built-in mapper, defined in the mapper's
// own .cpp next to its algorithm.  Referencing them here forces the
// linker to pull every mapper's translation unit out of the static
// library even when nothing else names its class.
void register_im2col_mapper(MapperRegistry& registry);
void register_smd_mapper(MapperRegistry& registry);
void register_sdk_mapper(MapperRegistry& registry);
void register_vwsdk_mapper(MapperRegistry& registry);
void register_pruned_mapper(MapperRegistry& registry);
void register_exhaustive_mapper(MapperRegistry& registry);
void register_bit_sliced_mapper(MapperRegistry& registry);

}  // namespace detail

MapperRegistry& MapperRegistry::instance() {
  // Thread-safe static-local init: the built-ins are registered exactly
  // once, before any caller (including a MapperRegistrar constructor
  // running during static init in another translation unit) sees the
  // registry.
  static MapperRegistry& registry = []() -> MapperRegistry& {
    static MapperRegistry built;
    detail::register_im2col_mapper(built);
    detail::register_smd_mapper(built);
    detail::register_sdk_mapper(built);
    detail::register_vwsdk_mapper(built);
    detail::register_pruned_mapper(built);
    detail::register_exhaustive_mapper(built);
    detail::register_bit_sliced_mapper(built);
    return built;
  }();
  return registry;
}

namespace {

std::string lookup_key(const std::string& name) {
  return to_lower(trim(name));
}

}  // namespace

void MapperRegistry::add(MapperInfo info) {
  VWSDK_REQUIRE(!trim(info.name).empty(), "mapper registration needs a name");
  VWSDK_REQUIRE(info.factory != nullptr,
                cat("mapper \"", info.name, "\" registered without a factory"));
  const MutexLock lock(mutex_);
  std::vector<std::string> keys{lookup_key(info.name)};
  for (const std::string& alias : info.aliases) {
    keys.push_back(lookup_key(alias));
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    VWSDK_REQUIRE(!keys[i].empty(),
                  cat("mapper \"", info.name, "\" has an empty alias"));
    VWSDK_REQUIRE(lookup_.find(keys[i]) == lookup_.end(),
                  cat("mapper name \"", keys[i],
                      "\" is already registered"));
    // Also reject duplicates within this registration (an alias
    // repeating the name, or a repeated alias) -- emplace would
    // silently dedupe and hide the registration bug.
    for (std::size_t j = 0; j < i; ++j) {
      VWSDK_REQUIRE(keys[j] != keys[i],
                    cat("mapper \"", info.name, "\" lists \"", keys[i],
                        "\" twice"));
    }
  }
  infos_.push_back(std::make_unique<MapperInfo>(std::move(info)));
  for (const std::string& key : keys) {
    lookup_.emplace(key, infos_.back().get());
  }
}

bool MapperRegistry::contains(const std::string& name) const {
  const MutexLock lock(mutex_);
  return lookup_.find(lookup_key(name)) != lookup_.end();
}

const MapperInfo& MapperRegistry::info(const std::string& name) const {
  const MutexLock lock(mutex_);
  const auto it = lookup_.find(lookup_key(name));
  if (it == lookup_.end()) {
    throw NotFound(cat("unknown mapper '", name,
                       "'; known: ", join(names_locked(), ", ")));
  }
  return *it->second;
}

std::unique_ptr<Mapper> MapperRegistry::create(const std::string& name) const {
  return info(name).factory();
}

std::vector<std::string> MapperRegistry::names() const {
  const MutexLock lock(mutex_);
  return names_locked();
}

std::string MapperRegistry::known_names() const {
  return join(names(), ", ");
}

Count MapperRegistry::size() const {
  const MutexLock lock(mutex_);
  return static_cast<Count>(infos_.size());
}

std::vector<std::string> MapperRegistry::names_locked() const {
  std::vector<const MapperInfo*> ordered;
  ordered.reserve(infos_.size());
  for (const auto& info : infos_) {
    ordered.push_back(info.get());
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const MapperInfo* a, const MapperInfo* b) {
              return a->sort_key != b->sort_key ? a->sort_key < b->sort_key
                                                : a->name < b->name;
            });
  std::vector<std::string> names;
  names.reserve(ordered.size());
  for (const MapperInfo* info : ordered) {
    names.push_back(info->name);
  }
  return names;
}

MapperRegistrar::MapperRegistrar(MapperInfo info) {
  MapperRegistry::instance().add(std::move(info));
}

}  // namespace vwsdk
