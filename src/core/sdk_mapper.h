#pragma once

/// @file sdk_mapper.h
/// The square-window SDK baseline algorithm (ref [2]), reconstructed.
///
/// The VW-SDK paper compares against "the existing SDK-based algorithm",
/// which duplicates *entire channels* of the kernel "in the unit of square
/// number" to form square parallel windows, and which "cannot form the
/// parallel window larger than the kernel [when] the entire channels
/// cannot be unrolled in the given PIM array" (§V-B).
///
/// Reconstruction (validated against every SDK row of Table I and both
/// published SDK totals, 114697 and 7240 -- see DESIGN.md §3.2): scan the
/// duplication factor γ = 1, 2, 3, ... giving the square window
/// PW = K + γ - 1, and keep the largest γ such that
///   (i)   all duplicated kernels fit the columns at once:
///         OC * γ² <= cols,
///   (ii)  forming the window does not increase the AR cycles over
///         im2col's: ceil(PW²*IC / rows) <= ceil(K²*IC / rows),
///   (iii) the window fits the (padded) IFM.
/// γ = 1 degenerates to im2col.  Under (i)+(ii) the cycle count is
/// monotonically non-increasing in γ, so "largest valid γ" is also the
/// cycle-minimal valid choice.
///
/// The mapper requires a square kernel (the baseline is defined for
/// square kernels only); non-square kernels fall back to im2col.

#include "core/mapping_decision.h"

namespace vwsdk {

/// The reconstructed SDK-based baseline algorithm of ref [2].  The γ
/// rule is the published algorithm (cycle-driven by construction), so
/// the context's objective only prices the result, it never changes γ.
class SdkMapper final : public Mapper {
 public:
  using Mapper::map;

  std::string name() const override { return "sdk"; }
  MappingDecision map(const MappingContext& context) const override;

  /// The chosen duplication factor γ (1 = im2col fallback); exposed for
  /// tests and the ablation bench.
  static Dim chosen_gamma(const ConvShape& shape,
                          const ArrayGeometry& geometry);
};

}  // namespace vwsdk
