#pragma once

/// @file pruned_mapper.h
/// A pruned variant of Algorithm 1 that returns the identical optimum
/// while visiting far fewer candidates (an engineering extension; the
/// paper's scan is already cheap, but a deployment flow optimizing
/// thousands of layers appreciates the ~10x).
///
/// Safe prunes, all preserving exactness (property-tested against
/// VwSdkMapper over a layer/array sweep):
///  1. Row-infeasibility horizon: for a fixed height h, once the window
///     area exceeds the array rows (IC_t = 0), every wider window is also
///     infeasible -> break the inner loop; if even width K_w is
///     row-infeasible at height h, every taller h is too -> stop.
///  2. Column-infeasibility horizon: N_WP grows with width, so once
///     N_WP > cols (OC_t = 0) wider windows stay infeasible -> break.
///  3. Lower-bound cut: cycles >= N_PW (AR, AC >= 1), and N_PW shrinks as
///     the window grows; evaluating the cheap N_PW before the full cost
///     skips candidates that cannot beat the incumbent.
///
/// Prunes 1 and 2 are feasibility facts, valid under every objective.
/// Prune 3 reasons about raw cycle counts, so it only fires when the
/// context's objective declares `cycle_lower_bound_admissible()`; under
/// energy/EDP the mapper degrades to the feasibility prunes and stays
/// exact.

#include "core/mapping_decision.h"

namespace vwsdk {

/// Statistics of one pruned search (for the perf bench and tests).
struct PruneStats {
  Count evaluated = 0;  ///< full cost evaluations performed
  Count lb_skipped = 0; ///< candidates cut by the N_PW lower bound
  Count row_breaks = 0; ///< inner loops ended by prune 1
  Count col_breaks = 0; ///< inner loops ended by prune 2
};

/// Exact-result pruned implementation of Algorithm 1.
class PrunedVwSdkMapper final : public Mapper {
 public:
  using Mapper::map;

  std::string name() const override { return "vw-sdk-pruned"; }
  MappingDecision map(const MappingContext& context) const override;

  /// As the two-argument map(), also reporting pruning statistics.
  MappingDecision map_with_stats(const ConvShape& shape,
                                 const ArrayGeometry& geometry,
                                 PruneStats* stats) const;

 private:
  MappingDecision map_impl(const MappingContext& context,
                           PruneStats* stats) const;
};

}  // namespace vwsdk
