#include "core/mapping_cache.h"

#include <optional>
#include <utility>

namespace vwsdk {

namespace {

void hash_combine(std::size_t& seed, std::size_t value) {
  // Boost's golden-ratio mixer; good enough for a lookup table.
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

}  // namespace

std::size_t MappingCache::KeyHash::operator()(
    const MappingCacheKey& key) const {
  std::size_t seed = std::hash<std::string>{}(key.mapper);
  hash_combine(seed, std::hash<std::string>{}(key.objective));
  const ConvShape& s = key.shape;
  for (const Dim dim :
       {s.ifm_w, s.ifm_h, s.kernel_w, s.kernel_h, s.in_channels,
        s.out_channels, s.stride_w, s.stride_h, s.pad_w, s.pad_h,
        key.geometry.rows, key.geometry.cols}) {
    hash_combine(seed, std::hash<Dim>{}(dim));
  }
  return seed;
}

MappingDecision MappingCache::get_or_compute(
    const MappingCacheKey& key,
    const std::function<MappingDecision()>& compute) {
  std::shared_future<MappingDecision> future;
  // Lazily constructed so the hit path never allocates promise state.
  std::optional<std::promise<MappingDecision>> promise;
  std::uint64_t owner_id = 0;
  {
    const MutexLock lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      future = it->second.future;
    } else {
      ++stats_.misses;
      promise.emplace();
      future = promise->get_future().share();
      owner_id = ++next_id_;
      entries_.emplace(key, Entry{future, owner_id});
    }
  }
  if (promise.has_value()) {
    try {
      promise->set_value(compute());
    } catch (...) {
      // Wake waiters with the error, then evict so the next request
      // retries instead of replaying a stale failure forever.  Only
      // evict our *own* entry: after a concurrent clear() the key may
      // already map to someone else's healthy in-flight compute.
      promise->set_exception(std::current_exception());
      const MutexLock lock(mutex_);
      const auto it = entries_.find(key);
      if (it != entries_.end() && it->second.id == owner_id) {
        entries_.erase(it);
      }
    }
  }
  return future.get();
}

MappingDecision MappingCache::map(const Mapper& mapper,
                                  const ConvShape& shape,
                                  const ArrayGeometry& geometry) {
  return map(mapper, MappingContext{shape, geometry});
}

MappingDecision MappingCache::map(const Mapper& mapper,
                                  const MappingContext& context) {
  // cache_key(), not name(): a custom-parameter EnergyObjective must not
  // share entries with the default-parameter singleton of the same name.
  return get_or_compute(
      MappingCacheKey{mapper.name(), context.shape, context.geometry,
                      context.scoring().cache_key()},
      [&]() { return mapper.map(context); });
}

MappingCacheStats MappingCache::stats() const {
  const MutexLock lock(mutex_);
  MappingCacheStats stats = stats_;
  stats.entries = static_cast<Count>(entries_.size());
  return stats;
}

Count MappingCache::size() const {
  const MutexLock lock(mutex_);
  return static_cast<Count>(entries_.size());
}

void MappingCache::clear() {
  const MutexLock lock(mutex_);
  entries_.clear();
}

}  // namespace vwsdk
