#pragma once

/// @file network_optimizer.h
/// Runs a mapping algorithm over every layer of a network and aggregates
/// the results; also compares several algorithms on the same network (the
/// computation behind Table I and Fig. 8).
///
/// The optimizer is a concurrent, memoized search engine:
///  * layer searches fan out across a fixed-size ThreadPool (or, with
///    `intra_layer`, each layer's window candidates do);
///  * an optional MappingCache deduplicates repeated (shape, array,
///    algorithm) searches -- real networks repeat shapes heavily;
///  * results are bit-identical to the sequential scan in any mode: the
///    layer order, each layer's decision, and each mapper's SearchTrace
///    are all reduced in deterministic order, never completion order.
///
/// Thread count resolution: `OptimizerOptions::threads` when positive,
/// else the `VWSDK_THREADS` environment variable, else the hardware
/// concurrency (see ThreadPool::default_thread_count).

#include <string>
#include <vector>

#include "core/mapping_cache.h"
#include "core/mapping_decision.h"
#include "nn/network.h"

namespace vwsdk {

class ThreadPool;

/// One layer's mapping inside a network-level result.
///
/// For a grouped layer (layer.groups > 1) `decision` describes ONE group's
/// independent sub-convolution (IC/G -> OC/G); the groups are identical
/// and cannot share crossbar columns, so the layer costs G times the
/// per-group cycles (see core/grouped_conv.h).  `cycles()` is the
/// layer-level total either way.
struct LayerMapping {
  ConvLayerDesc layer{};
  MappingDecision decision{};

  /// Layer-level computing cycles: groups x per-group decision cycles.
  Cycles cycles() const;

  /// Layer-level objective score: groups x per-group decision score
  /// (the groups are identical, so cycles and energy both scale
  /// linearly; for EDP this is the sum of the groups' products, a
  /// consistent search metric even though it is not the layer's literal
  /// EDP).
  double score() const;
};

/// A mapping algorithm's result over a whole network.
struct NetworkMappingResult {
  std::string network_name;
  std::string algorithm;
  std::string objective;  ///< scoring objective the layers were mapped under
  ArrayGeometry geometry{};
  std::vector<LayerMapping> layers;

  /// Sum of per-layer computing cycles (the paper's "Total cycles").
  Cycles total_cycles() const;

  /// Sum of per-layer objective scores (equals total_cycles() under the
  /// default cycles objective).
  double total_score() const;

  /// Cycles of layer `index`.
  Cycles layer_cycles(Count index) const;
};

/// How optimize_network schedules its work.
struct OptimizerOptions {
  /// Worker count; <= 0 resolves via VWSDK_THREADS, then the hardware
  /// concurrency.  1 runs fully sequentially (no pool is created).
  int threads = 0;

  /// Borrow an existing pool instead of creating one; overrides
  /// `threads`.  The caller keeps ownership.
  ThreadPool* pool = nullptr;

  /// Memoize layer searches here; distinct (mapper, shape, geometry)
  /// triples are searched once.  The caller keeps ownership, so one
  /// cache can span many optimize_network / compare_mappers calls.
  MappingCache* cache = nullptr;

  /// false (default): map layers concurrently, each layer's search
  /// sequential.  true: map layers in order, parallelizing each layer's
  /// candidate evaluation through the context's pool -- better for
  /// few-layer networks with large search spaces.
  bool intra_layer = false;

  /// Search objective every layer's candidates are scored under;
  /// nullptr means cycles_objective() (the paper's search, bit-exact).
  /// The caller keeps ownership.
  const Objective* objective = nullptr;
};

/// Map every layer of `network` with `mapper` on `geometry` using the
/// default options (auto thread count, no cache).
NetworkMappingResult optimize_network(const Mapper& mapper,
                                      const Network& network,
                                      const ArrayGeometry& geometry);

/// As above with explicit scheduling/memoization options.
NetworkMappingResult optimize_network(const Mapper& mapper,
                                      const Network& network,
                                      const ArrayGeometry& geometry,
                                      const OptimizerOptions& options);

/// Results of several mappers on the same network/array, with speedups.
struct NetworkComparison {
  std::vector<NetworkMappingResult> results;  ///< one per mapper, in order

  /// Speedup of algorithm `target` relative to `baseline` (total cycles
  /// ratio); indices into `results`.
  double speedup(Count baseline, Count target) const;

  /// Per-layer speedup of `target` vs `baseline` for layer `layer_index`.
  double layer_speedup(Count baseline, Count target,
                       Count layer_index) const;
};

/// Run each mapper in `mapper_names` (resolved through the
/// MapperRegistry, see core/mapper_registry.h) over the network.
NetworkComparison compare_mappers(const std::vector<std::string>& mapper_names,
                                  const Network& network,
                                  const ArrayGeometry& geometry);

/// As above with explicit options; the pool (given or created) is shared
/// across all mappers, as is any cache.
NetworkComparison compare_mappers(const std::vector<std::string>& mapper_names,
                                  const Network& network,
                                  const ArrayGeometry& geometry,
                                  const OptimizerOptions& options);

}  // namespace vwsdk
