#pragma once

/// @file network_optimizer.h
/// Runs a mapping algorithm over every layer of a network and aggregates
/// the results; also compares several algorithms on the same network (the
/// computation behind Table I and Fig. 8).

#include <string>
#include <vector>

#include "core/mapping_decision.h"
#include "nn/network.h"

namespace vwsdk {

/// One layer's mapping inside a network-level result.
struct LayerMapping {
  ConvLayerDesc layer{};
  MappingDecision decision{};
};

/// A mapping algorithm's result over a whole network.
struct NetworkMappingResult {
  std::string network_name;
  std::string algorithm;
  ArrayGeometry geometry{};
  std::vector<LayerMapping> layers;

  /// Sum of per-layer computing cycles (the paper's "Total cycles").
  Cycles total_cycles() const;

  /// Cycles of layer `index`.
  Cycles layer_cycles(Count index) const;
};

/// Map every layer of `network` with `mapper` on `geometry`.
NetworkMappingResult optimize_network(const Mapper& mapper,
                                      const Network& network,
                                      const ArrayGeometry& geometry);

/// Results of several mappers on the same network/array, with speedups.
struct NetworkComparison {
  std::vector<NetworkMappingResult> results;  ///< one per mapper, in order

  /// Speedup of algorithm `target` relative to `baseline` (total cycles
  /// ratio); indices into `results`.
  double speedup(Count baseline, Count target) const;

  /// Per-layer speedup of `target` vs `baseline` for layer `layer_index`.
  double layer_speedup(Count baseline, Count target,
                       Count layer_index) const;
};

/// Run each mapper in `mapper_names` (see make_mapper) over the network.
NetworkComparison compare_mappers(const std::vector<std::string>& mapper_names,
                                  const Network& network,
                                  const ArrayGeometry& geometry);

}  // namespace vwsdk
