#pragma once

/// @file mapping_decision.h
/// The result of running a mapping algorithm on one layer, and the common
/// interface all mapping algorithms implement.

#include <memory>
#include <string>

#include "mapping/cost_model.h"
#include "pim/array_geometry.h"

namespace vwsdk {

class ThreadPool;

/// A mapper's chosen mapping for one (layer, array) pair.
struct MappingDecision {
  std::string algorithm;    ///< producer name ("im2col", "sdk", "vw-sdk", ...)
  ConvShape shape{};        ///< the layer
  ArrayGeometry geometry{}; ///< the array
  CycleCost cost{};         ///< full cycle breakdown of the chosen mapping

  /// True if the chosen window is just the kernel (no SDK duplication) --
  /// the "cannot form a parallel window larger than the kernel" regime the
  /// paper discusses for SDK beyond layer 3.
  bool is_im2col_fallback() const;

  /// Table-I-style cell: "PW_w x PW_h x IC_t x OC_t".  Matches the paper's
  /// printing convention: fallback rows print the full K x K x IC x OC.
  std::string table_entry() const;

  /// One-line description.
  std::string to_string() const;

  /// Field-wise equality; the parallel-determinism tests rely on the
  /// threaded optimizer producing *identical* decisions, not merely
  /// equal totals.
  bool operator==(const MappingDecision&) const = default;
};

/// Interface of a mapping algorithm.
class Mapper {
 public:
  virtual ~Mapper() = default;

  /// Short stable identifier ("im2col", "smd", "sdk", "vw-sdk", ...).
  virtual std::string name() const = 0;

  /// Choose a mapping for `shape` on `geometry`.
  virtual MappingDecision map(const ConvShape& shape,
                              const ArrayGeometry& geometry) const = 0;

  /// As map(), free to spread candidate evaluation over `pool`.  The
  /// result must be identical to map()'s -- parallelism may change the
  /// wall time, never the decision.  The default ignores the pool;
  /// search-based mappers override it.  Must not be called from a task
  /// already running on `pool` (see thread_pool.h).
  virtual MappingDecision map_parallel(const ConvShape& shape,
                                       const ArrayGeometry& geometry,
                                       ThreadPool& pool) const {
    (void)pool;
    return map(shape, geometry);
  }
};

/// Construct any registered mapper by name; throws NotFound.
/// Known names: "im2col", "smd", "sdk", "vw-sdk", "vw-sdk-pruned",
/// "exhaustive".
std::unique_ptr<Mapper> make_mapper(const std::string& name);

}  // namespace vwsdk
