#pragma once

/// @file mapping_decision.h
/// The result of running a mapping algorithm on one layer, and the common
/// interface all mapping algorithms implement.

#include <memory>
#include <string>

#include "core/mapping_context.h"
#include "mapping/cost_model.h"
#include "pim/array_geometry.h"

namespace vwsdk {

class ThreadPool;

/// A mapper's chosen mapping for one (layer, array) pair.
struct MappingDecision {
  std::string algorithm;    ///< producer name ("im2col", "sdk", "vw-sdk", ...)
  std::string objective;    ///< scoring objective name ("cycles", "energy", ...)
  double score = 0.0;       ///< the chosen mapping's score under `objective`
  ConvShape shape{};        ///< the layer
  ArrayGeometry geometry{}; ///< the array
  CycleCost cost{};         ///< full cycle breakdown of the chosen mapping

  /// True if the chosen window is just the kernel (no SDK duplication) --
  /// the "cannot form a parallel window larger than the kernel" regime the
  /// paper discusses for SDK beyond layer 3.
  bool is_im2col_fallback() const;

  /// Table-I-style cell: "PW_w x PW_h x IC_t x OC_t".  Matches the paper's
  /// printing convention: fallback rows print the full K x K x IC x OC.
  std::string table_entry() const;

  /// One-line description.  For the cycles objective this is unchanged
  /// from the pre-objective API; other objectives append their score.
  std::string to_string() const;

  /// Field-wise equality; the parallel-determinism tests rely on the
  /// threaded optimizer producing *identical* decisions, not merely
  /// equal totals.
  bool operator==(const MappingDecision&) const = default;
};

/// Interface of a mapping algorithm.
///
/// The primary entry point is context-based: `map(const MappingContext&)`
/// receives the layer, the array, the scoring objective, and (for search
/// mappers) an optional pool and trace.  The two-argument `map` and
/// `map_parallel` are non-virtual compatibility shims equivalent to a
/// default context (cycles objective) -- they are what the pre-context
/// API looked like, and every historical call site still works.
class Mapper {
 public:
  virtual ~Mapper() = default;

  /// Short stable identifier ("im2col", "smd", "sdk", "vw-sdk", ...).
  virtual std::string name() const = 0;

  /// Choose a mapping under `context`.  Implementations must score
  /// candidates through `context.scoring()` (search mappers) and may
  /// fan candidate evaluation out over `context.pool`; the decision is
  /// identical at any pool size.
  virtual MappingDecision map(const MappingContext& context) const = 0;

  /// Compatibility shim: map `shape` on `geometry` under the default
  /// context (cycles objective, sequential).
  MappingDecision map(const ConvShape& shape,
                      const ArrayGeometry& geometry) const;

  /// Compatibility shim: as the two-argument map(), free to spread
  /// candidate evaluation over `pool`.  The result is identical to
  /// map()'s -- parallelism may change the wall time, never the
  /// decision.  Must not be called from a task already running on
  /// `pool` (see thread_pool.h).
  MappingDecision map_parallel(const ConvShape& shape,
                               const ArrayGeometry& geometry,
                               ThreadPool& pool) const;
};

/// Construct any registered mapper by name or alias (case-insensitive);
/// throws NotFound listing the known names.  Thin shim over
/// MapperRegistry::instance() (core/mapper_registry.h), which is the
/// single source of mapper names.
std::unique_ptr<Mapper> make_mapper(const std::string& name);

}  // namespace vwsdk
