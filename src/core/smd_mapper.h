#pragma once

/// @file smd_mapper.h
/// Sub-matrix duplication mapper (ref [6]; Fig. 2(b) of the paper):
/// duplicate the whole im2col matrix block-diagonally to compute several
/// independent windows per cycle.  Degenerates to im2col when even two
/// copies do not fit.

#include "core/mapping_decision.h"

namespace vwsdk {

/// Baseline mapper implementing sub-matrix duplication.  The mapping is
/// fixed (maximal duplication), so the context's objective only prices
/// it, it never changes the choice.
class SmdMapper final : public Mapper {
 public:
  using Mapper::map;

  std::string name() const override { return "smd"; }
  MappingDecision map(const MappingContext& context) const override;
};

}  // namespace vwsdk
