#include "core/bit_sliced_mapper.h"

#include "common/error.h"
#include "common/string_util.h"
#include "core/mapper_registry.h"

namespace vwsdk {

BitSlicedVwSdkMapper::BitSlicedVwSdkMapper(BitSlicingConfig config)
    : config_(config) {
  config_.validate();
}

MappingDecision BitSlicedVwSdkMapper::map(
    const MappingContext& context) const {
  context.validate();
  const Objective& objective = context.scoring();
  // Energy/EDP scoring runs the analytic activity model, which does not
  // know about slicing: a sliced cost's AC accounting breaks its
  // invariants (negative residual columns).  With the degenerate
  // 1-slice/1-step config every cost equals the plain model's, so
  // objective scoring is sound; otherwise refuse loudly rather than
  // return a wrong energy figure.
  VWSDK_REQUIRE(objective.cycle_lower_bound_admissible() ||
                    (config_.slices() == 1 && config_.input_steps() == 1),
                cat("vw-sdk-bitsliced can score the '", objective.name(),
                    "' objective only with the default 1-slice/1-step "
                    "config (the activity model is slicing-unaware)"));
  const ConvShape& shape = context.shape;
  const ArrayGeometry& geometry = context.geometry;

  MappingDecision decision;
  decision.algorithm = name();
  decision.objective = objective.name();
  decision.shape = shape;
  decision.geometry = geometry;
  decision.cost = im2col_cost_bitsliced(shape, geometry, config_);

  for (Dim h = shape.kernel_h; h <= shape.padded_h(); h += shape.stride_h) {
    for (Dim w = shape.kernel_w; w <= shape.padded_w();
         w += shape.stride_w) {
      if (w == shape.kernel_w && h == shape.kernel_h) {
        continue;
      }
      const CycleCost candidate =
          vw_cost_bitsliced(shape, geometry, {w, h}, config_);
      if (candidate.feasible && decision.cost.total > candidate.total) {
        decision.cost = candidate;
      }
    }
  }
  decision.score = objective.score(shape, geometry, decision.cost);
  return decision;
}

namespace detail {

void register_bit_sliced_mapper(MapperRegistry& registry) {
  registry.add(MapperInfo{
      "vw-sdk-bitsliced",
      {"bitsliced"},
      "Algorithm 1 with bit-slicing-aware costs (default 8-bit config)",
      MapperCapabilities{},
      70,
      []() { return std::make_unique<BitSlicedVwSdkMapper>(); }});
}

}  // namespace detail

}  // namespace vwsdk
