#include "core/bit_sliced_mapper.h"

namespace vwsdk {

BitSlicedVwSdkMapper::BitSlicedVwSdkMapper(BitSlicingConfig config)
    : config_(config) {
  config_.validate();
}

MappingDecision BitSlicedVwSdkMapper::map(
    const ConvShape& shape, const ArrayGeometry& geometry) const {
  shape.validate();
  geometry.validate();

  MappingDecision decision;
  decision.algorithm = name();
  decision.shape = shape;
  decision.geometry = geometry;
  decision.cost = im2col_cost_bitsliced(shape, geometry, config_);

  for (Dim h = shape.kernel_h; h <= shape.padded_h(); h += shape.stride_h) {
    for (Dim w = shape.kernel_w; w <= shape.padded_w();
         w += shape.stride_w) {
      if (w == shape.kernel_w && h == shape.kernel_h) {
        continue;
      }
      const CycleCost candidate =
          vw_cost_bitsliced(shape, geometry, {w, h}, config_);
      if (candidate.feasible && decision.cost.total > candidate.total) {
        decision.cost = candidate;
      }
    }
  }
  return decision;
}

}  // namespace vwsdk
