#include "core/im2col_mapper.h"

#include "core/mapper_registry.h"

namespace vwsdk {

MappingDecision Im2colMapper::map(const MappingContext& context) const {
  context.validate();
  const Objective& objective = context.scoring();
  MappingDecision decision;
  decision.algorithm = name();
  decision.objective = objective.name();
  decision.shape = context.shape;
  decision.geometry = context.geometry;
  decision.cost = im2col_cost(context.shape, context.geometry);
  decision.score =
      objective.score(context.shape, context.geometry, decision.cost);
  return decision;
}

namespace detail {

void register_im2col_mapper(MapperRegistry& registry) {
  registry.add(MapperInfo{
      "im2col",
      {},
      "one kernel window per cycle (ref [4], the paper's baseline)",
      MapperCapabilities{},
      10,
      []() { return std::make_unique<Im2colMapper>(); }});
}

}  // namespace detail

}  // namespace vwsdk
