#include "core/im2col_mapper.h"

namespace vwsdk {

MappingDecision Im2colMapper::map(const ConvShape& shape,
                                  const ArrayGeometry& geometry) const {
  MappingDecision decision;
  decision.algorithm = name();
  decision.shape = shape;
  decision.geometry = geometry;
  decision.cost = im2col_cost(shape, geometry);
  return decision;
}

}  // namespace vwsdk
