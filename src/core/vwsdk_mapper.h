#pragma once

/// @file vwsdk_mapper.h
/// VW-SDK: the paper's Algorithm 1.
///
/// Initialize the incumbent with the im2col mapping, then scan every
/// parallel-window shape (PW_w, PW_h) with PW_h = K_h .. I_h (outer loop)
/// and PW_w = K_w .. I_w (inner loop), skipping (K_w, K_h) itself (that is
/// the im2col initialization), evaluating the channel-tiled cost of
/// Eq. (8) and keeping the *first* strict minimum in scan order.
///
/// The first-minimum tie-break is observable in the paper's own results:
/// VGG-13 conv5 reports a 4x3 window although 4x4 ties it at 5832 cycles;
/// 4x3 is visited first.  Our tests pin this behaviour.
///
/// Stride extension: candidate extents advance in stride steps so every
/// candidate is admissible; with stride 1 this is exactly Algorithm 1.

#include "core/mapping_decision.h"
#include "core/search_trace.h"

namespace vwsdk {

/// The proposed variable-window SDK mapping algorithm.
class VwSdkMapper final : public Mapper {
 public:
  std::string name() const override { return "vw-sdk"; }

  MappingDecision map(const ConvShape& shape,
                      const ArrayGeometry& geometry) const override;

  /// Evaluates the window candidates over `pool`, then reduces them in
  /// scan order; returns exactly map()'s decision.
  MappingDecision map_parallel(const ConvShape& shape,
                               const ArrayGeometry& geometry,
                               ThreadPool& pool) const override;

  /// As map(), optionally recording every candidate into `trace` (pass
  /// nullptr to skip recording) and optionally evaluating candidates
  /// over `pool`.  The trace is identical either way: candidates are
  /// recorded during the sequential scan-order reduction, never in
  /// completion order.
  MappingDecision map_traced(const ConvShape& shape,
                             const ArrayGeometry& geometry,
                             SearchTrace* trace,
                             ThreadPool* pool = nullptr) const;
};

}  // namespace vwsdk
