#pragma once

/// @file vwsdk_mapper.h
/// VW-SDK: the paper's Algorithm 1, generalized over search objectives.
///
/// Initialize the incumbent with the im2col mapping, then scan every
/// parallel-window shape (PW_w, PW_h) with PW_h = K_h .. I_h (outer loop)
/// and PW_w = K_w .. I_w (inner loop), skipping (K_w, K_h) itself (that is
/// the im2col initialization), evaluating the channel-tiled cost of
/// Eq. (8) and keeping the *first* candidate strictly better under the
/// context's objective.  With the default cycles objective this is
/// exactly the paper's minimum-cycles scan, bit for bit.
///
/// The first-minimum tie-break is observable in the paper's own results:
/// VGG-13 conv5 reports a 4x3 window although 4x4 ties it at 5832 cycles;
/// 4x3 is visited first.  Our tests pin this behaviour.
///
/// Stride extension: candidate extents advance in stride steps so every
/// candidate is admissible; with stride 1 this is exactly Algorithm 1.

#include "core/mapping_decision.h"
#include "core/search_trace.h"

namespace vwsdk {

/// The proposed variable-window SDK mapping algorithm.
class VwSdkMapper final : public Mapper {
 public:
  using Mapper::map;

  std::string name() const override { return "vw-sdk"; }

  /// Algorithm 1 under `context`: candidates are scored by
  /// `context.scoring()`, optionally evaluated over `context.pool`
  /// (costs may be *computed* out of order; the reduction is always
  /// sequential in scan order, so the first-minimum tie-break and the
  /// recorded `context.trace` are identical to the single-threaded
  /// scan), and every candidate is recorded into `context.trace` when
  /// one is given.
  MappingDecision map(const MappingContext& context) const override;

  /// Compatibility shim: as the two-argument map(), recording every
  /// candidate into `trace` (pass nullptr to skip recording) and
  /// optionally evaluating candidates over `pool`.
  MappingDecision map_traced(const ConvShape& shape,
                             const ArrayGeometry& geometry,
                             SearchTrace* trace,
                             ThreadPool* pool = nullptr) const;
};

}  // namespace vwsdk
