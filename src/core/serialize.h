#pragma once

/// @file serialize.h
/// Machine-readable export of mapping results: CSV for spreadsheets and
/// replotting, a minimal JSON emitter for tooling.  (Import is limited to
/// the CSV parser in common/csv.h; the library itself never needs to read
/// results back.)

#include <iosfwd>
#include <string>

#include "core/network_optimizer.h"

namespace vwsdk {

/// One CSV row per layer:
/// network,algorithm,array,layer,image,kernel,ic,oc,window,ic_t,oc_t,
/// n_pw,ar,ac,cycles
void write_result_csv(std::ostream& os, const NetworkMappingResult& result);

/// All algorithms side by side, one CSV row per (layer, algorithm), with
/// a speedup column relative to the comparison's first result.
void write_comparison_csv(std::ostream& os,
                          const NetworkComparison& comparison);

/// Compact JSON object for one decision, e.g.
/// {"algorithm":"vw-sdk","window":"4x3","ic_t":42,"oc_t":256,
///  "n_parallel_windows":1458,"ar":4,"ac":1,"cycles":5832}.
std::string to_json(const MappingDecision& decision);

/// JSON array of per-layer decisions plus the total, for one result.
std::string to_json(const NetworkMappingResult& result);

}  // namespace vwsdk
