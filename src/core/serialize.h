#pragma once

/// @file serialize.h
/// Machine-readable export of mapping results: CSV for spreadsheets and
/// replotting, a minimal JSON emitter for tooling, and network-spec
/// export (the inverse of the loaders in nn/network_spec.h, so any
/// in-memory network can be saved, edited, and re-run without
/// recompiling).  All formats are documented in docs/FORMATS.md.

#include <iosfwd>
#include <string>

#include "core/mapper_registry.h"
#include "core/network_optimizer.h"
#include "sim/chip_allocator.h"
#include "sim/traffic.h"
#include "sim/verifier.h"

namespace vwsdk {

/// One CSV row per layer:
/// network,algorithm,array,layer,image,kernel,ic,oc,groups,window,ic_t,
/// oc_t,n_pw,ar,ac,cycles,objective,score
void write_result_csv(std::ostream& os, const NetworkMappingResult& result);

/// All algorithms side by side, one CSV row per (layer, algorithm), with
/// a speedup column relative to the comparison's first result.
void write_comparison_csv(std::ostream& os,
                          const NetworkComparison& comparison);

/// A whole sweep (one comparison per network x array point) as a single
/// CSV stream: one header, then every (network, array, algorithm, layer)
/// row with its speedup vs. that point's first algorithm.
void write_sweep_csv(std::ostream& os,
                     const std::vector<NetworkComparison>& sweep);

/// Compact JSON object for one decision, e.g.
/// {"algorithm":"vw-sdk","window":"4x3","ic_t":42,"oc_t":256,
///  "n_parallel_windows":1458,"ar":4,"ac":1,"cycles":5832,
///  "objective":"cycles","score":5832.0000,...}.
std::string to_json(const MappingDecision& decision);

/// JSON array of per-layer decisions plus the total, for one result.
std::string to_json(const NetworkMappingResult& result);

/// JSON object for a whole comparison: results side by side plus total
/// speedups of each algorithm vs. the first.
std::string to_json(const NetworkComparison& comparison);

/// One CSV row per (chip, layer) of a feasible chip plan:
/// network,algorithm,objective,array,arrays_per_chip,chip,layer,groups,
/// tiles,arrays,serial_cycles,makespan,score,interval,fill_latency,
/// speedup,balance (the last four are plan-level, repeated on every
/// row).  Throws InvalidArgument on an infeasible plan -- there is no
/// row schema for "no plan exists"; check `feasible` (or use the JSON
/// form, which carries the reason) first.
void write_chip_csv(std::ostream& os, const ChipPlan& plan);

/// JSON object for a chip plan: identity + per-chip layer allocations +
/// plan-level interval/fill/speedup/balance and the `batch`-inference
/// latency model.  Infeasible plans serialize as
/// {"feasible":false,"reason":...} with the identity fields -- explicit,
/// never zeroed metrics.
std::string to_json(const ChipPlan& plan, Count batch = 1);

/// One CSV row per (network, replica, chip) of a traffic report:
/// network,algorithm,objective,array,arrays_per_chip,replica,chip,busy,
/// utilization,queue_peak,batches plus the network-level tallies
/// (interval, fill_latency, arrivals, completions, rejected, in_flight,
/// offered, sustained, p50, p95, p99, p999), repeated on every row of
/// that network.
void write_traffic_csv(std::ostream& os, const TrafficReport& report);

/// JSON object for a traffic report: simulation identity (seed, source,
/// rate, duration, batching knobs), one entry per network with its
/// throughput/latency spectrum and per-chip utilization, and the
/// farm-wide conservation tallies.  The payload `vwsdk traffic --format
/// json` prints and the serve `traffic` op returns.
std::string to_json(const TrafficReport& report);

/// JSON object for a capacity-planning answer: the SLO, the smallest
/// replica/chip count meeting it, the failing count-1 proof, and the
/// full traffic report at the chosen count under "report".  The payload
/// `vwsdk traffic --slo-p99 --format json` prints.
std::string to_json(const CapacityResult& result);

/// JSON object for a network verification: identity (network,
/// algorithm, backend, array, seed), one entry per layer with its
/// decision and simulator-vs-reference outcome, and the overall
/// `all_verified` verdict.  The payload `vwsdk verify --format json`
/// prints and the serve `verify` op returns.
std::string to_json(const NetworkVerifyResult& result);

/// JSON object listing a registry's mappers -- name, aliases,
/// description, capability flags -- in the registry's canonical order.
/// The payload `vwsdk mappers --format json` prints and the serve
/// `mappers` op returns.
std::string to_json(const MapperRegistry& registry);

/// Network-spec export, the JSON format parsed by
/// parse_network_spec_json (nn/network_spec.h).  `array` becomes the
/// spec's geometry hint when non-empty.  Round-tripping through the
/// parser reproduces the network's mapping decisions exactly.
std::string to_spec_json(const Network& network,
                         const std::string& array = "");

/// Network-spec export in the CSV format parsed by
/// parse_network_spec_csv.
std::string to_spec_csv(const Network& network,
                        const std::string& array = "");

}  // namespace vwsdk
