#pragma once

/// @file mapping_cache.h
/// Thread-safe memoization of mapping searches, keyed by
/// (mapper id, ConvShape, ArrayGeometry, objective).
///
/// Real networks repeat conv shapes heavily (VGG-16's 13 conv layers
/// collapse to 9 distinct shapes), so the network optimizer searches each
/// distinct (shape, array, algorithm) triple once and replays the
/// decision everywhere else.
///
/// Concurrency model: *single-flight*.  The first thread to request a key
/// computes it; concurrent requesters for the same key block on a shared
/// future instead of duplicating the search.  This keeps the hit/miss
/// statistics deterministic -- misses always equal the number of distinct
/// keys, regardless of how layers race -- which the determinism tests
/// pin down.  A compute that throws propagates to every waiter and is
/// evicted, so a later request retries rather than replaying the error.

#include <cstdint>
#include <functional>
#include <future>
#include <string>
#include <unordered_map>

#include "common/mutex.h"
#include "core/mapping_decision.h"

namespace vwsdk {

/// Cache key: one mapping search.  The objective is part of the key --
/// the same (mapper, shape, array) triple can legitimately map to
/// different windows under cycles and under energy, and mixing them
/// would silently serve one objective's optimum to the other.
struct MappingCacheKey {
  std::string mapper;       ///< Mapper::name()
  ConvShape shape{};        ///< the layer
  ArrayGeometry geometry{}; ///< the array
  /// Objective::cache_key() -- the name plus, for parameterized
  /// objectives, their parameters, so e.g. two EnergyObjectives with
  /// different EnergyParams never share an entry.
  std::string objective = "cycles";

  bool operator==(const MappingCacheKey&) const = default;
};

/// One consistent snapshot of a cache's counters, taken under a single
/// lock acquisition -- `hits`/`misses` are lifetime-monotonic,
/// `entries` is instantaneous, and the three are mutually consistent
/// (reading them through separate calls could interleave a concurrent
/// insert between the reads).
struct MappingCacheStats {
  Count hits = 0;    ///< requests served from a present or in-flight entry
  Count misses = 0;  ///< requests that triggered a compute
  Count entries = 0; ///< cached (completed or in-flight) entries right now
};

/// Thread-safe single-flight memoization of Mapper::map results.
class MappingCache {
 public:
  MappingCache() = default;
  MappingCache(const MappingCache&) = delete;
  MappingCache& operator=(const MappingCache&) = delete;

  /// The decision for `key`, computing it with `compute` on a miss.
  /// Concurrent callers with the same key share one compute.  The
  /// compute itself runs *outside* the cache mutex (only the entry
  /// bookkeeping is locked), so a slow search never blocks lookups of
  /// other keys.
  MappingDecision get_or_compute(
      const MappingCacheKey& key,
      const std::function<MappingDecision()>& compute)
      VWSDK_EXCLUDES(mutex_);

  /// Convenience: memoized `mapper.map(shape, geometry)` under the
  /// default context (cycles objective).
  MappingDecision map(const Mapper& mapper, const ConvShape& shape,
                      const ArrayGeometry& geometry);

  /// Convenience: memoized `mapper.map(context)`, keyed by the
  /// context's shape, geometry, and objective.  The context's own
  /// `cache` field is ignored (this cache serves the request).
  MappingDecision map(const Mapper& mapper, const MappingContext& context);

  /// One consistent counter snapshot; hits + misses equals requests
  /// served.
  MappingCacheStats stats() const VWSDK_EXCLUDES(mutex_);

  /// Number of cached (completed or in-flight) entries.
  Count size() const VWSDK_EXCLUDES(mutex_);

  /// Drop every entry; statistics keep accumulating.
  void clear() VWSDK_EXCLUDES(mutex_);

 private:
  struct KeyHash {
    std::size_t operator()(const MappingCacheKey& key) const;
  };

  /// The id lets a failing owner evict exactly its own entry: after a
  /// concurrent clear() plus re-insert, the key maps to a *different*
  /// in-flight compute that must survive the owner's cleanup.
  struct Entry {
    std::shared_future<MappingDecision> future;
    std::uint64_t id = 0;
  };

  mutable Mutex mutex_;
  std::unordered_map<MappingCacheKey, Entry, KeyHash> entries_
      VWSDK_GUARDED_BY(mutex_);
  MappingCacheStats stats_ VWSDK_GUARDED_BY(mutex_);
  std::uint64_t next_id_ VWSDK_GUARDED_BY(mutex_) = 0;
};

}  // namespace vwsdk
