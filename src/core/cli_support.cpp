#include "core/cli_support.h"

#include <algorithm>
#include <exception>
#include <iostream>

#include "common/error.h"
#include "common/string_util.h"
#include "core/mapper_registry.h"
#include "tensor/exec_backend.h"

namespace vwsdk {

void add_shape_options(ArgParser& args, Dim image, Dim kernel,
                       Dim in_channels, Dim out_channels) {
  args.add_int_option("image", image, "IFM width/height");
  args.add_int_option("kernel", kernel, "kernel width/height");
  args.add_int_option("ic", in_channels, "input channels");
  args.add_int_option("oc", out_channels, "output channels");
}

ConvShape shape_from_args(const ArgParser& args) {
  return ConvShape::square(dim_in_range(args, "image", 1),
                           dim_in_range(args, "kernel", 1),
                           dim_in_range(args, "ic", 1),
                           dim_in_range(args, "oc", 1));
}

void add_array_option(ArgParser& args,
                      const std::string& default_geometry) {
  args.add_option("array", default_geometry, "PIM array geometry, RxC");
}

ArrayGeometry array_from_args(const ArgParser& args) {
  return parse_geometry(args.get("array"));
}

void add_mappers_option(ArgParser& args) {
  args.add_option("mappers", "im2col,smd,sdk,vw-sdk",
                  cat("comma-separated mapping algorithms (",
                      MapperRegistry::instance().known_names(), ")"));
}

std::vector<std::string> mappers_from_args(const ArgParser& args) {
  const MapperRegistry& registry = MapperRegistry::instance();
  std::vector<std::string> names;
  for (const std::string& part : split(args.get("mappers"), ',')) {
    const std::string name = trim(part);
    if (name.empty()) {
      continue;
    }
    // Canonicalize through the registry (validates now, fails with the
    // bad name) so an alias duplicate like "vw-sdk,vwsdk" is caught too
    // -- a repeated mapper would make speedup columns ambiguous.
    const std::string canonical = registry.info(name).name;
    VWSDK_REQUIRE(std::find(names.begin(), names.end(), canonical) ==
                      names.end(),
                  cat("--mappers lists \"", canonical, "\" twice"));
    names.push_back(canonical);
  }
  VWSDK_REQUIRE(!names.empty(), "--mappers names no mapper");
  return names;
}

void add_objective_option(ArgParser& args) {
  args.add_option("objective", "cycles",
                  cat("search objective (", join(objective_names(), ", "),
                      ")"));
}

const Objective& objective_from_args(const ArgParser& args) {
  return objective_by_name(args.get("objective"));
}

void add_ref_backend_option(ArgParser& args) {
  args.add_option("ref-backend", "",
                  cat("reference execution backend (",
                      BackendRegistry::instance().known_names(),
                      "; default: VWSDK_REF_BACKEND, then gemm)"));
}

std::string ref_backend_from_args(const ArgParser& args) {
  return resolve_ref_backend(args.get("ref-backend"));
}

long long int_in_range(const ArgParser& args, const std::string& name,
                       long long minimum, long long maximum) {
  const long long value = args.get_int(name);
  VWSDK_REQUIRE(value >= minimum,
                cat("--", name, " must be >= ", minimum, " (got ", value,
                    ")"));
  VWSDK_REQUIRE(value <= maximum,
                cat("--", name, " must be <= ", maximum, " (got ", value,
                    ")"));
  return value;
}

Dim dim_in_range(const ArgParser& args, const std::string& name,
                 long long minimum, long long maximum) {
  VWSDK_REQUIRE(maximum <= std::numeric_limits<Dim>::max(),
                cat("--", name, ": dim_in_range maximum exceeds Dim"));
  return static_cast<Dim>(int_in_range(args, name, minimum, maximum));
}

int exit_code_for(ErrorCode code) {
  return is_usage_error(code) ? kExitUsageError : kExitError;
}

int run_cli_main(const std::function<int()>& body) {
  try {
    return body();
  } catch (const std::exception& e) {
    // One classification -- classify_exception -- decides both the
    // stderr prefix and the exit code, the same category mapping the
    // serve daemon embeds as error codes in its JSON responses.
    // Non-vwsdk exceptions (std::bad_alloc, a filesystem throw, ...)
    // classify as runtime: still a clean exit-code-1 failure, never a
    // terminate().
    const ErrorCode code = classify_exception(e);
    std::cerr << (is_usage_error(code) ? "usage error: " : "error: ")
              << e.what() << "\n";
    return exit_code_for(code);
  } catch (...) {
    std::cerr << "error: unknown exception\n";
    return kExitError;
  }
}

void SubcommandSet::add(Subcommand command) {
  VWSDK_REQUIRE(!command.name.empty(), "subcommand needs a name");
  VWSDK_REQUIRE(command.handler != nullptr,
                cat("subcommand \"", command.name, "\" needs a handler"));
  VWSDK_REQUIRE(find(command.name) == nullptr,
                cat("subcommand \"", command.name, "\" registered twice"));
  commands_.push_back(std::move(command));
}

const Subcommand* SubcommandSet::find(const std::string& name) const {
  for (const Subcommand& command : commands_) {
    if (command.name == name) {
      return &command;
    }
  }
  return nullptr;
}

std::string SubcommandSet::command_list() const {
  std::size_t width = 0;
  for (const Subcommand& command : commands_) {
    width = std::max(width, command.name.size());
  }
  std::string out;
  for (const Subcommand& command : commands_) {
    out += cat("  ", command.name,
               std::string(width - command.name.size() + 2, ' '),
               command.summary, "\n");
  }
  return out;
}

int SubcommandSet::dispatch(
    int argc, const char* const* argv,
    const std::function<std::string()>& global_help,
    const std::string& version_line) const {
  if (argc < 2) {
    // A usage error, so stderr: stdout stays machine-consumable for
    // scripts that capture it (docs/CLI.md exit-code contract).
    std::cerr << global_help();
    return kExitUsageError;
  }
  const std::string name = argv[1];
  if (name == "--help" || name == "-h" || name == "help") {
    std::cout << global_help();
    return kExitOk;
  }
  if (name == "--version") {
    std::cout << version_line << "\n";
    return kExitOk;
  }
  if (const Subcommand* command = find(name)) {
    return command->handler(argc - 1, argv + 1);
  }
  std::vector<std::string> names;
  names.reserve(commands_.size());
  for (const Subcommand& command : commands_) {
    names.push_back(command.name);
  }
  throw InvalidArgument(cat("unknown command \"", name, "\" (known: ",
                            join(names, ", "), "); run vwsdk --help"));
}

}  // namespace vwsdk
