#include "core/cli_support.h"

#include <algorithm>
#include <iostream>

#include "common/error.h"
#include "common/string_util.h"

namespace vwsdk {

void add_shape_options(ArgParser& args, Dim image, Dim kernel,
                       Dim in_channels, Dim out_channels) {
  args.add_int_option("image", image, "IFM width/height");
  args.add_int_option("kernel", kernel, "kernel width/height");
  args.add_int_option("ic", in_channels, "input channels");
  args.add_int_option("oc", out_channels, "output channels");
}

ConvShape shape_from_args(const ArgParser& args) {
  return ConvShape::square(static_cast<Dim>(args.get_int("image")),
                           static_cast<Dim>(args.get_int("kernel")),
                           static_cast<Dim>(args.get_int("ic")),
                           static_cast<Dim>(args.get_int("oc")));
}

void add_array_option(ArgParser& args,
                      const std::string& default_geometry) {
  args.add_option("array", default_geometry, "PIM array geometry, RxC");
}

ArrayGeometry array_from_args(const ArgParser& args) {
  return parse_geometry(args.get("array"));
}

void add_mappers_option(ArgParser& args) {
  args.add_option("mappers", "im2col,smd,sdk,vw-sdk",
                  "comma-separated mapping algorithms");
}

std::vector<std::string> mappers_from_args(const ArgParser& args) {
  std::vector<std::string> names;
  for (const std::string& part : split(args.get("mappers"), ',')) {
    const std::string name = trim(part);
    if (name.empty()) {
      continue;
    }
    (void)make_mapper(name);  // validate now, fail with the bad name
    VWSDK_REQUIRE(std::find(names.begin(), names.end(), name) ==
                      names.end(),
                  cat("--mappers lists \"", name, "\" twice"));
    names.push_back(name);
  }
  VWSDK_REQUIRE(!names.empty(), "--mappers names no mapper");
  return names;
}

int run_cli_main(const std::function<int()>& body) {
  try {
    return body();
  } catch (const InvalidArgument& e) {
    std::cerr << "usage error: " << e.what() << "\n";
    return kExitUsageError;
  } catch (const NotFound& e) {
    std::cerr << "usage error: " << e.what() << "\n";
    return kExitUsageError;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kExitError;
  }
}

}  // namespace vwsdk
