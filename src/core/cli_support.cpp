#include "core/cli_support.h"

#include <algorithm>
#include <exception>
#include <iostream>

#include "common/error.h"
#include "common/string_util.h"
#include "core/mapper_registry.h"
#include "tensor/exec_backend.h"

namespace vwsdk {

void add_shape_options(ArgParser& args, Dim image, Dim kernel,
                       Dim in_channels, Dim out_channels) {
  args.add_int_option("image", image, "IFM width/height");
  args.add_int_option("kernel", kernel, "kernel width/height");
  args.add_int_option("ic", in_channels, "input channels");
  args.add_int_option("oc", out_channels, "output channels");
}

ConvShape shape_from_args(const ArgParser& args) {
  return ConvShape::square(static_cast<Dim>(args.get_int("image")),
                           static_cast<Dim>(args.get_int("kernel")),
                           static_cast<Dim>(args.get_int("ic")),
                           static_cast<Dim>(args.get_int("oc")));
}

void add_array_option(ArgParser& args,
                      const std::string& default_geometry) {
  args.add_option("array", default_geometry, "PIM array geometry, RxC");
}

ArrayGeometry array_from_args(const ArgParser& args) {
  return parse_geometry(args.get("array"));
}

void add_mappers_option(ArgParser& args) {
  args.add_option("mappers", "im2col,smd,sdk,vw-sdk",
                  cat("comma-separated mapping algorithms (",
                      MapperRegistry::instance().known_names(), ")"));
}

std::vector<std::string> mappers_from_args(const ArgParser& args) {
  const MapperRegistry& registry = MapperRegistry::instance();
  std::vector<std::string> names;
  for (const std::string& part : split(args.get("mappers"), ',')) {
    const std::string name = trim(part);
    if (name.empty()) {
      continue;
    }
    // Canonicalize through the registry (validates now, fails with the
    // bad name) so an alias duplicate like "vw-sdk,vwsdk" is caught too
    // -- a repeated mapper would make speedup columns ambiguous.
    const std::string canonical = registry.info(name).name;
    VWSDK_REQUIRE(std::find(names.begin(), names.end(), canonical) ==
                      names.end(),
                  cat("--mappers lists \"", canonical, "\" twice"));
    names.push_back(canonical);
  }
  VWSDK_REQUIRE(!names.empty(), "--mappers names no mapper");
  return names;
}

void add_objective_option(ArgParser& args) {
  args.add_option("objective", "cycles",
                  cat("search objective (", join(objective_names(), ", "),
                      ")"));
}

const Objective& objective_from_args(const ArgParser& args) {
  return objective_by_name(args.get("objective"));
}

void add_ref_backend_option(ArgParser& args) {
  args.add_option("ref-backend", "",
                  cat("reference execution backend (",
                      BackendRegistry::instance().known_names(),
                      "; default: VWSDK_REF_BACKEND, then gemm)"));
}

std::string ref_backend_from_args(const ArgParser& args) {
  return resolve_ref_backend(args.get("ref-backend"));
}

long long int_in_range(const ArgParser& args, const std::string& name,
                       long long minimum, long long maximum) {
  const long long value = args.get_int(name);
  VWSDK_REQUIRE(value >= minimum,
                cat("--", name, " must be >= ", minimum, " (got ", value,
                    ")"));
  VWSDK_REQUIRE(value <= maximum,
                cat("--", name, " must be <= ", maximum, " (got ", value,
                    ")"));
  return value;
}

int run_cli_main(const std::function<int()>& body) {
  try {
    return body();
  } catch (const InvalidArgument& e) {
    std::cerr << "usage error: " << e.what() << "\n";
    return kExitUsageError;
  } catch (const NotFound& e) {
    std::cerr << "usage error: " << e.what() << "\n";
    return kExitUsageError;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kExitError;
  } catch (const std::exception& e) {
    // Not one of ours (std::bad_alloc, a filesystem throw, ...): still a
    // clean exit-code-1 failure, never a terminate().
    std::cerr << "error: " << e.what() << "\n";
    return kExitError;
  } catch (...) {
    std::cerr << "error: unknown exception\n";
    return kExitError;
  }
}

}  // namespace vwsdk
