#pragma once

/// @file cli_support.h
/// Shared command-line glue for the `vwsdk` CLI (apps/) and the example
/// binaries: the layer-shape / array-geometry / mapper / objective
/// option bundles every tool was hand-rolling, plus the common "parse,
/// run, report errors" main-function skeleton with the CLI exit-code
/// convention (0 success, 1 runtime error, 2 usage error; see
/// docs/CLI.md).

#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "common/cli.h"
#include "core/mapping_decision.h"
#include "mapping/conv_shape.h"
#include "mapping/objective.h"
#include "pim/array_geometry.h"

namespace vwsdk {

/// Process exit codes shared by every vwsdk command-line tool.
enum ExitCode : int {
  kExitOk = 0,         ///< success (including --help)
  kExitError = 1,      ///< a runtime error (vwsdk::Error or any exception)
  kExitUsageError = 2  ///< malformed flags / unknown subcommand
};

/// Declare the layer-shape options --image, --kernel, --ic, --oc with the
/// given defaults.
void add_shape_options(ArgParser& args, Dim image, Dim kernel,
                       Dim in_channels, Dim out_channels);

/// The ConvShape described by the options of add_shape_options.
ConvShape shape_from_args(const ArgParser& args);

/// Declare the --array option (PIM array geometry, "RxC").
void add_array_option(ArgParser& args, const std::string& default_geometry);

/// The ArrayGeometry parsed from --array.
ArrayGeometry array_from_args(const ArgParser& args);

/// Declare --mappers, a comma-separated list of mapper names defaulting
/// to the paper's comparison set "im2col,smd,sdk,vw-sdk".  The help text
/// lists the registered names (MapperRegistry::instance()).
void add_mappers_option(ArgParser& args);

/// The mapper names from --mappers, validated against
/// MapperRegistry::instance() (throws NotFound listing the registered
/// names on an unknown name, InvalidArgument on a duplicate -- a
/// repeated mapper would make speedup columns ambiguous).
std::vector<std::string> mappers_from_args(const ArgParser& args);

/// Declare --objective, the search objective name, defaulting to
/// "cycles"; the help text lists the built-in objectives.
void add_objective_option(ArgParser& args);

/// Declare --ref-backend, the reference execution backend a functional
/// verification compares against; the help text lists the registered
/// backends (BackendRegistry::instance()).  Empty (the default) defers
/// to the `VWSDK_REF_BACKEND` environment variable, then "gemm".
void add_ref_backend_option(ArgParser& args);

/// The canonical backend name from --ref-backend, resolved through
/// resolve_ref_backend (throws NotFound listing the registered names on
/// an unknown name).
std::string ref_backend_from_args(const ArgParser& args);

/// The Objective parsed from --objective (throws NotFound listing the
/// known objectives).  The reference is a process-lifetime singleton.
const Objective& objective_from_args(const ArgParser& args);

/// The integer option `name`, validated to lie in [minimum, maximum];
/// throws InvalidArgument naming the flag and the violated bound.  The
/// CLI's count-valued flags (--arrays, --chips, --batch, ...) share
/// this so their usage errors read alike; callers narrowing to Dim pass
/// its max so out-of-range input fails loudly instead of wrapping.
long long int_in_range(
    const ArgParser& args, const std::string& name, long long minimum,
    long long maximum = std::numeric_limits<long long>::max());

/// Run `body` (argument parsing included) under the standard error
/// report: InvalidArgument/NotFound print "usage error: ..." and return
/// kExitUsageError; any other exception -- vwsdk::Error or otherwise --
/// prints "error: ..." and returns kExitError instead of terminating
/// the process.  `body` returns the exit code for the success path.
int run_cli_main(const std::function<int()>& body);

}  // namespace vwsdk
