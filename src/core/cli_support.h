#pragma once

/// @file cli_support.h
/// Shared command-line glue for the `vwsdk` CLI (apps/) and the example
/// binaries: the layer-shape / array-geometry / mapper / objective
/// option bundles every tool was hand-rolling, plus the common "parse,
/// run, report errors" main-function skeleton with the CLI exit-code
/// convention (0 success, 1 runtime error, 2 usage error; see
/// docs/CLI.md).

#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "common/cli.h"
#include "core/mapping_decision.h"
#include "mapping/conv_shape.h"
#include "mapping/objective.h"
#include "pim/array_geometry.h"

namespace vwsdk {

/// Process exit codes shared by every vwsdk command-line tool.
enum ExitCode : int {
  kExitOk = 0,         ///< success (including --help)
  kExitError = 1,      ///< a runtime error (vwsdk::Error or any exception)
  kExitUsageError = 2  ///< malformed flags / unknown subcommand
};

/// Declare the layer-shape options --image, --kernel, --ic, --oc with the
/// given defaults.
void add_shape_options(ArgParser& args, Dim image, Dim kernel,
                       Dim in_channels, Dim out_channels);

/// The ConvShape described by the options of add_shape_options.
ConvShape shape_from_args(const ArgParser& args);

/// Declare the --array option (PIM array geometry, "RxC").
void add_array_option(ArgParser& args, const std::string& default_geometry);

/// The ArrayGeometry parsed from --array.
ArrayGeometry array_from_args(const ArgParser& args);

/// Declare --mappers, a comma-separated list of mapper names defaulting
/// to the paper's comparison set "im2col,smd,sdk,vw-sdk".  The help text
/// lists the registered names (MapperRegistry::instance()).
void add_mappers_option(ArgParser& args);

/// The mapper names from --mappers, validated against
/// MapperRegistry::instance() (throws NotFound listing the registered
/// names on an unknown name, InvalidArgument on a duplicate -- a
/// repeated mapper would make speedup columns ambiguous).
std::vector<std::string> mappers_from_args(const ArgParser& args);

/// Declare --objective, the search objective name, defaulting to
/// "cycles"; the help text lists the built-in objectives.
void add_objective_option(ArgParser& args);

/// Declare --ref-backend, the reference execution backend a functional
/// verification compares against; the help text lists the registered
/// backends (BackendRegistry::instance()).  Empty (the default) defers
/// to the `VWSDK_REF_BACKEND` environment variable, then "gemm".
void add_ref_backend_option(ArgParser& args);

/// The canonical backend name from --ref-backend, resolved through
/// resolve_ref_backend (throws NotFound listing the registered names on
/// an unknown name).
std::string ref_backend_from_args(const ArgParser& args);

/// The Objective parsed from --objective (throws NotFound listing the
/// known objectives).  The reference is a process-lifetime singleton.
const Objective& objective_from_args(const ArgParser& args);

/// The integer option `name`, validated to lie in [minimum, maximum];
/// throws InvalidArgument naming the flag and the violated bound.  The
/// CLI's count-valued flags (--arrays, --chips, --batch, ...) share
/// this so their usage errors read alike; callers narrowing to Dim pass
/// its max so out-of-range input fails loudly instead of wrapping.
long long int_in_range(
    const ArgParser& args, const std::string& name, long long minimum,
    long long maximum = std::numeric_limits<long long>::max());

/// int_in_range narrowed to Dim: the guard for every shape/geometry
/// flag, so `--image 4294967297` is a usage error instead of silently
/// wrapping to 1 through a `static_cast<Dim>`.
Dim dim_in_range(const ArgParser& args, const std::string& name,
                 long long minimum,
                 long long maximum = std::numeric_limits<Dim>::max());

/// The exit code of an error category: kExitUsageError for the
/// usage-shaped codes (is_usage_error, common/error.h), kExitError for
/// everything else -- the single mapping both run_cli_main and the
/// serve daemon's exit paths derive from (docs/SERVE.md documents the
/// full code table).
int exit_code_for(ErrorCode code);

/// Run `body` (argument parsing included) under the standard error
/// report: the caught exception is classified through
/// classify_exception (common/error.h); usage-shaped categories print
/// "usage error: ..." and return kExitUsageError, everything else --
/// vwsdk::Error or otherwise -- prints "error: ..." and returns
/// kExitError instead of terminating the process.  `body` returns the
/// exit code for the success path.
int run_cli_main(const std::function<int()>& body);

/// One entry of a CLI's subcommand table: the name it dispatches on,
/// the one-line summary the global help derives, and the handler that
/// receives argv rebased so argv[0] is the subcommand itself.
struct Subcommand {
  std::string name;     ///< dispatch key ("map", "serve", ...)
  std::string summary;  ///< one line for the global help's command list
  std::function<int(int argc, const char* const* argv)> handler;
};

/// A declarative subcommand table: the single source the dispatch loop,
/// the global help's command list, and the unknown-command error all
/// derive from, so registering a subcommand is one `add` call (the same
/// pattern MapperRegistry applies to mapper names).
class SubcommandSet {
 public:
  /// Register a subcommand; throws InvalidArgument on an empty
  /// name/handler or a duplicate name.
  void add(Subcommand command);

  /// The registered subcommands in registration order.
  const std::vector<Subcommand>& commands() const { return commands_; }

  /// The entry `name` dispatches to, or nullptr.
  const Subcommand* find(const std::string& name) const;

  /// The aligned command list embedded in the global help, one
  /// "  name   summary" line per subcommand in registration order.
  std::string command_list() const;

  /// Dispatch argv: no argument prints `global_help()` to stderr (exit
  /// 2); --help/-h/help print it to stdout and --version prints
  /// `version_line` (exit 0); a registered name runs its handler on the
  /// rebased argv; anything else throws InvalidArgument naming the
  /// known commands.
  int dispatch(int argc, const char* const* argv,
               const std::function<std::string()>& global_help,
               const std::string& version_line) const;

 private:
  std::vector<Subcommand> commands_;
};

}  // namespace vwsdk
