#pragma once

/// @file mapper_registry.h
/// The single source of truth for mapper names: a registry of every
/// mapping algorithm with its aliases, one-line description, and
/// capability flags.
///
/// Each built-in mapper registers *itself*: its name, aliases,
/// description, and capabilities live in its own .cpp next to the
/// algorithm (see e.g. im2col_mapper.cpp), not in a central list.  The
/// registry bootstrap in mapper_registry.cpp references one registration
/// symbol per mapper -- a linker anchor, required because the library is
/// static and a translation unit nothing references would never be
/// linked, silently dropping its registration.
///
/// Everything that used to hand-maintain a name list derives it from
/// here instead: make_mapper (now a shim over `create`), the CLI's
/// --mapper/--mappers validation and help text, `vwsdk mappers`, and the
/// error messages -- so adding a mapper is one registration call, and
/// docs/CLI.md stays honest through the `cli.help_matches_doc` ctest.
///
/// Out-of-library mappers (tests, plugins, experiments) self-register
/// with a static MapperRegistrar in their own translation unit.

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "core/mapping_decision.h"

namespace vwsdk {

/// What a mapper can do; drives `vwsdk mappers` and lets tools reason
/// about the algorithms without instantiating them.
struct MapperCapabilities {
  /// The *search* optimizes MappingContext::objective (im2col/SMD/SDK
  /// compute a fixed mapping and merely report its score).
  bool objective_aware = false;

  /// Candidate evaluation can fan out over MappingContext::pool.
  bool parallel_search = false;

  /// Guarantees the global optimum over all admissible windows.
  bool exhaustive = false;

  /// Handles grouped sub-convolutions (IC/G -> OC/G shapes); every
  /// built-in does, the flag exists for restricted externals.
  bool grouped = true;
};

/// One registered mapping algorithm.
struct MapperInfo {
  std::string name;                  ///< canonical name ("vw-sdk")
  std::vector<std::string> aliases;  ///< extra lookup keys ("vwsdk")
  std::string description;           ///< one line, for --help and docs
  MapperCapabilities capabilities{};

  /// Presentation rank: names() sorts by (sort_key, name), so listings
  /// and error messages are deterministic regardless of registration
  /// order.  Built-ins use the paper's order (baselines first, the
  /// proposed algorithm, then extensions); externals default after.
  int sort_key = 1000;

  /// Constructs a fresh instance of the mapper.
  std::function<std::unique_ptr<Mapper>()> factory;
};

/// Thread-safe name -> mapper registry.
class MapperRegistry {
 public:
  /// The process-wide registry, with every built-in mapper registered.
  static MapperRegistry& instance();

  /// An empty registry (for tests composing their own).
  MapperRegistry() = default;
  MapperRegistry(const MapperRegistry&) = delete;
  MapperRegistry& operator=(const MapperRegistry&) = delete;

  /// Register a mapper.  Throws InvalidArgument on a missing name or
  /// factory, or when the name or an alias (case-insensitive) is taken.
  void add(MapperInfo info) VWSDK_EXCLUDES(mutex_);

  /// True when `name` resolves to a registered mapper (canonical name
  /// or alias, case-insensitive, surrounding whitespace ignored).
  bool contains(const std::string& name) const VWSDK_EXCLUDES(mutex_);

  /// Metadata of the mapper `name` resolves to; throws NotFound listing
  /// the known names.  The reference stays valid for the registry's
  /// lifetime (registrations never move or remove entries' storage).
  const MapperInfo& info(const std::string& name) const
      VWSDK_EXCLUDES(mutex_);

  /// A fresh instance of the mapper `name` resolves to; throws NotFound
  /// listing the known names.
  std::unique_ptr<Mapper> create(const std::string& name) const
      VWSDK_EXCLUDES(mutex_);

  /// Canonical names, sorted by (sort_key, name).
  std::vector<std::string> names() const VWSDK_EXCLUDES(mutex_);

  /// The names joined as "a, b, c" -- the list error messages and help
  /// text embed.
  std::string known_names() const;

  /// Number of registered mappers.
  Count size() const VWSDK_EXCLUDES(mutex_);

 private:
  std::vector<std::string> names_locked() const VWSDK_REQUIRES(mutex_);

  mutable Mutex mutex_;
  /// unique_ptr so info() references survive vector growth.
  std::vector<std::unique_ptr<MapperInfo>> infos_ VWSDK_GUARDED_BY(mutex_);
  std::unordered_map<std::string, const MapperInfo*> lookup_
      VWSDK_GUARDED_BY(mutex_);
};

/// Registers `info` into MapperRegistry::instance() at construction.
/// Define one as a namespace-scope static in a mapper's translation
/// unit to self-register before main() -- reliable for code linked into
/// the final binary (tests, apps, plugins).  Built-ins inside the static
/// library register through the bootstrap anchors instead (see file
/// comment).
class MapperRegistrar {
 public:
  explicit MapperRegistrar(MapperInfo info);
};

}  // namespace vwsdk
