#include "core/exhaustive_mapper.h"

namespace vwsdk {

MappingDecision ExhaustiveMapper::map(const ConvShape& shape,
                                      const ArrayGeometry& geometry) const {
  shape.validate();
  geometry.validate();

  MappingDecision decision;
  decision.algorithm = name();
  decision.shape = shape;
  decision.geometry = geometry;
  decision.cost = im2col_cost(shape, geometry);

  for (Dim h = shape.kernel_h; h <= shape.padded_h(); h += shape.stride_h) {
    for (Dim w = shape.kernel_w; w <= shape.padded_w();
         w += shape.stride_w) {
      const CycleCost candidate = vw_cost(shape, geometry, {w, h});
      if (candidate.feasible && candidate.total < decision.cost.total) {
        decision.cost = candidate;
      }
    }
  }
  return decision;
}

}  // namespace vwsdk
