#include "core/exhaustive_mapper.h"

#include <vector>

#include "common/thread_pool.h"

namespace vwsdk {

MappingDecision ExhaustiveMapper::map(const ConvShape& shape,
                                      const ArrayGeometry& geometry) const {
  return map_impl(shape, geometry, nullptr);
}

MappingDecision ExhaustiveMapper::map_parallel(
    const ConvShape& shape, const ArrayGeometry& geometry,
    ThreadPool& pool) const {
  return map_impl(shape, geometry, &pool);
}

MappingDecision ExhaustiveMapper::map_impl(const ConvShape& shape,
                                           const ArrayGeometry& geometry,
                                           ThreadPool* pool) const {
  shape.validate();
  geometry.validate();

  MappingDecision decision;
  decision.algorithm = name();
  decision.shape = shape;
  decision.geometry = geometry;
  decision.cost = im2col_cost(shape, geometry);

  // With a pool, candidate costs may be computed out of order; the
  // reduction is sequential in scan order so the im2col-first tie-break
  // matches the single-threaded oracle exactly.  Without one, costs
  // stream per candidate.
  const std::vector<ParallelWindow> windows =
      enumerate_windows(shape, /*include_kernel=*/true);

  const auto consider = [&](const CycleCost& candidate) {
    if (candidate.feasible && candidate.total < decision.cost.total) {
      decision.cost = candidate;
    }
  };

  if (pool != nullptr && pool->size() > 1) {
    for (const CycleCost& candidate :
         vw_costs(shape, geometry, windows, pool)) {
      consider(candidate);
    }
  } else {
    for (const ParallelWindow& pw : windows) {
      consider(vw_cost(shape, geometry, pw));
    }
  }
  return decision;
}

}  // namespace vwsdk
