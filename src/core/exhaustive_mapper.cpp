#include "core/exhaustive_mapper.h"

#include <vector>

#include "common/thread_pool.h"
#include "core/mapper_registry.h"

namespace vwsdk {

MappingDecision ExhaustiveMapper::map(const MappingContext& context) const {
  context.validate();
  const Objective& objective = context.scoring();
  const ConvShape& shape = context.shape;
  const ArrayGeometry& geometry = context.geometry;

  MappingDecision decision;
  decision.algorithm = name();
  decision.objective = objective.name();
  decision.shape = shape;
  decision.geometry = geometry;
  decision.cost = im2col_cost(shape, geometry);
  decision.score = objective.score(shape, geometry, decision.cost);

  // With a pool, candidate costs may be computed out of order; the
  // reduction is sequential in scan order so the im2col-first tie-break
  // matches the single-threaded oracle exactly.  Without one, costs
  // stream per candidate.
  const std::vector<ParallelWindow> windows =
      enumerate_windows(shape, /*include_kernel=*/true);

  const auto consider = [&](const CycleCost& candidate,
                            double candidate_score) {
    if (candidate.feasible &&
        objective.better(candidate_score, decision.score)) {
      decision.cost = candidate;
      decision.score = candidate_score;
    }
  };

  if (context.pool != nullptr && context.pool->size() > 1) {
    const std::vector<CycleCost> costs =
        vw_costs(shape, geometry, windows, context.pool);
    const std::vector<double> scores =
        score_costs(objective, shape, geometry, costs, *context.pool);
    for (std::size_t i = 0; i < costs.size(); ++i) {
      consider(costs[i], scores[i]);
    }
  } else {
    for (const ParallelWindow& pw : windows) {
      const CycleCost candidate = vw_cost(shape, geometry, pw);
      consider(candidate,
               candidate.feasible
                   ? objective.score(shape, geometry, candidate)
                   : 0.0);
    }
  }
  return decision;
}

namespace detail {

void register_exhaustive_mapper(MapperRegistry& registry) {
  registry.add(MapperInfo{
      "exhaustive",
      {},
      "brute-force oracle over every admissible window (global optimum)",
      MapperCapabilities{/*objective_aware=*/true, /*parallel_search=*/true,
                         /*exhaustive=*/true, /*grouped=*/true},
      60,
      []() { return std::make_unique<ExhaustiveMapper>(); }});
}

}  // namespace detail

}  // namespace vwsdk
