#include "core/vwsdk_mapper.h"

namespace vwsdk {

MappingDecision VwSdkMapper::map(const ConvShape& shape,
                                 const ArrayGeometry& geometry) const {
  return map_traced(shape, geometry, nullptr);
}

MappingDecision VwSdkMapper::map_traced(const ConvShape& shape,
                                        const ArrayGeometry& geometry,
                                        SearchTrace* trace) const {
  shape.validate();
  geometry.validate();

  MappingDecision decision;
  decision.algorithm = name();
  decision.shape = shape;
  decision.geometry = geometry;
  // Step 1 of Algorithm 1: initialize with im2col.
  decision.cost = im2col_cost(shape, geometry);

  // Steps 2-16: scan PW_h outer, PW_w inner, skipping the kernel window.
  for (Dim h = shape.kernel_h; h <= shape.padded_h(); h += shape.stride_h) {
    for (Dim w = shape.kernel_w; w <= shape.padded_w();
         w += shape.stride_w) {
      if (w == shape.kernel_w && h == shape.kernel_h) {
        continue;  // the im2col initialization covers the kernel window
      }
      const ParallelWindow pw{w, h};
      const CycleCost candidate = vw_cost(shape, geometry, pw);
      const bool improved =
          candidate.feasible && decision.cost.total > candidate.total;
      if (trace != nullptr) {
        trace->record(SearchStep{pw, candidate.feasible,
                                 candidate.feasible ? candidate.total : 0,
                                 improved});
      }
      if (improved) {
        decision.cost = candidate;  // strict '>' keeps the first minimum
      }
    }
  }
  return decision;
}

}  // namespace vwsdk
