#include "core/vwsdk_mapper.h"

#include <vector>

#include "common/thread_pool.h"
#include "core/mapper_registry.h"

namespace vwsdk {

MappingDecision VwSdkMapper::map(const MappingContext& context) const {
  context.validate();
  const Objective& objective = context.scoring();
  const ConvShape& shape = context.shape;
  const ArrayGeometry& geometry = context.geometry;

  MappingDecision decision;
  decision.algorithm = name();
  decision.objective = objective.name();
  decision.shape = shape;
  decision.geometry = geometry;
  // Step 1 of Algorithm 1: initialize with im2col.
  decision.cost = im2col_cost(shape, geometry);
  decision.score = objective.score(shape, geometry, decision.cost);

  // Steps 2-16: every candidate in scan order (PW_h outer, PW_w inner),
  // skipping the kernel window the initialization covers.  With a pool,
  // costs may be *computed* out of order across workers; the reduction
  // below is always sequential in scan order, so the first-minimum
  // tie-break and the recorded trace are identical to the
  // single-threaded scan.  Without a pool, costs stream one candidate
  // at a time (no whole-scan cost buffer).
  const std::vector<ParallelWindow> windows =
      enumerate_windows(shape, /*include_kernel=*/false);

  // `candidate_score` is the objective score of a feasible candidate
  // (0.0 for infeasible ones); precomputed by the caller so the pooled
  // path can evaluate scores in parallel too.
  const auto consider = [&](const ParallelWindow& pw,
                            const CycleCost& candidate,
                            double candidate_score) {
    // The strict comparison keeps the first minimum.
    const bool improved =
        candidate.feasible &&
        objective.better(candidate_score, decision.score);
    if (context.trace != nullptr) {
      context.trace->record(SearchStep{pw, candidate.feasible,
                                       candidate.feasible ? candidate.total
                                                          : 0,
                                       improved, candidate_score});
    }
    if (improved) {
      decision.cost = candidate;
      decision.score = candidate_score;
    }
  };

  if (context.pool != nullptr && context.pool->size() > 1) {
    const std::vector<CycleCost> costs =
        vw_costs(shape, geometry, windows, context.pool);
    const std::vector<double> scores =
        score_costs(objective, shape, geometry, costs, *context.pool);
    for (std::size_t i = 0; i < windows.size(); ++i) {
      consider(windows[i], costs[i], scores[i]);
    }
  } else {
    for (const ParallelWindow& pw : windows) {
      const CycleCost candidate = vw_cost(shape, geometry, pw);
      consider(pw, candidate,
               candidate.feasible
                   ? objective.score(shape, geometry, candidate)
                   : 0.0);
    }
  }
  return decision;
}

MappingDecision VwSdkMapper::map_traced(const ConvShape& shape,
                                        const ArrayGeometry& geometry,
                                        SearchTrace* trace,
                                        ThreadPool* pool) const {
  MappingContext context{shape, geometry};
  context.trace = trace;
  context.pool = pool;
  return map(context);
}

namespace detail {

void register_vwsdk_mapper(MapperRegistry& registry) {
  registry.add(MapperInfo{
      "vw-sdk",
      {"vwsdk"},
      "variable-window SDK search, Algorithm 1 (the paper's proposal)",
      MapperCapabilities{/*objective_aware=*/true, /*parallel_search=*/true,
                         /*exhaustive=*/false, /*grouped=*/true},
      40,
      []() { return std::make_unique<VwSdkMapper>(); }});
}

}  // namespace detail

}  // namespace vwsdk
