#include "core/vwsdk_mapper.h"

#include <vector>

#include "common/thread_pool.h"

namespace vwsdk {

MappingDecision VwSdkMapper::map(const ConvShape& shape,
                                 const ArrayGeometry& geometry) const {
  return map_traced(shape, geometry, nullptr);
}

MappingDecision VwSdkMapper::map_parallel(const ConvShape& shape,
                                          const ArrayGeometry& geometry,
                                          ThreadPool& pool) const {
  return map_traced(shape, geometry, nullptr, &pool);
}

MappingDecision VwSdkMapper::map_traced(const ConvShape& shape,
                                        const ArrayGeometry& geometry,
                                        SearchTrace* trace,
                                        ThreadPool* pool) const {
  shape.validate();
  geometry.validate();

  MappingDecision decision;
  decision.algorithm = name();
  decision.shape = shape;
  decision.geometry = geometry;
  // Step 1 of Algorithm 1: initialize with im2col.
  decision.cost = im2col_cost(shape, geometry);

  // Steps 2-16: every candidate in scan order (PW_h outer, PW_w inner),
  // skipping the kernel window the initialization covers.  With a pool,
  // costs may be *computed* out of order across workers; the reduction
  // below is always sequential in scan order, so the first-minimum
  // tie-break and the recorded trace are identical to the
  // single-threaded scan.  Without a pool, costs stream one candidate
  // at a time (no whole-scan cost buffer).
  const std::vector<ParallelWindow> windows =
      enumerate_windows(shape, /*include_kernel=*/false);

  const auto consider = [&](const ParallelWindow& pw,
                            const CycleCost& candidate) {
    const bool improved =
        candidate.feasible && decision.cost.total > candidate.total;
    if (trace != nullptr) {
      trace->record(SearchStep{pw, candidate.feasible,
                               candidate.feasible ? candidate.total : 0,
                               improved});
    }
    if (improved) {
      decision.cost = candidate;  // strict '>' keeps the first minimum
    }
  };

  if (pool != nullptr && pool->size() > 1) {
    const std::vector<CycleCost> costs = vw_costs(shape, geometry, windows,
                                                  pool);
    for (std::size_t i = 0; i < windows.size(); ++i) {
      consider(windows[i], costs[i]);
    }
  } else {
    for (const ParallelWindow& pw : windows) {
      consider(pw, vw_cost(shape, geometry, pw));
    }
  }
  return decision;
}

}  // namespace vwsdk
