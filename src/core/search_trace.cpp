#include "core/search_trace.h"

#include "common/string_util.h"

namespace vwsdk {

Count SearchTrace::feasible_count() const {
  Count count = 0;
  for (const SearchStep& step : steps_) {
    count += step.feasible ? 1 : 0;
  }
  return count;
}

Count SearchTrace::improvement_count() const {
  Count count = 0;
  for (const SearchStep& step : steps_) {
    count += step.improved ? 1 : 0;
  }
  return count;
}

std::vector<SearchStep> SearchTrace::improvements() const {
  std::vector<SearchStep> out;
  for (const SearchStep& step : steps_) {
    if (step.improved) {
      out.push_back(step);
    }
  }
  return out;
}

std::string SearchTrace::to_string() const {
  std::string out =
      cat("search: ", candidates_visited(), " candidates, ",
          feasible_count(), " feasible, ", improvement_count(),
          " improvements\n");
  for (const SearchStep& step : steps_) {
    if (step.improved) {
      out += cat("  improved at pw=", step.window.to_string(), " -> ",
                 step.cycles, " cycles\n");
    }
  }
  return out;
}

}  // namespace vwsdk
