#include "core/grouped_conv.h"

#include "common/error.h"
#include "common/math_util.h"
#include "common/string_util.h"

namespace vwsdk {

ConvShape GroupedConvShape::group_shape() const {
  validate();
  ConvShape group = base;
  group.in_channels = base.in_channels / groups;
  group.out_channels = base.out_channels / groups;
  return group;
}

void GroupedConvShape::validate() const {
  base.validate();
  VWSDK_REQUIRE(groups >= 1, "groups must be >= 1");
  VWSDK_REQUIRE(base.in_channels % groups == 0,
                cat("groups ", groups, " must divide IC ",
                    base.in_channels));
  VWSDK_REQUIRE(base.out_channels % groups == 0,
                cat("groups ", groups, " must divide OC ",
                    base.out_channels));
}

std::string GroupedDecision::to_string() const {
  return cat(shape.base.to_string(), " g", shape.groups, ": ",
             shape.groups, " x [", per_group.to_string(), "] = ",
             total_cycles, " cycles");
}

GroupedDecision map_grouped(const Mapper& mapper,
                            const GroupedConvShape& shape,
                            const ArrayGeometry& geometry) {
  shape.validate();
  GroupedDecision decision;
  decision.shape = shape;
  decision.per_group = mapper.map(shape.group_shape(), geometry);
  decision.total_cycles =
      checked_mul(shape.groups, decision.per_group.cost.total);
  return decision;
}

}  // namespace vwsdk
