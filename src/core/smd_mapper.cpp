#include "core/smd_mapper.h"

#include "core/mapper_registry.h"

namespace vwsdk {

MappingDecision SmdMapper::map(const MappingContext& context) const {
  context.validate();
  const Objective& objective = context.scoring();
  MappingDecision decision;
  decision.algorithm = name();
  decision.objective = objective.name();
  decision.shape = context.shape;
  decision.geometry = context.geometry;
  decision.cost = smd_cost(context.shape, context.geometry);
  decision.score =
      objective.score(context.shape, context.geometry, decision.cost);
  return decision;
}

namespace detail {

void register_smd_mapper(MapperRegistry& registry) {
  registry.add(MapperInfo{
      "smd",
      {},
      "sub-matrix duplication: block-diagonal im2col copies (ref [6])",
      MapperCapabilities{},
      20,
      []() { return std::make_unique<SmdMapper>(); }});
}

}  // namespace detail

}  // namespace vwsdk
