#include "core/smd_mapper.h"

namespace vwsdk {

MappingDecision SmdMapper::map(const ConvShape& shape,
                               const ArrayGeometry& geometry) const {
  MappingDecision decision;
  decision.algorithm = name();
  decision.shape = shape;
  decision.geometry = geometry;
  decision.cost = smd_cost(shape, geometry);
  return decision;
}

}  // namespace vwsdk
