#pragma once

/// @file im2col_mapper.h
/// The im2col baseline mapper (ref [4]; Fig. 2(a) of the paper): each
/// 3-D kernel unrolls into one column, one kernel window per cycle.

#include "core/mapping_decision.h"

namespace vwsdk {

/// Baseline mapper: always chooses the kernel-sized window.  The mapping
/// is fixed, so the context's objective only prices it (the score), it
/// never changes the choice.
class Im2colMapper final : public Mapper {
 public:
  using Mapper::map;

  std::string name() const override { return "im2col"; }
  MappingDecision map(const MappingContext& context) const override;
};

}  // namespace vwsdk
