#include "core/mapping_decision.h"

#include "common/string_util.h"
#include "core/mapper_registry.h"

namespace vwsdk {

bool MappingDecision::is_im2col_fallback() const {
  return cost.window == kernel_window(shape);
}

std::string MappingDecision::table_entry() const {
  if (is_im2col_fallback()) {
    // The paper prints fallback rows with the layer's full channels
    // (e.g. ResNet-18 conv5: "3x3x512x512").
    return cat(shape.kernel_w, "x", shape.kernel_h, "x", shape.in_channels,
               "x", shape.out_channels);
  }
  return cat(cost.window.w, "x", cost.window.h, "x", cost.ic_t, "x",
             cost.oc_t);
}

std::string MappingDecision::to_string() const {
  std::string text = cat(algorithm, ": ", table_entry(), " -> ", cost.total,
                         " cycles (", cost.to_string(), ")");
  if (!objective.empty() && objective != cycles_objective().name()) {
    text += cat(" [", objective, " score ", format_fixed(score, 1), "]");
  }
  return text;
}

MappingDecision Mapper::map(const ConvShape& shape,
                            const ArrayGeometry& geometry) const {
  return map(MappingContext{shape, geometry});
}

MappingDecision Mapper::map_parallel(const ConvShape& shape,
                                     const ArrayGeometry& geometry,
                                     ThreadPool& pool) const {
  MappingContext context{shape, geometry};
  context.pool = &pool;
  return map(context);
}

std::unique_ptr<Mapper> make_mapper(const std::string& name) {
  return MapperRegistry::instance().create(name);
}

}  // namespace vwsdk
