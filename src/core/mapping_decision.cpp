#include "core/mapping_decision.h"

#include "common/error.h"
#include "common/string_util.h"
#include "core/exhaustive_mapper.h"
#include "core/im2col_mapper.h"
#include "core/pruned_mapper.h"
#include "core/sdk_mapper.h"
#include "core/smd_mapper.h"
#include "core/vwsdk_mapper.h"

namespace vwsdk {

bool MappingDecision::is_im2col_fallback() const {
  return cost.window == kernel_window(shape);
}

std::string MappingDecision::table_entry() const {
  if (is_im2col_fallback()) {
    // The paper prints fallback rows with the layer's full channels
    // (e.g. ResNet-18 conv5: "3x3x512x512").
    return cat(shape.kernel_w, "x", shape.kernel_h, "x", shape.in_channels,
               "x", shape.out_channels);
  }
  return cat(cost.window.w, "x", cost.window.h, "x", cost.ic_t, "x",
             cost.oc_t);
}

std::string MappingDecision::to_string() const {
  return cat(algorithm, ": ", table_entry(), " -> ", cost.total, " cycles (",
             cost.to_string(), ")");
}

std::unique_ptr<Mapper> make_mapper(const std::string& name) {
  const std::string key = to_lower(trim(name));
  if (key == "im2col") {
    return std::make_unique<Im2colMapper>();
  }
  if (key == "smd") {
    return std::make_unique<SmdMapper>();
  }
  if (key == "sdk") {
    return std::make_unique<SdkMapper>();
  }
  if (key == "vw-sdk" || key == "vwsdk") {
    return std::make_unique<VwSdkMapper>();
  }
  if (key == "exhaustive") {
    return std::make_unique<ExhaustiveMapper>();
  }
  if (key == "vw-sdk-pruned" || key == "pruned") {
    return std::make_unique<PrunedVwSdkMapper>();
  }
  throw NotFound(cat("unknown mapper '", name,
                     "'; known: im2col, smd, sdk, vw-sdk, vw-sdk-pruned, "
                     "exhaustive"));
}

}  // namespace vwsdk
