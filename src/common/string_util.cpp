#include "common/string_util.h"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <limits>

#include "common/error.h"

namespace vwsdk {

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(text.substr(start));
      return fields;
    }
    fields.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string trim(std::string_view text) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && is_space(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && is_space(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out += separator;
    }
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

long long parse_count(std::string_view text) {
  const std::string trimmed = trim(text);
  VWSDK_REQUIRE(!trimmed.empty(), "parse_count: empty string");
  long long value = 0;
  for (const char c : trimmed) {
    VWSDK_REQUIRE(c >= '0' && c <= '9',
                  cat("parse_count: non-digit in \"", trimmed, "\""));
    const long long digit = c - '0';
    VWSDK_REQUIRE(
        value <= (std::numeric_limits<long long>::max() - digit) / 10,
        cat("parse_count: overflow in \"", trimmed, "\""));
    value = value * 10 + digit;
  }
  return value;
}

std::string format_fixed(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string with_thousands(long long value) {
  const bool negative = value < 0;
  std::string digits = std::to_string(negative ? -value : value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) {
      out.push_back(',');
    }
    out.push_back(*it);
    ++count;
  }
  if (negative) {
    out.push_back('-');
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace vwsdk
