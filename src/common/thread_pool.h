#pragma once

/// @file thread_pool.h
/// A fixed-size, futures-based worker pool with no dependencies beyond
/// the standard library.
///
/// Design notes:
///  * Tasks are submitted with `submit()` and return a `std::future`;
///    exceptions thrown by a task propagate through the future.
///  * The pool is *non-reentrant*: a task must never block on the future
///    of another task submitted to the same pool (with every worker
///    occupied such a wait can never be satisfied).  The network
///    optimizer therefore uses the pool at exactly one level at a time --
///    either across layers or across window candidates, never nested.
///  * `parallel_chunks()` is the bulk primitive the mapping code uses:
///    split an index range into contiguous chunks, run them on the pool,
///    and block until all complete (rethrowing the first task exception).
///
/// Thread count resolution (`default_thread_count`): the `VWSDK_THREADS`
/// environment variable when set to a positive integer, otherwise
/// `std::thread::hardware_concurrency()`; always clamped to [1, 256].
/// An unparseable or non-positive `VWSDK_THREADS` degrades to the
/// hardware default and logs a one-time warning (per distinct bad
/// value) naming the value and the fallback.

#include <functional>
#include <future>
#include <memory>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/types.h"

namespace vwsdk {

/// Fixed-size worker pool executing submitted tasks FIFO.
class ThreadPool {
 public:
  /// Start `threads` workers; `threads <= 0` means default_thread_count().
  explicit ThreadPool(int threads = 0);

  /// Drains nothing: joins after finishing all queued tasks.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueue `task`; the returned future yields its result (or rethrows
  /// its exception).
  template <typename F>
  auto submit(F task) -> std::future<std::invoke_result_t<F&>> {
    using Result = std::invoke_result_t<F&>;
    auto packaged = std::make_shared<std::packaged_task<Result()>>(
        std::move(task));
    std::future<Result> future = packaged->get_future();
    enqueue([packaged]() { (*packaged)(); });
    return future;
  }

  /// `VWSDK_THREADS` env var if set to a positive integer, else
  /// hardware_concurrency(); clamped to [1, 256].
  static int default_thread_count();

  /// `requested > 0` passes through (clamped to 256); otherwise
  /// default_thread_count().
  static int resolve_thread_count(int requested);

 private:
  void enqueue(std::function<void()> job) VWSDK_EXCLUDES(mutex_);
  void worker_loop() VWSDK_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_ VWSDK_GUARDED_BY(mutex_);
  Mutex mutex_;
  CondVar ready_;
  bool stopping_ VWSDK_GUARDED_BY(mutex_) = false;
};

/// Run `fn(begin, end)` over [0, n) split into contiguous chunks spread
/// across the pool; blocks until every chunk finishes.  The first chunk
/// exception (in chunk order) is rethrown after all chunks complete.
/// Must not be called from inside a task running on the same pool.
void parallel_chunks(ThreadPool& pool, Count n,
                     const std::function<void(Count begin, Count end)>& fn);

}  // namespace vwsdk
