#pragma once

/// @file checked_math.h
/// Overflow-checked 64-bit integer arithmetic for the accounting paths.
///
/// Every headline number in this reproduction is a product chain:
/// cycles = N_pw x AR x AC (Eq. (8)), grouped layers scale by G, chip
/// plans by batch, and the traffic planner doubles replica counts.  A
/// silent int64 wrap in any of those turns a Pareto frontier into quiet
/// garbage without failing a test, so the house rule (see
/// docs/STATIC_ANALYSIS.md) is that accounting arithmetic goes through
/// these helpers:
///
///  * `try_mul` / `try_add`    -- bool-returning, full signed domain, for
///                                callers that handle overflow inline;
///  * `checked_mul` / `checked_add` / `checked_ceil_div`
///                             -- throwing: non-negative operands
///                                (InvalidArgument otherwise), `Overflow`
///                                when the result exceeds INT64_MAX;
///  * `saturating_mul` / `saturating_add`
///                             -- clamp to the int64 range, for diagnostic
///                                quantities where a pegged value is more
///                                useful than an exception;
///  * `checked_cast<To>`       -- narrowing conversion that throws
///                                `Overflow` instead of truncating.
///
/// Detection uses `__builtin_*_overflow` on GCC/Clang (single instruction
/// plus a flag test) with a portable divide-based fallback elsewhere.
/// Everything is constexpr: an overflowing constant expression fails to
/// compile instead of wrapping.

#include <cstdint>
#include <limits>
#include <type_traits>

#include "common/error.h"
#include "common/string_util.h"

namespace vwsdk {

#if defined(__GNUC__) || defined(__clang__)
#define VWSDK_HAS_BUILTIN_OVERFLOW 1
#else
#define VWSDK_HAS_BUILTIN_OVERFLOW 0
#endif

namespace detail {

/// True iff a * b is not representable in int64.  Portable formulation
/// used where the compiler builtins are unavailable; division-based, so
/// it never executes an overflowing operation itself.
constexpr bool mul_overflows_portable(std::int64_t a, std::int64_t b) {
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  if (a == 0 || b == 0) {
    return false;
  }
  if (a > 0) {
    if (b > 0) {
      return a > kMax / b;
    }
    return b < kMin / a;
  }
  if (b > 0) {
    return a < kMin / b;
  }
  // a < 0 and b < 0: the product is positive; truncating division by a
  // negative divisor rounds toward zero, so a < kMax / b iff a*b > kMax.
  return a < kMax / b;
}

}  // namespace detail

/// a * b with overflow detection over the full signed domain.  Returns
/// false (leaving `out` untouched) iff the product is unrepresentable.
constexpr bool try_mul(std::int64_t a, std::int64_t b, std::int64_t& out) {
#if VWSDK_HAS_BUILTIN_OVERFLOW
  std::int64_t result = 0;
  if (__builtin_mul_overflow(a, b, &result)) {
    return false;
  }
  out = result;
  return true;
#else
  if (detail::mul_overflows_portable(a, b)) {
    return false;
  }
  out = a * b;
  return true;
#endif
}

/// a + b with overflow detection over the full signed domain.  Returns
/// false (leaving `out` untouched) iff the sum is unrepresentable.
constexpr bool try_add(std::int64_t a, std::int64_t b, std::int64_t& out) {
#if VWSDK_HAS_BUILTIN_OVERFLOW
  std::int64_t result = 0;
  if (__builtin_add_overflow(a, b, &result)) {
    return false;
  }
  out = result;
  return true;
#else
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  if ((b > 0 && a > kMax - b) || (b < 0 && a < kMin - b)) {
    return false;
  }
  out = a + b;
  return true;
#endif
}

/// Overflow-checked multiplication of non-negative counts.  Negative
/// operands violate the accounting domain and throw `InvalidArgument`;
/// an unrepresentable product throws `Overflow` (ErrorCode::kOverflow).
constexpr std::int64_t checked_mul(std::int64_t a, std::int64_t b) {
  if (a < 0 || b < 0) {
    throw InvalidArgument(
        cat("checked_mul requires non-negative operands, got ", a, " * ", b));
  }
  std::int64_t result = 0;
  if (!try_mul(a, b, result)) {
    throw Overflow(cat("checked_mul overflow: ", a, " * ", b,
                       " exceeds INT64_MAX"));
  }
  return result;
}

/// Overflow-checked addition of non-negative counts.  Negative operands
/// throw `InvalidArgument`; an unrepresentable sum throws `Overflow`.
constexpr std::int64_t checked_add(std::int64_t a, std::int64_t b) {
  if (a < 0 || b < 0) {
    throw InvalidArgument(
        cat("checked_add requires non-negative operands, got ", a, " + ", b));
  }
  std::int64_t result = 0;
  if (!try_add(a, b, result)) {
    throw Overflow(cat("checked_add overflow: ", a, " + ", b,
                       " exceeds INT64_MAX"));
  }
  return result;
}

/// ceil(a / b) for a >= 0, b > 0, formulated as `a/b + (a%b != 0)` so no
/// intermediate (the classic `a + b - 1`) can overflow anywhere in the
/// valid domain.  b <= 0 -- including divide-by-zero -- throws
/// `InvalidArgument`, as does a < 0.
constexpr std::int64_t checked_ceil_div(std::int64_t a, std::int64_t b) {
  if (a < 0 || b <= 0) {
    throw InvalidArgument(
        cat("checked_ceil_div requires a >= 0 and b > 0, got ", a, " / ", b));
  }
  return a / b + (a % b != 0 ? 1 : 0);
}

/// a * b clamped into the int64 range instead of throwing.  For
/// diagnostic quantities (progress totals, report denominators) where a
/// pegged INT64_MAX reads better than an exception.
constexpr std::int64_t saturating_mul(std::int64_t a, std::int64_t b) {
  std::int64_t result = 0;
  if (try_mul(a, b, result)) {
    return result;
  }
  const bool negative = (a < 0) != (b < 0);
  return negative ? std::numeric_limits<std::int64_t>::min()
                  : std::numeric_limits<std::int64_t>::max();
}

/// a + b clamped into the int64 range instead of throwing.
constexpr std::int64_t saturating_add(std::int64_t a, std::int64_t b) {
  std::int64_t result = 0;
  if (try_add(a, b, result)) {
    return result;
  }
  return b > 0 ? std::numeric_limits<std::int64_t>::max()
               : std::numeric_limits<std::int64_t>::min();
}

/// Narrowing integer conversion that throws `Overflow` when `value` does
/// not fit `To`, instead of truncating bits like `static_cast` does.
/// The guard rail for int64 -> Dim (int32) and int64 -> int conversions
/// at API boundaries (CLI flags, protocol fields, report counters).
template <typename To, typename From>
constexpr To checked_cast(From value) {
  static_assert(std::is_integral_v<To> && std::is_integral_v<From>,
                "checked_cast is for integer types");
  static_assert(std::is_signed_v<To> && std::is_signed_v<From>,
                "checked_cast is defined for signed integers (Count, Dim)");
  // Compare in int64 (the widest type in play) so neither bound is
  // itself truncated by the comparison.
  const auto wide = static_cast<std::int64_t>(value);
  if (wide < static_cast<std::int64_t>(std::numeric_limits<To>::min()) ||
      wide > static_cast<std::int64_t>(std::numeric_limits<To>::max())) {
    throw Overflow(cat("checked_cast: value ", value,
                       " does not fit the destination type"));
  }
  return static_cast<To>(value);
}

}  // namespace vwsdk
