#pragma once

/// @file error.h
/// Exception hierarchy and contract-checking macros for the vwsdk library.
///
/// Policy (see DESIGN.md §7 and C++ Core Guidelines I.5/I.6, E.2):
///  * Violations of a *public API precondition* throw `vwsdk::InvalidArgument`
///    (callers can recover, e.g. a CLI rejecting bad flags).
///  * Violations of an *internal invariant* indicate a library bug and throw
///    `vwsdk::InternalError`; tests exercise these paths deliberately.
///  * Both derive from `vwsdk::Error` so applications can catch one type.

#include <stdexcept>
#include <string>

namespace vwsdk {

/// Root of the vwsdk exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

/// A caller violated a documented precondition of a public API.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what_arg) : Error(what_arg) {}
};

/// An internal invariant of the library failed; indicates a bug in vwsdk
/// itself (or memory corruption), not in the caller.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what_arg) : Error(what_arg) {}
};

/// A requested entity (model name, file, option) does not exist.
class NotFound : public Error {
 public:
  explicit NotFound(const std::string& what_arg) : Error(what_arg) {}
};

/// An arithmetic result is not representable in its type.  Thrown by the
/// checked_* helpers in common/checked_math.h when a cycle/energy/capacity
/// product or sum would exceed INT64_MAX: the configuration is structurally
/// valid but its accounting does not fit, so the caller gets a structured
/// error instead of a wrapped (negative) total.
class Overflow : public Error {
 public:
  explicit Overflow(const std::string& what_arg) : Error(what_arg) {}
};

/// Stable machine-readable error categories, shared by every error
/// surface: the CLI maps them to process exit codes (0/1/2, see
/// core/cli_support.h) and `vwsdk serve` embeds their names in JSON
/// error responses -- the same failure always carries the same code on
/// both surfaces.  The table is documented in docs/SERVE.md and the
/// names are a compatibility contract: never renumber or rename, only
/// append.
enum class ErrorCode {
  // Categories of the exception hierarchy above.
  kInvalidArgument,  ///< InvalidArgument: a violated API/usage precondition
  kNotFound,         ///< NotFound: a name/file/option that does not exist
  kInternal,         ///< InternalError: a library bug, not a caller error
  kRuntime,          ///< any other failure (I/O, infeasible plan, ...)
  // Request-level categories raised by the serve protocol layer
  // (serve/protocol.h); they never surface from library calls.
  kBadRequest,   ///< malformed request line (bad JSON, bad/missing fields)
  kUnknownOp,    ///< a well-formed request naming an unregistered op
  kTooLarge,     ///< request line beyond the protocol size limit
  kOverloaded,   ///< rejected by admission control, retry later
  kShuttingDown,  ///< arrived after drain began; the daemon is exiting
  // Appended after the serve codes (the enum is append-only).
  kOverflow  ///< Overflow: an accounting result exceeds INT64_MAX
};

/// The stable wire name of `code` ("invalid_argument", "overloaded", ...).
const char* error_code_name(ErrorCode code);

/// Classify a caught exception into its ErrorCode category:
/// InvalidArgument / NotFound / InternalError / Overflow map to their own
/// codes and everything else (vwsdk::Error or any std::exception) to
/// kRuntime.
ErrorCode classify_exception(const std::exception& e);

/// True for the codes that mean "the caller asked for something wrong"
/// (kInvalidArgument, kNotFound, kOverflow, and the serve request-level
/// codes except kOverloaded/kShuttingDown); the CLI turns these into exit
/// code 2 and everything else into exit code 1.
bool is_usage_error(ErrorCode code);

namespace detail {
[[noreturn]] void throw_invalid_argument(const char* expr, const char* file,
                                         int line, const std::string& message);
[[noreturn]] void throw_internal_error(const char* expr, const char* file,
                                       int line, const std::string& message);
}  // namespace detail

}  // namespace vwsdk

/// Check a documented precondition of a public API; throws
/// `vwsdk::InvalidArgument` with source location context on failure.
#define VWSDK_REQUIRE(expr, message)                                        \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::vwsdk::detail::throw_invalid_argument(#expr, __FILE__, __LINE__,    \
                                              (message));                   \
    }                                                                       \
  } while (false)

/// Check an internal invariant; throws `vwsdk::InternalError` on failure.
/// Always active (the costs here are negligible next to the algorithms).
#define VWSDK_ASSERT(expr, message)                                         \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::vwsdk::detail::throw_internal_error(#expr, __FILE__, __LINE__,      \
                                            (message));                     \
    }                                                                       \
  } while (false)
