#pragma once

/// @file error.h
/// Exception hierarchy and contract-checking macros for the vwsdk library.
///
/// Policy (see DESIGN.md §7 and C++ Core Guidelines I.5/I.6, E.2):
///  * Violations of a *public API precondition* throw `vwsdk::InvalidArgument`
///    (callers can recover, e.g. a CLI rejecting bad flags).
///  * Violations of an *internal invariant* indicate a library bug and throw
///    `vwsdk::InternalError`; tests exercise these paths deliberately.
///  * Both derive from `vwsdk::Error` so applications can catch one type.

#include <stdexcept>
#include <string>

namespace vwsdk {

/// Root of the vwsdk exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

/// A caller violated a documented precondition of a public API.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what_arg) : Error(what_arg) {}
};

/// An internal invariant of the library failed; indicates a bug in vwsdk
/// itself (or memory corruption), not in the caller.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what_arg) : Error(what_arg) {}
};

/// A requested entity (model name, file, option) does not exist.
class NotFound : public Error {
 public:
  explicit NotFound(const std::string& what_arg) : Error(what_arg) {}
};

namespace detail {
[[noreturn]] void throw_invalid_argument(const char* expr, const char* file,
                                         int line, const std::string& message);
[[noreturn]] void throw_internal_error(const char* expr, const char* file,
                                       int line, const std::string& message);
}  // namespace detail

}  // namespace vwsdk

/// Check a documented precondition of a public API; throws
/// `vwsdk::InvalidArgument` with source location context on failure.
#define VWSDK_REQUIRE(expr, message)                                        \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::vwsdk::detail::throw_invalid_argument(#expr, __FILE__, __LINE__,    \
                                              (message));                   \
    }                                                                       \
  } while (false)

/// Check an internal invariant; throws `vwsdk::InternalError` on failure.
/// Always active (the costs here are negligible next to the algorithms).
#define VWSDK_ASSERT(expr, message)                                         \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::vwsdk::detail::throw_internal_error(#expr, __FILE__, __LINE__,      \
                                            (message));                     \
    }                                                                       \
  } while (false)
