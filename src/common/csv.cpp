#include "common/csv.h"

#include <ostream>

#include "common/error.h"

namespace vwsdk {

CsvWriter::CsvWriter(std::ostream& os, const std::vector<std::string>& header)
    : os_(os), columns_(header.size()) {
  VWSDK_REQUIRE(columns_ > 0, "CSV header must have at least one column");
  emit(header);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  VWSDK_REQUIRE(cells.size() == columns_,
                "CSV row width must match header width");
  emit(cells);
  ++rows_written_;
}

void CsvWriter::emit(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) {
      os_ << ',';
    }
    os_ << csv_escape(cells[i]);
  }
  os_ << '\n';
}

std::string csv_escape(const std::string& field) {
  // '#' at the start of a field is quoted too: the network-spec CSV
  // dialect (nn/network_spec.h) treats '#'-leading *lines* as comments,
  // so a bare "#..." first cell would vanish on re-parse.  Quoting is
  // always RFC-4180-legal and keeps every exported field round-trippable.
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos ||
      (!field.empty() && field.front() == '#');
  if (!needs_quotes) {
    return field;
  }
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

std::vector<std::string> csv_parse_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  VWSDK_REQUIRE(!in_quotes, "CSV line ends inside a quoted field");
  fields.push_back(std::move(current));
  return fields;
}

}  // namespace vwsdk
