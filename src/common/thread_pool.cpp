#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <set>
#include <string>

#include "common/error.h"
#include "common/logging.h"
#include "common/math_util.h"
#include "common/string_util.h"

namespace vwsdk {

namespace {

constexpr int kMaxThreads = 256;

int clamp_threads(long long value) {
  return static_cast<int>(
      std::clamp<long long>(value, 1, kMaxThreads));
}

// The warn-once cache lives at namespace scope (not function-local
// statics) so the guarded_by relation between the mutex and the set is
// expressible to the thread-safety analysis.
Mutex g_bad_threads_mutex;
std::set<std::string> g_bad_threads_warned
    VWSDK_GUARDED_BY(g_bad_threads_mutex);

// A mis-typed VWSDK_THREADS should degrade, not abort a mapping run --
// but it must not degrade *silently* either, or a fat-fingered value
// quietly changes every wall time.  Warn once per distinct bad value
// (default_thread_count is called per pool construction; repeating the
// warning every time would drown the log).
void warn_bad_threads_env(const char* value, int fallback) {
  {
    const MutexLock lock(g_bad_threads_mutex);
    if (!g_bad_threads_warned.insert(value).second) {
      return;
    }
  }
  // Log outside the lock: the sink is user code and must not run under
  // this cache's mutex (leaf-lock discipline, docs/CONCURRENCY.md).
  log_warn("VWSDK_THREADS=\"", value,
           "\" is not a positive integer; using ", fallback,
           " worker thread(s) instead");
}

}  // namespace

int ThreadPool::default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  const int hardware = clamp_threads(hw == 0 ? 1 : static_cast<long long>(hw));
  if (const char* env = std::getenv("VWSDK_THREADS")) {
    try {
      const long long parsed = parse_count(env);
      if (parsed > 0) {
        return clamp_threads(parsed);
      }
      warn_bad_threads_env(env, hardware);  // "0"
    } catch (const InvalidArgument&) {
      // Garbage, a sign, or overflow: parse_count rejects them all.
      warn_bad_threads_env(env, hardware);
    }
  }
  return hardware;
}

int ThreadPool::resolve_thread_count(int requested) {
  if (requested > 0) {
    return clamp_threads(requested);
  }
  return default_thread_count();
}

ThreadPool::ThreadPool(int threads) {
  const int count = resolve_thread_count(threads);
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this]() { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stopping_ = true;
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    const MutexLock lock(mutex_);
    VWSDK_ASSERT(!stopping_, "submit() on a stopping ThreadPool");
    queue_.push(std::move(job));
  }
  ready_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      const MutexLock lock(mutex_);
      // Explicit predicate loop (not a wait-with-lambda): the guarded
      // reads stay in this locked scope where the analysis sees them.
      while (!stopping_ && queue_.empty()) {
        ready_.wait(mutex_);
      }
      if (queue_.empty()) {
        return;  // stopping_ and drained
      }
      job = std::move(queue_.front());
      queue_.pop();
    }
    job();  // packaged_task captures exceptions into its future
  }
}

void parallel_chunks(ThreadPool& pool, Count n,
                     const std::function<void(Count, Count)>& fn) {
  if (n <= 0) {
    return;
  }
  const Count workers = pool.size();
  // Several chunks per worker keeps uneven chunk costs from leaving
  // workers idle at the tail of the range.
  const Count target_chunks = std::min<Count>(n, workers * 4);
  const Count chunk = ceil_div(n, target_chunks);
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<std::size_t>(target_chunks));
  try {
    for (Count begin = 0; begin < n; begin += chunk) {
      const Count end = std::min<Count>(begin + chunk, n);
      futures.push_back(
          pool.submit([&fn, begin, end]() { fn(begin, end); }));
    }
  } catch (...) {
    // submit() failed mid-loop (e.g. bad_alloc).  Already-enqueued
    // chunks hold references to `fn` and the caller's captures; drain
    // them before unwinding destroys what they point at.
    for (std::future<void>& future : futures) {
      try {
        future.get();
      } catch (...) {
        // The caller sees the submit failure; chunk errors are moot.
      }
    }
    throw;
  }
  std::exception_ptr first_error;
  for (std::future<void>& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) {
        first_error = std::current_exception();
      }
    }
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace vwsdk
