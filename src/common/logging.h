#pragma once

/// @file logging.h
/// A tiny leveled logger.
///
/// The library itself never logs on hot paths; logging exists for the
/// search-trace facilities, the examples, and the benchmark harness.  The
/// default sink is std::clog; tests install a capturing sink.

#include <functional>
#include <iostream>
#include <sstream>
#include <string>

#include "common/mutex.h"

namespace vwsdk {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Human-readable name of a level ("DEBUG", "INFO", ...).
const char* log_level_name(LogLevel level);

/// Process-wide logger configuration.  Thread-safe.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  /// The singleton instance (a deliberate, documented exception to the
  /// "avoid singletons" guideline: log configuration is genuinely
  /// process-global and mutable only in tests/CLIs).
  static Logger& instance();

  /// Drop messages below `level`.
  void set_level(LogLevel level) VWSDK_EXCLUDES(mutex_);
  LogLevel level() const VWSDK_EXCLUDES(mutex_);

  /// Replace the output sink (pass nullptr to restore the default
  /// std::clog sink).
  void set_sink(Sink sink) VWSDK_EXCLUDES(mutex_);

  /// Emit a message (already formatted) at `level`.  The sink runs
  /// *outside* the logger mutex (a sink that logs again, or blocks,
  /// must not deadlock the process), so set_sink during a concurrent
  /// log() may let one in-flight message reach the previous sink.
  void log(LogLevel level, const std::string& message) VWSDK_EXCLUDES(mutex_);

 private:
  Logger() = default;

  mutable Mutex mutex_;
  LogLevel level_ VWSDK_GUARDED_BY(mutex_) = LogLevel::kInfo;
  Sink sink_ VWSDK_GUARDED_BY(mutex_);  // empty -> default sink
};

namespace detail {

template <typename... Parts>
void log_parts(LogLevel level, const Parts&... parts) {
  if (level < Logger::instance().level()) {
    return;
  }
  std::ostringstream os;
  (os << ... << parts);
  Logger::instance().log(level, os.str());
}

}  // namespace detail

template <typename... Parts>
void log_debug(const Parts&... parts) {
  detail::log_parts(LogLevel::kDebug, parts...);
}
template <typename... Parts>
void log_info(const Parts&... parts) {
  detail::log_parts(LogLevel::kInfo, parts...);
}
template <typename... Parts>
void log_warn(const Parts&... parts) {
  detail::log_parts(LogLevel::kWarn, parts...);
}
template <typename... Parts>
void log_error(const Parts&... parts) {
  detail::log_parts(LogLevel::kError, parts...);
}

}  // namespace vwsdk
