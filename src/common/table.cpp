#include "common/table.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace vwsdk {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  VWSDK_REQUIRE(!headers_.empty(), "TextTable requires at least one column");
  alignments_.assign(headers_.size(), Align::kRight);
  alignments_.front() = Align::kLeft;
}

void TextTable::set_alignments(std::vector<Align> alignments) {
  VWSDK_REQUIRE(alignments.size() == headers_.size(),
                "alignment count must match column count");
  alignments_ = std::move(alignments);
}

void TextTable::add_row(std::vector<std::string> cells) {
  VWSDK_REQUIRE(cells.size() == headers_.size(),
                "row cell count must match column count");
  rows_.push_back(Row{std::move(cells), /*separator=*/false});
}

void TextTable::add_separator() {
  rows_.push_back(Row{{}, /*separator=*/true});
}

std::string TextTable::render() const {
  // Column widths: max over header and all cells.
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const Row& row : rows_) {
    if (row.separator) {
      continue;
    }
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  const auto rule = [&widths]() {
    std::string line = "+";
    for (const std::size_t w : widths) {
      line += std::string(w + 2, '-');
      line += '+';
    }
    line += '\n';
    return line;
  };

  const auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::size_t pad = widths[c] - cells[c].size();
      line += ' ';
      if (alignments_[c] == Align::kRight) {
        line += std::string(pad, ' ');
        line += cells[c];
      } else {
        line += cells[c];
        line += std::string(pad, ' ');
      }
      line += " |";
    }
    line += '\n';
    return line;
  };

  std::string out = rule();
  out += render_row(headers_);
  out += rule();
  for (const Row& row : rows_) {
    if (row.separator) {
      out += rule();
    } else {
      out += render_row(row.cells);
    }
  }
  out += rule();
  return out;
}

std::ostream& operator<<(std::ostream& os, const TextTable& table) {
  return os << table.render();
}

std::vector<std::string> row_cells(std::initializer_list<std::string> cells) {
  return std::vector<std::string>(cells);
}

}  // namespace vwsdk
