#pragma once

/// @file thread_annotations.h
/// Clang `-Wthread-safety` annotation macros (no-ops elsewhere).
///
/// These macros let a type document its own locking discipline in a
/// form the compiler checks: a member guarded by a mutex is declared
/// `VWSDK_GUARDED_BY(mutex_)`, a function that must be called with the
/// lock held is `VWSDK_REQUIRES(mutex_)`, and clang's
/// `-Wthread-safety` analysis (enabled with `-Werror` on every clang
/// CI lane) rejects any access that cannot prove the capability is
/// held.  GCC and MSVC do not implement the analysis; there the macros
/// expand to nothing and remain pure documentation.
///
/// The standard library's `std::mutex` carries no capability
/// attribute, so the analysis cannot track it directly -- lock with
/// the annotated `vwsdk::Mutex` / `vwsdk::MutexLock` wrappers
/// (common/mutex.h) instead of `std::mutex` / `std::lock_guard`.  The
/// repo-invariant lint (tools/vwsdk_lint.py, ctest `lint.invariants`)
/// enforces both halves: no raw `std::mutex` members outside
/// common/mutex.h, and every `Mutex` member referenced by at least one
/// `VWSDK_GUARDED_BY` / `VWSDK_REQUIRES` annotation.
///
/// How to read a failure, and the lock hierarchy these annotations
/// encode: docs/CONCURRENCY.md.

#if defined(__clang__) && !defined(SWIG)
#define VWSDK_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define VWSDK_THREAD_ANNOTATION(x)  // no-op: gcc/msvc skip the analysis
#endif

/// Marks a class as a lockable capability ("mutex" in diagnostics).
#define VWSDK_CAPABILITY(x) VWSDK_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability (e.g. vwsdk::MutexLock).
#define VWSDK_SCOPED_CAPABILITY VWSDK_THREAD_ANNOTATION(scoped_lockable)

/// Declares that a data member is protected by the given capability.
#define VWSDK_GUARDED_BY(x) VWSDK_THREAD_ANNOTATION(guarded_by(x))

/// Declares that the *pointee* of a pointer member is protected.
#define VWSDK_PT_GUARDED_BY(x) VWSDK_THREAD_ANNOTATION(pt_guarded_by(x))

/// The function must be called with the capability held (and does not
/// release it).
#define VWSDK_REQUIRES(...) \
  VWSDK_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// The function must be called *without* the capability held (it
/// acquires it itself, or would deadlock).
#define VWSDK_EXCLUDES(...) VWSDK_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// The function acquires the capability and holds it on return.
#define VWSDK_ACQUIRE(...) \
  VWSDK_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function releases the capability.
#define VWSDK_RELEASE(...) \
  VWSDK_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `result`.
#define VWSDK_TRY_ACQUIRE(result, ...) \
  VWSDK_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// The function returns a reference to the given capability (lets
/// accessors expose an internal lock without losing tracking).
#define VWSDK_RETURN_CAPABILITY(x) VWSDK_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function's body is exempt from the analysis.
/// Reserve for code the analysis cannot express; say why at the use.
#define VWSDK_NO_THREAD_SAFETY_ANALYSIS \
  VWSDK_THREAD_ANNOTATION(no_thread_safety_analysis)
