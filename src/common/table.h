#pragma once

/// @file table.h
/// ASCII table rendering for the benchmark harness.
///
/// Every paper-reproduction benchmark prints its table/figure data in the
/// same row/column layout the paper uses; TextTable gives them a uniform,
/// aligned, monospace rendering.

#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.h"

namespace vwsdk {

/// Column alignment inside a TextTable.
enum class Align { kLeft, kRight };

/// A simple monospace table: set headers, append rows, render.
///
/// Example output:
/// ```
/// +-------+----------+----------+
/// | layer |      SDK |   VW-SDK |
/// +-------+----------+----------+
/// | 1     |     2809 |     1431 |
/// +-------+----------+----------+
/// ```
class TextTable {
 public:
  /// Create a table with the given column headers.  Default alignment is
  /// left for the first column and right for the rest (the common shape of
  /// the paper's tables: a label column followed by numbers).
  explicit TextTable(std::vector<std::string> headers);

  /// Override alignment per column (size must match header count).
  void set_alignments(std::vector<Align> alignments);

  /// Append a row; throws InvalidArgument if the cell count differs from
  /// the header count.
  void add_row(std::vector<std::string> cells);

  /// Append a horizontal separator line before the next row.
  void add_separator();

  /// Number of data rows added so far.
  Count row_count() const { return static_cast<Count>(rows_.size()); }

  /// Render into a string (with a trailing newline).
  std::string render() const;

  /// Stream rendering.
  friend std::ostream& operator<<(std::ostream& os, const TextTable& table);

 private:
  struct Row {
    std::vector<std::string> cells;  // empty => separator
    bool separator = false;
  };

  std::vector<std::string> headers_;
  std::vector<Align> alignments_;
  std::vector<Row> rows_;
};

/// Convenience: convert mixed cell data to strings.
std::vector<std::string> row_cells(std::initializer_list<std::string> cells);

}  // namespace vwsdk
