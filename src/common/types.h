#pragma once

/// @file types.h
/// Fundamental integer vocabulary types shared across the vwsdk library.
///
/// Following the C++ Core Guidelines we use *signed* integers for all
/// arithmetic quantities (ES.102, ES.106).  Dimensions of tensors, kernels
/// and crossbar arrays are small and fit `std::int32_t`; cycle counts and
/// cell counts can reach the billions for large sweeps and therefore use
/// `std::int64_t`.

#include <cstdint>

namespace vwsdk {

/// A spatial or channel dimension (image width, kernel height, channel
/// count, crossbar row count, ...).  Always non-negative in valid objects;
/// signedness is for safe arithmetic, not for encoding sentinel values.
using Dim = std::int32_t;

/// A (possibly very large) count of discrete items: computing cycles,
/// windows, memory cells, byte sizes.
using Count = std::int64_t;

/// Number of PIM computing cycles.  The central cost unit of the paper:
/// one cycle = one analog vector-matrix multiplication over one array
/// programming (Eq. (1) of the paper).
using Cycles = std::int64_t;

}  // namespace vwsdk
