#pragma once

/// @file random.h
/// Deterministic pseudo-random number generation for synthetic workloads.
///
/// The paper never uses real trained weights -- cycle counts and
/// utilization depend only on layer dimensions.  Our functional simulator,
/// however, executes mappings on real tensors to prove placement
/// correctness.  Those tensors are generated here, seeded and fully
/// deterministic so that every test and benchmark is reproducible bit for
/// bit across runs and platforms.
///
/// Implementation: SplitMix64 for seeding, xoshiro256** for the stream
/// (public-domain algorithms by Blackman & Vigna).  We avoid `<random>`'s
/// distributions because their outputs are not portable across standard
/// library implementations.

#include <array>
#include <cstdint>

#include "common/error.h"

namespace vwsdk {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Next 64-bit value.
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality, reproducible 64-bit PRNG.
class Rng {
 public:
  /// Construct from a 64-bit seed (expanded via SplitMix64).
  explicit Rng(std::uint64_t seed = 0x5eed'5eed'5eed'5eedULL) {
    SplitMix64 sm(seed);
    for (auto& word : state_) {
      word = sm.next();
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) {
      throw InvalidArgument("Rng::uniform_int requires lo <= hi");
    }
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1ULL;
    if (span == 0) {  // full 64-bit range
      return static_cast<std::int64_t>(next_u64());
    }
    // Debiased modulo (rejection sampling on the top of the range).
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
    std::uint64_t raw = next_u64();
    while (raw >= limit) {
      raw = next_u64();
    }
    return lo + static_cast<std::int64_t>(raw % span);
  }

  /// Uniform double in [0, 1).
  double uniform_double() {
    // 53 top bits -> [0,1) with full double precision.
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform_double(double lo, double hi) {
    if (!(lo < hi)) {
      throw InvalidArgument("Rng::uniform_double requires lo < hi");
    }
    return lo + (hi - lo) * uniform_double();
  }

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Exponential interarrival time with the given rate (events per unit
  /// time); mean 1/rate.  Inverse-CDF transform, so exactly one
  /// `next_u64()` is consumed per draw (modulo the log(0) guard).
  double exponential(double rate);

  /// Poisson-distributed event count with the given mean.  Knuth's
  /// product-of-uniforms method, chunked so that means far beyond the
  /// range where exp(-mean) underflows (about 700) stay exact via the
  /// additivity of independent Poisson draws.
  std::int64_t poisson(double mean);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace vwsdk
