#include "common/cli.h"

#include <iostream>
#include <sstream>

#include "common/error.h"
#include "common/string_util.h"

namespace vwsdk {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::add_option(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  VWSDK_REQUIRE(!options_.contains(name), cat("duplicate option --", name));
  options_[name] = Option{help, default_value, default_value,
                          /*is_flag=*/false, /*is_int=*/false};
  declaration_order_.push_back(name);
}

void ArgParser::add_int_option(const std::string& name,
                               long long default_value,
                               const std::string& help) {
  VWSDK_REQUIRE(!options_.contains(name), cat("duplicate option --", name));
  const std::string text = std::to_string(default_value);
  options_[name] =
      Option{help, text, text, /*is_flag=*/false, /*is_int=*/true};
  declaration_order_.push_back(name);
}

void ArgParser::add_flag(const std::string& name, const std::string& help) {
  VWSDK_REQUIRE(!options_.contains(name), cat("duplicate option --", name));
  options_[name] =
      Option{help, "false", "false", /*is_flag=*/true, /*is_int=*/false};
  declaration_order_.push_back(name);
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << help();
      return false;
    }
    if (!starts_with(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> inline_value;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    const auto it = options_.find(name);
    VWSDK_REQUIRE(it != options_.end(), cat("unknown option --", name));
    Option& option = it->second;
    if (option.is_flag) {
      VWSDK_REQUIRE(!inline_value.has_value(),
                    cat("flag --", name, " does not take a value"));
      option.value = "true";
      continue;
    }
    std::string value;
    if (inline_value.has_value()) {
      value = *inline_value;
    } else {
      VWSDK_REQUIRE(i + 1 < argc, cat("option --", name, " needs a value"));
      value = argv[++i];
    }
    if (option.is_int) {
      (void)parse_count(value);  // validate now, fail early
    }
    option.value = value;
  }
  return true;
}

const ArgParser::Option& ArgParser::find(const std::string& name) const {
  const auto it = options_.find(name);
  if (it == options_.end()) {
    throw NotFound(cat("undeclared option --", name));
  }
  return it->second;
}

std::string ArgParser::get(const std::string& name) const {
  return find(name).value;
}

long long ArgParser::get_int(const std::string& name) const {
  const Option& option = find(name);
  VWSDK_REQUIRE(option.is_int, cat("option --", name, " is not integral"));
  return parse_count(option.value);
}

bool ArgParser::get_flag(const std::string& name) const {
  const Option& option = find(name);
  VWSDK_REQUIRE(option.is_flag, cat("option --", name, " is not a flag"));
  return option.value == "true";
}

std::string ArgParser::help() const {
  std::ostringstream os;
  os << program_ << " - " << description_ << "\n\nOptions:\n";
  for (const std::string& name : declaration_order_) {
    const Option& option = options_.at(name);
    os << "  --" << name;
    if (!option.is_flag) {
      os << " <value>";
    }
    os << "\n      " << option.help;
    if (!option.is_flag) {
      os << " (default: " << option.default_value << ")";
    }
    os << "\n";
  }
  os << "  --help\n      Show this message.\n";
  return os.str();
}

}  // namespace vwsdk
