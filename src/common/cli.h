#pragma once

/// @file cli.h
/// A small declarative command-line parser for the examples and benches.
///
/// Supports `--name value`, `--name=value`, boolean `--flag`, and `--help`
/// generation.  Unknown options are errors; positional arguments are
/// collected in order.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"

namespace vwsdk {

/// Declarative CLI option set with typed accessors.
class ArgParser {
 public:
  /// @param program    argv[0]-style program name for the usage line.
  /// @param description one-line description shown by --help.
  ArgParser(std::string program, std::string description);

  /// Declare a string option with a default value.
  void add_option(const std::string& name, const std::string& default_value,
                  const std::string& help);

  /// Declare an integer option with a default value.
  void add_int_option(const std::string& name, long long default_value,
                      const std::string& help);

  /// Declare a boolean flag (default false; present => true).
  void add_flag(const std::string& name, const std::string& help);

  /// Parse argv.  Returns false if --help was requested (help text is
  /// written to stdout); throws InvalidArgument on malformed input.
  bool parse(int argc, const char* const* argv);

  /// Typed accessors (throw NotFound for undeclared names).
  std::string get(const std::string& name) const;
  long long get_int(const std::string& name) const;
  bool get_flag(const std::string& name) const;

  /// Positional (non-option) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Render the --help text.
  std::string help() const;

 private:
  struct Option {
    std::string help;
    std::string value;       // current (default or parsed) value
    std::string default_value;
    bool is_flag = false;
    bool is_int = false;
  };

  const Option& find(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> declaration_order_;
  std::vector<std::string> positional_;
};

}  // namespace vwsdk
