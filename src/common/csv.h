#pragma once

/// @file csv.h
/// CSV output for benchmark sweeps (so results can be re-plotted outside
/// the repo).  Minimal RFC-4180 quoting.

#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.h"

namespace vwsdk {

/// Writes rows of cells to a std::ostream as CSV.  The writer does not own
/// the stream; keep it alive for the writer's lifetime.
class CsvWriter {
 public:
  /// Bind to an output stream and emit the header row immediately.
  CsvWriter(std::ostream& os, const std::vector<std::string>& header);

  /// Emit one data row; throws InvalidArgument on column-count mismatch.
  void write_row(const std::vector<std::string>& cells);

  /// Rows written (excluding the header).
  Count rows_written() const { return rows_written_; }

 private:
  void emit(const std::vector<std::string>& cells);

  std::ostream& os_;
  std::size_t columns_;
  Count rows_written_ = 0;
};

/// Quote a single CSV field per RFC 4180 (only when needed; fields
/// starting with '#' are also quoted so comment-stripping CSV dialects
/// round-trip them).
std::string csv_escape(const std::string& field);

/// Parse one CSV line into fields (handles quoted fields with embedded
/// commas and doubled quotes; no embedded newlines).
std::vector<std::string> csv_parse_line(const std::string& line);

}  // namespace vwsdk
