#include "common/random.h"

#include <cmath>
#include <numbers>

namespace vwsdk {

double Rng::normal(double mean, double stddev) {
  if (!(stddev >= 0.0)) {
    throw InvalidArgument("Rng::normal requires stddev >= 0");
  }
  // Box-Muller without caching the second variate: reproducibility across
  // call sites matters more here than saving one transcendental call.
  double u1 = uniform_double();
  while (u1 <= 0.0) {  // avoid log(0)
    u1 = uniform_double();
  }
  const double u2 = uniform_double();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  return mean + stddev * radius * std::cos(angle);
}

double Rng::exponential(double rate) {
  if (!(rate > 0.0)) {
    throw InvalidArgument("Rng::exponential requires rate > 0");
  }
  double u = uniform_double();
  while (u <= 0.0) {  // avoid log(0)
    u = uniform_double();
  }
  return -std::log(u) / rate;
}

std::int64_t Rng::poisson(double mean) {
  if (!(mean >= 0.0)) {
    throw InvalidArgument("Rng::poisson requires mean >= 0");
  }
  // Knuth's method draws uniforms until their product falls below
  // exp(-mean); split large means into chunks so the threshold never
  // underflows to zero.  Poisson(a + b) = Poisson(a) + Poisson(b) for
  // independent draws, so chunking preserves the distribution.
  constexpr double kChunk = 500.0;
  std::int64_t count = 0;
  double remaining = mean;
  while (remaining > 0.0) {
    const double step = remaining > kChunk ? kChunk : remaining;
    remaining -= step;
    const double threshold = std::exp(-step);
    double product = 1.0;
    for (;;) {
      product *= uniform_double();
      if (product <= threshold) {
        break;
      }
      ++count;
    }
  }
  return count;
}

}  // namespace vwsdk
