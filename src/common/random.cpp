#include "common/random.h"

#include <cmath>
#include <numbers>

namespace vwsdk {

double Rng::normal(double mean, double stddev) {
  if (!(stddev >= 0.0)) {
    throw InvalidArgument("Rng::normal requires stddev >= 0");
  }
  // Box-Muller without caching the second variate: reproducibility across
  // call sites matters more here than saving one transcendental call.
  double u1 = uniform_double();
  while (u1 <= 0.0) {  // avoid log(0)
    u1 = uniform_double();
  }
  const double u2 = uniform_double();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  return mean + stddev * radius * std::cos(angle);
}

}  // namespace vwsdk
