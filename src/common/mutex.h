#pragma once

/// @file mutex.h
/// Annotated locking primitives: `Mutex`, `MutexLock`, and `CondVar`.
///
/// Thin zero-overhead wrappers over `std::mutex` /
/// `std::condition_variable_any` that carry the clang
/// `-Wthread-safety` capability attributes (common/thread_annotations.h).
/// The standard types cannot be annotated retroactively, so the repo's
/// rule -- enforced by tools/vwsdk_lint.py -- is that concurrent code
/// holds locks only through these types:
///
///   * declare the lock as a `Mutex` member (mutable when const
///     methods take a snapshot under it);
///   * declare everything it protects `VWSDK_GUARDED_BY(mutex_)`;
///   * lock with a scoped `MutexLock lock(mutex_);`, never a bare
///     `lock()`/`unlock()` pair;
///   * wait with an explicit predicate loop around `CondVar::wait`
///     (a predicate lambda would hide the guarded reads from the
///     analysis; the loop keeps them visible in the locked scope).
///
/// Lock hierarchy note: every mutex in this codebase is a *leaf* --
/// no code path acquires a second Mutex while holding one.  That
/// invariant is what makes per-mutex annotation sufficient; see
/// docs/CONCURRENCY.md for the inventory.

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace vwsdk {

/// A `std::mutex` the thread-safety analysis can track.
class VWSDK_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  /// Acquire exclusively; prefer a scoped MutexLock.
  void lock() VWSDK_ACQUIRE() { mutex_.lock(); }

  /// Release; prefer a scoped MutexLock.
  void unlock() VWSDK_RELEASE() { mutex_.unlock(); }

  /// Acquire if free; true when the capability is now held.
  bool try_lock() VWSDK_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  std::mutex mutex_;
};

/// Scoped lock over a `Mutex` (the annotated `std::lock_guard`).
class VWSDK_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) VWSDK_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }

  ~MutexLock() VWSDK_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// A condition variable waiting on a `Mutex`.
///
/// `wait` takes the mutex itself (not a lock object) and must be
/// called with it held; the wrapped `std::condition_variable_any`
/// unlocks around the block and relocks before returning, so the
/// capability is held again on return -- which is exactly what
/// `VWSDK_REQUIRES` asserts at both edges.  Callers loop on their
/// predicate around `wait` (spurious wakeups included by contract).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Block until notified; `mutex` is held on entry and on return.
  void wait(Mutex& mutex) VWSDK_REQUIRES(mutex) { cv_.wait(mutex); }

  /// Wake one waiter.  Callers notify after releasing the mutex where
  /// possible (cheaper), but holding it is also correct.
  void notify_one() { cv_.notify_one(); }

  /// Wake every waiter.
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace vwsdk
