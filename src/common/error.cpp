#include "common/error.h"

#include <sstream>

namespace vwsdk::detail {

namespace {

std::string format_failure(const char* kind, const char* expr,
                           const char* file, int line,
                           const std::string& message) {
  std::ostringstream os;
  os << kind << ": " << message << " [failed check: `" << expr << "` at "
     << file << ":" << line << "]";
  return os.str();
}

}  // namespace

void throw_invalid_argument(const char* expr, const char* file, int line,
                            const std::string& message) {
  throw InvalidArgument(
      format_failure("invalid argument", expr, file, line, message));
}

void throw_internal_error(const char* expr, const char* file, int line,
                          const std::string& message) {
  throw InternalError(
      format_failure("internal error", expr, file, line, message));
}

}  // namespace vwsdk::detail
