#include "common/error.h"

#include <sstream>

namespace vwsdk::detail {

namespace {

std::string format_failure(const char* kind, const char* expr,
                           const char* file, int line,
                           const std::string& message) {
  std::ostringstream os;
  os << kind << ": " << message << " [failed check: `" << expr << "` at "
     << file << ":" << line << "]";
  return os.str();
}

}  // namespace

void throw_invalid_argument(const char* expr, const char* file, int line,
                            const std::string& message) {
  throw InvalidArgument(
      format_failure("invalid argument", expr, file, line, message));
}

void throw_internal_error(const char* expr, const char* file, int line,
                          const std::string& message) {
  throw InternalError(
      format_failure("internal error", expr, file, line, message));
}

}  // namespace vwsdk::detail

namespace vwsdk {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidArgument:
      return "invalid_argument";
    case ErrorCode::kNotFound:
      return "not_found";
    case ErrorCode::kInternal:
      return "internal";
    case ErrorCode::kRuntime:
      return "runtime";
    case ErrorCode::kBadRequest:
      return "bad_request";
    case ErrorCode::kUnknownOp:
      return "unknown_op";
    case ErrorCode::kTooLarge:
      return "too_large";
    case ErrorCode::kOverloaded:
      return "overloaded";
    case ErrorCode::kShuttingDown:
      return "shutting_down";
    case ErrorCode::kOverflow:
      return "overflow";
  }
  return "runtime";  // unreachable for valid enumerators
}

ErrorCode classify_exception(const std::exception& e) {
  // Order matters: the most derived categories first (InvalidArgument,
  // NotFound, and InternalError all derive from Error).
  if (dynamic_cast<const InvalidArgument*>(&e) != nullptr) {
    return ErrorCode::kInvalidArgument;
  }
  if (dynamic_cast<const NotFound*>(&e) != nullptr) {
    return ErrorCode::kNotFound;
  }
  if (dynamic_cast<const InternalError*>(&e) != nullptr) {
    return ErrorCode::kInternal;
  }
  if (dynamic_cast<const Overflow*>(&e) != nullptr) {
    return ErrorCode::kOverflow;
  }
  return ErrorCode::kRuntime;
}

bool is_usage_error(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidArgument:
    case ErrorCode::kNotFound:
    case ErrorCode::kBadRequest:
    case ErrorCode::kUnknownOp:
    case ErrorCode::kTooLarge:
    case ErrorCode::kOverflow:
      return true;
    case ErrorCode::kInternal:
    case ErrorCode::kRuntime:
    case ErrorCode::kOverloaded:
    case ErrorCode::kShuttingDown:
      return false;
  }
  return false;
}

}  // namespace vwsdk
