#pragma once

/// @file string_util.h
/// Minimal string helpers (libstdc++ 12 lacks std::format, so small
/// formatting utilities live here instead).

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace vwsdk {

/// Split `text` on `delimiter`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char delimiter);

/// Strip leading/trailing ASCII whitespace.
std::string trim(std::string_view text);

/// Join `parts` with `separator`.
std::string join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Lower-case ASCII copy.
std::string to_lower(std::string_view text);

/// Parse a non-negative integer; throws vwsdk::InvalidArgument on garbage,
/// sign, overflow, or trailing characters.
long long parse_count(std::string_view text);

/// Format a floating-point value with fixed precision (no locale).
std::string format_fixed(double value, int precision);

/// Format "1234567" as "1,234,567" for human-readable cycle totals.
std::string with_thousands(long long value);

/// Build a string from streamable parts:  cat("x=", 3, " y=", 4.5).
template <typename... Parts>
std::string cat(const Parts&... parts) {
  std::ostringstream os;
  (void)(os << ... << parts);
  return os.str();
}

}  // namespace vwsdk
