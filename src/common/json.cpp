#include "common/json.h"

#include <charconv>
#include <cmath>

#include "common/error.h"
#include "common/string_util.h"

namespace vwsdk {

namespace {

constexpr long long kMaxExactInt = 1LL << 53;  // doubles are exact below this

/// Nesting bound: the parser recurses per array/object level, so a hostile
/// "[[[[..." document must fail cleanly instead of overflowing the stack.
constexpr int kMaxNestingDepth = 256;

}  // namespace

std::string json_quote(const std::string& value) {
  std::string out = "\"";
  for (const char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += cat("\\u00", "0123456789abcdef"[(c >> 4) & 0xf],
                     "0123456789abcdef"[c & 0xf]);
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

/// Recursive-descent parser over the raw text; tracks offset for
/// line:column error positions.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    require(pos_ == text_.size(), "trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    throw InvalidArgument(
        cat("JSON parse error at ", line, ":", column, ": ", message));
  }

  void require(bool condition, const std::string& message) const {
    if (!condition) {
      fail(message);
    }
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    require(pos_ < text_.size(), "unexpected end of input");
    return text_[pos_];
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    require(pos_ < text_.size() && text_[pos_] == c,
            cat("expected '", std::string(1, c), "'"));
    ++pos_;
  }

  void expect_word(std::string_view word) {
    require(text_.substr(pos_, word.size()) == word,
            cat("expected '", std::string(word), "'"));
    pos_ += word.size();
  }

  JsonValue parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{':
        require(depth_ < kMaxNestingDepth, "nesting too deep");
        return parse_object();
      case '[':
        require(depth_ < kMaxNestingDepth, "nesting too deep");
        return parse_array();
      case '"':
        return parse_string_value();
      case 't':
        expect_word("true");
        return make_bool(true);
      case 'f':
        expect_word("false");
        return make_bool(false);
      case 'n':
        expect_word("null");
        return JsonValue{};
      default:
        return parse_number();
    }
  }

  static JsonValue make_bool(bool value) {
    JsonValue v;
    v.type_ = JsonValue::Type::kBool;
    v.bool_ = value;
    return v;
  }

  JsonValue parse_object() {
    expect('{');
    ++depth_;
    JsonValue v;
    v.type_ = JsonValue::Type::kObject;
    skip_whitespace();
    if (consume('}')) {
      --depth_;
      return v;
    }
    while (true) {
      skip_whitespace();
      require(peek() == '"', "expected object key string");
      std::string key = parse_raw_string();
      for (const JsonValue::Member& member : v.members_) {
        require(member.first != key, cat("duplicate object key \"", key, "\""));
      }
      skip_whitespace();
      expect(':');
      v.members_.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      if (consume(',')) {
        continue;
      }
      expect('}');
      --depth_;
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    ++depth_;
    JsonValue v;
    v.type_ = JsonValue::Type::kArray;
    skip_whitespace();
    if (consume(']')) {
      --depth_;
      return v;
    }
    while (true) {
      v.items_.push_back(parse_value());
      skip_whitespace();
      if (consume(',')) {
        continue;
      }
      expect(']');
      --depth_;
      return v;
    }
  }

  JsonValue parse_string_value() {
    JsonValue v;
    v.type_ = JsonValue::Type::kString;
    v.string_ = parse_raw_string();
    return v;
  }

  std::string parse_raw_string() {
    expect('"');
    std::string out;
    while (true) {
      require(pos_ < text_.size(), "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c == '\\') {
        require(pos_ < text_.size(), "unterminated escape");
        const char escape = text_[pos_++];
        switch (escape) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            require(pos_ + 4 <= text_.size(), "truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code += static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code += static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("invalid \\u escape digit");
              }
            }
            // UTF-8 encode the BMP code point (surrogate pairs are not
            // needed by any vwsdk format and are rejected).
            require(code < 0xD800 || code > 0xDFFF,
                    "surrogate \\u escapes are not supported");
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail(cat("invalid escape '\\", std::string(1, escape), "'"));
        }
        continue;
      }
      require(static_cast<unsigned char>(c) >= 0x20,
              "unescaped control character in string");
      out += c;
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    require(pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9',
            "invalid number");
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (consume('.')) {
      require(pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9',
              "digit expected after decimal point");
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (!consume('+')) {
        (void)consume('-');
      }
      require(pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9',
              "digit expected in exponent");
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    // from_chars, not strtod: the conversion must not depend on the
    // embedding application's LC_NUMERIC locale.
    const std::string_view token = text_.substr(start, pos_ - start);
    JsonValue v;
    v.type_ = JsonValue::Type::kNumber;
    const auto [end, ec] = std::from_chars(
        token.data(), token.data() + token.size(), v.number_);
    require(ec != std::errc::result_out_of_range, "number out of range");
    require(ec == std::errc{} && end == token.data() + token.size(),
            "invalid number");
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

std::string JsonValue::type_name(Type type) {
  switch (type) {
    case Type::kNull: return "null";
    case Type::kBool: return "bool";
    case Type::kNumber: return "number";
    case Type::kString: return "string";
    case Type::kArray: return "array";
    case Type::kObject: return "object";
  }
  return "unknown";
}

bool JsonValue::as_bool() const {
  VWSDK_REQUIRE(is_bool(), cat("expected JSON bool, got ", type_name(type_)));
  return bool_;
}

double JsonValue::as_number() const {
  VWSDK_REQUIRE(is_number(),
                cat("expected JSON number, got ", type_name(type_)));
  return number_;
}

long long JsonValue::as_int() const {
  const double value = as_number();
  VWSDK_REQUIRE(std::nearbyint(value) == value &&
                    value >= static_cast<double>(-kMaxExactInt) &&
                    value <= static_cast<double>(kMaxExactInt),
                cat("expected integer, got ", value));
  return static_cast<long long>(value);
}

const std::string& JsonValue::as_string() const {
  VWSDK_REQUIRE(is_string(),
                cat("expected JSON string, got ", type_name(type_)));
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  VWSDK_REQUIRE(is_array(), cat("expected JSON array, got ",
                                type_name(type_)));
  return items_;
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
  VWSDK_REQUIRE(is_object(),
                cat("expected JSON object, got ", type_name(type_)));
  return members_;
}

bool JsonValue::has(const std::string& key) const {
  return find(key) != nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* value = find(key);
  if (value == nullptr) {
    throw NotFound(cat("missing JSON key \"", key, "\""));
  }
  return *value;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  VWSDK_REQUIRE(is_object(),
                cat("expected JSON object, got ", type_name(type_)));
  for (const Member& member : members_) {
    if (member.first == key) {
      return &member.second;
    }
  }
  return nullptr;
}

}  // namespace vwsdk
