#include "common/logging.h"

namespace vwsdk {

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_level(LogLevel level) {
  const MutexLock lock(mutex_);
  level_ = level;
}

LogLevel Logger::level() const {
  const MutexLock lock(mutex_);
  return level_;
}

void Logger::set_sink(Sink sink) {
  const MutexLock lock(mutex_);
  sink_ = std::move(sink);
}

void Logger::log(LogLevel level, const std::string& message) {
  Sink sink;
  {
    const MutexLock lock(mutex_);
    if (level < level_) {
      return;
    }
    sink = sink_;
  }
  if (sink) {
    sink(level, message);
  } else {
    std::clog << "[vwsdk:" << log_level_name(level) << "] " << message
              << '\n';
  }
}

}  // namespace vwsdk
