#pragma once

/// @file math_util.h
/// Small integer-math helpers used throughout the cost model.
///
/// The paper's equations are built almost entirely from ceiling divisions
/// and floor divisions of positive integers (Eqs. (3)-(8)); centralizing
/// them here keeps every call site overflow-checked and self-documenting.

#include <cmath>
#include <limits>
#include <vector>

#include "common/checked_math.h"
#include "common/error.h"
#include "common/types.h"

namespace vwsdk {

// The overflow-checked primitives -- checked_mul, checked_add,
// checked_ceil_div, try_mul/try_add, the saturating variants, and
// checked_cast -- live in common/checked_math.h and are re-exported
// through this header so the ~50 existing cost-model call sites keep
// compiling unchanged.

/// ⌈a / b⌉ for a ≥ 0, b > 0.  Matches the ⌈·⌉ of Eqs. (1), (5), (7).
/// An alias for `checked_ceil_div`: the `a/b + (a%b != 0)` form, whose
/// intermediates cannot overflow (the textbook `(a + b - 1) / b` wraps
/// for a near INT64_MAX, and the repo lint bans that pattern).
constexpr Count ceil_div(Count a, Count b) {
  return checked_ceil_div(a, b);
}

/// ⌊a / b⌋ for a ≥ 0, b > 0.  Matches the ⌊·⌋ of Eqs. (4), (6).
constexpr Count floor_div(Count a, Count b) {
  if (a < 0 || b <= 0) {
    throw InvalidArgument("floor_div requires a >= 0 and b > 0");
  }
  return a / b;
}

/// True if `value` is a power of two (used for array-geometry sanity
/// warnings; PIM arrays in the literature are 2^X x 2^Y).
constexpr bool is_power_of_two(Count value) {
  return value > 0 && (value & (value - 1)) == 0;
}

/// Integer log2 of a power of two.
constexpr int log2_exact(Count value) {
  if (!is_power_of_two(value)) {
    throw InvalidArgument("log2_exact requires a power of two");
  }
  int log = 0;
  while (value > 1) {
    value >>= 1;
    ++log;
  }
  return log;
}

/// Clamp `value` into [lo, hi] (requires lo <= hi).
constexpr Count clamp_count(Count value, Count lo, Count hi) {
  if (lo > hi) {
    throw InvalidArgument("clamp_count requires lo <= hi");
  }
  return value < lo ? lo : (value > hi ? hi : value);
}

/// Nearest-rank percentile of an ascending-sorted sample: the smallest
/// element whose rank r (1-based) satisfies r >= ⌈p/100 · N⌉, clamped so
/// p = 0 yields the minimum.  Total on degenerate inputs: an empty sample
/// yields 0 and a single element is every percentile of itself.  Requires
/// p in [0, 100]; the caller is responsible for sorting.
inline Count percentile(const std::vector<Count>& sorted_values, double p) {
  if (!(p >= 0.0 && p <= 100.0)) {
    throw InvalidArgument("percentile requires p in [0, 100]");
  }
  if (sorted_values.empty()) {
    return 0;
  }
  const auto size = static_cast<Count>(sorted_values.size());
  const double exact = p / 100.0 * static_cast<double>(size);
  const auto rank = clamp_count(static_cast<Count>(std::ceil(exact)), 1, size);
  return sorted_values[static_cast<std::size_t>(rank - 1)];
}

}  // namespace vwsdk
