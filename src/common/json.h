#pragma once

/// @file json.h
/// A minimal JSON reader for the library's input formats (network specs,
/// tooling glue).  Parses the full JSON grammar into an immutable value
/// tree; object member order is preserved so error messages and exports
/// stay deterministic.
///
/// Scope: reading, plus the one emit primitive every writer needs --
/// `json_quote` (string escaping).  Structured JSON output is produced
/// by the emitters in core/serialize.h, serve/protocol.h, and
/// bench/bench_util.h.  Numbers are stored as `double`; `as_int()`
/// additionally checks integralness and range, which is all the spec
/// formats need.

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.h"

namespace vwsdk {

/// `value` as a quoted JSON string literal: every quote, backslash, and
/// control character escaped so strict readers (JsonValue::parse
/// included) accept what the emitters produce.  The one JSON *writing*
/// primitive the library shares across its emitters.
std::string json_quote(const std::string& value);

/// One parsed JSON value (null / bool / number / string / array / object).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Object members in document order.
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;

  /// Parse a complete JSON document; throws InvalidArgument with a
  /// line:column position on any syntax error, trailing garbage, or
  /// nesting deeper than 256 levels (a stack-overflow guard -- inputs
  /// are user-supplied files).
  static JsonValue parse(std::string_view text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw InvalidArgument on a type mismatch.
  bool as_bool() const;
  double as_number() const;
  /// The number as an integer; throws if non-integral or out of range.
  long long as_int() const;
  const std::string& as_string() const;

  /// Array elements; throws unless is_array().
  const std::vector<JsonValue>& items() const;

  /// Object members in document order; throws unless is_object().
  const std::vector<Member>& members() const;

  /// True if the object has a member `key` (throws unless is_object()).
  bool has(const std::string& key) const;

  /// Member lookup; throws NotFound for a missing key.
  const JsonValue& at(const std::string& key) const;

  /// Member lookup returning nullptr for a missing key.
  const JsonValue* find(const std::string& key) const;

  /// "null", "bool", ... for error messages.
  static std::string type_name(Type type);

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<Member> members_;
};

}  // namespace vwsdk
