#include "tensor/gemm_backend.h"

#include <algorithm>
#include <utility>

#include "common/error.h"
#include "common/string_util.h"

namespace vwsdk {

namespace {

// Cache blocking: the inner product walks kKc kernel rows of a kNc-wide
// column stripe, so the working set (one A sliver, one B block, one C
// stripe) stays L1/L2-resident; the chunk of output rows handed to one
// worker by parallel_chunks plays the `mc` role.
constexpr Count kKc = 256;
constexpr Count kNc = 128;

// Below this many MACs the pool dispatch overhead dominates the
// arithmetic; run single-threaded in the calling thread instead (the
// result is bitwise identical either way, see gemm_backend.h).
constexpr Count kParallelCutoffMacs = Count{1} << 15;

/// Lower input rows [row_begin, row_end) of the im2col matrix into
/// `columns` (kernel_volume x windows, row-major).  Row r corresponds
/// to kernel element (ic, ky, kx) with r = im2col_row_index(ic, ky,
/// kx); out-of-range taps (zero padding) become explicit zeros, so
/// every element of the row range is written.
void pack_rows(const Tensord& ifm, Dim kh, Dim kw, const ConvConfig& config,
               Dim oh, Dim ow, Count row_begin, Count row_end,
               double* columns) {
  const Shape4& in = ifm.shape();
  const Dim ih = in.d2;
  const Dim iw = in.d3;
  const double* input = ifm.data().data();
  const Count cols = static_cast<Count>(oh) * ow;
  for (Count r = row_begin; r < row_end; ++r) {
    const Dim kx = static_cast<Dim>(r % kw);
    const Dim ky = static_cast<Dim>((r / kw) % kh);
    const Dim c = static_cast<Dim>(r / (static_cast<Count>(kw) * kh));
    const double* channel =
        input + static_cast<Count>(c) * ih * iw;
    double* row = columns + r * cols;
    for (Dim oy = 0; oy < oh; ++oy) {
      const Dim y = oy * config.stride_h + ky - config.pad_h;
      double* dst = row + static_cast<Count>(oy) * ow;
      if (y < 0 || y >= ih) {
        std::fill(dst, dst + ow, 0.0);
        continue;
      }
      const double* line = channel + static_cast<Count>(y) * iw;
      for (Dim ox = 0; ox < ow; ++ox) {
        const Dim x = ox * config.stride_w + kx - config.pad_w;
        dst[ox] = (x >= 0 && x < iw) ? line[x] : 0.0;
      }
    }
  }
}

/// C[m, :] += A[m, :] * B for output rows [m_begin, m_end): column
/// stripes of kNc, kernel blocks of kKc, then a contiguous axpy.  Per
/// output element the terms accumulate in ascending k -- the same order
/// for any blocking or thread chunking, which is what makes the backend
/// deterministic (see gemm_backend.h).
void multiply_rows(const double* a, const double* b, double* c,
                   Count m_begin, Count m_end, Count k_total,
                   Count n_total) {
  for (Count n0 = 0; n0 < n_total; n0 += kNc) {
    const Count nb = std::min(kNc, n_total - n0);
    for (Count k0 = 0; k0 < k_total; k0 += kKc) {
      const Count k_end = std::min(k0 + kKc, k_total);
      for (Count m = m_begin; m < m_end; ++m) {
        const double* a_row = a + m * k_total;
        double* c_row = c + m * n_total + n0;
        for (Count k = k0; k < k_end; ++k) {
          const double weight = a_row[k];
          const double* b_row = b + k * n_total + n0;
          for (Count n = 0; n < nb; ++n) {
            c_row[n] += weight * b_row[n];
          }
        }
      }
    }
  }
}

}  // namespace

GemmBackend::GemmBackend(int threads)
    : pool_(std::make_unique<ThreadPool>(threads)) {}

int GemmBackend::threads() const { return pool_->size(); }

Tensord GemmBackend::conv2d(const Tensord& ifm, const Tensord& weights,
                            const ConvConfig& config,
                            ConvWorkspace* workspace) const {
  const Shape4& in = ifm.shape();
  const Shape4& w = weights.shape();
  VWSDK_REQUIRE(in.d0 == 1, "gemm backend expects batch 1");
  VWSDK_REQUIRE(in.d1 == w.d1, cat("IC mismatch: ifm has ", in.d1,
                                   " channels, weights expect ", w.d1));
  const Dim oc = w.d0;
  const Dim kh = w.d2;
  const Dim kw = w.d3;
  const Dim oh = conv_output_extent(in.d2, kh, config.stride_h, config.pad_h);
  const Dim ow = conv_output_extent(in.d3, kw, config.stride_w, config.pad_w);
  const Count rows = static_cast<Count>(in.d1) * kh * kw;  // kernel volume
  const Count cols = static_cast<Count>(oh) * ow;          // windows

  ConvWorkspace local;
  ConvWorkspace& scratch = workspace != nullptr ? *workspace : local;
  scratch.columns.resize(static_cast<std::size_t>(rows * cols));
  double* columns = scratch.columns.data();

  Tensord ofm = Tensord::feature_map(oc, oh, ow);
  // The weight tensor's raw storage (OC, IC, KH, KW row-major) is
  // already the OC x kernel_volume left-hand matrix in im2col_row_index
  // order -- no packing needed.
  const double* a = weights.data().data();
  double* c = ofm.data().data();

  const Count macs = static_cast<Count>(oc) * rows * cols;
  const bool inline_run = macs < kParallelCutoffMacs || pool_->size() == 1;
  if (inline_run) {
    pack_rows(ifm, kh, kw, config, oh, ow, 0, rows, columns);
    multiply_rows(a, columns, c, 0, oc, rows, cols);
    return ofm;
  }
  parallel_chunks(*pool_, rows, [&](Count begin, Count end) {
    pack_rows(ifm, kh, kw, config, oh, ow, begin, end, columns);
  });
  parallel_chunks(*pool_, oc, [&](Count begin, Count end) {
    multiply_rows(a, columns, c, begin, end, rows, cols);
  });
  return ofm;
}

namespace detail {

void register_gemm_backend(BackendRegistry& registry) {
  RefBackendInfo info;
  info.name = "gemm";
  info.aliases = {"im2col-gemm"};
  info.description =
      "blocked im2col + tiled GEMM fanned out across the thread pool -- "
      "bitwise identical to scalar on integer tensors, the fast default";
  info.sort_key = 20;
  info.instance = []() -> const RefBackend& {
    static const GemmBackend backend;
    return backend;
  };
  registry.add(std::move(info));
}

}  // namespace detail

}  // namespace vwsdk
