#pragma once

/// @file tensor_ops.h
/// Deterministic tensor generators and comparison utilities.

#include "common/random.h"
#include "tensor/tensor.h"

namespace vwsdk {

/// Fill with uniform *integer-valued* doubles in [-magnitude, +magnitude].
/// Integer values keep crossbar-vs-reference comparisons exact (see
/// tensor.h).  Deterministic for a given (rng seed, shape).
void fill_random_int(Tensord& tensor, Rng& rng, int magnitude);

/// Fill with uniform real values in [lo, hi).
void fill_random_real(Tensord& tensor, Rng& rng, double lo, double hi);

/// Fill with 0, 1, 2, ... (useful for position-sensitive layout tests:
/// every element value identifies its own coordinates).
void fill_sequential(Tensord& tensor);

/// Largest absolute element difference; shapes must match.
double max_abs_diff(const Tensord& a, const Tensord& b);

/// True if all elements match exactly (shape included).
bool exactly_equal(const Tensord& a, const Tensord& b);

/// Sum of all elements.
double sum(const Tensord& tensor);

}  // namespace vwsdk
