#pragma once

/// @file tensor_ops.h
/// Deterministic tensor generators and comparison utilities.

#include "common/random.h"
#include "tensor/tensor.h"

namespace vwsdk {

/// Fill with uniform *integer-valued* doubles in [-magnitude, +magnitude].
/// Integer values keep crossbar-vs-reference comparisons exact (see
/// tensor.h).  Deterministic for a given (rng seed, shape).
void fill_random_int(Tensord& tensor, Rng& rng, int magnitude);

/// Fill with uniform real values in [lo, hi).
void fill_random_real(Tensord& tensor, Rng& rng, double lo, double hi);

/// Fill with 0, 1, 2, ... (useful for position-sensitive layout tests:
/// every element value identifies its own coordinates).
void fill_sequential(Tensord& tensor);

/// Copy of channels [first, first + count) of a feature map
/// (shape (1, C, H, W) -> (1, count, H, W)).  Used to run grouped
/// convolutions one group at a time (see sim/pipeline.h).
Tensord slice_channels(const Tensord& feature_map, Dim first, Dim count);

/// Copy of outer slabs [first, first + count) along d0 -- for weight
/// banks (OC, IC, KH, KW) this selects a contiguous output-channel
/// range.
Tensord slice_outer(const Tensord& tensor, Dim first, Dim count);

/// Write `src` (a feature map) into `dst`'s channels starting at
/// `first`; spatial extents must match.
void write_channels(Tensord& dst, const Tensord& src, Dim first);

/// Largest absolute element difference; shapes must match.
double max_abs_diff(const Tensord& a, const Tensord& b);

/// True if all elements match exactly (shape included).
bool exactly_equal(const Tensord& a, const Tensord& b);

/// Sum of all elements.
double sum(const Tensord& tensor);

}  // namespace vwsdk
