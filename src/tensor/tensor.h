#pragma once

/// @file tensor.h
/// Dense rank-4 tensors used by the functional PIM simulator.
///
/// Layout is row-major NCHW-style: index (d0, d1, d2, d3) with d3 fastest.
/// Two conventions are used throughout the library:
///   * feature maps:  (1, C, H, W)   -- batch is always 1 in this repo,
///   * conv weights:  (OC, IC, KH, KW).
///
/// Values are `double` in the simulator; tests use integer-valued doubles
/// so that crossbar execution matches the reference convolution *exactly*
/// (doubles represent integers exactly far beyond the magnitudes reached
/// here), making equivalence checks bit-precise rather than tolerance-based.

#include <algorithm>
#include <ostream>
#include <vector>

#include "common/error.h"
#include "common/string_util.h"
#include "common/types.h"

namespace vwsdk {

/// Shape of a rank-4 tensor.
struct Shape4 {
  Dim d0 = 0;
  Dim d1 = 0;
  Dim d2 = 0;
  Dim d3 = 0;

  /// Total element count.
  Count size() const {
    return static_cast<Count>(d0) * d1 * d2 * d3;
  }

  bool operator==(const Shape4&) const = default;

  /// "(a, b, c, d)" for diagnostics.
  std::string to_string() const {
    return cat("(", d0, ", ", d1, ", ", d2, ", ", d3, ")");
  }
};

/// A dense rank-4 tensor of T with bounds-checked access.
template <typename T>
class Tensor {
 public:
  /// An empty tensor (shape all zero).
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape4 shape) : shape_(shape) {
    VWSDK_REQUIRE(shape.d0 >= 0 && shape.d1 >= 0 && shape.d2 >= 0 &&
                      shape.d3 >= 0,
                  "tensor dimensions must be non-negative");
    data_.assign(static_cast<std::size_t>(shape.size()), T{});
  }

  /// Feature-map factory: shape (1, channels, height, width).
  static Tensor feature_map(Dim channels, Dim height, Dim width) {
    return Tensor(Shape4{1, channels, height, width});
  }

  /// Weight factory: shape (out_channels, in_channels, kh, kw).
  static Tensor weights(Dim out_channels, Dim in_channels, Dim kh, Dim kw) {
    return Tensor(Shape4{out_channels, in_channels, kh, kw});
  }

  const Shape4& shape() const { return shape_; }
  Count size() const { return shape_.size(); }
  bool empty() const { return data_.empty(); }

  /// Raw storage (row-major, d3 fastest).
  const std::vector<T>& data() const { return data_; }
  std::vector<T>& data() { return data_; }

  /// Bounds-checked element access.
  T& at(Dim i0, Dim i1, Dim i2, Dim i3) {
    return data_[check_index(i0, i1, i2, i3)];
  }
  const T& at(Dim i0, Dim i1, Dim i2, Dim i3) const {
    return data_[check_index(i0, i1, i2, i3)];
  }

  /// Feature-map accessors (require d0 == 1): (channel, y, x).
  T& at(Dim channel, Dim y, Dim x) { return at(0, channel, y, x); }
  const T& at(Dim channel, Dim y, Dim x) const { return at(0, channel, y, x); }

  /// Fill every element with `value`.
  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  bool operator==(const Tensor& other) const {
    return shape_ == other.shape_ && data_ == other.data_;
  }

 private:
  std::size_t check_index(Dim i0, Dim i1, Dim i2, Dim i3) const {
    VWSDK_REQUIRE(i0 >= 0 && i0 < shape_.d0 && i1 >= 0 && i1 < shape_.d1 &&
                      i2 >= 0 && i2 < shape_.d2 && i3 >= 0 && i3 < shape_.d3,
                  cat("tensor index (", i0, ", ", i1, ", ", i2, ", ", i3,
                      ") out of bounds for shape ", shape_.to_string()));
    const Count flat =
        ((static_cast<Count>(i0) * shape_.d1 + i1) * shape_.d2 + i2) *
            shape_.d3 +
        i3;
    return static_cast<std::size_t>(flat);
  }

  Shape4 shape_{};
  std::vector<T> data_;
};

/// The simulator's working precision.
using Tensord = Tensor<double>;

std::ostream& operator<<(std::ostream& os, const Shape4& shape);

}  // namespace vwsdk
