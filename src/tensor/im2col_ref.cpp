#include "tensor/im2col_ref.h"

#include "common/error.h"

namespace vwsdk {

Dim im2col_row_index(Dim ic_index, Dim ky, Dim kx, Dim kh, Dim kw) {
  VWSDK_REQUIRE(ic_index >= 0 && ky >= 0 && ky < kh && kx >= 0 && kx < kw,
                "im2col_row_index: bad kernel coordinate");
  return (ic_index * kh + ky) * kw + kx;
}

Tensord im2col_lower(const Tensord& ifm, Dim kh, Dim kw,
                     const ConvConfig& config) {
  const Shape4& in = ifm.shape();
  VWSDK_REQUIRE(in.d0 == 1, "im2col_lower expects batch 1");
  const Dim ic = in.d1;
  const Dim ih = in.d2;
  const Dim iw = in.d3;
  const Dim oh = conv_output_extent(ih, kh, config.stride_h, config.pad_h);
  const Dim ow = conv_output_extent(iw, kw, config.stride_w, config.pad_w);

  const Dim rows = ic * kh * kw;
  const Dim cols = oh * ow;
  Tensord matrix(Shape4{1, 1, rows, cols});
  for (Dim c = 0; c < ic; ++c) {
    for (Dim ky = 0; ky < kh; ++ky) {
      for (Dim kx = 0; kx < kw; ++kx) {
        const Dim row = im2col_row_index(c, ky, kx, kh, kw);
        for (Dim oy = 0; oy < oh; ++oy) {
          for (Dim ox = 0; ox < ow; ++ox) {
            const Dim y = oy * config.stride_h + ky - config.pad_h;
            const Dim x = ox * config.stride_w + kx - config.pad_w;
            double value = 0.0;
            if (y >= 0 && y < ih && x >= 0 && x < iw) {
              value = ifm.at(c, y, x);
            }
            matrix.at(0, 0, row, oy * ow + ox) = value;
          }
        }
      }
    }
  }
  return matrix;
}

Tensord conv2d_im2col(const Tensord& ifm, const Tensord& weights,
                      const ConvConfig& config) {
  const Shape4& w = weights.shape();
  const Dim oc = w.d0;
  const Dim ic = w.d1;
  const Dim kh = w.d2;
  const Dim kw = w.d3;
  VWSDK_REQUIRE(ifm.shape().d1 == ic, "conv2d_im2col: IC mismatch");

  const Tensord matrix = im2col_lower(ifm, kh, kw, config);
  const Dim rows = matrix.shape().d2;  // K_h*K_w*IC
  const Dim cols = matrix.shape().d3;  // OH*OW
  const Dim oh =
      conv_output_extent(ifm.shape().d2, kh, config.stride_h, config.pad_h);
  const Dim ow =
      conv_output_extent(ifm.shape().d3, kw, config.stride_w, config.pad_w);
  VWSDK_ASSERT(cols == oh * ow, "im2col column count mismatch");

  // Weight matrix row for output channel o: kernel flattened in the same
  // (ic, ky, kx) order as im2col_row_index.
  Tensord ofm = Tensord::feature_map(oc, oh, ow);
  for (Dim o = 0; o < oc; ++o) {
    for (Dim col = 0; col < cols; ++col) {
      double acc = 0.0;
      for (Dim c = 0; c < ic; ++c) {
        for (Dim ky = 0; ky < kh; ++ky) {
          for (Dim kx = 0; kx < kw; ++kx) {
            const Dim row = im2col_row_index(c, ky, kx, kh, kw);
            VWSDK_ASSERT(row < rows, "im2col row out of range");
            acc += weights.at(o, c, ky, kx) * matrix.at(0, 0, row, col);
          }
        }
      }
      ofm.at(o, col / ow, col % ow) = acc;
    }
  }
  return ofm;
}

}  // namespace vwsdk
