#pragma once

/// @file gemm_backend.h
/// The fast reference-convolution backend: blocked im2col + tiled GEMM.
///
/// This is the software analogue of the paper's im2col framing (§II-A)
/// turned into an execution engine: the input feature map is lowered
/// into a kernel_volume x windows matrix (rows in exactly the
/// im2col_row_index order, so the weight tensor's raw storage already
/// IS the left-hand matrix), and the convolution becomes one dense
/// matrix-matrix product, cache-blocked and fanned out across the
/// thread pool.
///
/// Determinism contract (what lets `gemm` replace the scalar oracle on
/// the verification paths): every output element accumulates its terms
/// in ascending kernel-row order, each output row is computed wholly by
/// one worker, and zero weights are not skipped -- so the result is
/// bitwise identical for any thread count, and bitwise identical to
/// conv2d_direct on integer-valued tensors (integer sums are exact in
/// double regardless of association).  Pinned by
/// tests/tensor/test_exec_backend.cpp and gated by bench_exec.

#include <memory>

#include "common/thread_pool.h"
#include "tensor/exec_backend.h"

namespace vwsdk {

/// Blocked im2col + tiled GEMM convolution on an owned thread pool.
///
/// The registry's shared "gemm" instance uses the default thread count;
/// constructing an explicit instance (the determinism tests do) pins
/// the pool size.
class GemmBackend : public RefBackend {
 public:
  /// Start with `threads` workers; `threads <= 0` resolves through
  /// ThreadPool::resolve_thread_count (VWSDK_THREADS, then hardware).
  explicit GemmBackend(int threads = 0);

  /// Worker threads of the owned pool.
  int threads() const;

  Tensord conv2d(const Tensord& ifm, const Tensord& weights,
                 const ConvConfig& config,
                 ConvWorkspace* workspace) const override;

 private:
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace vwsdk
