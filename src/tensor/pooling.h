#pragma once

/// @file pooling.h
/// Pooling and activation primitives for whole-network pipeline simulation.
///
/// The paper's networks (VGG-13, ResNet-18) interleave convolutions with
/// 2x2 max pooling / strided downsampling and ReLU; the pipeline simulator
/// (src/sim/pipeline.h) uses these to produce the inter-layer feature-map
/// sizes listed in Table I.

#include "tensor/tensor.h"

namespace vwsdk {

/// Max pooling with a square window (the VGG pattern: window 2,
/// stride 2).  Input (1, C, H, W) -> (1, C, OH, OW) with
/// OH = floor((H - window) / stride) + 1 (likewise OW) -- floor
/// semantics: when (H - window) % stride != 0 the trailing rows (and
/// columns) that cannot fill a complete window are dropped, never
/// partially pooled.  E.g. a 5x5 input with window 2, stride 2 pools to
/// 2x2; row and column 4 do not contribute.  Pinned by
/// tests/tensor/test_pooling.cpp so the truncation can never regress
/// silently.  Requires H, W >= window, window > 0, and
/// 0 < stride <= window (a larger stride would skip input entirely --
/// rejected rather than silently dropping interior data).
Tensord max_pool2d(const Tensord& ifm, Dim window, Dim stride);

/// Average pooling, same geometry rules (and floor semantics) as
/// max_pool2d; every output averages a full window x window patch.
Tensord avg_pool2d(const Tensord& ifm, Dim window, Dim stride);

/// Element-wise ReLU (returns a new tensor).
Tensord relu(const Tensord& ifm);

/// Element-wise sum of two same-shape tensors (residual connections).
Tensord add(const Tensord& a, const Tensord& b);

}  // namespace vwsdk
