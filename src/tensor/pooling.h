#pragma once

/// @file pooling.h
/// Pooling and activation primitives for whole-network pipeline simulation.
///
/// The paper's networks (VGG-13, ResNet-18) interleave convolutions with
/// 2x2 max pooling / strided downsampling and ReLU; the pipeline simulator
/// (src/sim/pipeline.h) uses these to produce the inter-layer feature-map
/// sizes listed in Table I.

#include "tensor/tensor.h"

namespace vwsdk {

/// Max pooling with a square window and equal stride (the VGG pattern:
/// window 2, stride 2).  Input (1, C, H, W) -> (1, C, H/stride, W/stride)
/// using floor semantics; requires H, W >= window.
Tensord max_pool2d(const Tensord& ifm, Dim window, Dim stride);

/// Average pooling, same geometry rules as max_pool2d.
Tensord avg_pool2d(const Tensord& ifm, Dim window, Dim stride);

/// Element-wise ReLU (returns a new tensor).
Tensord relu(const Tensord& ifm);

/// Element-wise sum of two same-shape tensors (residual connections).
Tensord add(const Tensord& a, const Tensord& b);

}  // namespace vwsdk
