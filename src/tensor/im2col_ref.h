#pragma once

/// @file im2col_ref.h
/// im2col lowering + GEMM reference convolution.
///
/// This is the *software* analogue of the im2col PIM mapping (Fig. 2(a) of
/// the paper): each kernel-sized input window becomes a column of a matrix,
/// kernels become rows of a weight matrix, and the convolution becomes one
/// matrix-matrix product.  It serves two purposes:
///  1. an independent second reference implementation to cross-check
///     conv2d_direct, and
///  2. the exact row ordering (ic-major, then ky, then kx) reused by the
///     im2col mapping plan builder, so layout bugs surface in one place.

#include "tensor/conv_ref.h"
#include "tensor/tensor.h"

namespace vwsdk {

/// The flattened-row index of kernel element (ic, ky, kx) inside an im2col
/// column, for a K_h x K_w kernel.  Order: ic-major, then ky, then kx --
/// matching the paper's "unroll each 3-D kernel into a column" (§II-A).
Dim im2col_row_index(Dim ic_index, Dim ky, Dim kx, Dim kh, Dim kw);

/// Lower the input feature map into the im2col matrix.
/// Result shape: (1, 1, K_h*K_w*IC, OH*OW) -- rows are kernel elements,
/// columns are output positions (oy-major).
Tensord im2col_lower(const Tensord& ifm, Dim kh, Dim kw,
                     const ConvConfig& config = {});

/// Convolution via im2col + GEMM; must agree exactly with conv2d_direct
/// for integer-valued inputs.
Tensord conv2d_im2col(const Tensord& ifm, const Tensord& weights,
                      const ConvConfig& config = {});

}  // namespace vwsdk
