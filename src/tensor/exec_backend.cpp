#include "tensor/exec_backend.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "common/error.h"
#include "common/string_util.h"

namespace vwsdk {

namespace detail {

// One registration anchor per built-in backend, defined in the
// backend's own .cpp next to its implementation.  Referencing them here
// forces the linker to pull every backend's translation unit out of the
// static library even when nothing else names its class.
void register_scalar_backend(BackendRegistry& registry);
void register_gemm_backend(BackendRegistry& registry);

}  // namespace detail

Tensord ScalarBackend::conv2d(const Tensord& ifm, const Tensord& weights,
                              const ConvConfig& config,
                              ConvWorkspace* workspace) const {
  (void)workspace;  // the scalar loop needs no scratch
  return conv2d_direct(ifm, weights, config);
}

namespace detail {

void register_scalar_backend(BackendRegistry& registry) {
  RefBackendInfo info;
  info.name = "scalar";
  info.aliases = {"direct"};
  info.description =
      "the direct 7-deep loop of conv2d_direct -- slow, obviously "
      "correct, the oracle every other backend is pinned against";
  info.sort_key = 10;
  info.instance = []() -> const RefBackend& {
    static const ScalarBackend backend;
    return backend;
  };
  registry.add(std::move(info));
}

}  // namespace detail

BackendRegistry& BackendRegistry::instance() {
  // Thread-safe static-local init: the built-ins are registered exactly
  // once, before any caller (including a RefBackendRegistrar
  // constructor running during static init elsewhere) sees the
  // registry.
  static BackendRegistry& registry = []() -> BackendRegistry& {
    static BackendRegistry built;
    detail::register_scalar_backend(built);
    detail::register_gemm_backend(built);
    return built;
  }();
  return registry;
}

namespace {

std::string lookup_key(const std::string& name) {
  return to_lower(trim(name));
}

}  // namespace

void BackendRegistry::add(RefBackendInfo info) {
  VWSDK_REQUIRE(!trim(info.name).empty(),
                "backend registration needs a name");
  VWSDK_REQUIRE(info.instance != nullptr,
                cat("backend \"", info.name,
                    "\" registered without an instance function"));
  const MutexLock lock(mutex_);
  std::vector<std::string> keys{lookup_key(info.name)};
  for (const std::string& alias : info.aliases) {
    keys.push_back(lookup_key(alias));
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    VWSDK_REQUIRE(!keys[i].empty(),
                  cat("backend \"", info.name, "\" has an empty alias"));
    VWSDK_REQUIRE(lookup_.find(keys[i]) == lookup_.end(),
                  cat("backend name \"", keys[i],
                      "\" is already registered"));
    // Also reject duplicates within this registration (an alias
    // repeating the name, or a repeated alias) -- emplace would
    // silently dedupe and hide the registration bug.
    for (std::size_t j = 0; j < i; ++j) {
      VWSDK_REQUIRE(keys[j] != keys[i],
                    cat("backend \"", info.name, "\" lists \"", keys[i],
                        "\" twice"));
    }
  }
  infos_.push_back(std::make_unique<RefBackendInfo>(std::move(info)));
  for (const std::string& key : keys) {
    lookup_.emplace(key, infos_.back().get());
  }
}

bool BackendRegistry::contains(const std::string& name) const {
  const MutexLock lock(mutex_);
  return lookup_.find(lookup_key(name)) != lookup_.end();
}

const RefBackendInfo& BackendRegistry::info(const std::string& name) const {
  const MutexLock lock(mutex_);
  const auto it = lookup_.find(lookup_key(name));
  if (it == lookup_.end()) {
    throw NotFound(cat("unknown execution backend '", name,
                       "'; known: ", join(names_locked(), ", ")));
  }
  return *it->second;
}

const RefBackend& BackendRegistry::get(const std::string& name) const {
  return info(name).instance();
}

std::vector<std::string> BackendRegistry::names() const {
  const MutexLock lock(mutex_);
  return names_locked();
}

std::string BackendRegistry::known_names() const {
  return join(names(), ", ");
}

Count BackendRegistry::size() const {
  const MutexLock lock(mutex_);
  return static_cast<Count>(infos_.size());
}

std::vector<std::string> BackendRegistry::names_locked() const {
  std::vector<const RefBackendInfo*> ordered;
  ordered.reserve(infos_.size());
  for (const auto& info : infos_) {
    ordered.push_back(info.get());
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const RefBackendInfo* a, const RefBackendInfo* b) {
              return a->sort_key != b->sort_key ? a->sort_key < b->sort_key
                                                : a->name < b->name;
            });
  std::vector<std::string> names;
  names.reserve(ordered.size());
  for (const RefBackendInfo* info : ordered) {
    names.push_back(info->name);
  }
  return names;
}

RefBackendRegistrar::RefBackendRegistrar(RefBackendInfo info) {
  BackendRegistry::instance().add(std::move(info));
}

std::string resolve_ref_backend(const std::string& requested) {
  std::string name = trim(requested);
  if (name.empty()) {
    if (const char* env = std::getenv("VWSDK_REF_BACKEND")) {
      name = trim(env);
    }
  }
  if (name.empty()) {
    name = "gemm";
  }
  // Canonicalize through the registry: validates (NotFound lists the
  // known names) and maps aliases to the canonical name.
  return BackendRegistry::instance().info(name).name;
}

}  // namespace vwsdk
