#pragma once

/// @file conv_ref.h
/// Reference 2-D convolution (cross-correlation, the deep-learning
/// convention) used as ground truth for every mapped execution.

#include "common/types.h"
#include "tensor/tensor.h"

namespace vwsdk {

/// Stride / zero-padding configuration of a convolution.
/// The paper evaluates stride 1 / pad 0 exclusively; the simulator supports
/// the general case as a documented extension (DESIGN.md §6).
struct ConvConfig {
  Dim stride_w = 1;
  Dim stride_h = 1;
  Dim pad_w = 0;
  Dim pad_h = 0;

  bool operator==(const ConvConfig&) const = default;
};

/// Output spatial size of a convolution along one axis:
/// floor((input + 2*pad - kernel) / stride) + 1.
Dim conv_output_extent(Dim input, Dim kernel, Dim stride, Dim pad);

/// Direct (naive, obviously-correct) convolution.
///
/// @param ifm     feature map, shape (1, IC, H, W).
/// @param weights kernel bank, shape (OC, IC, KH, KW).
/// @param config  stride / padding.
/// @return        feature map, shape (1, OC, OH, OW).
///
/// Throws InvalidArgument if channel counts disagree or the kernel does not
/// fit the (padded) input.
Tensord conv2d_direct(const Tensord& ifm, const Tensord& weights,
                      const ConvConfig& config = {});

}  // namespace vwsdk
