#pragma once

/// @file exec_backend.h
/// Pluggable execution backends for the reference convolution.
///
/// Every mapped execution in this repo is checked against a software
/// reference convolution, which made the scalar 7-deep loop of
/// conv_ref.cpp the slowest test path (large-network end-to-end
/// verification pays it per stage and per group).  This header makes
/// the reference pluggable: a `RefBackend` computes the same OFM, a
/// `BackendRegistry` names the implementations, and callers pick one by
/// name through `ExecutionOptions::ref_backend`, the CLI's
/// `--ref-backend` flag, or the `VWSDK_REF_BACKEND` environment
/// variable (see `resolve_ref_backend`).
///
/// Two backends are built in:
///   * `scalar` -- conv2d_direct, the obviously-correct oracle;
///   * `gemm`   -- blocked im2col + tiled GEMM on the thread pool
///                 (tensor/gemm_backend.h), the fast default.
///
/// The registry follows the self-registration pattern of
/// core/mapper_registry.h: each backend registers itself in its own
/// .cpp, and the bootstrap in exec_backend.cpp references one anchor
/// symbol per built-in so the static library cannot silently drop a
/// registration.
///
/// Contract: on integer-valued tensors (the verification convention,
/// see tensor.h) every backend must produce an OFM bitwise identical to
/// `scalar`, for any thread count -- pinned by the parity suite in
/// tests/tensor/test_exec_backend.cpp and the bench_exec gate.

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "tensor/conv_ref.h"
#include "tensor/tensor.h"

namespace vwsdk {

/// Reusable scratch memory for backend convolutions.  Passing the same
/// workspace across calls (the pipeline does, across the groups and
/// stages of a run) lets a backend keep its im2col buffer allocated
/// instead of reallocating per convolution.  Backends that need no
/// scratch simply ignore it.
struct ConvWorkspace {
  /// The lowered im2col matrix, kernel_volume x windows, row-major.
  std::vector<double> columns;
};

/// Interface of a reference-convolution implementation.
class RefBackend {
 public:
  virtual ~RefBackend() = default;

  /// The convolution conv2d_direct computes, same shapes and validation.
  ///
  /// @param ifm       feature map, shape (1, IC, H, W).
  /// @param weights   kernel bank, shape (OC, IC, KH, KW).
  /// @param config    stride / padding.
  /// @param workspace optional scratch reused across calls; nullptr
  ///                  means the backend allocates locally.
  /// @return          feature map, shape (1, OC, OH, OW).
  virtual Tensord conv2d(const Tensord& ifm, const Tensord& weights,
                         const ConvConfig& config = ConvConfig(),
                         ConvWorkspace* workspace = nullptr) const = 0;
};

/// The oracle: defers to conv2d_direct (tensor/conv_ref.h).
class ScalarBackend : public RefBackend {
 public:
  Tensord conv2d(const Tensord& ifm, const Tensord& weights,
                 const ConvConfig& config,
                 ConvWorkspace* workspace) const override;
};

/// One registered execution backend.
struct RefBackendInfo {
  std::string name;                  ///< canonical name ("gemm")
  std::vector<std::string> aliases;  ///< extra lookup keys
  std::string description;           ///< one line, for docs and errors

  /// Presentation rank: names() sorts by (sort_key, name) so listings
  /// and error messages are deterministic regardless of registration
  /// order.  Built-ins list the oracle first; externals default after.
  int sort_key = 1000;

  /// Returns the process-lifetime shared instance.  Backends are
  /// stateless with respect to results, so one instance serves every
  /// caller; sharing matters because the gemm backend owns a thread
  /// pool that would be wasteful to recreate per convolution.
  std::function<const RefBackend&()> instance;
};

/// Thread-safe name-to-backend registry, mirroring MapperRegistry.
class BackendRegistry {
 public:
  /// The process-wide registry with every built-in backend registered.
  static BackendRegistry& instance();

  /// An empty registry (for tests composing their own).
  BackendRegistry() = default;
  BackendRegistry(const BackendRegistry&) = delete;
  BackendRegistry& operator=(const BackendRegistry&) = delete;

  /// Register a backend.  Throws InvalidArgument on a missing name or
  /// instance function, or when the name or an alias (case-insensitive)
  /// is taken.
  void add(RefBackendInfo info) VWSDK_EXCLUDES(mutex_);

  /// True when `name` resolves to a registered backend (canonical name
  /// or alias, case-insensitive, surrounding whitespace ignored).
  bool contains(const std::string& name) const VWSDK_EXCLUDES(mutex_);

  /// Metadata of the backend `name` resolves to; throws NotFound
  /// listing the known names.  The reference stays valid for the
  /// registry's lifetime.
  const RefBackendInfo& info(const std::string& name) const
      VWSDK_EXCLUDES(mutex_);

  /// The shared instance of the backend `name` resolves to; throws
  /// NotFound listing the known names.
  const RefBackend& get(const std::string& name) const
      VWSDK_EXCLUDES(mutex_);

  /// Canonical names, sorted by (sort_key, name).
  std::vector<std::string> names() const VWSDK_EXCLUDES(mutex_);

  /// The names joined as "a, b" -- what error messages and help embed.
  std::string known_names() const;

  /// Number of registered backends.
  Count size() const VWSDK_EXCLUDES(mutex_);

 private:
  std::vector<std::string> names_locked() const VWSDK_REQUIRES(mutex_);

  mutable Mutex mutex_;
  /// unique_ptr so info() references survive vector growth.
  std::vector<std::unique_ptr<RefBackendInfo>> infos_
      VWSDK_GUARDED_BY(mutex_);
  std::unordered_map<std::string, const RefBackendInfo*> lookup_
      VWSDK_GUARDED_BY(mutex_);
};

/// Registers `info` into BackendRegistry::instance() at construction.
/// Define one as a namespace-scope static in a backend's translation
/// unit to self-register before main() -- for code linked into the
/// final binary (tests, plugins).  Built-ins inside the static library
/// register through the bootstrap anchors instead (see file comment).
class RefBackendRegistrar {
 public:
  explicit RefBackendRegistrar(RefBackendInfo info);
};

/// The canonical name of the backend a verification should use:
/// `requested` when non-empty, else the `VWSDK_REF_BACKEND` environment
/// variable when set and non-empty, else "gemm" (fast, and bitwise
/// identical to the scalar oracle on the integer tensors verification
/// uses).  Throws NotFound listing the registered names when the
/// requested or environment name is unknown.
std::string resolve_ref_backend(const std::string& requested = {});

}  // namespace vwsdk
