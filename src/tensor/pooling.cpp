#include "tensor/pooling.h"

#include <algorithm>
#include <limits>

#include "common/error.h"

namespace vwsdk {

namespace {

/// Shared geometry checks + iteration for pooling.
template <typename Reducer>
Tensord pool2d(const Tensord& ifm, Dim window, Dim stride, Reducer reduce,
               double init) {
  const Shape4& in = ifm.shape();
  VWSDK_REQUIRE(in.d0 == 1, "pooling expects batch 1");
  VWSDK_REQUIRE(window > 0 && stride > 0, "pooling window/stride must be > 0");
  VWSDK_REQUIRE(stride <= window,
                "pooling stride larger than window would skip input "
                "rows/columns entirely");
  VWSDK_REQUIRE(in.d2 >= window && in.d3 >= window,
                "pooling window larger than input");
  // Floor semantics (documented in pooling.h): trailing rows/columns
  // short of a full window are dropped.
  const Dim oh = (in.d2 - window) / stride + 1;
  const Dim ow = (in.d3 - window) / stride + 1;
  Tensord out = Tensord::feature_map(in.d1, oh, ow);
  for (Dim c = 0; c < in.d1; ++c) {
    for (Dim oy = 0; oy < oh; ++oy) {
      for (Dim ox = 0; ox < ow; ++ox) {
        double acc = init;
        for (Dim wy = 0; wy < window; ++wy) {
          for (Dim wx = 0; wx < window; ++wx) {
            acc = reduce(acc, ifm.at(c, oy * stride + wy, ox * stride + wx));
          }
        }
        out.at(c, oy, ox) = acc;
      }
    }
  }
  return out;
}

}  // namespace

Tensord max_pool2d(const Tensord& ifm, Dim window, Dim stride) {
  Tensord out = pool2d(
      ifm, window, stride,
      [](double acc, double v) { return std::max(acc, v); },
      -std::numeric_limits<double>::infinity());
  return out;
}

Tensord avg_pool2d(const Tensord& ifm, Dim window, Dim stride) {
  Tensord sums = pool2d(
      ifm, window, stride, [](double acc, double v) { return acc + v; }, 0.0);
  const double denom = static_cast<double>(window) * window;
  for (double& v : sums.data()) {
    v /= denom;
  }
  return sums;
}

Tensord relu(const Tensord& ifm) {
  Tensord out = ifm;
  for (double& v : out.data()) {
    v = std::max(v, 0.0);
  }
  return out;
}

Tensord add(const Tensord& a, const Tensord& b) {
  VWSDK_REQUIRE(a.shape() == b.shape(), "add requires matching shapes");
  Tensord out = a;
  for (std::size_t i = 0; i < out.data().size(); ++i) {
    out.data()[i] += b.data()[i];
  }
  return out;
}

}  // namespace vwsdk
