#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/string_util.h"

namespace vwsdk {

void fill_random_int(Tensord& tensor, Rng& rng, int magnitude) {
  VWSDK_REQUIRE(magnitude >= 0, "magnitude must be non-negative");
  for (double& value : tensor.data()) {
    value = static_cast<double>(rng.uniform_int(-magnitude, magnitude));
  }
}

void fill_random_real(Tensord& tensor, Rng& rng, double lo, double hi) {
  for (double& value : tensor.data()) {
    value = rng.uniform_double(lo, hi);
  }
}

void fill_sequential(Tensord& tensor) {
  double next = 0.0;
  for (double& value : tensor.data()) {
    value = next;
    next += 1.0;
  }
}

namespace {

/// Elements in one d0 slab (everything below the outermost dimension).
Count slab_size(const Shape4& shape) {
  return static_cast<Count>(shape.d1) * shape.d2 * shape.d3;
}

}  // namespace

Tensord slice_channels(const Tensord& feature_map, Dim first, Dim count) {
  const Shape4& shape = feature_map.shape();
  VWSDK_REQUIRE(shape.d0 == 1, "slice_channels expects a (1, C, H, W) map");
  VWSDK_REQUIRE(first >= 0 && count >= 0 && first + count <= shape.d1,
                cat("channel slice [", first, ", ", first + count,
                    ") out of range for ", shape.to_string()));
  Tensord out(Shape4{1, count, shape.d2, shape.d3});
  const Count plane = static_cast<Count>(shape.d2) * shape.d3;
  const auto begin = feature_map.data().begin() +
                     static_cast<std::ptrdiff_t>(first * plane);
  std::copy(begin, begin + static_cast<std::ptrdiff_t>(count * plane),
            out.data().begin());
  return out;
}

Tensord slice_outer(const Tensord& tensor, Dim first, Dim count) {
  const Shape4& shape = tensor.shape();
  VWSDK_REQUIRE(first >= 0 && count >= 0 && first + count <= shape.d0,
                cat("outer slice [", first, ", ", first + count,
                    ") out of range for ", shape.to_string()));
  Tensord out(Shape4{count, shape.d1, shape.d2, shape.d3});
  const Count slab = slab_size(shape);
  const auto begin =
      tensor.data().begin() + static_cast<std::ptrdiff_t>(first * slab);
  std::copy(begin, begin + static_cast<std::ptrdiff_t>(count * slab),
            out.data().begin());
  return out;
}

void write_channels(Tensord& dst, const Tensord& src, Dim first) {
  const Shape4& into = dst.shape();
  const Shape4& from = src.shape();
  VWSDK_REQUIRE(into.d0 == 1 && from.d0 == 1,
                "write_channels expects (1, C, H, W) maps");
  VWSDK_REQUIRE(into.d2 == from.d2 && into.d3 == from.d3,
                cat("write_channels spatial mismatch: ", into.to_string(),
                    " vs ", from.to_string()));
  VWSDK_REQUIRE(first >= 0 && first + from.d1 <= into.d1,
                cat("channel write [", first, ", ", first + from.d1,
                    ") out of range for ", into.to_string()));
  const Count plane = static_cast<Count>(into.d2) * into.d3;
  std::copy(src.data().begin(), src.data().end(),
            dst.data().begin() +
                static_cast<std::ptrdiff_t>(first * plane));
}

double max_abs_diff(const Tensord& a, const Tensord& b) {
  VWSDK_REQUIRE(a.shape() == b.shape(),
                "max_abs_diff requires matching shapes");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    worst = std::max(worst, std::abs(a.data()[i] - b.data()[i]));
  }
  return worst;
}

bool exactly_equal(const Tensord& a, const Tensord& b) {
  return a.shape() == b.shape() && a.data() == b.data();
}

double sum(const Tensord& tensor) {
  double total = 0.0;
  for (const double value : tensor.data()) {
    total += value;
  }
  return total;
}

}  // namespace vwsdk
