#include "tensor/tensor_ops.h"

#include <cmath>

#include "common/error.h"

namespace vwsdk {

void fill_random_int(Tensord& tensor, Rng& rng, int magnitude) {
  VWSDK_REQUIRE(magnitude >= 0, "magnitude must be non-negative");
  for (double& value : tensor.data()) {
    value = static_cast<double>(rng.uniform_int(-magnitude, magnitude));
  }
}

void fill_random_real(Tensord& tensor, Rng& rng, double lo, double hi) {
  for (double& value : tensor.data()) {
    value = rng.uniform_double(lo, hi);
  }
}

void fill_sequential(Tensord& tensor) {
  double next = 0.0;
  for (double& value : tensor.data()) {
    value = next;
    next += 1.0;
  }
}

double max_abs_diff(const Tensord& a, const Tensord& b) {
  VWSDK_REQUIRE(a.shape() == b.shape(),
                "max_abs_diff requires matching shapes");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    worst = std::max(worst, std::abs(a.data()[i] - b.data()[i]));
  }
  return worst;
}

bool exactly_equal(const Tensord& a, const Tensord& b) {
  return a.shape() == b.shape() && a.data() == b.data();
}

double sum(const Tensord& tensor) {
  double total = 0.0;
  for (const double value : tensor.data()) {
    total += value;
  }
  return total;
}

}  // namespace vwsdk
