#include "tensor/conv_ref.h"

#include "common/error.h"
#include "common/string_util.h"

namespace vwsdk {

Dim conv_output_extent(Dim input, Dim kernel, Dim stride, Dim pad) {
  VWSDK_REQUIRE(input > 0 && kernel > 0 && stride > 0 && pad >= 0,
                "conv_output_extent: bad extents");
  const Dim padded = input + 2 * pad;
  VWSDK_REQUIRE(padded >= kernel,
                cat("kernel ", kernel, " larger than padded input ", padded));
  return (padded - kernel) / stride + 1;
}

Tensord conv2d_direct(const Tensord& ifm, const Tensord& weights,
                      const ConvConfig& config) {
  const Shape4& in = ifm.shape();
  const Shape4& w = weights.shape();
  VWSDK_REQUIRE(in.d0 == 1, "conv2d_direct expects batch 1");
  VWSDK_REQUIRE(in.d1 == w.d1, cat("IC mismatch: ifm has ", in.d1,
                                   " channels, weights expect ", w.d1));
  const Dim ic = in.d1;
  const Dim ih = in.d2;
  const Dim iw = in.d3;
  const Dim oc = w.d0;
  const Dim kh = w.d2;
  const Dim kw = w.d3;
  const Dim oh = conv_output_extent(ih, kh, config.stride_h, config.pad_h);
  const Dim ow = conv_output_extent(iw, kw, config.stride_w, config.pad_w);

  Tensord ofm = Tensord::feature_map(oc, oh, ow);
  for (Dim o = 0; o < oc; ++o) {
    for (Dim oy = 0; oy < oh; ++oy) {
      for (Dim ox = 0; ox < ow; ++ox) {
        double acc = 0.0;
        for (Dim c = 0; c < ic; ++c) {
          for (Dim ky = 0; ky < kh; ++ky) {
            const Dim y = oy * config.stride_h + ky - config.pad_h;
            if (y < 0 || y >= ih) {
              continue;  // zero padding
            }
            for (Dim kx = 0; kx < kw; ++kx) {
              const Dim x = ox * config.stride_w + kx - config.pad_w;
              if (x < 0 || x >= iw) {
                continue;
              }
              acc += ifm.at(c, y, x) * weights.at(o, c, ky, kx);
            }
          }
        }
        ofm.at(o, oy, ox) = acc;
      }
    }
  }
  return ofm;
}

}  // namespace vwsdk
