#include "tensor/tensor.h"

namespace vwsdk {

std::ostream& operator<<(std::ostream& os, const Shape4& shape) {
  return os << shape.to_string();
}

}  // namespace vwsdk
