#pragma once

/// @file array_geometry.h
/// Geometry of a PIM crossbar array: rows (input/wordlines, the paper's
/// 2^X) and columns (output/bitlines, the paper's 2^Y).

#include <string>
#include <vector>

#include "common/types.h"

namespace vwsdk {

/// rows x cols of memory cells.  The literature's arrays are powers of two
/// (128x128 ... 512x512) but nothing in the model requires it.
struct ArrayGeometry {
  Dim rows = 0;  ///< number of wordlines (2^X in the paper)
  Dim cols = 0;  ///< number of bitlines  (2^Y in the paper)

  /// Total cells.
  Count cell_count() const { return static_cast<Count>(rows) * cols; }

  /// Validate positivity; throws InvalidArgument.
  void validate() const;

  /// "512x512"
  std::string to_string() const;

  bool operator==(const ArrayGeometry&) const = default;
};

/// Parse "RxC" (e.g. "512x256", case-insensitive 'x').
ArrayGeometry parse_geometry(const std::string& text);

/// The five array sizes evaluated in Fig. 8(b) of the paper, in its order:
/// 128x128, 128x256, 256x256, 512x256, 512x512.
std::vector<ArrayGeometry> paper_geometries();

}  // namespace vwsdk
