#include "pim/adc.h"

#include <cmath>

#include "common/error.h"
#include "common/string_util.h"

namespace vwsdk {

ConverterModel::ConverterModel(int bits, double min_value, double max_value)
    : mode_(ConverterMode::kLinear),
      bits_(bits),
      min_value_(min_value),
      max_value_(max_value) {
  VWSDK_REQUIRE(bits >= 1 && bits <= 30,
                cat("converter bits must be in [1, 30], got ", bits));
  VWSDK_REQUIRE(max_value > min_value,
                "converter range must have max_value > min_value");
  const double levels = std::ldexp(1.0, bits);  // 2^bits
  step_ = (max_value_ - min_value_) / levels;
}

double ConverterModel::convert(double value) const {
  if (mode_ == ConverterMode::kIdeal) {
    return value;
  }
  if (value <= min_value_) {
    return min_value_;
  }
  if (value >= max_value_) {
    return max_value_ - step_;  // top code
  }
  // Mid-rise uniform quantizer: floor to the code edge.
  const double code = std::floor((value - min_value_) / step_);
  return min_value_ + code * step_;
}

}  // namespace vwsdk
