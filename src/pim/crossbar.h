#pragma once

/// @file crossbar.h
/// Functional model of one PIM crossbar array.
///
/// A crossbar stores a weight in each cell (abstracting the conductance of
/// an RRAM device or the stored charge of an SRAM-CIM bitcell; see
/// DESIGN.md §2 for the substitution note).  One *computing cycle* drives a
/// voltage vector on the rows and reads the accumulated currents on the
/// columns:
///
///     current[col] = ADC( Σ_row  input[row] * cell[row][col] )
///
/// which is exactly one analog vector-matrix multiplication.  The model is
/// functional, not electrical: value types are doubles, non-idealities are
/// injected through ConverterModel (quantization) and NoiseModel (device
/// variation).
///
/// The crossbar also keeps *programming bookkeeping* (which cells were
/// written) so the simulator can measure array utilization and detect
/// placement collisions -- the physical analogue of a mapping bug.

#include <vector>

#include "common/types.h"
#include "pim/adc.h"
#include "pim/array_geometry.h"
#include "pim/noise.h"

namespace vwsdk {

/// One functional crossbar array.
class Crossbar {
 public:
  /// A crossbar of the given geometry with all cells erased (zero, not
  /// programmed).
  explicit Crossbar(ArrayGeometry geometry);

  const ArrayGeometry& geometry() const { return geometry_; }

  /// Program one cell with a weight value.  Programming the same cell
  /// twice throws InvalidArgument: mapping plans must never collide (each
  /// plan owns each cell for exactly one purpose).  Optional noise is
  /// applied at programming time, as on real hardware.
  void program(Dim row, Dim col, double value, NoiseModel* noise = nullptr);

  /// Erase all cells and bookkeeping.
  void erase();

  /// The stored value of a cell (zero if never programmed).
  double cell(Dim row, Dim col) const;

  /// Whether a cell has been programmed since the last erase.
  bool is_programmed(Dim row, Dim col) const;

  /// One computing cycle: multiply-accumulate the `input` vector (length
  /// = rows; entries for idle rows are 0) down every column, applying the
  /// ADC model to each column read-out.  Returns `cols` column values.
  std::vector<double> compute(const std::vector<double>& input,
                              const ConverterModel& adc = {}) const;

  /// Number of programmed cells (utilization numerator, weight-cell
  /// convention of Eq. (9)).
  Count programmed_cell_count() const { return programmed_count_; }

  /// Number of distinct rows / columns containing at least one programmed
  /// cell (the window-footprint convention's bounding measure).
  Count used_row_count() const;
  Count used_col_count() const;

  /// Fraction of programmed cells: programmed / (rows*cols).
  double utilization() const;

 private:
  std::size_t index(Dim row, Dim col) const;

  ArrayGeometry geometry_;
  std::vector<double> cells_;
  std::vector<char> programmed_;  // char, not bool: no proxy bit-fiddling
  Count programmed_count_ = 0;
};

}  // namespace vwsdk
