#pragma once

/// @file adc.h
/// Analog/digital conversion models for the functional crossbar.
///
/// The paper's cost argument (§II-B, refs [2][3]) is that AD/DA conversions
/// dominate PIM energy, so *cycles* -- each requiring one conversion per
/// active row/column -- are the quantity to minimize.  The functional
/// simulator models the conversions explicitly:
///  * `kIdeal`  : infinite-precision passthrough (used for bit-exact
///                equivalence tests),
///  * `kLinear` : uniform mid-rise quantization with saturation, the usual
///                behavioural model of a linear SAR/flash ADC.

#include "common/types.h"

namespace vwsdk {

/// Converter transfer-function model.
enum class ConverterMode { kIdeal, kLinear };

/// A linear converter: quantizes values into 2^bits uniform codes across
/// [min_value, max_value], saturating outside.  Shared by the ADC (column
/// current read-out) and, if desired, the DAC (row voltage drive).
class ConverterModel {
 public:
  /// Ideal passthrough converter.
  ConverterModel() = default;

  /// Linear quantizing converter.
  /// @param bits       resolution, 1..30.
  /// @param min_value  lower edge of the input range.
  /// @param max_value  upper edge of the input range (must exceed min).
  ConverterModel(int bits, double min_value, double max_value);

  /// Apply the transfer function.
  double convert(double value) const;

  ConverterMode mode() const { return mode_; }
  int bits() const { return bits_; }

  /// Width of one quantization step (0 for ideal).
  double step() const { return step_; }

 private:
  ConverterMode mode_ = ConverterMode::kIdeal;
  int bits_ = 0;
  double min_value_ = 0.0;
  double max_value_ = 0.0;
  double step_ = 0.0;
};

}  // namespace vwsdk
