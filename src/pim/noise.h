#pragma once

/// @file noise.h
/// Device-variation model for programmed crossbar cells.
///
/// RRAM conductances suffer programming variation; the standard behavioural
/// model is multiplicative/additive Gaussian perturbation of the stored
/// weight.  The paper does not evaluate noise (its metric is cycle count),
/// so this is an extension used by the robustness example and property
/// tests (error must grow monotonically-ish with sigma and vanish at 0).

#include "common/random.h"
#include "common/types.h"

namespace vwsdk {

/// Gaussian perturbation applied at programming time.
struct NoiseConfig {
  double additive_sigma = 0.0;        ///< N(0, sigma) added to each cell
  double multiplicative_sigma = 0.0;  ///< cell *= (1 + N(0, sigma))

  bool enabled() const {
    return additive_sigma > 0.0 || multiplicative_sigma > 0.0;
  }
};

/// Applies NoiseConfig to cell values using a deterministic Rng.
class NoiseModel {
 public:
  NoiseModel(NoiseConfig config, std::uint64_t seed);

  /// Perturb one programmed value.
  double apply(double value);

  const NoiseConfig& config() const { return config_; }

 private:
  NoiseConfig config_;
  Rng rng_;
};

}  // namespace vwsdk
