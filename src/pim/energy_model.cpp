#include "pim/energy_model.h"

#include "common/error.h"
#include "common/math_util.h"
#include "common/string_util.h"

namespace vwsdk {

void EnergyParams::validate() const {
  VWSDK_REQUIRE(dac_pj_per_row >= 0.0 && adc_pj_per_col >= 0.0 &&
                    cell_pj_per_mac >= 0.0 && cycle_ns >= 0.0,
                "energy parameters must be non-negative");
}

void EnergyReport::accumulate(const EnergyReport& other) {
  cycles = checked_add(cycles, other.cycles);
  row_activations = checked_add(row_activations, other.row_activations);
  col_reads = checked_add(col_reads, other.col_reads);
  cell_macs = checked_add(cell_macs, other.cell_macs);
}

double EnergyReport::energy_pj(const EnergyParams& params) const {
  params.validate();
  return static_cast<double>(row_activations) * params.dac_pj_per_row +
         static_cast<double>(col_reads) * params.adc_pj_per_col +
         static_cast<double>(cell_macs) * params.cell_pj_per_mac;
}

double EnergyReport::full_array_energy_pj(const EnergyParams& params,
                                          Count rows, Count cols) const {
  params.validate();
  VWSDK_REQUIRE(rows > 0 && cols > 0,
                "full-array accounting needs a positive geometry");
  return static_cast<double>(cycles) *
             (static_cast<double>(rows) * params.dac_pj_per_row +
              static_cast<double>(cols) * params.adc_pj_per_col) +
         static_cast<double>(cell_macs) * params.cell_pj_per_mac;
}

double EnergyReport::conversion_fraction(const EnergyParams& params) const {
  const double total = energy_pj(params);
  if (total <= 0.0) {
    return 0.0;
  }
  const double conversions =
      static_cast<double>(row_activations) * params.dac_pj_per_row +
      static_cast<double>(col_reads) * params.adc_pj_per_col;
  return conversions / total;
}

double EnergyReport::latency_ns(const EnergyParams& params) const {
  params.validate();
  return static_cast<double>(cycles) * params.cycle_ns;
}

std::string EnergyReport::to_string(const EnergyParams& params) const {
  return cat("cycles=", cycles, " energy=", format_fixed(energy_pj(params), 1),
             "pJ latency=", format_fixed(latency_ns(params), 1),
             "ns conversion_share=",
             format_fixed(100.0 * conversion_fraction(params), 1), "%");
}

}  // namespace vwsdk
