#include "pim/crossbar.h"

#include "common/error.h"
#include "common/string_util.h"

namespace vwsdk {

Crossbar::Crossbar(ArrayGeometry geometry) : geometry_(geometry) {
  geometry_.validate();
  const std::size_t total = static_cast<std::size_t>(geometry_.cell_count());
  cells_.assign(total, 0.0);
  programmed_.assign(total, 0);
}

std::size_t Crossbar::index(Dim row, Dim col) const {
  VWSDK_REQUIRE(row >= 0 && row < geometry_.rows && col >= 0 &&
                    col < geometry_.cols,
                cat("cell (", row, ", ", col, ") outside array ",
                    geometry_.to_string()));
  return static_cast<std::size_t>(row) * static_cast<std::size_t>(
                                             geometry_.cols) +
         static_cast<std::size_t>(col);
}

void Crossbar::program(Dim row, Dim col, double value, NoiseModel* noise) {
  const std::size_t i = index(row, col);
  VWSDK_REQUIRE(programmed_[i] == 0,
                cat("cell (", row, ", ", col,
                    ") programmed twice: mapping plans must not collide"));
  cells_[i] = (noise != nullptr) ? noise->apply(value) : value;
  programmed_[i] = 1;
  ++programmed_count_;
}

void Crossbar::erase() {
  std::fill(cells_.begin(), cells_.end(), 0.0);
  std::fill(programmed_.begin(), programmed_.end(), 0);
  programmed_count_ = 0;
}

double Crossbar::cell(Dim row, Dim col) const { return cells_[index(row, col)]; }

bool Crossbar::is_programmed(Dim row, Dim col) const {
  return programmed_[index(row, col)] != 0;
}

std::vector<double> Crossbar::compute(const std::vector<double>& input,
                                      const ConverterModel& adc) const {
  VWSDK_REQUIRE(static_cast<Dim>(input.size()) == geometry_.rows,
                cat("input vector length ", input.size(),
                    " != array rows ", geometry_.rows));
  std::vector<double> output(static_cast<std::size_t>(geometry_.cols), 0.0);
  for (Dim row = 0; row < geometry_.rows; ++row) {
    const double drive = input[static_cast<std::size_t>(row)];
    if (drive == 0.0) {
      continue;  // idle wordline contributes no current
    }
    const std::size_t base = static_cast<std::size_t>(row) *
                             static_cast<std::size_t>(geometry_.cols);
    for (Dim col = 0; col < geometry_.cols; ++col) {
      output[static_cast<std::size_t>(col)] +=
          drive * cells_[base + static_cast<std::size_t>(col)];
    }
  }
  if (adc.mode() != ConverterMode::kIdeal) {
    for (double& value : output) {
      value = adc.convert(value);
    }
  }
  return output;
}

Count Crossbar::used_row_count() const {
  Count used = 0;
  for (Dim row = 0; row < geometry_.rows; ++row) {
    const std::size_t base = static_cast<std::size_t>(row) *
                             static_cast<std::size_t>(geometry_.cols);
    for (Dim col = 0; col < geometry_.cols; ++col) {
      if (programmed_[base + static_cast<std::size_t>(col)] != 0) {
        ++used;
        break;
      }
    }
  }
  return used;
}

Count Crossbar::used_col_count() const {
  std::vector<char> seen(static_cast<std::size_t>(geometry_.cols), 0);
  for (Dim row = 0; row < geometry_.rows; ++row) {
    const std::size_t base = static_cast<std::size_t>(row) *
                             static_cast<std::size_t>(geometry_.cols);
    for (Dim col = 0; col < geometry_.cols; ++col) {
      if (programmed_[base + static_cast<std::size_t>(col)] != 0) {
        seen[static_cast<std::size_t>(col)] = 1;
      }
    }
  }
  Count used = 0;
  for (const char flag : seen) {
    used += flag;
  }
  return used;
}

double Crossbar::utilization() const {
  return static_cast<double>(programmed_count_) /
         static_cast<double>(geometry_.cell_count());
}

}  // namespace vwsdk
