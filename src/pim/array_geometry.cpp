#include "pim/array_geometry.h"

#include "common/error.h"
#include "common/string_util.h"

namespace vwsdk {

void ArrayGeometry::validate() const {
  VWSDK_REQUIRE(rows > 0 && cols > 0,
                cat("array geometry must be positive, got ", rows, "x", cols));
}

std::string ArrayGeometry::to_string() const {
  return cat(rows, "x", cols);
}

ArrayGeometry parse_geometry(const std::string& text) {
  const std::string lowered = to_lower(trim(text));
  const auto pos = lowered.find('x');
  VWSDK_REQUIRE(pos != std::string::npos,
                cat("geometry '", text, "' is not of the form RxC"));
  ArrayGeometry geometry;
  geometry.rows = static_cast<Dim>(parse_count(lowered.substr(0, pos)));
  geometry.cols = static_cast<Dim>(parse_count(lowered.substr(pos + 1)));
  geometry.validate();
  return geometry;
}

std::vector<ArrayGeometry> paper_geometries() {
  return {{128, 128}, {128, 256}, {256, 256}, {512, 256}, {512, 512}};
}

}  // namespace vwsdk
