#include "pim/noise.h"

#include "common/error.h"

namespace vwsdk {

NoiseModel::NoiseModel(NoiseConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  VWSDK_REQUIRE(config.additive_sigma >= 0.0 &&
                    config.multiplicative_sigma >= 0.0,
                "noise sigmas must be non-negative");
}

double NoiseModel::apply(double value) {
  double out = value;
  if (config_.multiplicative_sigma > 0.0) {
    out *= 1.0 + rng_.normal(0.0, config_.multiplicative_sigma);
  }
  if (config_.additive_sigma > 0.0) {
    out += rng_.normal(0.0, config_.additive_sigma);
  }
  return out;
}

}  // namespace vwsdk
