#pragma once

/// @file energy_model.h
/// First-order energy and latency model for PIM execution.
///
/// The paper's premise (§II-B, refs [2][3]): every computing cycle pays for
/// DA conversion on each driven row, AD conversion on each read column, and
/// the analog MAC current through the used cells; conversions dominate
/// (">98% of the total PIM energy").  We model:
///
///   E_cycle = rows_active * E_DAC + cols_active * E_ADC + cells * E_cell
///   T_total = cycles * t_cycle
///
/// Defaults are literature-scale constants (ISAAC/PRIME-era 1-bit DAC +
/// 8-bit SAR ADC at 32nm); they are *synthetic but proportionally honest*:
/// ADC >> DAC >> cell, so energy tracks conversions, which tracks cycles --
/// the relationship the paper's argument needs.  All constants are
/// overridable.

#include <string>

#include "common/types.h"

namespace vwsdk {

/// Per-event energy constants (picojoules) and cycle time (nanoseconds).
struct EnergyParams {
  double dac_pj_per_row = 0.5;     ///< one row drive (1-bit DAC, ~0.5 pJ)
  double adc_pj_per_col = 2.0;     ///< one column read (8-bit SAR, ~2 pJ)
  double cell_pj_per_mac = 0.001;  ///< one cell's analog MAC (~1 fJ)
  double cycle_ns = 100.0;         ///< one computing cycle (read latency)

  /// Validate non-negativity.
  void validate() const;
};

/// Accumulated activity of an execution (or an analytic estimate of one).
struct EnergyReport {
  Cycles cycles = 0;            ///< computing cycles executed
  Count row_activations = 0;    ///< Σ over cycles of active rows
  Count col_reads = 0;          ///< Σ over cycles of read columns
  Count cell_macs = 0;          ///< Σ over cycles of cell MAC events

  /// Merge another report into this one.
  void accumulate(const EnergyReport& other);

  /// Total energy under `params` (picojoules).
  double energy_pj(const EnergyParams& params) const;

  /// Energy under *full-array* conversion accounting: every cycle drives
  /// all `rows` DACs and converts all `cols` ADCs regardless of how many
  /// are bound -- the usual time-multiplexed peripheral design, and the
  /// accounting under which the paper's "energy tracks cycles" argument
  /// holds exactly.  (Under the per-active-column accounting of
  /// energy_pj(), a mapping with fewer cycles but a higher AR factor can
  /// spend slightly *more* conversions; bench_energy quantifies this.)
  double full_array_energy_pj(const EnergyParams& params, Count rows,
                              Count cols) const;

  /// Fraction of energy spent in AD/DA conversion (the paper cites >98%).
  double conversion_fraction(const EnergyParams& params) const;

  /// Total latency under `params` (nanoseconds).
  double latency_ns(const EnergyParams& params) const;

  /// One-line summary for logs.
  std::string to_string(const EnergyParams& params) const;
};

}  // namespace vwsdk
