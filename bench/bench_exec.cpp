/// Execution-backend performance gate (ISSUE 6): the tiled im2col+GEMM
/// backend must beat the scalar oracle by at least 5x wall-clock on the
/// largest convolution the functional-verification paths actually run
/// (ResNet-18 conv2's 56x56 3x3 64-to-64 shape from Table I -- the
/// full-size VGG layers are evaluated analytically, never executed),
/// while staying bitwise identical on integer tensors.
///
/// Timing methodology: the scalar reference is timed once (it dominates
/// the bench wall time); the gemm backend takes the best of three runs
/// so a cold thread pool or scheduler hiccup cannot fail the gate
/// spuriously.  Parity and thread-count determinism are re-checked here
/// so the perf baseline also pins correctness.

#include <algorithm>
#include <chrono>
#include <iostream>

#include "bench_util.h"
#include "common/random.h"
#include "tensor/exec_backend.h"
#include "tensor/gemm_backend.h"
#include "tensor/tensor_ops.h"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

int main() {
  using namespace vwsdk;
  bench::JsonReporter reporter("bench_exec");

  reporter.section("Backend parity -- ResNet-18 conv2, integer tensors");
  Rng rng(2022);
  Tensord ifm = Tensord::feature_map(64, 56, 56);
  Tensord weights = Tensord::weights(64, 64, 3, 3);
  fill_random_int(ifm, rng, 3);
  fill_random_int(weights, rng, 3);
  const ConvConfig config;  // stride 1, pad 0 (the paper's convention)

  const BackendRegistry& registry = BackendRegistry::instance();
  const RefBackend& scalar = registry.get("scalar");
  const RefBackend& gemm = registry.get("gemm");

  const Clock::time_point scalar_start = Clock::now();
  const Tensord oracle = scalar.conv2d(ifm, weights, config, nullptr);
  const double scalar_ms = ms_since(scalar_start);

  ConvWorkspace workspace;
  double gemm_ms = 0.0;
  Tensord fast;
  for (int run = 0; run < 3; ++run) {
    const Clock::time_point gemm_start = Clock::now();
    fast = gemm.conv2d(ifm, weights, config, &workspace);
    const double ms = ms_since(gemm_start);
    gemm_ms = run == 0 ? ms : std::min(gemm_ms, ms);
  }
  reporter.expect_true("gemm OFM bitwise-identical to the scalar oracle",
                       exactly_equal(oracle, fast));

  const GemmBackend gemm_1(1);
  const GemmBackend gemm_16(16);
  reporter.expect_true(
      "gemm OFM identical across 1 and 16 worker threads",
      exactly_equal(gemm_1.conv2d(ifm, weights, config, nullptr),
                    gemm_16.conv2d(ifm, weights, config, nullptr)));

  reporter.section("Wall-clock speedup");
  reporter.report_value("scalar reference wall ms", scalar_ms);
  reporter.report_value("gemm backend wall ms (best of 3)", gemm_ms);
  const double speedup = gemm_ms > 0.0 ? scalar_ms / gemm_ms : 0.0;
  reporter.report_value("gemm speedup over scalar (x)", speedup);
  reporter.expect_true(
      "gemm at least 5x faster than scalar on the largest verification "
      "case",
      speedup >= 5.0);

  return reporter.finish();
}
