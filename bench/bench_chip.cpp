/// Extension bench: chip-level pipelined inference (the PipeLayer-style
/// whole-network view of ref [1]).  Allocates ResNet-18 onto chips of
/// growing array counts and reports the pipeline interval (bottleneck
/// stage) and resident-weight array demand per mapping algorithm.
///
/// Expected shape: VW-SDK's per-layer cycle advantage carries through to
/// the chip level -- equal or better pipeline interval at every chip
/// size -- at a modest extra resident-array demand (its channel tiles use
/// more, smaller tiles than im2col's dense columns).

#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "nn/model_zoo.h"
#include "sim/chip_allocator.h"

int main() {
  using namespace vwsdk;
  bench::JsonReporter reporter("bench_chip");
  reporter.section("Chip-level pipeline -- ResNet-18, 512x512 arrays");

  const Network net = resnet18_paper();
  const NetworkMappingResult vw =
      optimize_network(*make_mapper("vw-sdk"), net, {512, 512});
  const NetworkMappingResult base =
      optimize_network(*make_mapper("im2col"), net, {512, 512});

  std::cout << "resident array demand: im2col "
            << resident_array_demand(base) << ", vw-sdk "
            << resident_array_demand(vw) << "\n\n";

  TextTable table({"chip arrays", "im2col interval", "vw-sdk interval",
                   "interval speedup"});
  bool vw_never_worse = true;
  Cycles vw_at_256 = 0;
  for (const Dim arrays : {24, 32, 48, 64, 96, 128, 256}) {
    const ChipAllocation vw_chip = allocate_chip(vw, arrays);
    const ChipAllocation base_chip = allocate_chip(base, arrays);
    if (!vw_chip.feasible || !base_chip.feasible) {
      table.add_row({std::to_string(arrays),
                     base_chip.feasible ? std::to_string(
                                              base_chip.bottleneck())
                                        : "infeasible",
                     vw_chip.feasible
                         ? std::to_string(vw_chip.bottleneck())
                         : "infeasible",
                     "-"});
      continue;
    }
    vw_never_worse =
        vw_never_worse && vw_chip.bottleneck() <= base_chip.bottleneck();
    if (arrays == 256) {
      vw_at_256 = vw_chip.bottleneck();
    }
    table.add_row(
        {std::to_string(arrays), std::to_string(base_chip.bottleneck()),
         std::to_string(vw_chip.bottleneck()),
         format_fixed(static_cast<double>(base_chip.bottleneck()) /
                          static_cast<double>(vw_chip.bottleneck()),
                      2)});
  }
  std::cout << table;

  reporter.expect_eq("vw-sdk resident demand (tiles of Table I mappings)",
                     23, resident_array_demand(vw));
  reporter.expect_eq("im2col resident demand", 20,
                     resident_array_demand(base));
  reporter.expect_true("vw-sdk interval <= im2col interval at every size",
                       vw_never_worse);
  reporter.expect_true("256 arrays push the interval below 200 cycles",
                       vw_at_256 > 0 && vw_at_256 < 200);

  std::cout << "\nallocation detail at 64 arrays:\n"
            << allocate_chip(vw, 64).to_string();
  return reporter.finish();
}
