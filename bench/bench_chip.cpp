/// Extension bench: chip-level pipelined inference (the PipeLayer-style
/// whole-network view of ref [1]).  Allocates ResNet-18 onto chips of
/// growing array counts and reports the pipeline interval (bottleneck
/// stage) and resident-weight array demand per mapping algorithm.
///
/// Expected shape: VW-SDK's per-layer cycle advantage carries through to
/// the chip level -- equal or better pipeline interval at every chip
/// size -- at a modest extra resident-array demand (its channel tiles use
/// more, smaller tiles than im2col's dense columns).
///
/// Further sections cover the planner's objective-aware allocation
/// (cycles/edp water-fill, energy honestly stays at the resident floor),
/// multi-chip sharding when the demand exceeds one chip, and the batched
/// throughput model (fill + (B-1) x interval).

#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "common/math_util.h"
#include "common/table.h"
#include "nn/model_zoo.h"
#include "sim/chip_allocator.h"

int main() {
  using namespace vwsdk;
  bench::JsonReporter reporter("bench_chip");
  reporter.section("Chip-level pipeline -- ResNet-18, 512x512 arrays");

  const Network net = resnet18_paper();
  const NetworkMappingResult vw =
      optimize_network(*make_mapper("vw-sdk"), net, {512, 512});
  const NetworkMappingResult base =
      optimize_network(*make_mapper("im2col"), net, {512, 512});

  std::cout << "resident array demand: im2col "
            << resident_array_demand(base) << ", vw-sdk "
            << resident_array_demand(vw) << "\n\n";

  TextTable table({"chip arrays", "im2col interval", "vw-sdk interval",
                   "interval speedup"});
  bool vw_never_worse = true;
  Cycles vw_at_256 = 0;
  for (const Dim arrays : {24, 32, 48, 64, 96, 128, 256}) {
    const ChipAllocation vw_chip = allocate_chip(vw, arrays);
    const ChipAllocation base_chip = allocate_chip(base, arrays);
    if (!vw_chip.feasible || !base_chip.feasible) {
      table.add_row({std::to_string(arrays),
                     base_chip.feasible ? std::to_string(
                                              base_chip.bottleneck())
                                        : "infeasible",
                     vw_chip.feasible
                         ? std::to_string(vw_chip.bottleneck())
                         : "infeasible",
                     "-"});
      continue;
    }
    vw_never_worse =
        vw_never_worse && vw_chip.bottleneck() <= base_chip.bottleneck();
    if (arrays == 256) {
      vw_at_256 = vw_chip.bottleneck();
    }
    table.add_row(
        {std::to_string(arrays), std::to_string(base_chip.bottleneck()),
         std::to_string(vw_chip.bottleneck()),
         format_fixed(static_cast<double>(base_chip.bottleneck()) /
                          static_cast<double>(vw_chip.bottleneck()),
                      2)});
  }
  std::cout << table;

  reporter.expect_eq("vw-sdk resident demand (tiles of Table I mappings)",
                     23, resident_array_demand(vw));
  reporter.expect_eq("im2col resident demand", 20,
                     resident_array_demand(base));
  reporter.expect_true("vw-sdk interval <= im2col interval at every size",
                       vw_never_worse);
  reporter.expect_true("256 arrays push the interval below 200 cycles",
                       vw_at_256 > 0 && vw_at_256 < 200);

  std::cout << "\nallocation detail at 64 arrays:\n"
            << allocate_chip(vw, 64).to_string();

  reporter.section("Objective-aware allocation -- 256 arrays");
  // Cycles water-fills to the makespan floor; energy is honest about
  // parallelism buying no conversions (stays at the resident demand);
  // EDP prices delay linearly and water-fills like cycles does.
  const ChipAllocation by_cycles = allocate_chip(vw, 256);
  const ChipAllocation by_energy =
      allocate_chip(vw, 256, &energy_objective());
  const ChipAllocation by_edp = allocate_chip(vw, 256, &edp_objective());
  std::cout << "arrays used at 256: cycles " << by_cycles.arrays_used()
            << ", energy " << by_energy.arrays_used() << ", edp "
            << by_edp.arrays_used() << "\n";
  reporter.expect_eq("energy allocation stays at the resident demand", 23,
                     by_energy.arrays_used());
  reporter.expect_true("edp water-fills beyond the resident demand",
                       by_edp.arrays_used() > 23);
  reporter.expect_true(
      "edp interval beats the resident-floor (energy) interval",
      by_edp.bottleneck() < by_energy.bottleneck());
  reporter.expect_true(
      "no allocated stage wastes arrays on a ceil plateau",
      [&] {
        for (const ChipAllocation* chip : {&by_cycles, &by_edp}) {
          for (const LayerAllocation& layer : chip->layers) {
            if (layer.arrays > layer.tiles &&
                ceil_div(layer.serial_cycles, layer.makespan) !=
                    layer.arrays) {
              return false;
            }
          }
        }
        return true;
      }());

  reporter.section("Multi-chip sharding -- VGG-13, 16 arrays per chip");
  const NetworkMappingResult vgg =
      optimize_network(*make_mapper("vw-sdk"), vgg13_paper(), {512, 512});
  ChipPlanOptions shard_options;
  shard_options.arrays_per_chip = 16;
  const ChipPlan sharded = plan_chips(vgg, shard_options);
  std::cout << sharded.to_string();
  reporter.expect_true("demand > one chip produces a feasible plan",
                       sharded.feasible);
  reporter.expect_eq("VGG-13 resident demand", 52,
                     resident_array_demand(vgg));
  reporter.expect_eq("chips of 16 arrays needed", 5,
                     static_cast<Count>(sharded.chips.size()));
  reporter.expect_true(
      "every chip's resident demand fits its budget",
      [&] {
        for (const ChipAllocation& chip : sharded.chips) {
          Count demand = 0;
          for (const LayerAllocation& layer : chip.layers) {
            demand += layer.tiles;
          }
          if (demand > shard_options.arrays_per_chip) {
            return false;
          }
        }
        return true;
      }());
  reporter.expect_true("plan interval is the max chip interval",
                       [&] {
                         Cycles worst = 0;
                         for (const ChipAllocation& chip : sharded.chips) {
                           worst = std::max(worst, chip.bottleneck());
                         }
                         return sharded.interval() == worst;
                       }());

  reporter.section("Batched throughput -- ResNet-18, 64-array chip");
  ChipPlanOptions batch_options;
  batch_options.arrays_per_chip = 64;
  const ChipPlan pipelined = plan_chips(vw, batch_options);
  std::cout << "fill " << pipelined.fill_latency() << " cycles, interval "
            << pipelined.interval() << "; batch 64: "
            << pipelined.batch_cycles(64) << " cycles\n";
  reporter.expect_true("a batch of one pays exactly the fill latency",
                       pipelined.batch_cycles(1) ==
                           pipelined.fill_latency());
  reporter.expect_true(
      "steady state amortizes toward the interval",
      [&] {
        const double per_inference =
            static_cast<double>(pipelined.batch_cycles(256)) / 256.0;
        const double interval =
            static_cast<double>(pipelined.interval());
        return per_inference >= interval &&
               per_inference < 1.1 * interval;
      }());
  return reporter.finish();
}
