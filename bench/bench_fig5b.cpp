/// Reproduces Fig. 5(b): speedup (relative to im2col) of three fixed
/// window shapes -- 4x4 square, 6x3 and 4x3 rectangular -- as the IFM size
/// grows, for the Fig. 5(a) configuration (512x256 array, 3x3 kernel,
/// IC = 42, OC = 96).  The x-axis uses the image sizes of VGGNet plus the
/// power-of-two sizes the figure shows.
///
/// Shape to reproduce: the 4x3 window approaches ~2x speedup while 4x4
/// and 6x3 hover near ~1x (the paper highlights "a 4x3 ... achieves ~2x
/// speedup compared to the 4x4").

#include <iostream>

#include "bench_util.h"
#include "common/csv.h"
#include "common/table.h"
#include "mapping/cost_model.h"

int main() {
  using namespace vwsdk;
  bench::JsonReporter reporter("bench_fig5b");
  reporter.section("Fig. 5(b) -- speedup vs IFM size for fixed window shapes");

  const ArrayGeometry geometry{512, 256};
  const Dim sizes[] = {7, 8, 14, 16, 28, 32, 56, 64, 112, 128, 224, 256};

  TextTable table({"IFM", "im2col cycles", "4x4 speedup", "6x3 speedup",
                   "4x3 speedup"});
  double speedup_4x3_at_224 = 0.0;
  double speedup_4x4_at_224 = 0.0;
  for (const Dim size : sizes) {
    const ConvShape shape = ConvShape::square(size, 3, 42, 96);
    const double base =
        static_cast<double>(im2col_cost(shape, geometry).total);
    const auto speedup = [&](Dim w, Dim h) {
      const CycleCost cost = vw_cost(shape, geometry, {w, h});
      return cost.feasible ? base / static_cast<double>(cost.total) : 0.0;
    };
    const double s44 = speedup(4, 4);
    const double s63 = speedup(6, 3);
    const double s43 = speedup(4, 3);
    if (size == 224) {
      speedup_4x3_at_224 = s43;
      speedup_4x4_at_224 = s44;
    }
    table.add_row({std::to_string(size),
                   std::to_string(static_cast<Cycles>(base)),
                   format_fixed(s44, 2), format_fixed(s63, 2),
                   format_fixed(s43, 2)});
  }
  std::cout << table;

  reporter.expect_near("4x3 speedup at IFM 224 (~2x)", 2.0,
                       speedup_4x3_at_224, 0.05);
  reporter.expect_near("4x4 speedup at IFM 224 (~1x)", 1.0,
                       speedup_4x4_at_224, 0.05);
  reporter.expect_near("4x3 gains ~2x over 4x4 (paper's highlight)", 2.0,
                       speedup_4x3_at_224 / speedup_4x4_at_224, 0.1);
  return reporter.finish();
}
