/// Reproduces Fig. 8(a): per-layer speedup (normalized to im2col) of the
/// SDK baseline and VW-SDK on a 512x512 array, for VGG-13 and ResNet-18.
///
/// Checked values follow from the Table-I cycle counts; the headline
/// shapes are: SDK's speedup collapses to 1.0 from the layer where entire
/// channels stop fitting (VGG-13 conv4, ResNet-18 conv3) while VW-SDK
/// keeps a >1 speedup until the im2col-fallback regime (VGG-13 conv7+,
/// ResNet-18 conv5).

#include <iostream>

#include "bench_util.h"
#include "core/network_optimizer.h"
#include "core/report.h"
#include "nn/model_zoo.h"

int main() {
  using namespace vwsdk;
  bench::JsonReporter reporter("bench_fig8a");
  reporter.section("Fig. 8(a) -- per-layer speedup vs im2col, 512x512 array");
  const ArrayGeometry geometry{512, 512};

  for (const Network& net : {vgg13_paper(), resnet18_paper()}) {
    std::cout << net.name() << ":\n";
    const NetworkComparison cmp =
        compare_mappers({"im2col", "sdk", "vw-sdk"}, net, geometry);
    std::cout << render_layer_speedups(cmp);

    // Spot-check the per-layer speedups implied by Table I.
    if (net.name() == "VGG-13") {
      reporter.expect_near("VGG-13 conv1 VW speedup (49284/6216)", 7.93,
                           cmp.layer_speedup(0, 2, 0), 0.01);
      reporter.expect_near("VGG-13 conv4 SDK speedup collapses to 1", 1.0,
                           cmp.layer_speedup(0, 1, 3), 1e-9);
      reporter.expect_near("VGG-13 conv4 VW speedup (36300/12100)", 3.0,
                           cmp.layer_speedup(0, 2, 3), 1e-9);
      reporter.expect_near("VGG-13 conv7 both fall back to im2col", 1.0,
                           cmp.layer_speedup(0, 2, 6), 1e-9);
      reporter.expect_near("VGG-13 total VW speedup", 3.16,
                           cmp.speedup(0, 2), 0.005);
    } else {
      reporter.expect_near("ResNet-18 conv1 VW speedup (11236/1431)", 7.85,
                           cmp.layer_speedup(0, 2, 0), 0.01);
      reporter.expect_near("ResNet-18 conv3 SDK speedup collapses to 1", 1.0,
                           cmp.layer_speedup(0, 1, 2), 1e-9);
      reporter.expect_near("ResNet-18 conv3 VW speedup (2028/676)", 3.0,
                           cmp.layer_speedup(0, 2, 2), 1e-9);
      reporter.expect_near("ResNet-18 conv5 both fall back to im2col", 1.0,
                           cmp.layer_speedup(0, 2, 4), 1e-9);
      reporter.expect_near("ResNet-18 total VW speedup", 4.67,
                           cmp.speedup(0, 2), 0.005);
    }
  }
  return reporter.finish();
}
