/// Energy/latency analysis backing the paper's motivation (§II-B): more
/// computing cycles mean more AD/DA conversions, which dominate PIM energy
/// (refs [2], [3] claim >98%).  For every ResNet-18 layer this bench
/// reports, per mapping algorithm: cycles, latency, conversion-dominated
/// energy under both accounting modes, and the conversion share.
///
/// It also documents a nuance the coarse cycle argument hides: under
/// per-active-column accounting, VW-SDK's channel-granular AR can spend
/// MORE conversions than im2col on fallback-adjacent layers even with
/// fewer cycles (quantified below for VGG-13 conv5).

#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/network_optimizer.h"
#include "nn/model_zoo.h"
#include "sim/latency_model.h"

int main() {
  using namespace vwsdk;
  bench::JsonReporter reporter("bench_energy");
  reporter.section("Energy & latency per mapping (ResNet-18, 512x512)");
  const ArrayGeometry geometry{512, 512};
  const EnergyParams params;  // documented literature-scale defaults

  const Network net = resnet18_paper();
  TextTable table({"layer", "algorithm", "cycles", "latency (us)",
                   "E full-array (uJ)", "E active (uJ)", "conversion %"});
  double im2col_full = 0.0;
  double vw_full = 0.0;
  Cycles im2col_cycles = 0;
  Cycles vw_cycles = 0;
  for (const ConvLayerDesc& layer : net.layers()) {
    const ConvShape shape = ConvShape::from_layer(layer);
    for (const char* name : {"im2col", "sdk", "vw-sdk"}) {
      const MappingDecision decision =
          make_mapper(name)->map(shape, geometry);
      const LatencyEstimate estimate = estimate_layer(decision, params);
      table.add_row(
          {layer.name, name, std::to_string(estimate.cycles),
           format_fixed(estimate.latency_ns / 1e3, 1),
           format_fixed(estimate.energy_full_array_pj / 1e6, 3),
           format_fixed(estimate.energy_pj / 1e6, 3),
           format_fixed(100.0 * estimate.conversion_fraction, 1)});
      if (std::string(name) == "im2col") {
        im2col_full += estimate.energy_full_array_pj;
        im2col_cycles += estimate.cycles;
      }
      if (std::string(name) == "vw-sdk") {
        vw_full += estimate.energy_full_array_pj;
        vw_cycles += estimate.cycles;
      }
    }
    table.add_separator();
  }
  std::cout << table;

  const double energy_ratio = im2col_full / vw_full;
  const double cycle_ratio = static_cast<double>(im2col_cycles) /
                             static_cast<double>(vw_cycles);
  std::cout << "\nnetwork totals: cycle ratio " << format_fixed(cycle_ratio, 2)
            << "x, full-array energy ratio " << format_fixed(energy_ratio, 2)
            << "x\n";
  reporter.expect_near("full-array energy ratio tracks cycle ratio (4.67x)",
                       cycle_ratio, energy_ratio, 0.8);
  reporter.expect_true("VW-SDK saves >3x energy on ResNet-18",
                       energy_ratio > 3.0);

  // Conversion dominance (refs [2],[3]): with all converters firing every
  // cycle, conversions must dominate the energy budget.
  const ConvShape conv4 = ConvShape::from_layer(net.layer_by_name("conv4"));
  const LatencyEstimate conv4_vw =
      estimate_layer(make_mapper("vw-sdk")->map(conv4, geometry), params);
  reporter.expect_true("conversions dominate layer energy (>80%)",
                       conv4_vw.conversion_fraction > 0.8);

  // The pinned nuance: per-active-column accounting on VGG-13 conv5.
  reporter.section("Nuance: active-column accounting on VGG-13 conv5");
  const ConvShape conv5 = ConvShape::square(56, 3, 128, 256);
  const LatencyEstimate base =
      estimate_layer(make_mapper("im2col")->map(conv5, geometry), params);
  const LatencyEstimate vw =
      estimate_layer(make_mapper("vw-sdk")->map(conv5, geometry), params);
  std::cout << "  im2col: " << base.to_string() << "\n  vw-sdk: "
            << vw.to_string() << "\n"
            << "  -> fewer cycles (" << vw.cycles << " vs " << base.cycles
            << ") yet more ACTIVE conversions: VW-SDK's channel-granular\n"
            << "     AR is 4 vs im2col's element-granular 3, so each output\n"
            << "     needs one extra partial-sum conversion.\n";
  reporter.expect_true("nuance holds: vw active energy > im2col's on conv5",
                       vw.energy_pj > base.energy_pj);
  reporter.expect_true("while vw full-array energy is still lower",
                       vw.energy_full_array_pj < base.energy_full_array_pj);
  return reporter.finish();
}
