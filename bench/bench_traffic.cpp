/// Extension bench: request-traffic simulation on the pipelined chip
/// farm (sim/traffic.h).  The static planner says a VGG-13 chip of 64
/// arrays turns over an inference every 2465 cycles (interval) after a
/// 13530-cycle fill; this bench asks what those numbers buy under load.
///
/// Expected shape: with batch-of-1 service every request pays the full
/// fill, so one replica saturates near 1e6/fill ~ 74 req/Mcycle and the
/// p99 explodes once the offered rate crosses it.  Batching (the whole
/// point of the pipeline: fill + (B-1) x interval) pushes the same
/// replica toward the interval-bound capacity of ~406 req/Mcycle.  At
/// low utilization the simulator must agree with M/D/1 queueing theory,
/// and the capacity planner must find the provably minimal replica
/// count for a p99 SLO.  Every number here is deterministic (seed 42),
/// so the pins are exact.

#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "nn/model_zoo.h"
#include "sim/chip_allocator.h"
#include "sim/traffic.h"

int main() {
  using namespace vwsdk;
  bench::JsonReporter reporter("bench_traffic");

  const NetworkMappingResult vgg =
      optimize_network(*make_mapper("vw-sdk"), vgg13_paper(), {512, 512});
  ChipPlanOptions plan_options;
  plan_options.arrays_per_chip = 64;
  const ChipPlan plan = plan_chips(vgg, plan_options);
  const auto fill = static_cast<double>(plan.fill_latency());

  reporter.section("Poisson sweep -- VGG-13, 64 arrays/chip, 1 replica");
  reporter.expect_eq("pipeline interval (cycles)", 2465, plan.interval());
  reporter.expect_eq("fill latency (cycles)", 13530, plan.fill_latency());

  struct Pin {
    double rate;
    Count serial_p99;
    Count serial_completions;
    double serial_util;
    Count batched_p99;
    Count batched_completions;
  };
  // Exact values pinned from the seeded simulation: serial = batch-of-1
  // service, batched = max_batch 32 with a one-interval window.
  const std::vector<Pin> pins = {
      {20.0, 34'593, 183, 0.2476, 31'195, 183},
      {100.0, 2'796'705, 737, 0.9977, 47'763, 1'028},
      {200.0, 6'345'787, 738, 0.9989, 92'511, 1'986},
      {300.0, 7'527'325, 738, 0.9992, 165'311, 2'929},
      {380.0, 8'024'827, 738, 0.9994, 557'746, 3'501},
  };
  TextTable table({"rate/Mcycle", "arrivals", "serial done", "serial p99",
                   "batched done", "batched p99", "batched util"});
  for (const Pin& pin : pins) {
    TrafficOptions serial;
    serial.rate = pin.rate;
    const TrafficReport plain = simulate_traffic({plan}, serial);
    TrafficOptions windowed = serial;
    windowed.max_batch = 32;
    windowed.batch_window = plan.interval();
    const TrafficReport batched = simulate_traffic({plan}, windowed);
    const NetworkTraffic& s = plain.networks.front();
    const NetworkTraffic& b = batched.networks.front();
    table.add_row({format_fixed(pin.rate, 0),
                   std::to_string(s.arrivals), std::to_string(s.completions),
                   std::to_string(s.p99), std::to_string(b.completions),
                   std::to_string(b.p99),
                   format_fixed(b.chips.front().utilization, 4)});
    const std::string at = cat(" at rate ", format_fixed(pin.rate, 0));
    reporter.expect_eq(cat("serial p99", at), pin.serial_p99, s.p99);
    reporter.expect_eq(cat("serial completions", at),
                       pin.serial_completions, s.completions);
    reporter.expect_near(cat("serial chip utilization", at), pin.serial_util,
                         s.chips.front().utilization, 0.0001);
    reporter.expect_eq(cat("batched p99", at), pin.batched_p99, b.p99);
    reporter.expect_eq(cat("batched completions", at),
                       pin.batched_completions, b.completions);
    reporter.expect_true(
        cat("conservation holds", at),
        s.arrivals == s.completions + s.in_flight + s.rejected &&
            b.arrivals == b.completions + b.in_flight + b.rejected);
  }
  std::cout << table;
  const double serial_capacity = 1.0e6 / fill;
  const double pipe_capacity =
      1.0e6 / static_cast<double>(plan.interval());
  std::cout << "\nserial capacity 1e6/fill = "
            << format_fixed(serial_capacity, 1)
            << " req/Mcycle; pipelined capacity 1e6/interval = "
            << format_fixed(pipe_capacity, 1) << " req/Mcycle\n";
  reporter.expect_true(
      "batch-of-1 service saturates near 1e6/fill regardless of load",
      pins[2].serial_completions < Count(1.05 * 10.0 * serial_capacity) &&
          pins[4].serial_completions == pins[2].serial_completions);
  reporter.expect_true(
      "batching sustains ~5x the serial ceiling at rate 380",
      pins[4].batched_completions > 4 * pins[4].serial_completions);

  reporter.section("M/D/1 cross-check -- rho = 0.3, deterministic service");
  // One replica, batch of 1: an M/D/1 queue with service D = fill.
  // Pollaczek-Khinchine mean wait: Wq = lambda D^2 / (2 (1 - rho)).
  const double rho = 0.3;
  const double lambda = rho / fill;  // per cycle
  TrafficOptions md1;
  md1.rate = lambda * 1.0e6;
  md1.duration = static_cast<Cycles>(30'000.0 / lambda);
  const TrafficReport low = simulate_traffic({plan}, md1);
  const double analytic = lambda * fill * fill / (2.0 * (1.0 - rho));
  std::cout << "analytic Wq " << format_fixed(analytic, 1)
            << " cycles, simulated "
            << format_fixed(low.networks.front().mean_wait, 1)
            << " over " << low.networks.front().completions
            << " completions\n";
  reporter.expect_near("simulated mean wait matches M/D/1 (cycles)",
                       analytic, low.networks.front().mean_wait,
                       0.05 * analytic);
  reporter.expect_true("simulated mean latency = wait + service",
                       low.networks.front().mean_latency >
                               low.networks.front().mean_wait + fill - 1 &&
                           low.networks.front().mean_latency <
                               low.networks.front().mean_wait + fill + 1);

  reporter.section("Capacity planning -- p99 SLO 20000 cycles at rate 900");
  TrafficOptions heavy;
  heavy.rate = 900.0;
  const CapacityResult capacity = plan_capacity(plan, 20'000, heavy);
  std::cout << "answer: " << capacity.replicas << " replicas ("
            << capacity.chips << " chips), p99 " << capacity.p99
            << "; " << capacity.lower_replicas << " replicas fail at p99 "
            << capacity.lower_p99 << "\n";
  reporter.expect_eq("minimal replica count", 20, capacity.replicas);
  reporter.expect_eq("p99 at the answer (cycles)", 14'350, capacity.p99);
  reporter.expect_eq("p99 one replica short (cycles)", 20'845,
                     capacity.lower_p99);
  reporter.expect_true("the answer meets the SLO and the proof fails it",
                       capacity.p99 <= 20'000 &&
                           capacity.lower_p99 > 20'000 &&
                           capacity.lower_replicas == capacity.replicas - 1);

  return reporter.finish();
}
