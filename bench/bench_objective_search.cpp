/// Objective-aware search over the model zoo: the same VW-SDK scan under
/// the cycles (paper), energy, and EDP objectives, on the 512x512 array.
///
/// Pins (machine-independent):
///  * the cycles objective reproduces the paper's published totals
///    (VGG-13 77102, ResNet-18 4294) -- scoring through the Objective
///    interface is bit-identical to the raw cycle comparison;
///  * the energy search's chosen decisions (total cycles per network) --
///    deterministic, so drift in the activity model or the search is
///    caught;
///  * dominance: each objective's own total under its search never
///    exceeds that total under the cycles search (per-layer argmin);
///  * VGG-13 conv5 is the documented divergence: 4x3 under cycles,
///    kernel-window fallback under energy.
///
/// Wall-time sections (one per objective) feed the CI perf gate.

#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/error.h"
#include "common/table.h"
#include "core/network_optimizer.h"
#include "core/vwsdk_mapper.h"
#include "nn/model_zoo.h"

int main() {
  using namespace vwsdk;
  bench::JsonReporter reporter("bench_objective_search");
  const ArrayGeometry geometry{512, 512};
  const VwSdkMapper mapper;

  struct ZooRun {
    std::string network;
    NetworkMappingResult by_cycles;
    NetworkMappingResult by_energy;
    NetworkMappingResult by_edp;
  };
  std::vector<ZooRun> runs;

  const auto sweep = [&](const Objective& objective) {
    OptimizerOptions options;
    options.threads = 1;  // wall time measures the search, not the pool
    options.objective = &objective;
    std::vector<NetworkMappingResult> results;
    for (const std::string& name : model_names()) {
      results.push_back(
          optimize_network(mapper, model_by_name(name), geometry, options));
    }
    return results;
  };

  reporter.section("Cycles search (the paper's Algorithm 1)");
  const std::vector<NetworkMappingResult> cycles_runs =
      sweep(cycles_objective());
  reporter.section("Energy search");
  const std::vector<NetworkMappingResult> energy_runs =
      sweep(energy_objective());
  reporter.section("EDP search");
  const std::vector<NetworkMappingResult> edp_runs = sweep(edp_objective());
  for (std::size_t i = 0; i < cycles_runs.size(); ++i) {
    runs.push_back(ZooRun{cycles_runs[i].network_name, cycles_runs[i],
                          energy_runs[i], edp_runs[i]});
  }

  reporter.section("Results");
  TextTable table({"network", "cycles(cyc)", "cycles(energy)",
                   "energy(cyc)", "energy(energy)", "diverging layers"});
  const auto rescore = [&](const NetworkMappingResult& result,
                           const Objective& objective) {
    double total = 0.0;
    for (const LayerMapping& lm : result.layers) {
      total += static_cast<double>(lm.layer.groups) *
               objective.score(lm.decision.shape, geometry, lm.decision.cost);
    }
    return total;
  };
  bool energy_dominates = true;
  bool edp_dominates = true;
  Count diverging = 0;
  for (const ZooRun& run : runs) {
    Count changed = 0;
    for (std::size_t i = 0; i < run.by_cycles.layers.size(); ++i) {
      if (!(run.by_cycles.layers[i].decision.cost.window ==
            run.by_energy.layers[i].decision.cost.window)) {
        ++changed;
      }
    }
    diverging += changed;
    const double cycles_run_energy = rescore(run.by_cycles,
                                             energy_objective());
    const double cycles_run_edp = rescore(run.by_cycles, edp_objective());
    energy_dominates = energy_dominates &&
                       run.by_energy.total_score() <= cycles_run_energy;
    edp_dominates = edp_dominates &&
                    run.by_edp.total_score() <= cycles_run_edp;
    table.add_row({run.network,
                   std::to_string(run.by_cycles.total_cycles()),
                   format_fixed(cycles_run_energy / 1e6, 2),
                   std::to_string(run.by_energy.total_cycles()),
                   format_fixed(run.by_energy.total_score() / 1e6, 2),
                   std::to_string(changed)});
  }
  std::cout << table << "\n";

  const auto by_name = [&](const std::string& name) -> const ZooRun& {
    for (const ZooRun& run : runs) {
      if (run.by_cycles.network_name == name) {
        return run;
      }
    }
    throw Error("zoo network missing: " + name);
  };

  // The cycles objective is the paper's search, bit for bit.
  reporter.expect_eq("VGG-13 cycles search matches the published total",
                     77102,
                     by_name("VGG-13").by_cycles.total_cycles());
  reporter.expect_eq("ResNet-18 cycles search matches the published total",
                     4294,
                     by_name("ResNet-18").by_cycles.total_cycles());

  // Deterministic pins of the energy search's decisions.
  reporter.expect_eq("VGG-13 energy search total cycles", 86390,
                     by_name("VGG-13").by_energy.total_cycles());
  reporter.expect_eq("VGG-13 conv5 under cycles picks 4x3 (5832 cycles)",
                     5832,
                     by_name("VGG-13")
                         .by_cycles.layers[4]
                         .decision.cost.total);
  reporter.expect_true(
      "VGG-13 conv5 under energy falls back to the kernel window",
      by_name("VGG-13").by_energy.layers[4].decision.is_im2col_fallback());

  // Per-layer argmin implies network-level dominance.
  reporter.expect_true(
      "energy search never exceeds the cycles search's energy",
      energy_dominates);
  reporter.expect_true("edp search never exceeds the cycles search's EDP",
                       edp_dominates);
  reporter.expect_true("at least one zoo layer diverges under energy",
                       diverging > 0);
  reporter.report_value("zoo layers choosing a different window under energy",
                        static_cast<double>(diverging));
  return reporter.finish();
}
