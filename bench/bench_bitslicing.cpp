/// Extension bench (not a paper artifact; DESIGN.md §6): how device
/// precision changes the mapping picture.  Sweeps cells-per-weight and
/// DAC width for ResNet-18 and reports the adapted VW-SDK mapping vs a
/// bit-sliced im2col baseline.
///
/// Expected shape: coarser cells multiply the column budget each output
/// channel needs, shrinking OC_t; the optimizer responds with
/// fewer-position windows, and its advantage over im2col *persists*
/// across every precision point (checked).

#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/bit_sliced_mapper.h"
#include "core/network_optimizer.h"
#include "nn/model_zoo.h"

int main() {
  using namespace vwsdk;
  bench::JsonReporter reporter("bench_bitslicing");
  reporter.section("Bit-slicing sweep -- ResNet-18 on 512x512");
  const ArrayGeometry geometry{512, 512};
  const Network net = resnet18_paper();

  TextTable table({"cell bits", "dac bits", "slices", "steps",
                   "im2col cycles", "vw-sdk cycles", "speedup"});
  bool always_wins = true;
  Cycles full_precision_total = 0;
  for (const int cell_bits : {8, 4, 2, 1}) {
    for (const int dac_bits : {8, 1}) {
      BitSlicingConfig config;
      config.cell_bits = cell_bits;
      config.dac_bits = dac_bits;
      const BitSlicedVwSdkMapper mapper(config);

      Cycles im2col_total = 0;
      Cycles vw_total = 0;
      for (const ConvLayerDesc& layer : net.layers()) {
        const ConvShape shape = ConvShape::from_layer(layer);
        im2col_total +=
            im2col_cost_bitsliced(shape, geometry, config).total;
        vw_total += mapper.map(shape, geometry).cost.total;
      }
      if (cell_bits == 8 && dac_bits == 8) {
        full_precision_total = vw_total;
      }
      always_wins = always_wins && vw_total <= im2col_total;
      table.add_row({std::to_string(cell_bits), std::to_string(dac_bits),
                     std::to_string(config.slices()),
                     std::to_string(config.input_steps()),
                     std::to_string(im2col_total), std::to_string(vw_total),
                     format_fixed(static_cast<double>(im2col_total) /
                                      static_cast<double>(vw_total),
                                  2)});
    }
  }
  std::cout << table;

  reporter.expect_eq("full precision reduces to the paper total", 4294,
                     full_precision_total);
  reporter.expect_true("VW-SDK never loses to im2col at any precision",
                       always_wins);

  // 1-bit DAC multiplies every mapping by 8 input steps; the *relative*
  // speedup at 8-bit cells must therefore be precision-independent.
  BitSlicingConfig serial;
  serial.dac_bits = 1;
  const BitSlicedVwSdkMapper mapper(serial);
  Cycles vw_serial = 0;
  for (const ConvLayerDesc& layer : net.layers()) {
    vw_serial +=
        mapper.map(ConvShape::from_layer(layer), geometry).cost.total;
  }
  reporter.expect_eq("bit-serial inputs scale cycles by exactly 8",
                     4294 * 8, vw_serial);
  return reporter.finish();
}
