/// Reproduces Fig. 7: how channel tiling responds to the window.
///  (a) tiled input channels IC_t = floor(rows / PW-area) as the parallel
///      window grows, for 128/256/512-row arrays (x-axis: window areas
///      9, 16, 22, 28, 34, 40, 46, 52, 58, 64, 70, 76 as in the figure);
///  (b) tiled output channels OC_t = floor(cols / N_WP) as the number of
///      windows per parallel window grows, for 128/256/512-column arrays
///      (x-axis: N_WP = 1, 3, 5, ..., 15).

#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "mapping/cost_model.h"

int main() {
  using namespace vwsdk;

  bench::JsonReporter reporter("bench_fig7");
  reporter.section("Fig. 7(a) -- tiled ICs vs parallel-window area");
  {
    TextTable table({"PW area", "128 rows", "256 rows", "512 rows"});
    for (const Count area : {9, 16, 22, 28, 34, 40, 46, 52, 58, 64, 70, 76}) {
      table.add_row({std::to_string(area), std::to_string(128 / area),
                     std::to_string(256 / area), std::to_string(512 / area)});
    }
    std::cout << table;
  }

  reporter.section("Fig. 7(b) -- tiled OCs vs windows per parallel window");
  {
    TextTable table({"N_WP", "128 cols", "256 cols", "512 cols"});
    for (Count n_wp = 1; n_wp <= 15; n_wp += 2) {
      table.add_row({std::to_string(n_wp), std::to_string(128 / n_wp),
                     std::to_string(256 / n_wp), std::to_string(512 / n_wp)});
    }
    std::cout << table;
  }

  // Verify the formulas against the library's tiled_ic / tiled_oc on an
  // unclamped layer, and pin the end points of both curves.
  const ConvShape huge = ConvShape::square(90, 3, 100000, 100000);
  reporter.expect_eq("IC_t at area 9, 512 rows", 56,
                     tiled_ic(huge, {512, 512}, {3, 3}));
  reporter.expect_eq("IC_t at area 76 (19x4)... 512 rows", 512 / 76,
                     tiled_ic(huge, {512, 512}, {19, 4}));
  reporter.expect_eq("IC_t at area 9, 128 rows", 14,
                     tiled_ic(huge, {128, 512}, {3, 3}));
  reporter.expect_eq("OC_t at N_WP 1, 512 cols", 512,
                     tiled_oc(huge, {512, 512}, {3, 3}));
  reporter.expect_eq("OC_t at N_WP 15, 512 cols", 34,
                     tiled_oc(huge, {512, 512}, {17, 3}));
  reporter.expect_eq("OC_t at N_WP 15, 128 cols", 8,
                     tiled_oc(huge, {512, 128}, {17, 3}));
  // Monotonicity of both curves (the figure's visual shape).
  bool ic_monotone = true;
  Count last = 1 << 30;
  for (Count area = 9; area <= 76; ++area) {
    ic_monotone = ic_monotone && 512 / area <= last;
    last = 512 / area;
  }
  reporter.expect_true("IC_t non-increasing in window area", ic_monotone);
  return reporter.finish();
}
