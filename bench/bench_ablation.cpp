/// Ablation study (motivated by §IV): VW-SDK = SDK + two independent
/// ideas -- (1) rectangular windows, (2) partial-channel tiling.  This
/// bench isolates each ingredient's contribution on the paper's networks
/// by restricting the search space:
///
///   sdk            the reconstructed baseline (square, entire channels)
///   rect-only      rectangular windows, entire channels (Eq. (1) costs)
///   square-tiled   square windows only, with channel tiling (Eq. (8))
///   vw-sdk         full algorithm (rectangular + tiling)
///
/// Expected shape: each ingredient alone already beats SDK, and the full
/// algorithm is at least as good as either alone, on both networks.

#include <iostream>
#include <limits>

#include "bench_util.h"
#include "common/table.h"
#include "core/network_optimizer.h"
#include "nn/model_zoo.h"

namespace {

using namespace vwsdk;

/// Best cycles over rectangular windows with ENTIRE channels (SDK cost
/// semantics), initialized with im2col.
Cycles best_rect_entire(const ConvShape& shape,
                        const ArrayGeometry& geometry) {
  Cycles best = im2col_cost(shape, geometry).total;
  for (Dim h = shape.kernel_h; h <= shape.padded_h(); ++h) {
    for (Dim w = shape.kernel_w; w <= shape.padded_w(); ++w) {
      const CycleCost cost = sdk_cost(shape, geometry, {w, h});
      if (cost.feasible && cost.total < best) {
        best = cost.total;
      }
    }
  }
  return best;
}

/// Best cycles over SQUARE windows with channel tiling (VW cost
/// semantics), initialized with im2col.
Cycles best_square_tiled(const ConvShape& shape,
                         const ArrayGeometry& geometry) {
  Cycles best = im2col_cost(shape, geometry).total;
  const Dim limit = std::min(shape.padded_w(), shape.padded_h());
  for (Dim size = shape.kernel_w; size <= limit; ++size) {
    const CycleCost cost = vw_cost(shape, geometry, {size, size});
    if (cost.feasible && cost.total < best) {
      best = cost.total;
    }
  }
  return best;
}

}  // namespace

int main() {
  bench::JsonReporter reporter("bench_ablation");
  reporter.section("Ablation -- rectangular windows vs channel tiling");
  const ArrayGeometry geometry{512, 512};

  for (const Network& net : {vgg13_paper(), resnet18_paper()}) {
    std::cout << net.name() << " on " << geometry.to_string() << ":\n";
    TextTable table({"variant", "total cycles", "speedup vs im2col"});

    Cycles im2col_total = 0;
    Cycles sdk_total = 0;
    Cycles rect_total = 0;
    Cycles square_total = 0;
    Cycles vw_total = 0;
    for (const ConvLayerDesc& layer : net.layers()) {
      const ConvShape shape = ConvShape::from_layer(layer);
      im2col_total += make_mapper("im2col")->map(shape, geometry).cost.total;
      sdk_total += make_mapper("sdk")->map(shape, geometry).cost.total;
      rect_total += best_rect_entire(shape, geometry);
      square_total += best_square_tiled(shape, geometry);
      vw_total += make_mapper("vw-sdk")->map(shape, geometry).cost.total;
    }

    const auto add = [&](const char* name, Cycles cycles) {
      table.add_row({name, std::to_string(cycles),
                     format_fixed(static_cast<double>(im2col_total) /
                                      static_cast<double>(cycles),
                                  2)});
    };
    add("im2col", im2col_total);
    add("sdk (square, entire ch)", sdk_total);
    add("rect-only (entire ch)", rect_total);
    add("square-tiled", square_total);
    add("vw-sdk (rect + tiled)", vw_total);
    std::cout << table;

    reporter.expect_true(net.name() + ": rect-only >= sdk improvement",
                         rect_total <= sdk_total);
    reporter.expect_true(net.name() + ": square-tiled >= sdk improvement",
                         square_total <= sdk_total);
    reporter.expect_true(net.name() + ": vw-sdk <= square-tiled",
                         vw_total <= square_total);
    reporter.expect_true(net.name() + ": vw-sdk strictly beats sdk",
                         vw_total < sdk_total);
    // Documented finding (EXPERIMENTS.md): the hypothetical rect-only
    // variant costs windows with Eq. (1)'s *element-granular* row split
    // (AR = ceil(PW_area*IC/rows)), which packs arrays denser than
    // VW-SDK's channel-granular tiles (AR = ceil(IC/IC_t)) and therefore
    // wins on pure cycle count (~12% on VGG-13).  VW-SDK trades those
    // cycles for keeping whole channels per array.  The bound must stay
    // a bound:
    reporter.expect_true(net.name() +
                             ": element-split rect bound <= vw-sdk cycles",
                         rect_total <= vw_total);
  }
  return reporter.finish();
}
