#pragma once

/// @file bench_util.h
/// Shared scaffolding for the paper-reproduction benchmark binaries.
///
/// JsonReporter is both the human-facing expectation tracker (paper-vs-
/// computed lines on stdout, non-zero exit on a missed published target)
/// and the machine-facing reporter: finish() writes `BENCH_<name>.json`
/// with every check, per-section wall times, and a summary, so CI can
/// diff runs against the checked-in `bench/baseline/` files with
/// `tools/compare_bench.py`.  The JSON directory defaults to the working
/// directory and can be redirected with `VWSDK_BENCH_JSON_DIR`.
///
/// JSON schema (schema version 1):
///   {
///     "schema": 1,
///     "bench": "bench_table1",
///     "checks": [
///       {"label": "...", "kind": "eq|near|true|info",
///        "paper": <number|bool|string>, "computed": <same>,
///        "pass": true}
///     ],
///     "sections": [{"title": "...", "wall_ms": 1.234}],
///     "summary": {"checks": 24, "failures": 0, "wall_ms": 5.678}
///   }

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/string_util.h"

namespace vwsdk::bench {

/// Tracks expectations and sections; writes BENCH_<name>.json on finish.
class JsonReporter {
 public:
  /// `bench_name` is the binary name ("bench_table1"); the JSON file
  /// drops the "bench_" prefix: BENCH_table1.json.
  explicit JsonReporter(std::string bench_name)
      : bench_name_(std::move(bench_name)),
        start_(Clock::now()),
        section_start_(start_) {}

  /// Start a titled, wall-timed section (printed as a banner).
  void section(const std::string& title) {
    close_section();
    std::cout << "\n=== " << title << " ===\n\n";
    section_title_ = title;
    section_start_ = Clock::now();
    in_section_ = true;
  }

  /// Exact integer target (paper-published value).
  void expect_eq(const std::string& label, long long expected,
                 long long actual) {
    const bool ok = expected == actual;
    std::cout << "  [" << (ok ? "OK" : "MISMATCH") << "] " << label
              << ": paper=" << expected << " computed=" << actual << "\n";
    add_check(label, "eq", std::to_string(expected), std::to_string(actual),
              ok);
  }

  /// Approximate target (paper prints rounded ratios).  NaN inputs are
  /// handled explicitly: a NaN `actual` fails with a message saying so
  /// (unless the expectation itself is NaN, which only NaN satisfies).
  void expect_near(const std::string& label, double expected, double actual,
                   double tolerance) {
    const bool expected_nan = std::isnan(expected);
    const bool actual_nan = std::isnan(actual);
    bool ok;
    if (expected_nan || actual_nan) {
      ok = expected_nan && actual_nan;
    } else {
      ok = actual >= expected - tolerance && actual <= expected + tolerance;
    }
    std::cout << "  [" << (ok ? "OK" : "MISMATCH") << "] " << label
              << ": paper=" << render_double(expected, 2)
              << " computed=" << render_double(actual, 3)
              << (actual_nan && !expected_nan ? " (computed is NaN)" : "")
              << "\n";
    add_check(label, "near", json_number(expected), json_number(actual), ok);
  }

  /// Qualitative target (trend/shape claims).
  void expect_true(const std::string& label, bool condition) {
    std::cout << "  [" << (condition ? "OK" : "MISMATCH") << "] " << label
              << "\n";
    add_check(label, "true", "true", condition ? "true" : "false",
              condition);
  }

  /// Informational measurement (never fails): recorded in the JSON so CI
  /// can track it over time, printed for humans.
  void report_value(const std::string& label, double value) {
    std::cout << "  [INFO] " << label << ": " << render_double(value, 3)
              << "\n";
    add_check(label, "info", "null", json_number(value), true);
  }

  int failures() const { return failures_; }

  /// Print the shared summary line, write BENCH_<name>.json, and return
  /// the process exit code.
  int finish() {
    close_section();
    const double total_ms = ms_between(start_, Clock::now());
    const std::string summary =
        cat(bench_name_, ": ", checks_.size(), " checks, ", failures_,
            " failed, ", format_fixed(total_ms, 1), " ms");
    std::cout << "\n" << summary << "\n";
    if (failures_ != 0) {
      std::cout << bench_name_ << ": " << failures_
                << " reproduction check(s) FAILED\n";
    }
    if (!write_json(total_ms)) {
      std::cerr << bench_name_ << ": could not write " << json_path()
                << "\n";
      return 1;
    }
    return failures_ == 0 ? 0 : 1;
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct Check {
    std::string label;
    std::string kind;
    std::string paper;     ///< JSON literal
    std::string computed;  ///< JSON literal
    bool pass = false;
  };

  struct Section {
    std::string title;
    double wall_ms = 0.0;
  };

  static double ms_between(Clock::time_point from, Clock::time_point to) {
    return std::chrono::duration<double, std::milli>(to - from).count();
  }

  /// Human rendering: fixed precision, explicit "nan"/"inf".
  static std::string render_double(double value, int precision) {
    if (std::isnan(value)) {
      return "nan";
    }
    if (std::isinf(value)) {
      return value > 0 ? "inf" : "-inf";
    }
    return format_fixed(value, precision);
  }

  /// JSON literal for a double (non-finite values become strings, since
  /// JSON has no NaN/Infinity).
  static std::string json_number(double value) {
    if (!std::isfinite(value)) {
      return cat("\"", render_double(value, 0), "\"");
    }
    return format_fixed(value, 6);
  }

  static std::string json_escape(const std::string& text) {
    std::string out;
    out.reserve(text.size() + 2);
    for (const char c : text) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            out += cat("\\u00", "0123456789abcdef"[(c >> 4) & 0xf],
                       "0123456789abcdef"[c & 0xf]);
          } else {
            out += c;
          }
      }
    }
    return out;
  }

  void add_check(const std::string& label, const char* kind,
                 std::string paper, std::string computed, bool ok) {
    checks_.push_back(
        Check{label, kind, std::move(paper), std::move(computed), ok});
    failures_ += ok ? 0 : 1;
  }

  void close_section() {
    if (in_section_) {
      sections_.push_back(
          Section{section_title_, ms_between(section_start_, Clock::now())});
      in_section_ = false;
    }
  }

  std::string json_path() const {
    std::string dir = ".";
    if (const char* env = std::getenv("VWSDK_BENCH_JSON_DIR")) {
      if (env[0] != '\0') {
        dir = env;
      }
    }
    std::string stem = bench_name_;
    if (starts_with(stem, "bench_")) {
      stem = stem.substr(6);
    }
    return cat(dir, "/BENCH_", stem, ".json");
  }

  bool write_json(double total_ms) const {
    std::ofstream os(json_path());
    if (!os) {
      return false;
    }
    os << "{\n  \"schema\": 1,\n  \"bench\": \"" << json_escape(bench_name_)
       << "\",\n  \"checks\": [\n";
    for (std::size_t i = 0; i < checks_.size(); ++i) {
      const Check& check = checks_[i];
      os << "    {\"label\": \"" << json_escape(check.label)
         << "\", \"kind\": \"" << check.kind << "\", \"paper\": "
         << check.paper << ", \"computed\": " << check.computed
         << ", \"pass\": " << (check.pass ? "true" : "false") << "}"
         << (i + 1 < checks_.size() ? "," : "") << "\n";
    }
    os << "  ],\n  \"sections\": [\n";
    for (std::size_t i = 0; i < sections_.size(); ++i) {
      os << "    {\"title\": \"" << json_escape(sections_[i].title)
         << "\", \"wall_ms\": " << format_fixed(sections_[i].wall_ms, 3)
         << "}" << (i + 1 < sections_.size() ? "," : "") << "\n";
    }
    os << "  ],\n  \"summary\": {\"checks\": " << checks_.size()
       << ", \"failures\": " << failures_
       << ", \"wall_ms\": " << format_fixed(total_ms, 3) << "}\n}\n";
    return os.good();
  }

  std::string bench_name_;
  Clock::time_point start_;
  Clock::time_point section_start_;
  std::string section_title_;
  bool in_section_ = false;
  std::vector<Check> checks_;
  std::vector<Section> sections_;
  int failures_ = 0;
};

}  // namespace vwsdk::bench
