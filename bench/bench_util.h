#pragma once

/// @file bench_util.h
/// Shared scaffolding for the paper-reproduction benchmark binaries: a
/// tiny expectation tracker so every bench prints paper-vs-computed values
/// and exits non-zero when an exact published target is missed, making
/// `for b in build/bench/*; do $b; done` a regression gate.

#include <iostream>
#include <string>

#include "common/string_util.h"

namespace vwsdk::bench {

/// Counts failed expectations; returned as the process exit code.
class Checker {
 public:
  /// Exact integer target (paper-published value).
  void expect_eq(const std::string& label, long long expected,
                 long long actual) {
    const bool ok = expected == actual;
    std::cout << "  [" << (ok ? "OK" : "MISMATCH") << "] " << label
              << ": paper=" << expected << " computed=" << actual << "\n";
    failures_ += ok ? 0 : 1;
  }

  /// Approximate target (paper prints rounded ratios).
  void expect_near(const std::string& label, double expected, double actual,
                   double tolerance) {
    const bool ok =
        actual >= expected - tolerance && actual <= expected + tolerance;
    std::cout << "  [" << (ok ? "OK" : "MISMATCH") << "] " << label
              << ": paper=" << format_fixed(expected, 2)
              << " computed=" << format_fixed(actual, 3) << "\n";
    failures_ += ok ? 0 : 1;
  }

  /// Qualitative target (trend/shape claims).
  void expect_true(const std::string& label, bool condition) {
    std::cout << "  [" << (condition ? "OK" : "MISMATCH") << "] " << label
              << "\n";
    failures_ += condition ? 0 : 1;
  }

  int failures() const { return failures_; }

  /// Print the verdict and return the exit code.
  int finish(const std::string& bench_name) const {
    if (failures_ == 0) {
      std::cout << "\n" << bench_name << ": all reproduction checks passed\n";
    } else {
      std::cout << "\n" << bench_name << ": " << failures_
                << " reproduction check(s) FAILED\n";
    }
    return failures_ == 0 ? 0 : 1;
  }

 private:
  int failures_ = 0;
};

/// Section header in the bench output.
inline void banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n\n";
}

}  // namespace vwsdk::bench
