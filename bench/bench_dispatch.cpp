/// Extension bench (DESIGN.md §6): multi-array scaling.  A PIM chip has
/// dozens of crossbar tiles; this bench dispatches ResNet-18's VW-SDK
/// mappings over 1..64 arrays and reports the makespan under (a) static
/// tile ownership (weights live on one array) and (b) replicated weights.
///
/// Expected shape: static ownership saturates at AR*AC arrays per layer
/// (e.g. the im2col-fallback conv5 has 9 tiles and stops at 9x);
/// replication keeps scaling until the parallel-window count runs out.

#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/network_optimizer.h"
#include "nn/model_zoo.h"
#include "sim/dispatch.h"

int main() {
  using namespace vwsdk;
  bench::JsonReporter reporter("bench_dispatch");
  reporter.section("Multi-array dispatch -- ResNet-18, VW-SDK, 512x512");
  const ArrayGeometry geometry{512, 512};
  const Network net = resnet18_paper();
  const auto mapper = make_mapper("vw-sdk");

  TextTable table({"arrays", "makespan (owned)", "speedup",
                   "makespan (replicated)", "speedup "});
  Cycles serial_total = 0;
  Cycles owned_at_8 = 0;
  Cycles replicated_at_8 = 0;
  for (const Dim arrays : {1, 2, 4, 8, 16, 32, 64}) {
    Cycles owned_total = 0;
    Cycles replicated_total = 0;
    for (const ConvLayerDesc& layer : net.layers()) {
      const MappingDecision decision =
          mapper->map(ConvShape::from_layer(layer), geometry);
      owned_total += dispatch_layer(decision, arrays).makespan;
      replicated_total +=
          dispatch_layer(decision, arrays, /*allow_replication=*/true)
              .makespan;
    }
    if (arrays == 1) {
      serial_total = owned_total;
    }
    if (arrays == 8) {
      owned_at_8 = owned_total;
      replicated_at_8 = replicated_total;
    }
    table.add_row(
        {std::to_string(arrays), std::to_string(owned_total),
         format_fixed(static_cast<double>(serial_total) /
                          static_cast<double>(owned_total),
                      2),
         std::to_string(replicated_total),
         format_fixed(static_cast<double>(serial_total) /
                          static_cast<double>(replicated_total),
                      2)});
  }
  std::cout << table;

  reporter.expect_eq("serial total is the Table-I VW-SDK total", 4294,
                     serial_total);
  reporter.expect_true("replication at 8 arrays beats static ownership",
                       replicated_at_8 < owned_at_8);
  reporter.expect_true("replicated speedup at 8 arrays is near-linear",
                       static_cast<double>(serial_total) /
                               static_cast<double>(replicated_at_8) >
                           7.5);
  return reporter.finish();
}
