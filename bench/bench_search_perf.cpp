/// Engineering benchmark (google-benchmark): runtime of the mapping
/// algorithms themselves.  Not a paper artifact -- the paper's metric is
/// the mapped network's cycle count -- but a library that proposes to run
/// inside compilation/deployment flows should document its own cost.
/// Algorithm 1 is O(I_w * I_h) cost evaluations per layer; even VGG-13's
/// 224x224 layer is a ~49k-candidate scan of closed-form arithmetic.

#include <benchmark/benchmark.h>

#include "core/network_optimizer.h"
#include "nn/model_zoo.h"

namespace {

using namespace vwsdk;

const ArrayGeometry kGeometry{512, 512};

void BM_VwSdkSearch_SmallLayer(benchmark::State& state) {
  const ConvShape shape = ConvShape::square(14, 3, 256, 256);
  const auto mapper = make_mapper("vw-sdk");
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper->map(shape, kGeometry).cost.total);
  }
}
BENCHMARK(BM_VwSdkSearch_SmallLayer);

void BM_VwSdkSearch_MediumLayer(benchmark::State& state) {
  const ConvShape shape = ConvShape::square(56, 3, 128, 256);
  const auto mapper = make_mapper("vw-sdk");
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper->map(shape, kGeometry).cost.total);
  }
}
BENCHMARK(BM_VwSdkSearch_MediumLayer);

void BM_VwSdkSearch_LargestLayer(benchmark::State& state) {
  const ConvShape shape = ConvShape::square(224, 3, 64, 64);
  const auto mapper = make_mapper("vw-sdk");
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper->map(shape, kGeometry).cost.total);
  }
}
BENCHMARK(BM_VwSdkSearch_LargestLayer);

void BM_VwSdkSearch_IfmScaling(benchmark::State& state) {
  const Dim image = static_cast<Dim>(state.range(0));
  const ConvShape shape = ConvShape::square(image, 3, 64, 64);
  const auto mapper = make_mapper("vw-sdk");
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper->map(shape, kGeometry).cost.total);
  }
  state.SetComplexityN(image);
}
BENCHMARK(BM_VwSdkSearch_IfmScaling)
    ->RangeMultiplier(2)
    ->Range(14, 224)
    ->Complexity(benchmark::oNSquared);

void BM_SdkBaseline_WholeNetwork(benchmark::State& state) {
  const Network net = vgg13_paper();
  const auto mapper = make_mapper("sdk");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        optimize_network(*mapper, net, kGeometry).total_cycles());
  }
}
BENCHMARK(BM_SdkBaseline_WholeNetwork);

void BM_VwSdk_WholeVgg13(benchmark::State& state) {
  const Network net = vgg13_paper();
  const auto mapper = make_mapper("vw-sdk");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        optimize_network(*mapper, net, kGeometry).total_cycles());
  }
}
BENCHMARK(BM_VwSdk_WholeVgg13);

void BM_VwSdk_WholeResnet18(benchmark::State& state) {
  const Network net = resnet18_paper();
  const auto mapper = make_mapper("vw-sdk");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        optimize_network(*mapper, net, kGeometry).total_cycles());
  }
}
BENCHMARK(BM_VwSdk_WholeResnet18);

void BM_PrunedVwSdk_WholeVgg13(benchmark::State& state) {
  // Exact same optima as BM_VwSdk_WholeVgg13 (property-tested); the
  // interesting number is the runtime ratio between the two.
  const Network net = vgg13_paper();
  const auto mapper = make_mapper("vw-sdk-pruned");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        optimize_network(*mapper, net, kGeometry).total_cycles());
  }
}
BENCHMARK(BM_PrunedVwSdk_WholeVgg13);

void BM_CostModel_SingleEvaluation(benchmark::State& state) {
  const ConvShape shape = ConvShape::square(56, 3, 128, 256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vw_cost(shape, kGeometry, {4, 3}).total);
  }
}
BENCHMARK(BM_CostModel_SingleEvaluation);

}  // namespace

BENCHMARK_MAIN();
