/// Engineering benchmark: runtime of the mapping search itself.  Not a
/// paper artifact -- the paper's metric is the mapped network's cycle
/// count -- but a library that proposes to run inside compilation and
/// deployment flows should document its own cost.  Algorithm 1 is
/// O(I_w * I_h) cost evaluations per layer; even VGG-13's 224x224 layer
/// is a ~49k-candidate scan of closed-form arithmetic.
///
/// Measures, and records in BENCH_search_perf.json:
///  * single-layer search cost (vw-sdk full scan vs the pruned variant);
///  * whole-model-zoo mapping, sequential vs the threaded optimizer,
///    with the speedup as an INFO value CI can track over time;
///  * intra-layer parallel candidate evaluation on the largest layer;
///  * MappingCache effect on VGG-16 (9 distinct shapes in 13 layers)
///    with exact hit/miss counts.
///
/// The pass/fail checks are determinism claims (parallel == sequential,
/// exact cache counters), never wall-time thresholds: timings vary by
/// machine, decisions must not.

#include <algorithm>
#include <chrono>
#include <functional>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "core/network_optimizer.h"
#include "core/pruned_mapper.h"
#include "nn/model_zoo.h"

namespace {

using namespace vwsdk;

const ArrayGeometry kGeometry{512, 512};

/// Best-of-`reps` wall time of `fn`, in milliseconds.
double time_ms(const std::function<void()>& fn, int reps = 3) {
  double best = 0.0;
  for (int i = 0; i < reps; ++i) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    best = i == 0 ? ms : std::min(best, ms);
  }
  return best;
}

}  // namespace

int main() {
  bench::JsonReporter reporter("bench_search_perf");

  reporter.section("Single-layer search cost (512x512 array)");
  const auto vw = make_mapper("vw-sdk");
  const auto pruned = make_mapper("vw-sdk-pruned");
  const std::vector<std::pair<const char*, ConvShape>> layers = {
      {"14x14 k3 256->256", ConvShape::square(14, 3, 256, 256)},
      {"56x56 k3 128->256", ConvShape::square(56, 3, 128, 256)},
      {"224x224 k3 64->64", ConvShape::square(224, 3, 64, 64)},
  };
  for (const auto& [label, shape] : layers) {
    Cycles full_total = 0;
    Cycles pruned_total = 0;
    const double full_ms = time_ms(
        [&]() { full_total = vw->map(shape, kGeometry).cost.total; });
    const double pruned_ms = time_ms(
        [&]() { pruned_total = pruned->map(shape, kGeometry).cost.total; });
    reporter.report_value(cat(label, " full scan (ms)"), full_ms);
    reporter.report_value(cat(label, " pruned scan (ms)"), pruned_ms);
    reporter.expect_eq(cat(label, " pruned == full optimum"), full_total,
                       pruned_total);
  }

  reporter.section("Model zoo: sequential vs threaded optimizer");
  const std::vector<Network> zoo = {vgg13_paper(), resnet18_paper(), vgg16(),
                                    alexnet()};
  const int threads = std::max(4, ThreadPool::default_thread_count());
  std::vector<Cycles> seq_totals;
  std::vector<Cycles> par_totals;
  const double seq_ms = time_ms([&]() {
    seq_totals.clear();
    for (const Network& net : zoo) {
      seq_totals.push_back(
          optimize_network(*vw, net, kGeometry, OptimizerOptions{.threads = 1})
              .total_cycles());
    }
  });
  const double par_ms = time_ms([&]() {
    par_totals.clear();
    ThreadPool pool(threads);
    OptimizerOptions options;
    options.pool = &pool;
    for (const Network& net : zoo) {
      par_totals.push_back(
          optimize_network(*vw, net, kGeometry, options).total_cycles());
    }
  });
  // Labels stay machine-independent (the thread count varies by host and
  // would break the baseline label matching); the count is INFO data.
  for (std::size_t i = 0; i < zoo.size(); ++i) {
    reporter.expect_eq(
        cat(zoo[i].name(), ": threaded total == sequential total"),
        seq_totals[i], par_totals[i]);
  }
  reporter.report_value("threads used", threads);
  reporter.report_value("zoo sequential (ms)", seq_ms);
  reporter.report_value("zoo threaded (ms)", par_ms);
  reporter.report_value("across-layer parallel speedup (x)",
                        par_ms > 0 ? seq_ms / par_ms : 0.0);

  reporter.section("Intra-layer parallel candidate evaluation");
  {
    const ConvShape largest = ConvShape::square(224, 3, 64, 64);
    ThreadPool pool(threads);
    const MappingDecision sequential = vw->map(largest, kGeometry);
    MappingDecision parallel;
    const double intra_ms = time_ms(
        [&]() { parallel = vw->map_parallel(largest, kGeometry, pool); });
    reporter.expect_true("map_parallel decision identical to map",
                         parallel == sequential);
    reporter.report_value("224x224 intra-layer scan (ms)", intra_ms);
  }

  reporter.section("Memoized search: MappingCache on VGG-16");
  {
    const Network net = vgg16();
    MappingCache cache;
    OptimizerOptions options;
    options.threads = 1;
    options.cache = &cache;
    const NetworkMappingResult cold =
        optimize_network(*vw, net, kGeometry, options);
    const MappingCacheStats after_cold = cache.stats();
    reporter.expect_eq("cold run misses == distinct conv shapes", 9,
                       after_cold.misses);
    reporter.expect_eq("cold run hits == repeated conv shapes", 4,
                       after_cold.hits);
    const double warm_ms = time_ms([&]() {
      (void)optimize_network(*vw, net, kGeometry, options).total_cycles();
    });
    const NetworkMappingResult warm =
        optimize_network(*vw, net, kGeometry, options);
    reporter.expect_eq("warm run total == cold run total",
                       cold.total_cycles(), warm.total_cycles());
    reporter.report_value("VGG-16 warm (all-hit) mapping (ms)", warm_ms);
  }

  return reporter.finish();
}
