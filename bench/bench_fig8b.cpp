/// Reproduces Fig. 8(b): whole-network speedup (normalized to im2col) of
/// SDK and VW-SDK across the five PIM array sizes the paper evaluates:
/// 128x128, 128x256, 256x256, 512x256, 512x512.
///
/// Shape to reproduce: both algorithms' speedups grow with the array, and
/// VW-SDK dominates SDK at every size; the 512x512 points are exactly the
/// Table-I totals (VGG-13: 2.12x SDK / 3.16x VW; ResNet-18: 2.77x / 4.67x).

#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/network_optimizer.h"
#include "nn/model_zoo.h"

int main() {
  using namespace vwsdk;
  bench::JsonReporter reporter("bench_fig8b");
  reporter.section("Fig. 8(b) -- total speedup vs PIM array size");

  for (const Network& net : {vgg13_paper(), resnet18_paper()}) {
    std::cout << net.name() << ":\n";
    TextTable table({"array", "im2col cycles", "SDK cycles", "VW cycles",
                     "SDK speedup", "VW speedup"});
    double last_vw = 0.0;
    bool vw_monotone = true;
    bool vw_dominates = true;
    double vw_512 = 0.0;
    double sdk_512 = 0.0;
    for (const ArrayGeometry& geometry : paper_geometries()) {
      const NetworkComparison cmp =
          compare_mappers({"im2col", "sdk", "vw-sdk"}, net, geometry);
      const double sdk = cmp.speedup(0, 1);
      const double vw = cmp.speedup(0, 2);
      table.add_row({geometry.to_string(),
                     std::to_string(cmp.results[0].total_cycles()),
                     std::to_string(cmp.results[1].total_cycles()),
                     std::to_string(cmp.results[2].total_cycles()),
                     format_fixed(sdk, 2), format_fixed(vw, 2)});
      vw_monotone = vw_monotone && vw + 1e-9 >= last_vw;
      vw_dominates = vw_dominates && vw + 1e-9 >= sdk && sdk + 1e-9 >= 1.0;
      last_vw = vw;
      if (geometry.rows == 512 && geometry.cols == 512) {
        vw_512 = vw;
        sdk_512 = sdk;
      }
    }
    std::cout << table;

    reporter.expect_true(net.name() + ": VW speedup grows with array size",
                         vw_monotone);
    reporter.expect_true(net.name() + ": VW >= SDK >= im2col at every size",
                         vw_dominates);
    if (net.name() == "VGG-13") {
      reporter.expect_near("VGG-13 VW speedup at 512x512", 3.16, vw_512,
                           0.005);
      reporter.expect_near("VGG-13 SDK speedup at 512x512 (243736/114697)",
                           2.13, sdk_512, 0.005);
    } else {
      reporter.expect_near("ResNet-18 VW speedup at 512x512", 4.67, vw_512,
                           0.005);
      reporter.expect_near("ResNet-18 SDK speedup at 512x512 (20041/7240)",
                           2.77, sdk_512, 0.005);
    }
  }
  return reporter.finish();
}
