/// Reproduces Fig. 9: PIM array utilization (Eq. (9)).
///  (a) per-layer utilization of im2col / SDK / VW-SDK on VGG-13 layers
///      1-6 with a 512x512 array;
///  (b) utilization of VGG-13 layer4 and layer5 across array sizes.
///
/// Conventions: the paper's only precise utilization number -- "73.8% at
/// Layer 5" for VW-SDK -- reproduces exactly under the steady-state
/// weight-cell convention (see DESIGN.md §3.4); we print that convention
/// as the headline plus the literal cycle-average Eq. (9) for reference.
/// Claims checked: the 73.8% value; SDK == VW-SDK until layer 3; VW >= SDK
/// >= im2col everywhere; larger arrays raise VW-SDK's utilization.

#include <iostream>

#include "bench_util.h"
#include "core/network_optimizer.h"
#include "core/report.h"
#include "nn/model_zoo.h"

int main() {
  using namespace vwsdk;
  const Network net = vgg13_paper();

  bench::JsonReporter reporter("bench_fig9");
  reporter.section(
      "Fig. 9(a) -- utilization on VGG-13 layers 1-6, 512x512 array");
  const NetworkComparison cmp =
      compare_mappers({"im2col", "sdk", "vw-sdk"}, net, {512, 512});
  std::cout << "steady-state convention (paper-matching):\n"
            << render_utilization(cmp, UtilizationConvention::kSteadyState, 6)
            << "\nliteral Eq. (9) cycle-average (weight cells):\n"
            << render_utilization(
                   cmp, UtilizationConvention::kCycleAverageWeightCells, 6);

  const auto util = [](const MappingDecision& decision,
                       UtilizationConvention convention) {
    return 100.0 * utilization(decision.shape, decision.geometry,
                               decision.cost, convention);
  };

  const MappingDecision& vw_conv5 = cmp.results[2].layers[4].decision;
  reporter.expect_near("VW-SDK utilization at conv5 (paper: 73.8%)", 73.8,
                       util(vw_conv5, UtilizationConvention::kSteadyState),
                       0.05);
  for (Count layer = 1; layer <= 2; ++layer) {
    const auto i = static_cast<std::size_t>(layer);
    reporter.expect_near(
        "SDK == VW-SDK utilization at layer " + std::to_string(layer + 1),
        util(cmp.results[1].layers[i].decision,
             UtilizationConvention::kSteadyState),
        util(cmp.results[2].layers[i].decision,
             UtilizationConvention::kSteadyState),
        1e-9);
  }
  bool ordered = true;
  for (std::size_t i = 0; i < 6; ++i) {
    const double u_im2col = util(cmp.results[0].layers[i].decision,
                                 UtilizationConvention::kSteadyState);
    const double u_sdk = util(cmp.results[1].layers[i].decision,
                              UtilizationConvention::kSteadyState);
    const double u_vw = util(cmp.results[2].layers[i].decision,
                             UtilizationConvention::kSteadyState);
    ordered = ordered && u_vw + 1e-9 >= u_sdk && u_sdk + 1e-9 >= u_im2col;
  }
  reporter.expect_true("VW >= SDK >= im2col on layers 1-6", ordered);

  reporter.section("Fig. 9(b) -- layer4/layer5 utilization vs array size");
  // The paper's claim is about the GAP: "with a larger PIM array, VW-SDK
  // gains higher utilization than the conventional algorithms" -- small
  // arrays are trivially easy for every algorithm to fill, so the
  // absolute value falls with array size while VW-SDK's advantage grows.
  for (const char* layer_name : {"conv4", "conv5"}) {
    std::cout << layer_name << ":\n";
    TextTable table({"array", "im2col %", "SDK %", "VW-SDK %",
                     "VW advantage"});
    const ConvShape shape =
        ConvShape::from_layer(net.layer_by_name(layer_name));
    const std::vector<ArrayGeometry> geometries = {
        {128, 128}, {256, 256}, {512, 256}, {512, 512}};
    double smallest_gap = 0.0;
    double largest_gap = 0.0;
    for (const ArrayGeometry& geometry : geometries) {
      std::vector<std::string> row{geometry.to_string()};
      double im2col_value = 0.0;
      double vw_value = 0.0;
      for (const char* mapper : {"im2col", "sdk", "vw-sdk"}) {
        const MappingDecision decision =
            make_mapper(mapper)->map(shape, geometry);
        const double value =
            util(decision, UtilizationConvention::kSteadyState);
        row.push_back(format_fixed(value, 1));
        if (std::string(mapper) == "im2col") {
          im2col_value = value;
        }
        vw_value = value;
      }
      const double gap = vw_value - im2col_value;
      row.push_back(format_fixed(gap, 1));
      if (geometry.rows == 128) {
        smallest_gap = gap;
      }
      if (geometry.rows == 512 && geometry.cols == 512) {
        largest_gap = gap;
      }
      table.add_row(std::move(row));
    }
    std::cout << table;
    reporter.expect_true(
        std::string(layer_name) +
            ": VW-SDK's utilization advantage grows with the array",
        largest_gap + 1e-9 >= smallest_gap);
  }
  return reporter.finish();
}
