/// Reproduces Table I of the paper: per-layer parallel windows and tiled
/// channels chosen by the SDK baseline and by VW-SDK for VGG-13 and
/// ResNet-18 on a 512x512 PIM array, plus total computing cycles.
///
/// Every published per-layer window, every tiling, and all four published
/// totals are checked exactly.  Known paper quirk (see EXPERIMENTS.md):
/// Table I prints VGG-13 conv2's VW tile as IC_t=64 where Eq. (4) gives
/// 32; only 32 is consistent with the published total, so 32 is what we
/// print and check.

#include <iostream>

#include "bench_util.h"
#include "core/network_optimizer.h"
#include "core/report.h"
#include "nn/model_zoo.h"

namespace {

using namespace vwsdk;

struct ExpectedRow {
  const char* sdk;
  const char* vw;
};

int run_network(const Network& net, const std::vector<ExpectedRow>& rows,
                Cycles sdk_total, Cycles vw_total,
                bench::JsonReporter& reporter) {
  const ArrayGeometry geometry{512, 512};
  const NetworkComparison cmp =
      compare_mappers({"im2col", "sdk", "vw-sdk"}, net, geometry);
  const NetworkMappingResult& sdk = cmp.results[1];
  const NetworkMappingResult& vw = cmp.results[2];

  std::cout << render_table1(sdk, vw);

  for (std::size_t i = 0; i < rows.size(); ++i) {
    const std::string layer = net.layer(static_cast<Count>(i)).name;
    reporter.expect_true(
        net.name() + " " + layer + " SDK=" + rows[i].sdk,
        sdk.layers[i].decision.table_entry() == rows[i].sdk);
    reporter.expect_true(
        net.name() + " " + layer + " VW-SDK=" + rows[i].vw,
        vw.layers[i].decision.table_entry() == rows[i].vw);
  }
  reporter.expect_eq(net.name() + " SDK total cycles", sdk_total,
                     sdk.total_cycles());
  reporter.expect_eq(net.name() + " VW-SDK total cycles", vw_total,
                     vw.total_cycles());
  reporter.expect_near(net.name() + " VW-SDK speedup vs im2col",
                       net.name() == "VGG-13" ? 3.16 : 4.67,
                       cmp.speedup(0, 2), 0.005);
  reporter.expect_near(net.name() + " VW-SDK speedup vs SDK",
                       net.name() == "VGG-13" ? 1.49 : 1.69,
                       cmp.speedup(1, 2), 0.005);
  return 0;
}

}  // namespace

int main() {
  bench::JsonReporter reporter("bench_table1");
  reporter.section("Table I -- CNN layer mappings on a 512x512 PIM array");

  run_network(vgg13_paper(),
              {
                  {"4x4x3x64", "10x3x3x64"},
                  {"4x4x64x64", "4x4x32x64"},
                  {"4x4x64x128", "4x4x32x128"},
                  {"3x3x128x128", "4x4x32x128"},
                  {"3x3x128x256", "4x3x42x256"},
                  {"3x3x256x256", "4x3x42x256"},
                  {"3x3x256x512", "3x3x256x512"},
                  {"3x3x512x512", "3x3x512x512"},
                  {"3x3x512x512", "3x3x512x512"},
                  {"3x3x512x512", "3x3x512x512"},
              },
              114697, 77102, reporter);

  run_network(resnet18_paper(),
              {
                  {"8x8x3x64", "10x8x3x64"},
                  {"4x4x64x64", "4x4x32x64"},
                  {"3x3x128x128", "4x4x32x128"},
                  {"3x3x256x256", "4x3x42x256"},
                  {"3x3x512x512", "3x3x512x512"},
              },
              7240, 4294, reporter);

  return reporter.finish();
}
