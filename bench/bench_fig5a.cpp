/// Reproduces Fig. 5(a): the paper's worked example of how the window
/// shape changes the cycle count.  Configuration (from the caption and the
/// row/column annotations in the figure): PIM array 512x256, kernel 3x3,
/// IC = 42, OC = 96, and an IFM with 4 kernel windows (I = 4):
///
///   im2col (3x3):        4 parallel windows, AR 1 (378 rows), AC 1 (96
///                        cols)  -> 4 cycles
///   4x3 rectangular:     2 parallel windows, AR 1 (504 rows), AC 1 (192
///                        cols)  -> 2 cycles
///   4x4 square:          1 parallel window,  AR 2 (672 rows), AC 2 (384
///                        cols)  -> 4 cycles

#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "mapping/cost_model.h"

int main() {
  using namespace vwsdk;
  bench::JsonReporter reporter("bench_fig5a");
  reporter.section("Fig. 5(a) -- worked example: window shape vs cycles");

  const ConvShape example = ConvShape::square(4, 3, 42, 96);
  const ArrayGeometry geometry{512, 256};

  const CycleCost im2col = im2col_cost(example, geometry);
  const CycleCost rect = vw_cost(example, geometry, {4, 3});
  const CycleCost square = vw_cost(example, geometry, {4, 4});

  TextTable table({"mapping", "rows used", "cols used", "#PW", "AR", "AC",
                   "cycles"});
  const auto add = [&table](const std::string& name, Count rows, Count cols,
                            const CycleCost& cost) {
    table.add_row({name, std::to_string(rows), std::to_string(cols),
                   std::to_string(cost.n_parallel_windows),
                   std::to_string(cost.ar_cycles),
                   std::to_string(cost.ac_cycles),
                   std::to_string(cost.total)});
  };
  add("im2col 3x3", 9 * 42, 96, im2col);
  add("rect 4x3", 12 * 42, 2 * 96, rect);
  add("square 4x4", 16 * 42, 4 * 96, square);
  std::cout << table;

  // The figure's annotated row/column demands.
  reporter.expect_eq("im2col rows (figure: 378)", 378, 9 * 42);
  reporter.expect_eq("4x3 rows (figure: 504)", 504, 12 * 42);
  reporter.expect_eq("4x4 rows (figure: 672)", 672, 16 * 42);
  reporter.expect_eq("im2col cols (figure: 96)", 96, 96);
  reporter.expect_eq("4x3 cols (figure: 192)", 192, 2 * 96);
  reporter.expect_eq("4x4 cols (figure: 384)", 384, 4 * 96);
  // The figure's cycle counts.
  reporter.expect_eq("im2col cycles", 4, im2col.total);
  reporter.expect_eq("4x3 cycles", 2, rect.total);
  reporter.expect_eq("4x4 cycles", 4, square.total);
  reporter.expect_eq("4x4 AR cycles", 2, square.ar_cycles);
  reporter.expect_eq("4x4 AC cycles", 2, square.ac_cycles);
  return reporter.finish();
}
