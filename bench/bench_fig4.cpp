/// Reproduces Fig. 4: the number of input/output channels each mapping
/// method can compute in ONE cycle on contemporary PIM arrays, against the
/// actual channel sizes of VGG-13's conv layers.
///
/// im2col maps a K x K x IC column per output channel: one cycle computes
/// at most floor(rows / K^2) input channels and `cols` output channels.
/// SDK with its 4x4 parallel window (K=3) needs 16 rows per channel and 4
/// columns per output channel.  The figure's point: neither method maps
/// the deeper VGG-13 layers (up to 512 channels) in one cycle on any
/// contemporary array.

#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "mapping/cost_model.h"
#include "nn/model_zoo.h"

int main() {
  using namespace vwsdk;
  bench::JsonReporter reporter("bench_fig4");
  reporter.section(
      "Fig. 4 -- computable channel size per cycle (K=3) vs array size");

  const std::vector<std::pair<std::string, ArrayGeometry>> arrays = {
      {"128x128 [5]", {128, 128}},
      {"256x256 [5]", {256, 256}},
      {"512x512 [2]", {512, 512}},
      {"512x256 [8]", {512, 256}},
  };

  TextTable table({"array", "im2col IC", "im2col OC", "SDK(4x4) IC",
                   "SDK(4x4) OC"});
  for (const auto& [label, geometry] : arrays) {
    const Count im2col_ic = geometry.rows / 9;
    const Count im2col_oc = geometry.cols;
    const Count sdk_ic = geometry.rows / 16;
    const Count sdk_oc = geometry.cols / 4;
    table.add_row({label, std::to_string(im2col_ic),
                   std::to_string(im2col_oc), std::to_string(sdk_ic),
                   std::to_string(sdk_oc)});
  }
  std::cout << table;

  std::cout << "\nActual VGG-13 channel sizes (conv2..conv8, the triangles "
               "of Fig. 4):\n";
  TextTable layers({"layer", "IC", "OC"});
  const Network net = vgg13_paper();
  for (Count i = 1; i <= 7; ++i) {
    const ConvLayerDesc& layer = net.layer(i);
    layers.add_row({layer.name, std::to_string(layer.in_channels),
                    std::to_string(layer.out_channels)});
  }
  std::cout << layers;

  // Exact spot values readable off the figure's dashed lines.
  reporter.expect_eq("im2col IC on 512 rows", 56, 512 / 9);
  reporter.expect_eq("im2col IC on 256 rows", 28, 256 / 9);
  reporter.expect_eq("im2col IC on 128 rows", 14, 128 / 9);
  reporter.expect_eq("SDK IC on 512 rows", 32, 512 / 16);
  reporter.expect_eq("SDK OC on 512 cols", 128, 512 / 4);
  reporter.expect_eq("SDK OC on 256 cols", 64, 256 / 4);
  // The figure's argument: even the largest array cannot hold conv5+'s
  // 256-512 channels in one im2col cycle.
  reporter.expect_true("no array maps VGG-13 conv5's 128/256 channels at once",
                       512 / 9 < 128);
  return reporter.finish();
}
