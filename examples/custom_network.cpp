/// Custom network end to end: define a small CNN with the fluent builder,
/// run the whole thing *functionally* on the crossbar simulator (conv ->
/// ReLU -> pool pipeline, every conv verified against the reference), and
/// compare the mapping algorithms' cycle/energy bills for it.
///
///   ./examples/custom_network
///   ./examples/custom_network --array 128x64 --mapper sdk

#include <iostream>

#include "vwsdk.h"

int main(int argc, char** argv) {
  using namespace vwsdk;
  return run_cli_main([&]() -> int {
    ArgParser args("custom_network",
                   "build a custom CNN and simulate it on PIM end to end");
    add_array_option(args, "128x64");
    args.add_option("mapper", "vw-sdk", "mapping algorithm for the pipeline");
    args.add_int_option("seed", 11, "input/weight generator seed");
    if (!args.parse(argc, argv)) {
      return kExitOk;
    }

    const ArrayGeometry geometry = array_from_args(args);

    // A LeNet-flavoured CNN defined with the builder (sizes tracked
    // automatically; kValid keeps the cost-model convention of the paper).
    const Network net = NetworkBuilder("custom-cnn", 16, 1)
                            .conv(3, 4)      // 16 -> 14, 4 channels
                            .max_pool(2, 2)  // 14 -> 7
                            .conv(3, 8)      // 7 -> 5, 8 channels
                            .conv(3, 12)     // 5 -> 3, 12 channels
                            .build();
    std::cout << net.to_string() << "\n";

    // Analytic comparison across algorithms.
    const NetworkComparison cmp =
        compare_mappers({"im2col", "smd", "sdk", "vw-sdk"}, net, geometry);
    std::cout << "Cycle comparison on " << geometry.to_string() << ":\n"
              << render_layer_speedups(cmp) << "\n";

    // Functional pipeline with the chosen mapper.
    std::vector<StageSpec> stages;
    for (Count i = 0; i < net.layer_count(); ++i) {
      StageSpec stage;
      stage.conv = net.layer(i);
      stage.relu = true;
      if (i == 0) {
        stage.pool_window = 2;
        stage.pool_stride = 2;
      }
      stages.push_back(stage);
    }
    Rng rng(static_cast<std::uint64_t>(args.get_int("seed")));
    Tensord input = Tensord::feature_map(1, 16, 16);
    fill_random_int(input, rng, 3);

    const auto mapper = make_mapper(args.get("mapper"));
    const PipelineResult result =
        run_pipeline(stages, input, *mapper, geometry);
    std::cout << result.summary();

    const EnergyParams params;
    std::cout << "crossbar activity: " << result.activity.to_string(params)
              << "\noutput shape: " << result.output.shape().to_string()
              << "\n";
    if (!result.all_verified) {
      std::cerr << "PIPELINE VERIFICATION FAILED\n";
      return kExitError;
    }
    return kExitOk;
  });
}
