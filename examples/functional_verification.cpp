/// Functional verification: prove on the crossbar simulator that a chosen
/// mapping computes the SAME numbers as a software convolution -- cell by
/// cell, cycle by cycle -- then show what quantization and device noise do
/// to the result.
///
///   ./examples/functional_verification
///   ./examples/functional_verification --image 10 --ic 8 --oc 12 --array 96x48 --adc-bits 8 --noise 0.02

#include <iostream>

#include "vwsdk.h"

int main(int argc, char** argv) {
  using namespace vwsdk;
  return run_cli_main([&]() -> int {
    ArgParser args("functional_verification",
                   "execute a mapping on the crossbar simulator and compare "
                   "with the reference convolution");
    add_shape_options(args, 10, 3, 6, 8);
    add_array_option(args, "96x48");
    args.add_int_option("adc-bits", 0, "ADC resolution (0 = ideal)");
    args.add_option("noise", "0", "multiplicative device-variation sigma");
    args.add_int_option("seed", 7, "tensor generator seed");
    if (!args.parse(argc, argv)) {
      return kExitOk;
    }

    const ConvShape shape = shape_from_args(args);
    const ArrayGeometry geometry = array_from_args(args);
    const auto seed =
        static_cast<std::uint64_t>(int_in_range(args, "seed", 0));

    bool all_exact = true;
    for (const char* name : {"im2col", "smd", "sdk", "vw-sdk"}) {
      const MappingDecision decision =
          make_mapper(name)->map(shape, geometry);
      const MappingPlan plan =
          build_plan_for_cost(shape, geometry, decision.cost);
      std::cout << describe_plan(plan);
      const VerificationReport report = verify_mapping_random(plan, seed);
      std::cout << "  " << report.summary << "\n\n";
      all_exact = all_exact && report.exact_match && report.cycles_match;
    }

    // Show the physical layout of the VW-SDK tile (the paper's Fig. 2(d),
    // in ASCII).
    const MappingDecision vw = make_mapper("vw-sdk")->map(shape, geometry);
    const MappingPlan plan = build_plan_for_cost(shape, geometry, vw.cost);
    std::cout << render_tile(plan, 0, 0, 48, 64) << "\n";

    // Non-ideal execution, if requested.
    const double noise_sigma = std::stod(args.get("noise"));
    // Bounded to ConverterModel's [1, 30] (0 = ideal): an out-of-range
    // value must fail, not truncate to 0 and silently skip quantization.
    const auto adc_bits =
        static_cast<int>(int_in_range(args, "adc-bits", 0, 30));
    if (adc_bits > 0 || noise_sigma > 0.0) {
      ExecutionOptions options;
      if (adc_bits > 0) {
        options.adc = ConverterModel(adc_bits, -2048.0, 2048.0);
      }
      options.noise.multiplicative_sigma = noise_sigma;
      options.noise_seed = seed;
      const VerificationReport report =
          verify_mapping_random(plan, seed, 4, options);
      std::cout << "non-ideal execution (adc-bits=" << adc_bits
                << ", noise=" << noise_sigma << "):\n  " << report.summary
                << "\n";
    }

    if (!all_exact) {
      std::cerr << "VERIFICATION FAILED\n";
      return kExitError;
    }
    std::cout << "all mappings verified bit-exact against the reference "
                 "convolution\n";
    return kExitOk;
  });
}
