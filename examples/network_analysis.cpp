/// Network analysis: run the full optimizer over a model-zoo network on a
/// chosen array (the workflow behind the paper's Table I / Fig. 8),
/// optionally emitting CSV for replotting.
///
///   ./examples/network_analysis --model resnet18 --array 512x512
///   ./examples/network_analysis --model vgg13 --csv

#include <iostream>

#include "vwsdk.h"

int main(int argc, char** argv) {
  using namespace vwsdk;
  return run_cli_main([&]() -> int {
    ArgParser args("network_analysis",
                   "per-layer mapping analysis of a zoo network");
    args.add_option("model", "resnet18",
                    "model name (vgg13, resnet18, vgg16, alexnet, lenet5, "
                    "stress)");
    add_array_option(args, "512x512");
    args.add_flag("csv", "emit CSV instead of tables");
    args.add_flag("sweep", "also sweep the paper's five array sizes");
    if (!args.parse(argc, argv)) {
      return kExitOk;
    }

    const Network net = model_by_name(args.get("model"));
    const ArrayGeometry geometry = array_from_args(args);
    const NetworkComparison cmp =
        compare_mappers({"im2col", "smd", "sdk", "vw-sdk"}, net, geometry);

    if (args.get_flag("csv")) {
      CsvWriter csv(std::cout,
                    {"layer", "algorithm", "mapping", "cycles", "speedup"});
      for (const NetworkMappingResult& result : cmp.results) {
        for (std::size_t i = 0; i < result.layers.size(); ++i) {
          const LayerMapping& lm = result.layers[i];
          const Cycles base = cmp.results[0].layer_cycles(
              static_cast<Count>(i));
          csv.write_row({lm.layer.name, result.algorithm,
                         lm.decision.table_entry(),
                         std::to_string(lm.decision.cost.total),
                         format_fixed(static_cast<double>(base) /
                                          static_cast<double>(
                                              lm.decision.cost.total),
                                      3)});
        }
      }
      return kExitOk;
    }

    std::cout << net.to_string() << "\narray " << geometry.to_string()
              << "\n\n"
              << "Table-I-style mapping table (SDK vs VW-SDK):\n"
              << render_table1(cmp.results[2], cmp.results[3]) << "\n"
              << "Per-layer speedups vs im2col:\n"
              << render_layer_speedups(cmp) << "\n"
              << "Utilization (steady-state convention):\n"
              << render_utilization(cmp,
                                    UtilizationConvention::kSteadyState);

    if (args.get_flag("sweep")) {
      std::cout << "\nArray-size sweep (Fig. 8(b) style):\n";
      TextTable sweep({"array", "im2col", "smd", "sdk", "vw-sdk",
                       "vw speedup"});
      for (const ArrayGeometry& g : paper_geometries()) {
        const NetworkComparison c =
            compare_mappers({"im2col", "smd", "sdk", "vw-sdk"}, net, g);
        sweep.add_row({g.to_string(),
                       std::to_string(c.results[0].total_cycles()),
                       std::to_string(c.results[1].total_cycles()),
                       std::to_string(c.results[2].total_cycles()),
                       std::to_string(c.results[3].total_cycles()),
                       format_fixed(c.speedup(0, 3), 2)});
      }
      std::cout << sweep;
    }
    return kExitOk;
  });
}
