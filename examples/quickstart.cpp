/// Quickstart: map one convolutional layer onto a PIM array with every
/// algorithm in the library and print what each one chose.
///
///   ./examples/quickstart
///   ./examples/quickstart --image 28 --kernel 3 --ic 256 --oc 512 --array 256x256

#include <iostream>

#include "vwsdk.h"

int main(int argc, char** argv) {
  using namespace vwsdk;
  return run_cli_main([&]() -> int {
    ArgParser args("quickstart", "map one conv layer onto a PIM array");
    add_shape_options(args, 56, 3, 128, 256);
    add_array_option(args, "512x512");
    if (!args.parse(argc, argv)) {
      return kExitOk;
    }

    const ConvShape shape = shape_from_args(args);
    const ArrayGeometry geometry = array_from_args(args);

    std::cout << "layer: " << shape.to_string() << "\narray: "
              << geometry.to_string() << "\n\n";

    TextTable table({"algorithm", "mapping (PWxICtxOCt)", "#PW", "AR", "AC",
                     "cycles", "speedup"});
    const Cycles baseline =
        make_mapper("im2col")->map(shape, geometry).cost.total;
    for (const char* name : {"im2col", "smd", "sdk", "vw-sdk"}) {
      const MappingDecision decision =
          make_mapper(name)->map(shape, geometry);
      table.add_row({decision.algorithm, decision.table_entry(),
                     std::to_string(decision.cost.n_parallel_windows),
                     std::to_string(decision.cost.ar_cycles),
                     std::to_string(decision.cost.ac_cycles),
                     std::to_string(decision.cost.total),
                     format_fixed(static_cast<double>(baseline) /
                                      static_cast<double>(decision.cost.total),
                                  2)});
    }
    std::cout << table;

    const MappingDecision best = make_mapper("vw-sdk")->map(shape, geometry);
    std::cout << "\nVW-SDK chose a " << best.cost.window.to_string()
              << " parallel window computing "
              << windows_in_pw(shape, best.cost.window)
              << " output position(s) per cycle with " << best.cost.ic_t
              << " input / " << best.cost.oc_t
              << " output channels per tile.\n";

    // The same search under the energy objective (docs/OBJECTIVES.md):
    // on conversion-bound layers it can prefer a different window.
    MappingContext energy_context{shape, geometry};
    energy_context.objective = &energy_objective();
    const MappingDecision frugal =
        make_mapper("vw-sdk")->map(energy_context);
    if (frugal.cost.window == best.cost.window) {
      std::cout << "The energy objective agrees with the cycle search "
                   "on this layer ("
                << format_fixed(frugal.score / 1e6, 2) << " uJ).\n";
    } else {
      std::cout << "Under the energy objective it would pick "
                << frugal.cost.window.to_string() << " instead: "
                << frugal.cost.total << " cycles but "
                << format_fixed(frugal.score / 1e6, 2) << " uJ vs "
                << format_fixed(energy_objective().score(shape, geometry,
                                                         best.cost) /
                                    1e6,
                                2)
                << " uJ.\n";
    }
    return kExitOk;
  });
}
