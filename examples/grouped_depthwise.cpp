/// Grouped / depthwise convolution analysis (extension): MobileNet-class
/// networks replace dense 3x3 convs with depthwise 3x3 + pointwise 1x1.
/// Depthwise layers are the paper's §III-A worst case for conventional
/// mappings (one channel per group -> 9 of 512 rows used by im2col), and
/// the regime where variable windows shine brightest.
///
///   ./examples/grouped_depthwise
///   ./examples/grouped_depthwise --array 256x256 --channels 64

#include <iostream>

#include "vwsdk.h"

int main(int argc, char** argv) {
  using namespace vwsdk;
  return run_cli_main([&]() -> int {
    ArgParser args("grouped_depthwise",
                   "depthwise-separable conv blocks on a PIM array");
    add_array_option(args, "512x512");
    args.add_int_option("image", 56, "IFM width/height");
    args.add_int_option("channels", 128, "channels of the block");
    if (!args.parse(argc, argv)) {
      return kExitOk;
    }

    const ArrayGeometry geometry = array_from_args(args);
    const Dim image = dim_in_range(args, "image", 3);
    const Dim channels = dim_in_range(args, "channels", 1);

    // Depthwise 3x3 (G = channels) followed by pointwise 1x1 (dense).
    const GroupedConvShape depthwise{
        ConvShape::square(image, 3, channels, channels), channels};
    const ConvShape pointwise =
        ConvShape::square(image - 2, 1, channels, channels);
    // The dense 3x3 conv the separable block replaces, for context.
    const ConvShape dense = ConvShape::square(image, 3, channels, channels);

    const auto im2col = make_mapper("im2col");
    const auto vw = make_mapper("vw-sdk");

    TextTable table({"layer", "algorithm", "mapping", "cycles",
                     "speedup", "fetches/elem"});
    const auto add_grouped = [&](const char* label, const Mapper& mapper,
                                 Cycles baseline) {
      const GroupedDecision d = map_grouped(mapper, depthwise, geometry);
      table.add_row(
          {label, mapper.name(),
           cat(d.per_group.table_entry(), " x", depthwise.groups),
           std::to_string(d.total_cycles),
           baseline == 0
               ? std::string("1.00")
               : format_fixed(static_cast<double>(baseline) /
                                  static_cast<double>(d.total_cycles),
                              2),
           format_fixed(input_reuse(d.per_group).fetches_per_element, 2)});
    };
    const auto add_plain = [&](const char* label, const Mapper& mapper,
                               const ConvShape& shape, Cycles baseline) {
      const MappingDecision d = mapper.map(shape, geometry);
      table.add_row(
          {label, mapper.name(), d.table_entry(),
           std::to_string(d.cost.total),
           baseline == 0
               ? std::string("1.00")
               : format_fixed(static_cast<double>(baseline) /
                                  static_cast<double>(d.cost.total),
                              2),
           format_fixed(input_reuse(d).fetches_per_element, 2)});
    };

    const Cycles dw_base =
        map_grouped(*im2col, depthwise, geometry).total_cycles;
    add_grouped("depthwise 3x3", *im2col, 0);
    add_grouped("depthwise 3x3", *vw, dw_base);
    table.add_separator();
    const Cycles pw_base = im2col->map(pointwise, geometry).cost.total;
    add_plain("pointwise 1x1", *im2col, pointwise, 0);
    add_plain("pointwise 1x1", *vw, pointwise, pw_base);
    table.add_separator();
    const Cycles dense_base = im2col->map(dense, geometry).cost.total;
    add_plain("dense 3x3", *im2col, dense, 0);
    add_plain("dense 3x3", *vw, dense, dense_base);
    std::cout << table;

    const GroupedDecision vw_dw = map_grouped(*vw, depthwise, geometry);
    const Cycles separable_vw =
        vw_dw.total_cycles + vw->map(pointwise, geometry).cost.total;
    const Cycles dense_vw = vw->map(dense, geometry).cost.total;
    std::cout << "\nseparable block (depthwise + pointwise) under VW-SDK: "
              << separable_vw << " cycles vs dense 3x3: " << dense_vw
              << " cycles\n"
              << "depthwise window chosen per group: "
              << vw_dw.per_group.cost.window.to_string() << " ("
              << windows_in_pw(depthwise.group_shape(),
                               vw_dw.per_group.cost.window)
              << " outputs/cycle per group)\n";
    return kExitOk;
  });
}
