/// Design-space explorer: given a layer, sweep candidate array geometries
/// and inspect the window search itself -- which windows were visited,
/// which improved the incumbent, where the optimum sits (the tool a PIM
/// architect would actually use when sizing an array).  --objective
/// switches the search metric: the same sweep under "energy" shows where
/// the conversion-optimal window parts ways with the cycle-optimal one.
///
///   ./examples/design_space_explorer --image 28 --ic 128 --oc 128
///   ./examples/design_space_explorer --trace --array 512x256
///   ./examples/design_space_explorer --objective energy --trace
#include <iostream>

#include "vwsdk.h"

int main(int argc, char** argv) {
  using namespace vwsdk;
  return run_cli_main([&]() -> int {
    ArgParser args("design_space_explorer",
                   "sweep array geometries and trace the window search");
    add_shape_options(args, 28, 3, 128, 128);
    add_array_option(args, "512x512");
    add_objective_option(args);
    args.add_flag("trace", "print every incumbent improvement of the search");
    if (!args.parse(argc, argv)) {
      return kExitOk;
    }

    const ConvShape shape = shape_from_args(args);
    const Objective& objective = objective_from_args(args);

    std::cout << "layer: " << shape.to_string() << "   objective: "
              << objective.name() << "\n\n"
              << "Array-geometry sweep (same cell budget, varying aspect):\n";
    TextTable sweep({"array", "cells", "best window", "ICt", "OCt", "cycles",
                     cat("score (", objective.unit(), ")"),
                     "speedup vs im2col", "steady util %"});
    const VwSdkMapper vw;
    for (const ArrayGeometry& geometry :
         {ArrayGeometry{128, 128}, ArrayGeometry{256, 64},
          ArrayGeometry{64, 256}, ArrayGeometry{256, 256},
          ArrayGeometry{512, 128}, ArrayGeometry{128, 512},
          ArrayGeometry{512, 512}, ArrayGeometry{1024, 256},
          ArrayGeometry{256, 1024}}) {
      MappingContext context{shape, geometry};
      context.objective = &objective;
      const MappingDecision decision = vw.map(context);
      const Cycles base = im2col_cost(shape, geometry).total;
      sweep.add_row(
          {geometry.to_string(), std::to_string(geometry.cell_count()),
           decision.cost.window.to_string(),
           std::to_string(decision.cost.ic_t),
           std::to_string(decision.cost.oc_t),
           std::to_string(decision.cost.total),
           format_fixed(decision.score, 1),
           format_fixed(static_cast<double>(base) /
                            static_cast<double>(decision.cost.total),
                        2),
           format_fixed(
               100.0 * utilization(shape, geometry, decision.cost,
                                   UtilizationConvention::kSteadyState),
               1)});
    }
    std::cout << sweep;

    const ArrayGeometry geometry = array_from_args(args);
    SearchTrace trace;
    MappingContext context{shape, geometry};
    context.objective = &objective;
    context.trace = &trace;
    const MappingDecision decision = vw.map(context);
    std::cout << "\nSearch on " << geometry.to_string() << ": "
              << trace.candidates_visited() << " candidates, "
              << trace.feasible_count() << " feasible, "
              << trace.improvement_count() << " improvements; optimum "
              << decision.cost.to_string() << "\n";
    if (args.get_flag("trace")) {
      std::cout << trace.to_string();
    }

    // Oracle cross-check, the library's own safety net: the exhaustive
    // search under the same objective may never score better.
    const ExhaustiveMapper oracle;
    MappingContext oracle_context{shape, geometry};
    oracle_context.objective = &objective;
    const MappingDecision reference = oracle.map(oracle_context);
    const bool agrees = !(objective.better(reference.score, decision.score));
    std::cout << "exhaustive oracle agrees: " << (agrees ? "yes" : "NO")
              << " (" << reference.cost.total << " cycles, score "
              << format_fixed(reference.score, 1) << ")\n";
    return agrees ? kExitOk : kExitError;
  });
}
