#include "serve/service.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <future>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/string_util.h"
#include "core/serialize.h"
#include "nn/network_spec.h"
#include "pim/array_geometry.h"

namespace vwsdk {
namespace {

MapQuery lenet_map() {
  MapQuery query;
  query.net = "lenet5";
  return query;
}

TEST(Service, MapMatchesDirectOptimizerRun) {
  ServiceApi api(1);
  const NetworkMappingResult via_service = api.map(lenet_map());

  const NetworkSpec spec = resolve_network_spec("lenet5");
  const auto mapper = make_mapper("vw-sdk");
  const NetworkMappingResult direct = optimize_network(
      *mapper, spec.network, parse_geometry("512x512"), OptimizerOptions{});

  // The service is a routing layer, not a different algorithm: the
  // serialized results (the serve payloads) must be byte-identical.
  EXPECT_EQ(to_json(via_service), to_json(direct));
}

TEST(Service, GeometryResolutionPrefersQueryThenSpecThenDefault) {
  ServiceApi api(1);
  MapQuery query = lenet_map();
  EXPECT_EQ(api.map(query).geometry, parse_geometry("512x512"));
  query.array = "128x128";
  EXPECT_EQ(api.map(query).geometry, parse_geometry("128x128"));
}

TEST(Service, InvalidQueriesThrowTheDocumentedCategories) {
  ServiceApi api(1);
  EXPECT_THROW(api.map(MapQuery{}), InvalidArgument);  // no net
  {
    MapQuery query = lenet_map();
    query.mapper = "frob";
    EXPECT_THROW(api.map(query), NotFound);
  }
  {
    MapQuery query = lenet_map();
    query.objective = "frob";
    EXPECT_THROW(api.map(query), NotFound);
  }
  {
    CompareQuery query;
    query.net = "lenet5";
    query.mappers = {"vw-sdk", "vwsdk"};  // alias duplicate
    EXPECT_THROW(api.compare(query), InvalidArgument);
  }
  {
    ChipQuery query;
    query.net = "lenet5";
    query.arrays_per_chip = 0;
    EXPECT_THROW(api.chip(query), InvalidArgument);
  }
}

TEST(Service, CompareCanonicalizesAliases) {
  ServiceApi api(1);
  CompareQuery query;
  query.net = "lenet5";
  query.mappers = {"im2col", "vwsdk"};  // alias of vw-sdk
  const NetworkComparison cmp = api.compare(query);
  ASSERT_EQ(cmp.results.size(), 2u);
  EXPECT_EQ(cmp.results[1].algorithm, "vw-sdk");
}

TEST(Service, ChipPlansAndReportsInfeasibility) {
  ServiceApi api(1);
  ChipQuery query;
  query.net = "lenet5";
  query.arrays_per_chip = 4;
  const ChipResult result = api.chip(query);
  EXPECT_TRUE(result.plan.feasible);
  EXPECT_EQ(result.mapping.network_name, result.plan.network_name);

  query.max_chips = 1;
  query.arrays_per_chip = 1;  // lenet5 needs more than one array total
  EXPECT_THROW(api.chip(query), Error);
}

TEST(Service, VerifyReportsEveryLayer) {
  ServiceApi api(1);
  VerifyQuery query;
  query.net = "lenet5";
  const NetworkVerifyResult result = api.verify(query);
  EXPECT_EQ(result.layers.size(), 2u);
  EXPECT_TRUE(result.all_verified());
  EXPECT_EQ(result.backend, "gemm");
}

TEST(Service, TrafficSimulatesThroughTheChipPlanner) {
  ServiceApi api(1);
  TrafficQuery query;
  query.net = "lenet5";
  query.arrays_per_chip = 8;
  query.rate = 50.0;
  query.duration = 1'000'000;
  const TrafficResult result = api.traffic(query);
  EXPECT_FALSE(result.capacity_mode);
  ASSERT_EQ(result.plans.size(), 1u);
  ASSERT_EQ(result.report.networks.size(), 1u);
  const NetworkTraffic& net = result.report.networks.front();
  EXPECT_EQ(net.network, result.plans.front().network_name);
  EXPECT_GT(net.arrivals, 0);
  EXPECT_EQ(net.arrivals, net.completions + net.in_flight + net.rejected);
}

TEST(Service, TrafficValidationCatchesContradictoryQueries) {
  ServiceApi api(1);
  TrafficQuery query;
  query.net = "lenet5";
  query.arrays_per_chip = 8;
  // No source: neither a rate nor a trace.
  EXPECT_THROW(api.traffic(query), InvalidArgument);
  // Both sources at once.
  query.rate = 10.0;
  query.trace = "/tmp/whatever.csv";
  EXPECT_THROW(api.traffic(query), InvalidArgument);
  // SLO mode on a multi-network farm.
  query.trace.clear();
  query.net = "lenet5,alexnet";
  query.slo_p99 = 50'000;
  EXPECT_THROW(api.traffic(query), InvalidArgument);
  // Duplicate network after alias trimming.
  query.slo_p99 = 0;
  query.net = "lenet5, lenet5";
  EXPECT_THROW(api.traffic(query), InvalidArgument);
  // A missing trace file surfaces as NotFound.
  query.net = "lenet5";
  query.rate = 0.0;
  query.trace = "/nonexistent/arrivals.csv";
  EXPECT_THROW(api.traffic(query), NotFound);
}

TEST(Service, StatsCountCacheTraffic) {
  ServiceApi api(1);
  EXPECT_EQ(api.stats().cache_hits, 0);
  EXPECT_EQ(api.stats().cache_misses, 0);
  const Count layers =
      static_cast<Count>(api.map(lenet_map()).layers.size());
  EXPECT_EQ(api.stats().cache_misses, layers);
  (void)api.map(lenet_map());
  EXPECT_EQ(api.stats().cache_hits, layers);
  EXPECT_EQ(api.stats().cache_misses, layers);
  EXPECT_EQ(api.stats().cache_entries, layers);
  EXPECT_GE(api.stats().threads, 1);
}

// The single-flight contract under concurrency: N parallel identical
// map requests must produce byte-identical payloads from exactly one
// search per layer (misses == layers, hits == (N-1) * layers).
TEST(Service, ParallelIdenticalRequestsSingleFlightTheCache) {
  constexpr int kRequests = 8;
  ServiceApi api(2);
  std::vector<std::future<std::string>> futures;
  futures.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(std::async(std::launch::async, [&api] {
      return to_json(api.map(lenet_map()));
    }));
  }
  std::vector<std::string> payloads;
  payloads.reserve(kRequests);
  for (std::future<std::string>& future : futures) {
    payloads.push_back(future.get());
  }
  for (int i = 1; i < kRequests; ++i) {
    EXPECT_EQ(payloads[static_cast<std::size_t>(i)], payloads[0])
        << "response " << i << " differs";
  }
  const ServiceStats stats = api.stats();
  const Count layers = 2;  // lenet5
  EXPECT_EQ(stats.cache_misses, layers);
  EXPECT_EQ(stats.cache_hits, (kRequests - 1) * layers);
  EXPECT_EQ(stats.cache_entries, layers);
}

// Pinning test: ServiceApi::stats() takes ONE MappingCacheStats
// snapshot (hits/misses/entries under a single lock).  The old shape --
// stats() then a separate size() call -- could interleave a concurrent
// layer insert between the two reads and report more entries than
// misses, which a consistent snapshot can never do.
TEST(Service, StatsSnapshotStaysConsistentUnderParallelMaps) {
  ServiceApi api(2);
  const char* arrays[] = {"128x128", "256x256", "512x512", "64x64"};
  std::atomic<int> remaining{static_cast<int>(std::size(arrays))};
  std::vector<std::thread> mappers;
  for (const char* array : arrays) {
    mappers.emplace_back([&api, &remaining, array] {
      MapQuery query = lenet_map();
      query.array = array;
      (void)api.map(query);
      --remaining;
    });
  }
  while (remaining.load() > 0) {
    const ServiceStats snapshot = api.stats();
    ASSERT_LE(snapshot.cache_entries, snapshot.cache_misses)
        << "torn snapshot: an entry exists that no recorded miss created";
  }
  for (std::thread& thread : mappers) {
    thread.join();
  }
  const ServiceStats stats = api.stats();
  EXPECT_EQ(stats.cache_entries, stats.cache_misses);  // no repeats above
}

// Regression for the arithmetic-safety contract (docs/STATIC_ANALYSIS.md):
// an overflow-scale layer must surface as the structured `Overflow`
// error (wire code "overflow", exit 2) through the service facade, never
// as a silently wrapped negative cycle count.  The dims below pass every
// per-field spec bound (each fits Dim), but the im2col product chain
// N_pw x AR x AC is ~7e20 >> INT64_MAX.
TEST(Service, OverflowScaleLayerYieldsStructuredErrorNotNegativeTotal) {
  const std::string path =
      cat(::testing::TempDir(), "overflow_scale_spec.json");
  {
    std::ofstream os(path);
    os << R"({"layers": [{"name": "absurd", "image": 2000001,)"
       << R"( "kernel": 7, "ic": 1000000, "oc": 1000000}]})";
  }
  ServiceApi api(1);
  MapQuery query;
  query.net = path;
  query.mapper = "im2col";  // single analytic candidate: fast at any scale
  try {
    (void)api.map(query);
    FAIL() << "expected Overflow";
  } catch (const Overflow& e) {
    EXPECT_EQ(classify_exception(e), ErrorCode::kOverflow);
    EXPECT_STREQ(error_code_name(ErrorCode::kOverflow), "overflow");
  }

  // The chip planner front door maps first, so it hits the same wall --
  // and reports it structurally rather than planning on garbage.
  ChipQuery chip;
  chip.net = path;
  chip.mapper = "im2col";
  chip.arrays_per_chip = 64;
  EXPECT_THROW((void)api.chip(chip), Overflow);
  std::remove(path.c_str());
}

TEST(Service, StatsLinesFormatTheFragment) {
  ServiceStats stats;
  stats.cache_hits = 5;
  stats.cache_misses = 3;
  stats.cache_entries = 3;
  stats.threads = 2;
  EXPECT_EQ(cache_stats_fragment(stats),
            "cache 5 hit(s) / 3 miss(es), 3 distinct search(es)");
  EXPECT_EQ(stats_line(stats),
            "stats: cache 5 hit(s) / 3 miss(es), 3 distinct search(es); "
            "2 thread(s)");
}

}  // namespace
}  // namespace vwsdk
