#include "serve/protocol.h"

#include <string>

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/string_util.h"

namespace vwsdk {
namespace {

/// The code a hostile line fails with, for EXPECT_EQ against the enum.
ErrorCode code_of(const std::string& line) {
  try {
    (void)parse_request(line);
  } catch (const ProtocolError& e) {
    return e.code();
  }
  ADD_FAILURE() << "expected ProtocolError for: " << line;
  return ErrorCode::kInternal;
}

TEST(Protocol, ParsesMapRequestWithDefaults) {
  const ServeRequest request =
      parse_request(R"({"v":1,"id":"7","op":"map","net":"lenet5"})");
  EXPECT_EQ(request.id, "7");
  EXPECT_EQ(request.op, ServeOp::kMap);
  EXPECT_EQ(request.map.net, "lenet5");
  EXPECT_EQ(request.map.mapper, "vw-sdk");
  EXPECT_EQ(request.map.array, "");
  EXPECT_EQ(request.map.objective, "cycles");
}

TEST(Protocol, ParsesEveryOpAndFieldSpelling) {
  const ServeRequest compare = parse_request(
      R"({"v":1,"id":"c","op":"compare","net":"vgg13",)"
      R"("mappers":["im2col","vw-sdk"],"array":"256x256",)"
      R"("objective":"energy"})");
  EXPECT_EQ(compare.op, ServeOp::kCompare);
  EXPECT_EQ(compare.compare.mappers,
            (std::vector<std::string>{"im2col", "vw-sdk"}));
  EXPECT_EQ(compare.compare.array, "256x256");
  EXPECT_EQ(compare.compare.objective, "energy");

  const ServeRequest chip = parse_request(
      R"({"v":1,"id":"h","op":"chip","net":"lenet5","arrays":8,)"
      R"("chips":2,"batch":100})");
  EXPECT_EQ(chip.op, ServeOp::kChip);
  EXPECT_EQ(chip.chip.arrays_per_chip, 8);
  EXPECT_EQ(chip.chip.max_chips, 2);
  EXPECT_EQ(chip.chip.batch, 100);

  const ServeRequest verify = parse_request(
      R"({"v":1,"id":"x","op":"verify","net":"lenet5",)"
      R"("backend":"gemm","seed":7})");
  EXPECT_EQ(verify.op, ServeOp::kVerify);
  EXPECT_EQ(verify.verify.ref_backend, "gemm");
  EXPECT_EQ(verify.verify.seed, 7u);

  EXPECT_EQ(parse_request(R"({"v":1,"id":"m","op":"mappers"})").op,
            ServeOp::kMappers);
  EXPECT_EQ(parse_request(R"({"v":1,"id":"s","op":"stats"})").op,
            ServeOp::kStats);
  EXPECT_EQ(parse_request(R"({"v":1,"id":"d","op":"shutdown"})").op,
            ServeOp::kShutdown);

  const ServeRequest ping =
      parse_request(R"({"v":1,"id":"p","op":"ping","delay_ms":25})");
  EXPECT_EQ(ping.op, ServeOp::kPing);
  EXPECT_EQ(ping.delay_ms, 25);
}

TEST(Protocol, ParsesTrafficRequestDefaultsAndFullSpelling) {
  const ServeRequest minimal = parse_request(
      R"({"v":1,"id":"t","op":"traffic","net":"vgg13","arrays":64})");
  EXPECT_EQ(minimal.op, ServeOp::kTraffic);
  EXPECT_EQ(minimal.traffic.net, "vgg13");
  EXPECT_EQ(minimal.traffic.mapper, "vw-sdk");
  EXPECT_EQ(minimal.traffic.arrays_per_chip, 64);
  EXPECT_EQ(minimal.traffic.replicas, 1);
  EXPECT_DOUBLE_EQ(minimal.traffic.rate, 0.0);
  EXPECT_EQ(minimal.traffic.duration, 10'000'000);
  EXPECT_EQ(minimal.traffic.seed, 42u);
  EXPECT_EQ(minimal.traffic.batch_window, 0);
  EXPECT_EQ(minimal.traffic.max_batch, 1);
  EXPECT_EQ(minimal.traffic.max_queue, 0);
  EXPECT_EQ(minimal.traffic.trace, "");
  EXPECT_EQ(minimal.traffic.slo_p99, 0);

  const ServeRequest full = parse_request(
      R"({"v":1,"id":"t2","op":"traffic","net":"vgg13,resnet18",)"
      R"("mapper":"im2col","array":"256x256","objective":"energy",)"
      R"("arrays":32,"chips":4,"replicas":3,"rate":12.5,)"
      R"("duration":500000,"seed":9,"window":1000,"max_batch":8,)"
      R"("max_queue":16,"slo_p99":20000})");
  EXPECT_EQ(full.traffic.net, "vgg13,resnet18");
  EXPECT_EQ(full.traffic.mapper, "im2col");
  EXPECT_EQ(full.traffic.array, "256x256");
  EXPECT_EQ(full.traffic.objective, "energy");
  EXPECT_EQ(full.traffic.max_chips, 4);
  EXPECT_EQ(full.traffic.replicas, 3);
  EXPECT_DOUBLE_EQ(full.traffic.rate, 12.5);
  EXPECT_EQ(full.traffic.duration, 500'000);
  EXPECT_EQ(full.traffic.seed, 9u);
  EXPECT_EQ(full.traffic.batch_window, 1000);
  EXPECT_EQ(full.traffic.max_batch, 8);
  EXPECT_EQ(full.traffic.max_queue, 16);
  EXPECT_EQ(full.traffic.slo_p99, 20'000);

  const ServeRequest traced = parse_request(
      R"({"v":1,"id":"t3","op":"traffic","net":"lenet5","arrays":8,)"
      R"("trace":"/tmp/arrivals.csv"})");
  EXPECT_EQ(traced.traffic.trace, "/tmp/arrivals.csv");
}

TEST(Protocol, RejectsHostileTrafficFields) {
  // Unknown field.
  EXPECT_EQ(code_of(R"({"v":1,"id":"1","op":"traffic","net":"x",)"
                    R"("arrays":8,"lambda":5})"),
            ErrorCode::kBadRequest);
  // Missing net / missing arrays.
  EXPECT_EQ(code_of(R"({"v":1,"id":"1","op":"traffic","arrays":8})"),
            ErrorCode::kBadRequest);
  EXPECT_EQ(code_of(R"({"v":1,"id":"1","op":"traffic","net":"x"})"),
            ErrorCode::kBadRequest);
  // Mistyped rate (string where a number belongs) and negative rate.
  EXPECT_EQ(code_of(R"({"v":1,"id":"1","op":"traffic","net":"x",)"
                    R"("arrays":8,"rate":"fast"})"),
            ErrorCode::kBadRequest);
  EXPECT_EQ(code_of(R"({"v":1,"id":"1","op":"traffic","net":"x",)"
                    R"("arrays":8,"rate":-1})"),
            ErrorCode::kBadRequest);
  // Out-of-range knobs.
  EXPECT_EQ(code_of(R"({"v":1,"id":"1","op":"traffic","net":"x",)"
                    R"("arrays":8,"replicas":0})"),
            ErrorCode::kBadRequest);
  EXPECT_EQ(code_of(R"({"v":1,"id":"1","op":"traffic","net":"x",)"
                    R"("arrays":8,"duration":0})"),
            ErrorCode::kBadRequest);
  EXPECT_EQ(code_of(R"({"v":1,"id":"1","op":"traffic","net":"x",)"
                    R"("arrays":8,"max_batch":0})"),
            ErrorCode::kBadRequest);
  EXPECT_EQ(code_of(R"({"v":1,"id":"1","op":"traffic","net":"x",)"
                    R"("arrays":8,"slo_p99":-5})"),
            ErrorCode::kBadRequest);
  // Mistyped trace path.
  EXPECT_EQ(code_of(R"({"v":1,"id":"1","op":"traffic","net":"x",)"
                    R"("arrays":8,"trace":7})"),
            ErrorCode::kBadRequest);
}

TEST(Protocol, RejectsMalformedJson) {
  EXPECT_EQ(code_of("garbage"), ErrorCode::kBadRequest);
  EXPECT_EQ(code_of(R"({"v":1,"id":"1","op":"map")"),  // truncated
            ErrorCode::kBadRequest);
  EXPECT_EQ(code_of("[1,2,3]"), ErrorCode::kBadRequest);
  EXPECT_EQ(code_of("\"just a string\""), ErrorCode::kBadRequest);
  EXPECT_EQ(code_of(""), ErrorCode::kBadRequest);
}

TEST(Protocol, RejectsEnvelopeViolations) {
  // Version: missing or wrong.
  EXPECT_EQ(code_of(R"({"id":"1","op":"ping"})"), ErrorCode::kBadRequest);
  EXPECT_EQ(code_of(R"({"v":2,"id":"1","op":"ping"})"),
            ErrorCode::kBadRequest);
  EXPECT_EQ(code_of(R"({"v":"1","id":"1","op":"ping"})"),
            ErrorCode::kBadRequest);
  // Id: missing, non-string, empty, duplicate, oversized.
  EXPECT_EQ(code_of(R"({"v":1,"op":"ping"})"), ErrorCode::kBadRequest);
  EXPECT_EQ(code_of(R"({"v":1,"id":5,"op":"ping"})"),
            ErrorCode::kBadRequest);
  EXPECT_EQ(code_of(R"({"v":1,"id":"","op":"ping"})"),
            ErrorCode::kBadRequest);
  EXPECT_EQ(code_of(R"({"v":1,"id":"a","id":"b","op":"ping"})"),
            ErrorCode::kBadRequest);
  EXPECT_EQ(code_of(cat(R"({"v":1,"id":")",
                        std::string(kMaxIdBytes + 1, 'x'),
                        R"(","op":"ping"})")),
            ErrorCode::kBadRequest);
  // Op: missing or unregistered.
  EXPECT_EQ(code_of(R"({"v":1,"id":"1"})"), ErrorCode::kBadRequest);
  EXPECT_EQ(code_of(R"({"v":1,"id":"1","op":"frob"})"),
            ErrorCode::kUnknownOp);
}

TEST(Protocol, NonIntegerVersionIsBadRequestWithRecoveredId) {
  // Regression: "v":1.5 / "v":1e300 make as_int() throw InvalidArgument;
  // that must surface as the same bad_request as "v":2 -- with the
  // correlation id intact -- not escape the protocol layer.
  try {
    (void)parse_request(R"({"v":1.5,"id":"echo-me","op":"ping"})");
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBadRequest);
    EXPECT_EQ(e.id(), "echo-me");
  }
  EXPECT_EQ(code_of(R"({"v":1e300,"id":"1","op":"ping"})"),
            ErrorCode::kBadRequest);
  EXPECT_EQ(code_of(R"({"v":-1,"id":"1","op":"ping"})"),
            ErrorCode::kBadRequest);
}

TEST(Protocol, RejectsUnknownAndMistypedFields) {
  EXPECT_EQ(code_of(R"({"v":1,"id":"1","op":"map","net":"x","nett":"y"})"),
            ErrorCode::kBadRequest);
  EXPECT_EQ(code_of(R"({"v":1,"id":"1","op":"ping","net":"x"})"),
            ErrorCode::kBadRequest);
  EXPECT_EQ(code_of(R"({"v":1,"id":"1","op":"map","net":5})"),
            ErrorCode::kBadRequest);
  EXPECT_EQ(code_of(R"({"v":1,"id":"1","op":"map"})"),  // missing net
            ErrorCode::kBadRequest);
  EXPECT_EQ(code_of(R"({"v":1,"id":"1","op":"compare","net":"x",)"
                    R"("mappers":"im2col"})"),
            ErrorCode::kBadRequest);
  EXPECT_EQ(code_of(R"({"v":1,"id":"1","op":"compare","net":"x",)"
                    R"("mappers":[]})"),
            ErrorCode::kBadRequest);
  EXPECT_EQ(code_of(R"({"v":1,"id":"1","op":"chip","net":"x"})"),
            ErrorCode::kBadRequest);  // missing arrays
  EXPECT_EQ(code_of(R"({"v":1,"id":"1","op":"chip","net":"x",)"
                    R"("arrays":0})"),
            ErrorCode::kBadRequest);
  EXPECT_EQ(code_of(R"({"v":1,"id":"1","op":"ping","delay_ms":60001})"),
            ErrorCode::kBadRequest);
  EXPECT_EQ(code_of(R"({"v":1,"id":"1","op":"ping","delay_ms":-1})"),
            ErrorCode::kBadRequest);
}

TEST(Protocol, OversizedLineFailsAsTooLarge) {
  const std::string line =
      cat(R"({"v":1,"id":"1","op":"map","net":")",
          std::string(kMaxRequestBytes, 'x'), R"("})");
  EXPECT_EQ(code_of(line), ErrorCode::kTooLarge);
}

TEST(Protocol, RecoversIdForFieldLevelErrors) {
  try {
    (void)parse_request(R"({"v":1,"id":"echo-me","op":"map"})");
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.id(), "echo-me");
    EXPECT_EQ(e.code(), ErrorCode::kBadRequest);
  }
  // Unparseable input has no recoverable id.
  try {
    (void)parse_request("not json");
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.id(), "");
  }
}

TEST(Protocol, ResponsesRoundTripThroughTheJsonParser) {
  const std::string ok =
      ok_response("42", ServeOp::kMap, R"({"total_cycles":14})");
  const JsonValue ok_doc = JsonValue::parse(ok);
  EXPECT_EQ(ok_doc.at("v").as_int(), kProtocolVersion);
  EXPECT_EQ(ok_doc.at("id").as_string(), "42");
  EXPECT_EQ(ok_doc.at("op").as_string(), "map");
  EXPECT_TRUE(ok_doc.at("ok").as_bool());
  EXPECT_EQ(ok_doc.at("result").at("total_cycles").as_int(), 14);

  const std::string error = error_response(
      "weird \"id\"\n", ErrorCode::kOverloaded, "queue full \\ retry");
  const JsonValue error_doc = JsonValue::parse(error);
  EXPECT_EQ(error_doc.at("id").as_string(), "weird \"id\"\n");
  EXPECT_FALSE(error_doc.at("ok").as_bool());
  EXPECT_EQ(error_doc.at("error").at("code").as_string(), "overloaded");
  EXPECT_EQ(error_doc.at("error").at("message").as_string(),
            "queue full \\ retry");

  // An unrecoverable id serializes as null, still valid JSON.
  const JsonValue anon = JsonValue::parse(
      error_response("", ErrorCode::kBadRequest, "bad"));
  EXPECT_TRUE(anon.at("id").is_null());
}

TEST(Protocol, ResultPayloadIsEmbeddedVerbatim) {
  // Byte-identity with the one-shot CLI depends on the payload passing
  // through unmodified.
  const std::string payload = R"({"a":[1,2],"b":"x"})";
  const std::string response = ok_response("1", ServeOp::kStats, payload);
  EXPECT_NE(response.find(cat("\"result\":", payload, "}")),
            std::string::npos);
}

TEST(Protocol, StatsPayloadSerializesCounters) {
  ServiceStats stats;
  stats.cache_hits = 3;
  stats.cache_misses = 2;
  stats.cache_entries = 2;
  stats.threads = 4;
  EXPECT_EQ(to_json(stats),
            R"({"cache":{"hits":3,"misses":2,"entries":2},"threads":4})");
}

TEST(Protocol, OpNamesAreStable) {
  EXPECT_STREQ(op_name(ServeOp::kMap), "map");
  EXPECT_STREQ(op_name(ServeOp::kCompare), "compare");
  EXPECT_STREQ(op_name(ServeOp::kChip), "chip");
  EXPECT_STREQ(op_name(ServeOp::kTraffic), "traffic");
  EXPECT_STREQ(op_name(ServeOp::kVerify), "verify");
  EXPECT_STREQ(op_name(ServeOp::kMappers), "mappers");
  EXPECT_STREQ(op_name(ServeOp::kStats), "stats");
  EXPECT_STREQ(op_name(ServeOp::kPing), "ping");
  EXPECT_STREQ(op_name(ServeOp::kShutdown), "shutdown");
}

}  // namespace
}  // namespace vwsdk
