#include "serve/admission.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>

#include <gtest/gtest.h>

#include "common/error.h"

namespace vwsdk {
namespace {

/// A latch the tests use to hold workers busy deterministically --
/// no sleeps, so the bounds are exact regardless of scheduling.
class Gate {
 public:
  void open() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      open_ = true;
    }
    opened_.notify_all();
  }

  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    opened_.wait(lock, [this] { return open_; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable opened_;
  bool open_ = false;
};

TEST(Admission, RunsEverythingWithinBounds) {
  AdmissionQueue queue(2, 2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(queue.try_submit([&ran] { ++ran; }));
  }
  queue.drain();
  EXPECT_EQ(ran.load(), 4);
  EXPECT_EQ(queue.stats().accepted, 4);
  EXPECT_EQ(queue.stats().rejected, 0);
}

TEST(Admission, RejectsBeyondInflightPlusQueue) {
  AdmissionQueue queue(1, 1);
  Gate gate;
  Gate busy;
  std::atomic<int> ran{0};
  // Occupy the single worker...
  ASSERT_TRUE(queue.try_submit([&] {
    busy.open();
    gate.wait();
    ++ran;
  }));
  busy.wait();  // the worker is now inside the task, not queued
  // ...fill the single queue slot...
  ASSERT_TRUE(queue.try_submit([&ran] { ++ran; }));
  // ...and the third request must be refused, not blocked.
  EXPECT_FALSE(queue.try_submit([&ran] { ++ran; }));
  EXPECT_EQ(queue.stats().rejected, 1);
  EXPECT_EQ(queue.stats().busy, 1);
  EXPECT_EQ(queue.stats().queued, 1);

  gate.open();
  queue.drain();
  // The refused task never ran; the accepted ones all did.
  EXPECT_EQ(ran.load(), 2);
  EXPECT_EQ(queue.stats().accepted, 2);
}

TEST(Admission, DrainFinishesAcceptedWorkThenRefusesSubmits) {
  AdmissionQueue queue(2, 8);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(queue.try_submit([&ran] { ++ran; }));
  }
  queue.drain();
  EXPECT_EQ(ran.load(), 8);
  EXPECT_FALSE(queue.try_submit([&ran] { ++ran; }));
  EXPECT_EQ(ran.load(), 8);
  queue.drain();  // idempotent
}

TEST(Admission, RejectsInvalidBounds) {
  EXPECT_THROW(AdmissionQueue(0, 1), InvalidArgument);
  EXPECT_THROW(AdmissionQueue(1, -1), InvalidArgument);
}

TEST(Admission, StatsSettleAfterDrain) {
  AdmissionQueue queue(4, 4);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(queue.try_submit([] {}));
  }
  queue.drain();
  const AdmissionStats stats = queue.stats();
  EXPECT_EQ(stats.busy, 0);
  EXPECT_EQ(stats.queued, 0);
  EXPECT_EQ(stats.accepted, 6);
}

}  // namespace
}  // namespace vwsdk
