#include "serve/admission.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"

namespace vwsdk {
namespace {

/// A latch the tests use to hold workers busy deterministically --
/// no sleeps, so the bounds are exact regardless of scheduling.
class Gate {
 public:
  void open() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      open_ = true;
    }
    opened_.notify_all();
  }

  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    opened_.wait(lock, [this] { return open_; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable opened_;
  bool open_ = false;
};

TEST(Admission, RunsEverythingWithinBounds) {
  AdmissionQueue queue(2, 2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(queue.try_submit([&ran] { ++ran; }));
  }
  queue.drain();
  EXPECT_EQ(ran.load(), 4);
  EXPECT_EQ(queue.stats().accepted, 4);
  EXPECT_EQ(queue.stats().rejected, 0);
}

TEST(Admission, RejectsBeyondInflightPlusQueue) {
  AdmissionQueue queue(1, 1);
  Gate gate;
  Gate busy;
  std::atomic<int> ran{0};
  // Occupy the single worker...
  ASSERT_TRUE(queue.try_submit([&] {
    busy.open();
    gate.wait();
    ++ran;
  }));
  busy.wait();  // the worker is now inside the task, not queued
  // ...fill the single queue slot...
  ASSERT_TRUE(queue.try_submit([&ran] { ++ran; }));
  // ...and the third request must be refused, not blocked.
  EXPECT_FALSE(queue.try_submit([&ran] { ++ran; }));
  EXPECT_EQ(queue.stats().rejected, 1);
  EXPECT_EQ(queue.stats().busy, 1);
  EXPECT_EQ(queue.stats().queued, 1);

  gate.open();
  queue.drain();
  // The refused task never ran; the accepted ones all did.
  EXPECT_EQ(ran.load(), 2);
  EXPECT_EQ(queue.stats().accepted, 2);
}

TEST(Admission, DrainFinishesAcceptedWorkThenRefusesSubmits) {
  AdmissionQueue queue(2, 8);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(queue.try_submit([&ran] { ++ran; }));
  }
  queue.drain();
  EXPECT_EQ(ran.load(), 8);
  EXPECT_FALSE(queue.try_submit([&ran] { ++ran; }));
  EXPECT_EQ(ran.load(), 8);
  queue.drain();  // idempotent
}

TEST(Admission, RejectsInvalidBounds) {
  EXPECT_THROW(AdmissionQueue(0, 1), InvalidArgument);
  EXPECT_THROW(AdmissionQueue(1, -1), InvalidArgument);
}

TEST(Admission, StatsSettleAfterDrain) {
  AdmissionQueue queue(4, 4);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(queue.try_submit([] {}));
  }
  queue.drain();
  const AdmissionStats stats = queue.stats();
  EXPECT_EQ(stats.busy, 0);
  EXPECT_EQ(stats.queued, 0);
  EXPECT_EQ(stats.accepted, 6);
}

// ---------------------------------------------------------------------
// Contention cases (ctest label `stress`).
// ---------------------------------------------------------------------

/// A reject storm: both workers pinned, eight threads hammering
/// try_submit far past the bounds.  Accounting must stay exact under
/// the race -- accepted + rejected equals offered, every accepted task
/// runs exactly once, nothing rejected ever runs.
TEST(AdmissionStress, RejectStormAccountingStaysExact) {
  constexpr int kSubmitters = 8;
  constexpr int kPerSubmitter = 200;
  AdmissionQueue queue(2, 2);
  Gate gate;
  Gate busy_a;
  Gate busy_b;
  std::atomic<int> ran{0};
  ASSERT_TRUE(queue.try_submit([&] {
    busy_a.open();
    gate.wait();
    ++ran;
  }));
  ASSERT_TRUE(queue.try_submit([&] {
    busy_b.open();
    gate.wait();
    ++ran;
  }));
  busy_a.wait();
  busy_b.wait();  // both workers are now inside tasks; only the queue
                  // slots (2) remain for the storm

  std::atomic<int> accepted{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&] {
      for (int i = 0; i < kPerSubmitter; ++i) {
        if (queue.try_submit([&ran] { ++ran; })) {
          ++accepted;
        }
      }
    });
  }
  for (std::thread& submitter : submitters) {
    submitter.join();
  }
  // Workers were pinned throughout, so the storm could land at most the
  // two queue slots.
  EXPECT_LE(accepted.load(), 2);

  gate.open();
  queue.drain();
  const AdmissionStats stats = queue.stats();
  EXPECT_EQ(ran.load(), 2 + accepted.load());
  EXPECT_EQ(stats.accepted, 2 + accepted.load());
  EXPECT_EQ(stats.rejected,
            kSubmitters * kPerSubmitter - accepted.load());
  EXPECT_EQ(stats.busy, 0);
  EXPECT_EQ(stats.queued, 0);
}

/// drain() racing live submitters: whatever try_submit accepted before
/// the drain began must run to completion; everything after is refused;
/// the counters agree with the submitters' own tally.
TEST(AdmissionStress, DrainRacingSubmittersLosesNoAcceptedWork) {
  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 500;
  AdmissionQueue queue(4, 8);
  std::atomic<int> ran{0};
  std::atomic<int> accepted{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&] {
      for (int i = 0; i < kPerSubmitter; ++i) {
        if (queue.try_submit([&ran] { ++ran; })) {
          ++accepted;
        }
      }
    });
  }
  // Drain mid-storm: no synchronization on purpose -- the race with
  // in-flight try_submit calls is the test.
  queue.drain();
  const Count accepted_at_drain = queue.stats().accepted;
  for (std::thread& submitter : submitters) {
    submitter.join();
  }

  const AdmissionStats stats = queue.stats();
  EXPECT_EQ(ran.load(), accepted.load());
  EXPECT_EQ(stats.accepted, accepted.load());
  // drain() set draining_ under the mutex, so nothing was accepted
  // after it began.
  EXPECT_EQ(stats.accepted, accepted_at_drain);
  EXPECT_EQ(stats.accepted + stats.rejected,
            kSubmitters * kPerSubmitter);
  EXPECT_EQ(stats.busy, 0);
  EXPECT_EQ(stats.queued, 0);
  EXPECT_FALSE(queue.try_submit([&ran] { ++ran; }));
}

}  // namespace
}  // namespace vwsdk
