/// Contention tests for the `vwsdk serve` daemon's multi-client socket
/// path: many clients hammering one daemon (admission rejections
/// interleaved with worker responses on the same sinks), and the
/// self-pipe signal path waking a poll() that would otherwise block
/// forever.  Suite names contain "Stress" so ctest runs these under the
/// `stress` label (tests/CMakeLists.txt).

#include "serve/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/string_util.h"

namespace vwsdk {
namespace {

/// A blocking NDJSON client on the daemon's Unix socket.  Connection
/// retries until the daemon has bound the path; reads carry a timeout
/// so a daemon bug fails the test instead of hanging it.
class SocketClient {
 public:
  explicit SocketClient(const std::string& path) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < deadline) {
      fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd_ < 0) {
        break;
      }
      struct sockaddr_un addr;
      std::memset(&addr, 0, sizeof(addr));
      addr.sun_family = AF_UNIX;
      std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
      if (::connect(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        struct timeval timeout{30, 0};
        ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                     sizeof(timeout));
        return;
      }
      ::close(fd_);
      fd_ = -1;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  ~SocketClient() {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }

  SocketClient(const SocketClient&) = delete;
  SocketClient& operator=(const SocketClient&) = delete;

  bool connected() const { return fd_ >= 0; }

  void send_line(const std::string& line) {
    std::string out = line;
    out += '\n';
    const char* data = out.data();
    std::size_t left = out.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, data, left);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        return;
      }
      data += n;
      left -= static_cast<std::size_t>(n);
    }
  }

  /// Read complete lines until `count` have arrived (or the receive
  /// timeout / EOF cuts the stream short).
  std::vector<std::string> read_lines(std::size_t count) {
    std::vector<std::string> lines;
    std::string buffer;
    char chunk[4096];
    while (lines.size() < count) {
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n <= 0) {
        if (n < 0 && errno == EINTR) {
          continue;
        }
        break;  // timeout or EOF: return what we have, the test asserts
      }
      for (ssize_t i = 0; i < n; ++i) {
        if (chunk[i] == '\n') {
          lines.push_back(buffer);
          buffer.clear();
        } else {
          buffer += chunk[i];
        }
      }
    }
    return lines;
  }

 private:
  int fd_ = -1;
};

std::string unique_socket_path(const char* tag) {
  return cat("/tmp/vwsdk_stress_", tag, "_", ::getpid(), ".sock");
}

/// Eight clients firing 50 pings each against a daemon bounded well
/// below the offered load: every request must be answered exactly once
/// (pong or `overloaded`), with responses line-atomic despite the
/// admission rejections (reader thread) and completions (worker
/// threads) sharing each client's sink.
TEST(ServeDaemonStress, MultiClientStormAnswersEveryRequestExactlyOnce) {
  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 50;
  const std::string path = unique_socket_path("storm");

  ServeOptions options;
  options.socket_path = path;
  options.max_inflight = 2;
  options.max_queue = 4;
  options.threads = 2;
  std::promise<int> exit_code;
  std::thread daemon(
      [&options, &exit_code] { exit_code.set_value(run_server(options)); });

  std::vector<std::thread> clients;
  std::vector<int> pongs(kClients, 0);
  std::vector<int> overloaded(kClients, 0);
  std::vector<int> answered(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([c, &path, &pongs, &overloaded, &answered] {
      SocketClient client(path);
      ASSERT_TRUE(client.connected());
      for (int i = 0; i < kRequestsPerClient; ++i) {
        client.send_line(cat(R"({"v":1,"id":"c)", c, "-", i,
                             R"(","op":"ping"})"));
      }
      const std::vector<std::string> lines =
          client.read_lines(kRequestsPerClient);
      answered[static_cast<std::size_t>(c)] =
          static_cast<int>(lines.size());
      for (const std::string& line : lines) {
        // Line-atomicity check: every response is one complete JSON
        // object, never two interleaved halves.
        EXPECT_EQ(line.front(), '{') << line;
        EXPECT_EQ(line.back(), '}') << line;
        if (line.find("\"pong\"") != std::string::npos) {
          ++pongs[static_cast<std::size_t>(c)];
        } else if (line.find("overloaded") != std::string::npos) {
          ++overloaded[static_cast<std::size_t>(c)];
        }
      }
    });
  }
  for (std::thread& client : clients) {
    client.join();
  }

  int total_pongs = 0;
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(answered[static_cast<std::size_t>(c)], kRequestsPerClient)
        << "client " << c << " lost responses";
    EXPECT_EQ(pongs[static_cast<std::size_t>(c)] +
                  overloaded[static_cast<std::size_t>(c)],
              kRequestsPerClient)
        << "client " << c << " got a response that is neither pong nor "
        << "overloaded";
    total_pongs += pongs[static_cast<std::size_t>(c)];
  }
  EXPECT_GT(total_pongs, 0);  // the daemon did real work, not all refusals

  // A clean shutdown request drains the daemon and run_server returns 0.
  {
    SocketClient closer(path);
    ASSERT_TRUE(closer.connected());
    closer.send_line(R"({"v":1,"id":"bye","op":"shutdown"})");
    const std::vector<std::string> lines = closer.read_lines(1);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("\"stopping\":true"), std::string::npos);
  }
  auto done = exit_code.get_future();
  ASSERT_EQ(done.wait_for(std::chrono::seconds(30)),
            std::future_status::ready)
      << "daemon did not exit after a shutdown request";
  EXPECT_EQ(done.get(), 0);
  daemon.join();
}

/// SIGTERM while the daemon sits in an *infinite* poll: the self-pipe
/// must convert the signal into a poll event, with work accepted before
/// the signal still drained to completion.  Before the self-pipe this
/// only worked because poll timed out every 100 ms.
TEST(ServeDaemonStress, SignalWakesBlockedPollAndDrainsInflightWork) {
  const std::string path = unique_socket_path("signal");

  ServeOptions options;
  options.socket_path = path;
  options.max_inflight = 2;
  options.max_queue = 8;
  options.threads = 1;
  std::promise<int> exit_code;
  std::thread daemon(
      [&options, &exit_code] { exit_code.set_value(run_server(options)); });

  SocketClient client(path);
  ASSERT_TRUE(client.connected());

  // A slow in-flight request (100 ms ping) that the drain must finish.
  client.send_line(R"({"v":1,"id":"slow","op":"ping","delay_ms":100})");
  // A fast one to prove the daemon is fully up (handlers installed
  // before the listener starts accepting) before we raise the signal.
  client.send_line(R"({"v":1,"id":"fast","op":"ping"})");
  ASSERT_EQ(client.read_lines(1).size(), 1u);

  const auto raised_at = std::chrono::steady_clock::now();
  ASSERT_EQ(::raise(SIGTERM), 0);

  auto done = exit_code.get_future();
  ASSERT_EQ(done.wait_for(std::chrono::seconds(30)),
            std::future_status::ready)
      << "SIGTERM did not wake the daemon's poll loop";
  EXPECT_EQ(done.get(), 0);
  const auto elapsed = std::chrono::steady_clock::now() - raised_at;
  // Generous bound: drain owes at most the 100 ms sleep plus scheduling
  // noise; anything near seconds would mean the wakeup path regressed
  // to timeout-polling.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            10'000);
  daemon.join();

  // The remaining response (slow ping) either arrived before the
  // daemon closed the connection or the descriptor is now at EOF --
  // but the daemon never dies mid-write.
  (void)client.read_lines(1);
}

}  // namespace
}  // namespace vwsdk
