#include "pim/adc.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vwsdk {
namespace {

TEST(Converter, IdealIsPassthrough) {
  const ConverterModel ideal;
  EXPECT_EQ(ideal.mode(), ConverterMode::kIdeal);
  EXPECT_EQ(ideal.convert(3.14159), 3.14159);
  EXPECT_EQ(ideal.convert(-1e9), -1e9);
  EXPECT_EQ(ideal.step(), 0.0);
}

TEST(Converter, LinearQuantizesToStepGrid) {
  // 2 bits over [0, 4): 4 codes, step 1.
  const ConverterModel adc(2, 0.0, 4.0);
  EXPECT_EQ(adc.step(), 1.0);
  EXPECT_EQ(adc.convert(0.0), 0.0);
  EXPECT_EQ(adc.convert(0.99), 0.0);
  EXPECT_EQ(adc.convert(1.0), 1.0);
  EXPECT_EQ(adc.convert(2.5), 2.0);
  EXPECT_EQ(adc.convert(3.999), 3.0);
}

TEST(Converter, SaturatesOutsideRange) {
  const ConverterModel adc(2, 0.0, 4.0);
  EXPECT_EQ(adc.convert(-10.0), 0.0);
  EXPECT_EQ(adc.convert(100.0), 3.0);  // top code = max - step
}

TEST(Converter, SignedRange) {
  const ConverterModel adc(3, -4.0, 4.0);  // 8 codes, step 1
  EXPECT_EQ(adc.convert(-3.5), -4.0);
  EXPECT_EQ(adc.convert(0.2), 0.0);
  EXPECT_EQ(adc.convert(3.7), 3.0);
}

TEST(Converter, HigherResolutionReducesError) {
  const ConverterModel coarse(4, 0.0, 1.0);
  const ConverterModel fine(12, 0.0, 1.0);
  double worst_coarse = 0.0;
  double worst_fine = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double v = static_cast<double>(i) / 1000.0;
    worst_coarse = std::max(worst_coarse, v - coarse.convert(v));
    worst_fine = std::max(worst_fine, v - fine.convert(v));
  }
  EXPECT_LE(worst_coarse, coarse.step());
  EXPECT_LE(worst_fine, fine.step());
  EXPECT_LT(worst_fine, worst_coarse);
}

TEST(Converter, QuantizationIsIdempotent) {
  const ConverterModel adc(5, -2.0, 2.0);
  for (const double v : {-3.0, -1.234, 0.0, 0.77, 1.999, 5.0}) {
    const double once = adc.convert(v);
    EXPECT_EQ(adc.convert(once), once);
  }
}

TEST(Converter, Validation) {
  EXPECT_THROW(ConverterModel(0, 0.0, 1.0), InvalidArgument);
  EXPECT_THROW(ConverterModel(31, 0.0, 1.0), InvalidArgument);
  EXPECT_THROW(ConverterModel(8, 1.0, 1.0), InvalidArgument);
  EXPECT_THROW(ConverterModel(8, 2.0, 1.0), InvalidArgument);
}

}  // namespace
}  // namespace vwsdk
