#include "pim/noise.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace vwsdk {
namespace {

TEST(Noise, DisabledConfigIsIdentity) {
  NoiseModel model({0.0, 0.0}, 1);
  EXPECT_FALSE(model.config().enabled());
  for (const double v : {-2.0, 0.0, 1.5}) {
    EXPECT_EQ(model.apply(v), v);
  }
}

TEST(Noise, AdditiveNoisePerturbsAroundValue) {
  NoiseModel model({0.01, 0.0}, 7);
  const int n = 20'000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += model.apply(5.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.001);
}

TEST(Noise, MultiplicativeNoiseScalesWithMagnitude) {
  NoiseModel small({0.0, 0.05}, 11);
  NoiseModel large({0.0, 0.05}, 11);
  const int n = 20'000;
  double dev_small = 0.0;
  double dev_large = 0.0;
  for (int i = 0; i < n; ++i) {
    dev_small += std::abs(small.apply(1.0) - 1.0);
    dev_large += std::abs(large.apply(100.0) - 100.0);
  }
  // Same relative sigma: absolute deviation ~100x larger for the larger
  // magnitude.
  EXPECT_NEAR(dev_large / dev_small, 100.0, 5.0);
}

TEST(Noise, DeterministicPerSeedAndDivergentAcrossSeeds) {
  NoiseModel a({0.1, 0.1}, 3);
  NoiseModel b({0.1, 0.1}, 3);
  NoiseModel c({0.1, 0.1}, 4);
  bool any_diff_c = false;
  for (int i = 0; i < 32; ++i) {
    const double va = a.apply(1.0);
    EXPECT_EQ(va, b.apply(1.0));
    any_diff_c = any_diff_c || (va != c.apply(1.0));
  }
  EXPECT_TRUE(any_diff_c);
}

TEST(Noise, ZeroValueGetsOnlyAdditiveComponent) {
  NoiseModel model({0.0, 0.5}, 9);
  // Pure multiplicative noise leaves 0 untouched.
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(model.apply(0.0), 0.0);
  }
}

TEST(Noise, NegativeSigmaRejected) {
  EXPECT_THROW(NoiseModel({-0.1, 0.0}, 1), InvalidArgument);
  EXPECT_THROW(NoiseModel({0.0, -0.1}, 1), InvalidArgument);
}

}  // namespace
}  // namespace vwsdk
