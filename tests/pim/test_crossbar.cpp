#include "pim/crossbar.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vwsdk {
namespace {

TEST(Crossbar, StartsErased) {
  const Crossbar array({4, 4});
  EXPECT_EQ(array.programmed_cell_count(), 0);
  EXPECT_EQ(array.cell(2, 3), 0.0);
  EXPECT_FALSE(array.is_programmed(2, 3));
  EXPECT_EQ(array.utilization(), 0.0);
}

TEST(Crossbar, ProgramAndRead) {
  Crossbar array({4, 4});
  array.program(1, 2, -0.5);
  EXPECT_EQ(array.cell(1, 2), -0.5);
  EXPECT_TRUE(array.is_programmed(1, 2));
  EXPECT_EQ(array.programmed_cell_count(), 1);
  EXPECT_DOUBLE_EQ(array.utilization(), 1.0 / 16.0);
}

TEST(Crossbar, DoubleProgramIsACollision) {
  Crossbar array({4, 4});
  array.program(0, 0, 1.0);
  EXPECT_THROW(array.program(0, 0, 2.0), InvalidArgument);
}

TEST(Crossbar, EraseResetsEverything) {
  Crossbar array({4, 4});
  array.program(0, 0, 1.0);
  array.erase();
  EXPECT_EQ(array.programmed_cell_count(), 0);
  EXPECT_EQ(array.cell(0, 0), 0.0);
  EXPECT_NO_THROW(array.program(0, 0, 2.0));
}

TEST(Crossbar, OutOfRangeAccessRejected) {
  Crossbar array({4, 8});
  EXPECT_THROW(array.program(4, 0, 1.0), InvalidArgument);
  EXPECT_THROW(array.program(0, 8, 1.0), InvalidArgument);
  EXPECT_THROW(array.cell(-1, 0), InvalidArgument);
}

TEST(Crossbar, ComputeIsMatrixVectorProduct) {
  // 2x3 array: cells[r][c] = weight; input = (2, 3).
  Crossbar array({2, 3});
  array.program(0, 0, 1.0);
  array.program(0, 1, 2.0);
  array.program(1, 1, -1.0);
  array.program(1, 2, 4.0);
  const std::vector<double> out = array.compute({2.0, 3.0});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], 2.0);        // 2*1
  EXPECT_EQ(out[1], 1.0);        // 2*2 + 3*(-1)
  EXPECT_EQ(out[2], 12.0);       // 3*4
}

TEST(Crossbar, ComputeRejectsWrongInputLength) {
  const Crossbar array({2, 3});
  EXPECT_THROW(array.compute({1.0}), InvalidArgument);
  EXPECT_THROW(array.compute({1.0, 2.0, 3.0}), InvalidArgument);
}

TEST(Crossbar, IdleRowsContributeNothing) {
  Crossbar array({3, 1});
  array.program(0, 0, 5.0);
  array.program(2, 0, 7.0);
  const std::vector<double> out = array.compute({0.0, 123.0, 1.0});
  EXPECT_EQ(out[0], 7.0);  // row 1 has no cell; row 0 driven with 0
}

TEST(Crossbar, UsedRowAndColCounts) {
  Crossbar array({4, 4});
  array.program(0, 1, 1.0);
  array.program(0, 2, 1.0);
  array.program(3, 1, 1.0);
  EXPECT_EQ(array.used_row_count(), 2);
  EXPECT_EQ(array.used_col_count(), 2);
}

TEST(Crossbar, QuantizingAdcAppliedPerColumn) {
  Crossbar array({1, 2});
  array.program(0, 0, 1.0);
  array.program(0, 1, 1.0);
  // 3-bit ADC over [0, 8): step 1; value 2.7 -> 2.0.
  const ConverterModel adc(3, 0.0, 8.0);
  const std::vector<double> out = array.compute({2.7}, adc);
  EXPECT_EQ(out[0], 2.0);
  EXPECT_EQ(out[1], 2.0);
}

TEST(Crossbar, NoiseAppliedAtProgrammingIsDeterministic) {
  NoiseModel noise_a({0.1, 0.0}, 42);
  NoiseModel noise_b({0.1, 0.0}, 42);
  Crossbar a({1, 1});
  Crossbar b({1, 1});
  a.program(0, 0, 1.0, &noise_a);
  b.program(0, 0, 1.0, &noise_b);
  EXPECT_EQ(a.cell(0, 0), b.cell(0, 0));
  EXPECT_NE(a.cell(0, 0), 1.0);  // sigma 0.1 perturbs with prob ~1
}

}  // namespace
}  // namespace vwsdk
