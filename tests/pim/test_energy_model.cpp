#include "pim/energy_model.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vwsdk {
namespace {

EnergyParams unit_params() {
  EnergyParams params;
  params.dac_pj_per_row = 1.0;
  params.adc_pj_per_col = 10.0;
  params.cell_pj_per_mac = 0.1;
  params.cycle_ns = 2.0;
  return params;
}

TEST(EnergyModel, EnergyIsLinearInActivity) {
  EnergyReport report;
  report.cycles = 4;
  report.row_activations = 100;
  report.col_reads = 20;
  report.cell_macs = 1000;
  const EnergyParams params = unit_params();
  EXPECT_DOUBLE_EQ(report.energy_pj(params), 100.0 + 200.0 + 100.0);
  EXPECT_DOUBLE_EQ(report.latency_ns(params), 8.0);
}

TEST(EnergyModel, ConversionFraction) {
  EnergyReport report;
  report.row_activations = 100;  // 100 pJ
  report.col_reads = 20;         // 200 pJ
  report.cell_macs = 1000;       // 100 pJ
  EXPECT_DOUBLE_EQ(report.conversion_fraction(unit_params()), 300.0 / 400.0);
}

TEST(EnergyModel, ConversionFractionOfEmptyReportIsZero) {
  const EnergyReport report;
  EXPECT_EQ(report.conversion_fraction(unit_params()), 0.0);
}

TEST(EnergyModel, DefaultsMakeConversionsDominate) {
  // The paper cites conversions costing >98% of PIM energy ([3]); our
  // default constants must reproduce that regime for a typical cycle
  // (512 rows, 512 cols, 512x512 cells all active).
  EnergyReport report;
  report.cycles = 1;
  report.row_activations = 512;
  report.col_reads = 512;
  report.cell_macs = 512 * 512;
  const EnergyParams defaults;
  EXPECT_GT(report.conversion_fraction(defaults), 0.80);
}

TEST(EnergyModel, AccumulateSums) {
  EnergyReport a;
  a.cycles = 1;
  a.row_activations = 2;
  a.col_reads = 3;
  a.cell_macs = 4;
  EnergyReport b = a;
  b.accumulate(a);
  EXPECT_EQ(b.cycles, 2);
  EXPECT_EQ(b.row_activations, 4);
  EXPECT_EQ(b.col_reads, 6);
  EXPECT_EQ(b.cell_macs, 8);
}

TEST(EnergyModel, ValidationRejectsNegatives) {
  EnergyParams params;
  params.adc_pj_per_col = -1.0;
  EXPECT_THROW(params.validate(), InvalidArgument);
  EnergyReport report;
  EXPECT_THROW(report.energy_pj(params), InvalidArgument);
}

TEST(EnergyModel, ValidationRejectsEachNegativeFieldIndependently) {
  const auto rejects = [](auto set_field) {
    EnergyParams params;
    set_field(params);
    EXPECT_THROW(params.validate(), InvalidArgument);
  };
  rejects([](EnergyParams& p) { p.dac_pj_per_row = -0.1; });
  rejects([](EnergyParams& p) { p.adc_pj_per_col = -0.1; });
  rejects([](EnergyParams& p) { p.cell_pj_per_mac = -0.1; });
  rejects([](EnergyParams& p) { p.cycle_ns = -0.1; });
  // Zero is allowed everywhere (a free component, not an invalid one).
  EnergyParams zeros;
  zeros.dac_pj_per_row = 0.0;
  zeros.adc_pj_per_col = 0.0;
  zeros.cell_pj_per_mac = 0.0;
  zeros.cycle_ns = 0.0;
  EXPECT_NO_THROW(zeros.validate());
}

TEST(EnergyModel, DefaultConstantsAreProportionallyHonest) {
  // The model's documented contract: ADC >> DAC >> cell, so energy
  // tracks conversions, which tracks cycles (§II-B).
  const EnergyParams defaults;
  EXPECT_GT(defaults.adc_pj_per_col, defaults.dac_pj_per_row);
  EXPECT_GT(defaults.dac_pj_per_row, defaults.cell_pj_per_mac);
  // Per-event: one column read costs more than one row drive costs more
  // than one cell MAC, by an order of magnitude each.
  EXPECT_GE(defaults.adc_pj_per_col / defaults.dac_pj_per_row, 2.0);
  EXPECT_GE(defaults.dac_pj_per_row / defaults.cell_pj_per_mac, 100.0);
}

TEST(EnergyModel, EnergyIsProportionalInEachActivityComponent) {
  const EnergyParams params = unit_params();
  EnergyReport report;
  report.row_activations = 7;
  EXPECT_DOUBLE_EQ(report.energy_pj(params), 7.0 * params.dac_pj_per_row);
  report.row_activations = 0;
  report.col_reads = 7;
  EXPECT_DOUBLE_EQ(report.energy_pj(params), 7.0 * params.adc_pj_per_col);
  report.col_reads = 0;
  report.cell_macs = 7;
  EXPECT_DOUBLE_EQ(report.energy_pj(params), 7.0 * params.cell_pj_per_mac);
}

TEST(EnergyModel, FullArrayVsActiveOnlyAccounting) {
  // Full-array accounting fires every converter every cycle; it depends
  // only on (cycles, geometry, cell_macs), never on the per-cycle
  // active counts -- and it upper-bounds the active-only accounting
  // whenever the active counts fit the geometry.
  const EnergyParams params = unit_params();
  EnergyReport report;
  report.cycles = 10;
  report.row_activations = 100;  // 10 rows/cycle of the 64 available
  report.col_reads = 50;         // 5 cols/cycle of the 32 available
  report.cell_macs = 200;

  const double full = report.full_array_energy_pj(params, 64, 32);
  EXPECT_DOUBLE_EQ(full, 10.0 * (64.0 * params.dac_pj_per_row +
                                 32.0 * params.adc_pj_per_col) +
                             200.0 * params.cell_pj_per_mac);
  EXPECT_GT(full, report.energy_pj(params));

  // Changing the active counts moves energy_pj but not the full-array
  // figure (the converters fire regardless).
  EnergyReport busier = report;
  busier.row_activations *= 2;
  busier.col_reads *= 2;
  EXPECT_DOUBLE_EQ(busier.full_array_energy_pj(params, 64, 32), full);
  EXPECT_GT(busier.energy_pj(params), report.energy_pj(params));

  EXPECT_THROW(report.full_array_energy_pj(params, 0, 32), InvalidArgument);
  EXPECT_THROW(report.full_array_energy_pj(params, 64, 0), InvalidArgument);
}

TEST(EnergyModel, AccumulateMergesIntoRunningTotals) {
  EnergyReport total;
  EnergyReport a;
  a.cycles = 3;
  a.row_activations = 10;
  a.col_reads = 20;
  a.cell_macs = 30;
  EnergyReport b;
  b.cycles = 4;
  b.row_activations = 1;
  b.col_reads = 2;
  b.cell_macs = 3;
  total.accumulate(a);
  total.accumulate(b);
  EXPECT_EQ(total.cycles, 7);
  EXPECT_EQ(total.row_activations, 11);
  EXPECT_EQ(total.col_reads, 22);
  EXPECT_EQ(total.cell_macs, 33);
  // Accumulation and pricing commute: E(a+b) = E(a) + E(b).
  const EnergyParams params = unit_params();
  EXPECT_DOUBLE_EQ(total.energy_pj(params),
                   a.energy_pj(params) + b.energy_pj(params));
}

TEST(EnergyModel, ToStringMentionsKeyNumbers) {
  EnergyReport report;
  report.cycles = 42;
  report.row_activations = 1;
  const std::string text = report.to_string(unit_params());
  EXPECT_NE(text.find("cycles=42"), std::string::npos);
  EXPECT_NE(text.find("pJ"), std::string::npos);
}

}  // namespace
}  // namespace vwsdk
