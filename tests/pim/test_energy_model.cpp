#include "pim/energy_model.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vwsdk {
namespace {

EnergyParams unit_params() {
  EnergyParams params;
  params.dac_pj_per_row = 1.0;
  params.adc_pj_per_col = 10.0;
  params.cell_pj_per_mac = 0.1;
  params.cycle_ns = 2.0;
  return params;
}

TEST(EnergyModel, EnergyIsLinearInActivity) {
  EnergyReport report;
  report.cycles = 4;
  report.row_activations = 100;
  report.col_reads = 20;
  report.cell_macs = 1000;
  const EnergyParams params = unit_params();
  EXPECT_DOUBLE_EQ(report.energy_pj(params), 100.0 + 200.0 + 100.0);
  EXPECT_DOUBLE_EQ(report.latency_ns(params), 8.0);
}

TEST(EnergyModel, ConversionFraction) {
  EnergyReport report;
  report.row_activations = 100;  // 100 pJ
  report.col_reads = 20;         // 200 pJ
  report.cell_macs = 1000;       // 100 pJ
  EXPECT_DOUBLE_EQ(report.conversion_fraction(unit_params()), 300.0 / 400.0);
}

TEST(EnergyModel, ConversionFractionOfEmptyReportIsZero) {
  const EnergyReport report;
  EXPECT_EQ(report.conversion_fraction(unit_params()), 0.0);
}

TEST(EnergyModel, DefaultsMakeConversionsDominate) {
  // The paper cites conversions costing >98% of PIM energy ([3]); our
  // default constants must reproduce that regime for a typical cycle
  // (512 rows, 512 cols, 512x512 cells all active).
  EnergyReport report;
  report.cycles = 1;
  report.row_activations = 512;
  report.col_reads = 512;
  report.cell_macs = 512 * 512;
  const EnergyParams defaults;
  EXPECT_GT(report.conversion_fraction(defaults), 0.80);
}

TEST(EnergyModel, AccumulateSums) {
  EnergyReport a;
  a.cycles = 1;
  a.row_activations = 2;
  a.col_reads = 3;
  a.cell_macs = 4;
  EnergyReport b = a;
  b.accumulate(a);
  EXPECT_EQ(b.cycles, 2);
  EXPECT_EQ(b.row_activations, 4);
  EXPECT_EQ(b.col_reads, 6);
  EXPECT_EQ(b.cell_macs, 8);
}

TEST(EnergyModel, ValidationRejectsNegatives) {
  EnergyParams params;
  params.adc_pj_per_col = -1.0;
  EXPECT_THROW(params.validate(), InvalidArgument);
  EnergyReport report;
  EXPECT_THROW(report.energy_pj(params), InvalidArgument);
}

TEST(EnergyModel, ToStringMentionsKeyNumbers) {
  EnergyReport report;
  report.cycles = 42;
  report.row_activations = 1;
  const std::string text = report.to_string(unit_params());
  EXPECT_NE(text.find("cycles=42"), std::string::npos);
  EXPECT_NE(text.find("pJ"), std::string::npos);
}

}  // namespace
}  // namespace vwsdk
