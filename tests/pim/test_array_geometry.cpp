#include "pim/array_geometry.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vwsdk {
namespace {

TEST(ArrayGeometry, CellCountAndToString) {
  const ArrayGeometry g{512, 256};
  EXPECT_EQ(g.cell_count(), 512 * 256);
  EXPECT_EQ(g.to_string(), "512x256");
}

TEST(ArrayGeometry, ValidationRejectsNonPositive) {
  EXPECT_THROW((ArrayGeometry{0, 256}.validate()), InvalidArgument);
  EXPECT_THROW((ArrayGeometry{256, -1}.validate()), InvalidArgument);
  EXPECT_NO_THROW((ArrayGeometry{1, 1}.validate()));
}

TEST(ArrayGeometry, ParseHappyPath) {
  EXPECT_EQ(parse_geometry("512x512"), (ArrayGeometry{512, 512}));
  EXPECT_EQ(parse_geometry("128X256"), (ArrayGeometry{128, 256}));
  EXPECT_EQ(parse_geometry("  64x32 "), (ArrayGeometry{64, 32}));
}

TEST(ArrayGeometry, ParseRejectsGarbage) {
  EXPECT_THROW(parse_geometry("512"), InvalidArgument);
  EXPECT_THROW(parse_geometry("ax512"), InvalidArgument);
  EXPECT_THROW(parse_geometry("512x"), InvalidArgument);
  EXPECT_THROW(parse_geometry("0x512"), InvalidArgument);
}

TEST(ArrayGeometry, PaperGeometriesMatchFig8b) {
  const auto geometries = paper_geometries();
  ASSERT_EQ(geometries.size(), 5u);
  EXPECT_EQ(geometries[0], (ArrayGeometry{128, 128}));
  EXPECT_EQ(geometries[1], (ArrayGeometry{128, 256}));
  EXPECT_EQ(geometries[2], (ArrayGeometry{256, 256}));
  EXPECT_EQ(geometries[3], (ArrayGeometry{512, 256}));
  EXPECT_EQ(geometries[4], (ArrayGeometry{512, 512}));
}

}  // namespace
}  // namespace vwsdk
