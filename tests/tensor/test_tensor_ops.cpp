#include "tensor/tensor_ops.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace vwsdk {
namespace {

TEST(TensorOps, FillRandomIntBoundsAndIntegrality) {
  Rng rng(1);
  Tensord t = Tensord::feature_map(4, 8, 8);
  fill_random_int(t, rng, 5);
  for (const double v : t.data()) {
    EXPECT_GE(v, -5.0);
    EXPECT_LE(v, 5.0);
    EXPECT_EQ(v, std::floor(v)) << "value must be integral";
  }
}

TEST(TensorOps, FillRandomIntDeterministic) {
  Tensord a = Tensord::feature_map(2, 4, 4);
  Tensord b = Tensord::feature_map(2, 4, 4);
  Rng ra(99);
  Rng rb(99);
  fill_random_int(a, ra, 3);
  fill_random_int(b, rb, 3);
  EXPECT_EQ(a, b);
}

TEST(TensorOps, FillRandomRealRange) {
  Rng rng(2);
  Tensord t = Tensord::feature_map(1, 16, 16);
  fill_random_real(t, rng, -1.0, 1.0);
  for (const double v : t.data()) {
    EXPECT_GE(v, -1.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(TensorOps, FillSequentialIdentifiesPositions) {
  Tensord t(Shape4{1, 2, 2, 2});
  fill_sequential(t);
  EXPECT_EQ(t.at(0, 0, 0, 0), 0.0);
  EXPECT_EQ(t.at(0, 1, 1, 1), 7.0);
}

TEST(TensorOps, MaxAbsDiff) {
  Tensord a = Tensord::feature_map(1, 2, 2);
  Tensord b = Tensord::feature_map(1, 2, 2);
  b.at(0, 1, 0) = -2.5;
  EXPECT_EQ(max_abs_diff(a, b), 2.5);
  EXPECT_EQ(max_abs_diff(a, a), 0.0);
}

TEST(TensorOps, MaxAbsDiffShapeMismatchThrows) {
  Tensord a = Tensord::feature_map(1, 2, 2);
  Tensord b = Tensord::feature_map(1, 2, 3);
  EXPECT_THROW(max_abs_diff(a, b), InvalidArgument);
}

TEST(TensorOps, ExactlyEqual) {
  Tensord a = Tensord::feature_map(1, 2, 2);
  Tensord b = a;
  EXPECT_TRUE(exactly_equal(a, b));
  b.at(0, 0, 0) = 1e-300;
  EXPECT_FALSE(exactly_equal(a, b));
}

TEST(TensorOps, Sum) {
  Tensord t(Shape4{1, 1, 2, 2});
  fill_sequential(t);  // 0+1+2+3
  EXPECT_EQ(sum(t), 6.0);
}

TEST(TensorOps, NegativeMagnitudeRejected) {
  Rng rng(3);
  Tensord t = Tensord::feature_map(1, 1, 1);
  EXPECT_THROW(fill_random_int(t, rng, -1), InvalidArgument);
}

TEST(TensorOps, SliceChannelsCopiesTheRange) {
  Tensord fm = Tensord::feature_map(4, 2, 3);
  fill_sequential(fm);  // value == flat index, so positions identify
  const Tensord slice = slice_channels(fm, 1, 2);
  EXPECT_EQ(slice.shape(), (Shape4{1, 2, 2, 3}));
  for (Dim c = 0; c < 2; ++c) {
    for (Dim y = 0; y < 2; ++y) {
      for (Dim x = 0; x < 3; ++x) {
        EXPECT_EQ(slice.at(c, y, x), fm.at(c + 1, y, x));
      }
    }
  }
  // Full-range slice is an exact copy; empty slice is legal.
  EXPECT_TRUE(exactly_equal(slice_channels(fm, 0, 4), fm));
  EXPECT_EQ(slice_channels(fm, 2, 0).shape(), (Shape4{1, 0, 2, 3}));
}

TEST(TensorOps, SliceOuterSelectsWeightBanks) {
  Tensord weights = Tensord::weights(6, 2, 3, 3);
  fill_sequential(weights);
  const Tensord bank = slice_outer(weights, 4, 2);
  EXPECT_EQ(bank.shape(), (Shape4{2, 2, 3, 3}));
  EXPECT_EQ(bank.at(0, 0, 0, 0), weights.at(4, 0, 0, 0));
  EXPECT_EQ(bank.at(1, 1, 2, 2), weights.at(5, 1, 2, 2));
}

TEST(TensorOps, WriteChannelsRoundTripsSlices) {
  Tensord fm = Tensord::feature_map(5, 3, 3);
  fill_sequential(fm);
  Tensord rebuilt = Tensord::feature_map(5, 3, 3);
  for (Dim c = 0; c < 5; ++c) {
    write_channels(rebuilt, slice_channels(fm, c, 1), c);
  }
  EXPECT_TRUE(exactly_equal(rebuilt, fm));
}

TEST(TensorOps, SliceValidation) {
  Tensord fm = Tensord::feature_map(4, 2, 2);
  EXPECT_THROW(slice_channels(fm, 3, 2), InvalidArgument);
  EXPECT_THROW(slice_channels(fm, -1, 1), InvalidArgument);
  Tensord weights = Tensord::weights(2, 1, 1, 1);
  EXPECT_THROW(slice_channels(weights, 0, 1), InvalidArgument);  // d0 != 1
  EXPECT_THROW(slice_outer(weights, 1, 2), InvalidArgument);
  Tensord small = Tensord::feature_map(1, 2, 2);
  Tensord wrong = Tensord::feature_map(1, 3, 3);
  EXPECT_THROW(write_channels(fm, wrong, 0), InvalidArgument);
  EXPECT_THROW(write_channels(small, slice_channels(fm, 0, 2), 0),
               InvalidArgument);
}

}  // namespace
}  // namespace vwsdk
