#include "tensor/tensor_ops.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace vwsdk {
namespace {

TEST(TensorOps, FillRandomIntBoundsAndIntegrality) {
  Rng rng(1);
  Tensord t = Tensord::feature_map(4, 8, 8);
  fill_random_int(t, rng, 5);
  for (const double v : t.data()) {
    EXPECT_GE(v, -5.0);
    EXPECT_LE(v, 5.0);
    EXPECT_EQ(v, std::floor(v)) << "value must be integral";
  }
}

TEST(TensorOps, FillRandomIntDeterministic) {
  Tensord a = Tensord::feature_map(2, 4, 4);
  Tensord b = Tensord::feature_map(2, 4, 4);
  Rng ra(99);
  Rng rb(99);
  fill_random_int(a, ra, 3);
  fill_random_int(b, rb, 3);
  EXPECT_EQ(a, b);
}

TEST(TensorOps, FillRandomRealRange) {
  Rng rng(2);
  Tensord t = Tensord::feature_map(1, 16, 16);
  fill_random_real(t, rng, -1.0, 1.0);
  for (const double v : t.data()) {
    EXPECT_GE(v, -1.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(TensorOps, FillSequentialIdentifiesPositions) {
  Tensord t(Shape4{1, 2, 2, 2});
  fill_sequential(t);
  EXPECT_EQ(t.at(0, 0, 0, 0), 0.0);
  EXPECT_EQ(t.at(0, 1, 1, 1), 7.0);
}

TEST(TensorOps, MaxAbsDiff) {
  Tensord a = Tensord::feature_map(1, 2, 2);
  Tensord b = Tensord::feature_map(1, 2, 2);
  b.at(0, 1, 0) = -2.5;
  EXPECT_EQ(max_abs_diff(a, b), 2.5);
  EXPECT_EQ(max_abs_diff(a, a), 0.0);
}

TEST(TensorOps, MaxAbsDiffShapeMismatchThrows) {
  Tensord a = Tensord::feature_map(1, 2, 2);
  Tensord b = Tensord::feature_map(1, 2, 3);
  EXPECT_THROW(max_abs_diff(a, b), InvalidArgument);
}

TEST(TensorOps, ExactlyEqual) {
  Tensord a = Tensord::feature_map(1, 2, 2);
  Tensord b = a;
  EXPECT_TRUE(exactly_equal(a, b));
  b.at(0, 0, 0) = 1e-300;
  EXPECT_FALSE(exactly_equal(a, b));
}

TEST(TensorOps, Sum) {
  Tensord t(Shape4{1, 1, 2, 2});
  fill_sequential(t);  // 0+1+2+3
  EXPECT_EQ(sum(t), 6.0);
}

TEST(TensorOps, NegativeMagnitudeRejected) {
  Rng rng(3);
  Tensord t = Tensord::feature_map(1, 1, 1);
  EXPECT_THROW(fill_random_int(t, rng, -1), InvalidArgument);
}

}  // namespace
}  // namespace vwsdk
