#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vwsdk {
namespace {

TEST(Tensor, ZeroInitialized) {
  Tensord t(Shape4{2, 3, 4, 5});
  EXPECT_EQ(t.size(), 2 * 3 * 4 * 5);
  for (const double v : t.data()) {
    EXPECT_EQ(v, 0.0);
  }
}

TEST(Tensor, ShapeAccessors) {
  const Tensord fm = Tensord::feature_map(16, 8, 9);
  EXPECT_EQ(fm.shape(), (Shape4{1, 16, 8, 9}));
  const Tensord w = Tensord::weights(32, 16, 3, 3);
  EXPECT_EQ(w.shape(), (Shape4{32, 16, 3, 3}));
}

TEST(Tensor, RowMajorLayout) {
  Tensord t(Shape4{1, 2, 2, 3});
  t.at(0, 1, 1, 2) = 7.0;
  // flat = ((0*2+1)*2+1)*3+2 = 11
  EXPECT_EQ(t.data()[11], 7.0);
}

TEST(Tensor, FeatureMapAccessorAliasesFourIndexForm) {
  Tensord t = Tensord::feature_map(3, 4, 5);
  t.at(2, 3, 4) = 9.5;
  EXPECT_EQ(t.at(0, 2, 3, 4), 9.5);
}

TEST(Tensor, BoundsChecked) {
  Tensord t = Tensord::feature_map(2, 2, 2);
  EXPECT_THROW(t.at(0, 0, 0, 2), InvalidArgument);
  EXPECT_THROW(t.at(0, 2, 0, 0), InvalidArgument);
  EXPECT_THROW(t.at(0, 0, -1, 0), InvalidArgument);
  EXPECT_THROW(t.at(1, 0, 0, 0), InvalidArgument);  // batch is 1
}

TEST(Tensor, FillAndEquality) {
  Tensord a = Tensord::feature_map(2, 2, 2);
  Tensord b = Tensord::feature_map(2, 2, 2);
  a.fill(3.0);
  b.fill(3.0);
  EXPECT_EQ(a, b);
  b.at(0, 1, 1) = 4.0;
  EXPECT_FALSE(a == b);
}

TEST(Tensor, EmptyTensor) {
  const Tensord t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0);
}

TEST(Tensor, NegativeDimensionRejected) {
  EXPECT_THROW(Tensord(Shape4{1, -1, 2, 2}), InvalidArgument);
}

TEST(Shape4, ToStringAndSize) {
  const Shape4 s{64, 3, 7, 7};
  EXPECT_EQ(s.to_string(), "(64, 3, 7, 7)");
  EXPECT_EQ(s.size(), 64 * 3 * 7 * 7);
}

}  // namespace
}  // namespace vwsdk
