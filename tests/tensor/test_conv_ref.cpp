#include "tensor/conv_ref.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/random.h"
#include "tensor/tensor_ops.h"

namespace vwsdk {
namespace {

TEST(ConvOutputExtent, StandardCases) {
  EXPECT_EQ(conv_output_extent(224, 3, 1, 0), 222);
  EXPECT_EQ(conv_output_extent(224, 3, 1, 1), 224);  // "same" padding
  EXPECT_EQ(conv_output_extent(7, 3, 1, 0), 5);
  EXPECT_EQ(conv_output_extent(112, 7, 2, 3), 56);   // real ResNet conv1
  EXPECT_EQ(conv_output_extent(5, 5, 1, 0), 1);
}

TEST(ConvOutputExtent, Validation) {
  EXPECT_THROW(conv_output_extent(2, 3, 1, 0), InvalidArgument);
  EXPECT_THROW(conv_output_extent(8, 3, 0, 0), InvalidArgument);
  EXPECT_THROW(conv_output_extent(8, 3, 1, -1), InvalidArgument);
}

TEST(ConvDirect, HandComputedSingleChannel) {
  // 3x3 input, 2x2 kernel of ones: each output = sum of a 2x2 patch.
  Tensord ifm = Tensord::feature_map(1, 3, 3);
  fill_sequential(ifm);  // 0..8 row-major
  Tensord w = Tensord::weights(1, 1, 2, 2);
  w.fill(1.0);
  const Tensord ofm = conv2d_direct(ifm, w);
  ASSERT_EQ(ofm.shape(), (Shape4{1, 1, 2, 2}));
  EXPECT_EQ(ofm.at(0, 0, 0), 0.0 + 1 + 3 + 4);
  EXPECT_EQ(ofm.at(0, 0, 1), 1.0 + 2 + 4 + 5);
  EXPECT_EQ(ofm.at(0, 1, 0), 3.0 + 4 + 6 + 7);
  EXPECT_EQ(ofm.at(0, 1, 1), 4.0 + 5 + 7 + 8);
}

TEST(ConvDirect, IdentityKernelPicksCenter) {
  Tensord ifm = Tensord::feature_map(1, 5, 5);
  fill_sequential(ifm);
  Tensord w = Tensord::weights(1, 1, 3, 3);
  w.at(0, 0, 1, 1) = 1.0;  // delta at the center
  const Tensord ofm = conv2d_direct(ifm, w);
  ASSERT_EQ(ofm.shape(), (Shape4{1, 1, 3, 3}));
  for (Dim y = 0; y < 3; ++y) {
    for (Dim x = 0; x < 3; ++x) {
      EXPECT_EQ(ofm.at(0, y, x), ifm.at(0, y + 1, x + 1));
    }
  }
}

TEST(ConvDirect, MultiChannelAccumulates) {
  Tensord ifm = Tensord::feature_map(2, 2, 2);
  ifm.fill(1.0);
  Tensord w = Tensord::weights(3, 2, 2, 2);
  w.fill(2.0);
  const Tensord ofm = conv2d_direct(ifm, w);
  ASSERT_EQ(ofm.shape(), (Shape4{1, 3, 1, 1}));
  // 2 channels * 4 positions * 1 * 2 = 16 per output channel.
  for (Dim oc = 0; oc < 3; ++oc) {
    EXPECT_EQ(ofm.at(oc, 0, 0), 16.0);
  }
}

TEST(ConvDirect, StrideSkipsPositions) {
  Tensord ifm = Tensord::feature_map(1, 5, 5);
  fill_sequential(ifm);
  Tensord w = Tensord::weights(1, 1, 1, 1);
  w.at(0, 0, 0, 0) = 1.0;
  ConvConfig config;
  config.stride_w = 2;
  config.stride_h = 2;
  const Tensord ofm = conv2d_direct(ifm, w, config);
  ASSERT_EQ(ofm.shape(), (Shape4{1, 1, 3, 3}));
  EXPECT_EQ(ofm.at(0, 0, 0), ifm.at(0, 0, 0));
  EXPECT_EQ(ofm.at(0, 1, 1), ifm.at(0, 2, 2));
  EXPECT_EQ(ofm.at(0, 2, 2), ifm.at(0, 4, 4));
}

TEST(ConvDirect, ZeroPaddingContributesNothing) {
  Tensord ifm = Tensord::feature_map(1, 3, 3);
  ifm.fill(1.0);
  Tensord w = Tensord::weights(1, 1, 3, 3);
  w.fill(1.0);
  ConvConfig config;
  config.pad_w = 1;
  config.pad_h = 1;
  const Tensord ofm = conv2d_direct(ifm, w, config);
  ASSERT_EQ(ofm.shape(), (Shape4{1, 1, 3, 3}));
  EXPECT_EQ(ofm.at(0, 1, 1), 9.0);  // fully interior
  EXPECT_EQ(ofm.at(0, 0, 0), 4.0);  // corner: only 2x2 real pixels
  EXPECT_EQ(ofm.at(0, 0, 1), 6.0);  // edge: 2x3 real pixels
}

TEST(ConvDirect, ChannelMismatchRejected) {
  const Tensord ifm = Tensord::feature_map(3, 4, 4);
  const Tensord w = Tensord::weights(1, 2, 3, 3);
  EXPECT_THROW(conv2d_direct(ifm, w), InvalidArgument);
}

TEST(ConvDirect, LinearityProperty) {
  // conv(a*x, w) == a * conv(x, w) for scalar a -- catches accumulation
  // bugs without any hand-computed values.
  Rng rng(5);
  Tensord ifm = Tensord::feature_map(3, 6, 6);
  Tensord w = Tensord::weights(4, 3, 3, 3);
  fill_random_int(ifm, rng, 4);
  fill_random_int(w, rng, 4);
  const Tensord base = conv2d_direct(ifm, w);
  Tensord scaled_in = ifm;
  for (double& v : scaled_in.data()) {
    v *= 3.0;
  }
  const Tensord scaled_out = conv2d_direct(scaled_in, w);
  for (std::size_t i = 0; i < base.data().size(); ++i) {
    EXPECT_EQ(scaled_out.data()[i], 3.0 * base.data()[i]);
  }
}

}  // namespace
}  // namespace vwsdk
