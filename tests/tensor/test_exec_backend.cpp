#include "tensor/exec_backend.h"

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/random.h"
#include "common/string_util.h"
#include "nn/model_zoo.h"
#include "tensor/gemm_backend.h"
#include "tensor/tensor_ops.h"

namespace vwsdk {
namespace {

/// RAII: restore the prior value of an environment variable.
class EnvGuard {
 public:
  explicit EnvGuard(std::string name) : name_(std::move(name)) {
    if (const char* prev = std::getenv(name_.c_str())) {
      had_value_ = true;
      saved_ = prev;
    }
  }
  ~EnvGuard() {
    if (had_value_) {
      setenv(name_.c_str(), saved_.c_str(), 1);
    } else {
      unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  bool had_value_ = false;
  std::string saved_;
};

TEST(BackendRegistry, BuiltinsAreRegistered) {
  const BackendRegistry& registry = BackendRegistry::instance();
  EXPECT_GE(registry.size(), 2);
  // The oracle sorts first, the fast default second.
  const std::vector<std::string> names = registry.names();
  ASSERT_GE(names.size(), 2u);
  EXPECT_EQ(names[0], "scalar");
  EXPECT_EQ(names[1], "gemm");
  EXPECT_TRUE(registry.contains("scalar"));
  EXPECT_TRUE(registry.contains("gemm"));
  // Aliases and case-insensitive lookup.
  EXPECT_TRUE(registry.contains("direct"));
  EXPECT_TRUE(registry.contains("im2col-gemm"));
  EXPECT_TRUE(registry.contains("  GEMM "));
  EXPECT_EQ(registry.info("DIRECT").name, "scalar");
}

TEST(BackendRegistry, UnknownNameThrowsListingKnown) {
  const BackendRegistry& registry = BackendRegistry::instance();
  try {
    registry.get("no-such-backend");
    FAIL() << "expected NotFound";
  } catch (const NotFound& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("no-such-backend"), std::string::npos);
    EXPECT_NE(message.find("scalar"), std::string::npos);
    EXPECT_NE(message.find("gemm"), std::string::npos);
  }
}

TEST(BackendRegistry, AddValidatesNamesAndDuplicates) {
  BackendRegistry registry;
  RefBackendInfo info;
  info.name = "mine";
  info.instance = []() -> const RefBackend& {
    static const ScalarBackend backend;
    return backend;
  };
  registry.add(info);
  EXPECT_TRUE(registry.contains("MINE"));
  // Duplicate canonical name (case-insensitive).
  EXPECT_THROW(registry.add(info), InvalidArgument);
  // Missing instance function.
  RefBackendInfo broken;
  broken.name = "broken";
  EXPECT_THROW(registry.add(broken), InvalidArgument);
  // An alias colliding with an existing name.
  RefBackendInfo aliased = info;
  aliased.name = "other";
  aliased.aliases = {"Mine"};
  EXPECT_THROW(registry.add(aliased), InvalidArgument);
  // An alias repeated within one registration.
  RefBackendInfo repeated = info;
  repeated.name = "third";
  repeated.aliases = {"x", "x"};
  EXPECT_THROW(registry.add(repeated), InvalidArgument);
}

TEST(BackendResolution, ExplicitThenEnvThenDefault) {
  EnvGuard guard("VWSDK_REF_BACKEND");
  unsetenv("VWSDK_REF_BACKEND");
  EXPECT_EQ(resolve_ref_backend(), "gemm");
  EXPECT_EQ(resolve_ref_backend("scalar"), "scalar");
  EXPECT_EQ(resolve_ref_backend(" Direct "), "scalar");  // alias, trimmed

  ASSERT_EQ(setenv("VWSDK_REF_BACKEND", "scalar", 1), 0);
  EXPECT_EQ(resolve_ref_backend(), "scalar");
  // An explicit request wins over the environment.
  EXPECT_EQ(resolve_ref_backend("gemm"), "gemm");
  // Empty environment value falls through to the default.
  ASSERT_EQ(setenv("VWSDK_REF_BACKEND", "", 1), 0);
  EXPECT_EQ(resolve_ref_backend(), "gemm");
  // Unknown names throw, explicit or from the environment.
  ASSERT_EQ(setenv("VWSDK_REF_BACKEND", "bogus", 1), 0);
  EXPECT_THROW(resolve_ref_backend(), NotFound);
  EXPECT_THROW(resolve_ref_backend("bogus"), NotFound);
}

/// One parity case: both backends on the same integer tensors must
/// produce bitwise-identical OFMs.
struct ParityCase {
  Dim ih = 0, iw = 0, kh = 0, kw = 0, ic = 0, oc = 0;
  ConvConfig config{};

  std::string label() const {
    return cat(ih, "x", iw, " k", kh, "x", kw, " ic", ic, " oc", oc, " s",
               config.stride_h, "x", config.stride_w, " p", config.pad_h,
               "x", config.pad_w);
  }
};

void expect_parity(const ParityCase& c, const RefBackend& gemm,
                   ConvWorkspace* workspace, std::uint64_t seed) {
  Rng rng(seed);
  Tensord ifm = Tensord::feature_map(c.ic, c.ih, c.iw);
  Tensord weights = Tensord::weights(c.oc, c.ic, c.kh, c.kw);
  fill_random_int(ifm, rng, 3);
  fill_random_int(weights, rng, 3);
  const Tensord oracle = conv2d_direct(ifm, weights, c.config);
  const Tensord fast = gemm.conv2d(ifm, weights, c.config, workspace);
  EXPECT_TRUE(exactly_equal(oracle, fast)) << c.label();
}

/// Shrink a zoo layer to a Debug-friendly parity case that keeps its
/// interesting structure: the kernel, stride, and padding are preserved
/// exactly; the spatial extent is capped at kernel + 9 (still multiple
/// windows per axis, still exercises every padding row); the per-group
/// channel counts are capped at 24 (full-size zoo layers reach billions
/// of MACs -- minutes of scalar time per layer in Debug -- without
/// covering any additional backend code path).
ParityCase capped_case(const ConvLayerDesc& layer) {
  ParityCase c;
  c.kh = layer.kernel_h;
  c.kw = layer.kernel_w;
  c.ih = std::min(layer.ifm_h, static_cast<Dim>(layer.kernel_h + 9));
  c.iw = std::min(layer.ifm_w, static_cast<Dim>(layer.kernel_w + 9));
  c.ic = std::min(layer.group_in_channels(), Dim{24});
  c.oc = std::min(layer.group_out_channels(), Dim{24});
  c.config = layer.config;
  return c;
}

// gemm vs scalar on (the capped per-group sub-convolution of) every
// distinct layer shape in the model zoo -- stride, padding, grouped and
// depthwise layers included, which is exactly the shape population the
// verification paths run.
TEST(BackendParity, EveryZooLayerShape) {
  const RefBackend& gemm = BackendRegistry::instance().get("gemm");
  ConvWorkspace workspace;  // shared across cases, like the pipeline
  std::set<std::string> seen;
  std::uint64_t seed = 100;
  for (const std::string& model : model_names()) {
    const Network network = model_by_name(model);
    for (const ConvLayerDesc& layer : network.layers()) {
      const ParityCase c = capped_case(layer);
      if (!seen.insert(c.label()).second) {
        continue;  // networks share layer shapes; test each once
      }
      expect_parity(c, gemm, &workspace, seed++);
    }
  }
  EXPECT_GE(seen.size(), 10u);
}

// The stride/pad/kernel sandwich the zoo does not cover, workspace
// shared across wildly different shapes to prove resize correctness.
TEST(BackendParity, StridePadKernelSandwich) {
  const RefBackend& gemm = BackendRegistry::instance().get("gemm");
  ConvWorkspace workspace;
  std::uint64_t seed = 500;
  for (const Dim kernel : {1, 3, 5}) {
    for (const Dim stride : {1, 2, 3}) {
      for (const Dim pad : {0, 1, 2}) {
        ParityCase c;
        c.ih = 11;
        c.iw = 13;  // non-square
        c.kh = kernel;
        c.kw = kernel;
        c.ic = 6;
        c.oc = 8;
        c.config.stride_h = stride;
        c.config.stride_w = stride;
        c.config.pad_h = pad;
        c.config.pad_w = pad;
        expect_parity(c, gemm, &workspace, seed++);
      }
    }
  }
  // Asymmetric stride/padding, rectangular kernel.
  ParityCase c;
  c.ih = 14;
  c.iw = 9;
  c.kh = 3;
  c.kw = 5;
  c.ic = 5;
  c.oc = 7;
  c.config.stride_h = 2;
  c.config.stride_w = 1;
  c.config.pad_h = 0;
  c.config.pad_w = 2;
  expect_parity(c, gemm, &workspace, seed);
}

// Grouped execution the way the pipeline runs it: slice each group's
// channels, convolve through both backends (gemm reusing one workspace
// across groups), scatter into the layer OFM, compare layer-level.
TEST(BackendParity, GroupedAndDepthwiseSlices) {
  const RefBackend& gemm = BackendRegistry::instance().get("gemm");
  ConvWorkspace workspace;
  std::uint64_t seed = 900;
  for (const Dim groups : {2, 4, 8}) {  // 8 groups of 1 ic = depthwise
    const Dim ic = 8, oc = 8, image = 9, kernel = 3;
    const Dim group_ic = ic / groups, group_oc = oc / groups;
    Rng rng(seed++);
    Tensord ifm = Tensord::feature_map(ic, image, image);
    Tensord weights = Tensord::weights(oc, group_ic, kernel, kernel);
    fill_random_int(ifm, rng, 3);
    fill_random_int(weights, rng, 3);
    Tensord via_scalar = Tensord::feature_map(oc, image - kernel + 1,
                                              image - kernel + 1);
    Tensord via_gemm = via_scalar;
    for (Dim g = 0; g < groups; ++g) {
      const Tensord group_ifm = slice_channels(ifm, g * group_ic, group_ic);
      const Tensord group_weights = slice_outer(weights, g * group_oc,
                                                group_oc);
      write_channels(via_scalar, conv2d_direct(group_ifm, group_weights),
                     g * group_oc);
      write_channels(via_gemm,
                     gemm.conv2d(group_ifm, group_weights, ConvConfig{},
                                 &workspace),
                     g * group_oc);
    }
    EXPECT_TRUE(exactly_equal(via_scalar, via_gemm))
        << groups << " groups";
  }
}

// Bitwise determinism across thread counts: each output row is
// computed wholly by one worker in ascending-k order, so the pool size
// must not change a single bit.  The case is sized past the backend's
// inline cutoff so the pool actually runs.
TEST(GemmBackend, DeterministicAcrossThreadCounts) {
  Rng rng(4242);
  Tensord ifm = Tensord::feature_map(8, 16, 16);
  Tensord weights = Tensord::weights(16, 8, 3, 3);
  fill_random_int(ifm, rng, 3);
  fill_random_int(weights, rng, 3);
  const ConvConfig config;

  const GemmBackend one(1);
  const GemmBackend four(4);
  const GemmBackend sixteen(16);
  EXPECT_EQ(one.threads(), 1);
  EXPECT_EQ(four.threads(), 4);
  EXPECT_EQ(sixteen.threads(), 16);
  const Tensord base = one.conv2d(ifm, weights, config, nullptr);
  EXPECT_TRUE(exactly_equal(base, four.conv2d(ifm, weights, config,
                                              nullptr)));
  EXPECT_TRUE(exactly_equal(base, sixteen.conv2d(ifm, weights, config,
                                                 nullptr)));
  // ...and identical to the oracle, threads notwithstanding.
  EXPECT_TRUE(exactly_equal(base, conv2d_direct(ifm, weights, config)));
}

// VWSDK_THREADS feeds the same constructor path the tests above pin
// explicitly, so env-selected thread counts inherit the determinism.
TEST(GemmBackend, DefaultThreadCountFollowsEnv) {
  EnvGuard guard("VWSDK_THREADS");
  ASSERT_EQ(setenv("VWSDK_THREADS", "4", 1), 0);
  const GemmBackend backend;
  EXPECT_EQ(backend.threads(), 4);
}

}  // namespace
}  // namespace vwsdk
