#include "tensor/pooling.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "tensor/tensor_ops.h"

namespace vwsdk {
namespace {

TEST(MaxPool, TwoByTwoStrideTwo) {
  Tensord ifm = Tensord::feature_map(1, 4, 4);
  fill_sequential(ifm);  // rows: 0-3, 4-7, 8-11, 12-15
  const Tensord out = max_pool2d(ifm, 2, 2);
  ASSERT_EQ(out.shape(), (Shape4{1, 1, 2, 2}));
  EXPECT_EQ(out.at(0, 0, 0), 5.0);
  EXPECT_EQ(out.at(0, 0, 1), 7.0);
  EXPECT_EQ(out.at(0, 1, 0), 13.0);
  EXPECT_EQ(out.at(0, 1, 1), 15.0);
}

TEST(MaxPool, HandlesNegativeValues) {
  Tensord ifm = Tensord::feature_map(1, 2, 2);
  ifm.at(0, 0, 0) = -5.0;
  ifm.at(0, 0, 1) = -2.0;
  ifm.at(0, 1, 0) = -9.0;
  ifm.at(0, 1, 1) = -7.0;
  const Tensord out = max_pool2d(ifm, 2, 2);
  EXPECT_EQ(out.at(0, 0, 0), -2.0);
}

TEST(MaxPool, PerChannelIndependence) {
  Tensord ifm = Tensord::feature_map(2, 2, 2);
  ifm.at(0, 0, 0) = 10.0;
  ifm.at(1, 1, 1) = 20.0;
  const Tensord out = max_pool2d(ifm, 2, 2);
  EXPECT_EQ(out.at(0, 0, 0), 10.0);
  EXPECT_EQ(out.at(1, 0, 0), 20.0);
}

TEST(AvgPool, Averages) {
  Tensord ifm = Tensord::feature_map(1, 2, 2);
  fill_sequential(ifm);  // 0,1,2,3
  const Tensord out = avg_pool2d(ifm, 2, 2);
  EXPECT_EQ(out.at(0, 0, 0), 1.5);
}

TEST(Pooling, OverlappingStride) {
  Tensord ifm = Tensord::feature_map(1, 3, 3);
  fill_sequential(ifm);
  const Tensord out = max_pool2d(ifm, 2, 1);
  ASSERT_EQ(out.shape(), (Shape4{1, 1, 2, 2}));
  EXPECT_EQ(out.at(0, 1, 1), 8.0);
}

TEST(Pooling, Validation) {
  const Tensord ifm = Tensord::feature_map(1, 2, 2);
  EXPECT_THROW(max_pool2d(ifm, 3, 1), InvalidArgument);
  EXPECT_THROW(max_pool2d(ifm, 0, 1), InvalidArgument);
  EXPECT_THROW(avg_pool2d(ifm, 2, 0), InvalidArgument);
}

TEST(Pooling, StrideLargerThanWindowRejected) {
  // stride > window would skip interior rows/columns entirely; the
  // header documents this as rejected rather than silently lossy.
  const Tensord ifm = Tensord::feature_map(1, 6, 6);
  EXPECT_THROW(max_pool2d(ifm, 2, 3), InvalidArgument);
  EXPECT_THROW(avg_pool2d(ifm, 1, 2), InvalidArgument);
}

// Pin the documented floor semantics: when (input - window) % stride
// != 0 the trailing rows/columns short of a full window are dropped.
// 5x5 with window 2, stride 2: floor((5-2)/2)+1 = 2 outputs per axis;
// row and column 4 never contribute.
TEST(Pooling, FloorSemanticsDropTrailingRowsAndColumns) {
  Tensord ifm = Tensord::feature_map(1, 5, 5);
  fill_sequential(ifm);  // element (y, x) holds 5*y + x; max is 24
  const Tensord out = max_pool2d(ifm, 2, 2);
  ASSERT_EQ(out.shape(), (Shape4{1, 1, 2, 2}));
  EXPECT_EQ(out.at(0, 0, 0), 6.0);    // max of rows 0-1, cols 0-1
  EXPECT_EQ(out.at(0, 0, 1), 8.0);    // cols 2-3; col 4 dropped
  EXPECT_EQ(out.at(0, 1, 0), 16.0);   // rows 2-3; row 4 dropped
  EXPECT_EQ(out.at(0, 1, 1), 18.0);   // never 24: (4,4) is truncated

  // Same truncation for average pooling: every output averages a full
  // window, no partial-window denominators.
  const Tensord avg = avg_pool2d(ifm, 2, 2);
  ASSERT_EQ(avg.shape(), (Shape4{1, 1, 2, 2}));
  EXPECT_EQ(avg.at(0, 0, 0), 3.0);    // (0+1+5+6)/4
  EXPECT_EQ(avg.at(0, 1, 1), 15.0);   // (12+13+17+18)/4
}

TEST(Relu, ClampsNegatives) {
  Tensord t = Tensord::feature_map(1, 1, 3);
  t.at(0, 0, 0) = -1.0;
  t.at(0, 0, 1) = 0.0;
  t.at(0, 0, 2) = 2.5;
  const Tensord out = relu(t);
  EXPECT_EQ(out.at(0, 0, 0), 0.0);
  EXPECT_EQ(out.at(0, 0, 1), 0.0);
  EXPECT_EQ(out.at(0, 0, 2), 2.5);
}

TEST(Add, ElementwiseAndValidation) {
  Tensord a = Tensord::feature_map(1, 2, 2);
  Tensord b = Tensord::feature_map(1, 2, 2);
  fill_sequential(a);
  fill_sequential(b);
  const Tensord out = add(a, b);
  EXPECT_EQ(out.at(0, 1, 1), 6.0);
  const Tensord c = Tensord::feature_map(1, 2, 3);
  EXPECT_THROW(add(a, c), InvalidArgument);
}

}  // namespace
}  // namespace vwsdk
