#include "tensor/pooling.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "tensor/tensor_ops.h"

namespace vwsdk {
namespace {

TEST(MaxPool, TwoByTwoStrideTwo) {
  Tensord ifm = Tensord::feature_map(1, 4, 4);
  fill_sequential(ifm);  // rows: 0-3, 4-7, 8-11, 12-15
  const Tensord out = max_pool2d(ifm, 2, 2);
  ASSERT_EQ(out.shape(), (Shape4{1, 1, 2, 2}));
  EXPECT_EQ(out.at(0, 0, 0), 5.0);
  EXPECT_EQ(out.at(0, 0, 1), 7.0);
  EXPECT_EQ(out.at(0, 1, 0), 13.0);
  EXPECT_EQ(out.at(0, 1, 1), 15.0);
}

TEST(MaxPool, HandlesNegativeValues) {
  Tensord ifm = Tensord::feature_map(1, 2, 2);
  ifm.at(0, 0, 0) = -5.0;
  ifm.at(0, 0, 1) = -2.0;
  ifm.at(0, 1, 0) = -9.0;
  ifm.at(0, 1, 1) = -7.0;
  const Tensord out = max_pool2d(ifm, 2, 2);
  EXPECT_EQ(out.at(0, 0, 0), -2.0);
}

TEST(MaxPool, PerChannelIndependence) {
  Tensord ifm = Tensord::feature_map(2, 2, 2);
  ifm.at(0, 0, 0) = 10.0;
  ifm.at(1, 1, 1) = 20.0;
  const Tensord out = max_pool2d(ifm, 2, 2);
  EXPECT_EQ(out.at(0, 0, 0), 10.0);
  EXPECT_EQ(out.at(1, 0, 0), 20.0);
}

TEST(AvgPool, Averages) {
  Tensord ifm = Tensord::feature_map(1, 2, 2);
  fill_sequential(ifm);  // 0,1,2,3
  const Tensord out = avg_pool2d(ifm, 2, 2);
  EXPECT_EQ(out.at(0, 0, 0), 1.5);
}

TEST(Pooling, OverlappingStride) {
  Tensord ifm = Tensord::feature_map(1, 3, 3);
  fill_sequential(ifm);
  const Tensord out = max_pool2d(ifm, 2, 1);
  ASSERT_EQ(out.shape(), (Shape4{1, 1, 2, 2}));
  EXPECT_EQ(out.at(0, 1, 1), 8.0);
}

TEST(Pooling, Validation) {
  const Tensord ifm = Tensord::feature_map(1, 2, 2);
  EXPECT_THROW(max_pool2d(ifm, 3, 1), InvalidArgument);
  EXPECT_THROW(max_pool2d(ifm, 0, 1), InvalidArgument);
  EXPECT_THROW(avg_pool2d(ifm, 2, 0), InvalidArgument);
}

TEST(Relu, ClampsNegatives) {
  Tensord t = Tensord::feature_map(1, 1, 3);
  t.at(0, 0, 0) = -1.0;
  t.at(0, 0, 1) = 0.0;
  t.at(0, 0, 2) = 2.5;
  const Tensord out = relu(t);
  EXPECT_EQ(out.at(0, 0, 0), 0.0);
  EXPECT_EQ(out.at(0, 0, 1), 0.0);
  EXPECT_EQ(out.at(0, 0, 2), 2.5);
}

TEST(Add, ElementwiseAndValidation) {
  Tensord a = Tensord::feature_map(1, 2, 2);
  Tensord b = Tensord::feature_map(1, 2, 2);
  fill_sequential(a);
  fill_sequential(b);
  const Tensord out = add(a, b);
  EXPECT_EQ(out.at(0, 1, 1), 6.0);
  const Tensord c = Tensord::feature_map(1, 2, 3);
  EXPECT_THROW(add(a, c), InvalidArgument);
}

}  // namespace
}  // namespace vwsdk
