#include "tensor/im2col_ref.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/random.h"
#include "tensor/exec_backend.h"
#include "tensor/tensor_ops.h"

namespace vwsdk {
namespace {

TEST(Im2colRowIndex, OrderingIsIcMajorThenKyKx) {
  // For a 3x3 kernel: (ic, ky, kx) -> (ic*3 + ky)*3 + kx.
  EXPECT_EQ(im2col_row_index(0, 0, 0, 3, 3), 0);
  EXPECT_EQ(im2col_row_index(0, 0, 2, 3, 3), 2);
  EXPECT_EQ(im2col_row_index(0, 1, 0, 3, 3), 3);
  EXPECT_EQ(im2col_row_index(1, 0, 0, 3, 3), 9);
  EXPECT_EQ(im2col_row_index(2, 2, 2, 3, 3), 26);
}

TEST(Im2colRowIndex, RejectsOutOfRange) {
  EXPECT_THROW(im2col_row_index(0, 3, 0, 3, 3), InvalidArgument);
  EXPECT_THROW(im2col_row_index(0, 0, -1, 3, 3), InvalidArgument);
}

TEST(Im2colLower, ShapeAndContent) {
  Tensord ifm = Tensord::feature_map(2, 3, 3);
  fill_sequential(ifm);
  const Tensord matrix = im2col_lower(ifm, 2, 2);
  // rows = 2*2*2 = 8, cols = 2*2 = 4.
  ASSERT_EQ(matrix.shape(), (Shape4{1, 1, 8, 4}));
  // Column 0 = window at (0,0): channel 0 patch then channel 1 patch.
  EXPECT_EQ(matrix.at(0, 0, 0, 0), ifm.at(0, 0, 0));
  EXPECT_EQ(matrix.at(0, 0, 1, 0), ifm.at(0, 0, 1));
  EXPECT_EQ(matrix.at(0, 0, 2, 0), ifm.at(0, 1, 0));
  EXPECT_EQ(matrix.at(0, 0, 4, 0), ifm.at(1, 0, 0));
  // Column 3 = window at (1,1).
  EXPECT_EQ(matrix.at(0, 0, 0, 3), ifm.at(0, 1, 1));
  EXPECT_EQ(matrix.at(0, 0, 7, 3), ifm.at(1, 2, 2));
}

TEST(Im2colLower, PaddingProducesZeros) {
  Tensord ifm = Tensord::feature_map(1, 2, 2);
  ifm.fill(5.0);
  ConvConfig config;
  config.pad_w = 1;
  config.pad_h = 1;
  const Tensord matrix = im2col_lower(ifm, 3, 3, config);
  ASSERT_EQ(matrix.shape(), (Shape4{1, 1, 9, 4}));
  // Window at (0,0) (padded): top-left element is padding.
  EXPECT_EQ(matrix.at(0, 0, 0, 0), 0.0);
  EXPECT_EQ(matrix.at(0, 0, 4, 0), 5.0);  // center lands on a real pixel
}

TEST(Im2colConv, MatchesDirectConvExactly) {
  Rng rng(77);
  Tensord ifm = Tensord::feature_map(3, 7, 6);
  Tensord w = Tensord::weights(5, 3, 3, 3);
  fill_random_int(ifm, rng, 4);
  fill_random_int(w, rng, 4);
  const Tensord direct = conv2d_direct(ifm, w);
  const Tensord lowered = conv2d_im2col(ifm, w);
  EXPECT_TRUE(exactly_equal(direct, lowered));
}

struct Im2colCase {
  Dim ih, iw, k, ic, oc, stride, pad;
};

class Im2colEquivalence : public ::testing::TestWithParam<Im2colCase> {};

TEST_P(Im2colEquivalence, AgreesWithDirect) {
  const Im2colCase& c = GetParam();
  Rng rng(1000 + static_cast<std::uint64_t>(c.ih * 31 + c.k));
  Tensord ifm = Tensord::feature_map(c.ic, c.ih, c.iw);
  Tensord w = Tensord::weights(c.oc, c.ic, c.k, c.k);
  fill_random_int(ifm, rng, 3);
  fill_random_int(w, rng, 3);
  ConvConfig config;
  config.stride_w = c.stride;
  config.stride_h = c.stride;
  config.pad_w = c.pad;
  config.pad_h = c.pad;
  const Tensord direct = conv2d_direct(ifm, w, config);
  EXPECT_TRUE(exactly_equal(direct, conv2d_im2col(ifm, w, config)));
  // Every registered execution backend must agree bitwise on the same
  // integer tensors -- the registry's core contract.
  const BackendRegistry& registry = BackendRegistry::instance();
  for (const std::string& name : registry.names()) {
    EXPECT_TRUE(exactly_equal(
        direct, registry.get(name).conv2d(ifm, w, config, nullptr)))
        << "backend " << name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Im2colEquivalence,
    ::testing::Values(Im2colCase{5, 5, 3, 1, 1, 1, 0},
                      Im2colCase{8, 8, 3, 4, 8, 1, 0},
                      Im2colCase{7, 9, 3, 2, 3, 1, 1},
                      Im2colCase{9, 9, 3, 2, 2, 2, 0},
                      Im2colCase{6, 6, 5, 3, 2, 1, 2},
                      Im2colCase{10, 7, 1, 3, 4, 1, 0},
                      Im2colCase{12, 12, 7, 1, 2, 2, 3}));

}  // namespace
}  // namespace vwsdk
