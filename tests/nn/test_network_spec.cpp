#include "nn/network_spec.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/error.h"
#include "core/grouped_conv.h"
#include "core/serialize.h"
#include "nn/model_zoo.h"

namespace vwsdk {
namespace {

const ArrayGeometry k512x512{512, 512};

/// Decisions and totals of `network` under vw-sdk (the round-trip
/// equality payload).
NetworkMappingResult vw_result(const Network& network) {
  return optimize_network(*make_mapper("vw-sdk"), network, k512x512);
}

void expect_identical_results(const NetworkMappingResult& a,
                              const NetworkMappingResult& b) {
  ASSERT_EQ(a.layers.size(), b.layers.size());
  EXPECT_EQ(a.network_name, b.network_name);
  for (std::size_t i = 0; i < a.layers.size(); ++i) {
    EXPECT_EQ(a.layers[i].layer, b.layers[i].layer);
    EXPECT_EQ(a.layers[i].decision, b.layers[i].decision);
  }
  EXPECT_EQ(a.total_cycles(), b.total_cycles());
}

TEST(NetworkSpec, JsonRoundTripsEveryZooNetwork) {
  for (const std::string& name : model_names()) {
    SCOPED_TRACE(name);
    const Network original = model_by_name(name);
    const NetworkSpec parsed =
        parse_network_spec_json(to_spec_json(original, "512x512"));
    EXPECT_EQ(parsed.array, "512x512");
    expect_identical_results(vw_result(original),
                             vw_result(parsed.network));
  }
}

TEST(NetworkSpec, CsvRoundTripsEveryZooNetwork) {
  for (const std::string& name : model_names()) {
    SCOPED_TRACE(name);
    const Network original = model_by_name(name);
    const NetworkSpec parsed =
        parse_network_spec_csv(to_spec_csv(original, "256x128"));
    EXPECT_EQ(parsed.array, "256x128");
    expect_identical_results(vw_result(original),
                             vw_result(parsed.network));
  }
}

TEST(NetworkSpec, JsonParsesAllLayerFields) {
  const NetworkSpec spec = parse_network_spec_json(R"({
    "name": "full",
    "array": "128x64",
    "layers": [
      {"name": "c1", "image": [20, 10], "kernel": [5, 3],
       "ic": 4, "oc": 8, "stride": 2, "pad": [1, 0], "groups": 2}
    ]
  })");
  ASSERT_EQ(spec.network.layer_count(), 1);
  const ConvLayerDesc& layer = spec.network.layer(0);
  EXPECT_EQ(layer.name, "c1");
  EXPECT_EQ(layer.ifm_w, 20);
  EXPECT_EQ(layer.ifm_h, 10);
  EXPECT_EQ(layer.kernel_w, 5);
  EXPECT_EQ(layer.kernel_h, 3);
  EXPECT_EQ(layer.in_channels, 4);
  EXPECT_EQ(layer.out_channels, 8);
  EXPECT_EQ(layer.config.stride_w, 2);
  EXPECT_EQ(layer.config.stride_h, 2);
  EXPECT_EQ(layer.config.pad_w, 1);
  EXPECT_EQ(layer.config.pad_h, 0);
  EXPECT_EQ(layer.groups, 2);
  EXPECT_EQ(spec.array, "128x64");
}

TEST(NetworkSpec, DefaultsApplyWhenOmitted) {
  const NetworkSpec spec = parse_network_spec_json(
      R"({"layers": [{"image": 8, "kernel": 3, "ic": 2, "oc": 4}]})");
  EXPECT_EQ(spec.network.name(), "network");
  EXPECT_FALSE(spec.has_array());
  const ConvLayerDesc& layer = spec.network.layer(0);
  EXPECT_EQ(layer.name, "conv1");
  EXPECT_EQ(layer.config.stride_w, 1);
  EXPECT_EQ(layer.config.pad_w, 0);
  EXPECT_EQ(layer.groups, 1);
}

TEST(NetworkSpec, CsvDirectivesAndOptionalColumns) {
  const NetworkSpec spec = parse_network_spec_csv(
      "# a plain comment, ignored\n"
      "# network: csv-net\n"
      "# array: 64x32\n"
      "image,kernel,ic,oc,groups\n"
      "16,3,4,8,1\n"
      "14x7,3x1,8,8,8\n");
  EXPECT_EQ(spec.network.name(), "csv-net");
  EXPECT_EQ(spec.array, "64x32");
  ASSERT_EQ(spec.network.layer_count(), 2);
  EXPECT_EQ(spec.network.layer(0).name, "conv1");
  EXPECT_EQ(spec.network.layer(1).ifm_w, 14);
  EXPECT_EQ(spec.network.layer(1).ifm_h, 7);
  EXPECT_EQ(spec.network.layer(1).kernel_h, 1);
  EXPECT_EQ(spec.network.layer(1).groups, 8);
}

TEST(NetworkSpec, AwkwardLayerNamesSurviveBothRoundTrips) {
  // '#'-leading names collide with the CSV comment syntax (the exporter
  // must quote them); tabs exercise the JSON control-character escaping.
  Network net("awkward");
  ConvLayerDesc layer = make_conv_layer("#1", 8, 3, 2, 4);
  net.add_layer(layer);
  layer.name = "tab\tname";
  net.add_layer(layer);

  const NetworkSpec from_csv = parse_network_spec_csv(to_spec_csv(net));
  ASSERT_EQ(from_csv.network.layer_count(), 2);
  EXPECT_EQ(from_csv.network.layer(0).name, "#1");

  const NetworkSpec from_json = parse_network_spec_json(to_spec_json(net));
  ASSERT_EQ(from_json.network.layer_count(), 2);
  EXPECT_EQ(from_json.network.layer(1).name, "tab\tname");

  // Line breaks are unrepresentable in the line-based CSV dialect: the
  // exporter must refuse them (the JSON round trip above handles them).
  layer.name = "multi\nline";
  Network broken("nl");
  broken.add_layer(layer);
  EXPECT_THROW(to_spec_csv(broken), InvalidArgument);
  // Surrounding whitespace would be trimmed away on re-parse, silently
  // renaming the layer -- the exporter must refuse that too.
  layer.name = " padded ";
  Network padded("ws");
  padded.add_layer(layer);
  EXPECT_THROW(to_spec_csv(padded), InvalidArgument);
  EXPECT_EQ(parse_network_spec_json(to_spec_json(broken))
                .network.layer(0)
                .name,
            "multi\nline");
}

TEST(NetworkSpec, SniffSelectsFormat) {
  EXPECT_EQ(parse_network_spec(
                R"(  {"layers": [{"image": 8, "kernel": 3,
                     "ic": 2, "oc": 4}]})")
                .network.layer_count(),
            1);
  EXPECT_EQ(parse_network_spec("image,kernel,ic,oc\n8,3,2,4\n")
                .network.layer_count(),
            1);
}

TEST(NetworkSpec, GroupedLayerCostsGroupsTimesSubConv) {
  // A depthwise layer must cost G x the per-group sub-convolution and
  // match the established grouped-conv path (core/grouped_conv.h).
  const NetworkSpec spec = parse_network_spec_json(R"({
    "layers": [{"image": 30, "kernel": 3, "ic": 16, "oc": 16,
                "groups": 16}]})");
  const NetworkMappingResult result = vw_result(spec.network);
  const GroupedConvShape grouped{ConvShape::square(30, 3, 16, 16), 16};
  const GroupedDecision reference =
      map_grouped(*make_mapper("vw-sdk"), grouped, k512x512);
  EXPECT_EQ(result.layers[0].decision.cost.total,
            reference.per_group.cost.total);
  EXPECT_EQ(result.layers[0].cycles(), reference.total_cycles);
  EXPECT_EQ(result.total_cycles(), reference.total_cycles);
}

TEST(NetworkSpec, MalformedJsonSpecsThrow) {
  // Syntax error.
  EXPECT_THROW(parse_network_spec_json("{"), InvalidArgument);
  // Wrong top-level type.
  EXPECT_THROW(parse_network_spec_json("[1,2]"), InvalidArgument);
  // Unknown top-level key.
  EXPECT_THROW(parse_network_spec_json(
                   R"({"layerz": [{"image": 8, "kernel": 3,
                       "ic": 2, "oc": 4}]})"),
               InvalidArgument);
  // Missing layers.
  EXPECT_THROW(parse_network_spec_json(R"({"name": "x"})"),
               InvalidArgument);
  // Empty layers.
  EXPECT_THROW(parse_network_spec_json(R"({"layers": []})"),
               InvalidArgument);
  // Missing required layer key.
  EXPECT_THROW(parse_network_spec_json(
                   R"({"layers": [{"image": 8, "kernel": 3, "ic": 2}]})"),
               InvalidArgument);
  // Unknown layer key (typo guard).
  EXPECT_THROW(parse_network_spec_json(
                   R"({"layers": [{"image": 8, "kernel": 3, "ic": 2,
                       "oc": 4, "striide": 2}]})"),
               InvalidArgument);
  // Non-integral dimension.
  EXPECT_THROW(parse_network_spec_json(
                   R"({"layers": [{"image": 8.5, "kernel": 3, "ic": 2,
                       "oc": 4}]})"),
               InvalidArgument);
  // Zero/negative dimensions.
  EXPECT_THROW(parse_network_spec_json(
                   R"({"layers": [{"image": 0, "kernel": 3, "ic": 2,
                       "oc": 4}]})"),
               InvalidArgument);
  // Kernel larger than image (layer validation).
  EXPECT_THROW(parse_network_spec_json(
                   R"({"layers": [{"image": 2, "kernel": 3, "ic": 2,
                       "oc": 4}]})"),
               InvalidArgument);
  // Groups not dividing the channels.
  EXPECT_THROW(parse_network_spec_json(
                   R"({"layers": [{"image": 8, "kernel": 3, "ic": 6,
                       "oc": 4, "groups": 4}]})"),
               InvalidArgument);
  // Malformed extent pair.
  EXPECT_THROW(parse_network_spec_json(
                   R"({"layers": [{"image": [8, 8, 8], "kernel": 3,
                       "ic": 2, "oc": 4}]})"),
               InvalidArgument);
}

TEST(NetworkSpec, MalformedCsvSpecsThrow) {
  // No header / no rows.
  EXPECT_THROW(parse_network_spec_csv(""), InvalidArgument);
  EXPECT_THROW(parse_network_spec_csv("image,kernel,ic,oc\n"),
               InvalidArgument);
  // Unknown column.
  EXPECT_THROW(
      parse_network_spec_csv("image,kernel,ic,oc,colour\n8,3,2,4,red\n"),
      InvalidArgument);
  // Duplicate column (the last occurrence must not silently win).
  EXPECT_THROW(
      parse_network_spec_csv("image,image,kernel,ic,oc\n8,16,3,2,4\n"),
      InvalidArgument);
  // Missing required column.
  EXPECT_THROW(parse_network_spec_csv("image,kernel,ic\n8,3,2\n"),
               InvalidArgument);
  // Ragged row.
  EXPECT_THROW(parse_network_spec_csv("image,kernel,ic,oc\n8,3,2\n"),
               InvalidArgument);
  // Garbage cell.
  EXPECT_THROW(parse_network_spec_csv("image,kernel,ic,oc\n8,three,2,4\n"),
               InvalidArgument);
  // Bad extent cell.
  EXPECT_THROW(
      parse_network_spec_csv("image,kernel,ic,oc\n8x4x2,3,2,4\n"),
      InvalidArgument);
}

TEST(NetworkSpec, LoadDispatchesOnExtensionAndReportsMissingFiles) {
  const std::string dir = ::testing::TempDir();
  const std::string json_path = dir + "/spec_test.json";
  {
    std::ofstream os(json_path);
    os << to_spec_json(lenet5(), "128x128");
  }
  const NetworkSpec loaded = load_network_spec(json_path);
  EXPECT_EQ(loaded.array, "128x128");
  expect_identical_results(vw_result(lenet5()),
                           vw_result(loaded.network));
  std::remove(json_path.c_str());

  EXPECT_THROW(load_network_spec(dir + "/definitely_missing.json"),
               NotFound);

  // Parse errors surface the file path.
  const std::string bad_path = dir + "/spec_bad.json";
  {
    std::ofstream os(bad_path);
    os << "{broken";
  }
  try {
    load_network_spec(bad_path);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("spec_bad.json"),
              std::string::npos);
  }
  std::remove(bad_path.c_str());
}

TEST(NetworkSpec, ResolvePrefersZooThenFile) {
  const NetworkSpec zoo = resolve_network_spec("vgg13");
  EXPECT_EQ(zoo.network.name(), "VGG-13");
  EXPECT_FALSE(zoo.has_array());

  try {
    resolve_network_spec("neither-a-model-nor-a-file");
    FAIL() << "expected NotFound";
  } catch (const NotFound& e) {
    // The message must name both interpretations for the CLI user.
    const std::string what = e.what();
    EXPECT_NE(what.find("model-zoo"), std::string::npos);
    EXPECT_NE(what.find("spec file"), std::string::npos);
  }
}

}  // namespace
}  // namespace vwsdk
