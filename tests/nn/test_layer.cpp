#include "nn/layer.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vwsdk {
namespace {

TEST(ConvLayerDesc, FactoryBuildsPaperStyleLayer) {
  const ConvLayerDesc layer = make_conv_layer("conv5", 56, 3, 128, 256);
  EXPECT_EQ(layer.name, "conv5");
  EXPECT_EQ(layer.ifm_w, 56);
  EXPECT_EQ(layer.kernel_h, 3);
  EXPECT_EQ(layer.in_channels, 128);
  EXPECT_EQ(layer.out_channels, 256);
  EXPECT_EQ(layer.config.stride_w, 1);
  EXPECT_EQ(layer.config.pad_w, 0);
}

TEST(ConvLayerDesc, OutputExtents) {
  const ConvLayerDesc layer = make_conv_layer("l", 56, 3, 8, 8);
  EXPECT_EQ(layer.ofm_w(), 54);
  EXPECT_EQ(layer.ofm_h(), 54);
  EXPECT_EQ(layer.num_windows(), 54 * 54);
}

TEST(ConvLayerDesc, WeightCount) {
  const ConvLayerDesc layer = make_conv_layer("l", 14, 3, 512, 512);
  EXPECT_EQ(layer.weight_count(), 3LL * 3 * 512 * 512);
}

TEST(ConvLayerDesc, ValidationCatchesEachField) {
  ConvLayerDesc layer = make_conv_layer("ok", 8, 3, 4, 4);
  layer.ifm_w = 0;
  EXPECT_THROW(layer.validate(), InvalidArgument);
  layer = make_conv_layer("ok", 8, 3, 4, 4);
  layer.kernel_h = -1;
  EXPECT_THROW(layer.validate(), InvalidArgument);
  layer = make_conv_layer("ok", 8, 3, 4, 4);
  layer.in_channels = 0;
  EXPECT_THROW(layer.validate(), InvalidArgument);
  layer = make_conv_layer("ok", 8, 3, 4, 4);
  layer.config.stride_w = 0;
  EXPECT_THROW(layer.validate(), InvalidArgument);
  layer = make_conv_layer("ok", 8, 3, 4, 4);
  layer.config.pad_h = -1;
  EXPECT_THROW(layer.validate(), InvalidArgument);
}

TEST(ConvLayerDesc, KernelLargerThanInputRejected) {
  EXPECT_THROW(make_conv_layer("bad", 4, 5, 1, 1), InvalidArgument);
  // ... unless padding makes up for it.
  ConvLayerDesc layer;
  layer.name = "padded";
  layer.ifm_w = 4;
  layer.ifm_h = 4;
  layer.kernel_w = 5;
  layer.kernel_h = 5;
  layer.in_channels = 1;
  layer.out_channels = 1;
  layer.config.pad_w = 1;
  layer.config.pad_h = 1;
  EXPECT_NO_THROW(layer.validate());
}

TEST(ConvLayerDesc, ToStringIsInformative) {
  const ConvLayerDesc layer = make_conv_layer("conv1", 224, 3, 3, 64);
  EXPECT_EQ(layer.to_string(), "conv1: 224x224, 3x3x3x64");
}

TEST(ConvLayerDesc, StridedOutputExtents) {
  ConvLayerDesc layer = make_conv_layer("s2", 112, 7, 3, 64);
  layer.config.stride_w = 2;
  layer.config.stride_h = 2;
  layer.config.pad_w = 3;
  layer.config.pad_h = 3;
  EXPECT_EQ(layer.ofm_w(), 56);
  EXPECT_EQ(layer.ofm_h(), 56);
}

}  // namespace
}  // namespace vwsdk
