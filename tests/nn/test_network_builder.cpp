#include "nn/network_builder.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vwsdk {
namespace {

TEST(NetworkBuilder, TracksSizesThroughConvAndPool) {
  NetworkBuilder builder("net", 32, 3);
  builder.conv(3, 16, Padding::kSame);
  EXPECT_EQ(builder.current_size(), 32);
  EXPECT_EQ(builder.current_channels(), 16);
  builder.max_pool(2, 2);
  EXPECT_EQ(builder.current_size(), 16);
  builder.conv(3, 32, Padding::kValid);
  EXPECT_EQ(builder.current_size(), 14);
  const Network net = builder.build();
  ASSERT_EQ(net.layer_count(), 2);
  EXPECT_EQ(net.layer(0).ifm_w, 32);
  EXPECT_EQ(net.layer(0).config.pad_w, 1);   // kSame for 3x3
  EXPECT_EQ(net.layer(1).ifm_w, 16);
  EXPECT_EQ(net.layer(1).config.pad_w, 0);
}

TEST(NetworkBuilder, StridedConv) {
  NetworkBuilder builder("net", 224, 3);
  builder.conv(7, 64, Padding::kSame, 2);
  EXPECT_EQ(builder.current_size(), 112);
  const Network net = builder.build();
  EXPECT_EQ(net.layer(0).config.stride_w, 2);
  EXPECT_EQ(net.layer(0).config.pad_w, 3);
}

TEST(NetworkBuilder, AutoNamesLayersSequentially) {
  const Network net = NetworkBuilder("n", 16, 1)
                          .conv(3, 2)
                          .conv(3, 4)
                          .build();
  EXPECT_EQ(net.layer(0).name, "conv1");
  EXPECT_EQ(net.layer(1).name, "conv2");
}

TEST(NetworkBuilder, SamePaddingRequiresOddKernel) {
  NetworkBuilder builder("n", 16, 1);
  EXPECT_THROW(builder.conv(2, 4, Padding::kSame), InvalidArgument);
}

TEST(NetworkBuilder, KernelLargerThanCurrentSizeRejected) {
  NetworkBuilder builder("n", 4, 1);
  EXPECT_THROW(builder.conv(5, 4), InvalidArgument);
}

TEST(NetworkBuilder, PoolLargerThanCurrentSizeRejected) {
  NetworkBuilder builder("n", 4, 1);
  EXPECT_THROW(builder.max_pool(5, 5), InvalidArgument);
}

TEST(NetworkBuilder, CannotBuildEmptyOrReuse) {
  NetworkBuilder empty("n", 8, 1);
  EXPECT_THROW(empty.build(), InvalidArgument);

  NetworkBuilder once("n", 8, 1);
  once.conv(3, 2);
  (void)once.build();
  EXPECT_THROW(once.build(), InvalidArgument);
  EXPECT_THROW(once.conv(3, 2), InvalidArgument);
}

TEST(NetworkBuilder, VggStylePrefixReproducesZooDims) {
  // The first four VGG-13 conv shapes via the builder (kSame + pools)
  // must match the model zoo's hard-coded Table-I dims.
  const Network built = NetworkBuilder("vgg-prefix", 224, 3)
                            .conv(3, 64, Padding::kSame)
                            .conv(3, 64, Padding::kSame)
                            .max_pool(2, 2)
                            .conv(3, 128, Padding::kSame)
                            .conv(3, 128, Padding::kSame)
                            .build();
  EXPECT_EQ(built.layer(1).ifm_w, 224);
  EXPECT_EQ(built.layer(2).ifm_w, 112);
  EXPECT_EQ(built.layer(3).ifm_w, 112);
  EXPECT_EQ(built.layer(3).in_channels, 128);
}

}  // namespace
}  // namespace vwsdk
