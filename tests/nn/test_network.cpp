#include "nn/network.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vwsdk {
namespace {

Network two_layer() {
  Network net("tiny");
  net.add_layer(make_conv_layer("conv1", 8, 3, 1, 4));
  net.add_layer(make_conv_layer("conv2", 6, 3, 4, 8));
  return net;
}

TEST(Network, AddAndAccess) {
  const Network net = two_layer();
  EXPECT_EQ(net.name(), "tiny");
  EXPECT_EQ(net.layer_count(), 2);
  EXPECT_FALSE(net.empty());
  EXPECT_EQ(net.layer(0).name, "conv1");
  EXPECT_EQ(net.layer(1).in_channels, 4);
}

TEST(Network, LayerByName) {
  const Network net = two_layer();
  EXPECT_EQ(net.layer_by_name("conv2").out_channels, 8);
  EXPECT_THROW(net.layer_by_name("conv9"), NotFound);
}

TEST(Network, IndexOutOfRangeThrows) {
  const Network net = two_layer();
  EXPECT_THROW(net.layer(2), InvalidArgument);
  EXPECT_THROW(net.layer(-1), InvalidArgument);
}

TEST(Network, DuplicateNameRejected) {
  Network net("dup");
  net.add_layer(make_conv_layer("conv1", 8, 3, 1, 4));
  EXPECT_THROW(net.add_layer(make_conv_layer("conv1", 8, 3, 1, 4)),
               InvalidArgument);
}

TEST(Network, InvalidLayerRejectedAtAdd) {
  Network net("bad");
  ConvLayerDesc layer = make_conv_layer("x", 8, 3, 1, 4);
  layer.out_channels = 0;
  EXPECT_THROW(net.add_layer(layer), InvalidArgument);
}

TEST(Network, TotalWeights) {
  const Network net = two_layer();
  EXPECT_EQ(net.total_weights(), 3 * 3 * 1 * 4 + 3 * 3 * 4 * 8);
}

TEST(Network, ToStringListsLayers) {
  const std::string text = two_layer().to_string();
  EXPECT_NE(text.find("tiny"), std::string::npos);
  EXPECT_NE(text.find("conv1"), std::string::npos);
  EXPECT_NE(text.find("conv2"), std::string::npos);
}

}  // namespace
}  // namespace vwsdk
