#include "nn/model_zoo.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vwsdk {
namespace {

TEST(ModelZoo, Vgg13MatchesTableI) {
  const Network net = vgg13_paper();
  EXPECT_EQ(net.name(), "VGG-13");
  ASSERT_EQ(net.layer_count(), 10);
  // Spot-check the rows of Table I.
  EXPECT_EQ(net.layer(0).ifm_w, 224);
  EXPECT_EQ(net.layer(0).in_channels, 3);
  EXPECT_EQ(net.layer(0).out_channels, 64);
  EXPECT_EQ(net.layer(4).ifm_w, 56);
  EXPECT_EQ(net.layer(4).in_channels, 128);
  EXPECT_EQ(net.layer(4).out_channels, 256);
  EXPECT_EQ(net.layer(9).ifm_w, 14);
  EXPECT_EQ(net.layer(9).in_channels, 512);
  // All VGG kernels are 3x3 stride 1.
  for (const ConvLayerDesc& layer : net.layers()) {
    EXPECT_EQ(layer.kernel_w, 3);
    EXPECT_EQ(layer.kernel_h, 3);
    EXPECT_EQ(layer.config.stride_w, 1);
  }
}

TEST(ModelZoo, Resnet18MatchesTableI) {
  const Network net = resnet18_paper();
  ASSERT_EQ(net.layer_count(), 5);
  EXPECT_EQ(net.layer(0).ifm_w, 112);
  EXPECT_EQ(net.layer(0).kernel_w, 7);
  EXPECT_EQ(net.layer(0).in_channels, 3);
  EXPECT_EQ(net.layer(1).ifm_w, 56);
  EXPECT_EQ(net.layer(2).ifm_w, 28);
  EXPECT_EQ(net.layer(3).ifm_w, 14);
  EXPECT_EQ(net.layer(4).ifm_w, 7);
  EXPECT_EQ(net.layer(4).in_channels, 512);
  EXPECT_EQ(net.layer(4).out_channels, 512);
}

TEST(ModelZoo, ExtensionModelsAreWellFormed) {
  EXPECT_EQ(vgg16().layer_count(), 13);
  EXPECT_EQ(alexnet().layer_count(), 5);
  EXPECT_EQ(lenet5().layer_count(), 2);
  EXPECT_GE(stress_mix().layer_count(), 5);
}

TEST(ModelZoo, StressMixIncludesNonSquareKernel) {
  const Network net = stress_mix();
  const ConvLayerDesc& rect = net.layer_by_name("rect_kernel");
  EXPECT_NE(rect.kernel_w, rect.kernel_h);
}

TEST(ModelZoo, LookupByNameIsCaseAndDashInsensitive) {
  EXPECT_EQ(model_by_name("vgg13").name(), "VGG-13");
  EXPECT_EQ(model_by_name("VGG-13").name(), "VGG-13");
  EXPECT_EQ(model_by_name("ResNet18").name(), "ResNet-18");
  EXPECT_EQ(model_by_name(" resnet-18 ").name(), "ResNet-18");
}

TEST(ModelZoo, UnknownNameThrowsWithSuggestions) {
  try {
    model_by_name("vgg99");
    FAIL() << "expected NotFound";
  } catch (const NotFound& e) {
    EXPECT_NE(std::string(e.what()).find("vgg13"), std::string::npos);
  }
}

TEST(ModelZoo, NamesListResolves) {
  for (const std::string& name : model_names()) {
    EXPECT_NO_THROW(model_by_name(name)) << name;
  }
}

}  // namespace
}  // namespace vwsdk
