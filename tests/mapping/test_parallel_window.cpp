#include "mapping/parallel_window.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/math_util.h"

namespace vwsdk {
namespace {

const ConvShape kLayer = ConvShape::square(56, 3, 128, 256);

TEST(ParallelWindow, BasicProperties) {
  const ParallelWindow pw{4, 3};
  EXPECT_EQ(pw.area(), 12);
  EXPECT_EQ(pw.to_string(), "4x3");
  EXPECT_EQ(kernel_window(kLayer), (ParallelWindow{3, 3}));
}

TEST(ParallelWindow, Admissibility) {
  EXPECT_TRUE(window_admissible(kLayer, {3, 3}));
  EXPECT_TRUE(window_admissible(kLayer, {56, 56}));
  EXPECT_FALSE(window_admissible(kLayer, {2, 3}));   // smaller than kernel
  EXPECT_FALSE(window_admissible(kLayer, {57, 3}));  // larger than IFM
}

TEST(ParallelWindow, StrideAlignmentGovernsAdmissibility) {
  ConvShape strided = kLayer;
  strided.stride_w = 2;
  strided.stride_h = 2;
  EXPECT_TRUE(window_admissible(strided, {3, 3}));
  EXPECT_TRUE(window_admissible(strided, {5, 3}));   // (5-3)%2 == 0
  EXPECT_FALSE(window_admissible(strided, {4, 3}));  // (4-3)%2 == 1
}

TEST(ParallelWindow, WindowsInPw) {
  EXPECT_EQ(windows_in_pw_w(kLayer, {4, 3}), 2);
  EXPECT_EQ(windows_in_pw_h(kLayer, {4, 3}), 1);
  EXPECT_EQ(windows_in_pw(kLayer, {4, 3}), 2);
  EXPECT_EQ(windows_in_pw(kLayer, {4, 4}), 4);
  EXPECT_EQ(windows_in_pw(kLayer, {3, 3}), 1);  // im2col degenerate case
  EXPECT_THROW(windows_in_pw(kLayer, {2, 2}), InvalidArgument);
}

TEST(ParallelWindow, NumParallelWindowsPaperValues) {
  // VGG-13 conv5 (56x56): 4x3 window -> 27 x 54 = 1458 (paper Table I
  // implies this through its total); 4x4 -> 27^2 = 729.
  EXPECT_EQ(num_parallel_windows(kLayer, {4, 3}), 27 * 54);
  EXPECT_EQ(num_parallel_windows(kLayer, {4, 4}), 27 * 27);
  // ResNet-18 conv1: 112x112, 7x7 kernel, 10x8 window -> 27 x 53.
  const ConvShape conv1 = ConvShape::square(112, 7, 3, 64);
  EXPECT_EQ(num_parallel_windows_w(conv1, {10, 8}), 27);
  EXPECT_EQ(num_parallel_windows_h(conv1, {10, 8}), 53);
  EXPECT_EQ(num_parallel_windows(conv1, {10, 8}), 27 * 53);
}

TEST(ParallelWindow, KernelWindowCountsEveryWindow) {
  EXPECT_EQ(num_parallel_windows(kLayer, kernel_window(kLayer)),
            kLayer.num_windows());
}

// The paper's literal Eq. (3) -- ceil((I-PW)/(PW-K+1)) + 1 -- must equal
// our ceil(windows / windows-per-PW) formulation for stride 1.
class Eq3Identity : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(Eq3Identity, LiteralFormEqualsOurs) {
  const auto [image, kernel] = GetParam();
  const ConvShape shape = ConvShape::square(image, kernel, 8, 8);
  for (Dim pw = kernel; pw <= image; ++pw) {
    const Count literal =
        ceil_div(image - pw, pw - kernel + 1) + 1;  // paper's Eq. (3)
    EXPECT_EQ(num_parallel_windows_w(shape, {pw, static_cast<Dim>(kernel)}),
              literal)
        << "image=" << image << " kernel=" << kernel << " pw=" << pw;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Eq3Identity,
    ::testing::Values(std::make_pair(7, 3), std::make_pair(14, 3),
                      std::make_pair(28, 3), std::make_pair(56, 3),
                      std::make_pair(112, 7), std::make_pair(224, 3),
                      std::make_pair(13, 5), std::make_pair(9, 1)));

// Windows covered by the parallel-window grid always reach every window.
TEST(ParallelWindow, GridAlwaysCoversAllWindows) {
  for (Dim pw_w = 3; pw_w <= 14; ++pw_w) {
    for (Dim pw_h = 3; pw_h <= 14; ++pw_h) {
      const ConvShape shape = ConvShape::square(14, 3, 4, 4);
      const Count per_w = windows_in_pw_w(shape, {pw_w, pw_h});
      const Count groups = num_parallel_windows_w(shape, {pw_w, pw_h});
      EXPECT_GE(groups * per_w, shape.windows_w());
    }
  }
}

}  // namespace
}  // namespace vwsdk
