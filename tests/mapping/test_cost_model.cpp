#include "mapping/cost_model.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "common/math_util.h"

namespace vwsdk {
namespace {

const ArrayGeometry k512x512{512, 512};
const ArrayGeometry k512x256{512, 256};

// ------------------------------------------------------------------
// Tiled channels, Eqs. (4) and (6).
// ------------------------------------------------------------------

TEST(TiledChannels, PaperExamples) {
  // Fig. 7(a)-style values: IC_t = floor(rows / PW area), clamped to IC.
  const ConvShape conv5 = ConvShape::square(56, 3, 128, 256);
  EXPECT_EQ(tiled_ic(conv5, k512x512, {4, 3}), 42);   // floor(512/12)
  EXPECT_EQ(tiled_ic(conv5, k512x512, {4, 4}), 32);   // floor(512/16)
  EXPECT_EQ(tiled_ic(conv5, k512x512, {3, 3}), 56);   // floor(512/9)
  // Clamped to the layer's IC.
  const ConvShape conv1 = ConvShape::square(224, 3, 3, 64);
  EXPECT_EQ(tiled_ic(conv1, k512x512, {10, 3}), 3);
}

TEST(TiledChannels, OcTiles) {
  const ConvShape conv5 = ConvShape::square(56, 3, 128, 256);
  EXPECT_EQ(tiled_oc(conv5, k512x512, {4, 3}), 256);  // floor(512/2) clamped
  EXPECT_EQ(tiled_oc(conv5, k512x512, {4, 4}), 128);  // floor(512/4)
  const ConvShape conv1 = ConvShape::square(224, 3, 3, 64);
  EXPECT_EQ(tiled_oc(conv1, k512x512, {10, 3}), 64);  // floor(512/8) clamped
}

TEST(TiledChannels, ZeroMeansInfeasible) {
  const ConvShape big = ConvShape::square(56, 3, 128, 256);
  // Window area 30*30=900 > 512 rows: not even one channel fits.
  EXPECT_EQ(tiled_ic(big, k512x512, {30, 30}), 0);
}

// ------------------------------------------------------------------
// im2col, Eq. (1) with N_WP = 1 (element-granular AR).
// ------------------------------------------------------------------

TEST(Im2colCost, Resnet18PerLayerValues) {
  // Hand-derived from Eq. (1); these five sum to the paper's implied
  // im2col total of 20041 (4.67x speedup for VW-SDK at 4294).
  struct Row {
    Dim image, kernel, ic, oc;
    Cycles expected;
  };
  const Row rows[] = {
      {112, 7, 3, 64, 11236},   // 106^2 x 1 x 1
      {56, 3, 64, 64, 5832},    // 54^2 x 2
      {28, 3, 128, 128, 2028},  // 26^2 x 3
      {14, 3, 256, 256, 720},   // 12^2 x 5
      {7, 3, 512, 512, 225},    // 25 x 9  (element-granular AR!)
  };
  Cycles total = 0;
  for (const Row& row : rows) {
    const ConvShape shape =
        ConvShape::square(row.image, row.kernel, row.ic, row.oc);
    const CycleCost cost = im2col_cost(shape, k512x512);
    EXPECT_TRUE(cost.feasible);
    EXPECT_EQ(cost.total, row.expected) << shape.to_string();
    total += cost.total;
  }
  EXPECT_EQ(total, 20041);
}

TEST(Im2colCost, ElementGranularityIsLoadBearing) {
  // ResNet-18 conv5: 9*512 = 4608 rows over 512 = exactly 9 AR cycles.
  // Channel-granular tiling would give ceil(512/56) = 10.
  const ConvShape conv5 = ConvShape::square(7, 3, 512, 512);
  const CycleCost cost = im2col_cost(conv5, k512x512);
  EXPECT_EQ(cost.ar_cycles, 9);
  EXPECT_EQ(cost.split, RowSplit::kElementGranular);
}

TEST(Im2colCost, AcCyclesFromOutputChannels) {
  const ConvShape shape = ConvShape::square(14, 3, 16, 2048);
  const CycleCost cost = im2col_cost(shape, k512x512);
  EXPECT_EQ(cost.ac_cycles, 4);  // ceil(2048/512)
  EXPECT_EQ(cost.total, 144 * 1 * 4);
}

TEST(Im2colCost, VGG13Layer1) {
  const ConvShape conv1 = ConvShape::square(224, 3, 3, 64);
  EXPECT_EQ(im2col_cost(conv1, k512x512).total, 49284);
}

// ------------------------------------------------------------------
// SDK cost, Eq. (1) with entire channels.
// ------------------------------------------------------------------

TEST(SdkCost, Resnet18Conv1With8x8Window) {
  const ConvShape conv1 = ConvShape::square(112, 7, 3, 64);
  const CycleCost cost = sdk_cost(conv1, k512x512, {8, 8});
  EXPECT_TRUE(cost.feasible);
  EXPECT_EQ(cost.n_parallel_windows, 53 * 53);
  EXPECT_EQ(cost.ar_cycles, 1);  // ceil(64*3/512)
  EXPECT_EQ(cost.ac_cycles, 1);  // ceil(64*4/512)
  EXPECT_EQ(cost.total, 2809);
}

TEST(SdkCost, RowSplitAllowsOversizedWindows) {
  // VGG-13 conv2: 4x4 window, 16*64 = 1024 rows -> AR = 2 on 512 rows.
  const ConvShape conv2 = ConvShape::square(224, 3, 64, 64);
  const CycleCost cost = sdk_cost(conv2, k512x512, {4, 4});
  EXPECT_EQ(cost.ar_cycles, 2);
  EXPECT_EQ(cost.ac_cycles, 1);
  EXPECT_EQ(cost.total, 111 * 111 * 2);  // 24642
}

TEST(SdkCost, InadmissibleWindowInfeasible) {
  const ConvShape conv1 = ConvShape::square(7, 3, 4, 4);
  const CycleCost cost = sdk_cost(conv1, k512x512, {8, 8});
  EXPECT_FALSE(cost.feasible);
}

// ------------------------------------------------------------------
// VW-SDK cost, Eq. (8).
// ------------------------------------------------------------------

TEST(VwCost, VGG13Conv5With4x3Window) {
  // The paper's flagship example: 4x3 window, IC_t = 42, OC_t = 256,
  // N_PW = 1458, AR = 4, AC = 1 -> 5832 cycles.
  const ConvShape conv5 = ConvShape::square(56, 3, 128, 256);
  const CycleCost cost = vw_cost(conv5, k512x512, {4, 3});
  EXPECT_TRUE(cost.feasible);
  EXPECT_EQ(cost.ic_t, 42);
  EXPECT_EQ(cost.oc_t, 256);
  EXPECT_EQ(cost.n_parallel_windows, 1458);
  EXPECT_EQ(cost.ar_cycles, 4);
  EXPECT_EQ(cost.ac_cycles, 1);
  EXPECT_EQ(cost.total, 5832);
}

TEST(VwCost, VGG13Conv5With4x4WindowTies) {
  const ConvShape conv5 = ConvShape::square(56, 3, 128, 256);
  const CycleCost cost = vw_cost(conv5, k512x512, {4, 4});
  EXPECT_EQ(cost.total, 5832);  // 729 * 4 * 2
  EXPECT_EQ(cost.ic_t, 32);
  EXPECT_EQ(cost.oc_t, 128);
}

TEST(VwCost, Resnet18Conv1With10x8Window) {
  const ConvShape conv1 = ConvShape::square(112, 7, 3, 64);
  const CycleCost cost = vw_cost(conv1, k512x512, {10, 8});
  EXPECT_EQ(cost.ic_t, 3);   // clamped: floor(512/80) = 6 > IC = 3
  EXPECT_EQ(cost.oc_t, 64);  // floor(512/8) = 64
  EXPECT_EQ(cost.ar_cycles, 1);
  EXPECT_EQ(cost.ac_cycles, 1);
  EXPECT_EQ(cost.total, 27 * 53);  // 1431
}

TEST(VwCost, InfeasibleWindowsReported) {
  const ConvShape conv5 = ConvShape::square(56, 3, 128, 256);
  EXPECT_FALSE(vw_cost(conv5, k512x512, {30, 30}).feasible);
  EXPECT_FALSE(vw_cost(conv5, k512x512, {2, 3}).feasible);
  // N_WP > cols: 56x3 window has 54 windows, OC_t = floor(512/54) = 9 > 0,
  // still feasible; push to all 54x54: N_WP = 54*54 = 2916 > 512 -> OC_t=0.
  EXPECT_FALSE(vw_cost(conv5, k512x512, {56, 56}).feasible);
}

// ------------------------------------------------------------------
// Fig. 5(a): the paper's worked example.  Array 512x256, kernel 3x3,
// IC = 42, OC = 96, IFM such that there are 4 windows (I = 4).
// im2col: 4 cycles; 4x3 window: 2 cycles; 4x4 window: 4 cycles.
// ------------------------------------------------------------------

TEST(CostModel, Fig5aWorkedExample) {
  const ConvShape example = ConvShape::square(4, 3, 42, 96);

  const CycleCost im2col = im2col_cost(example, k512x256);
  EXPECT_EQ(im2col.total, 4);  // 4 windows, 378 rows <= 512, 96 cols <= 256

  const CycleCost rect = vw_cost(example, k512x256, {4, 3});
  EXPECT_EQ(rect.total, 2);    // 504 rows fit, 192 cols fit: 2 PWs
  EXPECT_EQ(rect.ar_cycles, 1);
  EXPECT_EQ(rect.ac_cycles, 1);

  const CycleCost square = vw_cost(example, k512x256, {4, 4});
  EXPECT_EQ(square.total, 4);  // 672 rows -> AR 2; 384 cols -> AC 2; 1 PW
  EXPECT_EQ(square.ar_cycles, 2);
  EXPECT_EQ(square.ac_cycles, 2);
}

// ------------------------------------------------------------------
// SMD (sub-matrix duplication).
// ------------------------------------------------------------------

TEST(SmdCost, DuplicatesWhenSpacePermits) {
  // K^2*IC = 9*4 = 36 rows; OC = 8 cols.  512/36 = 14, 512/8 = 64 -> D=14.
  const ConvShape small = ConvShape::square(10, 3, 4, 8);
  const CycleCost cost = smd_cost(small, k512x512);
  EXPECT_EQ(cost.smd_duplicates, 14);
  EXPECT_EQ(cost.total, (64 + 13) / 14);  // ceil(64/14) = 5
  EXPECT_EQ(cost.ar_cycles, 1);
  EXPECT_EQ(cost.ac_cycles, 1);
}

TEST(SmdCost, DuplicatesCappedByWindows) {
  // Only 4 windows exist; never duplicate more than that.
  const ConvShape tiny = ConvShape::square(4, 3, 1, 1);
  const CycleCost cost = smd_cost(tiny, k512x512);
  EXPECT_LE(cost.smd_duplicates, 4);
  EXPECT_EQ(cost.total, ceil_div(4, cost.smd_duplicates));
}

TEST(SmdCost, FallsBackToIm2col) {
  // Big layer: one im2col matrix doesn't even fit -> D = 1, same as im2col.
  const ConvShape big = ConvShape::square(7, 3, 512, 512);
  const CycleCost smd = smd_cost(big, k512x512);
  const CycleCost base = im2col_cost(big, k512x512);
  EXPECT_EQ(smd.smd_duplicates, 1);
  EXPECT_EQ(smd.total, base.total);
}

TEST(SmdCost, ColumnLimited) {
  // Rows would allow 5 copies but columns only 2.
  const ConvShape shape = ConvShape::square(12, 3, 11, 250);
  // K^2*IC = 99; floor(512/99) = 5; floor(512/250) = 2.
  EXPECT_EQ(smd_cost(shape, k512x512).smd_duplicates, 2);
}

// ------------------------------------------------------------------
// Cross-model properties.
// ------------------------------------------------------------------

struct PropertyCase {
  Dim image, kernel, ic, oc, rows, cols;
};

class CostProperties : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(CostProperties, VwAtKernelWindowNeverBeatsIm2col) {
  // Element-granular row packing is at least as dense as channel tiles:
  // im2col cycles <= channel-granular kernel-window cycles.
  const PropertyCase& c = GetParam();
  const ConvShape shape = ConvShape::square(c.image, c.kernel, c.ic, c.oc);
  const ArrayGeometry geometry{c.rows, c.cols};
  const CycleCost kernel_vw =
      vw_cost(shape, geometry, {c.kernel, c.kernel});
  const CycleCost im2col = im2col_cost(shape, geometry);
  if (kernel_vw.feasible) {
    EXPECT_LE(im2col.total, kernel_vw.total);
  }
}

TEST_P(CostProperties, SmdNeverSlowerThanIm2col) {
  const PropertyCase& c = GetParam();
  const ConvShape shape = ConvShape::square(c.image, c.kernel, c.ic, c.oc);
  const ArrayGeometry geometry{c.rows, c.cols};
  EXPECT_LE(smd_cost(shape, geometry).total,
            im2col_cost(shape, geometry).total);
}

TEST_P(CostProperties, CycleBreakdownMultipliesOut) {
  const PropertyCase& c = GetParam();
  const ConvShape shape = ConvShape::square(c.image, c.kernel, c.ic, c.oc);
  const ArrayGeometry geometry{c.rows, c.cols};
  for (Dim w = c.kernel; w <= std::min<Dim>(c.image, c.kernel + 6); ++w) {
    for (Dim h = c.kernel; h <= std::min<Dim>(c.image, c.kernel + 6); ++h) {
      const CycleCost cost = vw_cost(shape, geometry, {w, h});
      if (cost.feasible) {
        EXPECT_EQ(cost.total,
                  cost.n_parallel_windows * cost.ar_cycles * cost.ac_cycles);
        EXPECT_GE(cost.ic_t, 1);
        EXPECT_GE(cost.oc_t, 1);
        EXPECT_LE(cost.window.area() * cost.ic_t, geometry.rows);
        EXPECT_LE(windows_in_pw(shape, cost.window) * cost.oc_t,
                  geometry.cols);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CostProperties,
    ::testing::Values(PropertyCase{7, 3, 512, 512, 512, 512},
                      PropertyCase{14, 3, 256, 256, 512, 512},
                      PropertyCase{28, 3, 128, 128, 256, 256},
                      PropertyCase{56, 3, 64, 64, 128, 128},
                      PropertyCase{112, 7, 3, 64, 512, 256},
                      PropertyCase{13, 5, 12, 24, 128, 256},
                      PropertyCase{10, 1, 8, 8, 64, 64},
                      PropertyCase{9, 3, 2, 2048, 512, 512}));

TEST(CycleCost, ToStringMentionsKeyFields) {
  const ConvShape conv5 = ConvShape::square(56, 3, 128, 256);
  const std::string text = vw_cost(conv5, k512x512, {4, 3}).to_string();
  EXPECT_NE(text.find("pw=4x3"), std::string::npos);
  EXPECT_NE(text.find("cycles=5832"), std::string::npos);
  EXPECT_NE(vw_cost(conv5, k512x512, {30, 30}).to_string().find("infeasible"),
            std::string::npos);
}

}  // namespace
}  // namespace vwsdk
