#include "mapping/objective.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/thread_pool.h"
#include "mapping/activity.h"

namespace vwsdk {
namespace {

const ArrayGeometry k512x512{512, 512};

ConvShape vgg13_conv5() { return ConvShape::square(56, 3, 128, 256); }

TEST(Objective, NamesUnitsAndLookup) {
  EXPECT_EQ(cycles_objective().name(), "cycles");
  EXPECT_EQ(energy_objective().name(), "energy");
  EXPECT_EQ(edp_objective().name(), "edp");
  EXPECT_EQ(cycles_objective().unit(), "cycles");
  EXPECT_EQ(energy_objective().unit(), "pJ");
  EXPECT_EQ(objective_names(),
            (std::vector<std::string>{"cycles", "energy", "edp"}));

  EXPECT_EQ(&objective_by_name("cycles"), &cycles_objective());
  EXPECT_EQ(&objective_by_name("  ENERGY "), &energy_objective());
  EXPECT_EQ(&objective_by_name("edp"), &edp_objective());
  EXPECT_THROW(objective_by_name("joules"), NotFound);
}

TEST(Objective, CyclesScoreIsTheCycleCount) {
  const CycleCost cost = vw_cost(vgg13_conv5(), k512x512, {4, 3});
  ASSERT_TRUE(cost.feasible);
  EXPECT_EQ(cycles_objective().score(vgg13_conv5(), k512x512, cost),
            static_cast<double>(cost.total));
}

TEST(Objective, BetterIsStrictlyLower) {
  // Strictness is the first-minimum tie-break: an equal score must NOT
  // replace the incumbent.
  const Objective& objective = cycles_objective();
  EXPECT_TRUE(objective.better(1.0, 2.0));
  EXPECT_FALSE(objective.better(2.0, 2.0));
  EXPECT_FALSE(objective.better(3.0, 2.0));
}

TEST(Objective, OnlyCyclesAdmitsTheCycleLowerBound) {
  EXPECT_TRUE(cycles_objective().cycle_lower_bound_admissible());
  EXPECT_FALSE(energy_objective().cycle_lower_bound_admissible());
  EXPECT_FALSE(edp_objective().cycle_lower_bound_admissible());
}

TEST(Objective, EnergyScoreMatchesAnalyticActivity) {
  const ConvShape shape = vgg13_conv5();
  const CycleCost cost = vw_cost(shape, k512x512, {4, 3});
  ASSERT_TRUE(cost.feasible);
  const EnergyParams defaults;
  EXPECT_DOUBLE_EQ(
      energy_objective().score(shape, k512x512, cost),
      analytic_activity(shape, k512x512, cost).energy_pj(defaults));
}

TEST(Objective, EdpScoreIsEnergyTimesLatency) {
  const ConvShape shape = vgg13_conv5();
  const CycleCost cost = vw_cost(shape, k512x512, {4, 3});
  ASSERT_TRUE(cost.feasible);
  const EnergyParams defaults;
  const EnergyReport activity = analytic_activity(shape, k512x512, cost);
  EXPECT_DOUBLE_EQ(edp_objective().score(shape, k512x512, cost),
                   activity.energy_pj(defaults) *
                       activity.latency_ns(defaults));
}

TEST(Objective, CustomParamsScaleTheScore) {
  const ConvShape shape = vgg13_conv5();
  const CycleCost cost = vw_cost(shape, k512x512, {4, 3});
  EnergyParams doubled;
  doubled.dac_pj_per_row *= 2.0;
  doubled.adc_pj_per_col *= 2.0;
  doubled.cell_pj_per_mac *= 2.0;
  const EnergyObjective base;
  const EnergyObjective scaled(doubled);
  EXPECT_DOUBLE_EQ(scaled.score(shape, k512x512, cost),
                   2.0 * base.score(shape, k512x512, cost));
  EXPECT_THROW(
      {
        EnergyParams bad;
        bad.adc_pj_per_col = -1.0;
        EnergyObjective rejected(bad);
      },
      InvalidArgument);
}

TEST(Objective, CacheKeyDistinguishesParameterizations) {
  // Same name, different constants -> different memoization identity;
  // identical constants -> identical identity (shared cache entries).
  EXPECT_EQ(cycles_objective().cache_key(), "cycles");
  const EnergyObjective defaults;
  EXPECT_EQ(defaults.cache_key(), energy_objective().cache_key());
  EnergyParams hot;
  hot.adc_pj_per_col *= 3.0;
  const EnergyObjective custom(hot);
  EXPECT_NE(custom.cache_key(), defaults.cache_key());
  EXPECT_NE(EdpObjective(hot).cache_key(), EdpObjective().cache_key());
  // The key still carries the name for debuggability.
  EXPECT_EQ(custom.cache_key().rfind("energy@", 0), 0u);
}

TEST(Objective, ScoreCostsMatchesSerialScoringAtAnyPoolSize) {
  const ConvShape shape = vgg13_conv5();
  const std::vector<ParallelWindow> windows =
      enumerate_windows(shape, /*include_kernel=*/true);
  const std::vector<CycleCost> costs =
      vw_costs(shape, k512x512, windows);
  for (const Objective* objective :
       {&cycles_objective(), &energy_objective(), &edp_objective()}) {
    std::vector<double> expected;
    for (const CycleCost& cost : costs) {
      expected.push_back(
          cost.feasible ? objective->score(shape, k512x512, cost) : 0.0);
    }
    for (const int threads : {1, 4}) {
      ThreadPool pool(threads);
      EXPECT_EQ(score_costs(*objective, shape, k512x512, costs, pool),
                expected)
          << objective->name() << " with " << threads << " threads";
    }
  }
}

TEST(Objective, CyclesAndEnergyDisagreeOnVgg13Conv5) {
  // The motivating nuance (bench_energy): VW-SDK's 4x3 window beats
  // im2col on cycles (5832 vs 8748) but LOSES on active-accounting
  // energy -- its channel-granular AR split is 4 vs im2col's
  // element-granular 3, one extra partial-sum conversion per output.
  const ConvShape shape = vgg13_conv5();
  const CycleCost windowed = vw_cost(shape, k512x512, {4, 3});
  const CycleCost fallback = im2col_cost(shape, k512x512);
  ASSERT_TRUE(windowed.feasible && fallback.feasible);
  EXPECT_LT(cycles_objective().score(shape, k512x512, windowed),
            cycles_objective().score(shape, k512x512, fallback));
  EXPECT_GT(energy_objective().score(shape, k512x512, windowed),
            energy_objective().score(shape, k512x512, fallback));
}

}  // namespace
}  // namespace vwsdk
