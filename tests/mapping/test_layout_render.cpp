#include "mapping/layout_render.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "mapping/plan_builder.h"

namespace vwsdk {
namespace {

TEST(LayoutRender, SmallTileShowsCells) {
  const ConvShape shape = ConvShape::square(5, 3, 1, 2);
  const ArrayGeometry geometry{16, 8};
  const MappingPlan plan = build_plan_for_window(shape, geometry, {4, 3});
  const std::string art = render_tile(plan, 0, 0);
  EXPECT_NE(art.find("tile(0,0)"), std::string::npos);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find('.'), std::string::npos);
  // 16 rows of the grid plus the header line.
  EXPECT_GE(std::count(art.begin(), art.end(), '\n'), 17);
}

TEST(LayoutRender, SdkLayoutHasStructuralZeroInterleave) {
  // For a 4x3 window on a 3x3 kernel, each column holds 9 of 12 offsets:
  // the rendered first column must contain both '#' and '.' within the
  // first 12 rows.
  const ConvShape shape = ConvShape::square(5, 3, 1, 1);
  const ArrayGeometry geometry{12, 2};
  const MappingPlan plan = build_plan_for_window(shape, geometry, {4, 3});
  const ArrayTile& tile = plan.tile(0, 0);
  int programmed = 0;
  for (const CellAssignment& cell : tile.cells) {
    programmed += (cell.col == 0) ? 1 : 0;
  }
  EXPECT_EQ(programmed, 9);  // K^2 weights in a 12-row window column
}

TEST(LayoutRender, LargeArrayTruncated) {
  const ConvShape shape = ConvShape::square(8, 3, 4, 6);
  const ArrayGeometry geometry{512, 512};
  const MappingPlan plan = build_plan_for_window(shape, geometry, {4, 3});
  const std::string art = render_tile(plan, 0, 0, 8, 16);
  EXPECT_NE(art.find("showing top-left 8x16"), std::string::npos);
}

TEST(LayoutRender, TileIndexBoundsChecked) {
  const ConvShape shape = ConvShape::square(8, 3, 4, 6);
  const MappingPlan plan =
      build_plan_for_window(shape, {64, 32}, {4, 3});
  EXPECT_THROW(render_tile(plan, 1, 0), InvalidArgument);
}

TEST(LayoutRender, DescribePlanSummarizes) {
  const ConvShape shape = ConvShape::square(8, 3, 4, 6);
  const MappingPlan plan =
      build_plan_for_window(shape, {64, 32}, {4, 3});
  const std::string text = describe_plan(plan);
  EXPECT_NE(text.find("plan[windowed]"), std::string::npos);
  EXPECT_NE(text.find("base grid"), std::string::npos);
  EXPECT_NE(text.find("total cycles"), std::string::npos);

  const ConvShape small = ConvShape::square(6, 3, 1, 2);
  const std::string smd_text = describe_plan(build_smd_plan(small, {64, 32}));
  EXPECT_NE(smd_text.find("smd duplicates"), std::string::npos);
}

}  // namespace
}  // namespace vwsdk
