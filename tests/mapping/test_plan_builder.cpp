#include "mapping/plan_builder.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "mapping/plan_validate.h"

namespace vwsdk {
namespace {

const ArrayGeometry kSmall{64, 32};

TEST(PlanBuilder, WindowedPlanStructure) {
  // 8x8 image, 3x3 kernel, 4 IC, 6 OC on a 64x32 array with a 4x3 window:
  // IC_t = floor(64/12) = 5 -> clamped... IC=4 <= 5 so IC_t = 4, AR = 1.
  // N_WP = 2, OC_t = floor(32/2) = 16 -> clamped 6, AC = 1.
  const ConvShape shape = ConvShape::square(8, 3, 4, 6);
  const CycleCost cost = vw_cost(shape, kSmall, {4, 3});
  ASSERT_TRUE(cost.feasible);
  const MappingPlan plan = build_windowed_plan(shape, kSmall, cost);

  EXPECT_EQ(plan.kind, PlanKind::kWindowed);
  EXPECT_EQ(plan.tiles.size(), 1u);
  // Base grid: windows_w = 6, per PW = 2 -> 3 bases; windows_h = 6 / 1 -> 6.
  EXPECT_EQ(plan.base_x.size(), 3u);
  EXPECT_EQ(plan.base_y.size(), 6u);
  // Rows: 4 channels x 12 offsets = 48 bindings; cols: 6 oc x 2 = 12.
  EXPECT_EQ(plan.tiles[0].rows.size(), 48u);
  EXPECT_EQ(plan.tiles[0].cols.size(), 12u);
  // Cells: 6 oc x 2 windows x 4 ic x 9 kernel = 432.
  EXPECT_EQ(plan.tiles[0].cells.size(), 432u);
  EXPECT_TRUE(validate_plan(plan).empty());
}

TEST(PlanBuilder, WindowedPlanClampedLastBaseOverlaps) {
  // windows_w = 5, per PW = 2 -> bases at windows 0, 2, 3 (clamped).
  const ConvShape shape = ConvShape::square(7, 3, 2, 2);
  const CycleCost cost = vw_cost(shape, kSmall, {4, 3});
  const MappingPlan plan = build_windowed_plan(shape, kSmall, cost);
  ASSERT_EQ(plan.base_x.size(), 3u);
  EXPECT_EQ(plan.base_x[0], 0);
  EXPECT_EQ(plan.base_x[1], 2);
  EXPECT_EQ(plan.base_x[2], 3);  // clamped from 4: window must fit in 7
  EXPECT_TRUE(validate_plan(plan).empty());
}

TEST(PlanBuilder, WindowedPlanChannelTiling) {
  // IC = 9, IC_t = floor(64/12) = 5 -> AR = 2 tiles (5 + 4 channels).
  const ConvShape shape = ConvShape::square(8, 3, 9, 40);
  const CycleCost cost = vw_cost(shape, kSmall, {4, 3});
  ASSERT_EQ(cost.ar_cycles, 2);
  ASSERT_EQ(cost.ac_cycles, 3);  // OC_t = 16 -> ceil(40/16) = 3
  const MappingPlan plan = build_windowed_plan(shape, kSmall, cost);
  EXPECT_EQ(plan.tiles.size(), 6u);
  // First AR band holds channels 0..4, second 5..8.
  EXPECT_EQ(plan.tile(0, 0).rows.front().ic, 0);
  EXPECT_EQ(plan.tile(1, 0).rows.front().ic, 5);
  EXPECT_EQ(plan.tile(1, 0).rows.size(), 4u * 12u);
  // Last AC tile holds 40 - 2*16 = 8 output channels x N_WP = 2 cols.
  EXPECT_EQ(plan.tile(0, 2).cols.size(), 16u);
  EXPECT_TRUE(validate_plan(plan).empty());
}

TEST(PlanBuilder, Im2colPlanDenseRows) {
  // K^2*IC = 9*8 = 72 > 64 rows -> AR = 2 element slices (64 + 8).
  const ConvShape shape = ConvShape::square(6, 3, 8, 10);
  const MappingPlan plan = build_im2col_plan(shape, kSmall);
  EXPECT_EQ(plan.kind, PlanKind::kIm2colDense);
  ASSERT_EQ(plan.cost.ar_cycles, 2);
  EXPECT_EQ(plan.tiles[0].rows.size(), 64u);
  EXPECT_EQ(plan.tiles[1].rows.size(), 8u);
  // A split mid-channel: flat element 64 = channel 7, ky 0, kx 1.
  const RowBinding& first_of_second = plan.tiles[1].rows.front();
  EXPECT_EQ(first_of_second.row, 0);
  EXPECT_EQ(first_of_second.ic, 7);
  EXPECT_EQ(first_of_second.dy, 0);
  EXPECT_EQ(first_of_second.dx, 1);
  EXPECT_TRUE(validate_plan(plan).empty());
}

TEST(PlanBuilder, Im2colPlanBaseGridIsEveryWindow) {
  const ConvShape shape = ConvShape::square(6, 3, 1, 1);
  const MappingPlan plan = build_im2col_plan(shape, kSmall);
  EXPECT_EQ(plan.base_x.size(), 4u);
  EXPECT_EQ(plan.base_y.size(), 4u);
  EXPECT_EQ(plan.total_cycles(), 16);
}

TEST(PlanBuilder, SmdPlanBlockDiagonal) {
  // K^2*IC = 9, OC = 2: by_rows = floor(64/9) = 7, by_cols = 16 -> D = 7,
  // capped by 16 windows -> 7.
  const ConvShape shape = ConvShape::square(6, 3, 1, 2);
  const MappingPlan plan = build_smd_plan(shape, kSmall);
  EXPECT_EQ(plan.kind, PlanKind::kSmd);
  EXPECT_EQ(plan.cost.smd_duplicates, 7);
  ASSERT_EQ(plan.tiles.size(), 1u);
  // 7 dups x 9 rows, 7 dups x 2 cols, 7 x 18 cells.
  EXPECT_EQ(plan.tiles[0].rows.size(), 63u);
  EXPECT_EQ(plan.tiles[0].cols.size(), 14u);
  EXPECT_EQ(plan.tiles[0].cells.size(), 126u);
  // Block-diagonal: dup d occupies rows [9d, 9d+9) and cols [2d, 2d+2).
  for (const CellAssignment& cell : plan.tiles[0].cells) {
    EXPECT_EQ(cell.row / 9, cell.col / 2);
  }
  EXPECT_TRUE(validate_plan(plan).empty());
}

TEST(PlanBuilder, SmdFallsBackToIm2colWhenOneCopy) {
  const ConvShape shape = ConvShape::square(6, 3, 8, 10);  // 72 rows > 64
  const MappingPlan plan = build_smd_plan(shape, kSmall);
  EXPECT_EQ(plan.kind, PlanKind::kIm2colDense);
}

TEST(PlanBuilder, PlanForWindowDispatches) {
  const ConvShape shape = ConvShape::square(8, 3, 4, 6);
  EXPECT_EQ(build_plan_for_window(shape, kSmall, {3, 3}).kind,
            PlanKind::kIm2colDense);
  EXPECT_EQ(build_plan_for_window(shape, kSmall, {4, 3}).kind,
            PlanKind::kWindowed);
  EXPECT_THROW(build_plan_for_window(shape, kSmall, {30, 30}),
               InvalidArgument);
}

TEST(PlanBuilder, PlanForCostDispatches) {
  const ConvShape small = ConvShape::square(6, 3, 1, 2);
  EXPECT_EQ(
      build_plan_for_cost(small, kSmall, smd_cost(small, kSmall)).kind,
      PlanKind::kSmd);
  EXPECT_EQ(
      build_plan_for_cost(small, kSmall, im2col_cost(small, kSmall)).kind,
      PlanKind::kIm2colDense);
  const ConvShape shape = ConvShape::square(8, 3, 4, 6);
  EXPECT_EQ(build_plan_for_cost(shape, kSmall, vw_cost(shape, kSmall, {4, 3}))
                .kind,
            PlanKind::kWindowed);
  CycleCost bad;
  EXPECT_THROW(build_plan_for_cost(shape, kSmall, bad), InvalidArgument);
}

TEST(PlanBuilder, RejectsInfeasibleOrForeignCosts) {
  const ConvShape shape = ConvShape::square(8, 3, 4, 6);
  const CycleCost infeasible = vw_cost(shape, kSmall, {30, 30});
  EXPECT_THROW(build_windowed_plan(shape, kSmall, infeasible),
               InvalidArgument);
  const CycleCost im2col = im2col_cost(shape, kSmall);
  EXPECT_THROW(build_windowed_plan(shape, kSmall, im2col), InvalidArgument);
}

TEST(PlanBuilder, StridedWindowedPlan) {
  // Stride-2 extension: 9x9 image, 3x3 kernel, stride 2 -> 4x4 windows.
  ConvShape shape = ConvShape::square(9, 3, 2, 3);
  shape.stride_w = 2;
  shape.stride_h = 2;
  const CycleCost cost = vw_cost(shape, kSmall, {5, 5});  // 2x2 windows/PW
  ASSERT_TRUE(cost.feasible);
  const MappingPlan plan = build_windowed_plan(shape, kSmall, cost);
  EXPECT_EQ(plan.base_x.size(), 2u);
  EXPECT_EQ(plan.base_x[1], 4);  // second PW starts at window 2 -> pixel 4
  EXPECT_TRUE(validate_plan(plan).empty());
}

TEST(PlanBuilder, ProgrammedCellCountsMatchAnalyticWeights) {
  // Windowed plan: total cells = K^2 * IC * N_WP * OC (every weight copied
  // once per window position across all tiles).
  const ConvShape shape = ConvShape::square(8, 3, 9, 40);
  const CycleCost cost = vw_cost(shape, kSmall, {4, 3});
  const MappingPlan plan = build_windowed_plan(shape, kSmall, cost);
  EXPECT_EQ(plan.programmed_cells(), 9LL * 9 * 2 * 40);
}

}  // namespace
}  // namespace vwsdk
