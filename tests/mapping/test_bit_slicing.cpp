#include "mapping/bit_slicing.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vwsdk {
namespace {

const ArrayGeometry k512x512{512, 512};

TEST(BitSlicing, DefaultConfigIsTransparent) {
  const BitSlicingConfig config;
  EXPECT_EQ(config.slices(), 1);
  EXPECT_EQ(config.input_steps(), 1);
}

TEST(BitSlicing, SlicesAndStepsRoundUp) {
  BitSlicingConfig config;
  config.weight_bits = 8;
  config.cell_bits = 3;
  config.input_bits = 8;
  config.dac_bits = 1;
  EXPECT_EQ(config.slices(), 3);       // ceil(8/3)
  EXPECT_EQ(config.input_steps(), 8);  // ceil(8/1)
}

TEST(BitSlicing, Validation) {
  BitSlicingConfig config;
  config.weight_bits = 0;
  EXPECT_THROW(config.validate(), InvalidArgument);
  config = BitSlicingConfig{};
  config.cell_bits = 33;
  EXPECT_THROW(config.validate(), InvalidArgument);
  config = BitSlicingConfig{};
  config.dac_bits = -1;
  EXPECT_THROW(config.validate(), InvalidArgument);
}

TEST(BitSlicing, DefaultConfigReproducesPaperCosts) {
  const BitSlicingConfig config;
  const ConvShape conv5 = ConvShape::square(56, 3, 128, 256);
  EXPECT_EQ(vw_cost_bitsliced(conv5, k512x512, {4, 3}, config).total,
            vw_cost(conv5, k512x512, {4, 3}).total);
  EXPECT_EQ(im2col_cost_bitsliced(conv5, k512x512, config).total,
            im2col_cost(conv5, k512x512).total);
}

TEST(BitSlicing, SlicesShrinkOcTile) {
  const ConvShape conv5 = ConvShape::square(56, 3, 128, 256);
  BitSlicingConfig config;
  config.weight_bits = 8;
  config.cell_bits = 2;  // 4 slices
  // 4x3 window: N_WP = 2, slices 4 -> OC_t = floor(512/8) = 64.
  EXPECT_EQ(tiled_oc_bitsliced(conv5, k512x512, {4, 3}, config), 64);
  const CycleCost cost = vw_cost_bitsliced(conv5, k512x512, {4, 3}, config);
  EXPECT_EQ(cost.oc_t, 64);
  EXPECT_EQ(cost.ac_cycles, 4);  // ceil(256/64)
}

TEST(BitSlicing, InputStepsMultiplyCycles) {
  const ConvShape conv5 = ConvShape::square(56, 3, 128, 256);
  BitSlicingConfig config;
  config.input_bits = 8;
  config.dac_bits = 2;  // 4 steps
  const CycleCost base = vw_cost(conv5, k512x512, {4, 3});
  const CycleCost sliced = vw_cost_bitsliced(conv5, k512x512, {4, 3}, config);
  EXPECT_EQ(sliced.total, base.total * 4);
}

TEST(BitSlicing, InfeasibleWhenSlicesExceedColumns) {
  const ConvShape shape = ConvShape::square(8, 3, 4, 6);
  BitSlicingConfig config;
  config.weight_bits = 16;
  config.cell_bits = 1;  // 16 slices
  // Array with 8 columns cannot hold even one sliced output channel.
  const CycleCost cost =
      im2col_cost_bitsliced(shape, {64, 8}, config);
  EXPECT_FALSE(cost.feasible);
}

TEST(BitSlicing, MonotoneInCellBits) {
  // Coarser cells (fewer bits) can only increase cycles.
  const ConvShape conv4 = ConvShape::square(14, 3, 256, 256);
  Cycles last = 0;
  for (const int cell_bits : {8, 4, 2, 1}) {
    BitSlicingConfig config;
    config.cell_bits = cell_bits;
    const CycleCost cost =
        im2col_cost_bitsliced(conv4, k512x512, config);
    EXPECT_GE(cost.total, last) << cell_bits;
    last = cost.total;
  }
}

}  // namespace
}  // namespace vwsdk
