#include "mapping/conv_shape.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "nn/model_zoo.h"

namespace vwsdk {
namespace {

TEST(ConvShape, SquareFactory) {
  const ConvShape shape = ConvShape::square(56, 3, 128, 256);
  EXPECT_EQ(shape.ifm_w, 56);
  EXPECT_EQ(shape.ifm_h, 56);
  EXPECT_EQ(shape.kernel_w, 3);
  EXPECT_EQ(shape.in_channels, 128);
  EXPECT_EQ(shape.out_channels, 256);
  EXPECT_EQ(shape.stride_w, 1);
}

TEST(ConvShape, FromLayerCopiesEverything) {
  ConvLayerDesc layer = make_conv_layer("l", 112, 7, 3, 64);
  layer.config.stride_w = 2;
  layer.config.stride_h = 2;
  layer.config.pad_w = 3;
  layer.config.pad_h = 3;
  const ConvShape shape = ConvShape::from_layer(layer);
  EXPECT_EQ(shape.kernel_w, 7);
  EXPECT_EQ(shape.stride_h, 2);
  EXPECT_EQ(shape.pad_w, 3);
  EXPECT_EQ(shape.padded_w(), 118);
}

TEST(ConvShape, WindowCountsStride1) {
  const ConvShape shape = ConvShape::square(224, 3, 3, 64);
  EXPECT_EQ(shape.windows_w(), 222);
  EXPECT_EQ(shape.num_windows(), 222 * 222);
  const ConvShape tiny = ConvShape::square(7, 3, 512, 512);
  EXPECT_EQ(tiny.num_windows(), 25);
}

TEST(ConvShape, WindowCountsStride2WithPadding) {
  ConvShape shape = ConvShape::square(112, 7, 3, 64);
  shape.stride_w = 2;
  shape.stride_h = 2;
  shape.pad_w = 3;
  shape.pad_h = 3;
  EXPECT_EQ(shape.windows_w(), 56);
  EXPECT_EQ(shape.num_windows(), 56 * 56);
}

TEST(ConvShape, KernelVolume) {
  const ConvShape shape = ConvShape::square(7, 3, 512, 512);
  EXPECT_EQ(shape.kernel_volume(), 9 * 512);
}

TEST(ConvShape, ValidationRejectsBadShapes) {
  ConvShape shape = ConvShape::square(8, 3, 4, 4);
  shape.kernel_w = 9;
  EXPECT_THROW(shape.validate(), InvalidArgument);
  shape = ConvShape::square(8, 3, 4, 4);
  shape.in_channels = 0;
  EXPECT_THROW(shape.validate(), InvalidArgument);
  shape = ConvShape::square(8, 3, 4, 4);
  shape.stride_h = 0;
  EXPECT_THROW(shape.validate(), InvalidArgument);
}

TEST(ConvShape, ToStringCompact) {
  EXPECT_EQ(ConvShape::square(56, 3, 128, 256).to_string(),
            "56x56 k3x3 ic128 oc256 s1 p0");
}

TEST(ConvShape, EveryZooLayerConverts) {
  for (const auto& name : model_names()) {
    const Network net = model_by_name(name);
    for (const ConvLayerDesc& layer : net.layers()) {
      EXPECT_NO_THROW(ConvShape::from_layer(layer).validate()) << layer.name;
    }
  }
}

}  // namespace
}  // namespace vwsdk
