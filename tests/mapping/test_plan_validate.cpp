#include "mapping/plan_validate.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "mapping/plan_builder.h"

namespace vwsdk {
namespace {

const ArrayGeometry kSmall{64, 32};

MappingPlan good_plan() {
  const ConvShape shape = ConvShape::square(8, 3, 4, 6);
  return build_plan_for_window(shape, kSmall, {4, 3});
}

TEST(PlanValidate, BuilderOutputsAreValid) {
  EXPECT_TRUE(validate_plan(good_plan()).empty());
  EXPECT_NO_THROW(expect_valid(good_plan()));
}

TEST(PlanValidate, DetectsCellCollision) {
  MappingPlan plan = good_plan();
  plan.tiles[0].cells.push_back(plan.tiles[0].cells.front());
  const auto issues = validate_plan(plan);
  ASSERT_FALSE(issues.empty());
  bool found = false;
  for (const std::string& issue : issues) {
    found = found || issue.find("assigned twice") != std::string::npos;
  }
  EXPECT_TRUE(found);
  EXPECT_THROW(expect_valid(plan), InternalError);
}

TEST(PlanValidate, DetectsRowOutsideArray) {
  MappingPlan plan = good_plan();
  plan.tiles[0].rows.front().row = 64;
  const auto issues = validate_plan(plan);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues.front().find("outside array"), std::string::npos);
}

TEST(PlanValidate, DetectsDuplicateRowBinding) {
  MappingPlan plan = good_plan();
  plan.tiles[0].rows.push_back(plan.tiles[0].rows.front());
  bool found = false;
  for (const std::string& issue : validate_plan(plan)) {
    found = found || issue.find("duplicate row binding") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(PlanValidate, DetectsGeometryBreak) {
  MappingPlan plan = good_plan();
  // Corrupt a cell's kernel coordinate: offset equation dy = wy*s + ky
  // no longer holds.
  plan.tiles[0].cells.front().ky += 1;
  bool found = false;
  for (const std::string& issue : validate_plan(plan)) {
    found = found || issue.find("geometry broken") != std::string::npos ||
            issue.find("assigned twice") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(PlanValidate, DetectsChannelDroppedFromCoverage) {
  MappingPlan plan = good_plan();
  // Remove every row binding of channel 2 (and its cells).
  auto& rows = plan.tiles[0].rows;
  rows.erase(std::remove_if(rows.begin(), rows.end(),
                            [](const RowBinding& rb) { return rb.ic == 2; }),
             rows.end());
  auto& cells = plan.tiles[0].cells;
  cells.erase(
      std::remove_if(cells.begin(), cells.end(),
                     [](const CellAssignment& c) { return c.ic == 2; }),
      cells.end());
  bool found = false;
  for (const std::string& issue : validate_plan(plan)) {
    found = found || issue.find("input row entity 2 not mapped") !=
                         std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(PlanValidate, DetectsOutputChannelMissing) {
  MappingPlan plan = good_plan();
  auto& cols = plan.tiles[0].cols;
  cols.erase(std::remove_if(cols.begin(), cols.end(),
                            [](const ColBinding& cb) { return cb.oc == 5; }),
             cols.end());
  auto& cells = plan.tiles[0].cells;
  cells.erase(
      std::remove_if(cells.begin(), cells.end(),
                     [](const CellAssignment& c) { return c.oc == 5; }),
      cells.end());
  bool found = false;
  for (const std::string& issue : validate_plan(plan)) {
    found = found || issue.find("output column entity 5 not mapped") !=
                         std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(PlanValidate, DetectsBaseGridGap) {
  MappingPlan plan = good_plan();
  plan.base_x.pop_back();
  bool found = false;
  for (const std::string& issue : validate_plan(plan)) {
    found = found ||
            issue.find("not fully covered along x") != std::string::npos ||
            issue.find("cycles") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(PlanValidate, DetectsCycleMismatch) {
  MappingPlan plan = good_plan();
  plan.cost.total += 1;
  bool found = false;
  for (const std::string& issue : validate_plan(plan)) {
    found = found || issue.find("analytic cycles") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(PlanValidate, DetectsEmptyPlan) {
  MappingPlan plan;
  plan.shape = ConvShape::square(8, 3, 4, 6);
  plan.geometry = kSmall;
  const auto issues = validate_plan(plan);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues.front().find("no tiles"), std::string::npos);
}

TEST(PlanValidate, SmdAndIm2colPlansValidate) {
  const ConvShape small = ConvShape::square(6, 3, 1, 2);
  EXPECT_TRUE(validate_plan(build_smd_plan(small, kSmall)).empty());
  const ConvShape split = ConvShape::square(6, 3, 8, 10);
  EXPECT_TRUE(validate_plan(build_im2col_plan(split, kSmall)).empty());
}

}  // namespace
}  // namespace vwsdk
