#include "mapping/utilization.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vwsdk {
namespace {

const ArrayGeometry k512x512{512, 512};

TEST(Utilization, PaperFlagshipNumber73_8Percent) {
  // §V-B: "achieving a utilization up to 73.8% at Layer 5".
  // VGG-13 conv5, 4x3 window on 512x512: 9*42 * 2*256 / 512^2 = 0.73828.
  const ConvShape conv5 = ConvShape::square(56, 3, 128, 256);
  const CycleCost cost = vw_cost(conv5, k512x512, {4, 3});
  const double util = utilization(conv5, k512x512, cost,
                                  UtilizationConvention::kSteadyState);
  EXPECT_NEAR(util, 0.73828125, 1e-12);
}

TEST(Utilization, Im2colSteadyStateConv5) {
  // im2col at conv5: 9*56 = 504 weight rows of 512, 256 of 512 cols...
  // element-granular full tile occupies min(rows, K^2*IC) = 512 rows.
  const ConvShape conv5 = ConvShape::square(56, 3, 128, 256);
  const CycleCost cost = im2col_cost(conv5, k512x512);
  const double util = utilization(conv5, k512x512, cost,
                                  UtilizationConvention::kSteadyState);
  EXPECT_NEAR(util, (512.0 * 256.0) / (512.0 * 512.0), 1e-12);  // 50%
}

TEST(Utilization, CycleAverageWeightCellsConv5) {
  const ConvShape conv5 = ConvShape::square(56, 3, 128, 256);
  // VW 4x3: K^2*IC*N_WP*OC / (AR*AC*cells) = 9*128*2*256 / (4*262144).
  const CycleCost vw = vw_cost(conv5, k512x512, {4, 3});
  EXPECT_NEAR(utilization(conv5, k512x512, vw,
                          UtilizationConvention::kCycleAverageWeightCells),
              0.5625, 1e-12);
  // im2col: 9*128*256 / (3*262144) = 0.375.
  const CycleCost base = im2col_cost(conv5, k512x512);
  EXPECT_NEAR(utilization(conv5, k512x512, base,
                          UtilizationConvention::kCycleAverageWeightCells),
              0.375, 1e-12);
}

TEST(Utilization, CycleAverageFootprintConv5) {
  const ConvShape conv5 = ConvShape::square(56, 3, 128, 256);
  // Footprint counts the PW-area rows incl. structural zeros:
  // 12*128 * 2*256 / (4 * 262144) = 0.75.
  const CycleCost vw = vw_cost(conv5, k512x512, {4, 3});
  EXPECT_NEAR(utilization(conv5, k512x512, vw,
                          UtilizationConvention::kCycleAverageFootprint),
              0.75, 1e-12);
}

TEST(Utilization, FootprintAtLeastWeightCells) {
  const ConvShape shapes[] = {
      ConvShape::square(56, 3, 128, 256), ConvShape::square(14, 3, 256, 256),
      ConvShape::square(112, 7, 3, 64), ConvShape::square(28, 3, 64, 128)};
  for (const ConvShape& shape : shapes) {
    for (Dim w = shape.kernel_w; w <= shape.kernel_w + 8; ++w) {
      const CycleCost cost = vw_cost(shape, k512x512, {w, shape.kernel_h});
      if (!cost.feasible) {
        continue;
      }
      const double weights = utilization(
          shape, k512x512, cost,
          UtilizationConvention::kCycleAverageWeightCells);
      const double footprint = utilization(
          shape, k512x512, cost, UtilizationConvention::kCycleAverageFootprint);
      EXPECT_LE(weights, footprint + 1e-12) << shape.to_string();
    }
  }
}

TEST(Utilization, AlwaysWithinUnitInterval) {
  const ConvShape shapes[] = {
      ConvShape::square(7, 3, 512, 512), ConvShape::square(224, 3, 3, 64),
      ConvShape::square(14, 3, 16, 2048), ConvShape::square(10, 3, 4, 8)};
  const UtilizationConvention conventions[] = {
      UtilizationConvention::kSteadyState,
      UtilizationConvention::kCycleAverageWeightCells,
      UtilizationConvention::kCycleAverageFootprint};
  for (const ConvShape& shape : shapes) {
    for (const auto convention : conventions) {
      const CycleCost base = im2col_cost(shape, k512x512);
      const double u = utilization(shape, k512x512, base, convention);
      EXPECT_GE(u, 0.0);
      EXPECT_LE(u, 1.0);
      const CycleCost smd = smd_cost(shape, k512x512);
      const double us = utilization(shape, k512x512, smd, convention);
      EXPECT_GE(us, 0.0);
      EXPECT_LE(us, 1.0);
    }
  }
}

TEST(Utilization, SmdDuplicationRaisesUtilization) {
  const ConvShape small = ConvShape::square(10, 3, 4, 8);
  const CycleCost base = im2col_cost(small, k512x512);
  const CycleCost smd = smd_cost(small, k512x512);
  ASSERT_GT(smd.smd_duplicates, 1);
  EXPECT_GT(utilization(small, k512x512, smd,
                        UtilizationConvention::kSteadyState),
            utilization(small, k512x512, base,
                        UtilizationConvention::kSteadyState));
}

TEST(Utilization, VwBeatsIm2colOnConv5AllConventions) {
  // The qualitative claim of Fig. 9(a): VW-SDK utilizes the array better.
  const ConvShape conv5 = ConvShape::square(56, 3, 128, 256);
  const CycleCost vw = vw_cost(conv5, k512x512, {4, 3});
  const CycleCost base = im2col_cost(conv5, k512x512);
  for (const auto convention :
       {UtilizationConvention::kSteadyState,
        UtilizationConvention::kCycleAverageWeightCells,
        UtilizationConvention::kCycleAverageFootprint}) {
    EXPECT_GT(utilization(conv5, k512x512, vw, convention),
              utilization(conv5, k512x512, base, convention));
  }
}

TEST(Utilization, InfeasibleCostRejected) {
  const ConvShape conv5 = ConvShape::square(56, 3, 128, 256);
  const CycleCost bad = vw_cost(conv5, k512x512, {30, 30});
  EXPECT_THROW(utilization(conv5, k512x512, bad,
                           UtilizationConvention::kSteadyState),
               InvalidArgument);
}

TEST(Utilization, ConventionNames) {
  EXPECT_STREQ(
      utilization_convention_name(UtilizationConvention::kSteadyState),
      "steady-state");
  EXPECT_STREQ(utilization_convention_name(
                   UtilizationConvention::kCycleAverageWeightCells),
               "cycle-average(weights)");
  EXPECT_STREQ(utilization_convention_name(
                   UtilizationConvention::kCycleAverageFootprint),
               "cycle-average(footprint)");
}

}  // namespace
}  // namespace vwsdk
