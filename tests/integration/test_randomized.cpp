/// Randomized (seeded, reproducible) property sweeps across the whole
/// stack.  Shapes and geometries are drawn from a deterministic PRNG so
/// failures are replayable; every draw is printed in the failure message.

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/string_util.h"
#include "core/exhaustive_mapper.h"
#include "core/pruned_mapper.h"
#include "core/vwsdk_mapper.h"
#include "mapping/plan_builder.h"
#include "mapping/plan_validate.h"
#include "sim/verifier.h"

namespace vwsdk {
namespace {

struct RandomDraw {
  ConvShape shape;
  ArrayGeometry geometry;
  std::string context;
};

/// Draw a random-but-valid (shape, geometry) pair.  `small` keeps sizes
/// executable on the functional simulator.
RandomDraw draw(Rng& rng, bool small) {
  RandomDraw d;
  const Dim kernel = static_cast<Dim>(rng.uniform_int(1, small ? 5 : 7));
  const Dim image =
      static_cast<Dim>(rng.uniform_int(kernel, small ? 14 : 64));
  d.shape.kernel_w = kernel;
  d.shape.kernel_h = static_cast<Dim>(rng.uniform_int(1, kernel));
  d.shape.ifm_w = image;
  d.shape.ifm_h = static_cast<Dim>(
      rng.uniform_int(d.shape.kernel_h, small ? 14 : 64));
  d.shape.in_channels =
      static_cast<Dim>(rng.uniform_int(1, small ? 12 : 512));
  d.shape.out_channels =
      static_cast<Dim>(rng.uniform_int(1, small ? 16 : 512));
  d.geometry.rows = static_cast<Dim>(rng.uniform_int(8, small ? 96 : 512));
  d.geometry.cols = static_cast<Dim>(rng.uniform_int(4, small ? 48 : 512));
  d.shape.validate();
  d.geometry.validate();
  d.context = cat(d.shape.to_string(), " on ", d.geometry.to_string());
  return d;
}

TEST(Randomized, VwSdkEqualsOracleOn200RandomProblems) {
  Rng rng(0xF00D);
  const VwSdkMapper vw;
  const ExhaustiveMapper oracle;
  const PrunedVwSdkMapper pruned;
  for (int i = 0; i < 200; ++i) {
    const RandomDraw d = draw(rng, /*small=*/false);
    const Cycles vw_cycles = vw.map(d.shape, d.geometry).cost.total;
    const Cycles oracle_cycles = oracle.map(d.shape, d.geometry).cost.total;
    const MappingDecision pruned_decision = pruned.map(d.shape, d.geometry);
    EXPECT_EQ(vw_cycles, oracle_cycles) << "draw " << i << ": " << d.context;
    EXPECT_EQ(pruned_decision.cost.total, vw_cycles)
        << "draw " << i << ": " << d.context;
    EXPECT_EQ(pruned_decision.cost.window,
              vw.map(d.shape, d.geometry).cost.window)
        << "draw " << i << ": " << d.context;
  }
}

TEST(Randomized, PlansAlwaysValidOn100RandomProblems) {
  Rng rng(0xBEEF);
  for (int i = 0; i < 100; ++i) {
    const RandomDraw d = draw(rng, /*small=*/false);
    for (const char* name : {"im2col", "smd", "sdk", "vw-sdk"}) {
      const MappingDecision decision =
          make_mapper(name)->map(d.shape, d.geometry);
      ASSERT_TRUE(decision.cost.feasible)
          << name << " draw " << i << ": " << d.context;
      // Plans materialize one CellAssignment per programmed cell; cap the
      // build to keep the sweep fast and memory-light.
      const Count plan_cells =
          decision.cost.ar_cycles * decision.cost.ac_cycles *
          d.geometry.cell_count();
      if (plan_cells > 2'000'000) {
        continue;
      }
      const MappingPlan plan =
          build_plan_for_cost(d.shape, d.geometry, decision.cost);
      const auto issues = validate_plan(plan);
      EXPECT_TRUE(issues.empty())
          << name << " draw " << i << ": " << d.context << " -> "
          << (issues.empty() ? "" : issues.front());
    }
  }
}

TEST(Randomized, FunctionalEquivalenceOn40SmallRandomProblems) {
  Rng rng(0xCAFE);
  for (int i = 0; i < 40; ++i) {
    const RandomDraw d = draw(rng, /*small=*/true);
    for (const char* name : {"im2col", "smd", "vw-sdk"}) {
      const MappingDecision decision =
          make_mapper(name)->map(d.shape, d.geometry);
      const MappingPlan plan =
          build_plan_for_cost(d.shape, d.geometry, decision.cost);
      const VerificationReport report = verify_mapping_random(
          plan, 0x1000u + static_cast<std::uint64_t>(i));
      EXPECT_TRUE(report.exact_match)
          << name << " draw " << i << ": " << d.context << " -> "
          << report.summary;
      EXPECT_TRUE(report.cycles_match)
          << name << " draw " << i << ": " << d.context;
    }
  }
}

TEST(Randomized, StridedPaddedEquivalenceOn25RandomProblems) {
  Rng rng(0xD00D);
  for (int i = 0; i < 25; ++i) {
    RandomDraw d = draw(rng, /*small=*/true);
    d.shape.stride_w = static_cast<Dim>(rng.uniform_int(1, 3));
    d.shape.stride_h = static_cast<Dim>(rng.uniform_int(1, 3));
    d.shape.pad_w = static_cast<Dim>(rng.uniform_int(0, 2));
    d.shape.pad_h = static_cast<Dim>(rng.uniform_int(0, 2));
    d.shape.validate();
    const MappingDecision decision =
        make_mapper("vw-sdk")->map(d.shape, d.geometry);
    const MappingPlan plan =
        build_plan_for_cost(d.shape, d.geometry, decision.cost);
    const VerificationReport report = verify_mapping_random(
        plan, 0x2000u + static_cast<std::uint64_t>(i));
    EXPECT_TRUE(report.exact_match)
        << "draw " << i << ": " << d.shape.to_string() << " on "
        << d.geometry.to_string() << " -> " << report.summary;
  }
}

}  // namespace
}  // namespace vwsdk
