/// Randomized sandwich bound on the VW-SDK search: for any problem, the
/// cost Algorithm 1 reports can never beat the exhaustive oracle (it
/// searches a subset of the oracle's candidates) and can never lose to
/// im2col (im2col is its incumbent's initialization).  Shapes are kept
/// small so the oracle stays fast; the PRNG is seeded so failures replay.

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/string_util.h"
#include "core/exhaustive_mapper.h"
#include "core/im2col_mapper.h"
#include "core/vwsdk_mapper.h"

namespace vwsdk {
namespace {

struct Draw {
  ConvShape shape;
  ArrayGeometry geometry;
  std::string context;
};

Draw draw_small(Rng& rng) {
  Draw d;
  const Dim kernel = static_cast<Dim>(rng.uniform_int(1, 5));
  d.shape.kernel_w = kernel;
  d.shape.kernel_h = static_cast<Dim>(rng.uniform_int(1, kernel));
  d.shape.ifm_w = static_cast<Dim>(rng.uniform_int(kernel, 16));
  d.shape.ifm_h =
      static_cast<Dim>(rng.uniform_int(d.shape.kernel_h, 16));
  d.shape.in_channels = static_cast<Dim>(rng.uniform_int(1, 16));
  d.shape.out_channels = static_cast<Dim>(rng.uniform_int(1, 24));
  d.geometry.rows = static_cast<Dim>(rng.uniform_int(8, 128));
  d.geometry.cols = static_cast<Dim>(rng.uniform_int(4, 64));
  d.shape.validate();
  d.geometry.validate();
  d.context = cat(d.shape.to_string(), " on ", d.geometry.to_string());
  return d;
}

TEST(MapperBounds, VwSdkSandwichedBetweenOracleAndIm2col) {
  const ExhaustiveMapper oracle;
  const VwSdkMapper vw;
  const Im2colMapper im2col;
  Rng rng(0xB0BA);
  for (int i = 0; i < 150; ++i) {
    const Draw d = draw_small(rng);
    const Cycles lower = oracle.map(d.shape, d.geometry).cost.total;
    const Cycles mid = vw.map(d.shape, d.geometry).cost.total;
    const Cycles upper = im2col.map(d.shape, d.geometry).cost.total;
    EXPECT_GE(mid, lower) << "draw " << i << ": " << d.context;
    EXPECT_LE(mid, upper) << "draw " << i << ": " << d.context;
  }
}

}  // namespace
}  // namespace vwsdk
