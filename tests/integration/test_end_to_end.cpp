/// End-to-end flows across the whole stack: model zoo -> mapper -> plan ->
/// functional crossbar execution -> verification -> energy accounting.

#include <gtest/gtest.h>

#include "core/network_optimizer.h"
#include "mapping/plan_builder.h"
#include "mapping/plan_validate.h"
#include "mapping/utilization.h"
#include "nn/model_zoo.h"
#include "sim/latency_model.h"
#include "sim/pipeline.h"
#include "sim/verifier.h"
#include "tensor/tensor_ops.h"

namespace vwsdk {
namespace {

TEST(EndToEnd, LenetOnSmallArrayFullyVerified) {
  // LeNet-5 is small enough to execute functionally layer by layer.
  const Network net = lenet5();
  const ArrayGeometry geometry{160, 64};
  const auto mapper = make_mapper("vw-sdk");
  for (const ConvLayerDesc& layer : net.layers()) {
    const ConvShape shape = ConvShape::from_layer(layer);
    const MappingDecision decision = mapper->map(shape, geometry);
    const MappingPlan plan =
        build_plan_for_cost(shape, geometry, decision.cost);
    expect_valid(plan);
    const VerificationReport report = verify_mapping_random(plan, 2024);
    EXPECT_TRUE(report.exact_match) << layer.name << ": " << report.summary;
    EXPECT_TRUE(report.cycles_match) << layer.name;
  }
}

TEST(EndToEnd, MeasuredUtilizationMatchesAnalyticWeightCells) {
  // The crossbars' programmed-cell fraction, averaged over tiles, must
  // equal Eq. (9) under the cycle-average weight-cell convention.
  const ConvShape shape = ConvShape::square(10, 3, 20, 24);
  const ArrayGeometry geometry{96, 48};
  const MappingDecision decision = make_mapper("vw-sdk")->map(shape, geometry);
  const MappingPlan plan =
      build_plan_for_cost(shape, geometry, decision.cost);
  const double analytic =
      utilization(shape, geometry, decision.cost,
                  UtilizationConvention::kCycleAverageWeightCells);
  const double measured =
      static_cast<double>(plan.programmed_cells()) /
      (static_cast<double>(plan.tiles.size()) *
       static_cast<double>(geometry.cell_count()));
  EXPECT_NEAR(measured, analytic, 1e-12);
}

TEST(EndToEnd, AnalyticEnergyTracksCycleReduction) {
  // Network-level: VW-SDK's energy advantage over im2col approximates its
  // cycle advantage under full-array conversion accounting (conversions
  // dominate and every cycle converts the whole periphery).
  const Network net = resnet18_paper();
  const ArrayGeometry geometry{512, 512};
  const EnergyParams params;
  double im2col_energy = 0.0;
  double vw_energy = 0.0;
  for (const ConvLayerDesc& layer : net.layers()) {
    const ConvShape shape = ConvShape::from_layer(layer);
    im2col_energy +=
        estimate_layer(make_mapper("im2col")->map(shape, geometry), params)
            .energy_full_array_pj;
    vw_energy +=
        estimate_layer(make_mapper("vw-sdk")->map(shape, geometry), params)
            .energy_full_array_pj;
  }
  // Cycle ratio is 20041/4294 = 4.67; the cell term dilutes it slightly.
  EXPECT_GT(im2col_energy / vw_energy, 3.0);
}

TEST(EndToEnd, StressMixAllMappersProduceValidPlans) {
  const Network net = stress_mix();
  for (const ArrayGeometry& geometry :
       {ArrayGeometry{128, 128}, ArrayGeometry{512, 256}}) {
    for (const char* mapper_name : {"im2col", "smd", "sdk", "vw-sdk"}) {
      const auto mapper = make_mapper(mapper_name);
      for (const ConvLayerDesc& layer : net.layers()) {
        const ConvShape shape = ConvShape::from_layer(layer);
        const MappingDecision decision = mapper->map(shape, geometry);
        EXPECT_TRUE(decision.cost.feasible)
            << mapper_name << " " << layer.name;
        // Plans stay buildable and valid even for the stress shapes.
        const MappingPlan plan =
            build_plan_for_cost(shape, geometry, decision.cost);
        const auto issues = validate_plan(plan);
        EXPECT_TRUE(issues.empty())
            << mapper_name << " " << layer.name << ": " << issues.front();
      }
    }
  }
}

TEST(EndToEnd, ThreeStagePipelineWithPoolingVerifies) {
  std::vector<StageSpec> stages;
  StageSpec s1;
  s1.conv = make_conv_layer("c1", 14, 3, 1, 4);
  s1.pool_window = 2;
  s1.pool_stride = 2;
  stages.push_back(s1);
  StageSpec s2;
  s2.conv = make_conv_layer("c2", 6, 3, 4, 8);
  stages.push_back(s2);
  StageSpec s3;
  s3.conv = make_conv_layer("c3", 4, 3, 8, 4);
  s3.relu = false;
  stages.push_back(s3);

  Rng rng(555);
  Tensord input = Tensord::feature_map(1, 14, 14);
  fill_random_int(input, rng, 3);
  const PipelineResult result =
      run_pipeline(stages, input, *make_mapper("vw-sdk"), {128, 64});
  EXPECT_TRUE(result.all_verified) << result.summary();
  EXPECT_EQ(result.output.shape(), (Shape4{1, 4, 2, 2}));
}

TEST(EndToEnd, QuantizedPipelineStillRuns) {
  std::vector<StageSpec> stages;
  StageSpec s;
  s.conv = make_conv_layer("c1", 8, 3, 2, 3);
  stages.push_back(s);
  Rng rng(9);
  Tensord input = Tensord::feature_map(2, 8, 8);
  fill_random_int(input, rng, 2);
  ExecutionOptions options;
  options.adc = ConverterModel(10, -1024.0, 1024.0);
  const PipelineResult result = run_pipeline(
      stages, input, *make_mapper("vw-sdk"), {96, 48}, options);
  // Quantized: not exact, but cycles still match the model.
  EXPECT_TRUE(result.stages[0].verification.cycles_match);
  EXPECT_LE(result.stages[0].verification.max_abs_error, 8.0);
}

}  // namespace
}  // namespace vwsdk
