/// Integration pins for every quantitative claim in the paper's text that
/// our models reproduce, beyond the Table-I rows covered in
/// core/test_paper_table1.cpp: Fig. 4 capacities, Fig. 5 example/sweep,
/// Fig. 7 tile curves, Fig. 8 trends, Fig. 9 utilization.

#include <gtest/gtest.h>

#include "core/network_optimizer.h"
#include "mapping/utilization.h"
#include "nn/model_zoo.h"

namespace vwsdk {
namespace {

const ArrayGeometry k512x512{512, 512};
const ArrayGeometry k512x256{512, 256};

// ----------------------------------------------------------------
// Fig. 4: computable channel size at one cycle.
// im2col on a RxC array with K=3: IC <= floor(R/9), OC <= C.
// SDK with a 4x4 window: IC <= floor(R/16), OC <= floor(C/4).
// ----------------------------------------------------------------
TEST(PaperFig4, ComputableChannelsPerArray) {
  struct Expectation {
    ArrayGeometry geometry;
    Count im2col_ic, im2col_oc, sdk_ic, sdk_oc;
  };
  const Expectation table[] = {
      {{128, 128}, 14, 128, 8, 32},
      {{256, 256}, 28, 256, 16, 64},
      {{512, 512}, 56, 512, 32, 128},
      {{512, 256}, 56, 256, 32, 64},
  };
  for (const Expectation& e : table) {
    EXPECT_EQ(e.geometry.rows / 9, e.im2col_ic);
    EXPECT_EQ(e.geometry.cols, e.im2col_oc);
    EXPECT_EQ(e.geometry.rows / 16, e.sdk_ic);
    EXPECT_EQ(e.geometry.cols / 4, e.sdk_oc);
    // The paper's point: VGG-13's deeper layers (up to 512 channels)
    // cannot be mapped whole -- even the largest array computes at most
    // 56 input channels per cycle with im2col.
    EXPECT_LT(e.im2col_ic, 512);
  }
}

// ----------------------------------------------------------------
// Fig. 5(b): speedup (vs im2col) of fixed windows as the IFM grows.
// Config: 512x256 array, K=3, IC=42, OC=96.  The 4x3 window tends to 2x,
// 4x4 and 6x3 hover near 1x.
// ----------------------------------------------------------------
TEST(PaperFig5b, RectangularWindowApproachesTwoX) {
  for (const Dim image : {56, 112, 224, 256}) {
    const ConvShape shape = ConvShape::square(image, 3, 42, 96);
    const double im2col =
        static_cast<double>(im2col_cost(shape, k512x256).total);
    const double rect =
        static_cast<double>(vw_cost(shape, k512x256, {4, 3}).total);
    const double square =
        static_cast<double>(vw_cost(shape, k512x256, {4, 4}).total);
    EXPECT_NEAR(im2col / rect, 2.0, 0.1) << "image " << image;
    EXPECT_NEAR(im2col / square, 1.0, 0.15) << "image " << image;
  }
  // 6x3 needs two IC tiles (ICt = floor(512/18) = 28 < 42) and two OC
  // tiles (OCt = floor(256/4) = 64 < 96): speedup stays near 1.
  const ConvShape big = ConvShape::square(224, 3, 42, 96);
  const double ratio =
      static_cast<double>(im2col_cost(big, k512x256).total) /
      static_cast<double>(vw_cost(big, k512x256, {6, 3}).total);
  EXPECT_NEAR(ratio, 1.0, 0.2);
}

// ----------------------------------------------------------------
// Fig. 7: tiled channels vs window size / window count.
// ----------------------------------------------------------------
TEST(PaperFig7a, TiledIcCurve) {
  // IC_t = floor(rows / area) for a huge-IC layer (no clamping).
  const ConvShape shape = ConvShape::square(80, 3, 4096, 64);
  const struct {
    Count area, rows, expected;
  } samples[] = {
      {9, 128, 14},  {9, 256, 28},  {9, 512, 56},  {16, 512, 32},
      {22, 512, 23}, {40, 512, 12}, {76, 512, 6},  {76, 128, 1},
  };
  for (const auto& s : samples) {
    // Use a wxh = area x 1... area is w*h; pick w=area/h with h = 1? The
    // kernel is 3x3 so the minimal window is 3x3; instead pick w x 3 with
    // w = area / 3 when divisible, else verify via the formula directly.
    if (s.area % 3 == 0) {
      const ParallelWindow pw{static_cast<Dim>(s.area / 3), 3};
      EXPECT_EQ(tiled_ic(shape, {static_cast<Dim>(s.rows), 512}, pw),
                s.expected)
          << "area " << s.area << " rows " << s.rows;
    } else {
      EXPECT_EQ(s.rows / s.area, s.expected);
    }
  }
}

TEST(PaperFig7b, TiledOcCurve) {
  // OC_t = floor(cols / N_WP) for a huge-OC layer.
  const ConvShape shape = ConvShape::square(80, 3, 16, 4096);
  for (const Dim cols : {128, 256, 512}) {
    Count last = std::numeric_limits<Count>::max();
    for (Dim extra = 0; extra <= 14; ++extra) {
      const ParallelWindow pw{static_cast<Dim>(3 + extra), 3};
      const Count n_wp = windows_in_pw(shape, pw);  // 1 + extra
      const Dim oc_t = tiled_oc(shape, {512, cols}, pw);
      EXPECT_EQ(oc_t, cols / n_wp);
      EXPECT_LE(oc_t, last);  // monotone non-increasing
      last = oc_t;
    }
  }
}

// ----------------------------------------------------------------
// Fig. 8(b): total-network speedup vs array size (trend check: VW-SDK
// beats SDK beats im2col at every size, and VW-SDK's speedup grows with
// the array).
// ----------------------------------------------------------------
TEST(PaperFig8b, SpeedupTrendsAcrossArraySizes) {
  for (const Network& net : {vgg13_paper(), resnet18_paper()}) {
    double last_vw = 0.0;
    for (const ArrayGeometry& geometry : paper_geometries()) {
      const NetworkComparison cmp =
          compare_mappers({"im2col", "sdk", "vw-sdk"}, net, geometry);
      const double sdk = cmp.speedup(0, 1);
      const double vw = cmp.speedup(0, 2);
      EXPECT_GE(sdk, 1.0) << net.name() << " " << geometry.to_string();
      EXPECT_GE(vw, sdk) << net.name() << " " << geometry.to_string();
      EXPECT_GE(vw + 1e-9, last_vw)
          << net.name() << " " << geometry.to_string();
      last_vw = vw;
    }
    EXPECT_GT(last_vw, 1.4) << net.name();
  }
}

// ----------------------------------------------------------------
// Fig. 9: utilization claims.
// ----------------------------------------------------------------
TEST(PaperFig9a, UtilizationOrderingOnVgg13) {
  const NetworkComparison cmp =
      compare_mappers({"im2col", "sdk", "vw-sdk"}, vgg13_paper(), k512x512);
  for (Count layer = 0; layer < 6; ++layer) {
    const auto util = [&](Count mapper_index) {
      const MappingDecision& d =
          cmp.results[static_cast<std::size_t>(mapper_index)]
              .layers[static_cast<std::size_t>(layer)]
              .decision;
      return utilization(d.shape, d.geometry, d.cost,
                         UtilizationConvention::kSteadyState);
    };
    EXPECT_GE(util(1) + 1e-12, util(0)) << "layer " << layer;  // sdk>=im2col
    EXPECT_GE(util(2) + 1e-12, util(1)) << "layer " << layer;  // vw>=sdk
  }
  // "the utilizations of the SDK-based algorithm and VW-SDK are equal
  // until Layer 3" -- true for conv2 and conv3 where both pick 4x4...
  for (Count layer : {1, 2}) {
    const MappingDecision& sdk =
        cmp.results[1].layers[static_cast<std::size_t>(layer)].decision;
    const MappingDecision& vw =
        cmp.results[2].layers[static_cast<std::size_t>(layer)].decision;
    EXPECT_EQ(sdk.cost.window, vw.cost.window) << "layer " << layer;
  }
}

TEST(PaperFig9a, Conv5Reaches73_8Percent) {
  const NetworkComparison cmp =
      compare_mappers({"vw-sdk"}, vgg13_paper(), k512x512);
  const MappingDecision& conv5 = cmp.results[0].layers[4].decision;
  const double util =
      utilization(conv5.shape, conv5.geometry, conv5.cost,
                  UtilizationConvention::kSteadyState);
  EXPECT_NEAR(100.0 * util, 73.8, 0.05);
}

TEST(PaperFig9b, LargerArraysRaiseVwUtilizationOnConv4AndConv5) {
  // Fig. 9(b): with larger arrays VW-SDK gains utilization against the
  // conventional algorithms on VGG-13 layer4/layer5.
  const Network net = vgg13_paper();
  for (const char* layer_name : {"conv4", "conv5"}) {
    const ConvShape shape =
        ConvShape::from_layer(net.layer_by_name(layer_name));
    const auto vw_util = [&](const ArrayGeometry& geometry) {
      const MappingDecision d = make_mapper("vw-sdk")->map(shape, geometry);
      return utilization(d.shape, d.geometry, d.cost,
                         UtilizationConvention::kSteadyState);
    };
    const auto im2col_util = [&](const ArrayGeometry& geometry) {
      const MappingDecision d = make_mapper("im2col")->map(shape, geometry);
      return utilization(d.shape, d.geometry, d.cost,
                         UtilizationConvention::kSteadyState);
    };
    EXPECT_GE(vw_util({512, 512}) + 1e-12, im2col_util({512, 512}))
        << layer_name;
    EXPECT_GE(vw_util({256, 256}) + 1e-12, im2col_util({256, 256}))
        << layer_name;
  }
}

}  // namespace
}  // namespace vwsdk
