#include "common/json.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vwsdk {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_TRUE(JsonValue::parse("true").as_bool());
  EXPECT_FALSE(JsonValue::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(JsonValue::parse("3.5").as_number(), 3.5);
  EXPECT_EQ(JsonValue::parse("-42").as_int(), -42);
  EXPECT_DOUBLE_EQ(JsonValue::parse("1e3").as_number(), 1000.0);
  EXPECT_EQ(JsonValue::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedStructures) {
  const JsonValue v = JsonValue::parse(
      R"({"name": "net", "layers": [{"image": 224}, {"image": 112}],
          "deep": {"a": [1, 2, 3]}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("name").as_string(), "net");
  ASSERT_EQ(v.at("layers").items().size(), 2u);
  EXPECT_EQ(v.at("layers").items()[1].at("image").as_int(), 112);
  EXPECT_EQ(v.at("deep").at("a").items()[2].as_int(), 3);
}

TEST(Json, PreservesMemberOrder) {
  const JsonValue v = JsonValue::parse(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_EQ(v.members().size(), 3u);
  EXPECT_EQ(v.members()[0].first, "z");
  EXPECT_EQ(v.members()[1].first, "a");
  EXPECT_EQ(v.members()[2].first, "m");
}

TEST(Json, StringEscapes) {
  EXPECT_EQ(JsonValue::parse(R"("a\"b\\c\nd\te")").as_string(),
            "a\"b\\c\nd\te");
  EXPECT_EQ(JsonValue::parse(R"("Aé")").as_string(), "A\xc3\xa9");
}

TEST(Json, FindAndHas) {
  const JsonValue v = JsonValue::parse(R"({"a": 1})");
  EXPECT_TRUE(v.has("a"));
  EXPECT_FALSE(v.has("b"));
  EXPECT_NE(v.find("a"), nullptr);
  EXPECT_EQ(v.find("b"), nullptr);
  EXPECT_THROW(v.at("b"), NotFound);
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_THROW(JsonValue::parse(""), InvalidArgument);
  EXPECT_THROW(JsonValue::parse("{"), InvalidArgument);
  EXPECT_THROW(JsonValue::parse("[1, ]"), InvalidArgument);
  EXPECT_THROW(JsonValue::parse("{\"a\" 1}"), InvalidArgument);
  EXPECT_THROW(JsonValue::parse("{'a': 1}"), InvalidArgument);
  EXPECT_THROW(JsonValue::parse("01"), InvalidArgument);
  EXPECT_THROW(JsonValue::parse("1."), InvalidArgument);
  EXPECT_THROW(JsonValue::parse("nul"), InvalidArgument);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), InvalidArgument);
  EXPECT_THROW(JsonValue::parse("{} extra"), InvalidArgument);
}

TEST(Json, RejectsDuplicateKeys) {
  EXPECT_THROW(JsonValue::parse(R"({"a": 1, "a": 2})"), InvalidArgument);
}

TEST(Json, RejectsExcessiveNestingInsteadOfOverflowing) {
  // 100k levels would overflow the stack without the depth guard.
  const std::string deep_array(100000, '[');
  EXPECT_THROW(JsonValue::parse(deep_array), InvalidArgument);
  std::string deep_object;
  for (int i = 0; i < 100000; ++i) {
    deep_object += "{\"a\":";
  }
  EXPECT_THROW(JsonValue::parse(deep_object), InvalidArgument);
  // 200 levels (within the 256 bound) still parse.
  const std::string ok = std::string(200, '[') + std::string(200, ']');
  EXPECT_EQ(JsonValue::parse(ok).items().size(), 1u);
}

TEST(Json, ErrorsCarryLineAndColumn) {
  try {
    JsonValue::parse("{\n  \"a\": ??\n}");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("2:"), std::string::npos)
        << e.what();
  }
}

TEST(Json, TypeMismatchesThrow) {
  const JsonValue v = JsonValue::parse(R"({"a": [1]})");
  EXPECT_THROW(v.as_string(), InvalidArgument);
  EXPECT_THROW(v.at("a").as_int(), InvalidArgument);
  EXPECT_THROW(JsonValue::parse("1.5").as_int(), InvalidArgument);
  EXPECT_THROW(JsonValue::parse("[1]").members(), InvalidArgument);
}

}  // namespace
}  // namespace vwsdk
