#include "common/checked_math.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "common/error.h"

namespace vwsdk {
namespace {

constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();

// ---------------------------------------------------------------------------
// try_mul / try_add: full signed domain, exact boundary behavior
// ---------------------------------------------------------------------------

TEST(TryMul, ExactBoundaryProducts) {
  std::int64_t out = 0;
  // INT64_MAX = 9223372036854775807 = 7 * 7 * 73 * 127 * 337 * 92737 * 649657
  // is odd, so kMax/2 * 2 = kMax - 1: the largest even product.
  EXPECT_TRUE(try_mul(kMax / 2, 2, out));
  EXPECT_EQ(out, kMax - 1);
  // One step past the boundary overflows.
  EXPECT_FALSE(try_mul(kMax / 2 + 1, 2, out));
  EXPECT_EQ(out, kMax - 1);  // a failed try_mul leaves `out` untouched
  // An exact factorization hits INT64_MAX itself.
  EXPECT_TRUE(try_mul(kMax / 7, 7, out));
  EXPECT_EQ(out, kMax);
  EXPECT_FALSE(try_mul(kMax / 7 + 1, 7, out));
}

TEST(TryMul, NegativeOperands) {
  std::int64_t out = 0;
  EXPECT_TRUE(try_mul(-3, 4, out));
  EXPECT_EQ(out, -12);
  EXPECT_TRUE(try_mul(3, -4, out));
  EXPECT_EQ(out, -12);
  EXPECT_TRUE(try_mul(-3, -4, out));
  EXPECT_EQ(out, 12);
  // kMin = -(kMax + 1): kMin * 1 and kMin / 2 * 2 are representable,
  // kMin * -1 is the classic asymmetric-two's-complement overflow.
  EXPECT_TRUE(try_mul(kMin, 1, out));
  EXPECT_EQ(out, kMin);
  EXPECT_TRUE(try_mul(kMin / 2, 2, out));
  EXPECT_EQ(out, kMin);
  EXPECT_FALSE(try_mul(kMin, -1, out));
  EXPECT_FALSE(try_mul(-1, kMin, out));
  EXPECT_FALSE(try_mul(kMin / 2 - 1, 2, out));
  // Negative x negative overflowing positive.
  EXPECT_FALSE(try_mul(kMin, kMin, out));
  EXPECT_FALSE(try_mul(kMin / 3, -4, out));
}

TEST(TryMul, ZeroAnnihilates) {
  std::int64_t out = 99;
  EXPECT_TRUE(try_mul(0, kMax, out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(try_mul(kMin, 0, out));
  EXPECT_EQ(out, 0);
}

// The portable fallback must agree with the builtin on every boundary
// case -- it is what non-GCC/Clang builds run.
TEST(TryMul, PortableFallbackMatchesBuiltin) {
  const std::int64_t probes[] = {0,        1,         -1,       2,
                                 -2,       7,         kMax / 2, kMax / 2 + 1,
                                 kMax / 7, kMax,      kMin / 2, kMin / 2 - 1,
                                 kMin,     kMax / 3,  -kMax,    kMin / 7};
  for (const std::int64_t a : probes) {
    for (const std::int64_t b : probes) {
      std::int64_t out = 0;
      const bool fits = try_mul(a, b, out);
      EXPECT_EQ(detail::mul_overflows_portable(a, b), !fits)
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(TryAdd, ExactBoundarySums) {
  std::int64_t out = 0;
  EXPECT_TRUE(try_add(kMax - 1, 1, out));
  EXPECT_EQ(out, kMax);
  EXPECT_FALSE(try_add(kMax, 1, out));
  EXPECT_EQ(out, kMax);  // untouched on failure
  EXPECT_TRUE(try_add(kMin + 1, -1, out));
  EXPECT_EQ(out, kMin);
  EXPECT_FALSE(try_add(kMin, -1, out));
  // Mixed signs can never overflow.
  EXPECT_TRUE(try_add(kMax, kMin, out));
  EXPECT_EQ(out, -1);
}

// ---------------------------------------------------------------------------
// checked_mul / checked_add / checked_ceil_div: domain vs overflow errors
// ---------------------------------------------------------------------------

TEST(CheckedMul, BoundaryAndOverflow) {
  EXPECT_EQ(checked_mul(kMax, 1), kMax);
  EXPECT_EQ(checked_mul(kMax / 7, 7), kMax);
  EXPECT_THROW(checked_mul(kMax / 7 + 1, 7), Overflow);
  EXPECT_THROW(checked_mul(kMax, 2), Overflow);
  EXPECT_THROW(checked_mul(kMax, kMax), Overflow);
}

TEST(CheckedMul, NegativeOperandsAreDomainErrors) {
  // Negative counts are a caller bug (InvalidArgument), not an
  // unrepresentable result (Overflow) -- distinct exit codes downstream.
  EXPECT_THROW(checked_mul(-1, 1), InvalidArgument);
  EXPECT_THROW(checked_mul(1, -1), InvalidArgument);
  EXPECT_THROW(checked_mul(kMin, kMin), InvalidArgument);
}

TEST(CheckedAdd, BoundaryAndOverflow) {
  EXPECT_EQ(checked_add(kMax - 1, 1), kMax);
  EXPECT_EQ(checked_add(0, kMax), kMax);
  EXPECT_THROW(checked_add(kMax, 1), Overflow);
  EXPECT_THROW(checked_add(kMax, kMax), Overflow);
  EXPECT_THROW(checked_add(-1, 0), InvalidArgument);
  EXPECT_THROW(checked_add(0, -1), InvalidArgument);
}

TEST(CheckedCeilDiv, RoundsUpWithoutOverflowingIntermediates) {
  EXPECT_EQ(checked_ceil_div(0, 5), 0);
  EXPECT_EQ(checked_ceil_div(10, 5), 2);
  EXPECT_EQ(checked_ceil_div(11, 5), 3);
  // The banned `(a + b - 1) / b` form would overflow here; the
  // `a/b + (a%b != 0)` form must not.
  EXPECT_EQ(checked_ceil_div(kMax, 2), kMax / 2 + 1);
  EXPECT_EQ(checked_ceil_div(kMax, 1), kMax);
  EXPECT_EQ(checked_ceil_div(kMax, kMax), 1);
  EXPECT_EQ(checked_ceil_div(kMax - 1, kMax), 1);
}

TEST(CheckedCeilDiv, RejectsBadDomain) {
  EXPECT_THROW(checked_ceil_div(5, 0), InvalidArgument);  // divide by zero
  EXPECT_THROW(checked_ceil_div(5, -1), InvalidArgument);
  EXPECT_THROW(checked_ceil_div(-5, 2), InvalidArgument);
}

// ---------------------------------------------------------------------------
// saturating_mul / saturating_add: clamp, never throw
// ---------------------------------------------------------------------------

TEST(SaturatingMul, ClampsBySign) {
  EXPECT_EQ(saturating_mul(3, 4), 12);
  EXPECT_EQ(saturating_mul(kMax, 2), kMax);
  EXPECT_EQ(saturating_mul(kMax, kMax), kMax);
  EXPECT_EQ(saturating_mul(kMax, -2), kMin);
  EXPECT_EQ(saturating_mul(-2, kMax), kMin);
  EXPECT_EQ(saturating_mul(kMin, kMin), kMax);  // negative x negative
  EXPECT_EQ(saturating_mul(kMin, -1), kMax);
}

TEST(SaturatingAdd, ClampsBySign) {
  EXPECT_EQ(saturating_add(40, 2), 42);
  EXPECT_EQ(saturating_add(kMax, 1), kMax);
  EXPECT_EQ(saturating_add(kMax, kMax), kMax);
  EXPECT_EQ(saturating_add(kMin, -1), kMin);
  EXPECT_EQ(saturating_add(kMin, kMin), kMin);
}

// ---------------------------------------------------------------------------
// checked_cast: narrowing that refuses to truncate
// ---------------------------------------------------------------------------

TEST(CheckedCast, FitsPassThrough) {
  EXPECT_EQ((checked_cast<std::int32_t>(std::int64_t{42})), 42);
  EXPECT_EQ((checked_cast<std::int32_t>(std::int64_t{-42})), -42);
  EXPECT_EQ((checked_cast<std::int32_t>(
                std::int64_t{std::numeric_limits<std::int32_t>::max()})),
            std::numeric_limits<std::int32_t>::max());
  EXPECT_EQ((checked_cast<std::int32_t>(
                std::int64_t{std::numeric_limits<std::int32_t>::min()})),
            std::numeric_limits<std::int32_t>::min());
  // Widening through the same spelling also works.
  EXPECT_EQ((checked_cast<std::int64_t>(std::int32_t{-7})), -7);
}

TEST(CheckedCast, OutOfRangeThrowsOverflowNotTruncates) {
  // 4294967297 = 2^32 + 1 truncates to 1 under static_cast<int32_t> --
  // the CLI bug class this guard exists for.
  const std::int64_t wraps_to_one = (std::int64_t{1} << 32) + 1;
  EXPECT_THROW((checked_cast<std::int32_t>(wraps_to_one)), Overflow);
  EXPECT_THROW((checked_cast<std::int32_t>(
                   std::int64_t{std::numeric_limits<std::int32_t>::max()} + 1)),
               Overflow);
  EXPECT_THROW((checked_cast<std::int32_t>(
                   std::int64_t{std::numeric_limits<std::int32_t>::min()} - 1)),
               Overflow);
  EXPECT_THROW((checked_cast<std::int32_t>(kMax)), Overflow);
  EXPECT_THROW((checked_cast<std::int32_t>(kMin)), Overflow);
}

// ---------------------------------------------------------------------------
// constexpr usability: an overflow in a constant expression must fail to
// compile, and the happy path must be evaluable at compile time.
// ---------------------------------------------------------------------------

TEST(CheckedMath, ConstexprEvaluation) {
  static_assert(checked_mul(6, 7) == 42);
  static_assert(checked_add(40, 2) == 42);
  static_assert(checked_ceil_div(43, 7) == 7);
  static_assert(saturating_mul(kMax, 2) == kMax);
  static_assert(saturating_add(kMin, -1) == kMin);
  static_assert(checked_cast<std::int32_t>(std::int64_t{1 << 20}) == 1 << 20);
  constexpr std::int64_t product = [] {
    std::int64_t out = 0;
    return try_mul(kMax / 2, 2, out) ? out : -1;
  }();
  static_assert(product == kMax - 1);
  SUCCEED();
}

// Overflow classifies as its own stable wire code, distinct from
// InvalidArgument, and counts as a usage error (exit 2).
TEST(CheckedMath, OverflowIsAStructuredErrorCode) {
  try {
    checked_mul(kMax, 2);
    FAIL() << "expected Overflow";
  } catch (const Overflow& e) {
    EXPECT_EQ(classify_exception(e), ErrorCode::kOverflow);
    EXPECT_STREQ(error_code_name(ErrorCode::kOverflow), "overflow");
    EXPECT_TRUE(is_usage_error(ErrorCode::kOverflow));
    const std::string what = e.what();
    EXPECT_NE(what.find("overflow"), std::string::npos);
  }
}

}  // namespace
}  // namespace vwsdk
