#include "common/logging.h"

#include <gtest/gtest.h>

#include <vector>

namespace vwsdk {
namespace {

/// RAII guard restoring logger defaults after each test.
class LoggerGuard {
 public:
  LoggerGuard() = default;
  ~LoggerGuard() {
    Logger::instance().set_sink(nullptr);
    Logger::instance().set_level(LogLevel::kInfo);
  }
};

struct Captured {
  LogLevel level;
  std::string message;
};

std::vector<Captured>* capture_into() {
  static std::vector<Captured> sink_storage;
  sink_storage.clear();
  Logger::instance().set_sink([](LogLevel level, const std::string& msg) {
    sink_storage.push_back({level, msg});
  });
  return &sink_storage;
}

TEST(Logging, SinkReceivesFormattedMessage) {
  LoggerGuard guard;
  auto* captured = capture_into();
  log_info("cycles=", 4294, " speedup=", 1.69);
  ASSERT_EQ(captured->size(), 1u);
  EXPECT_EQ((*captured)[0].message, "cycles=4294 speedup=1.69");
  EXPECT_EQ((*captured)[0].level, LogLevel::kInfo);
}

TEST(Logging, LevelFiltersBelowThreshold) {
  LoggerGuard guard;
  auto* captured = capture_into();
  Logger::instance().set_level(LogLevel::kWarn);
  log_debug("dropped");
  log_info("dropped");
  log_warn("kept");
  log_error("kept too");
  ASSERT_EQ(captured->size(), 2u);
  EXPECT_EQ((*captured)[0].level, LogLevel::kWarn);
  EXPECT_EQ((*captured)[1].level, LogLevel::kError);
}

TEST(Logging, LevelNames) {
  EXPECT_STREQ(log_level_name(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(log_level_name(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(log_level_name(LogLevel::kWarn), "WARN");
  EXPECT_STREQ(log_level_name(LogLevel::kError), "ERROR");
}

TEST(Logging, ResettingSinkRestoresDefault) {
  LoggerGuard guard;
  capture_into();
  Logger::instance().set_sink(nullptr);
  // Must not crash writing to the default sink.
  log_info("to clog");
}

}  // namespace
}  // namespace vwsdk
