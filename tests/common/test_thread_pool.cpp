#include "common/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace vwsdk {
namespace {

TEST(ThreadPool, RunsSubmittedTasksAndReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i]() { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, SingleWorkerStillCompletesEverything) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([&count]() { ++count; }));
  }
  for (auto& future : futures) {
    future.get();
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, TaskExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.submit([]() { return 7; });
  auto bad = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      (void)pool.submit([&count]() { ++count; });
    }
  }  // destructor joins after finishing the queue
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, ParallelChunksCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> seen(1000);
  parallel_chunks(pool, 1000, [&seen](Count begin, Count end) {
    for (Count i = begin; i < end; ++i) {
      ++seen[static_cast<std::size_t>(i)];
    }
  });
  for (const auto& cell : seen) {
    EXPECT_EQ(cell.load(), 1);
  }
}

TEST(ThreadPool, ParallelChunksEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  parallel_chunks(pool, 0, [&called](Count, Count) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelChunksRethrowsTaskException) {
  ThreadPool pool(3);
  EXPECT_THROW(
      parallel_chunks(pool, 100,
                      [](Count begin, Count) {
                        if (begin == 0) {
                          throw std::runtime_error("chunk failed");
                        }
                      }),
      std::runtime_error);
}

TEST(ThreadPool, ResolveThreadCountClampsAndPassesThrough) {
  EXPECT_EQ(ThreadPool::resolve_thread_count(4), 4);
  EXPECT_EQ(ThreadPool::resolve_thread_count(1), 1);
  EXPECT_EQ(ThreadPool::resolve_thread_count(100000), 256);
  EXPECT_GE(ThreadPool::resolve_thread_count(0), 1);
  EXPECT_GE(ThreadPool::resolve_thread_count(-5), 1);
}

TEST(ThreadPool, DefaultThreadCountHonoursEnvVar) {
  ASSERT_EQ(setenv("VWSDK_THREADS", "3", 1), 0);
  EXPECT_EQ(ThreadPool::default_thread_count(), 3);
  ASSERT_EQ(setenv("VWSDK_THREADS", "0", 1), 0);
  EXPECT_GE(ThreadPool::default_thread_count(), 1);  // falls back
  ASSERT_EQ(setenv("VWSDK_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(ThreadPool::default_thread_count(), 1);  // degrades, no throw
  ASSERT_EQ(unsetenv("VWSDK_THREADS"), 0);
  EXPECT_GE(ThreadPool::default_thread_count(), 1);
}

}  // namespace
}  // namespace vwsdk
