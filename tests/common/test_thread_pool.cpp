#include "common/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"

namespace vwsdk {
namespace {

/// RAII: capture warnings into a vector, restore logger defaults after.
class WarningCapture {
 public:
  WarningCapture() {
    messages_.clear();
    Logger::instance().set_sink([](LogLevel level, const std::string& msg) {
      if (level == LogLevel::kWarn) {
        messages_.push_back(msg);
      }
    });
  }
  ~WarningCapture() {
    Logger::instance().set_sink(nullptr);
    Logger::instance().set_level(LogLevel::kInfo);
  }

  static const std::vector<std::string>& messages() { return messages_; }

 private:
  static std::vector<std::string> messages_;
};

std::vector<std::string> WarningCapture::messages_;

/// RAII: restore the prior VWSDK_THREADS value (the sanitizer CI job
/// exports one globally; clobbering it would change later tests).
class ThreadsEnvGuard {
 public:
  ThreadsEnvGuard() {
    if (const char* prev = std::getenv("VWSDK_THREADS")) {
      had_value_ = true;
      saved_ = prev;
    }
  }
  ~ThreadsEnvGuard() {
    if (had_value_) {
      setenv("VWSDK_THREADS", saved_.c_str(), 1);
    } else {
      unsetenv("VWSDK_THREADS");
    }
  }

 private:
  bool had_value_ = false;
  std::string saved_;
};

TEST(ThreadPool, RunsSubmittedTasksAndReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i]() { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, SingleWorkerStillCompletesEverything) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([&count]() { ++count; }));
  }
  for (auto& future : futures) {
    future.get();
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, TaskExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.submit([]() { return 7; });
  auto bad = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      (void)pool.submit([&count]() { ++count; });
    }
  }  // destructor joins after finishing the queue
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, ParallelChunksCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> seen(1000);
  parallel_chunks(pool, 1000, [&seen](Count begin, Count end) {
    for (Count i = begin; i < end; ++i) {
      ++seen[static_cast<std::size_t>(i)];
    }
  });
  for (const auto& cell : seen) {
    EXPECT_EQ(cell.load(), 1);
  }
}

TEST(ThreadPool, ParallelChunksEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  parallel_chunks(pool, 0, [&called](Count, Count) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelChunksRethrowsTaskException) {
  ThreadPool pool(3);
  EXPECT_THROW(
      parallel_chunks(pool, 100,
                      [](Count begin, Count) {
                        if (begin == 0) {
                          throw std::runtime_error("chunk failed");
                        }
                      }),
      std::runtime_error);
}

TEST(ThreadPool, ResolveThreadCountClampsAndPassesThrough) {
  EXPECT_EQ(ThreadPool::resolve_thread_count(4), 4);
  EXPECT_EQ(ThreadPool::resolve_thread_count(1), 1);
  EXPECT_EQ(ThreadPool::resolve_thread_count(100000), 256);
  EXPECT_GE(ThreadPool::resolve_thread_count(0), 1);
  EXPECT_GE(ThreadPool::resolve_thread_count(-5), 1);
}

TEST(ThreadPool, DefaultThreadCountHonoursEnvVar) {
  ThreadsEnvGuard env_guard;
  ASSERT_EQ(setenv("VWSDK_THREADS", "3", 1), 0);
  EXPECT_EQ(ThreadPool::default_thread_count(), 3);
  ASSERT_EQ(setenv("VWSDK_THREADS", "0", 1), 0);
  EXPECT_GE(ThreadPool::default_thread_count(), 1);  // falls back
  ASSERT_EQ(setenv("VWSDK_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(ThreadPool::default_thread_count(), 1);  // degrades, no throw
  ASSERT_EQ(unsetenv("VWSDK_THREADS"), 0);
  EXPECT_GE(ThreadPool::default_thread_count(), 1);
}

// The degrade path must not be silent: each distinct bad value warns
// exactly once, naming the value and the fallback.  The bad values here
// must be unique to this test -- the once-per-value memory is
// process-wide, so a value another test already fed through
// default_thread_count would not warn again.
TEST(ThreadPool, BadEnvValueWarnsOncePerDistinctValue) {
  ThreadsEnvGuard env_guard;
  WarningCapture capture;
  const auto warnings = []() { return WarningCapture::messages().size(); };

  // Unparseable garbage.
  ASSERT_EQ(setenv("VWSDK_THREADS", "abc", 1), 0);
  const int fallback = ThreadPool::default_thread_count();
  EXPECT_GE(fallback, 1);
  ASSERT_EQ(warnings(), 1u);
  EXPECT_NE(WarningCapture::messages()[0].find("abc"), std::string::npos);
  EXPECT_NE(WarningCapture::messages()[0].find(std::to_string(fallback)),
            std::string::npos);

  // Repeating the same bad value does not warn again.
  EXPECT_GE(ThreadPool::default_thread_count(), 1);
  EXPECT_EQ(warnings(), 1u);

  // Non-positive ("0" is already consumed by the env-var test above,
  // so use a zero spelling unique to this test).
  ASSERT_EQ(setenv("VWSDK_THREADS", "00", 1), 0);
  EXPECT_GE(ThreadPool::default_thread_count(), 1);
  ASSERT_EQ(warnings(), 2u);
  EXPECT_NE(WarningCapture::messages()[1].find("\"00\""), std::string::npos);

  // Negative (parse_count rejects the sign).
  ASSERT_EQ(setenv("VWSDK_THREADS", "-2", 1), 0);
  EXPECT_GE(ThreadPool::default_thread_count(), 1);
  ASSERT_EQ(warnings(), 3u);
  EXPECT_NE(WarningCapture::messages()[2].find("-2"), std::string::npos);

  // Overflow (parse_count rejects values past long long).
  ASSERT_EQ(setenv("VWSDK_THREADS", "99999999999999999999", 1), 0);
  EXPECT_GE(ThreadPool::default_thread_count(), 1);
  ASSERT_EQ(warnings(), 4u);
  EXPECT_NE(WarningCapture::messages()[3].find("99999999999999999999"),
            std::string::npos);

  // A good value never warns.
  ASSERT_EQ(setenv("VWSDK_THREADS", "2", 1), 0);
  EXPECT_EQ(ThreadPool::default_thread_count(), 2);
  EXPECT_EQ(warnings(), 4u);

  // The literal "0" also degrades cleanly.  Its warning count is not
  // asserted: the env-var test above may have already consumed the
  // once-per-value slot for "0" in this process.
  ASSERT_EQ(setenv("VWSDK_THREADS", "0", 1), 0);
  EXPECT_GE(ThreadPool::default_thread_count(), 1);
}

// ---------------------------------------------------------------------
// Contention cases (ctest label `stress`): these hammer the pool's
// locking hard enough for TSan to see real interleavings, not just the
// happy path.
// ---------------------------------------------------------------------

/// Teardown while the queue is still deep: workers are pinned by gate
/// tasks while the main thread piles up hundreds more, then the pool is
/// destroyed the moment the gate opens.  The destructor contract --
/// drain everything, lose nothing -- must hold on every iteration.
TEST(ThreadPoolStress, TeardownWhileQueueDeepDrainsEveryTask) {
  constexpr int kIterations = 10;
  constexpr int kWorkers = 4;
  constexpr int kQueued = 500;
  for (int iteration = 0; iteration < kIterations; ++iteration) {
    std::atomic<int> count{0};
    std::atomic<bool> gate{false};
    {
      ThreadPool pool(kWorkers);
      for (int i = 0; i < kWorkers; ++i) {
        (void)pool.submit([&] {
          while (!gate.load()) {
            std::this_thread::yield();
          }
          ++count;
        });
      }
      for (int i = 0; i < kQueued; ++i) {
        (void)pool.submit([&count] { ++count; });
      }
      gate.store(true);
    }  // destructor runs with (almost) the whole queue still pending
    ASSERT_EQ(count.load(), kWorkers + kQueued)
        << "iteration " << iteration << " dropped queued tasks";
  }
}

/// Many producers racing on enqueue while consumers drain: every
/// submitted task runs exactly once and every future resolves.
TEST(ThreadPoolStress, ConcurrentProducersNeverLoseOrDuplicateTasks) {
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 250;
  ThreadPool pool(4);
  std::vector<std::atomic<int>> runs(kProducers * kPerProducer);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  std::vector<std::vector<std::future<void>>> futures(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([p, &pool, &runs, &futures] {
      auto& mine = futures[static_cast<std::size_t>(p)];
      mine.reserve(kPerProducer);
      for (int i = 0; i < kPerProducer; ++i) {
        const int slot = p * kPerProducer + i;
        mine.push_back(pool.submit(
            [&runs, slot] { ++runs[static_cast<std::size_t>(slot)]; }));
      }
    });
  }
  for (std::thread& producer : producers) {
    producer.join();
  }
  for (auto& mine : futures) {
    for (auto& future : mine) {
      future.get();
    }
  }
  for (const auto& cell : runs) {
    ASSERT_EQ(cell.load(), 1);
  }
}

/// The once-per-value bad-env warning under a thundering herd: N
/// threads racing default_thread_count() on the same fresh bad value
/// must produce exactly one warning (the warned-set insert and the
/// log_warn used to race before the set moved behind vwsdk::Mutex).
TEST(ThreadPoolStress, BadEnvWarnOnceSurvivesThunderingHerd) {
  ThreadsEnvGuard env_guard;
  WarningCapture capture;
  // A bad value no other test uses: the warned-set is process-wide.
  ASSERT_EQ(setenv("VWSDK_THREADS", "stress-herd", 1), 0);
  constexpr int kThreads = 16;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back(
        [] { EXPECT_GE(ThreadPool::default_thread_count(), 1); });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(WarningCapture::messages().size(), 1u);
  EXPECT_NE(WarningCapture::messages()[0].find("stress-herd"),
            std::string::npos);
}

}  // namespace
}  // namespace vwsdk
