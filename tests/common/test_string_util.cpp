#include "common/string_util.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vwsdk {
namespace {

TEST(StringUtil, SplitKeepsEmptyFields) {
  const auto fields = split("a,,b,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
  EXPECT_EQ(fields[3], "");
}

TEST(StringUtil, SplitSingleField) {
  const auto fields = split("alone", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "alone");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\nvalue\r "), "value");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("no-ws"), "no-ws");
}

TEST(StringUtil, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({"only"}, ","), "only");
  EXPECT_EQ(join({}, ","), "");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-", "--"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(StringUtil, ToLower) {
  EXPECT_EQ(to_lower("VGG-13"), "vgg-13");
  EXPECT_EQ(to_lower("512x512"), "512x512");
}

TEST(StringUtil, ParseCountHappyPath) {
  EXPECT_EQ(parse_count("0"), 0);
  EXPECT_EQ(parse_count(" 114697 "), 114697);
}

TEST(StringUtil, ParseCountRejectsGarbage) {
  EXPECT_THROW(parse_count(""), InvalidArgument);
  EXPECT_THROW(parse_count("12a"), InvalidArgument);
  EXPECT_THROW(parse_count("-3"), InvalidArgument);
  EXPECT_THROW(parse_count("999999999999999999999999"), InvalidArgument);
}

TEST(StringUtil, FormatFixed) {
  EXPECT_EQ(format_fixed(1.694999, 2), "1.69");
  EXPECT_EQ(format_fixed(73.828125, 1), "73.8");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

TEST(StringUtil, WithThousands) {
  EXPECT_EQ(with_thousands(0), "0");
  EXPECT_EQ(with_thousands(999), "999");
  EXPECT_EQ(with_thousands(114697), "114,697");
  EXPECT_EQ(with_thousands(1234567), "1,234,567");
  EXPECT_EQ(with_thousands(-4294), "-4,294");
}

TEST(StringUtil, CatConcatenatesMixedTypes) {
  EXPECT_EQ(cat("pw=", 4, "x", 3, " ratio=", 1.5), "pw=4x3 ratio=1.5");
  EXPECT_EQ(cat(), "");
}

}  // namespace
}  // namespace vwsdk
