#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace vwsdk {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    differing += (a.next_u64() != b.next_u64()) ? 1 : 0;
  }
  EXPECT_GT(differing, 28);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const std::int64_t v = rng.uniform_int(-4, 4);
    EXPECT_GE(v, -4);
    EXPECT_LE(v, 4);
  }
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(11);
  std::array<int, 9> histogram{};
  for (int i = 0; i < 9'000; ++i) {
    histogram[static_cast<std::size_t>(rng.uniform_int(0, 8))]++;
  }
  for (const int count : histogram) {
    // Expectation is 1000 each; a factor-2 band is a loose sanity check.
    EXPECT_GT(count, 500);
    EXPECT_LT(count, 2000);
  }
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.uniform_int(42, 42), 42);
  }
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform_int(3, 2), InvalidArgument);
}

TEST(Rng, UniformDoubleInHalfOpenUnit) {
  Rng rng(13);
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.uniform_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformDoubleRangeAndValidation) {
  Rng rng(17);
  for (int i = 0; i < 1'000; ++i) {
    const double v = rng.uniform_double(-2.5, 2.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 2.5);
  }
  EXPECT_THROW(rng.uniform_double(1.0, 1.0), InvalidArgument);
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng(19);
  const int n = 50'000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(3.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, NormalRejectsNegativeSigma) {
  Rng rng(23);
  EXPECT_THROW(rng.normal(0.0, -1.0), InvalidArgument);
}

TEST(Rng, ExponentialMomentsRoughlyCorrect) {
  // Exponential(rate): mean 1/rate, variance 1/rate^2.
  Rng rng(29);
  const int n = 50'000;
  const double rate = 0.25;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.exponential(rate);
    EXPECT_GE(v, 0.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 4.0, 0.1);
  EXPECT_NEAR(var, 16.0, 0.8);
}

TEST(Rng, ExponentialBitwiseReproducible) {
  Rng a(31);
  Rng b(31);
  for (int i = 0; i < 1'000; ++i) {
    // Bitwise, not approximate: the traffic simulator's determinism
    // contract hangs on this.
    EXPECT_EQ(a.exponential(0.5), b.exponential(0.5));
  }
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(37);
  EXPECT_THROW(rng.exponential(0.0), InvalidArgument);
  EXPECT_THROW(rng.exponential(-1.0), InvalidArgument);
}

TEST(Rng, PoissonMomentsRoughlyCorrect) {
  // Poisson(mean): mean == variance.
  Rng rng(41);
  const int n = 50'000;
  const double mean_in = 6.5;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const auto v = static_cast<double>(rng.poisson(mean_in));
    EXPECT_GE(v, 0.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, mean_in, 0.1);
  EXPECT_NEAR(var, mean_in, 0.3);
}

TEST(Rng, PoissonLargeMeanSurvivesChunking) {
  // 2000 is far past where exp(-mean) underflows; the chunked Knuth
  // implementation must stay exact (Poisson additivity), not degenerate.
  Rng rng(43);
  const int n = 2'000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const auto v = static_cast<double>(rng.poisson(2000.0));
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2000.0, 5.0);
  EXPECT_NEAR(var, 2000.0, 200.0);
}

TEST(Rng, PoissonBitwiseReproducible) {
  Rng a(47);
  Rng b(47);
  for (int i = 0; i < 1'000; ++i) {
    EXPECT_EQ(a.poisson(3.0), b.poisson(3.0));
  }
}

TEST(Rng, PoissonEdgeCases) {
  Rng rng(53);
  EXPECT_EQ(rng.poisson(0.0), 0);
  EXPECT_THROW(rng.poisson(-0.5), InvalidArgument);
}

TEST(SplitMix, KnownGoodSequenceIsStable) {
  // Regression pin: the generator must never silently change, or every
  // "deterministic" test fixture in the repo changes with it.
  SplitMix64 sm(0);
  const std::uint64_t first = sm.next();
  SplitMix64 sm2(0);
  EXPECT_EQ(first, sm2.next());
  EXPECT_NE(first, sm.next());
}

}  // namespace
}  // namespace vwsdk
