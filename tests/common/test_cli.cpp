#include "common/cli.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vwsdk {
namespace {

ArgParser make_parser() {
  ArgParser parser("prog", "test program");
  parser.add_option("model", "vgg13", "model name");
  parser.add_int_option("rows", 512, "array rows");
  parser.add_flag("verbose", "chatty output");
  return parser;
}

bool parse(ArgParser& parser, std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return parser.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, DefaultsApply) {
  ArgParser parser = make_parser();
  EXPECT_TRUE(parse(parser, {}));
  EXPECT_EQ(parser.get("model"), "vgg13");
  EXPECT_EQ(parser.get_int("rows"), 512);
  EXPECT_FALSE(parser.get_flag("verbose"));
}

TEST(Cli, SpaceSeparatedValues) {
  ArgParser parser = make_parser();
  EXPECT_TRUE(parse(parser, {"--model", "resnet18", "--rows", "256"}));
  EXPECT_EQ(parser.get("model"), "resnet18");
  EXPECT_EQ(parser.get_int("rows"), 256);
}

TEST(Cli, EqualsSyntax) {
  ArgParser parser = make_parser();
  EXPECT_TRUE(parse(parser, {"--model=alexnet", "--rows=128"}));
  EXPECT_EQ(parser.get("model"), "alexnet");
  EXPECT_EQ(parser.get_int("rows"), 128);
}

TEST(Cli, FlagsAndPositionals) {
  ArgParser parser = make_parser();
  EXPECT_TRUE(parse(parser, {"--verbose", "pos1", "pos2"}));
  EXPECT_TRUE(parser.get_flag("verbose"));
  ASSERT_EQ(parser.positional().size(), 2u);
  EXPECT_EQ(parser.positional()[0], "pos1");
}

TEST(Cli, HelpReturnsFalseAndPrints) {
  ArgParser parser = make_parser();
  ::testing::internal::CaptureStdout();
  EXPECT_FALSE(parse(parser, {"--help"}));
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("--model"), std::string::npos);
  EXPECT_NE(out.find("default: vgg13"), std::string::npos);
}

TEST(Cli, UnknownOptionThrows) {
  ArgParser parser = make_parser();
  EXPECT_THROW(parse(parser, {"--nope"}), InvalidArgument);
}

TEST(Cli, MissingValueThrows) {
  ArgParser parser = make_parser();
  EXPECT_THROW(parse(parser, {"--model"}), InvalidArgument);
}

TEST(Cli, BadIntegerRejectedAtParseTime) {
  ArgParser parser = make_parser();
  EXPECT_THROW(parse(parser, {"--rows", "abc"}), InvalidArgument);
}

TEST(Cli, FlagWithValueRejected) {
  ArgParser parser = make_parser();
  EXPECT_THROW(parse(parser, {"--verbose=yes"}), InvalidArgument);
}

TEST(Cli, TypedAccessorsEnforceKinds) {
  ArgParser parser = make_parser();
  EXPECT_TRUE(parse(parser, {}));
  EXPECT_THROW(parser.get_int("model"), InvalidArgument);
  EXPECT_THROW(parser.get_flag("rows"), InvalidArgument);
  EXPECT_THROW(parser.get("missing"), NotFound);
}

TEST(Cli, DuplicateDeclarationRejected) {
  ArgParser parser("p", "d");
  parser.add_flag("x", "first");
  EXPECT_THROW(parser.add_flag("x", "again"), InvalidArgument);
}

}  // namespace
}  // namespace vwsdk
