#include "common/error.h"

#include <gtest/gtest.h>

namespace vwsdk {
namespace {

TEST(Error, RequireThrowsInvalidArgumentWithContext) {
  try {
    VWSDK_REQUIRE(1 == 2, "the message");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("the message"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("test_error.cpp"), std::string::npos);
  }
}

TEST(Error, AssertThrowsInternalError) {
  EXPECT_THROW(VWSDK_ASSERT(false, "broken invariant"), InternalError);
}

TEST(Error, PassingChecksDoNotThrow) {
  EXPECT_NO_THROW(VWSDK_REQUIRE(true, "never"));
  EXPECT_NO_THROW(VWSDK_ASSERT(true, "never"));
}

TEST(Error, HierarchyIsCatchableAsError) {
  EXPECT_THROW(throw InvalidArgument("x"), Error);
  EXPECT_THROW(throw InternalError("x"), Error);
  EXPECT_THROW(throw NotFound("x"), Error);
  EXPECT_THROW(throw NotFound("x"), std::runtime_error);
}

}  // namespace
}  // namespace vwsdk
