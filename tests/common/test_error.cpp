#include "common/error.h"

#include <gtest/gtest.h>

namespace vwsdk {
namespace {

TEST(Error, RequireThrowsInvalidArgumentWithContext) {
  try {
    VWSDK_REQUIRE(1 == 2, "the message");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("the message"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("test_error.cpp"), std::string::npos);
  }
}

TEST(Error, AssertThrowsInternalError) {
  EXPECT_THROW(VWSDK_ASSERT(false, "broken invariant"), InternalError);
}

TEST(Error, PassingChecksDoNotThrow) {
  EXPECT_NO_THROW(VWSDK_REQUIRE(true, "never"));
  EXPECT_NO_THROW(VWSDK_ASSERT(true, "never"));
}

TEST(Error, HierarchyIsCatchableAsError) {
  EXPECT_THROW(throw InvalidArgument("x"), Error);
  EXPECT_THROW(throw InternalError("x"), Error);
  EXPECT_THROW(throw NotFound("x"), Error);
  EXPECT_THROW(throw Overflow("x"), Error);
  EXPECT_THROW(throw NotFound("x"), std::runtime_error);
}

// The wire names are a compatibility contract shared by the CLI's exit
// paths and the serve daemon's JSON error responses (docs/SERVE.md).
TEST(Error, ErrorCodeNamesAreStable) {
  EXPECT_STREQ(error_code_name(ErrorCode::kInvalidArgument),
               "invalid_argument");
  EXPECT_STREQ(error_code_name(ErrorCode::kNotFound), "not_found");
  EXPECT_STREQ(error_code_name(ErrorCode::kInternal), "internal");
  EXPECT_STREQ(error_code_name(ErrorCode::kRuntime), "runtime");
  EXPECT_STREQ(error_code_name(ErrorCode::kBadRequest), "bad_request");
  EXPECT_STREQ(error_code_name(ErrorCode::kUnknownOp), "unknown_op");
  EXPECT_STREQ(error_code_name(ErrorCode::kTooLarge), "too_large");
  EXPECT_STREQ(error_code_name(ErrorCode::kOverloaded), "overloaded");
  EXPECT_STREQ(error_code_name(ErrorCode::kShuttingDown), "shutting_down");
  EXPECT_STREQ(error_code_name(ErrorCode::kOverflow), "overflow");
}

TEST(Error, ClassifyExceptionMapsTheHierarchy) {
  EXPECT_EQ(classify_exception(InvalidArgument("x")),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(classify_exception(NotFound("x")), ErrorCode::kNotFound);
  EXPECT_EQ(classify_exception(InternalError("x")), ErrorCode::kInternal);
  EXPECT_EQ(classify_exception(Overflow("x")), ErrorCode::kOverflow);
  EXPECT_EQ(classify_exception(Error("x")), ErrorCode::kRuntime);
  EXPECT_EQ(classify_exception(std::runtime_error("x")),
            ErrorCode::kRuntime);
}

TEST(Error, UsageErrorsAreTheCallerShapedCodes) {
  EXPECT_TRUE(is_usage_error(ErrorCode::kInvalidArgument));
  EXPECT_TRUE(is_usage_error(ErrorCode::kNotFound));
  EXPECT_TRUE(is_usage_error(ErrorCode::kBadRequest));
  EXPECT_TRUE(is_usage_error(ErrorCode::kUnknownOp));
  EXPECT_TRUE(is_usage_error(ErrorCode::kTooLarge));
  EXPECT_TRUE(is_usage_error(ErrorCode::kOverflow));
  EXPECT_FALSE(is_usage_error(ErrorCode::kInternal));
  EXPECT_FALSE(is_usage_error(ErrorCode::kRuntime));
  EXPECT_FALSE(is_usage_error(ErrorCode::kOverloaded));
  EXPECT_FALSE(is_usage_error(ErrorCode::kShuttingDown));
}

}  // namespace
}  // namespace vwsdk
