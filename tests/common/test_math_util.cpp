#include "common/math_util.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vwsdk {
namespace {

TEST(MathUtil, CeilDivExactAndInexact) {
  EXPECT_EQ(ceil_div(0, 5), 0);
  EXPECT_EQ(ceil_div(10, 5), 2);
  EXPECT_EQ(ceil_div(11, 5), 3);
  EXPECT_EQ(ceil_div(1, 512), 1);
  // The paper's ResNet-18 conv5 AR cycles: ceil(9*512 / 512) = 9.
  EXPECT_EQ(ceil_div(9 * 512, 512), 9);
}

TEST(MathUtil, CeilDivRejectsBadInput) {
  EXPECT_THROW(ceil_div(-1, 5), InvalidArgument);
  EXPECT_THROW(ceil_div(5, 0), InvalidArgument);
  EXPECT_THROW(ceil_div(5, -2), InvalidArgument);
}

TEST(MathUtil, FloorDiv) {
  EXPECT_EQ(floor_div(0, 3), 0);
  EXPECT_EQ(floor_div(11, 5), 2);
  // Eq. (4) example: floor(512 / 12) = 42 tiled input channels.
  EXPECT_EQ(floor_div(512, 12), 42);
  EXPECT_THROW(floor_div(-1, 3), InvalidArgument);
  EXPECT_THROW(floor_div(3, 0), InvalidArgument);
}

TEST(MathUtil, CheckedMulHappyPath) {
  EXPECT_EQ(checked_mul(0, 1'000'000), 0);
  EXPECT_EQ(checked_mul(49284, 2), 98568);
}

TEST(MathUtil, CheckedMulOverflowThrows) {
  const Count big = std::numeric_limits<Count>::max() / 2 + 1;
  EXPECT_THROW(checked_mul(big, 2), InvalidArgument);
  EXPECT_THROW(checked_mul(-1, 2), InvalidArgument);
}

TEST(MathUtil, CheckedAdd) {
  EXPECT_EQ(checked_add(114697, 77102), 191799);
  EXPECT_THROW(checked_add(std::numeric_limits<Count>::max(), 1),
               InvalidArgument);
  EXPECT_THROW(checked_add(-3, 1), InvalidArgument);
}

TEST(MathUtil, PowersOfTwo) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(512));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(96));
  EXPECT_FALSE(is_power_of_two(-4));
  EXPECT_EQ(log2_exact(512), 9);
  EXPECT_THROW(log2_exact(96), InvalidArgument);
}

TEST(MathUtil, ClampCount) {
  EXPECT_EQ(clamp_count(5, 0, 10), 5);
  EXPECT_EQ(clamp_count(-5, 0, 10), 0);
  EXPECT_EQ(clamp_count(15, 0, 10), 10);
  EXPECT_THROW(clamp_count(1, 10, 0), InvalidArgument);
}

// Property sweep: ceil_div(a, b) == floor((a + b - 1) / b) and bounds.
class CeilDivProperty : public ::testing::TestWithParam<int> {};

TEST_P(CeilDivProperty, MatchesDefinition) {
  const Count b = GetParam();
  for (Count a = 0; a <= 100; ++a) {
    const Count q = ceil_div(a, b);
    EXPECT_GE(q * b, a);
    EXPECT_LT((q - 1) * b, a) << "a=" << a << " b=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Divisors, CeilDivProperty,
                         ::testing::Values(1, 2, 3, 7, 9, 12, 16, 64, 512));

}  // namespace
}  // namespace vwsdk
