#include "common/math_util.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vwsdk {
namespace {

TEST(MathUtil, CeilDivExactAndInexact) {
  EXPECT_EQ(ceil_div(0, 5), 0);
  EXPECT_EQ(ceil_div(10, 5), 2);
  EXPECT_EQ(ceil_div(11, 5), 3);
  EXPECT_EQ(ceil_div(1, 512), 1);
  // The paper's ResNet-18 conv5 AR cycles: ceil(9*512 / 512) = 9.
  EXPECT_EQ(ceil_div(9 * 512, 512), 9);
}

TEST(MathUtil, CeilDivRejectsBadInput) {
  EXPECT_THROW(ceil_div(-1, 5), InvalidArgument);
  EXPECT_THROW(ceil_div(5, 0), InvalidArgument);
  EXPECT_THROW(ceil_div(5, -2), InvalidArgument);
}

TEST(MathUtil, FloorDiv) {
  EXPECT_EQ(floor_div(0, 3), 0);
  EXPECT_EQ(floor_div(11, 5), 2);
  // Eq. (4) example: floor(512 / 12) = 42 tiled input channels.
  EXPECT_EQ(floor_div(512, 12), 42);
  EXPECT_THROW(floor_div(-1, 3), InvalidArgument);
  EXPECT_THROW(floor_div(3, 0), InvalidArgument);
}

TEST(MathUtil, CheckedMulHappyPath) {
  EXPECT_EQ(checked_mul(0, 1'000'000), 0);
  EXPECT_EQ(checked_mul(49284, 2), 98568);
}

TEST(MathUtil, CheckedMulOverflowThrows) {
  const Count big = std::numeric_limits<Count>::max() / 2 + 1;
  // Unrepresentable results are Overflow (kOverflow on the wire); only
  // negative operands are a caller error (InvalidArgument).
  EXPECT_THROW(checked_mul(big, 2), Overflow);
  EXPECT_THROW(checked_mul(-1, 2), InvalidArgument);
}

TEST(MathUtil, CheckedAdd) {
  EXPECT_EQ(checked_add(114697, 77102), 191799);
  EXPECT_THROW(checked_add(std::numeric_limits<Count>::max(), 1), Overflow);
  EXPECT_THROW(checked_add(-3, 1), InvalidArgument);
}

TEST(MathUtil, PowersOfTwo) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(512));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(96));
  EXPECT_FALSE(is_power_of_two(-4));
  EXPECT_EQ(log2_exact(512), 9);
  EXPECT_THROW(log2_exact(96), InvalidArgument);
}

TEST(MathUtil, ClampCount) {
  EXPECT_EQ(clamp_count(5, 0, 10), 5);
  EXPECT_EQ(clamp_count(-5, 0, 10), 0);
  EXPECT_EQ(clamp_count(15, 0, 10), 10);
  EXPECT_THROW(clamp_count(1, 10, 0), InvalidArgument);
}

TEST(Percentile, NearestRankKnownValues) {
  const std::vector<Count> ten{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  // rank = ceil(p/100 * 10): p25 -> rank 3, p50 -> rank 5, p95 -> rank 10.
  EXPECT_EQ(percentile(ten, 25.0), 3);
  EXPECT_EQ(percentile(ten, 50.0), 5);
  EXPECT_EQ(percentile(ten, 90.0), 9);
  EXPECT_EQ(percentile(ten, 95.0), 10);
  EXPECT_EQ(percentile(ten, 99.9), 10);
  EXPECT_EQ(percentile(ten, 100.0), 10);
}

TEST(Percentile, ZeroPercentIsTheMinimum) {
  // rank clamps up to 1, so p = 0 is total, not an out-of-bounds read.
  EXPECT_EQ(percentile({7, 8, 9}, 0.0), 7);
}

TEST(Percentile, TotalOnEmptyInput) {
  EXPECT_EQ(percentile({}, 50.0), 0);
  EXPECT_EQ(percentile({}, 0.0), 0);
  EXPECT_EQ(percentile({}, 100.0), 0);
}

TEST(Percentile, SingleElementIsEveryPercentile) {
  const std::vector<Count> one{42};
  EXPECT_EQ(percentile(one, 0.0), 42);
  EXPECT_EQ(percentile(one, 50.0), 42);
  EXPECT_EQ(percentile(one, 99.9), 42);
  EXPECT_EQ(percentile(one, 100.0), 42);
}

TEST(Percentile, RejectsOutOfRangeP) {
  const std::vector<Count> values{1, 2, 3};
  EXPECT_THROW(percentile(values, -0.1), InvalidArgument);
  EXPECT_THROW(percentile(values, 100.1), InvalidArgument);
}

TEST(Percentile, DuplicatesAndTailRanks) {
  // Nearest-rank never interpolates: every answer is a sample element.
  const std::vector<Count> values{5, 5, 5, 100};
  EXPECT_EQ(percentile(values, 50.0), 5);
  EXPECT_EQ(percentile(values, 75.0), 5);
  EXPECT_EQ(percentile(values, 76.0), 100);
  EXPECT_EQ(percentile(values, 99.0), 100);
}

// Property sweep: ceil_div(a, b) == floor((a + b - 1) / b) and bounds.
class CeilDivProperty : public ::testing::TestWithParam<int> {};

TEST_P(CeilDivProperty, MatchesDefinition) {
  const Count b = GetParam();
  for (Count a = 0; a <= 100; ++a) {
    const Count q = ceil_div(a, b);
    EXPECT_GE(q * b, a);
    EXPECT_LT((q - 1) * b, a) << "a=" << a << " b=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Divisors, CeilDivProperty,
                         ::testing::Values(1, 2, 3, 7, 9, 12, 16, 64, 512));

}  // namespace
}  // namespace vwsdk
