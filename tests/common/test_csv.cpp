#include "common/csv.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"

namespace vwsdk {
namespace {

TEST(Csv, WriterEmitsHeaderAndRows) {
  std::ostringstream os;
  CsvWriter writer(os, {"layer", "cycles"});
  writer.write_row({"conv1", "2809"});
  EXPECT_EQ(os.str(), "layer,cycles\nconv1,2809\n");
  EXPECT_EQ(writer.rows_written(), 1);
}

TEST(Csv, WriterRejectsWidthMismatch) {
  std::ostringstream os;
  CsvWriter writer(os, {"a", "b"});
  EXPECT_THROW(writer.write_row({"x"}), InvalidArgument);
}

TEST(Csv, WriterRejectsEmptyHeader) {
  std::ostringstream os;
  EXPECT_THROW(CsvWriter(os, {}), InvalidArgument);
}

TEST(Csv, EscapeQuotesOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("has,comma"), "\"has,comma\"");
  EXPECT_EQ(csv_escape("has\"quote"), "\"has\"\"quote\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
  // '#'-leading fields are quoted so comment-stripping dialects (the
  // network-spec CSV) cannot eat them; '#' elsewhere stays bare.
  EXPECT_EQ(csv_escape("#1"), "\"#1\"");
  EXPECT_EQ(csv_escape("a#1"), "a#1");
}

TEST(Csv, ParseSimpleLine) {
  const auto fields = csv_parse_line("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "b");
}

TEST(Csv, ParseQuotedFields) {
  const auto fields = csv_parse_line("\"has,comma\",\"q\"\"q\",tail");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "has,comma");
  EXPECT_EQ(fields[1], "q\"q");
  EXPECT_EQ(fields[2], "tail");
}

TEST(Csv, ParseRejectsUnterminatedQuote) {
  EXPECT_THROW(csv_parse_line("\"open"), InvalidArgument);
}

TEST(Csv, RoundTrip) {
  const std::vector<std::string> original{"a,b", "c\"d", "plain", ""};
  std::string line;
  for (std::size_t i = 0; i < original.size(); ++i) {
    if (i != 0) {
      line += ',';
    }
    line += csv_escape(original[i]);
  }
  EXPECT_EQ(csv_parse_line(line), original);
}

}  // namespace
}  // namespace vwsdk
