#include "common/table.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"

namespace vwsdk {
namespace {

TEST(TextTable, RendersHeadersAndRows) {
  TextTable table({"layer", "cycles"});
  table.add_row({"conv1", "2809"});
  table.add_row({"conv2", "1458"});
  const std::string out = table.render();
  EXPECT_NE(out.find("layer"), std::string::npos);
  EXPECT_NE(out.find("2809"), std::string::npos);
  EXPECT_NE(out.find("conv2"), std::string::npos);
  // Bordered: starts and ends with a rule line.
  EXPECT_EQ(out.front(), '+');
  EXPECT_EQ(out.back(), '\n');
}

TEST(TextTable, AlignmentPadsNumbersRight) {
  TextTable table({"name", "n"});
  table.add_row({"a", "5"});
  table.add_row({"b", "12345"});
  const std::string out = table.render();
  // The short number must be right-aligned: "    5 |" appears.
  EXPECT_NE(out.find("    5 |"), std::string::npos);
}

TEST(TextTable, SeparatorRendersRule) {
  TextTable table({"x"});
  table.add_row({"1"});
  table.add_separator();
  table.add_row({"2"});
  const std::string out = table.render();
  // 5 rule lines total: top, under header, separator, bottom... count '+--'.
  int rules = 0;
  std::istringstream is(out);
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line[0] == '+') {
      ++rules;
    }
  }
  EXPECT_EQ(rules, 4);  // top, header rule, mid separator, bottom
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), InvalidArgument);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), InvalidArgument);
}

TEST(TextTable, RowCountExcludesSeparators) {
  TextTable table({"a"});
  table.add_row({"1"});
  table.add_separator();
  table.add_row({"2"});
  EXPECT_EQ(table.row_count(), 3);  // includes the separator entry
}

TEST(TextTable, StreamOperatorMatchesRender) {
  TextTable table({"h"});
  table.add_row({"v"});
  std::ostringstream os;
  os << table;
  EXPECT_EQ(os.str(), table.render());
}

TEST(TextTable, CustomAlignments) {
  TextTable table({"l", "r"});
  table.set_alignments({Align::kLeft, Align::kLeft});
  table.add_row({"x", "1"});
  table.add_row({"y", "22"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| 1  |"), std::string::npos);
  EXPECT_THROW(table.set_alignments({Align::kLeft}), InvalidArgument);
}

}  // namespace
}  // namespace vwsdk
