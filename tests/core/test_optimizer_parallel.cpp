/// Concurrency determinism of the network-mapping engine: the threaded
/// optimizer (any thread count, either fan-out mode, cached or not) must
/// produce byte-identical MappingDecisions and cycle totals to a forced
/// single-thread run, and the MappingCache counters must be exact.

#include "core/network_optimizer.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/search_trace.h"
#include "core/vwsdk_mapper.h"
#include "nn/model_zoo.h"

namespace vwsdk {
namespace {

const ArrayGeometry k512x512{512, 512};

void expect_identical(const NetworkMappingResult& a,
                      const NetworkMappingResult& b) {
  ASSERT_EQ(a.layers.size(), b.layers.size());
  EXPECT_EQ(a.network_name, b.network_name);
  EXPECT_EQ(a.algorithm, b.algorithm);
  EXPECT_EQ(a.total_cycles(), b.total_cycles());
  for (std::size_t i = 0; i < a.layers.size(); ++i) {
    EXPECT_EQ(a.layers[i].decision, b.layers[i].decision)
        << a.network_name << " layer " << i;
    EXPECT_EQ(a.layers[i].layer.name, b.layers[i].layer.name);
  }
}

TEST(OptimizerParallel, FourThreadsMatchSingleThreadAcrossModelZoo) {
  const VwSdkMapper mapper;
  for (const std::string& model : model_names()) {
    const Network net = model_by_name(model);
    const NetworkMappingResult sequential = optimize_network(
        mapper, net, k512x512, OptimizerOptions{.threads = 1});
    const NetworkMappingResult threaded = optimize_network(
        mapper, net, k512x512, OptimizerOptions{.threads = 4});
    expect_identical(sequential, threaded);
  }
}

TEST(OptimizerParallel, IntraLayerModeMatchesSingleThread) {
  const VwSdkMapper mapper;
  for (const char* model : {"vgg13", "alexnet", "stress"}) {
    const Network net = model_by_name(model);
    const NetworkMappingResult sequential = optimize_network(
        mapper, net, k512x512, OptimizerOptions{.threads = 1});
    OptimizerOptions options;
    options.threads = 4;
    options.intra_layer = true;
    const NetworkMappingResult intra =
        optimize_network(mapper, net, k512x512, options);
    expect_identical(sequential, intra);
  }
}

TEST(OptimizerParallel, ExternalPoolAndManyThreadsStayDeterministic) {
  const VwSdkMapper mapper;
  ThreadPool pool(8);
  OptimizerOptions options;
  options.pool = &pool;
  const Network net = vgg13_paper();
  const NetworkMappingResult expected = optimize_network(
      mapper, net, k512x512, OptimizerOptions{.threads = 1});
  for (int run = 0; run < 5; ++run) {
    expect_identical(expected,
                     optimize_network(mapper, net, k512x512, options));
  }
}

TEST(OptimizerParallel, TracedSearchWithPoolMatchesSequentialScanOrder) {
  const VwSdkMapper mapper;
  const ConvShape shape = ConvShape::square(56, 3, 128, 256);
  SearchTrace sequential_trace;
  const MappingDecision sequential =
      mapper.map_traced(shape, k512x512, &sequential_trace);
  ThreadPool pool(4);
  SearchTrace pooled_trace;
  const MappingDecision pooled =
      mapper.map_traced(shape, k512x512, &pooled_trace, &pool);
  EXPECT_EQ(sequential, pooled);
  ASSERT_EQ(sequential_trace.steps().size(), pooled_trace.steps().size());
  for (std::size_t i = 0; i < sequential_trace.steps().size(); ++i) {
    const SearchStep& a = sequential_trace.steps()[i];
    const SearchStep& b = pooled_trace.steps()[i];
    EXPECT_EQ(a.window, b.window) << "step " << i;
    EXPECT_EQ(a.feasible, b.feasible) << "step " << i;
    EXPECT_EQ(a.cycles, b.cycles) << "step " << i;
    EXPECT_EQ(a.improved, b.improved) << "step " << i;
  }
}

TEST(OptimizerParallel, CacheReportsExactHitCountOnVgg16) {
  // VGG-16 lists 13 conv layers over 9 distinct shapes; a fresh cache
  // must therefore miss 9 times and hit 4, in every threading mode.
  const VwSdkMapper mapper;
  const Network net = vgg16();
  std::set<std::string> distinct;
  for (const ConvLayerDesc& layer : net.layers()) {
    distinct.insert(ConvShape::from_layer(layer).to_string());
  }
  ASSERT_EQ(distinct.size(), 9u);
  const Count total = static_cast<Count>(net.layers().size());

  for (const int threads : {1, 4}) {
    MappingCache cache;
    OptimizerOptions options;
    options.threads = threads;
    options.cache = &cache;
    const NetworkMappingResult result =
        optimize_network(mapper, net, k512x512, options);
    EXPECT_EQ(cache.stats().misses, 9) << threads << " threads";
    EXPECT_EQ(cache.stats().hits, total - 9) << threads << " threads";
    EXPECT_EQ(cache.size(), 9) << threads << " threads";
    expect_identical(result,
                     optimize_network(mapper, net, k512x512,
                                      OptimizerOptions{.threads = 1}));
  }
}

TEST(OptimizerParallel, SharedCacheSpansComparisonsAndGeometries) {
  MappingCache cache;
  OptimizerOptions options;
  options.threads = 4;
  options.cache = &cache;
  const NetworkComparison first = compare_mappers(
      {"im2col", "sdk", "vw-sdk"}, resnet18_paper(), k512x512, options);
  const MappingCacheStats after_first = cache.stats();
  EXPECT_EQ(after_first.misses, 15);  // 5 layers x 3 mappers, no repeats
  // Same request again: everything hits.
  const NetworkComparison second = compare_mappers(
      {"im2col", "sdk", "vw-sdk"}, resnet18_paper(), k512x512, options);
  EXPECT_EQ(cache.stats().misses, after_first.misses);
  EXPECT_EQ(cache.stats().hits, after_first.hits + 15);
  for (std::size_t i = 0; i < first.results.size(); ++i) {
    expect_identical(first.results[i], second.results[i]);
  }
  // A different geometry is a different key: no false sharing.
  (void)compare_mappers({"vw-sdk"}, resnet18_paper(), {256, 256}, options);
  EXPECT_EQ(cache.stats().misses, after_first.misses + 5);
}

TEST(OptimizerParallel, Vgg16PaperTotalSurvivesEveryMode) {
  // Totals pinned by the sequential engine must not drift in any mode.
  const VwSdkMapper mapper;
  const Network net = vgg16();
  const Cycles expected =
      optimize_network(mapper, net, k512x512, OptimizerOptions{.threads = 1})
          .total_cycles();
  MappingCache cache;
  OptimizerOptions cached_intra;
  cached_intra.threads = 4;
  cached_intra.intra_layer = true;
  cached_intra.cache = &cache;
  EXPECT_EQ(
      optimize_network(mapper, net, k512x512, cached_intra).total_cycles(),
      expected);
  EXPECT_EQ(optimize_network(mapper, net, k512x512).total_cycles(),
            expected);  // default options (auto thread count)
}

}  // namespace
}  // namespace vwsdk
