#include "core/smd_mapper.h"

#include <gtest/gtest.h>

#include "core/im2col_mapper.h"

namespace vwsdk {
namespace {

TEST(SmdMapper, DuplicatesSmallLayers) {
  const SmdMapper mapper;
  EXPECT_EQ(mapper.name(), "smd");
  const ConvShape small = ConvShape::square(10, 3, 4, 8);
  const MappingDecision decision = mapper.map(small, {512, 512});
  EXPECT_EQ(decision.cost.smd_duplicates, 14);
  EXPECT_LT(decision.cost.total,
            Im2colMapper().map(small, {512, 512}).cost.total);
}

TEST(SmdMapper, LargeLayersDegenerate) {
  const SmdMapper mapper;
  const ConvShape big = ConvShape::square(7, 3, 512, 512);
  const MappingDecision smd = mapper.map(big, {512, 512});
  const MappingDecision base = Im2colMapper().map(big, {512, 512});
  EXPECT_EQ(smd.cost.smd_duplicates, 1);
  EXPECT_EQ(smd.cost.total, base.cost.total);
}

TEST(SmdMapper, SitsBetweenIm2colAndVwOnSmallLayers) {
  // The paper's Fig. 2 ordering: SMD improves on im2col by duplication
  // but lacks input reuse, so VW-SDK (via make_mapper) must be at least
  // as good on layers where windows help.
  const ConvShape shape = ConvShape::square(16, 3, 2, 4);
  const ArrayGeometry geometry{128, 64};
  const Cycles im2col =
      make_mapper("im2col")->map(shape, geometry).cost.total;
  const Cycles smd = make_mapper("smd")->map(shape, geometry).cost.total;
  const Cycles vw = make_mapper("vw-sdk")->map(shape, geometry).cost.total;
  EXPECT_LE(smd, im2col);
  EXPECT_LE(vw, im2col);
}

}  // namespace
}  // namespace vwsdk
