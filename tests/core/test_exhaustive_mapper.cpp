#include "core/exhaustive_mapper.h"

#include <gtest/gtest.h>

#include "core/vwsdk_mapper.h"

namespace vwsdk {
namespace {

TEST(ExhaustiveMapper, FindsGlobalMinimumOnSmallLayer) {
  const ExhaustiveMapper oracle;
  EXPECT_EQ(oracle.name(), "exhaustive");
  const ConvShape shape = ConvShape::square(8, 3, 4, 6);
  const ArrayGeometry geometry{64, 32};
  const MappingDecision best = oracle.map(shape, geometry);
  // Verify optimality by brute re-scan.
  for (Dim w = 3; w <= 8; ++w) {
    for (Dim h = 3; h <= 8; ++h) {
      const CycleCost candidate = vw_cost(shape, geometry, {w, h});
      if (candidate.feasible) {
        EXPECT_LE(best.cost.total, candidate.total);
      }
    }
  }
  EXPECT_LE(best.cost.total, im2col_cost(shape, geometry).total);
}

TEST(ExhaustiveMapper, AgreesWithVwSdkOnPaperLayers) {
  const ExhaustiveMapper oracle;
  const VwSdkMapper vw;
  for (const ConvShape& shape :
       {ConvShape::square(56, 3, 128, 256), ConvShape::square(7, 3, 512, 512),
        ConvShape::square(112, 7, 3, 64)}) {
    EXPECT_EQ(oracle.map(shape, {512, 512}).cost.total,
              vw.map(shape, {512, 512}).cost.total)
        << shape.to_string();
  }
}

}  // namespace
}  // namespace vwsdk
