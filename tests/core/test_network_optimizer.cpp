#include "core/network_optimizer.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/vwsdk_mapper.h"
#include "nn/model_zoo.h"

namespace vwsdk {
namespace {

const ArrayGeometry k512x512{512, 512};

TEST(NetworkOptimizer, CoversEveryLayerInOrder) {
  const VwSdkMapper mapper;
  const Network net = resnet18_paper();
  const NetworkMappingResult result =
      optimize_network(mapper, net, k512x512);
  ASSERT_EQ(result.layers.size(), 5u);
  EXPECT_EQ(result.network_name, "ResNet-18");
  EXPECT_EQ(result.algorithm, "vw-sdk");
  for (std::size_t i = 0; i < result.layers.size(); ++i) {
    EXPECT_EQ(result.layers[i].layer.name,
              net.layer(static_cast<Count>(i)).name);
  }
}

TEST(NetworkOptimizer, TotalIsSumOfLayers) {
  const VwSdkMapper mapper;
  const NetworkMappingResult result =
      optimize_network(mapper, resnet18_paper(), k512x512);
  Cycles sum = 0;
  for (Count i = 0; i < static_cast<Count>(result.layers.size()); ++i) {
    sum += result.layer_cycles(i);
  }
  EXPECT_EQ(result.total_cycles(), sum);
  EXPECT_EQ(sum, 4294);
}

TEST(NetworkOptimizer, LayerCyclesBoundsChecked) {
  const VwSdkMapper mapper;
  const NetworkMappingResult result =
      optimize_network(mapper, resnet18_paper(), k512x512);
  EXPECT_THROW(result.layer_cycles(5), InvalidArgument);
  EXPECT_THROW(result.layer_cycles(-1), InvalidArgument);
}

TEST(NetworkOptimizer, EmptyNetworkRejected) {
  const VwSdkMapper mapper;
  const Network empty("none");
  EXPECT_THROW(optimize_network(mapper, empty, k512x512), InvalidArgument);
}

TEST(CompareMappers, SpeedupsAndOrdering) {
  const NetworkComparison cmp =
      compare_mappers({"im2col", "sdk", "vw-sdk"}, resnet18_paper(),
                      k512x512);
  ASSERT_EQ(cmp.results.size(), 3u);
  EXPECT_DOUBLE_EQ(cmp.speedup(0, 0), 1.0);
  EXPECT_GT(cmp.speedup(0, 1), 1.0);
  EXPECT_GT(cmp.speedup(0, 2), cmp.speedup(0, 1));
  // Per-layer speedups: conv3 is where SDK stalls but VW-SDK does not.
  EXPECT_DOUBLE_EQ(cmp.layer_speedup(0, 1, 2), 1.0);
  EXPECT_EQ(cmp.layer_speedup(0, 2, 2), 3.0);  // 2028 / 676
}

TEST(CompareMappers, IndexValidation) {
  const NetworkComparison cmp =
      compare_mappers({"im2col"}, lenet5(), k512x512);
  EXPECT_THROW(cmp.speedup(0, 1), InvalidArgument);
  EXPECT_THROW(cmp.layer_speedup(1, 0, 0), InvalidArgument);
  EXPECT_THROW(compare_mappers({}, lenet5(), k512x512), InvalidArgument);
}

TEST(CompareMappers, WorksAcrossModelsAndGeometries) {
  for (const char* model : {"lenet5", "alexnet", "stress"}) {
    for (const ArrayGeometry& geometry : paper_geometries()) {
      const NetworkComparison cmp = compare_mappers(
          {"im2col", "vw-sdk"}, model_by_name(model), geometry);
      EXPECT_GE(cmp.speedup(0, 1), 1.0)
          << model << " on " << geometry.to_string();
    }
  }
}

}  // namespace
}  // namespace vwsdk
