/// Acceptance pins for the objective-aware mapping API:
///  * with the default / explicit cycles objective, every zoo network's
///    decisions, traces, and totals are identical to the pre-objective
///    search (which the paper-number suites pin against Table I);
///  * energy provably changes a zoo window choice (VGG-13 conv5);
///  * edp runs end to end through the optimizer;
///  * the cache keys on the objective;
///  * pruned/exhaustive/parallel searches stay consistent under every
///    objective.

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/bit_sliced_mapper.h"
#include "core/exhaustive_mapper.h"
#include "core/mapping_cache.h"
#include "core/network_optimizer.h"
#include "core/pruned_mapper.h"
#include "core/vwsdk_mapper.h"
#include "nn/model_zoo.h"

namespace vwsdk {
namespace {

const ArrayGeometry k512x512{512, 512};

MappingContext context_for(const ConvShape& shape,
                           const ArrayGeometry& geometry,
                           const Objective& objective) {
  MappingContext context{shape, geometry};
  context.objective = &objective;
  return context;
}

TEST(ObjectiveMapping, DefaultAndExplicitCyclesAreIdenticalAcrossZoo) {
  const VwSdkMapper mapper;
  for (const std::string& name : model_names()) {
    const Network network = model_by_name(name);
    const NetworkMappingResult legacy =
        optimize_network(mapper, network, k512x512);
    OptimizerOptions options;
    options.objective = &cycles_objective();
    const NetworkMappingResult scored =
        optimize_network(mapper, network, k512x512, options);
    ASSERT_EQ(legacy.layers.size(), scored.layers.size()) << name;
    EXPECT_EQ(legacy.objective, "cycles") << name;
    EXPECT_EQ(scored.objective, "cycles") << name;
    for (std::size_t i = 0; i < legacy.layers.size(); ++i) {
      EXPECT_EQ(legacy.layers[i].decision, scored.layers[i].decision)
          << name << " layer " << i;
    }
    EXPECT_EQ(legacy.total_cycles(), scored.total_cycles()) << name;
    // Under cycles the score IS the cycle count.
    EXPECT_EQ(scored.total_score(),
              static_cast<double>(scored.total_cycles()))
        << name;
  }
}

TEST(ObjectiveMapping, TraceIdenticalUnderExplicitCyclesObjective) {
  const VwSdkMapper mapper;
  const ConvShape conv5 = ConvShape::square(56, 3, 128, 256);

  SearchTrace legacy;
  (void)mapper.map_traced(conv5, k512x512, &legacy);

  SearchTrace scored;
  MappingContext context = context_for(conv5, k512x512, cycles_objective());
  context.trace = &scored;
  (void)mapper.map(context);

  ASSERT_EQ(legacy.steps().size(), scored.steps().size());
  for (std::size_t i = 0; i < legacy.steps().size(); ++i) {
    const SearchStep& a = legacy.steps()[i];
    const SearchStep& b = scored.steps()[i];
    EXPECT_EQ(a.window, b.window) << i;
    EXPECT_EQ(a.feasible, b.feasible) << i;
    EXPECT_EQ(a.cycles, b.cycles) << i;
    EXPECT_EQ(a.improved, b.improved) << i;
    if (b.feasible) {
      EXPECT_EQ(b.score, static_cast<double>(b.cycles)) << i;
    }
  }
}

TEST(ObjectiveMapping, EnergyPicksADifferentWindowOnVgg13Conv5) {
  // The paper's cycle search picks 4x3 (5832 cycles); under active
  // accounting that window pays a 4-way channel-granular AR split where
  // im2col's element-granular split is 3-way, so the energy search
  // keeps the kernel window instead -- more cycles, fewer conversions.
  const VwSdkMapper mapper;
  const ConvShape conv5 =
      ConvShape::from_layer(vgg13_paper().layer_by_name("conv5"));

  const MappingDecision by_cycles = mapper.map(conv5, k512x512);
  const MappingDecision by_energy =
      mapper.map(context_for(conv5, k512x512, energy_objective()));

  EXPECT_EQ(by_cycles.cost.window, (ParallelWindow{4, 3}));
  EXPECT_EQ(by_cycles.cost.total, 5832);
  EXPECT_NE(by_energy.cost.window, by_cycles.cost.window);
  EXPECT_TRUE(by_energy.is_im2col_fallback());
  EXPECT_EQ(by_energy.objective, "energy");

  // The energy pick must actually be cheaper in energy, and the cycle
  // pick cheaper in cycles -- the objectives genuinely disagree here.
  const double cycle_pick_energy = energy_objective().score(
      conv5, k512x512, by_cycles.cost);
  EXPECT_LT(by_energy.score, cycle_pick_energy);
  EXPECT_GT(by_energy.cost.total, by_cycles.cost.total);
}

TEST(ObjectiveMapping, EnergySearchNeverLosesToCycleSearchOnEnergy) {
  const VwSdkMapper mapper;
  for (const char* name : {"vgg13", "resnet18"}) {
    const Network network = model_by_name(name);
    for (const ConvLayerDesc& layer : network.layers()) {
      const ConvShape shape = ConvShape::from_layer(layer);
      const MappingDecision by_cycles = mapper.map(shape, k512x512);
      const MappingDecision by_energy =
          mapper.map(context_for(shape, k512x512, energy_objective()));
      const double cycle_pick_energy =
          energy_objective().score(shape, k512x512, by_cycles.cost);
      EXPECT_LE(by_energy.score, cycle_pick_energy)
          << name << " " << layer.name;
    }
  }
}

TEST(ObjectiveMapping, ExhaustiveLowerBoundsVwSdkUnderEveryObjective) {
  const VwSdkMapper vw;
  const ExhaustiveMapper oracle;
  const std::vector<ConvShape> shapes{
      ConvShape::square(56, 3, 128, 256), ConvShape::square(14, 3, 256, 256),
      ConvShape::square(28, 3, 128, 128), ConvShape::square(32, 5, 16, 32)};
  for (const ConvShape& shape : shapes) {
    for (const Objective* objective :
         {&cycles_objective(), &energy_objective(), &edp_objective()}) {
      const MappingDecision best =
          vw.map(context_for(shape, k512x512, *objective));
      const MappingDecision reference =
          oracle.map(context_for(shape, k512x512, *objective));
      EXPECT_LE(reference.score, best.score)
          << shape.to_string() << " under " << objective->name();
    }
  }
}

TEST(ObjectiveMapping, PrunedMatchesVwSdkUnderEveryObjective) {
  // Prune 3 is cycles-only; under energy/edp the pruned mapper must
  // disable it and still land on the identical optimum.
  const VwSdkMapper vw;
  const PrunedVwSdkMapper pruned;
  for (const char* name : {"vgg13", "resnet18"}) {
    const Network network = model_by_name(name);
    for (const ConvLayerDesc& layer : network.layers()) {
      const ConvShape shape = ConvShape::from_layer(layer);
      for (const Objective* objective :
           {&cycles_objective(), &energy_objective(), &edp_objective()}) {
        const MappingDecision a =
            vw.map(context_for(shape, k512x512, *objective));
        const MappingDecision b =
            pruned.map(context_for(shape, k512x512, *objective));
        EXPECT_EQ(a.cost, b.cost)
            << name << " " << layer.name << " under " << objective->name();
        EXPECT_EQ(a.score, b.score)
            << name << " " << layer.name << " under " << objective->name();
      }
    }
  }
}

TEST(ObjectiveMapping, ParallelSearchIdenticalUnderEnergy) {
  const VwSdkMapper mapper;
  const ConvShape conv5 = ConvShape::square(56, 3, 128, 256);
  ThreadPool pool(4);
  MappingContext sequential =
      context_for(conv5, k512x512, energy_objective());
  MappingContext threaded = sequential;
  threaded.pool = &pool;
  EXPECT_EQ(mapper.map(sequential), mapper.map(threaded));
}

TEST(ObjectiveMapping, EdpRunsEndToEndThroughTheOptimizer) {
  const VwSdkMapper mapper;
  OptimizerOptions options;
  options.objective = &edp_objective();
  const NetworkMappingResult result =
      optimize_network(mapper, resnet18_paper(), k512x512, options);
  EXPECT_EQ(result.objective, "edp");
  EXPECT_GT(result.total_score(), 0.0);
  double sum = 0.0;
  for (const LayerMapping& lm : result.layers) {
    EXPECT_EQ(lm.decision.objective, "edp");
    EXPECT_EQ(lm.decision.score,
              edp_objective().score(lm.decision.shape, k512x512,
                                    lm.decision.cost));
    sum += lm.score();
  }
  EXPECT_DOUBLE_EQ(result.total_score(), sum);
}

TEST(ObjectiveMapping, GroupedLayerScoreScalesWithGroups) {
  Network network("grouped");
  ConvLayerDesc dw = make_conv_layer("dw", 30, 3, 16, 16);
  dw.groups = 16;
  network.add_layer(dw);
  const VwSdkMapper mapper;
  OptimizerOptions options;
  options.objective = &energy_objective();
  const NetworkMappingResult result =
      optimize_network(mapper, network, k512x512, options);
  ASSERT_EQ(result.layers.size(), 1u);
  const LayerMapping& lm = result.layers.front();
  EXPECT_DOUBLE_EQ(lm.score(), 16.0 * lm.decision.score);
  EXPECT_DOUBLE_EQ(result.total_score(), lm.score());
}

TEST(ObjectiveMapping, BitSlicedObjectiveScoringGuard) {
  const ConvShape conv5 = ConvShape::square(56, 3, 128, 256);
  // Degenerate (default) config: every cost equals the plain model's,
  // so energy scoring is exact and allowed.
  const BitSlicedVwSdkMapper plain;
  const MappingDecision scored =
      plain.map(context_for(conv5, k512x512, energy_objective()));
  EXPECT_EQ(scored.objective, "energy");
  EXPECT_EQ(scored.score,
            energy_objective().score(conv5, k512x512, scored.cost));
  // A sliced config must refuse non-cycles objectives (the activity
  // model is slicing-unaware) instead of reporting a wrong figure...
  BitSlicingConfig sliced;
  sliced.cell_bits = 1;  // 8 slices per weight
  const BitSlicedVwSdkMapper mapper(sliced);
  EXPECT_THROW(
      mapper.map(context_for(conv5, k512x512, energy_objective())),
      InvalidArgument);
  // ...while the cycles search is unaffected.
  EXPECT_NO_THROW(mapper.map(conv5, k512x512));
}

TEST(ObjectiveMapping, CacheDistinguishesObjectiveParameterizations) {
  const VwSdkMapper mapper;
  MappingCache cache;
  const ConvShape conv5 = ConvShape::square(56, 3, 128, 256);
  EnergyParams hot;
  hot.adc_pj_per_col *= 100.0;
  const EnergyObjective custom(hot);

  (void)cache.map(mapper, context_for(conv5, k512x512, energy_objective()));
  (void)cache.map(mapper, context_for(conv5, k512x512, custom));
  // Same objective *name*, different parameters: two distinct searches.
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_EQ(cache.size(), 2);
}

TEST(ObjectiveMapping, CacheKeysOnTheObjective) {
  const VwSdkMapper mapper;
  MappingCache cache;
  const ConvShape conv5 = ConvShape::square(56, 3, 128, 256);

  MappingContext by_cycles{conv5, k512x512};
  MappingContext by_energy = context_for(conv5, k512x512, energy_objective());

  const MappingDecision first = cache.map(mapper, by_cycles);
  const MappingDecision second = cache.map(mapper, by_energy);
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_NE(first.cost.window, second.cost.window);

  // Replays hit their own objective's entry.
  EXPECT_EQ(cache.map(mapper, by_cycles), first);
  EXPECT_EQ(cache.map(mapper, by_energy), second);
  EXPECT_EQ(cache.stats().hits, 2);
  EXPECT_EQ(cache.size(), 2);
}

TEST(ObjectiveMapping, OptimizerWithCacheMatchesWithoutUnderEnergy) {
  const VwSdkMapper mapper;
  OptimizerOptions plain;
  plain.objective = &energy_objective();
  const NetworkMappingResult expected =
      optimize_network(mapper, vgg16(), k512x512, plain);

  MappingCache cache;
  OptimizerOptions cached = plain;
  cached.cache = &cache;
  const NetworkMappingResult memoized =
      optimize_network(mapper, vgg16(), k512x512, cached);
  ASSERT_EQ(expected.layers.size(), memoized.layers.size());
  for (std::size_t i = 0; i < expected.layers.size(); ++i) {
    EXPECT_EQ(expected.layers[i].decision, memoized.layers[i].decision) << i;
  }
  EXPECT_GT(cache.stats().hits, 0);
}

}  // namespace
}  // namespace vwsdk
