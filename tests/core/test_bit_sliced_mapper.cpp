#include "core/bit_sliced_mapper.h"

#include <gtest/gtest.h>

#include "core/vwsdk_mapper.h"

namespace vwsdk {
namespace {

const ArrayGeometry k512x512{512, 512};

TEST(BitSlicedMapper, DefaultConfigEqualsVwSdk) {
  const BitSlicedVwSdkMapper sliced;
  const VwSdkMapper plain;
  for (const ConvShape& shape :
       {ConvShape::square(56, 3, 128, 256), ConvShape::square(112, 7, 3, 64),
        ConvShape::square(7, 3, 512, 512)}) {
    EXPECT_EQ(sliced.map(shape, k512x512).cost.total,
              plain.map(shape, k512x512).cost.total)
        << shape.to_string();
  }
}

TEST(BitSlicedMapper, WindowAdaptsToSliceCount) {
  // With 1-bit cells (8 slices) every window position costs 8 columns, so
  // the optimizer should prefer windows with fewer positions than the
  // full-precision choice -- or at least never a more column-hungry one.
  BitSlicingConfig coarse;
  coarse.cell_bits = 1;
  const BitSlicedVwSdkMapper sliced(coarse);
  const VwSdkMapper plain;
  const ConvShape conv3 = ConvShape::square(28, 3, 128, 128);
  const MappingDecision sliced_decision = sliced.map(conv3, k512x512);
  const MappingDecision plain_decision = plain.map(conv3, k512x512);
  const Count sliced_nwp = windows_in_pw(conv3, sliced_decision.cost.window);
  const Count plain_nwp = windows_in_pw(conv3, plain_decision.cost.window);
  EXPECT_LE(sliced_nwp, plain_nwp);
  EXPECT_GE(sliced_decision.cost.total, plain_decision.cost.total);
}

TEST(BitSlicedMapper, NeverWorseThanBitSlicedIm2col) {
  BitSlicingConfig config;
  config.cell_bits = 2;
  config.dac_bits = 4;
  const BitSlicedVwSdkMapper mapper(config);
  for (const ConvShape& shape :
       {ConvShape::square(56, 3, 64, 64), ConvShape::square(14, 3, 256, 256),
        ConvShape::square(28, 3, 256, 512)}) {
    EXPECT_LE(mapper.map(shape, k512x512).cost.total,
              im2col_cost_bitsliced(shape, k512x512, config).total)
        << shape.to_string();
  }
}

TEST(BitSlicedMapper, MetadataAndName) {
  BitSlicingConfig config;
  config.cell_bits = 4;
  const BitSlicedVwSdkMapper mapper(config);
  EXPECT_EQ(mapper.name(), "vw-sdk-bitsliced");
  EXPECT_EQ(mapper.config().cell_bits, 4);
}

}  // namespace
}  // namespace vwsdk
