#include "core/grouped_conv.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/im2col_mapper.h"
#include "core/vwsdk_mapper.h"

namespace vwsdk {
namespace {

const ArrayGeometry k512x512{512, 512};

TEST(GroupedConv, OneGroupEqualsPlainMapping) {
  const GroupedConvShape shape{ConvShape::square(56, 3, 128, 256), 1};
  const VwSdkMapper mapper;
  const GroupedDecision grouped = map_grouped(mapper, shape, k512x512);
  EXPECT_EQ(grouped.total_cycles,
            mapper.map(shape.base, k512x512).cost.total);
}

TEST(GroupedConv, GroupShapeSplitsChannels) {
  const GroupedConvShape shape{ConvShape::square(28, 3, 128, 256), 4};
  const ConvShape group = shape.group_shape();
  EXPECT_EQ(group.in_channels, 32);
  EXPECT_EQ(group.out_channels, 64);
  EXPECT_EQ(group.ifm_w, 28);
}

TEST(GroupedConv, Validation) {
  GroupedConvShape bad{ConvShape::square(28, 3, 128, 256), 3};
  EXPECT_THROW(bad.validate(), InvalidArgument);  // 3 does not divide 128
  bad.groups = 0;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  GroupedConvShape ok{ConvShape::square(28, 3, 128, 256), 128};
  EXPECT_NO_THROW(ok.validate());  // depthwise-ish (OC/group = 2)
}

TEST(GroupedConv, DepthwiseRegimeFavorsVwSdkMore) {
  // MobileNet-style depthwise 3x3 over 112x112x32: each group is a
  // 1-channel conv, so im2col uses 9 of 512 rows (utilization misery)
  // while VW-SDK grows a large window.  The per-layer speedup must exceed
  // the dense conv2 speedup at the same spatial size.
  const GroupedConvShape depthwise{ConvShape::square(112, 3, 32, 32), 32};
  const VwSdkMapper vw;
  const Im2colMapper im2col;
  const GroupedDecision vw_decision = map_grouped(vw, depthwise, k512x512);
  const GroupedDecision im2col_decision =
      map_grouped(im2col, depthwise, k512x512);
  const double depthwise_speedup =
      static_cast<double>(im2col_decision.total_cycles) /
      static_cast<double>(vw_decision.total_cycles);
  EXPECT_GT(depthwise_speedup, 4.0);

  const ConvShape dense = ConvShape::square(112, 3, 128, 128);
  const double dense_speedup =
      static_cast<double>(im2col.map(dense, k512x512).cost.total) /
      static_cast<double>(vw.map(dense, k512x512).cost.total);
  EXPECT_GT(depthwise_speedup, dense_speedup);
}

TEST(GroupedConv, TotalIsGroupsTimesPerGroup) {
  const GroupedConvShape shape{ConvShape::square(28, 3, 64, 64), 8};
  const GroupedDecision decision =
      map_grouped(VwSdkMapper(), shape, k512x512);
  EXPECT_EQ(decision.total_cycles, 8 * decision.per_group.cost.total);
  EXPECT_NE(decision.to_string().find("g8"), std::string::npos);
}

}  // namespace
}  // namespace vwsdk
