/// Table I of the paper, reproduced row by row and total by total.
/// These are the strongest regression tests in the repo: every published
/// per-layer window shape, channel tiling, and network total must come out
/// of our implementations exactly.

#include <gtest/gtest.h>

#include "core/im2col_mapper.h"
#include "core/network_optimizer.h"
#include "core/sdk_mapper.h"
#include "core/vwsdk_mapper.h"
#include "nn/model_zoo.h"

namespace vwsdk {
namespace {

const ArrayGeometry k512x512{512, 512};

struct TableRow {
  const char* layer;
  ParallelWindow sdk_window;
  ParallelWindow vw_window;
  Dim vw_ic_t;  // -1 = im2col fallback (full channels reported)
  Dim vw_oc_t;
  Cycles vw_cycles;
  Cycles sdk_cycles;
};

void check_network(const Network& net, const std::vector<TableRow>& rows,
                   Cycles sdk_total, Cycles vw_total) {
  const SdkMapper sdk;
  const VwSdkMapper vw;
  ASSERT_EQ(net.layer_count(), static_cast<Count>(rows.size()));

  Cycles sdk_sum = 0;
  Cycles vw_sum = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ConvShape shape = ConvShape::from_layer(net.layer(
        static_cast<Count>(i)));
    const MappingDecision sdk_decision = sdk.map(shape, k512x512);
    const MappingDecision vw_decision = vw.map(shape, k512x512);

    EXPECT_EQ(sdk_decision.cost.window, rows[i].sdk_window)
        << net.name() << " " << rows[i].layer << " (SDK window)";
    EXPECT_EQ(sdk_decision.cost.total, rows[i].sdk_cycles)
        << net.name() << " " << rows[i].layer << " (SDK cycles)";

    EXPECT_EQ(vw_decision.cost.window, rows[i].vw_window)
        << net.name() << " " << rows[i].layer << " (VW window)";
    if (rows[i].vw_ic_t >= 0) {
      EXPECT_EQ(vw_decision.cost.ic_t, rows[i].vw_ic_t)
          << net.name() << " " << rows[i].layer << " (IC_t)";
      EXPECT_EQ(vw_decision.cost.oc_t, rows[i].vw_oc_t)
          << net.name() << " " << rows[i].layer << " (OC_t)";
    }
    EXPECT_EQ(vw_decision.cost.total, rows[i].vw_cycles)
        << net.name() << " " << rows[i].layer << " (VW cycles)";

    sdk_sum += sdk_decision.cost.total;
    vw_sum += vw_decision.cost.total;
  }
  EXPECT_EQ(sdk_sum, sdk_total) << net.name() << " SDK total";
  EXPECT_EQ(vw_sum, vw_total) << net.name() << " VW-SDK total";
}

TEST(PaperTable1, VGG13AllRowsAndTotals) {
  // Paper note (EXPERIMENTS.md): Table I prints conv2's VW-SDK tile as
  // "4x4x64x64" but Eq. (4) gives IC_t = floor(512/16) = 32, and only
  // IC_t = 32 (AR = 2) is consistent with the published total 77102.
  // We therefore pin 32 here.
  check_network(
      vgg13_paper(),
      {
          {"conv1", {4, 4}, {10, 3}, 3, 64, 6216, 12321},
          {"conv2", {4, 4}, {4, 4}, 32, 64, 24642, 24642},
          {"conv3", {4, 4}, {4, 4}, 32, 128, 6050, 6050},
          {"conv4", {3, 3}, {4, 4}, 32, 128, 12100, 36300},
          {"conv5", {3, 3}, {4, 3}, 42, 256, 5832, 8748},
          {"conv6", {3, 3}, {4, 3}, 42, 256, 10206, 14580},
          {"conv7", {3, 3}, {3, 3}, -1, -1, 3380, 3380},
          {"conv8", {3, 3}, {3, 3}, -1, -1, 6084, 6084},
          {"conv9", {3, 3}, {3, 3}, -1, -1, 1296, 1296},
          {"conv10", {3, 3}, {3, 3}, -1, -1, 1296, 1296},
      },
      /*sdk_total=*/114697, /*vw_total=*/77102);
}

TEST(PaperTable1, Resnet18AllRowsAndTotals) {
  check_network(resnet18_paper(),
                {
                    {"conv1", {8, 8}, {10, 8}, 3, 64, 1431, 2809},
                    {"conv2", {4, 4}, {4, 4}, 32, 64, 1458, 1458},
                    {"conv3", {3, 3}, {4, 4}, 32, 128, 676, 2028},
                    {"conv4", {3, 3}, {4, 3}, 42, 256, 504, 720},
                    {"conv5", {3, 3}, {3, 3}, -1, -1, 225, 225},
                },
                /*sdk_total=*/7240, /*vw_total=*/4294);
}

TEST(PaperTable1, PublishedSpeedupsReproduce) {
  // §V-B: "VW-SDK improves the computing speed by 3.16x and 1.49x on
  // VGG13, 4.67x and 1.69x on Resnet-18 compared to im2col and SDK-based
  // algorithm, respectively."
  const auto check = [](const Network& net, double vs_im2col,
                        double vs_sdk) {
    const NetworkComparison cmp =
        compare_mappers({"im2col", "sdk", "vw-sdk"}, net, k512x512);
    EXPECT_NEAR(cmp.speedup(0, 2), vs_im2col, 0.005) << net.name();
    EXPECT_NEAR(cmp.speedup(1, 2), vs_sdk, 0.005) << net.name();
  };
  check(vgg13_paper(), 3.16, 1.49);
  check(resnet18_paper(), 4.67, 1.69);
}

TEST(PaperTable1, Im2colTotals) {
  const Im2colMapper im2col;
  EXPECT_EQ(optimize_network(im2col, vgg13_paper(), k512x512).total_cycles(),
            243736);
  EXPECT_EQ(
      optimize_network(im2col, resnet18_paper(), k512x512).total_cycles(),
      20041);
}

TEST(PaperTable1, TableEntryStringsMatchPaperFormat) {
  const VwSdkMapper vw;
  const ConvShape conv5 =
      ConvShape::from_layer(vgg13_paper().layer_by_name("conv5"));
  EXPECT_EQ(vw.map(conv5, k512x512).table_entry(), "4x3x42x256");
  // Fallback rows print the layer's full channels (paper convention).
  const ConvShape r5 =
      ConvShape::from_layer(resnet18_paper().layer_by_name("conv5"));
  EXPECT_EQ(vw.map(r5, k512x512).table_entry(), "3x3x512x512");
}

}  // namespace
}  // namespace vwsdk
